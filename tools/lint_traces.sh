#!/usr/bin/env bash
# trace_lint.py over every Chrome-trace export in the build tree.  A fresh
# build has none -- that is fine, the ctest pair TraceLint.export/validate
# guarantees at least one export is linted on every test run; this wrapper
# exists so `cmake --build build --target lint` also covers whatever traces
# the last test/bench run left behind.
# Usage: tools/lint_traces.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."
BUILD="${1:-build}"

shopt -s nullglob
traces=("$BUILD"/tests/trace_*.json*)
if [ "${#traces[@]}" -eq 0 ]; then
  echo "lint_traces: no trace exports under $BUILD/tests yet (run ctest to produce some); skipping"
  exit 0
fi
python3 tools/trace_lint.py "${traces[@]}"
