#!/usr/bin/env bash
# Quick gate for the edit-compile-test loop (CI runs the full suite):
#   1. configure + build;
#   2. the fast test subset (ctest -LE slow), which includes the trace
#      acceptance test that exports a fig5-sized Chrome trace;
#   3. trace-lint every file that acceptance run produced against
#      tools/trace_schema.json.
# Usage: tools/quick_gate.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."
BUILD="${1:-build}"

cmake -B "$BUILD" -S .
cmake --build "$BUILD" -j"$(nproc)"
ctest --test-dir "$BUILD" -LE slow --output-on-failure -j"$(nproc)"

shopt -s nullglob
traces=("$BUILD"/tests/trace_fig5_acceptance.json*)
if [ "${#traces[@]}" -eq 0 ]; then
  echo "quick_gate: the acceptance test produced no trace export" >&2
  exit 1
fi
python3 tools/trace_lint.py "${traces[@]}"
echo "quick gate OK (${#traces[@]} trace file(s) linted)"
