#!/usr/bin/env bash
# Quick gate for the edit-compile-test loop (CI runs the full suite):
#   1. configure + build;
#   2. static analysis: tools/static_check.py (per-file determinism &
#      lock-discipline rules) and tools/semantic_check.py (cross-TU layer
#      DAG, wall-clock taint, RankDeath exception discipline, fiber-stack
#      budget, bench/gate schema), each with its seeded-violation
#      self-test; a failure prints the offending file:line rule table and
#      a one-line per-rule summary ("<tool>: rule summary -- rule:count");
#   3. the fast test subset (ctest -LE slow), which includes the trace
#      acceptance test that exports a fig5-sized Chrome trace;
#   4. trace-lint every file that acceptance run produced against
#      tools/trace_schema.json;
#   5. crash-recovery smoke: a seeded mid-solve rank crash must be detected,
#      rolled back to the last committed checkpoint, and still converge; its
#      exported trace must satisfy the recovery pairing rules
#      (rank_failure -> rollback, checkpoint -> ckpt_commit/ckpt_abort);
#   6. flight-recorder smoke: the 256-rank seq golden runs with
#      QUDA_SIM_TELEMETRY on (goldens must survive telemetry bit-for-bit)
#      and tools/report.py renders its JSONL + trace into the
#      self-contained HTML run report;
#   7. perf gate: run the quick fig5 sweep and diff its BENCH JSON against
#      the stored baseline with tools/bench_diff.py.  The first run seeds
#      the baseline ($BUILD/bench_baseline_fig5_strong.json); later runs
#      fail on >10% regressions in time/gflops/critical-path metrics, and
#      bench_diff prints the per-category attribution of every regressed
#      point.  After an intentional perf change, delete the baseline file
#      (or re-run with QUICK_GATE_REBASELINE=1) to accept the new numbers.
# Usage: tools/quick_gate.sh [--sanitize [thread|address]] [build-dir]
#   default build-dir: build (or build-<sanitizer> under --sanitize).
#   --sanitize re-runs the whole gate in a QUDA_SIM_SANITIZE-instrumented
#   build tree (default thread); both sanitizers are expected clean
#   (README "Sanitizers").
set -euo pipefail
cd "$(dirname "$0")/.."

SANITIZE=""
if [ "${1:-}" = "--sanitize" ]; then
  shift
  case "${1:-}" in
    thread|address) SANITIZE="$1"; shift ;;
    *) SANITIZE="thread" ;;  # bare --sanitize: any next arg is the build dir
  esac
fi
if [ -n "$SANITIZE" ]; then
  BUILD="${1:-build-$SANITIZE}"
  CMAKE_EXTRA=(-DQUDA_SIM_SANITIZE="$SANITIZE")
else
  BUILD="${1:-build}"
  CMAKE_EXTRA=()
fi

cmake -B "$BUILD" -S . "${CMAKE_EXTRA[@]}"
cmake --build "$BUILD" -j"$(nproc)"

# static analysis gate: fails fast with the file:line rule table and the
# per-rule summary line on stderr
python3 tools/static_check.py
python3 tools/static_check.py --self-test
python3 tools/semantic_check.py
python3 tools/semantic_check.py --self-test

ctest --test-dir "$BUILD" -LE slow --output-on-failure -j"$(nproc)"

shopt -s nullglob
traces=("$BUILD"/tests/trace_fig5_acceptance.json*)
if [ "${#traces[@]}" -eq 0 ]; then
  echo "quick_gate: the acceptance test produced no trace export" >&2
  exit 1
fi
python3 tools/trace_lint.py "${traces[@]}"

# crash-recovery smoke (the suite labels the full RankFailure matrix slow):
# one mid-solve rank crash recovered end to end, plus its exported trace
(cd "$BUILD/tests" && ./quda_tests \
  --gtest_filter='RankFailure.CrashMidSolveRecoversViaCheckpointRestart:RankFailure.RecoveryIsAttributedOnTheCriticalPath' \
  > /dev/null)
rf_traces=("$BUILD"/tests/trace_rank_failure.json*)
if [ "${#rf_traces[@]}" -eq 0 ]; then
  echo "quick_gate: the crash-recovery smoke produced no trace export" >&2
  exit 1
fi
python3 tools/trace_lint.py "${rf_traces[@]}"

# 256-rank seq-scheduler smoke: the pinned golden run (4x4x4x4 grid of
# fibers on one event loop, fat-tree interconnect) runs with the flight
# recorder on in-spec -- the goldens must survive telemetry bit-for-bit
# (observational purity); its exported 256-rank trace must pass the
# link-class and topology rules in tools/trace_schema.json, and the
# telemetry JSONL it leaves behind must render into the HTML run report.
(cd "$BUILD/tests" && ./quda_tests \
  --gtest_filter='SeqGolden.*:SchedulerCapacity.*:SchedulerResolve.*' \
  > /dev/null)
seq_traces=("$BUILD"/tests/trace_seq256_golden.json*)
if [ "${#seq_traces[@]}" -eq 0 ]; then
  echo "quick_gate: the 256-rank seq smoke produced no trace export" >&2
  exit 1
fi
python3 tools/trace_lint.py "${seq_traces[@]}"
seq_telemetry=("$BUILD"/tests/telemetry_seq256.jsonl*)
if [ "${#seq_telemetry[@]}" -eq 0 ]; then
  echo "quick_gate: the 256-rank seq smoke produced no telemetry export" >&2
  exit 1
fi
python3 tools/report.py --self-test
python3 tools/report.py --telemetry "${seq_telemetry[0]}" \
  --trace "${seq_traces[0]}" -o "$BUILD/tests/seq256_report.html"
grep -q '</html>' "$BUILD/tests/seq256_report.html" || {
  echo "quick_gate: seq256 run report did not render to complete HTML" >&2
  exit 1
}

# link-reconstruction smoke: the 8-real gauge path must round-trip, agree
# with the 18-real dslash, and converge the recon-8 solve to the recon-12
# residual (the full recon matrix runs in CI)
(cd "$BUILD/tests" && ./quda_tests \
  --gtest_filter='SU3.EightReal*:DslashCompression.EightMatchesEighteen:PublicApi.Recon8SolveMatchesRecon12' \
  > /dev/null)

# perf-regression gate on the quick fig5 sweep
baseline="$BUILD/bench_baseline_fig5_strong.json"
current="$BUILD/bench/BENCH_fig5_strong.json"
(cd "$BUILD/bench" && ./bench_fig5_strong --quick > /dev/null)
if [ "${QUICK_GATE_REBASELINE:-0}" = "1" ] || [ ! -f "$baseline" ]; then
  cp "$current" "$baseline"
  echo "quick_gate: seeded perf baseline at $baseline"
else
  python3 tools/bench_diff.py "$baseline" "$current"
fi
echo "quick gate OK (${#traces[@]} trace file(s) linted, perf gate passed)"
