#!/usr/bin/env python3
"""Repo-native static analysis: determinism & lock-discipline linter.

Stdlib only (the repo adds no dependencies).  A comment/string-stripping
C++ lexer feeds a per-file rule engine that enforces the invariants the
reproduction's headline guarantees rest on -- bit-identical simulated time
at any thread budget, and observational-only tracing:

  sim-nondeterminism          no entropy / wall-clock reads (rand, srand,
                              std::random_device, steady_clock::now, ...)
                              anywhere in src/, bench/, tests/ except the
                              allowlisted shim src/core/wallclock.h
  sim-unordered-iter          no iteration over std::unordered_map/set in
                              the sim-time-affecting layers (src/sim,
                              src/perfmodel, src/trace, src/parallel)
                              without a `// SIM_ORDERED: <reason>`
  sim-float-accum             no raw `+=` float-accumulation loops in
                              src/blas outside exec::parallel_reduce
                              (reduction-order safety)
  sim-span-pairing            a captured `*begin*_us` timestamp in src/
                              must feed a later tracer span() call (no
                              half-recorded trace windows)
  sim-using-namespace-header  no `using namespace` in headers
  sim-static-state            mutable function-local `static` state needs
                              an explicit justification
  sim-mutex-coverage          every mutex member must be referenced by at
                              least one QUDA_GUARDED_BY / QUDA_REQUIRES /
                              ... annotation; every condition-variable
                              member must carry QUDA_CV_WAITS_WITH; every
                              annotation argument must name a declared
                              mutex (core/annotations.h)
  sim-bad-suppression         malformed suppression: NOLINT without a
                              rule list or reason, unknown rule name, or
                              an empty SIM_ORDERED justification

Every rule is individually suppressible with `// NOLINT(sim-<rule>): <reason>`
on the offending line or in the comment block directly above it; the reason
is mandatory.  sim-unordered-iter additionally accepts `// SIM_ORDERED:
<reason>` as its domain-specific justification.

The cross-translation-unit rule families (sim-layering, sim-wallclock-taint,
sim-death-swallow, sim-fiber-stack, sim-bench-schema) live in the companion
pass layer tools/semantic_check.py, which builds a whole-project model
(include graph, symbol table, call graph) on top of this file's lexer.
Their names are registered here so NOLINT suppressions naming them
validate, but the passes themselves run in semantic_check.py.

Usage:
  static_check.py [--root DIR] [FILE ...]   lint the tree (or only FILEs,
                                            registry still tree-wide)
  static_check.py --self-test [--root DIR]  run the seeded-violation
                                            fixtures under
                                            tests/lint_fixtures and assert
                                            every rule fires exactly where
                                            the EXPECT-LINT markers say
  static_check.py --list-rules              print the rule table

Exit status: 0 when clean.  Distinct failure codes keep CI logs
unambiguous: 1 means the tree carries findings (lint mode), 2 means the
seeded-violation fixtures mismatched (--self-test mode).
"""

import argparse
import os
import re
import sys

SCAN_DIRS = ("src", "bench", "tests")
SCAN_EXTS = (".h", ".cpp")
FIXTURE_DIR = os.path.join("tests", "lint_fixtures")
# the semantic fixture trees belong to tools/semantic_check.py --self-test;
# this linter's fixture walk must not pick up their EXPECT-SEM markers
SEMANTIC_FIXTURE_DIR = os.path.join(FIXTURE_DIR, "semantic")
WALLCLOCK_SHIM = "src/core/wallclock.h"
# the annotated-primitive layer itself: defines the macros / wraps the raw
# std primitives, so the coverage rule does not apply to it
ANNOTATION_LAYER = ("src/core/annotations.h", "src/core/sync.h")
ORDERED_LAYERS = ("src/sim/", "src/perfmodel/", "src/trace/", "src/parallel/")

RULES = {
    "sim-nondeterminism": "entropy / wall-clock source outside src/core/wallclock.h",
    "sim-unordered-iter": "unordered-container iteration in a sim-time-affecting layer",
    "sim-float-accum": "raw += float accumulation loop outside parallel_reduce",
    "sim-span-pairing": "captured *begin*_us timestamp never reaches a span() call",
    "sim-using-namespace-header": "using namespace in a header",
    "sim-static-state": "mutable function-local static state",
    "sim-mutex-coverage": "mutex/condvar member without annotation coverage",
    "sim-bad-suppression": "malformed NOLINT / SIM_ORDERED suppression",
}

# Whole-program rule families implemented by tools/semantic_check.py on the
# cross-TU project model.  Registered here so a NOLINT naming one of them is
# a valid suppression wherever suppressions are parsed.
SEMANTIC_RULES = {
    "sim-layering": "upward #include against the layer DAG in tools/layers.json",
    "sim-wallclock-taint": "call path from sim-time code into a wall-clock/entropy-"
                           "tainted function outside the allowlisted shim",
    "sim-death-swallow": "generic catch that could swallow sim::RankDeath without "
                         "rethrowing or proving death-safety",
    "sim-fiber-stack": "stack frame over the fiber budget, or a recursion cycle, "
                       "reachable from fiber entry points",
    "sim-bench-schema": "bench metric emitted but not gated/allowlisted, or gated "
                        "but never emitted (tools/bench_diff.py)",
}

# every rule name a NOLINT may legally reference
KNOWN_RULES = {**RULES, **SEMANTIC_RULES}


# --------------------------------------------------------------------------
# lexer: strip comments and string/char literals, keep line structure
# --------------------------------------------------------------------------

def mask_code(text):
    """Return (code, comments): `code` is `text` with comment and literal
    contents replaced by spaces (newlines kept, so offsets and line numbers
    survive); `comments` maps 0-based line -> concatenated comment text."""
    n = len(text)
    code = []
    comments = {}
    line = 0
    i = 0

    def note(ch):
        comments[line] = comments.get(line, "") + ch

    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            code.append("  ")
            i += 2
            while i < n and text[i] != "\n":
                note(text[i])
                code.append(" ")
                i += 1
            continue
        if c == "/" and nxt == "*":
            code.append("  ")
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n and text[i + 1] == "/"):
                if text[i] == "\n":
                    code.append("\n")
                    line += 1
                else:
                    note(text[i])
                    code.append(" ")
                i += 1
            if i < n:
                code.append("  ")
                i += 2
            continue
        if c == "R" and nxt == '"':
            # raw string literal R"delim( ... )delim"
            m = re.match(r'R"([^()\s\\]{0,16})\(', text[i:])
            if m:
                end = text.find(")" + m.group(1) + '"', i + m.end())
                stop = n if end < 0 else end + len(m.group(1)) + 2
                for j in range(i, stop):
                    if text[j] == "\n":
                        code.append("\n")
                        line += 1
                    else:
                        code.append(" ")
                i = stop
                continue
        if c == '"' or c == "'":
            quote = c
            code.append(" ")
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\" and i + 1 < n:
                    code.append("  ")
                    i += 2
                    continue
                code.append("\n" if text[i] == "\n" else " ")
                if text[i] == "\n":
                    line += 1
                i += 1
            if i < n:
                code.append(" ")
                i += 1
            continue
        code.append(c)
        if c == "\n":
            line += 1
        i += 1
    return "".join(code), comments


def match_delim(code, pos, open_ch, close_ch):
    """Index just past the delimiter that closes code[pos] (== open_ch)."""
    depth = 0
    for i in range(pos, len(code)):
        if code[i] == open_ch:
            depth += 1
        elif code[i] == close_ch:
            depth -= 1
            if depth == 0:
                return i + 1
    return len(code)


def line_of(code, offset):
    return code.count("\n", 0, offset)  # 0-based


# --------------------------------------------------------------------------
# scope classification: namespace / record / init / code bodies
# --------------------------------------------------------------------------

_RECORD_RE = re.compile(r"\b(class|struct|union|enum)\b")
_NS_RE = re.compile(r"\bnamespace\b")


def build_scopes(code):
    """List of (start, end, kind) for every {...} block, kind in
    {'namespace', 'record', 'init', 'code'}."""
    scopes = []
    stack = []
    stmt_start = 0
    for i, c in enumerate(code):
        if c == "{":
            head = code[stmt_start:i]
            prev = head.rstrip()[-1:] if head.rstrip() else ""
            if _NS_RE.search(head):
                kind = "namespace"
            elif _RECORD_RE.search(head) and "(" not in head:
                kind = "record"
            elif prev in ("=", ",", "(", "{") or prev == "":
                kind = "init"
            else:
                kind = "code"
            stack.append((i, kind))
            stmt_start = i + 1
        elif c == "}":
            if stack:
                start, kind = stack.pop()
                scopes.append((start, i, kind))
            stmt_start = i + 1
        elif c == ";":
            stmt_start = i + 1
    while stack:  # unbalanced file: close at EOF
        start, kind = stack.pop()
        scopes.append((start, len(code), kind))
    return scopes


def enclosing_kind(scopes, offset):
    """Kind of the innermost scope containing offset ('' at file scope)."""
    best = None
    for start, end, kind in scopes:
        if start < offset <= end and (best is None or start > best[0]):
            best = (start, kind)
    return best[1] if best else ""


def inside_function(scopes, offset):
    """True if any enclosing scope is a code (function/control) body."""
    return any(start < offset <= end and kind == "code"
               for start, end, kind in scopes if start < offset)


# --------------------------------------------------------------------------
# suppression handling
# --------------------------------------------------------------------------

_NOLINT_RE = re.compile(r"NOLINT(?:\(([^)]*)\))?\s*:?\s*(.*)")
_ORDERED_RE = re.compile(r"SIM_ORDERED\s*(:?)\s*(.*)")


class FileCtx:
    def __init__(self, path, effective, text):
        self.path = path            # reported path (relative, posix)
        self.effective = effective  # path used for rule scoping (LINT-AS)
        self.text = text
        self.lines = text.split("\n")
        self.code, self.comments = mask_code(text)
        self.code_lines = self.code.split("\n")
        self.scopes = build_scopes(self.code)
        self.findings = []          # (line0, rule, message)

    def report(self, line0, rule, message):
        self.findings.append((line0, rule, message))

    def comment_block_lines(self, line0):
        """The given line plus the run of comment-only lines directly above."""
        result = [line0]
        ln = line0 - 1
        while ln >= 0 and ln in self.comments and self.code_lines[ln].strip() == "":
            result.append(ln)
            ln -= 1
        return result

    def suppressions(self):
        """Map line -> set of rules a well-formed NOLINT there suppresses,
        plus the list of SIM_ORDERED lines; emits sim-bad-suppression."""
        nolint = {}
        ordered = set()
        for ln, comment in sorted(self.comments.items()):
            if "NOLINT" in comment:
                m = _NOLINT_RE.search(comment)
                rules = [r.strip() for r in (m.group(1) or "").split(",") if r.strip()]
                reason = (m.group(2) or "").strip()
                if not rules:
                    self.report(ln, "sim-bad-suppression",
                                "NOLINT needs an explicit rule list: NOLINT(sim-<rule>): <reason>")
                    continue
                unknown = [r for r in rules if r not in KNOWN_RULES]
                if unknown:
                    self.report(ln, "sim-bad-suppression",
                                "NOLINT names unknown rule(s): " + ", ".join(unknown))
                    continue
                if not reason:
                    self.report(ln, "sim-bad-suppression",
                                "NOLINT(%s) without a reason; the reason is mandatory"
                                % ",".join(rules))
                    continue
                nolint.setdefault(ln, set()).update(rules)
            if "SIM_ORDERED" in comment:
                m = _ORDERED_RE.search(comment)
                if not m.group(1) or not m.group(2).strip():
                    self.report(ln, "sim-bad-suppression",
                                "SIM_ORDERED without a justification: SIM_ORDERED: <reason>")
                else:
                    ordered.add(ln)
        return nolint, ordered


# --------------------------------------------------------------------------
# rules
# --------------------------------------------------------------------------

_BANNED = [
    (re.compile(r"\brand\s*\("), "rand()"),
    (re.compile(r"\bsrand\s*\("), "srand()"),
    (re.compile(r"\brand_r\s*\("), "rand_r()"),
    (re.compile(r"\bdrand48\s*\("), "drand48()"),
    (re.compile(r"\brandom_device\b"), "std::random_device"),
    (re.compile(r"\b(?:steady_clock|system_clock|high_resolution_clock)\s*::\s*now\b"),
     "chrono clock read"),
    (re.compile(r"\bgettimeofday\s*\("), "gettimeofday()"),
    (re.compile(r"\bclock_gettime\s*\("), "clock_gettime()"),
    (re.compile(r"\btimespec_get\s*\("), "timespec_get()"),
    (re.compile(r"\b(?:localtime|gmtime|mktime)\s*\("), "calendar time"),
]


def rule_nondeterminism(ctx):
    if ctx.effective == WALLCLOCK_SHIM:
        return
    for rx, label in _BANNED:
        for m in rx.finditer(ctx.code):
            ctx.report(line_of(ctx.code, m.start()), "sim-nondeterminism",
                       "banned nondeterminism source %s; wall-clock reads go through "
                       "src/core/wallclock.h" % label)


_UNORDERED_RE = re.compile(r"\bunordered_(?:map|set)\s*<")
_RANGE_FOR_RE = re.compile(r"\bfor\s*\(")
_ITER_CALL_RE = re.compile(r"\b(\w+)\s*\.\s*c?r?(?:begin|end)\s*\(")


def rule_unordered_iter(ctx):
    if not ctx.effective.startswith(ORDERED_LAYERS):
        return
    declared = set()
    for m in _UNORDERED_RE.finditer(ctx.code):
        close = match_delim(ctx.code, m.end() - 1, "<", ">")
        rest = ctx.code[close:close + 120]
        dm = re.match(r"[\s&*]*(?:const[\s&*]+)?(\w+)", rest)
        if dm:
            declared.add(dm.group(1))
    if not declared:
        return
    for m in _RANGE_FOR_RE.finditer(ctx.code):
        close = match_delim(ctx.code, m.end() - 1, "(", ")")
        # mask '::' so the scope operator is not mistaken for the range colon
        inner = ctx.code[m.end():close - 1].replace("::", "  ")
        if ":" not in inner:
            continue
        expr = inner.split(":", 1)[1].strip()
        em = re.search(r"(\w+)\s*$", expr)
        if em and em.group(1) in declared:
            ctx.report(line_of(ctx.code, m.start()), "sim-unordered-iter",
                       "iteration over unordered container '%s' in a sim-time-affecting "
                       "layer; use an ordered container or justify with SIM_ORDERED"
                       % em.group(1))
    for m in _ITER_CALL_RE.finditer(ctx.code):
        if m.group(1) in declared:
            ctx.report(line_of(ctx.code, m.start()), "sim-unordered-iter",
                       "iterator over unordered container '%s' in a sim-time-affecting "
                       "layer; use an ordered container or justify with SIM_ORDERED"
                       % m.group(1))


_FLOAT_DECL_RE = re.compile(r"\b(?:double|float|complexd|complexf)\s+(\w+)\s*[={]")
_REDUCE_RE = re.compile(r"\bparallel_reduce\b")
_FOR_RE = re.compile(r"\bfor\s*\(")
_ACCUM_RE = re.compile(r"\b(\w+)\s*\+=")


def rule_float_accum(ctx):
    if not ctx.effective.startswith("src/blas/"):
        return
    regions = []
    for m in _REDUCE_RE.finditer(ctx.code):
        i = m.end()
        while i < len(ctx.code) and ctx.code[i].isspace():
            i += 1
        if i < len(ctx.code) and ctx.code[i] == "<":
            i = match_delim(ctx.code, i, "<", ">")
            while i < len(ctx.code) and ctx.code[i].isspace():
                i += 1
        if i < len(ctx.code) and ctx.code[i] == "(":
            regions.append((m.start(), match_delim(ctx.code, i, "(", ")")))
    decls = {}
    for m in _FLOAT_DECL_RE.finditer(ctx.code):
        decls.setdefault(m.group(1), []).append(m.start())
    for m in _FOR_RE.finditer(ctx.code):
        close = match_delim(ctx.code, m.end() - 1, "(", ")")
        i = close
        while i < len(ctx.code) and ctx.code[i].isspace():
            i += 1
        if i >= len(ctx.code):
            continue
        body_start, body_end = (i, match_delim(ctx.code, i, "{", "}")) \
            if ctx.code[i] == "{" else (i, ctx.code.find(";", i) + 1)
        for am in _ACCUM_RE.finditer(ctx.code, body_start, body_end):
            name = am.group(1)
            before = ctx.code[am.start() - 1] if am.start() > 0 else " "
            if before in ".>":
                continue  # member access: o.r2 += ... (operator+= fold helpers)
            if name not in decls or not any(off < body_start for off in decls[name]):
                continue
            if any(a <= am.start() < b for a, b in regions):
                continue
            ctx.report(line_of(ctx.code, am.start()), "sim-float-accum",
                       "raw '+=' accumulation onto '%s' in a loop; route reductions "
                       "through exec::parallel_reduce for a thread-count-invariant "
                       "addition tree" % name)


_BEGIN_DECL_RE = re.compile(r"^[ \t]*(?:const\s+)?double\s+(\w*begin\w*_us)\s*=", re.M)
_SPAN_CALL_RE = re.compile(r"[.>]\s*span\s*\(")


def rule_span_pairing(ctx):
    if not ctx.effective.startswith("src/"):
        return
    spans = []
    for m in _SPAN_CALL_RE.finditer(ctx.code):
        op = ctx.code.find("(", m.start())
        spans.append((m.start(), match_delim(ctx.code, op, "(", ")")))
    for m in _BEGIN_DECL_RE.finditer(ctx.code):
        off = m.start(1)
        if not inside_function(ctx.scopes, off):
            continue
        name = m.group(1)
        paired = any(start > off and re.search(r"\b%s\b" % re.escape(name),
                                               ctx.code[start:end])
                     for start, end in spans)
        if not paired:
            ctx.report(line_of(ctx.code, off), "sim-span-pairing",
                       "'%s' captures a span begin time but no later span() call "
                       "consumes it" % name)


_USING_NS_RE = re.compile(r"\busing\s+namespace\b")


def rule_using_namespace_header(ctx):
    if not ctx.effective.endswith(".h"):
        return
    for m in _USING_NS_RE.finditer(ctx.code):
        ctx.report(line_of(ctx.code, m.start()), "sim-using-namespace-header",
                   "'using namespace' in a header leaks into every includer")


_STATIC_RE = re.compile(r"\bstatic\b")


def rule_static_state(ctx):
    for m in _STATIC_RE.finditer(ctx.code):
        if enclosing_kind(ctx.scopes, m.start()) != "code":
            continue
        stop = len(ctx.code)
        for ch in ";={(":
            p = ctx.code.find(ch, m.end())
            if p >= 0:
                stop = min(stop, p)
        decl = ctx.code[m.end():stop]
        if re.search(r"\b(?:const|constexpr|constinit)\b", decl):
            continue
        ctx.report(line_of(ctx.code, m.start()), "sim-static-state",
                   "mutable function-local static state persists across calls; "
                   "justify with NOLINT(sim-static-state) or refactor")


_MUTEX_DECL_RE = re.compile(r"\b(?:std::mutex|core::Mutex|Mutex)\s+(\w+)\s*;")
_CV_DECL_RE = re.compile(
    r"\b(?:std::condition_variable(?:_any)?|core::CondVar|CondVar)\s+(\w+)")
_ANNOT_RE = re.compile(
    r"\bQUDA_(?:GUARDED_BY|PT_GUARDED_BY|REQUIRES|ACQUIRE|RELEASE|TRY_ACQUIRE|"
    r"EXCLUDES|RETURN_CAPABILITY|CV_WAITS_WITH)\s*\(([^()]*)\)")


def collect_mutex_info(ctx, registry):
    """First pass of sim-mutex-coverage: record declared mutexes, CV
    declarations, and annotation references into the tree-wide registry."""
    if ctx.effective in ANNOTATION_LAYER:
        return
    for m in _MUTEX_DECL_RE.finditer(ctx.code):
        if enclosing_kind(ctx.scopes, m.start()) != "record":
            continue
        registry["mutexes"][m.group(1)] = (ctx, line_of(ctx.code, m.start()))
    for m in _CV_DECL_RE.finditer(ctx.code):
        if enclosing_kind(ctx.scopes, m.start()) != "record":
            continue
        stop = ctx.code.find(";", m.end())
        stmt = ctx.code[m.start():stop if stop >= 0 else len(ctx.code)]
        registry["cvs"].append((ctx, line_of(ctx.code, m.start()), m.group(1),
                                "QUDA_CV_WAITS_WITH" in stmt))
    for m in _ANNOT_RE.finditer(ctx.code):
        for arg in m.group(1).split(","):
            am = re.search(r"(\w+)\s*$", arg.strip().lstrip("!"))
            if not am or am.group(1) in ("true", "false") or am.group(1).isdigit():
                continue
            registry["refs"].append((ctx, line_of(ctx.code, m.start()), am.group(1)))


def resolve_mutex_coverage(registry):
    """Second pass: cross-file resolution once every file is collected."""
    referenced = {name for _, _, name in registry["refs"]}
    for name, (ctx, ln) in sorted(registry["mutexes"].items()):
        if name not in referenced:
            ctx.report(ln, "sim-mutex-coverage",
                       "mutex '%s' is not referenced by any QUDA_GUARDED_BY / "
                       "QUDA_REQUIRES / ... annotation (core/annotations.h)" % name)
    for ctx, ln, name, annotated in registry["cvs"]:
        if not annotated:
            ctx.report(ln, "sim-mutex-coverage",
                       "condition variable '%s' must declare its pairing mutex with "
                       "QUDA_CV_WAITS_WITH(<mutex>)" % name)
    for ctx, ln, name in registry["refs"]:
        if name not in registry["mutexes"]:
            ctx.report(ln, "sim-mutex-coverage",
                       "annotation references '%s', which is not a declared mutex "
                       "member anywhere in the scanned tree" % name)


PER_FILE_RULES = [rule_nondeterminism, rule_unordered_iter, rule_float_accum,
                  rule_span_pairing, rule_using_namespace_header, rule_static_state]


# --------------------------------------------------------------------------
# driver
# --------------------------------------------------------------------------

def effective_path(rel, text):
    """Fixture files may carry a '// LINT-AS: <path>' directive in the first
    few lines to opt into path-scoped rules; real tree files never do."""
    if rel.startswith(FIXTURE_DIR.replace(os.sep, "/")):
        m = re.search(r"LINT-AS:\s*(\S+)", "\n".join(text.split("\n")[:5]))
        if m:
            return m.group(1)
    return rel


def scan_tree(root, files=None):
    """Lint the tree under root.  The whole tree is always scanned (the
    mutex-coverage registry is cross-file); an explicit file list only
    restricts which findings are reported.  Findings: (path, line1, rule,
    msg)."""
    paths = []
    for d in SCAN_DIRS:
        for dirpath, _, names in os.walk(os.path.join(root, d)):
            rel_dir = os.path.relpath(dirpath, root)
            if rel_dir.replace(os.sep, "/").startswith(FIXTURE_DIR.replace(os.sep, "/")):
                continue
            for name in sorted(names):
                if name.endswith(SCAN_EXTS):
                    paths.append(os.path.join(rel_dir, name))
    findings, suppressed, nfiles = scan_paths(root, sorted(paths))
    if files:
        want = {os.path.relpath(os.path.abspath(f), root).replace(os.sep, "/")
                for f in files}
        findings = [f for f in findings if f[0] in want]
    return findings, suppressed, nfiles


def scan_paths(root, paths):
    registry = {"mutexes": {}, "cvs": [], "refs": []}
    contexts = []
    for rel in paths:
        rel_posix = rel.replace(os.sep, "/")
        with open(os.path.join(root, rel), "r", encoding="utf-8") as f:
            text = f.read()
        ctx = FileCtx(rel_posix, effective_path(rel_posix, text), text)
        contexts.append(ctx)
        for rule in PER_FILE_RULES:
            rule(ctx)
        collect_mutex_info(ctx, registry)
    resolve_mutex_coverage(registry)

    findings = []
    suppressed = 0
    for ctx in contexts:
        nolint, ordered = ctx.suppressions()

        def is_suppressed(line0, rule):
            for ln in ctx.comment_block_lines(line0):
                if rule in nolint.get(ln, ()):
                    return True
                if rule == "sim-unordered-iter" and ln in ordered:
                    return True
            return False

        for line0, rule, msg in sorted(set(ctx.findings)):
            if rule != "sim-bad-suppression" and is_suppressed(line0, rule):
                suppressed += 1
            else:
                findings.append((ctx.path, line0 + 1, rule, msg))
    findings.sort()
    return findings, suppressed, len(contexts)


def print_findings(findings):
    """The offending file:line rule table (mirrors bench_diff attribution)."""
    locs = ["%s:%d" % (p, ln) for p, ln, _, _ in findings]
    wloc = max(len(s) for s in locs)
    wrule = max(len(r) for _, _, r, _ in findings)
    for (path, ln, rule, msg), loc in zip(findings, locs):
        print("  %-*s  %-*s  %s" % (wloc, loc, wrule, rule, msg), file=sys.stderr)


def rule_summary_line(tool, findings):
    """One line per failed run: '<tool>: rule summary -- rule:count ...'
    (quick_gate.sh and CI grep for it)."""
    counts = {}
    for _, _, rule, _ in findings:
        counts[rule] = counts.get(rule, 0) + 1
    return "%s: rule summary -- %s" % (
        tool, " ".join("%s:%d" % (r, counts[r]) for r in sorted(counts)))


def run_lint(root, files):
    findings, suppressed, nfiles = scan_tree(root, files)
    if findings:
        print("static_check: FAIL -- %d finding(s):" % len(findings), file=sys.stderr)
        print_findings(findings)
        print(rule_summary_line("static_check", findings), file=sys.stderr)
        print("static_check: suppress with '// NOLINT(sim-<rule>): <reason>' "
              "(reason mandatory); see README 'Static analysis'", file=sys.stderr)
        return 1
    print("static_check: OK (%d files, 0 findings, %d justified suppression(s))"
          % (nfiles, suppressed))
    return 0


def skip_semantic_dir(root, dirpath):
    rel = os.path.relpath(dirpath, root).replace(os.sep, "/")
    return rel.startswith(SEMANTIC_FIXTURE_DIR.replace(os.sep, "/"))


def expected_from_fixtures(root, fdir):
    expected = set()
    for dirpath, _, names in os.walk(os.path.join(root, fdir)):
        if skip_semantic_dir(root, dirpath):
            continue
        for name in sorted(names):
            if not name.endswith(SCAN_EXTS):
                continue
            rel = os.path.relpath(os.path.join(dirpath, name), root).replace(os.sep, "/")
            with open(os.path.join(dirpath, name), "r", encoding="utf-8") as f:
                for i, raw in enumerate(f.read().split("\n")):
                    m = re.search(r"EXPECT-LINT(-NEXT)?:\s*([\w\-, ]+)", raw)
                    if not m:
                        continue
                    line1 = i + 2 if m.group(1) else i + 1
                    for rule in m.group(2).split(","):
                        rule = rule.strip()
                        if rule:
                            expected.add((rel, line1, rule))
    return expected


def run_self_test(root):
    fdir = FIXTURE_DIR.replace(os.sep, "/")
    fixture_paths = []
    for dirpath, _, names in os.walk(os.path.join(root, fdir)):
        if skip_semantic_dir(root, dirpath):
            continue
        for name in sorted(names):
            if name.endswith(SCAN_EXTS):
                fixture_paths.append(os.path.relpath(os.path.join(dirpath, name), root))
    if not fixture_paths:
        print("static_check --self-test: no fixtures under %s" % fdir, file=sys.stderr)
        return 1
    findings, suppressed, _ = scan_paths(root, sorted(fixture_paths))
    actual = {(p, ln, rule) for p, ln, rule, _ in findings}
    expected = expected_from_fixtures(root, fdir)
    missed = expected - actual
    extra = actual - expected
    ok = True
    for p, ln, rule in sorted(missed):
        print("self-test: MISSED expected finding %s:%d %s" % (p, ln, rule),
              file=sys.stderr)
        ok = False
    for p, ln, rule in sorted(extra):
        print("self-test: UNEXPECTED finding %s:%d %s" % (p, ln, rule), file=sys.stderr)
        ok = False
    if suppressed < 1:
        print("self-test: expected at least one honored suppression in the fixtures",
              file=sys.stderr)
        ok = False
    fired = {r for _, _, r in expected}
    silent = set(RULES) - fired
    if silent:
        print("self-test: no fixture exercises rule(s): %s" % ", ".join(sorted(silent)),
              file=sys.stderr)
        ok = False
    if ok:
        print("static_check --self-test: OK (%d seeded findings across %d rules all "
              "fired; %d suppression(s) honored)" % (len(expected), len(fired),
                                                     suppressed))
    # exit 2 (not 1) so CI logs can tell a fixture mismatch (the linter
    # itself regressed) from tree findings (the tree regressed)
    return 0 if ok else 2


def main(argv):
    default_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("files", nargs="*",
                    help="restrict the report to these files (registry stays tree-wide)")
    ap.add_argument("--root", default=default_root, help="repository root")
    ap.add_argument("--self-test", action="store_true",
                    help="verify every rule against tests/lint_fixtures")
    ap.add_argument("--list-rules", action="store_true")
    args = ap.parse_args(argv)

    if args.list_rules:
        for rule in sorted(RULES):
            print("%-28s %s" % (rule, RULES[rule]))
        for rule in sorted(SEMANTIC_RULES):
            print("%-28s %s  [semantic_check.py]" % (rule, SEMANTIC_RULES[rule]))
        return 0
    if args.self_test:
        return run_self_test(args.root)
    return run_lint(args.root, args.files)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
