#!/usr/bin/env python3
"""Cross-translation-unit semantic analyzer: whole-program invariants.

Stdlib only.  Where tools/static_check.py lexes one file at a time, this
pass layer parses all of src/ bench/ tests/ once into a project model --

  * the #include graph (file-level, cycle-checked),
  * a per-file symbol/function table (namespace- and class-qualified),
  * a conservative name-based call graph --

and runs whole-program rule families the per-file rules cannot see:

  sim-layering          the layer DAG in tools/layers.json is machine-
                        checked against the real include graph: any
                        upward #include, any include cycle, and any
                        scanned file the manifest does not cover is a
                        finding
  sim-wallclock-taint   functions reaching core::wall_now() /
                        now_for_watchdog() / std::random_device through
                        the call graph are tainted; calling one from
                        sim-time code is a finding unless the exact
                        (file, callee) edge is allowlisted in the
                        manifest with a reason
  sim-death-swallow     sim::RankDeath is deliberately not a
                        std::exception; every generic `catch (...)` in
                        src/ must rethrow, call
                        sim::rethrow_if_rank_death(), sit behind an
                        explicit RankDeath handler in the same chain, or
                        carry NOLINT(sim-death-swallow): <reason>.  A
                        RankDeath that grows a base class is also a
                        finding (it would become catchable upstream)
  sim-fiber-stack       rank bodies run on 1 MiB guard-paged ucontext
                        fiber stacks (SeqScheduler); function frames
                        estimated over frame_limit_bytes from local
                        array declarations, and call-graph recursion
                        cycles, are findings
  sim-bench-schema      every metric tools/bench_diff.py gates must be
                        emitted by some bench, and every metric the
                        benches emit must be gated, a join key/axis, or
                        allowlisted in the manifest

Suppression: `// NOLINT(sim-<rule>): <reason>` on the finding line or the
comment block above (validated by static_check's sim-bad-suppression), or
the manifest allowlists for edge-shaped findings.

Usage:
  semantic_check.py [--root DIR] [--manifest FILE]  lint the tree
  semantic_check.py --self-test [--root DIR]        seeded-violation
                    fixture tree under tests/lint_fixtures/semantic plus
                    the model-builder unit tests and pinned model stats
  semantic_check.py --test-model [--root DIR]       model-builder tests
                    only (include-cycle detection, overload/namespace
                    call resolution, pinned node/edge counts)
  semantic_check.py --update-stats [--root DIR]     re-pin
                    tools/model_stats.json after intentional changes
  semantic_check.py --list-rules

Exit status: 0 clean; 1 tree findings; 2 self-test/model mismatch.
"""

import argparse
import json
import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import bench_diff  # noqa: E402  (GATED_METRICS / AXIS_FIELDS are the gate schema)
import static_check as sc  # noqa: E402  (shared lexer, scopes, suppressions)

RULES = sc.SEMANTIC_RULES
MANIFEST = "tools/layers.json"
MODEL_STATS = "tools/model_stats.json"
SEM_FIXTURE_DIR = os.path.join("tests", "lint_fixtures", "semantic")

# pinned real-tree stats may drift by this much before the gate fires: the
# gate exists to catch the parser silently finding nothing, not to make
# every source edit regenerate the pin
TREE_STATS_TOLERANCE = 0.25


# --------------------------------------------------------------------------
# project model
# --------------------------------------------------------------------------

_KEYWORDS = frozenset((
    "if", "for", "while", "switch", "catch", "do", "else", "try", "return",
    "sizeof", "alignof", "decltype", "noexcept", "static_assert", "throw",
    "new", "delete", "case", "default", "operator", "void", "int", "bool",
    "char", "short", "long", "float", "double", "auto", "unsigned", "signed",
    "const", "constexpr", "using", "typedef", "template", "typename",
    "co_await", "co_return", "co_yield", "requires", "assert", "defined",
))

_RECORD_NAME_RE = re.compile(
    r"\b(?:class|struct|union)\s+(?:alignas\s*\([^)]*\)\s*)?(\w+)")
_NS_NAME_RE = re.compile(r"\bnamespace\s+([\w:]+)")
_CAND_RE = re.compile(r"([A-Za-z_~][\w]*)\s*\(")
_QUAL_PREFIX_RE = re.compile(r"((?:\w+\s*::\s*)+)\s*$")
_HEAD_TAIL_RE = re.compile(
    r"(?:\s|&|const\b|noexcept\b(?:\s*\([^()]*\))?|override\b|final\b|"
    r"mutable\b|->[^{]*|:(?!:).*|"
    r"QUDA_[A-Z_]+(?:\s*\([^()]*(?:\([^()]*\)[^()]*)*\))?)*", re.S)
_CALL_RE = re.compile(r"((?:[A-Za-z_]\w*\s*::\s*)*[A-Za-z_~][\w]*)\s*\(")
_INCLUDE_RE = re.compile(r'\s*#\s*include\s*"([^"]+)"')

# element sizes for the frame estimator; unknown element types fall back to
# _DEFAULT_ELEM_BYTES (a guess is fine -- the rule is a 64 KiB order-of-
# magnitude tripwire, not an ABI model)
_SIZEOF = {
    "bool": 1, "char": 1, "signed char": 1, "unsigned char": 1,
    "short": 2, "unsigned short": 2, "int": 4, "unsigned": 4,
    "unsigned int": 4, "long": 8, "unsigned long": 8, "long long": 8,
    "unsigned long long": 8, "float": 4, "double": 8, "long double": 16,
    "std::size_t": 8, "size_t": 8, "std::ptrdiff_t": 8,
    "std::int8_t": 1, "std::uint8_t": 1, "std::int16_t": 2,
    "std::uint16_t": 2, "std::int32_t": 4, "std::uint32_t": 4,
    "std::int64_t": 8, "std::uint64_t": 8,
    "int8_t": 1, "uint8_t": 1, "int16_t": 2, "uint16_t": 2,
    "int32_t": 4, "uint32_t": 4, "int64_t": 8, "uint64_t": 8,
    "complexf": 8, "complexd": 16,
}
_DEFAULT_ELEM_BYTES = 16

_ARRAY_DECL_RE = re.compile(
    r"\b([A-Za-z_][\w:]*(?:\s*<[^<>;(){}]*>)?(?:\s+(?:const|unsigned|signed|"
    r"long|short|char|int))*)\s+[A-Za-z_]\w*\s*((?:\[\s*\d+\s*\])+)")
_STD_ARRAY_RE = re.compile(
    r"\b(?:std\s*::\s*)?array\s*<\s*([^,<>]+?)\s*,\s*(\d+)\s*>")


class Scope:
    __slots__ = ("start", "end", "kind", "name", "head")

    def __init__(self, start, end, kind, name, head):
        self.start, self.end = start, end
        self.kind, self.name, self.head = kind, name, head


def build_named_scopes(code):
    """Like static_check.build_scopes, but keeps each scope's head text and
    the namespace/record name it declares."""
    scopes = []
    stack = []
    stmt_start = 0
    for i, c in enumerate(code):
        if c == "{":
            head = code[stmt_start:i]
            prev = head.rstrip()[-1:] if head.rstrip() else ""
            name = ""
            if sc._NS_RE.search(head):
                kind = "namespace"
                m = _NS_NAME_RE.search(head)
                name = m.group(1) if m else ""
            elif sc._RECORD_RE.search(head) and "(" not in head:
                kind = "record"
                m = _RECORD_NAME_RE.search(head)
                name = m.group(1) if m else ""
            elif prev in ("=", ",", "(", "{") or prev == "":
                kind = "init"
            else:
                kind = "code"
            stack.append((i, kind, name, head))
            stmt_start = i + 1
        elif c == "}":
            if stack:
                start, kind, name, head = stack.pop()
                scopes.append(Scope(start, i, kind, name, head))
            stmt_start = i + 1
        elif c == ";":
            stmt_start = i + 1
    while stack:
        start, kind, name, head = stack.pop()
        scopes.append(Scope(start, len(code), kind, name, head))
    scopes.sort(key=lambda s: s.start)
    return scopes


def parse_function_head(head):
    """(name, explicit_qual) for a function-definition head, else None.
    Picks the first identifier(...) whose parameter list closes into a
    legal definition tail (cv/ref/noexcept/trailing-return/ctor-init)."""
    for m in _CAND_RE.finditer(head):
        name = m.group(1)
        if name in _KEYWORDS:
            continue
        op = head.index("(", m.end() - 1)
        close = sc.match_delim(head, op, "(", ")")
        if close <= op:
            continue
        if not _HEAD_TAIL_RE.fullmatch(head[close:]):
            continue
        qm = _QUAL_PREFIX_RE.search(head[:m.start(1)])
        qual = (re.sub(r"\s+", "", qm.group(1)) if qm else "") + name
        return name, qual
    return None


class Call:
    __slots__ = ("offset", "name", "bare", "member", "this_member")

    def __init__(self, offset, name, member, this_member=False):
        self.offset = offset
        self.name = name
        self.bare = name.split("::")[-1]
        self.member = member            # obj.f(...) / p->f(...) syntax
        self.this_member = this_member  # this->f(...): receiver type known


class Function:
    __slots__ = ("name", "qual", "cls", "file", "line0", "body_start",
                 "body_end", "calls", "frame_bytes")

    def __init__(self, name, qual, cls, file, line0, body_start, body_end):
        self.name, self.qual, self.cls = name, qual, cls
        self.file, self.line0 = file, line0
        self.body_start, self.body_end = body_start, body_end
        self.calls = []
        self.frame_bytes = 0

    def __repr__(self):
        return "%s (%s:%d)" % (self.qual, self.file, self.line0 + 1)


class SourceFile:
    def __init__(self, path, text):
        self.path = path
        self.ctx = sc.FileCtx(path, sc.effective_path(path, text), text)
        self.includes = []   # (line0, raw_target, resolved_path_or_None)
        self.functions = []

    @property
    def effective(self):
        return self.ctx.effective


def _estimate_frame(body):
    total = 0
    for m in _ARRAY_DECL_RE.finditer(body):
        decl_type = re.sub(r"\s+", " ", m.group(1)).strip()
        if re.search(r"\b(?:static|extern|new)\b", decl_type):
            continue
        elems = 1
        for dim in re.findall(r"\[\s*(\d+)\s*\]", m.group(2)):
            elems *= int(dim)
        base = re.sub(r"\bconst\b|\bconstexpr\b", "", decl_type).strip()
        total += elems * _SIZEOF.get(base, _DEFAULT_ELEM_BYTES)
    for m in _STD_ARRAY_RE.finditer(body):
        base = re.sub(r"\s+", " ", m.group(1)).replace("const ", "").strip()
        total += int(m.group(2)) * _SIZEOF.get(base, _DEFAULT_ELEM_BYTES)
    return total


class Model:
    def __init__(self, root, scan_dirs=sc.SCAN_DIRS):
        self.root = root
        self.files = {}            # path -> SourceFile
        self.defs_by_name = {}     # bare name -> [Function]
        self.include_cycles = []   # list of [path, path, ...] cycles
        self._load(scan_dirs)
        self._resolve_includes()
        self._extract_functions()
        self._find_include_cycles()

    # -- loading ------------------------------------------------------------

    def _load(self, scan_dirs):
        fixture_prefix = sc.FIXTURE_DIR.replace(os.sep, "/")
        for d in scan_dirs:
            base = os.path.join(self.root, d)
            for dirpath, _, names in os.walk(base):
                rel_dir = os.path.relpath(dirpath, self.root).replace(os.sep, "/")
                if rel_dir.startswith(fixture_prefix):
                    continue
                for name in sorted(names):
                    if not name.endswith(sc.SCAN_EXTS):
                        continue
                    rel = (rel_dir + "/" + name) if rel_dir != "." else name
                    with open(os.path.join(self.root, rel), "r",
                              encoding="utf-8") as f:
                        text = f.read()
                    self.files[rel] = SourceFile(rel, text)

    def _resolve_includes(self):
        for path, sf in self.files.items():
            raw_lines = sf.ctx.lines
            code_lines = sf.ctx.code_lines
            for ln, raw in enumerate(raw_lines):
                m = _INCLUDE_RE.match(raw)
                if not m:
                    continue
                if ln < len(code_lines) and "include" not in code_lines[ln]:
                    continue  # the directive itself was inside a comment
                inc = m.group(1)
                resolved = None
                for cand in ("src/" + inc,
                             os.path.dirname(path) + "/" + inc if
                             os.path.dirname(path) else inc,
                             inc):
                    cand = os.path.normpath(cand).replace(os.sep, "/")
                    if cand in self.files:
                        resolved = cand
                        break
                sf.includes.append((ln, inc, resolved))

    # -- symbol / call extraction -------------------------------------------

    def _extract_functions(self):
        for path, sf in self.files.items():
            code = sf.ctx.code
            scopes = build_named_scopes(code)
            for s in scopes:
                if s.kind != "code":
                    continue
                # only outermost code scopes are function bodies; nested code
                # scopes are control-flow blocks (or lambdas, folded into
                # their definer)
                if any(o.start < s.start and s.end <= o.end and
                       o.kind in ("code", "init") for o in scopes):
                    continue
                parsed = parse_function_head(s.head)
                if not parsed:
                    continue
                name, qual = parsed
                ns_parts, record_parts = [], []
                for o in scopes:
                    if o.start < s.start and s.end <= o.end:
                        if o.kind == "namespace" and o.name:
                            ns_parts.append(o.name)
                        elif o.kind == "record" and o.name:
                            record_parts.append(o.name)
                context = "::".join(ns_parts + record_parts)
                full_qual = (context + "::" + qual) if context else qual
                cls = record_parts[-1] if record_parts else None
                if cls is None and "::" in qual:
                    # out-of-class definition: Class::method
                    cls = qual.split("::")[-2]
                fn = Function(name, full_qual, cls, path,
                              sc.line_of(code, s.start), s.start + 1, s.end)
                body = code[fn.body_start:fn.body_end]
                for cm in _CALL_RE.finditer(body):
                    cname = re.sub(r"\s+", "", cm.group(1))
                    if cname.split("::")[-1] in _KEYWORDS or \
                       cname.split("::")[0] in ("std",):
                        continue
                    off = fn.body_start + cm.start()
                    prev = code[off - 1] if off > 0 else " "
                    member = prev in ".>"
                    this_member = bool(member and re.search(
                        r"this\s*->\s*$", code[max(0, off - 12):off]))
                    fn.calls.append(Call(off, cname, member, this_member))
                fn.frame_bytes = _estimate_frame(body)
                sf.functions.append(fn)
                self.defs_by_name.setdefault(name, []).append(fn)

    # -- include cycles -----------------------------------------------------

    def _find_include_cycles(self):
        graph = {p: sorted({r for _, _, r in sf.includes if r and r != p})
                 for p, sf in self.files.items()}
        seen_cycles = set()
        color = {}
        stack = []

        def dfs(node):
            color[node] = 1
            stack.append(node)
            for nxt in graph.get(node, ()):
                if color.get(nxt, 0) == 1:
                    cyc = stack[stack.index(nxt):] + [nxt]
                    lo = min(range(len(cyc) - 1), key=lambda i: cyc[i])
                    canon = tuple(cyc[lo:-1] + cyc[:lo])
                    if canon not in seen_cycles:
                        seen_cycles.add(canon)
                        self.include_cycles.append(list(canon) + [canon[0]])
                elif color.get(nxt, 0) == 0:
                    dfs(nxt)
            stack.pop()
            color[node] = 2

        for p in sorted(graph):
            if color.get(p, 0) == 0:
                dfs(p)

    # -- call resolution ----------------------------------------------------

    @staticmethod
    def _container(fn):
        return fn.qual.rsplit("::", 1)[0] if "::" in fn.qual else ""

    def resolve_strict(self, caller, call):
        """Definitions a call confidently refers to (used for recursion
        detection: ambiguity resolves to nothing, not everything)."""
        defs = self.defs_by_name.get(call.bare, [])
        if not defs:
            return []
        if call.member and not call.this_member:
            # obj.f() / ptr->f(): the receiver's type is unknown, so any
            # name-based pick (e.g. the caller's own class for a delegating
            # wrapper) would fabricate edges
            return []
        if "::" in call.name:
            suffix = call.name
            exact = [f for f in defs
                     if f.qual == suffix or f.qual.endswith("::" + suffix)]
            return exact
        if caller.cls:
            same = [f for f in defs if f.cls == caller.cls and
                    f.file == caller.file] or \
                   [f for f in defs if f.cls == caller.cls]
            if same:
                return same
        same_file = [f for f in defs if f.file == caller.file and f.cls is None]
        if len(same_file) > 1:
            same_ns = [f for f in same_file
                       if self._container(f) == self._container(caller)]
            if same_ns:
                same_file = same_ns
        if same_file:
            return same_file
        same_ns = [f for f in defs if f.cls is None and
                   self._container(f) == self._container(caller)]
        if same_ns:
            return same_ns
        if len(defs) == 1:
            return defs
        return []

    def resolve_for_taint(self, caller, call):
        """Conservative resolution for taint propagation: ambiguity widens
        to every free-function candidate instead of narrowing to none."""
        strict = self.resolve_strict(caller, call)
        if strict:
            return strict
        if "::" in call.name or call.member:
            return []
        return [f for f in self.defs_by_name.get(call.bare, ())
                if f.cls is None]

    def stats(self):
        return {
            "files": len(self.files),
            "include_edges": sum(1 for sf in self.files.values()
                                 for _, _, r in sf.includes if r),
            "functions": sum(len(sf.functions) for sf in self.files.values()),
            "call_sites": sum(len(fn.calls) for sf in self.files.values()
                              for fn in sf.functions),
        }


# --------------------------------------------------------------------------
# manifest
# --------------------------------------------------------------------------

class Manifest:
    def __init__(self, path):
        self.path = path
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
        self.layers = doc["layers"]  # bottom -> top
        self.rank = {}
        seen = set()
        for i, layer in enumerate(self.layers):
            if layer["name"] in seen:
                raise ValueError("%s: duplicate layer %r" % (path, layer["name"]))
            seen.add(layer["name"])
            self.rank[layer["name"]] = i
        self.taint = doc.get("wallclock_taint", {})
        self.fiber = doc.get("fiber_stack", {})
        self.bench = doc.get("bench_schema", {})
        # fixture manifests may override the gate schema so the self-test
        # does not depend on the real bench_diff gate set
        self.gated_override = doc.get("gated_metrics")

    def layer_of(self, path):
        """(name, rank) of the most specific manifest entry covering path."""
        best = None
        for i, layer in enumerate(self.layers):
            for p in layer["paths"]:
                if path == p or (p.endswith("/") and path.startswith(p)):
                    spec = len(p) + (1000 if path == p else 0)
                    if best is None or spec > best[0]:
                        best = (spec, layer["name"], i)
        return (best[1], best[2]) if best else (None, None)

    def taint_allowed(self, file, callee):
        for entry in self.taint.get("allow", ()):
            if entry.get("file") == file and entry.get("callee") == callee:
                return True
        return False


# --------------------------------------------------------------------------
# rule passes
# --------------------------------------------------------------------------

class Analysis:
    """Holds the model, manifest, and the finding list the passes fill."""

    def __init__(self, model, manifest, manifest_display=None):
        self.model = model
        self.manifest = manifest
        self.manifest_display = manifest_display or manifest.path
        self.findings = []  # (path, line0, rule, msg)

    def report(self, path, line0, rule, msg):
        self.findings.append((path, line0, rule, msg))


def pass_layering(a):
    man, model = a.manifest, a.model
    for path in sorted(model.files):
        sf = model.files[path]
        eff = sf.effective
        name, rank = man.layer_of(eff)
        if name is None:
            a.report(path, 0, "sim-layering",
                     "file is not covered by the layer manifest (%s); assign "
                     "it to a layer" % a.manifest_display)
            continue
        for ln, raw, resolved in sf.includes:
            if not resolved or resolved == path:
                continue
            tname, trank = man.layer_of(model.files[resolved].effective)
            if tname is None:
                continue  # the includee's own coverage finding says enough
            if trank > rank:
                a.report(path, ln, "sim-layering",
                         "upward include: layer '%s' must not include '%s' "
                         "(layer '%s'); the layer DAG is %s" %
                         (name, raw, tname, a.manifest_display))
    for cyc in model.include_cycles:
        a.report(cyc[0], 0, "sim-layering",
                 "include cycle: " + " -> ".join(cyc))


def pass_wallclock_taint(a):
    man, model = a.manifest, a.model
    seeds = set(man.taint.get("seeds", ()))
    shims = set(man.taint.get("shim_files", ()))
    prefixes = tuple(man.taint.get("sim_time_prefixes", ()))
    if not seeds or not prefixes:
        return

    seed_res = {s: re.compile(r"\b%s\b" % re.escape(s)) for s in seeds}
    direct = {}   # Function -> (offset, seed) first direct seed use
    for path, sf in sorted(model.files.items()):
        if sf.effective in shims:
            continue
        for fn in sf.functions:
            body = sf.ctx.code[fn.body_start:fn.body_end]
            for seed, rx in sorted(seed_res.items()):
                m = rx.search(body)
                if m and not man.taint_allowed(sf.effective, seed):
                    direct.setdefault(fn, (fn.body_start + m.start(), seed))

    tainted = dict(direct)          # Function -> evidence
    via = {fn: seed for fn, (_, seed) in direct.items()}
    changed = True
    while changed:
        changed = False
        for path, sf in sorted(model.files.items()):
            if sf.effective in shims:
                continue
            for fn in sf.functions:
                if fn in tainted:
                    continue
                for call in fn.calls:
                    if man.taint_allowed(sf.effective, call.bare):
                        continue
                    for target in model.resolve_for_taint(fn, call):
                        if target in tainted:
                            tainted[fn] = (call.offset, call.bare)
                            via[fn] = call.bare
                            changed = True
                            break
                    if fn in tainted:
                        break

    def chain(name):
        parts = [name]
        guard = 0
        while parts[-1] not in seeds and guard < 16:
            guard += 1
            nxts = [via[f] for f in via
                    if f.name == parts[-1] and via[f] != parts[-1]]
            if not nxts:
                break
            parts.append(sorted(nxts)[0])
        return " -> ".join(parts)

    for path, sf in sorted(model.files.items()):
        eff = sf.effective
        if eff in shims or not eff.startswith(prefixes):
            continue
        for fn in sf.functions:
            reported = set()
            if fn in direct:
                off, seed = direct[fn]
                ln = sc.line_of(sf.ctx.code, off)
                if ln not in reported:
                    reported.add(ln)
                    a.report(path, ln, "sim-wallclock-taint",
                             "'%s' reads wall-clock/entropy seed '%s' in "
                             "sim-time code; route through the allowlisted "
                             "shim or add a manifest allow entry" %
                             (fn.qual, seed))
            for call in fn.calls:
                if call.bare in seeds:
                    continue  # direct seed use already reported above
                if man.taint_allowed(eff, call.bare):
                    continue
                targets = [t for t in model.resolve_for_taint(fn, call)
                           if t in tainted]
                if not targets:
                    continue
                ln = sc.line_of(sf.ctx.code, call.offset)
                if ln in reported:
                    continue
                reported.add(ln)
                a.report(path, ln, "sim-wallclock-taint",
                         "'%s' calls wall-clock-tainted '%s' (%s) from "
                         "sim-time code" % (fn.qual, call.bare,
                                            chain(call.bare)))


_CATCH_RE = re.compile(r"\bcatch\s*\(")
_RETHROW_RE = re.compile(r"\bthrow\s*;")
_DEATH_GUARD_RE = re.compile(r"\brethrow_if_rank_death\s*\(")
_DEATH_DERIVES_RE = re.compile(r"\b(?:struct|class)\s+RankDeath\s*(?:final\s*)?:(?!:)")


def pass_death_swallow(a):
    model = a.model
    for path, sf in sorted(model.files.items()):
        code = sf.ctx.code
        m = _DEATH_DERIVES_RE.search(code)
        if m:
            a.report(path, sc.line_of(code, m.start()), "sim-death-swallow",
                     "RankDeath must not derive from a base class: generic "
                     "std::exception handlers upstream of transport paths "
                     "must never be able to catch it")
        if not sf.effective.startswith("src/"):
            continue
        handlers = []  # (start, decl, body_start, body_end)
        for cm in _CATCH_RE.finditer(code):
            op = code.index("(", cm.start())
            close = sc.match_delim(code, op, "(", ")")
            decl = code[op + 1:close - 1].strip()
            i = close
            while i < len(code) and code[i].isspace():
                i += 1
            if i >= len(code) or code[i] != "{":
                continue
            handlers.append((cm.start(), decl, i, sc.match_delim(code, i, "{", "}")))
        for idx, (start, decl, bstart, bend) in enumerate(handlers):
            if decl != "...":
                continue
            body = code[bstart:bend]
            if _RETHROW_RE.search(body) or _DEATH_GUARD_RE.search(body):
                continue
            # an explicit RankDeath handler earlier in the same chain proves
            # the generic arm can never see a death (chain = handlers glued
            # back-to-back with only whitespace between them in masked code)
            chain_safe = False
            j = idx - 1
            while j >= 0:
                pstart, pdecl, _, pbend = handlers[j]
                if code[pbend:handlers[j + 1][0]].strip() != "":
                    break
                if re.search(r"\bRankDeath\b", pdecl):
                    chain_safe = True
                    break
                j -= 1
            if chain_safe:
                continue
            a.report(path, sc.line_of(code, start), "sim-death-swallow",
                     "generic catch (...) can swallow sim::RankDeath; "
                     "rethrow, call sim::rethrow_if_rank_death() first, put "
                     "an explicit RankDeath handler before it, or justify "
                     "with NOLINT(sim-death-swallow): <reason>")


def pass_fiber_stack(a):
    man, model = a.manifest, a.model
    limit = int(man.fiber.get("frame_limit_bytes", 65536))
    stack_bytes = int(man.fiber.get("stack_bytes", 1 << 20))
    prefixes = tuple(man.fiber.get("root_prefixes", ("src/",)))
    allowed_rec = set(man.fiber.get("allow_recursion", ()))

    in_scope = []
    for path, sf in sorted(model.files.items()):
        if not sf.effective.startswith(prefixes):
            continue
        for fn in sf.functions:
            in_scope.append(fn)
            if fn.frame_bytes > limit:
                a.report(path, fn.line0, "sim-fiber-stack",
                         "'%s' has an estimated %d KiB stack frame (> %d KiB "
                         "budget on the %d KiB fiber stacks); move bulk "
                         "locals to the heap" %
                         (fn.qual, fn.frame_bytes // 1024, limit // 1024,
                          stack_bytes // 1024))

    # recursion cycles over confident call edges (Tarjan SCC)
    scope_set = set(in_scope)
    edges = {fn: set() for fn in in_scope}
    for fn in in_scope:
        for call in fn.calls:
            # recursion edges demand a UNIQUE resolution: an overload set
            # (f(int) calling f(double)) must not become a false self-loop
            targets = model.resolve_strict(fn, call)
            if len(targets) == 1 and targets[0] in scope_set:
                if targets[0] is fn and \
                        len(model.defs_by_name.get(call.bare, ())) > 1:
                    # a self-call whose name has other definitions is far
                    # more likely a wrapper forwarding to an overload the
                    # name-based model cannot type-match (pack_face 1-D ->
                    # 4-D, norm2 field -> site) than true recursion
                    continue
                edges[fn].add(targets[0])

    index = {}
    lowlink = {}
    on_stack = set()
    stack = []
    counter = [0]
    sccs = []

    def strongconnect(v):
        # iterative Tarjan (the analyzed tree may be deep)
        work = [(v, iter(sorted(edges[v], key=lambda f: (f.file, f.line0))))]
        index[v] = lowlink[v] = counter[0]
        counter[0] += 1
        stack.append(v)
        on_stack.add(v)
        while work:
            node, it = work[-1]
            advanced = False
            for w in it:
                if w not in index:
                    index[w] = lowlink[w] = counter[0]
                    counter[0] += 1
                    stack.append(w)
                    on_stack.add(w)
                    work.append((w, iter(sorted(edges[w],
                                                key=lambda f: (f.file, f.line0)))))
                    advanced = True
                    break
                elif w in on_stack:
                    lowlink[node] = min(lowlink[node], index[w])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                comp = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    comp.append(w)
                    if w is node:
                        break
                sccs.append(comp)

    for fn in sorted(edges, key=lambda f: (f.file, f.line0)):
        if fn not in index:
            strongconnect(fn)

    for comp in sccs:
        cyclic = len(comp) > 1 or comp[0] in edges[comp[0]]
        if not cyclic:
            continue
        comp.sort(key=lambda f: (f.file, f.line0))
        if any(f.qual in allowed_rec for f in comp):
            continue
        anchor = comp[0]
        names = " -> ".join(f.qual for f in comp) + " -> " + comp[0].qual
        a.report(anchor.file, anchor.line0, "sim-fiber-stack",
                 "recursion cycle reachable on the fiber stacks: %s; unbounded "
                 "recursion cannot be proven safe against the %d KiB stack "
                 "(allowlist in the manifest with the bound argued)" %
                 (names, stack_bytes // 1024))


_FIELD_RE = re.compile(r'\.\s*field\s*\(\s*"([^"]+)"\s*(\+?)')


def pass_bench_schema(a):
    man, model = a.manifest, a.model
    gated = (set(man.gated_override) if man.gated_override is not None
             else set(bench_diff.GATED_METRICS))
    axes = set(bench_diff.AXIS_FIELDS)
    join_keys = set(man.bench.get("join_keys", ()))
    ungated = set(man.bench.get("ungated_metrics", ()))
    prefixes = tuple(p[:-1] for p in ungated if p.endswith("*"))
    exact_allowed = gated | axes | join_keys | \
        {u for u in ungated if not u.endswith("*")}

    emitted = {}  # name or prefix -> first (path, line0); prefix keys end '*'
    for path, sf in sorted(model.files.items()):
        if not sf.effective.startswith("bench/"):
            continue
        for m in _FIELD_RE.finditer(sf.ctx.text):
            name = m.group(1) + ("*" if m.group(2) else "")
            ln = sf.ctx.text.count("\n", 0, m.start())
            emitted.setdefault(name, (path, ln))
            if name.endswith("*"):
                continue
            if name in exact_allowed or name.startswith(prefixes):
                continue
            a.report(path, ln, "sim-bench-schema",
                     "bench emits metric '%s' that tools/bench_diff.py "
                     "neither gates nor allowlists; gate it or add it to "
                     "join_keys/ungated_metrics in %s" %
                     (name, a.manifest_display))

    emitted_exact = {n for n in emitted if not n.endswith("*")}
    emitted_prefixes = tuple(n[:-1] for n in emitted if n.endswith("*"))
    if not emitted:
        return  # no benches in this tree: nothing to cross-check
    for metric in sorted(gated):
        if metric in emitted_exact or metric.startswith(emitted_prefixes):
            continue
        a.report(a.manifest_display if man.gated_override is not None
                 else "tools/bench_diff.py",
                 _gate_line(metric) if man.gated_override is None else 0,
                 "sim-bench-schema",
                 "gated metric '%s' is emitted by no bench; the gate can "
                 "never fire (drop it or emit it)" % metric)


def _gate_line(metric):
    """0-based line of a gated metric inside bench_diff.py (best effort)."""
    src = os.path.join(os.path.dirname(os.path.abspath(__file__)), "bench_diff.py")
    try:
        with open(src, "r", encoding="utf-8") as f:
            for i, line in enumerate(f):
                if '"%s"' % metric in line:
                    return i
    except OSError:
        pass
    return 0


PASSES = [pass_layering, pass_wallclock_taint, pass_death_swallow,
          pass_fiber_stack, pass_bench_schema]


# --------------------------------------------------------------------------
# suppression + driver
# --------------------------------------------------------------------------

def apply_suppressions(a):
    """Drop findings justified by a NOLINT(sim-<rule>): <reason> on the
    line or the comment block above.  Returns (kept, honored_count)."""
    kept = []
    honored = 0
    nolint_by_file = {}
    for path, sf in a.model.files.items():
        nolint, _ = sf.ctx.suppressions()
        nolint_by_file[path] = (sf.ctx, nolint)
    for path, line0, rule, msg in sorted(set(a.findings)):
        ctx_nolint = nolint_by_file.get(path)
        if ctx_nolint:
            ctx, nolint = ctx_nolint
            if any(rule in nolint.get(ln, ())
                   for ln in ctx.comment_block_lines(line0)):
                honored += 1
                continue
        kept.append((path, line0 + 1, rule, msg))
    kept.sort()
    return kept, honored


def analyze(root, manifest_path, scan_dirs=sc.SCAN_DIRS, manifest_display=None):
    model = Model(root, scan_dirs)
    manifest = Manifest(manifest_path)
    a = Analysis(model, manifest, manifest_display)
    for p in PASSES:
        p(a)
    return a


def run_lint(root, manifest_path):
    a = analyze(root, manifest_path)
    findings, honored = apply_suppressions(a)
    if findings:
        print("semantic_check: FAIL -- %d finding(s):" % len(findings),
              file=sys.stderr)
        sc.print_findings(findings)
        print(sc.rule_summary_line("semantic_check", findings), file=sys.stderr)
        if any(rule == "sim-layering" for _, _, rule, _ in findings):
            print("semantic_check: layer manifest: %s" %
                  os.path.join(root, MANIFEST), file=sys.stderr)
        print("semantic_check: suppress with '// NOLINT(sim-<rule>): "
              "<reason>' or a manifest allow entry; see README 'Static "
              "analysis'", file=sys.stderr)
        return 1
    stats = a.model.stats()
    print("semantic_check: OK (%d files, %d include edges, %d functions, "
          "%d call sites; 0 findings, %d justified suppression(s))" %
          (stats["files"], stats["include_edges"], stats["functions"],
           stats["call_sites"], honored))
    return 0


# --------------------------------------------------------------------------
# self-test: seeded fixture tree + model-builder unit tests + pinned stats
# --------------------------------------------------------------------------

def expected_sem_findings(root):
    expected = set()
    tree = os.path.join(root, SEM_FIXTURE_DIR, "tree")
    for dirpath, _, names in os.walk(tree):
        for name in sorted(names):
            if not name.endswith(sc.SCAN_EXTS):
                continue
            rel = os.path.relpath(os.path.join(dirpath, name), tree)
            rel = rel.replace(os.sep, "/")
            with open(os.path.join(dirpath, name), "r", encoding="utf-8") as f:
                for i, raw in enumerate(f.read().split("\n")):
                    m = re.search(r"EXPECT-SEM(-NEXT)?:\s*([\w\-, ]+)", raw)
                    if not m:
                        continue
                    line1 = i + 2 if m.group(1) else i + 1
                    for rule in m.group(2).split(","):
                        rule = rule.strip()
                        if rule:
                            expected.add((rel, line1, rule))
    extra = os.path.join(root, SEM_FIXTURE_DIR, "expect_extra.json")
    if os.path.exists(extra):
        with open(extra, "r", encoding="utf-8") as f:
            for path, line1, rule in json.load(f):
                expected.add((path, line1, rule))
    return expected


def run_fixture_test(root):
    tree = os.path.join(root, SEM_FIXTURE_DIR, "tree")
    manifest = os.path.join(root, SEM_FIXTURE_DIR, "layers.json")
    if not os.path.isdir(tree):
        print("semantic_check --self-test: no fixture tree under %s" %
              tree, file=sys.stderr)
        return False
    a = analyze(tree, manifest, scan_dirs=("src", "bench", "tests"),
                manifest_display="layers.json")
    findings, honored = apply_suppressions(a)
    actual = {(p, ln, rule) for p, ln, rule, _ in findings}
    expected = expected_sem_findings(root)
    ok = True
    for p, ln, rule in sorted(expected - actual):
        print("self-test: MISSED expected finding %s:%d %s" % (p, ln, rule),
              file=sys.stderr)
        ok = False
    for p, ln, rule in sorted(actual - expected):
        print("self-test: UNEXPECTED finding %s:%d %s" % (p, ln, rule),
              file=sys.stderr)
        ok = False
    if honored < 1:
        print("self-test: expected at least one honored suppression in the "
              "fixture tree", file=sys.stderr)
        ok = False
    fired = {r for _, _, r in expected}
    silent = set(RULES) - fired
    if silent:
        print("self-test: no fixture exercises rule(s): %s" %
              ", ".join(sorted(silent)), file=sys.stderr)
        ok = False
    if ok:
        print("semantic_check fixtures: OK (%d seeded findings across %d "
              "rules; %d suppression(s) honored)" %
              (len(expected), len(fired), honored))
    return ok


def run_model_tests(root):
    """Unit tests for the project-model builder itself, on the synthetic
    tree under tests/lint_fixtures/semantic/model."""
    mroot = os.path.join(root, SEM_FIXTURE_DIR, "model")
    ok = True

    def check(cond, what):
        nonlocal ok
        if cond:
            print("model-test: OK   %s" % what)
        else:
            print("model-test: FAIL %s" % what, file=sys.stderr)
            ok = False

    model = Model(mroot, scan_dirs=("src",))

    # include-graph: the seeded a<->b cycle is detected, once
    check(len(model.include_cycles) == 1 and
          sorted(model.include_cycles[0][:-1]) ==
          ["src/a/cycle_a.h", "src/b/cycle_b.h"],
          "include-graph cycle detection (a <-> b, reported once)")

    # symbol table: namespaced definitions resolved with full quals
    quals = {fn.qual for sf in model.files.values() for fn in sf.functions}
    check("ns_a::helper" in quals and "ns_b::helper" in quals and
          "ns_a::Widget::helper" in quals,
          "namespace/class-qualified symbol table")

    # call resolution: bare call from ns_a::caller prefers the same-file
    # free helper; qualified call resolves across namespaces; method call
    # from inside Widget prefers the class overload
    by_qual = {}
    for sf in model.files.values():
        for fn in sf.functions:
            by_qual[fn.qual] = fn

    caller = by_qual.get("ns_a::caller")
    target = None
    if caller:
        call = next((c for c in caller.calls if c.bare == "helper"), None)
        if call:
            res = model.resolve_strict(caller, call)
            target = res[0].qual if len(res) == 1 else None
    check(target == "ns_a::helper",
          "bare-call overload resolution (same file wins): got %r" % target)

    qcaller = by_qual.get("ns_a::cross_caller")
    qtarget = None
    if qcaller:
        call = next((c for c in qcaller.calls if "::" in c.name), None)
        if call:
            res = model.resolve_strict(qcaller, call)
            qtarget = res[0].qual if len(res) == 1 else None
    check(qtarget == "ns_b::helper",
          "qualified-call resolution across namespaces: got %r" % qtarget)

    mcaller = by_qual.get("ns_a::Widget::spin")
    mtarget = None
    if mcaller:
        call = next((c for c in mcaller.calls if c.bare == "helper"), None)
        if call:
            res = model.resolve_strict(mcaller, call)
            mtarget = res[0].qual if len(res) == 1 else None
    check(mtarget == "ns_a::Widget::helper",
          "method-call resolution (same class wins): got %r" % mtarget)

    # pinned stats: exact on the synthetic model tree (it only changes
    # deliberately), tolerance-banded on the real tree (the gate catches
    # the parser silently collapsing, not ordinary source growth)
    stats_path = os.path.join(root, MODEL_STATS)
    if not os.path.exists(stats_path):
        check(False, "pinned stats file %s exists (run --update-stats)" %
              MODEL_STATS)
        return ok
    with open(stats_path, "r", encoding="utf-8") as f:
        pinned = json.load(f)

    fstats = model.stats()
    check(fstats == pinned.get("model_fixture"),
          "model-fixture stats pinned exactly: %s vs pinned %s" %
          (fstats, pinned.get("model_fixture")))

    tstats = Model(root).stats()
    drifted = []
    for key, val in pinned.get("tree", {}).items():
        cur = tstats.get(key, 0)
        if val and abs(cur - val) / float(val) > TREE_STATS_TOLERANCE:
            drifted.append("%s: %d vs pinned %d" % (key, cur, val))
    check(not drifted,
          "tree-wide node/edge counts within %d%% of the pin (%s): %s" %
          (int(TREE_STATS_TOLERANCE * 100), MODEL_STATS,
           "; ".join(drifted) if drifted else tstats))
    return ok


def update_stats(root):
    mroot = os.path.join(root, SEM_FIXTURE_DIR, "model")
    doc = {
        "_doc": "pinned by semantic_check.py --update-stats; model_fixture "
                "is compared exactly, tree within a +-%d%% band"
                % int(TREE_STATS_TOLERANCE * 100),
        "model_fixture": Model(mroot, scan_dirs=("src",)).stats(),
        "tree": Model(root).stats(),
    }
    path = os.path.join(root, MODEL_STATS)
    with open(path, "w", encoding="utf-8") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")
    print("semantic_check: pinned model stats -> %s" % path)
    return 0


def run_self_test(root):
    ok = run_fixture_test(root)
    ok = run_model_tests(root) and ok
    if ok:
        print("semantic_check --self-test: OK")
    return 0 if ok else 2


def main(argv):
    default_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=default_root, help="repository root")
    ap.add_argument("--manifest", default=None,
                    help="layer manifest (default: <root>/%s)" % MANIFEST)
    ap.add_argument("--self-test", action="store_true",
                    help="fixture tree + model-builder tests + pinned stats")
    ap.add_argument("--test-model", action="store_true",
                    help="model-builder unit tests only")
    ap.add_argument("--update-stats", action="store_true",
                    help="re-pin %s" % MODEL_STATS)
    ap.add_argument("--list-rules", action="store_true")
    args = ap.parse_args(argv)

    if args.list_rules:
        for rule in sorted(RULES):
            print("%-24s %s" % (rule, RULES[rule]))
        return 0
    if args.update_stats:
        return update_stats(args.root)
    if args.self_test:
        return run_self_test(args.root)
    if args.test_model:
        return 0 if run_model_tests(args.root) else 2
    manifest = args.manifest or os.path.join(args.root, MANIFEST)
    return run_lint(args.root, manifest)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
