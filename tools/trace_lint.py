#!/usr/bin/env python3
"""Lint a QUDA_SIM_TRACE export against tools/trace_schema.json.

Stdlib only (the repo adds no dependencies): the validator implements the
JSON-Schema subset the schema file declares -- type, const, enum, required,
properties, additionalProperties (boolean), minimum, minLength -- which is
all the exporter's flat one-object-per-line format needs.

Beyond per-event schema checks it enforces the structural contracts the
test suite relies on:
  * the file is a single valid JSON document with the expected top level;
  * every traceEvents entry validates against the schema of its 'ph' phase;
  * otherData.events equals the number of non-metadata events;
  * the exporter's one-object-per-line invariant holds (so greps and the
    golden-trace tests can address events by line);
  * every (pid, tid) that carries events also carries a thread_name
    metadata record, and every pid a process_name;
  * the happens-before fields the critical-path analyzer consumes are
    semantically sound: dep_rank stays inside [-1, otherData.ranks);
    every mpi_wait span in a multi-rank trace names its sender, every
    allreduce span names its gate rank, and kernel/copy spans carry a
    non-negative issue anchor (dep_ts) and edge weight;
  * the rank-failure recovery contracts (DESIGN.md section 10) hold: on
    each rank every 'rank_failure' instant is answered by a 'rollback'
    span, and every two-phase 'checkpoint' span is closed by a
    'ckpt_commit' span or a 'ckpt_abort' instant for the same iteration;
  * telemetry 'anomaly' instants (DESIGN.md section 13) ride the solver
    track (cat 'solver', tid 12) with args.bytes holding the AnomalyKind
    (0..3) and args.seq the iteration (>= -1);
  * the interconnect link classes (DESIGN.md section 12) are sound: every
    msg_flight span's args.link matches the class derived from the
    receiver (pid), the sender (args.peer), and the node/switch topology
    in otherData (gpus_per_node, nodes_per_switch); every other event
    carries link = -1.

Usage: trace_lint.py [--schema tools/trace_schema.json] TRACE.json [...]
Exit status 0 when every file is clean, 1 otherwise.
"""

import argparse
import json
import os
import sys

_TYPES = {
    "object": dict,
    "string": str,
    "integer": int,
    "number": (int, float),
    "boolean": bool,
}


def validate(value, schema, path, errors):
    """Validate `value` against the schema subset; append messages to errors."""
    if "const" in schema and value != schema["const"]:
        errors.append(f"{path}: expected {schema['const']!r}, got {value!r}")
        return
    if "type" in schema:
        expected = _TYPES[schema["type"]]
        ok = isinstance(value, expected)
        if schema["type"] in ("integer", "number") and isinstance(value, bool):
            ok = False  # bool is an int subclass in Python; the schema means numbers
        if schema["type"] == "integer" and isinstance(value, float):
            ok = value.is_integer()
        if not ok:
            errors.append(f"{path}: expected {schema['type']}, got {type(value).__name__}")
            return
    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} not in {schema['enum']}")
    if "minimum" in schema and isinstance(value, (int, float)) and value < schema["minimum"]:
        errors.append(f"{path}: {value} < minimum {schema['minimum']}")
    if "minLength" in schema and isinstance(value, str) and len(value) < schema["minLength"]:
        errors.append(f"{path}: shorter than {schema['minLength']}")
    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                errors.append(f"{path}: missing required key {key!r}")
        props = schema.get("properties", {})
        for key, sub in props.items():
            if key in value:
                validate(value[key], sub, f"{path}.{key}", errors)
        if schema.get("additionalProperties", True) is False:
            for key in value:
                if key not in props:
                    errors.append(f"{path}: unexpected key {key!r}")


def check_dep_fields(ev, ranks, where, errors):
    """Semantic checks on the happens-before edge fields (dep_rank, dep_ts,
    edge_us) that src/trace/critpath.cpp walks.  Schema validation already
    covers types and minimums; this enforces what the analyzer assumes."""
    args = ev.get("args")
    if not isinstance(args, dict) or "dep_rank" not in args:
        return  # missing args already reported by the schema pass
    dep_rank = args.get("dep_rank")
    dep_ts = args.get("dep_ts")
    edge = args.get("edge_us")
    if not all(isinstance(v, (int, float)) for v in (dep_rank, dep_ts, edge)):
        return  # type errors already reported by the schema pass
    name = ev.get("name")
    if isinstance(ranks, int) and dep_rank >= ranks:
        errors.append(f"{where}: dep_rank {dep_rank} out of range for {ranks} ranks")
    if ev.get("ph") != "X":
        return
    # cross-rank edges: a completed receive names its sender, a completed
    # allreduce names the rank whose arrival gated the rendezvous
    if name == "mpi_wait" and isinstance(ranks, int) and ranks > 1 and dep_rank < 0:
        errors.append(f"{where}: mpi_wait span carries no sender edge (dep_rank=-1)")
    if name == "allreduce" and dep_rank < 0:
        errors.append(f"{where}: allreduce span carries no gate-rank edge")
    # device edges: kernels and copies anchor to their host issue time
    if ev.get("cat") in ("kernel", "copy"):
        if dep_ts < 0:
            errors.append(f"{where}: {name} span has negative issue anchor dep_ts={dep_ts}")
        if edge < 0:
            errors.append(f"{where}: {name} span has negative edge weight {edge}")


def check_link_fields(ev, gpus_per_node, nodes_per_switch, where, errors):
    """Semantic check on args.link (sim::LinkClass): a delivered msg_flight
    span must be classified, and the class must match the topology declared
    in otherData -- same node -> 0 (shm), same leaf switch -> 1 (ib),
    different leaves -> 2 (cross-switch).  Non-wire events carry -1."""
    args = ev.get("args")
    if not isinstance(args, dict) or "link" not in args:
        return  # missing args/link already reported by the schema pass
    link = args.get("link")
    if not isinstance(link, int):
        return  # type errors already reported by the schema pass
    if ev.get("name") != "msg_flight" or ev.get("ph") != "X":
        if link != -1:
            errors.append(f"{where}: non-wire event {ev.get('name')!r} carries "
                          f"link {link} (expected -1)")
        return
    peer = args.get("peer")
    pid = ev.get("pid")
    if not isinstance(peer, int) or peer < 0 or not isinstance(pid, int):
        errors.append(f"{where}: msg_flight span has no usable sender (peer={peer})")
        return
    if not isinstance(gpus_per_node, int) or gpus_per_node < 1:
        return  # topology not declared (pre-schema trace); schema pass reports it
    src_node, dst_node = peer // gpus_per_node, pid // gpus_per_node
    if src_node == dst_node:
        expected = 0
    elif nodes_per_switch and src_node // nodes_per_switch == dst_node // nodes_per_switch:
        expected = 1
    elif not nodes_per_switch:
        expected = 1  # flat network: every off-node message is one IB hop
    else:
        expected = 2
    if link != expected:
        errors.append(f"{where}: msg_flight {peer}->{pid} classified link {link}, "
                      f"topology says {expected} (gpus_per_node={gpus_per_node}, "
                      f"nodes_per_switch={nodes_per_switch})")


def check_anomaly(ev, where, errors):
    """Semantic check on telemetry 'anomaly' instants (src/trace/telemetry.cpp):
    the monitors' findings ride the solver track as instants with args.bytes
    carrying the telemetry::AnomalyKind (0..3) and args.seq the iteration the
    monitor fired at (-1 for post-hoc whole-run findings)."""
    if ev.get("name") != "anomaly" or ev.get("ph") != "i":
        return
    if ev.get("cat") != "solver":
        errors.append(f"{where}: anomaly instant carries cat {ev.get('cat')!r} "
                      "(expected 'solver')")
    if ev.get("tid") != 12:
        errors.append(f"{where}: anomaly instant rides tid {ev.get('tid')} "
                      "(expected the solver track, tid 12)")
    args = ev.get("args")
    if not isinstance(args, dict):
        return  # missing args already reported by the schema pass
    kind = args.get("bytes")
    if isinstance(kind, int) and not 0 <= kind <= 3:
        errors.append(f"{where}: anomaly kind {kind} outside AnomalyKind range [0, 3]")
    seq = args.get("seq")
    if isinstance(seq, int) and seq < -1:
        errors.append(f"{where}: anomaly iteration seq={seq} below the -1 floor")


def check_recovery(events, errors):
    """Structural checks on the rank-failure recovery events the checkpoint/
    restart layer records (cat 'fault').  Per rank: a 'rank_failure' instant
    marks a survivor detecting a dead peer and must be answered by a
    'rollback' span (a rollback with no detection, or a detection never
    rolled back, means the recovery driver lost an epoch); a 'checkpoint'
    span opens a two-phase commit for its iteration (args.seq) and must be
    closed by a 'ckpt_commit' span or a 'ckpt_abort' instant for the same
    iteration before the next one opens."""
    per_pid = {}
    for i, ev in enumerate(events):
        if isinstance(ev, dict) and ev.get("cat") == "fault" and ev.get("ph") in ("X", "i"):
            per_pid.setdefault(ev.get("pid"), []).append((i, ev))
    for pid, evs in sorted(per_pid.items(), key=lambda kv: str(kv[0])):
        pending_failures = []  # rank_failure instants awaiting their rollback
        open_ckpt = None       # (index, iteration) of the in-flight two-phase commit
        for i, ev in evs:
            name, ph = ev.get("name"), ev.get("ph")
            seq = ev.get("args", {}).get("seq") if isinstance(ev.get("args"), dict) else None
            where = f"$.traceEvents[{i}]"
            if ph == "i" and name == "rank_failure":
                pending_failures.append(i)
            elif ph == "X" and name == "rollback":
                if not pending_failures:
                    errors.append(f"{where}: rollback span on pid {pid} without a "
                                  "preceding rank_failure instant")
                else:
                    pending_failures.pop()
            elif ph == "X" and name == "checkpoint":
                if open_ckpt is not None:
                    errors.append(f"{where}: checkpoint span opens while iteration "
                                  f"{open_ckpt[1]} is still uncommitted on pid {pid}")
                open_ckpt = (i, seq)
            elif name in ("ckpt_commit", "ckpt_abort"):
                if open_ckpt is None:
                    errors.append(f"{where}: {name} on pid {pid} without an open "
                                  "checkpoint span")
                elif open_ckpt[1] != seq:
                    errors.append(f"{where}: {name} closes iteration {seq} but the open "
                                  f"checkpoint span is for iteration {open_ckpt[1]}")
                    open_ckpt = None
                else:
                    open_ckpt = None
        for i in pending_failures:
            errors.append(f"$.traceEvents[{i}]: rank_failure instant on pid {pid} is "
                          "never answered by a rollback span")
        if open_ckpt is not None:
            errors.append(f"$.traceEvents[{open_ckpt[0]}]: checkpoint span for iteration "
                          f"{open_ckpt[1]} on pid {pid} has no ckpt_commit/ckpt_abort")


def lint_file(trace_path, schema):
    errors = []
    with open(trace_path, "r", encoding="utf-8") as f:
        text = f.read()
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as e:
        return [f"not valid JSON: {e}"]

    validate(doc, schema["top"], "$", errors)
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        errors.append("$.traceEvents: missing or not an array")
        return errors

    phases = schema["phases"]
    other = doc.get("otherData", {})
    ranks = other.get("ranks")
    gpus_per_node = other.get("gpus_per_node")
    nodes_per_switch = other.get("nodes_per_switch")
    data_events = 0
    named_tracks = set()  # (pid, tid) with a thread_name record
    named_pids = set()
    used_tracks = set()
    for i, ev in enumerate(events):
        where = f"$.traceEvents[{i}]"
        if not isinstance(ev, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in phases:
            errors.append(f"{where}: unknown ph {ph!r}")
            continue
        validate(ev, phases[ph], where, errors)
        if ph == "M":
            if ev.get("name") == "thread_name":
                named_tracks.add((ev.get("pid"), ev.get("tid")))
            elif ev.get("name") == "process_name":
                named_pids.add(ev.get("pid"))
        else:
            data_events += 1
            used_tracks.add((ev.get("pid"), ev.get("tid")))
            check_dep_fields(ev, ranks, where, errors)
            check_link_fields(ev, gpus_per_node, nodes_per_switch, where, errors)
            check_anomaly(ev, where, errors)

    check_recovery(events, errors)

    declared = doc.get("otherData", {}).get("events")
    if declared != data_events:
        errors.append(f"otherData.events = {declared} but the file carries {data_events}")

    for pid, tid in sorted(used_tracks):
        if (pid, tid) not in named_tracks:
            errors.append(f"track pid={pid} tid={tid} carries events but has no thread_name")
        if pid not in named_pids:
            errors.append(f"pid={pid} carries events but has no process_name")

    # one-object-per-line: the number of lines mentioning "ph" equals the
    # number of traceEvents entries
    ph_lines = sum(1 for line in text.splitlines() if '"ph":' in line)
    if ph_lines != len(events):
        errors.append(f"{ph_lines} event lines for {len(events)} traceEvents entries "
                      "(one-object-per-line invariant broken)")
    return errors


def main(argv):
    default_schema = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                  "trace_schema.json")
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("traces", nargs="+", help="trace files written via QUDA_SIM_TRACE")
    ap.add_argument("--schema", default=default_schema)
    args = ap.parse_args(argv)

    with open(args.schema, "r", encoding="utf-8") as f:
        schema = json.load(f)

    failed = False
    for trace_path in args.traces:
        errors = lint_file(trace_path, schema)
        if errors:
            failed = True
            print(f"{trace_path}: FAIL", file=sys.stderr)
            for e in errors[:50]:
                print(f"  {e}", file=sys.stderr)
            if len(errors) > 50:
                print(f"  ... and {len(errors) - 50} more", file=sys.stderr)
        else:
            print(f"{trace_path}: OK")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
