#!/usr/bin/env python3
"""Render one self-contained HTML run report from the solver flight recorder.

Stdlib only (the repo adds no dependencies).  Inputs are the telemetry JSONL
written via QUDA_SIM_TELEMETRY (src/trace/telemetry.cpp; one JSON object per
line, types: provenance / run / iteration / anomaly / counter / gauge /
histogram / series / timeline) and, optionally, the Chrome trace JSON written
via QUDA_SIM_TRACE, which supplies the time-by-category attribution
breakdown.  The output is a single HTML file with inline SVG -- no external
assets, so it can be attached to a CI run or mailed around as-is.

Sections:
  * provenance        -- commit, build, scheduler, thread budget, cluster
  * run summary       -- ranks, makespan, iterations, load imbalance
  * convergence curve -- log10 residual vs iteration, reliable updates and
                         restarts marked, true-residual points overlaid
  * utilization       -- rank x time-bucket busy-fraction heatmap
  * attribution       -- horizontal bar of span time by category (from the
                         trace export, when given)
  * anomalies         -- one table row per monitor finding
  * metrics           -- counters and gauges, alphabetical

Usage:
  report.py --telemetry RUN.jsonl [--trace TRACE.json] -o report.html
  report.py --self-test
"""

import argparse
import html
import json
import math
import sys

# ---------------------------------------------------------------- loading

def load_telemetry(path_or_lines):
    """Parse telemetry JSONL into one dict per line type.  Accepts a path or
    an iterable of lines (for the self-test)."""
    if isinstance(path_or_lines, str):
        with open(path_or_lines, "r", encoding="utf-8") as f:
            lines = f.read().splitlines()
    else:
        lines = list(path_or_lines)
    data = {
        "provenance": {}, "run": {}, "iterations": [], "anomalies": [],
        "counters": {}, "gauges": {}, "histograms": [], "series": [],
        "timelines": [],
    }
    for n, line in enumerate(lines, 1):
        line = line.strip()
        if not line:
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as e:
            raise ValueError(f"telemetry line {n}: not valid JSON: {e}")
        t = obj.get("type")
        if t == "provenance":
            data["provenance"] = obj.get("provenance", {})
        elif t == "run":
            data["run"] = obj
        elif t == "iteration":
            data["iterations"].append(obj)
        elif t == "anomaly":
            data["anomalies"].append(obj)
        elif t == "counter":
            data["counters"][obj.get("name", "?")] = obj.get("value")
        elif t == "gauge":
            data["gauges"][obj.get("name", "?")] = obj.get("value")
        elif t == "histogram":
            data["histograms"].append(obj)
        elif t == "series":
            data["series"].append(obj)
        elif t == "timeline":
            data["timelines"].append(obj)
        else:
            raise ValueError(f"telemetry line {n}: unknown type {t!r}")
    if not data["run"]:
        raise ValueError("telemetry carries no 'run' line")
    return data


def load_trace_attribution(path):
    """Aggregate span time by category from a QUDA_SIM_TRACE export; returns
    ({category: total_us}, provenance_dict)."""
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    by_cat = {}
    for ev in doc.get("traceEvents", []):
        if not isinstance(ev, dict) or ev.get("ph") != "X":
            continue
        cat = ev.get("cat", "?")
        by_cat[cat] = by_cat.get(cat, 0.0) + float(ev.get("dur", 0.0))
    return by_cat, doc.get("provenance", {})

# ---------------------------------------------------------------- SVG bits

PALETTE = {
    "kernel": "#4c78a8", "comm": "#f58518", "copy": "#54a24b",
    "solver": "#b279a2", "fault": "#e45756",
}


def esc(s):
    return html.escape(str(s), quote=True)


def heat_color(frac):
    """0 -> near-white, 1 -> saturated blue; clamped."""
    frac = min(1.0, max(0.0, frac))
    r = int(247 - 171 * frac)
    g = int(251 - 131 * frac)
    b = int(255 - 87 * frac)
    return f"#{r:02x}{g:02x}{b:02x}"


def svg_convergence(iterations, width=760, height=260):
    """Inline-SVG convergence curve: log10(iterated residual) vs iteration,
    with true-residual points and reliable-update / restart markers."""
    pts = [(it.get("iter", 0), it.get("r2")) for it in iterations
           if isinstance(it.get("r2"), (int, float)) and it.get("r2") > 0]
    if not pts:
        return "<p class='empty'>no residual history (modeled run or zero-iteration solve)</p>"
    xs = [p[0] for p in pts]
    ys = [math.log10(p[1]) for p in pts]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_hi == x_lo:
        x_hi = x_lo + 1
    if y_hi == y_lo:
        y_hi = y_lo + 1
    pad, pw, ph = 42, width - 2 * 42, height - 2 * 42

    def sx(x):
        return pad + pw * (x - x_lo) / (x_hi - x_lo)

    def sy(y):
        return pad + ph * (y_hi - y) / (y_hi - y_lo)

    poly = " ".join(f"{sx(x):.1f},{sy(y):.1f}" for x, y in zip(xs, ys))
    out = [f"<svg viewBox='0 0 {width} {height}' class='chart' role='img' "
           f"aria-label='convergence curve'>"]
    # axes + gridlines at integer decades
    out.append(f"<line x1='{pad}' y1='{pad}' x2='{pad}' y2='{height - pad}' class='axis'/>")
    out.append(f"<line x1='{pad}' y1='{height - pad}' x2='{width - pad}' "
               f"y2='{height - pad}' class='axis'/>")
    for dec in range(math.ceil(y_lo), math.floor(y_hi) + 1):
        y = sy(dec)
        out.append(f"<line x1='{pad}' y1='{y:.1f}' x2='{width - pad}' y2='{y:.1f}' "
                   f"class='grid'/>")
        out.append(f"<text x='{pad - 6}' y='{y + 4:.1f}' class='tick' "
                   f"text-anchor='end'>1e{dec}</text>")
    out.append(f"<text x='{width / 2:.0f}' y='{height - 8}' class='tick' "
               f"text-anchor='middle'>iteration</text>")
    out.append(f"<polyline points='{poly}' fill='none' stroke='#4c78a8' stroke-width='1.5'/>")
    # event markers on the curve
    for it in iterations:
        flags = it.get("flags", [])
        x, r2 = it.get("iter", 0), it.get("r2")
        if not isinstance(r2, (int, float)) or r2 <= 0:
            continue
        if "reliable_update" in flags:
            out.append(f"<circle cx='{sx(x):.1f}' cy='{sy(math.log10(r2)):.1f}' r='3' "
                       f"fill='#54a24b'><title>reliable update @ {x}</title></circle>")
        if "rollback" in flags or "restart" in flags or "breakdown_restart" in flags:
            out.append(f"<rect x='{sx(x) - 3:.1f}' y='{sy(math.log10(r2)) - 3:.1f}' "
                       f"width='6' height='6' fill='#e45756'>"
                       f"<title>rollback/restart @ {x}</title></rect>")
        tr = it.get("true_r2")
        if isinstance(tr, (int, float)) and tr > 0:
            out.append(f"<circle cx='{sx(x):.1f}' cy='{sy(math.log10(tr)):.1f}' r='2.5' "
                       f"fill='none' stroke='#b279a2' stroke-width='1.2'>"
                       f"<title>true residual @ {x}</title></circle>")
    out.append("</svg>")
    return "".join(out)


def svg_heatmap(timelines, bucket_us, width=760):
    """Rank x time-bucket busy-fraction heatmap."""
    rows = [tl for tl in timelines if tl.get("busy")]
    if not rows:
        return "<p class='empty'>no utilization timelines (run the solve with tracing on)</p>"
    buckets = max(len(tl["busy"]) for tl in rows)
    cell_h = max(3, min(16, 220 // len(rows)))
    pad_l, pad_t = 52, 8
    cell_w = (width - pad_l - 8) / buckets
    height = pad_t + cell_h * len(rows) + 26
    out = [f"<svg viewBox='0 0 {width} {height:.0f}' class='chart' role='img' "
           f"aria-label='per-rank busy-fraction heatmap'>"]
    label_stride = max(1, len(rows) // 16)
    for r, tl in enumerate(rows):
        y = pad_t + r * cell_h
        if r % label_stride == 0:
            out.append(f"<text x='{pad_l - 6}' y='{y + cell_h - 1}' class='tick' "
                       f"text-anchor='end'>r{tl.get('rank', r)}</text>")
        for b, frac in enumerate(tl["busy"]):
            out.append(f"<rect x='{pad_l + b * cell_w:.1f}' y='{y}' "
                       f"width='{cell_w + 0.5:.1f}' height='{cell_h}' "
                       f"fill='{heat_color(frac)}'>"
                       f"<title>rank {tl.get('rank', r)} bucket {b}: "
                       f"{frac * 100:.0f}% busy</title></rect>")
    total_ms = buckets * bucket_us / 1000.0
    out.append(f"<text x='{pad_l}' y='{height - 8:.0f}' class='tick'>0 ms</text>")
    out.append(f"<text x='{width - 8}' y='{height - 8:.0f}' class='tick' "
               f"text-anchor='end'>{total_ms:.2f} ms</text>")
    out.append("</svg>")
    return "".join(out)


def svg_attribution(by_cat, width=760, bar_h=26):
    """One stacked horizontal bar: span time by trace category."""
    total = sum(by_cat.values())
    if total <= 0:
        return "<p class='empty'>no attribution (pass --trace with a span-bearing export)</p>"
    out = [f"<svg viewBox='0 0 {width} {bar_h + 40}' class='chart' role='img' "
           f"aria-label='time by category'>"]
    x = 0.0
    for cat in sorted(by_cat, key=by_cat.get, reverse=True):
        us = by_cat[cat]
        w = width * us / total
        color = PALETTE.get(cat, "#9d9d9d")
        out.append(f"<rect x='{x:.1f}' y='8' width='{max(w, 0.5):.1f}' height='{bar_h}' "
                   f"fill='{color}'><title>{esc(cat)}: {us:.1f} us "
                   f"({us / total * 100:.1f}%)</title></rect>")
        if w > 60:
            out.append(f"<text x='{x + w / 2:.1f}' y='{8 + bar_h / 2 + 4}' class='bar' "
                       f"text-anchor='middle'>{esc(cat)} {us / total * 100:.0f}%</text>")
        x += w
    out.append(f"<text x='0' y='{bar_h + 30}' class='tick'>total span time: "
               f"{total:.1f} us (categories overlap across tracks)</text>")
    out.append("</svg>")
    return "".join(out)

# ---------------------------------------------------------------- HTML

CSS = """
body { font: 14px/1.45 system-ui, sans-serif; margin: 2em auto; max-width: 820px;
       color: #1a1a2e; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 1.6em; }
table { border-collapse: collapse; width: 100%; }
th, td { text-align: left; padding: 3px 10px; border-bottom: 1px solid #e0e0e8; }
th { background: #f4f4f8; }
.chart { width: 100%; height: auto; background: #fcfcfe; border: 1px solid #e0e0e8; }
.axis { stroke: #888; stroke-width: 1; } .grid { stroke: #e8e8ee; stroke-width: 1; }
.tick { font: 11px system-ui, sans-serif; fill: #666; }
.bar { font: 11px system-ui, sans-serif; fill: #fff; }
.empty { color: #888; font-style: italic; }
.kv { color: #555; } .anomaly-kind { font-weight: 600; color: #b33; }
code { background: #f4f4f8; padding: 1px 4px; }
"""


def render_html(tele, attribution=None, trace_prov=None):
    run = tele["run"]
    prov = tele["provenance"] or trace_prov or {}
    out = ["<!doctype html><html><head><meta charset='utf-8'>",
           "<title>solver run report</title>",
           f"<style>{CSS}</style></head><body>",
           "<h1>Solver flight-recorder report</h1>"]

    # provenance
    out.append("<h2>Provenance</h2>")
    if prov:
        out.append("<table>")
        for k in sorted(prov):
            out.append(f"<tr><th>{esc(k)}</th><td><code>{esc(json.dumps(prov[k]) if isinstance(prov[k], dict) else prov[k])}</code></td></tr>")
        out.append("</table>")
    else:
        out.append("<p class='empty'>export carries no provenance stamp</p>")

    # run summary
    out.append("<h2>Run summary</h2><table>")
    for key in ("ranks", "makespan_us", "iterations", "load_imbalance",
                "anomaly_count", "ledger_symmetric", "bucket_us"):
        if key in run:
            out.append(f"<tr><th>{esc(key)}</th><td>{esc(run[key])}</td></tr>")
    out.append("</table>")

    # convergence
    out.append("<h2>Convergence</h2>")
    out.append(svg_convergence(tele["iterations"]))
    out.append("<p class='kv'>line: iterated residual &middot; "
               "<span style='color:#b279a2'>&#9675;</span> true residual &middot; "
               "<span style='color:#54a24b'>&#9679;</span> reliable update &middot; "
               "<span style='color:#e45756'>&#9632;</span> rollback/restart</p>")

    # utilization heatmap
    out.append("<h2>Per-rank utilization</h2>")
    out.append(svg_heatmap(tele["timelines"], float(run.get("bucket_us", 0) or 1.0)))

    # attribution
    out.append("<h2>Time by category</h2>")
    out.append(svg_attribution(attribution or {}))

    # anomalies
    out.append("<h2>Anomalies</h2>")
    if tele["anomalies"]:
        out.append("<table><tr><th>kind</th><th>rank</th><th>iteration</th>"
                   "<th>epoch</th><th>time (us)</th><th>value</th><th>reference</th></tr>")
        for a in tele["anomalies"]:
            out.append("<tr><td class='anomaly-kind'>{}</td>{}</tr>".format(
                esc(a.get("kind", "?")),
                "".join(f"<td>{esc(a.get(k, ''))}</td>"
                        for k in ("rank", "iter", "epoch", "ts_us", "value", "reference"))))
        out.append("</table>")
    else:
        out.append("<p class='empty'>no anomalies -- the monitors stayed silent</p>")

    # metrics
    out.append("<h2>Metrics</h2><table><tr><th>metric</th><th>value</th></tr>")
    for name in sorted(tele["counters"]):
        out.append(f"<tr><td><code>{esc(name)}</code></td>"
                   f"<td>{esc(tele['counters'][name])}</td></tr>")
    for name in sorted(tele["gauges"]):
        v = tele["gauges"][name]
        shown = f"{v:.4g}" if isinstance(v, (int, float)) else v
        out.append(f"<tr><td><code>{esc(name)}</code></td><td>{esc(shown)}</td></tr>")
    out.append("</table>")

    out.append("</body></html>")
    return "\n".join(out)

# ---------------------------------------------------------------- self-test

SYNTHETIC = [
    '{"type": "provenance", "provenance": {"git": "deadbeef", "build": "Release", '
    '"scheduler": "seq", "threads": 1}}',
    '{"type": "run", "ranks": 2, "makespan_us": 4000, "bucket_us": 62.5, '
    '"iterations": 6, "load_imbalance": 1.25, "anomaly_count": 1, '
    '"ledger_symmetric": true}',
    '{"type": "iteration", "iter": 1, "epoch": 0, "r2": 1.0, "true_r2": null, '
    '"regime": "h", "flags": []}',
    '{"type": "iteration", "iter": 2, "epoch": 0, "r2": 0.1, "true_r2": null, '
    '"regime": "h", "flags": []}',
    '{"type": "iteration", "iter": 3, "epoch": 0, "r2": 0.01, "true_r2": 0.02, '
    '"regime": "h", "flags": ["reliable_update"]}',
    '{"type": "iteration", "iter": 4, "epoch": 0, "r2": 0.012, "true_r2": null, '
    '"regime": "h", "flags": ["rollback"]}',
    '{"type": "iteration", "iter": 5, "epoch": 1, "r2": 1e-4, "true_r2": null, '
    '"regime": "h", "flags": ["recovery"]}',
    '{"type": "iteration", "iter": 6, "epoch": 1, "r2": 1e-6, "true_r2": 2e-6, '
    '"regime": "s", "flags": []}',
    '{"type": "anomaly", "kind": "retry_storm", "rank": 1, "iter": 4, "epoch": 0, '
    '"ts_us": 2500, "value": 12, "reference": 8}',
    '{"type": "counter", "name": "iterations", "value": 6}',
    '{"type": "counter", "name": "anomaly.retry_storm", "value": 1}',
    '{"type": "gauge", "name": "busy_frac.max", "value": 0.8}',
    '{"type": "histogram", "name": "iter_log10_r2", "edges": [-12, -9, -6, -3, 0, 3], '
    '"counts": [0, 1, 1, 2, 2, 0]}',
    '{"type": "series", "name": "iterations_per_ms", "bucket_us": 1000, '
    '"values": [2, 2, 2, 0]}',
    '{"type": "timeline", "rank": 0, "busy": [0.9, 0.4], "exposed_comm": [0.05, 0.3], '
    '"pcie": [0, 0.1], "stall": [0, 0], "recovery": [0, 0.2]}',
    '{"type": "timeline", "rank": 1, "busy": [0.7, 0.6], "exposed_comm": [0.1, 0.2], '
    '"pcie": [0, 0], "stall": [0.05, 0], "recovery": [0, 0.2]}',
]


def self_test():
    tele = load_telemetry(SYNTHETIC)
    assert tele["run"]["ranks"] == 2
    assert len(tele["iterations"]) == 6
    assert len(tele["anomalies"]) == 1
    assert len(tele["timelines"]) == 2
    assert tele["counters"]["iterations"] == 6

    page = render_html(tele, attribution={"kernel": 3000.0, "comm": 800.0,
                                          "copy": 150.0, "fault": 50.0})
    # structure the report promises: every section header, both SVGs, the
    # anomaly row, and the provenance stamp
    for needle in ("<h2>Provenance</h2>", "<h2>Run summary</h2>",
                   "<h2>Convergence</h2>", "<h2>Per-rank utilization</h2>",
                   "<h2>Time by category</h2>", "<h2>Anomalies</h2>",
                   "<h2>Metrics</h2>", "retry_storm", "deadbeef",
                   "aria-label='convergence curve'",
                   "aria-label='per-rank busy-fraction heatmap'",
                   "aria-label='time by category'"):
        assert needle in page, f"rendered report is missing {needle!r}"
    assert page.count("<svg") == 3, "expected three inline SVGs"
    # reliable-update and rollback markers made it onto the curve
    assert "reliable update @ 3" in page
    assert "rollback/restart @ 4" in page
    # no unescaped user text
    assert "<script" not in page

    # empty-ledger degradation: a zero-iteration run still renders
    empty = load_telemetry([
        '{"type": "run", "ranks": 1, "makespan_us": 0, "bucket_us": 1, '
        '"iterations": 0, "load_imbalance": 0, "anomaly_count": 0, '
        '"ledger_symmetric": true}'])
    page2 = render_html(empty)
    assert "no residual history" in page2
    assert "no utilization timelines" in page2
    assert "no anomalies" in page2
    print("report.py: self-test OK")
    return 0


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--telemetry", help="telemetry JSONL (QUDA_SIM_TELEMETRY)")
    ap.add_argument("--trace", help="optional Chrome trace JSON (QUDA_SIM_TRACE)")
    ap.add_argument("-o", "--output", help="output HTML path")
    ap.add_argument("--self-test", action="store_true",
                    help="run the built-in synthetic-render checks and exit")
    args = ap.parse_args(argv)

    if args.self_test:
        return self_test()
    if not args.telemetry or not args.output:
        ap.error("--telemetry and -o are required (or --self-test)")

    try:
        tele = load_telemetry(args.telemetry)
        attribution, trace_prov = (load_trace_attribution(args.trace)
                                   if args.trace else ({}, {}))
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"report.py: error: {e}", file=sys.stderr)
        return 2

    page = render_html(tele, attribution=attribution, trace_prov=trace_prov)
    with open(args.output, "w", encoding="utf-8") as f:
        f.write(page)
    print(f"report.py: wrote {args.output} ({len(tele['iterations'])} iterations, "
          f"{len(tele['anomalies'])} anomalies, {len(tele['timelines'])} rank timelines)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
