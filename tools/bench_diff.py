#!/usr/bin/env python3
"""Perf-regression gate: diff two BENCH_<name>.json files.

Stdlib only.  Points are matched across the two files by their join key --
every string-valued field plus the small-integer axes ("gpus", "bytes") --
so reordering points or adding new ones never produces a spurious failure;
only points present in BOTH files are gated.

Each gated metric has a direction.  A point regresses when the current
value is worse than the baseline by more than the metric's relative
threshold (default 10%).  Near-zero baselines are compared against an
absolute floor instead (a 0.0 -> 0.3 us jitter on an empty category is
not a regression).

On failure the tool prints, for every regressed point, the critical-path
attribution carried in the JSON (crit_* fields) so the report names the
bottleneck category, not just the slower number.

Usage:
  bench_diff.py BASELINE.json CURRENT.json [--threshold PCT]
                [--gate metric=PCT ...]
  bench_diff.py --self-test

Exit status 0 when no gated metric regressed, 1 otherwise (2 on usage or
file errors).
"""

import argparse
import json
import sys

# metric -> direction; "lower" means lower is better
GATED_METRICS = {
    "time_us": "lower",
    "comm_us": "lower",
    "crit_path_us": "lower",
    "crit_exposed_comm_us": "lower",
    "crit_pcie_us": "lower",
    "gflops": "higher",
    "overlap_efficiency": "higher",
    # device-memory footprints (recon-aware gauge storage): growing the
    # modeled allocation is a regression like losing flops is
    "footprint_bytes": "lower",
    "gauge_footprint_bytes": "lower",
    # flight-recorder summary (telemetry): needing more Krylov iterations,
    # a worse busy-time spread, or new anomalies on an unchanged workload
    # all mean the run got worse even if the wall time hides it
    "iterations": "lower",
    "load_imbalance": "lower",
    "anomaly_count": "lower",
}

# numeric fields that are axes, not measurements -- part of the join key
AXIS_FIELDS = ("gpus", "bytes")

# baselines smaller than this are gated by absolute difference instead of
# ratio (relative thresholds explode as the denominator approaches zero)
ABS_FLOOR = 1.0

ATTRIBUTION_FIELDS = (
    "crit_path_us",
    "crit_interior_us",
    "crit_boundary_us",
    "crit_exposed_comm_us",
    "crit_pcie_us",
    "crit_stall_us",
    "crit_solver_us",
    "compute_bound_us",
    "whatif_zero_latency_us",
    "whatif_free_pcie_us",
    "whatif_infinite_overlap_us",
)


def point_key(point):
    """Join key: sorted (name, value) over string fields and axis fields."""
    key = []
    for name, value in point.items():
        if isinstance(value, str) or name in AXIS_FIELDS:
            key.append((name, value))
    return tuple(sorted(key))


def index_points(doc, path):
    points = doc.get("points")
    if not isinstance(points, list):
        raise ValueError(f"{path}: no 'points' array")
    indexed = {}
    for p in points:
        k = point_key(p)
        if k in indexed:
            raise ValueError(f"{path}: duplicate point key {dict(k)}")
        indexed[k] = p
    return indexed


def describe_key(key):
    return ", ".join(f"{name}={value}" for name, value in key)


def compare(baseline, current, thresholds):
    """Return (regressions, compared) where regressions is a list of dicts."""
    regressions = []
    compared = 0
    for key, base_pt in baseline.items():
        cur_pt = current.get(key)
        if cur_pt is None:
            continue
        for metric, direction in GATED_METRICS.items():
            if metric not in base_pt or metric not in cur_pt:
                continue
            base = base_pt[metric]
            cur = cur_pt[metric]
            if not isinstance(base, (int, float)) or not isinstance(cur, (int, float)):
                continue
            compared += 1
            pct = thresholds[metric]
            worse = cur - base if direction == "lower" else base - cur
            if abs(base) < ABS_FLOOR:
                regressed = worse > ABS_FLOOR
                change = f"{base:g} -> {cur:g} (abs)"
            else:
                rel = worse / abs(base)
                regressed = rel > pct / 100.0
                change = f"{base:g} -> {cur:g} ({rel * 100.0:+.1f}%)"
            if regressed:
                regressions.append({
                    "key": key,
                    "metric": metric,
                    "change": change,
                    "threshold": pct,
                    "current": cur_pt,
                })
    return regressions, compared


def print_report(regressions, compared, out=sys.stderr):
    if not regressions:
        print(f"bench_diff: OK ({compared} metric comparisons, no regressions)")
        return
    print(f"bench_diff: FAIL -- {len(regressions)} regression(s) "
          f"across {compared} metric comparisons", file=out)
    shown = set()
    for r in regressions:
        print(f"  [{describe_key(r['key'])}] {r['metric']}: {r['change']} "
              f"exceeds {r['threshold']:g}% threshold", file=out)
        if r["key"] in shown:
            continue
        shown.add(r["key"])
        # attribution of the regressed point, when the bench carried it
        attrib = [(f, r["current"][f]) for f in ATTRIBUTION_FIELDS if f in r["current"]]
        if attrib:
            print("    attribution (current run):", file=out)
            for name, value in attrib:
                print(f"      {name:28s} {value:14.1f}", file=out)


def parse_gates(args):
    thresholds = {m: args.threshold for m in GATED_METRICS}
    for spec in args.gate:
        if "=" not in spec:
            raise ValueError(f"--gate expects metric=PCT, got {spec!r}")
        metric, _, pct = spec.partition("=")
        if metric not in GATED_METRICS:
            raise ValueError(f"--gate: unknown metric {metric!r} "
                             f"(known: {', '.join(sorted(GATED_METRICS))})")
        thresholds[metric] = float(pct)
    return thresholds


def self_test():
    """Synthetic baseline/current pair: the gate must fire on an injected
    regression and stay silent on identical inputs."""
    def doc(time_us, gflops, gauge_bytes=1.0e6, iterations=200.0,
            imbalance=1.05, anomalies=0.0):
        return {
            "name": "selftest",
            "points": [
                {"series": "overlap", "gpus": 2, "time_us": time_us,
                 "gflops": gflops, "crit_path_us": time_us,
                 "crit_exposed_comm_us": 0.25 * time_us,
                 "crit_interior_us": 0.75 * time_us,
                 "gauge_footprint_bytes": gauge_bytes,
                 "iterations": iterations, "load_imbalance": imbalance,
                 "anomaly_count": anomalies},
                {"series": "overlap", "gpus": 4, "time_us": 100.0, "gflops": 50.0},
            ],
        }

    thresholds = {m: 10.0 for m in GATED_METRICS}

    base = index_points(doc(1000.0, 40.0), "base")
    same = index_points(doc(1000.0, 40.0), "same")
    regressions, compared = compare(base, same, thresholds)
    assert compared > 0, "self-test compared nothing"
    assert not regressions, f"identical inputs flagged: {regressions}"

    # 15% slower and proportionally fewer flops: every scaled metric of the
    # first point fires; the untouched second point stays silent
    bad = index_points(doc(1150.0, 40.0 / 1.15), "bad")
    regressions, _ = compare(base, bad, thresholds)
    metrics = sorted(r["metric"] for r in regressions)
    assert metrics == ["crit_exposed_comm_us", "crit_path_us", "gflops", "time_us"], metrics
    assert all(("gpus", 2) in r["key"] for r in regressions), "wrong point flagged"

    # a fatter gauge footprint (e.g. a recon knob silently dropped) fires
    # the memory gate even when the timing metrics hold steady
    fat = index_points(doc(1000.0, 40.0, gauge_bytes=1.2e6), "fat")
    regressions, _ = compare(base, fat, thresholds)
    assert [r["metric"] for r in regressions] == ["gauge_footprint_bytes"], regressions

    # 5% drift stays under the default 10% gate ...
    drift = index_points(doc(1050.0, 40.0 / 1.05), "drift")
    regressions, _ = compare(base, drift, thresholds)
    assert not regressions, f"5% drift flagged at 10% threshold: {regressions}"
    # ... but fires when the gate is tightened to 2%
    tight = dict(thresholds, time_us=2.0)
    regressions, _ = compare(base, drift, tight)
    assert any(r["metric"] == "time_us" for r in regressions), "tightened gate silent"

    # flight-recorder gates: more iterations on the same workload fires even
    # when the wall time holds (reliable-update churn hides in throughput) ...
    churn = index_points(doc(1000.0, 40.0, iterations=240.0), "churn")
    regressions, _ = compare(base, churn, thresholds)
    assert [r["metric"] for r in regressions] == ["iterations"], regressions
    # ... as does a busy-fraction spread blowing up across ranks ...
    skew = index_points(doc(1000.0, 40.0, imbalance=1.40), "skew")
    regressions, _ = compare(base, skew, thresholds)
    assert [r["metric"] for r in regressions] == ["load_imbalance"], regressions
    # ... and anomalies appearing on a previously clean run (near-zero
    # baseline, so the absolute floor decides: 0 -> 2 fires)
    noisy = index_points(doc(1000.0, 40.0, anomalies=2.0), "noisy")
    regressions, _ = compare(base, noisy, thresholds)
    assert [r["metric"] for r in regressions] == ["anomaly_count"], regressions

    # near-zero baseline: jitter below the absolute floor is not a regression
    zbase = index_points({"points": [{"series": "z", "gpus": 1, "time_us": 0.0}]}, "z0")
    zcur = index_points({"points": [{"series": "z", "gpus": 1, "time_us": 0.5}]}, "z1")
    regressions, _ = compare(zbase, zcur, thresholds)
    assert not regressions, f"sub-floor jitter flagged: {regressions}"

    # the failure path renders (attribution included) without crashing
    print_report(compare(base, bad, thresholds)[0], 6, out=sys.stdout)
    print("bench_diff: self-test OK")
    return 0


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", nargs="?", help="baseline BENCH_<name>.json")
    ap.add_argument("current", nargs="?", help="current BENCH_<name>.json")
    ap.add_argument("--threshold", type=float, default=10.0,
                    help="default relative regression threshold in percent")
    ap.add_argument("--gate", action="append", default=[], metavar="METRIC=PCT",
                    help="per-metric threshold override (repeatable)")
    ap.add_argument("--self-test", action="store_true",
                    help="run the built-in synthetic-pair checks and exit")
    args = ap.parse_args(argv)

    if args.self_test:
        return self_test()
    if not args.baseline or not args.current:
        ap.error("baseline and current files are required (or --self-test)")

    try:
        thresholds = parse_gates(args)
        with open(args.baseline, "r", encoding="utf-8") as f:
            baseline = index_points(json.load(f), args.baseline)
        with open(args.current, "r", encoding="utf-8") as f:
            current = index_points(json.load(f), args.current)
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"bench_diff: error: {e}", file=sys.stderr)
        return 2

    common = sum(1 for k in baseline if k in current)
    if common == 0:
        print("bench_diff: error: no common points between the two files "
              "(different benches?)", file=sys.stderr)
        return 2

    regressions, compared = compare(baseline, current, thresholds)
    print_report(regressions, compared)
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
