// Host execution engine tests: the determinism contract of
// exec/host_engine.h.  parallel_for must cover ranges exactly once at any
// worker budget; parallel_reduce must be bit-identical across budgets (its
// chunk tree is a function of the range and grain only); the Real-mode
// kernels wired through the engine (BLAS, dslash) must produce bit-identical
// fields and sums at QUDA_SIM_THREADS = 1, 2, and 8, and match a plain
// serial reference on a sub-grain lattice (the seed's historical loops).

#include "blas/blas.h"
#include "core/quda_api.h"
#include "dirac/dslash.h"
#include "dirac/gauge_init.h"
#include "dirac/transfer.h"
#include "exec/host_engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace quda {
namespace {

// run fn under a fixed worker budget, restoring the default afterwards
template <typename Fn> void with_budget(int budget, Fn&& fn) {
  exec::set_thread_budget(budget);
  fn();
  exec::set_thread_budget(0);
}

TEST(HostEngine, ParallelForCoversRangeExactlyOnce) {
  for (int budget : {1, 2, 8}) {
    with_budget(budget, [&] {
      const std::int64_t n = 10'000;
      std::vector<std::atomic<int>> hits(n);
      exec::parallel_for(0, n, 64, [&](std::int64_t b, std::int64_t e) {
        for (std::int64_t i = b; i < e; ++i) hits[static_cast<std::size_t>(i)].fetch_add(1);
      });
      for (std::int64_t i = 0; i < n; ++i)
        ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "budget " << budget;
    });
  }
}

TEST(HostEngine, ParallelForHandlesEmptyAndPartialChunks) {
  with_budget(4, [&] {
    exec::parallel_for(5, 5, 16, [&](std::int64_t, std::int64_t) { FAIL(); });
    std::atomic<std::int64_t> total{0};
    exec::parallel_for(3, 103, 17, [&](std::int64_t b, std::int64_t e) {
      total.fetch_add(e - b);
    });
    EXPECT_EQ(total.load(), 100);
  });
}

TEST(HostEngine, ReduceBitIdenticalAcrossBudgets) {
  // values whose sum is order-sensitive in floating point
  const std::int64_t n = 100'000;
  std::vector<double> v(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i)
    v[static_cast<std::size_t>(i)] = (i % 7 ? 1.0 : -1.0) / (1.0 + double(i) * 1e-3);

  auto sum_at = [&](int budget) {
    double r = 0;
    with_budget(budget, [&] {
      r = exec::parallel_reduce<double>(0, n, 1024, [&](std::int64_t b, std::int64_t e) {
        double s = 0;
        for (std::int64_t i = b; i < e; ++i) s += v[static_cast<std::size_t>(i)];
        return s;
      });
    });
    return r;
  };

  const double r1 = sum_at(1);
  EXPECT_EQ(r1, sum_at(2));
  EXPECT_EQ(r1, sum_at(8));
}

TEST(HostEngine, SingleChunkReduceIsThePlainSerialLoop) {
  // a range within one grain must degenerate to exactly the serial fold
  const std::int64_t n = 1000;
  std::vector<double> v(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) v[static_cast<std::size_t>(i)] = 1.0 / (1.0 + double(i));
  double serial = 0;
  for (double x : v) serial += x;

  with_budget(8, [&] {
    const double r = exec::parallel_reduce<double>(0, n, exec::kBlasGrain,
                                                   [&](std::int64_t b, std::int64_t e) {
                                                     double s = 0;
                                                     for (std::int64_t i = b; i < e; ++i)
                                                       s += v[static_cast<std::size_t>(i)];
                                                     return s;
                                                   });
    EXPECT_EQ(r, serial);
  });
}

TEST(HostEngine, NestedParallelForRunsInline) {
  with_budget(4, [&] {
    std::atomic<std::int64_t> total{0};
    exec::parallel_for(0, 64, 4, [&](std::int64_t b, std::int64_t e) {
      for (std::int64_t i = b; i < e; ++i)
        exec::parallel_for(0, 10, 2, [&](std::int64_t ib, std::int64_t ie) {
          total.fetch_add(ie - ib);
        });
    });
    EXPECT_EQ(total.load(), 64 * 10);
  });
}

TEST(HostEngine, ChunkExceptionPropagatesToCaller) {
  with_budget(4, [&] {
    EXPECT_THROW(exec::parallel_for(0, 1000, 10,
                                    [&](std::int64_t b, std::int64_t) {
                                      if (b == 500) throw std::runtime_error("chunk failure");
                                    }),
                 std::runtime_error);
  });
}

// --- kernel bit-identity across thread budgets -------------------------------

struct ExecKernelData {
  Geometry g{LatticeDims{8, 8, 8, 16}}; // half volume 4096 = one BLAS grain
  HostGaugeField u;
  HostSpinorField a, b;

  ExecKernelData() : u(g), a(g), b(g) {
    make_weak_field_gauge(u, 0.2, 11);
    make_random_spinor(a, 12);
    make_random_spinor(b, 13);
  }
};

const ExecKernelData& kdata() {
  static const ExecKernelData d;
  return d;
}

template <typename P> void expect_blas_bit_identity() {
  const auto& d = kdata();
  const SpinorField<P> x = upload_spinor<P>(d.a, Parity::Even);
  const SpinorField<P> y0 = upload_spinor<P>(d.b, Parity::Even);

  struct Run {
    double n2, axn;
    complexd cd;
    std::vector<typename P::store_t> y;
  };
  auto run_at = [&](int budget) {
    Run r;
    with_budget(budget, [&] {
      SpinorField<P> y = SpinorField<P>::like(y0);
      blas::copy(y, y0);
      r.n2 = blas::norm2(x);
      r.cd = blas::cdot(x, y);
      r.axn = blas::axpy_norm(0.37, x, y);
      blas::bicgstab_p_update(y, x, y0, complexd{1.1, -0.2}, complexd{0.9, 0.05});
      r.y = y.raw_data();
    });
    return r;
  };

  const Run r1 = run_at(1);
  for (int budget : {2, 8}) {
    const Run rn = run_at(budget);
    EXPECT_EQ(r1.n2, rn.n2) << "budget " << budget;
    EXPECT_EQ(r1.cd, rn.cd) << "budget " << budget;
    EXPECT_EQ(r1.axn, rn.axn) << "budget " << budget;
    EXPECT_EQ(r1.y, rn.y) << "budget " << budget;
  }

  // sub-grain lattice: the engine's reductions must equal the plain serial
  // loop (the seed code path) exactly
  ASSERT_LE(x.sites(), exec::kBlasGrain);
  double serial_n2 = 0;
  for (std::int64_t i = 0; i < x.sites(); ++i) {
    const auto s = x.load(i);
    serial_n2 += static_cast<double>(quda::norm2(s));
  }
  EXPECT_EQ(r1.n2, serial_n2);
}

TEST(HostEngineKernels, BlasBitIdenticalAcrossBudgetsDouble) {
  expect_blas_bit_identity<PrecDouble>();
}
TEST(HostEngineKernels, BlasBitIdenticalAcrossBudgetsSingle) {
  expect_blas_bit_identity<PrecSingle>();
}
TEST(HostEngineKernels, BlasBitIdenticalAcrossBudgetsHalf) {
  expect_blas_bit_identity<PrecHalf>();
}

template <typename P>
void expect_dslash_bit_identity(Reconstruct recon = Reconstruct::Twelve) {
  const auto& d = kdata();
  const GaugeField<P> gauge = upload_gauge<P>(d.u, recon);
  const SpinorField<P> in = upload_spinor<P>(d.a, Parity::Odd);

  auto run_at = [&](int budget) {
    std::vector<typename P::store_t> out_raw;
    with_budget(budget, [&] {
      SpinorField<P> out(d.g);
      DslashOptions opt;
      dslash<P>(out, gauge, in, d.g, opt, 0, d.g.half_volume(), 1, Accumulate::No);
      out_raw = out.raw_data();
    });
    return out_raw;
  };

  const auto r1 = run_at(1);
  EXPECT_EQ(r1, run_at(2));
  EXPECT_EQ(r1, run_at(8));
}

TEST(HostEngineKernels, DslashBitIdenticalAcrossBudgetsDouble) {
  expect_dslash_bit_identity<PrecDouble>();
}
TEST(HostEngineKernels, DslashBitIdenticalAcrossBudgetsSingle) {
  expect_dslash_bit_identity<PrecSingle>();
}
TEST(HostEngineKernels, DslashBitIdenticalAcrossBudgetsHalf) {
  expect_dslash_bit_identity<PrecHalf>();
}

// the 8-real reconstruction runs extra per-link math (atan2, sqrt, Cramer's
// rule) inside the site loop; it must stay on the same grain schedule
TEST(HostEngineKernels, DslashBitIdenticalAcrossBudgetsRecon8Single) {
  expect_dslash_bit_identity<PrecSingle>(Reconstruct::Eight);
}
TEST(HostEngineKernels, DslashBitIdenticalAcrossBudgetsRecon8Half) {
  expect_dslash_bit_identity<PrecHalf>(Reconstruct::Eight);
}

// fused kernels vs their unfused elementary composition
TEST(HostEngineKernels, FusedBlasMatchesUnfusedComposition) {
  const auto& d = kdata();
  const SpinorFieldD x = upload_spinor<PrecDouble>(d.a, Parity::Even);
  const SpinorFieldD y0 = upload_spinor<PrecDouble>(d.b, Parity::Even);

  // axpy_norm == axpy then norm2 (exact: same per-site arithmetic, and the
  // double store/load round-trip is lossless)
  SpinorFieldD y_fused = SpinorFieldD::like(y0);
  blas::copy(y_fused, y0);
  const double fused = blas::axpy_norm(0.37, x, y_fused);

  SpinorFieldD y_unfused = SpinorFieldD::like(y0);
  blas::copy(y_unfused, y0);
  blas::axpy(0.37, x, y_unfused);
  const double unfused = blas::norm2(y_unfused);

  EXPECT_EQ(y_fused.raw_data(), y_unfused.raw_data());
  EXPECT_EQ(fused, unfused);

  // bicgstab_p_update == caxpy composition (different accumulation order,
  // so compare to rounding accuracy)
  const complexd beta{1.1, -0.2}, omega{0.9, 0.05};
  SpinorFieldD p_fused = SpinorFieldD::like(y0);
  blas::copy(p_fused, y0);
  blas::bicgstab_p_update(p_fused, x, x, beta, omega);

  SpinorFieldD q = SpinorFieldD::like(y0); // q = p - omega * v
  blas::copy(q, y0);
  blas::caxpy(complexd{-omega.re, -omega.im}, x, q);
  SpinorFieldD p_unfused = SpinorFieldD::like(y0); // p = r + beta * q
  blas::copy(p_unfused, x);
  blas::caxpy(beta, q, p_unfused);

  SpinorFieldD diff = SpinorFieldD::like(y0);
  blas::copy(diff, p_fused);
  const double err = blas::xmy_norm(p_unfused, diff); // diff = p_unfused - p_fused
  const double ref = blas::norm2(p_fused);
  EXPECT_LE(err, 1e-24 * ref);
}

// --- tracing under the engine: thread safety + simulated-time bit-identity ---

// A full Real-mode multi-GPU solve with event recording on must be
// bit-identical -- in simulated time, iteration count, and the solution
// field -- to the same solve with recording off, at every worker budget.
// This pins two contracts at once: the tracer is purely observational
// (emission never advances a clock), and it is safe under QUDA_SIM_THREADS
// worker parallelism (events are written only from rank threads; worker
// chunks never emit).
TEST(HostEngineTrace, TracedSolveBitIdenticalAcrossBudgetsAndTraceState) {
  Geometry g{LatticeDims{4, 4, 4, 8}};
  HostGaugeField u(g);
  HostSpinorField b(g);
  make_weak_field_gauge(u, 0.2, 77);
  make_random_spinor(b, 78);

  InvertParams p;
  p.mass = 0.1;
  p.csw = 1.0;
  p.precision = Precision::Single;
  p.sloppy = Precision::Half;
  p.tol = 1e-6;
  p.max_iter = 500;

  struct Run {
    InvertResult r;
    std::vector<double> x; // solution, flattened for exact comparison
  };
  auto run_at = [&](int budget, bool traced) {
    Run out;
    sim::ClusterSpec spec = sim::ClusterSpec::jlab_9g(2);
    spec.trace.enabled = traced;
    HostSpinorField x(g);
    with_budget(budget, [&] { out.r = invert_multi_gpu(spec, u, b, x, p); });
    for (std::int64_t i = 0; i < g.volume(); ++i)
      for (std::size_t s = 0; s < 4; ++s)
        for (std::size_t c = 0; c < 3; ++c) {
          out.x.push_back(x[i].at(s, c).re);
          out.x.push_back(x[i].at(s, c).im);
        }
    return out;
  };

  const Run ref = run_at(1, false);
  ASSERT_TRUE(ref.r.stats.converged) << ref.r.stats.summary();
  EXPECT_FALSE(ref.r.traced);

  const trace::Metrics* traced_ref = nullptr;
  std::vector<Run> traced_runs;
  for (const int budget : {1, 2, 8}) {
    for (const bool traced : {false, true}) {
      const Run run = run_at(budget, traced);
      EXPECT_EQ(run.r.simulated_time_us, ref.r.simulated_time_us)
          << "budget " << budget << " traced " << traced;
      EXPECT_EQ(run.r.stats.iterations, ref.r.stats.iterations)
          << "budget " << budget << " traced " << traced;
      EXPECT_EQ(run.x, ref.x) << "budget " << budget << " traced " << traced;
      EXPECT_EQ(run.r.traced, traced);
      if (traced) {
        EXPECT_GT(run.r.trace_metrics.events, 0);
        if (traced_ref == nullptr) {
          traced_runs.push_back(run);
          traced_ref = &traced_runs.back().r.trace_metrics;
        } else {
          // the recorded stream itself is budget-independent
          EXPECT_EQ(run.r.trace_metrics.events, traced_ref->events) << "budget " << budget;
          EXPECT_EQ(run.r.trace_metrics.messages, traced_ref->messages) << "budget " << budget;
          EXPECT_EQ(run.r.trace_metrics.halo_bytes, traced_ref->halo_bytes) << "budget " << budget;
          EXPECT_EQ(run.r.trace_metrics.comm_us, traced_ref->comm_us) << "budget " << budget;
          EXPECT_EQ(run.r.trace_metrics.overlapped_us, traced_ref->overlapped_us)
              << "budget " << budget;
          EXPECT_EQ(run.r.trace_metrics.kernel_us, traced_ref->kernel_us) << "budget " << budget;
        }
      }
    }
  }
}

} // namespace
} // namespace quda
