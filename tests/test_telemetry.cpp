// Solver flight recorder (DESIGN.md §13): typed metric registry, the
// per-iteration convergence ledger, utilization timelines, and the online
// anomaly monitors.  The load-bearing property is observational purity: a
// telemetry-enabled run must be bit-identical -- solution vector, makespan,
// per-rank trace digests -- to a disabled one, at any QUDA_SIM_THREADS
// budget and under both QUDA_SIM_SCHED schedulers, including a faulted
// crash/recovery run.  Telemetry itself must also be deterministic: the
// ledger, anomaly stream, and merged registry replay bitwise across
// schedulers and budgets.

#include "core/quda_api.h"
#include "dirac/gauge_init.h"
#include "exec/host_engine.h"
#include "parallel/modeled_solver.h"
#include "sim/event_sim.h"
#include "sim/scheduler.h"
#include "trace/telemetry.h"
#include "trace/trace.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace quda {
namespace {

using telemetry::AnomalyKind;
using telemetry::RankRecorder;
using telemetry::TelemetryReport;

// the suite drives the telemetry/scheduler knobs itself; scrub ambient state
const bool g_env_cleared = [] {
  ::unsetenv("QUDA_SIM_TRACE");
  ::unsetenv("QUDA_SIM_TELEMETRY");
  ::unsetenv("QUDA_SIM_SCHED");
  ::unsetenv("QUDA_SIM_MAX_RANK_THREADS");
  return true;
}();

// --- registry units ----------------------------------------------------------

TEST(TelemetryRegistry, HistogramBucketsByUpperEdge) {
  telemetry::Histogram h({0.0, 1.0, 2.0});
  ASSERT_EQ(h.counts.size(), 4u);
  h.add(-0.5); // < 0
  h.add(0.0);  // [0, 1)
  h.add(0.5);
  h.add(1.5);  // [1, 2)
  h.add(7.0);  // >= 2
  EXPECT_EQ(h.counts[0], 1);
  EXPECT_EQ(h.counts[1], 2);
  EXPECT_EQ(h.counts[2], 1);
  EXPECT_EQ(h.counts[3], 1);
  EXPECT_EQ(h.total(), 5);
}

TEST(TelemetryRegistry, TimeSeriesFixedWidthBuckets) {
  telemetry::TimeSeries s;
  s.bucket_us = 100.0;
  s.add(0.0, 1.0);
  s.add(99.9, 1.0);
  s.add(100.0, 2.0);
  s.add(350.0, 4.0);
  s.add(-5.0, 8.0); // pre-epoch samples land in bucket 0
  ASSERT_EQ(s.values.size(), 4u);
  EXPECT_EQ(s.values[0], 10.0);
  EXPECT_EQ(s.values[1], 2.0);
  EXPECT_EQ(s.values[2], 0.0);
  EXPECT_EQ(s.values[3], 4.0);
}

TEST(TelemetryRegistry, MergeRulesAreRankOrderIndependent) {
  telemetry::Registry a, b;
  a.count("iterations", 10);
  b.count("iterations", 5);
  b.count("rollbacks", 1);
  a.gauge("busy_frac.max", 0.5);
  b.gauge("busy_frac.max", 0.8);
  a.histogram("res", {0.0, 1.0}).add(0.5);
  b.histogram("res", {0.0, 1.0}).add(0.5);
  b.histogram("res_other_shape", {5.0}).add(1.0);
  a.series("per_ms", 1000.0).add(500.0, 1.0);
  b.series("per_ms", 1000.0).add(1500.0, 2.0);

  a.merge(b);
  EXPECT_EQ(a.counters().at("iterations"), 15);
  EXPECT_EQ(a.counters().at("rollbacks"), 1);
  EXPECT_EQ(a.gauges().at("busy_frac.max"), 0.8); // gauges keep the max
  EXPECT_EQ(a.histograms().at("res").counts[1], 2);
  EXPECT_EQ(a.histograms().at("res_other_shape").total(), 1); // adopted whole
  ASSERT_EQ(a.all_series().at("per_ms").values.size(), 2u);
  EXPECT_EQ(a.all_series().at("per_ms").values[0], 1.0);
  EXPECT_EQ(a.all_series().at("per_ms").values[1], 2.0);

  // incompatible shapes never merge: the existing histogram stays intact
  telemetry::Registry c;
  c.histogram("res", {9.0}).add(1.0);
  a.merge(c);
  EXPECT_EQ(a.histograms().at("res").edges, (std::vector<double>{0.0, 1.0}));
  EXPECT_EQ(a.histograms().at("res").total(), 2);
}

// --- recorder units ----------------------------------------------------------

TEST(TelemetryRecorder, DisabledHooksAreNoOps) {
  RankRecorder rec;
  double clock = 0;
  rec.bind(0, &clock, nullptr, nullptr);
  rec.iteration(1, 1.0, 's');
  rec.flag(telemetry::kRollback);
  rec.true_residual(0.5);
  EXPECT_TRUE(rec.ledger().empty());
  EXPECT_TRUE(rec.registry().empty());
}

TEST(TelemetryRecorder, PendingFlagsAttachToFirstIteration) {
  RankRecorder rec;
  double clock = 0;
  rec.bind(0, &clock, nullptr, nullptr);
  rec.set_enabled(true);
  // a breakdown restart can fire before the first ++k; the flag must not
  // be dropped on the floor just because the ledger is still empty
  rec.flag(telemetry::kBreakdownRestart);
  rec.iteration(1, 1.0, 's');
  ASSERT_EQ(rec.ledger().size(), 1u);
  EXPECT_EQ(rec.ledger()[0].flags & telemetry::kBreakdownRestart,
            unsigned{telemetry::kBreakdownRestart});
  // later flags attach to the latest boundary instead
  rec.flag(telemetry::kReliableUpdate);
  rec.true_residual(0.25);
  EXPECT_EQ(rec.ledger()[0].flags & telemetry::kReliableUpdate,
            unsigned{telemetry::kReliableUpdate});
  EXPECT_EQ(rec.ledger()[0].true_r2, 0.25);
  EXPECT_EQ(rec.registry().counters().at("breakdown_restarts"), 1);
}

TEST(TelemetryRecorder, RecoveryEpochStampsSubsequentRecords) {
  RankRecorder rec;
  double clock = 0;
  rec.bind(2, &clock, nullptr, nullptr);
  rec.set_enabled(true);
  rec.iteration(1, 1.0, 'h');
  rec.recovery(1);
  rec.iteration(2, 0.5, 'h');
  ASSERT_EQ(rec.ledger().size(), 2u);
  EXPECT_EQ(rec.ledger()[0].epoch, 0);
  EXPECT_EQ(rec.ledger()[0].flags & telemetry::kRecovery, unsigned{telemetry::kRecovery});
  EXPECT_EQ(rec.ledger()[1].epoch, 1);
  EXPECT_EQ(rec.registry().counters().at("recovery_epochs"), 1);
}

TEST(TelemetryRecorder, StagnationMonitorFiresOncePerPlateau) {
  RankRecorder rec;
  double clock = 0;
  telemetry::MonitorConfig mon;
  mon.stagnation_window = 5;
  mon.stagnation_epsilon = 0.01;
  rec.bind(0, &clock, nullptr, nullptr);
  rec.set_enabled(true, mon);
  // converging prefix: no firing while each window improves
  for (long k = 1; k <= 6; ++k) rec.iteration(k, 1.0 / static_cast<double>(k * k), 's');
  EXPECT_TRUE(rec.anomalies().empty());
  // flat plateau: exactly one finding (the window clears after firing),
  // then a second full flat window reports again
  for (long k = 7; k <= 11; ++k) rec.iteration(k, 1e-6, 's');
  ASSERT_EQ(rec.anomalies().size(), 1u);
  EXPECT_EQ(rec.anomalies()[0].kind, AnomalyKind::ResidualStagnation);
  for (long k = 12; k <= 15; ++k) rec.iteration(k, 1e-6, 's');
  EXPECT_EQ(rec.anomalies().size(), 1u) << "refractory window reported twice";
  rec.iteration(16, 1e-6, 's');
  EXPECT_EQ(rec.anomalies().size(), 2u);
  EXPECT_EQ(rec.registry().counters().at("anomaly.residual_stagnation"), 2);
}

TEST(TelemetryRecorder, RetryStormMonitorFiresOnBurst) {
  RankRecorder rec;
  double clock = 0;
  long retries = 0;
  telemetry::MonitorConfig mon;
  mon.retry_spike = 3;
  rec.bind(1, &clock, nullptr, &retries);
  rec.set_enabled(true, mon);
  rec.iteration(1, 1.0, 's');
  retries += 2; // under the spike threshold
  rec.iteration(2, 0.5, 's');
  EXPECT_TRUE(rec.anomalies().empty());
  retries += 9; // burst between boundaries
  rec.iteration(3, 0.25, 's');
  ASSERT_EQ(rec.anomalies().size(), 1u);
  EXPECT_EQ(rec.anomalies()[0].kind, AnomalyKind::RetryStorm);
  EXPECT_EQ(rec.anomalies()[0].value, 9.0);
  EXPECT_EQ(rec.anomalies()[0].rank, 1);
  retries += 1; // the counter deltas reset at each boundary
  rec.iteration(4, 0.1, 's');
  EXPECT_EQ(rec.anomalies().size(), 1u);
}

// --- modeled-solver integration ---------------------------------------------

parallel::ModeledSolverConfig modeled_config() {
  parallel::ModeledSolverConfig cfg;
  cfg.local = LatticeDims{8, 8, 8, 16};
  cfg.outer = Precision::Single;
  cfg.sloppy = Precision::Half;
  cfg.policy = CommPolicy::Overlap;
  cfg.iterations = 25;
  cfg.reliable_interval = 10;
  return cfg;
}

struct ModeledObs {
  parallel::ModeledSolverResult result;
  double makespan = 0;
  std::vector<std::uint64_t> digests;
};

ModeledObs run_modeled(sim::SchedulerKind kind, int ranks, bool telemetry_on,
                       const sim::FaultConfig& faults = {},
                       const telemetry::MonitorConfig& monitors = {}) {
  sim::ClusterSpec spec = sim::ClusterSpec::jlab_9g(ranks);
  spec.scheduler = kind;
  spec.trace.enabled = true;
  spec.telemetry.enabled = telemetry_on;
  spec.telemetry.monitors = monitors;
  spec.faults = faults;
  sim::VirtualCluster cluster(spec);
  ModeledObs o;
  o.result = parallel::run_modeled_solver(cluster, modeled_config());
  o.makespan = cluster.makespan_us();
  for (const auto& events : cluster.trace().per_rank)
    o.digests.push_back(trace::sequence_digest(events));
  return o;
}

// acceptance: switching the flight recorder on perturbs nothing -- makespan,
// Gflops, and every per-rank trace digest stay bitwise identical under both
// schedulers at thread budgets {1, 2, 8}, with message faults in play
TEST(TelemetryPurity, ModeledSolveUnperturbedAcrossSchedulersAndBudgets) {
  sim::FaultConfig faults;
  faults.seed = 20260808;
  faults.drop_rate = 0.02;
  faults.delay_rate = 0.05;

  exec::set_thread_budget(1);
  const ModeledObs off = run_modeled(sim::SchedulerKind::Threads, 4, false, faults);
  ASSERT_TRUE(off.result.fits);
  EXPECT_FALSE(off.result.telemetry.enabled);

  for (const sim::SchedulerKind kind :
       {sim::SchedulerKind::Threads, sim::SchedulerKind::Seq}) {
    for (const int budget : {1, 2, 8}) {
      exec::set_thread_budget(budget);
      const ModeledObs on = run_modeled(kind, 4, true, faults);
      const std::string label = std::string(sim::scheduler_name(kind)) + " budget " +
                                std::to_string(budget);
      EXPECT_EQ(off.result.time_us, on.result.time_us) << label;
      EXPECT_EQ(off.result.effective_gflops, on.result.effective_gflops) << label;
      EXPECT_EQ(off.makespan, on.makespan) << label;
      ASSERT_EQ(off.digests.size(), on.digests.size()) << label;
      for (std::size_t r = 0; r < off.digests.size(); ++r)
        EXPECT_EQ(off.digests[r], on.digests[r]) << label << " rank " << r;
      // telemetry itself is deterministic: the report replays bitwise
      EXPECT_TRUE(on.result.telemetry.enabled) << label;
      EXPECT_EQ(on.result.telemetry.iterations(), 25) << label;
      EXPECT_TRUE(on.result.telemetry.ledger_symmetric) << label;
    }
  }
  exec::set_thread_budget(0);
}

// a clean symmetric modeled run keeps every monitor silent (the anomaly
// thresholds are calibrated to the repo's own baselines)
TEST(TelemetryModeled, CleanRunMonitorsStaySilent) {
  const ModeledObs o = run_modeled(sim::SchedulerKind::Threads, 4, true);
  ASSERT_TRUE(o.result.fits);
  const TelemetryReport& t = o.result.telemetry;
  ASSERT_TRUE(t.enabled);
  EXPECT_EQ(t.anomaly_count(), 0) << "clean run fired a monitor";
  EXPECT_EQ(t.iterations(), 25);
  EXPECT_TRUE(t.ledger_symmetric);
  // timelines come from the recorded trace; a symmetric run is balanced
  ASSERT_EQ(t.timelines.size(), 4u);
  EXPECT_GT(t.load_imbalance, 0.0);
  EXPECT_LT(t.load_imbalance, 1.5);
  EXPECT_GT(t.registry.gauges().at("busy_frac.max"), 0.0);
  EXPECT_GE(t.registry.counters().at("iterations"), 4 * 25l);
  // modeled ledgers carry the cadence but no residuals
  EXPECT_EQ(t.ledger[0].r2, -1.0);
  EXPECT_EQ(t.ledger[0].regime, 'h');
}

// a seeded drop storm drives the retry machinery hard enough to trip the
// retry-storm monitor, and the findings land in the trace as instants
TEST(TelemetryModeled, SeededRetryStormFiresMonitor) {
  sim::FaultConfig faults;
  faults.seed = 777;
  faults.drop_rate = 0.08; // heavy but deliverable within the retry budget
  telemetry::MonitorConfig mon;
  mon.retry_spike = 0; // any retransmission between boundaries fires
  const ModeledObs o = run_modeled(sim::SchedulerKind::Threads, 4, true, faults, mon);
  ASSERT_TRUE(o.result.fits);
  const TelemetryReport& t = o.result.telemetry;
  ASSERT_GT(t.anomaly_count(), 0) << "seeded retry storm stayed invisible";
  bool saw_storm = false;
  for (const telemetry::Anomaly& a : t.anomalies)
    if (a.kind == AnomalyKind::RetryStorm) saw_storm = true;
  EXPECT_TRUE(saw_storm);
  EXPECT_GT(t.registry.counters().at("anomaly.retry_storm"), 0);
}

// the JSONL export mirrors the trace-export contract: spec switch or the
// QUDA_SIM_TELEMETRY environment variable, non-clobbering suffixes, one
// provenance line first
TEST(TelemetryModeled, JsonlExportViaSpecAndEnv) {
  auto slurp = [](const std::string& base) {
    for (int n = 0; n < 8; ++n) {
      const std::string path = n == 0 ? base : base + "." + std::to_string(n);
      std::ifstream in(path);
      if (!in) continue;
      std::ostringstream ss;
      ss << in.rdbuf();
      std::remove(path.c_str());
      return ss.str();
    }
    return std::string{};
  };

  sim::ClusterSpec spec = sim::ClusterSpec::jlab_9g(2);
  spec.trace.enabled = true;
  spec.telemetry.enabled = true;
  spec.telemetry.path = "telemetry_spec_test.jsonl";
  sim::VirtualCluster cluster(spec);
  (void)parallel::run_modeled_solver(cluster, modeled_config());
  const std::string via_spec = slurp("telemetry_spec_test.jsonl");
  ASSERT_FALSE(via_spec.empty());
  EXPECT_EQ(via_spec.find("{\"type\": \"provenance\""), 0u)
      << "provenance must be the first line";
  EXPECT_NE(via_spec.find("\"type\": \"run\""), std::string::npos);
  EXPECT_NE(via_spec.find("\"type\": \"iteration\""), std::string::npos);
  EXPECT_NE(via_spec.find("\"type\": \"timeline\""), std::string::npos);
  EXPECT_NE(via_spec.find("\"ledger_symmetric\": true"), std::string::npos);

  // env-only run: enabling and the path both come from QUDA_SIM_TELEMETRY
  ::setenv("QUDA_SIM_TELEMETRY", "telemetry_env_test.jsonl", 1);
  sim::ClusterSpec env_spec = sim::ClusterSpec::jlab_9g(2);
  sim::VirtualCluster env_cluster(env_spec);
  (void)parallel::run_modeled_solver(env_cluster, modeled_config());
  ::unsetenv("QUDA_SIM_TELEMETRY");
  const std::string via_env = slurp("telemetry_env_test.jsonl");
  ASSERT_FALSE(via_env.empty());
  EXPECT_NE(via_env.find("\"type\": \"run\""), std::string::npos);
  // untraced run: no utilization timelines, but the ledger still lands
  EXPECT_EQ(via_env.find("\"type\": \"timeline\""), std::string::npos);
  EXPECT_NE(via_env.find("\"type\": \"iteration\""), std::string::npos);
}

// --- real-mode integration (labeled slow in CMake) ---------------------------

struct RealFixture {
  Geometry g{LatticeDims{4, 4, 4, 8}};
  HostGaugeField u;
  HostSpinorField b;
  InvertParams params;

  RealFixture() : u(g), b(g) {
    make_weak_field_gauge(u, 0.2, 9000);
    make_random_spinor(b, 9001);
    params.mass = 0.1;
    params.csw = 1.0;
    params.precision = Precision::Single;
    params.sloppy = Precision::Half;
    params.tol = 1e-6;
    params.delta = 1e-1;
    params.max_iter = 2000;
    params.checkpoint_interval = 1;
  }
};

// a zero source converges before the first Krylov iteration; the ledger
// must degrade to empty instead of inventing a boundary
TEST(TelemetryReal, ZeroIterationSolveYieldsEmptyLedger) {
  RealFixture f;
  f.params.sloppy.reset(); // uniform single precision
  HostSpinorField zero_b(f.g), x(f.g);
  sim::ClusterSpec spec = sim::ClusterSpec::jlab_9g(1);
  spec.telemetry.enabled = true;
  const InvertResult r = invert_multi_gpu(spec, f.u, zero_b, x, f.params);
  ASSERT_TRUE(r.stats.converged);
  EXPECT_EQ(r.stats.iterations, 0);
  ASSERT_TRUE(r.telemetry.enabled);
  EXPECT_EQ(r.telemetry.iterations(), 0);
  EXPECT_TRUE(r.telemetry.ledger_symmetric);
  EXPECT_EQ(r.telemetry.anomaly_count(), 0);
}

// an unreachable tolerance stagnates at the precision floor; the residual
// ledger sees the plateau and the stagnation monitor names it
TEST(TelemetryReal, StagnatingSolveFiresStagnationMonitor) {
  RealFixture f;
  // mixed single/half with an unreachable tolerance: reliable updates keep
  // resetting the iterated residual to the floored true residual, so the
  // boundary stream plateaus (a uniform-precision recursive residual would
  // keep decaying forever and never show the stall)
  f.params.tol = 1e-30;
  f.params.max_iter = 200;
  f.params.checkpoint_interval = 0;
  sim::ClusterSpec spec = sim::ClusterSpec::jlab_9g(1);
  spec.telemetry.enabled = true;
  // the solver's own guard quits after 3 stagnant reliable updates, so the
  // plateau is short: a 6-boundary window fits inside it
  spec.telemetry.monitors.stagnation_window = 6;
  HostSpinorField x(f.g);
  const InvertResult r = invert_multi_gpu(spec, f.u, f.b, x, f.params);
  EXPECT_FALSE(r.stats.converged);
  ASSERT_TRUE(r.telemetry.enabled);
  bool saw_stagnation = false;
  for (const telemetry::Anomaly& a : r.telemetry.anomalies)
    if (a.kind == AnomalyKind::ResidualStagnation) saw_stagnation = true;
  EXPECT_TRUE(saw_stagnation) << "plateaued solve fired no stagnation anomaly ("
                              << r.telemetry.anomaly_count() << " anomalies)";
  // the ledger carries the convergence history the monitor consumed
  EXPECT_EQ(r.telemetry.iterations(), r.stats.iterations);
  EXPECT_GT(r.telemetry.ledger.back().iter, 0);
  EXPECT_EQ(r.telemetry.ledger.back().regime, 'h') << "mixed boundaries are sloppy";
}

// everything observable about one real crashy run
struct RealObs {
  InvertResult r;
  HostSpinorField x;
  std::string trace_json;
};

// strip the lines telemetry is *allowed* to change in a trace export: the
// provenance stamp (names the scheduler/budget) and the anomaly instants
// (monitor findings, excluded from digests by design)
std::string strip_observational_lines(const std::string& text) {
  std::string out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    if (line.find("\"provenance\"") == std::string::npos &&
        line.find("\"name\": \"anomaly\"") == std::string::npos) {
      out += line;
      if (eol < text.size()) out += '\n';
    }
    pos = eol + 1;
  }
  return out;
}

std::string slurp_export(const std::string& base) {
  for (int n = 0; n < 64; ++n) {
    const std::string path = n == 0 ? base : base + "." + std::to_string(n);
    std::ifstream in(path, std::ios::binary);
    if (!in) continue;
    std::ostringstream ss;
    ss << in.rdbuf();
    std::remove(path.c_str());
    return strip_observational_lines(ss.str());
  }
  return "";
}

// acceptance: the purity contract holds on the hardest path -- a seeded
// mid-solve rank crash recovered via checkpoint/restart -- under both
// schedulers at budgets {1, 2, 8}; and the respawned rank's recorder stays
// in lockstep (symmetric per-rank ledger and recovery counts)
TEST(TelemetryReal, CrashRecoveryPureAndDeterministic) {
  RealFixture f;

  HostSpinorField x_clean(f.g);
  const InvertResult clean = invert_multi_gpu(sim::ClusterSpec::jlab_9g(4), f.u, f.b,
                                              x_clean, f.params);
  ASSERT_TRUE(clean.stats.converged) << clean.stats.summary();

  int run_index = 0;
  auto run_crashy = [&](sim::SchedulerKind kind, int budget, bool telemetry_on) {
    exec::set_thread_budget(budget);
    sim::ClusterSpec spec = sim::ClusterSpec::jlab_9g(4);
    spec.scheduler = kind;
    spec.faults.seed = 4242;
    spec.faults.crash_rate = 0.35;
    spec.faults.crash_window_us = 0.5 * clean.simulated_time_us;
    spec.trace.enabled = true;
    const std::string trace_path =
        "telemetry_crashy_" + std::to_string(run_index++) + ".trace.json";
    spec.trace.path = trace_path;
    spec.telemetry.enabled = telemetry_on;
    RealObs o{InvertResult{}, HostSpinorField(f.g), ""};
    o.r = invert_multi_gpu(spec, f.u, f.b, o.x, f.params);
    o.trace_json = slurp_export(trace_path);
    return o;
  };

  const RealObs off = run_crashy(sim::SchedulerKind::Threads, 1, false);
  ASSERT_GT(off.r.faults.recovery.crashes, 0) << "the crash injection must fire";
  ASSERT_TRUE(off.r.stats.converged) << off.r.stats.summary();
  ASSERT_FALSE(off.trace_json.empty());

  const RealObs* base_on = nullptr;
  RealObs first_on;
  for (const sim::SchedulerKind kind :
       {sim::SchedulerKind::Threads, sim::SchedulerKind::Seq}) {
    for (const int budget : {1, 2, 8}) {
      const RealObs on = run_crashy(kind, budget, true);
      const std::string label = std::string(sim::scheduler_name(kind)) + " budget " +
                                std::to_string(budget);

      // purity vs. the telemetry-off run: bitwise on every observable
      EXPECT_EQ(off.r.simulated_time_us, on.r.simulated_time_us) << label;
      EXPECT_EQ(off.r.stats.true_residual, on.r.stats.true_residual) << label;
      EXPECT_EQ(off.r.faults.recovery.failures, on.r.faults.recovery.failures) << label;
      EXPECT_EQ(off.r.faults.recovery.checkpoint_digest,
                on.r.faults.recovery.checkpoint_digest) << label;
      EXPECT_EQ(off.trace_json, on.trace_json)
          << label << ": trace (minus provenance/anomaly lines) must be bit-identical";
      for (std::int64_t i = 0; i < f.g.volume(); ++i)
        ASSERT_EQ(norm2(off.x[i] - on.x[i]), 0.0) << label << " site " << i;

      // the flight recorder stays in lockstep through death and respawn
      const TelemetryReport& t = on.r.telemetry;
      ASSERT_TRUE(t.enabled) << label;
      EXPECT_TRUE(t.ledger_symmetric)
          << label << ": respawned rank recorded a different boundary count";
      const long epochs = t.registry.counters().at("recovery_epochs");
      EXPECT_GT(epochs, 0) << label;
      EXPECT_EQ(epochs % 4, 0)
          << label << ": recovery rendezvous must be recorded by every rank";

      // telemetry determinism: every enabled run reports the same story
      if (base_on == nullptr) {
        first_on = on;
        base_on = &first_on;
        continue;
      }
      EXPECT_EQ(base_on->r.telemetry.iterations(), t.iterations()) << label;
      EXPECT_EQ(base_on->r.telemetry.anomaly_count(), t.anomaly_count()) << label;
      EXPECT_EQ(base_on->r.telemetry.load_imbalance, t.load_imbalance) << label;
      EXPECT_EQ(base_on->r.telemetry.registry.counters(), t.registry.counters()) << label;
      ASSERT_EQ(base_on->r.telemetry.ledger.size(), t.ledger.size()) << label;
      for (std::size_t i = 0; i < t.ledger.size(); ++i) {
        EXPECT_EQ(base_on->r.telemetry.ledger[i].iter, t.ledger[i].iter) << label;
        EXPECT_EQ(base_on->r.telemetry.ledger[i].epoch, t.ledger[i].epoch) << label;
        EXPECT_EQ(base_on->r.telemetry.ledger[i].r2, t.ledger[i].r2) << label;
        EXPECT_EQ(base_on->r.telemetry.ledger[i].flags, t.ledger[i].flags) << label;
      }
    }
  }
  exec::set_thread_budget(0);
}

} // namespace
} // namespace quda
