// Integration tests for the multi-GPU path: the halo-exchanged dslash and
// the parallel even-odd operator on N simulated ranks must reproduce the
// single-device / reference results exactly, for both communication
// policies, all precisions, and both boundary conditions.

#include "comm/qmp.h"
#include "dirac/gauge_init.h"
#include "dirac/transfer.h"
#include "dirac/wilson_ref.h"
#include "parallel/halo_dslash.h"
#include "parallel/parallel_op.h"
#include "sim/event_sim.h"
#include "solvers/bicgstab.h"
#include "solvers/mixed_precision.h"

#include <gtest/gtest.h>

namespace quda {
namespace {

using parallel::HaloDslashConfig;
using parallel::HaloFields;
using sim::ClusterSpec;
using sim::RankContext;
using sim::VirtualCluster;

// --- global <-> local slicing helpers ---------------------------------------

Geometry local_geometry(const Geometry& global, int n_ranks) {
  LatticeDims d = global.dims();
  d.t /= n_ranks;
  return Geometry(d);
}

Coords to_global(const Coords& local, int rank, int t_local) {
  Coords g = local;
  g[3] += rank * t_local;
  return g;
}

HostGaugeField slice_gauge(const HostGaugeField& global, int rank, int n_ranks) {
  const Geometry lg = local_geometry(global.geom(), n_ranks);
  HostGaugeField local(lg);
  for (std::int64_t i = 0; i < lg.volume(); ++i) {
    const Coords lc = lg.coords(i);
    const Coords gc = to_global(lc, rank, lg.dims().t);
    for (int mu = 0; mu < 4; ++mu) local.link(mu, lc) = global.link(mu, gc);
  }
  return local;
}

HostSpinorField slice_spinor(const HostSpinorField& global, int rank, int n_ranks) {
  const Geometry lg = local_geometry(global.geom(), n_ranks);
  HostSpinorField local(lg);
  for (std::int64_t i = 0; i < lg.volume(); ++i) {
    const Coords lc = lg.coords(i);
    local[i] = global.at(to_global(lc, rank, lg.dims().t));
  }
  return local;
}

HostCloverField slice_clover(const HostCloverField& global, int rank, int n_ranks) {
  const Geometry lg = local_geometry(global.geom(), n_ranks);
  HostCloverField local(lg);
  for (std::int64_t i = 0; i < lg.volume(); ++i) {
    const Coords lc = lg.coords(i);
    local[i] = global[global.geom().linear_index(to_global(lc, rank, lg.dims().t))];
  }
  return local;
}

void merge_spinor(HostSpinorField& global, const HostSpinorField& local, int rank, int n_ranks) {
  const Geometry& lg = local.geom();
  (void)n_ranks;
  for (std::int64_t i = 0; i < lg.volume(); ++i) {
    const Coords lc = lg.coords(i);
    global.at(to_global(lc, rank, lg.dims().t)) = local[i];
  }
}

double rel_dist2(const HostSpinorField& a, const HostSpinorField& b) {
  double num = 0, den = 0;
  for (std::int64_t i = 0; i < a.geom().volume(); ++i) {
    num += norm2(a[i] - b[i]);
    den += norm2(b[i]);
  }
  return num / den;
}

// apply the raw hopping term on N ranks with the halo exchange and gather
// the global result
template <typename P>
HostSpinorField parallel_hopping(const HostGaugeField& gauge, const HostSpinorField& in,
                                 int n_ranks, CommPolicy policy, TimeBoundary bc) {
  const Geometry& gg = gauge.geom();
  VirtualCluster cluster(ClusterSpec::jlab_9g(n_ranks));
  std::vector<HostSpinorField> outs(static_cast<std::size_t>(n_ranks));

  cluster.run([&](RankContext& ctx) {
    comm::QmpGrid grid(ctx);
    const int rank = ctx.rank();
    const Geometry lg = local_geometry(gg, n_ranks);

    const HostGaugeField lu = slice_gauge(gauge, rank, n_ranks);
    const HostSpinorField lin = slice_spinor(in, rank, n_ranks);

    GaugeField<P> dev_u = upload_gauge<P>(lu, Reconstruct::Twelve);
    parallel::exchange_gauge_ghost<P>(grid, lg, &dev_u, Execution::Real);

    SpinorField<P> in_e = upload_spinor<P>(lin, Parity::Even);
    SpinorField<P> in_o = upload_spinor<P>(lin, Parity::Odd);
    SpinorField<P> out_e(lg), out_o(lg);

    HaloDslashConfig cfg;
    cfg.policy = policy;
    cfg.exec = Execution::Real;
    cfg.time_bc = bc;
    cfg.scale = 1.0;

    cfg.out_parity = Parity::Even;
    parallel::halo_dslash<P>(grid, lg, cfg, {&out_e, &dev_u, &in_o});
    cfg.out_parity = Parity::Odd;
    parallel::halo_dslash<P>(grid, lg, cfg, {&out_o, &dev_u, &in_e});

    HostSpinorField lout(lg);
    download_spinor(out_e, Parity::Even, lout);
    download_spinor(out_o, Parity::Odd, lout);
    outs[static_cast<std::size_t>(rank)] = lout;
  });

  HostSpinorField global_out(gg);
  for (int r = 0; r < n_ranks; ++r) merge_spinor(global_out, outs[static_cast<std::size_t>(r)], r, n_ranks);
  return global_out;
}

struct ParallelCase {
  int ranks;
  CommPolicy policy;
  TimeBoundary bc;
};

class ParallelDslash : public ::testing::TestWithParam<ParallelCase> {};

TEST_P(ParallelDslash, MatchesReferenceDouble) {
  const auto [ranks, policy, bc] = GetParam();
  const Geometry g({4, 4, 4, 8});
  HostGaugeField u(g);
  HostSpinorField in(g), ref(g);
  make_random_gauge(u, 2000);
  make_random_spinor(in, 2001);

  WilsonParams wp;
  wp.time_bc = bc;
  apply_hopping_ref(u, in, ref, wp);

  const HostSpinorField out = parallel_hopping<PrecDouble>(u, in, ranks, policy, bc);
  EXPECT_LT(rel_dist2(out, ref), 1e-24);
}

TEST_P(ParallelDslash, MatchesReferenceSingle) {
  const auto [ranks, policy, bc] = GetParam();
  const Geometry g({4, 4, 4, 8});
  HostGaugeField u(g);
  HostSpinorField in(g), ref(g);
  make_random_gauge(u, 3000);
  make_random_spinor(in, 3001);

  WilsonParams wp;
  wp.time_bc = bc;
  apply_hopping_ref(u, in, ref, wp);

  const HostSpinorField out = parallel_hopping<PrecSingle>(u, in, ranks, policy, bc);
  EXPECT_LT(rel_dist2(out, ref), 1e-11);
}

TEST_P(ParallelDslash, MatchesReferenceHalf) {
  const auto [ranks, policy, bc] = GetParam();
  const Geometry g({4, 4, 4, 8});
  HostGaugeField u(g);
  HostSpinorField in(g), ref(g);
  make_random_gauge(u, 4000);
  make_random_spinor(in, 4001);

  WilsonParams wp;
  wp.time_bc = bc;
  apply_hopping_ref(u, in, ref, wp);

  const HostSpinorField out = parallel_hopping<PrecHalf>(u, in, ranks, policy, bc);
  EXPECT_LT(rel_dist2(out, ref), 1e-5);
}

INSTANTIATE_TEST_SUITE_P(
    RanksPoliciesBCs, ParallelDslash,
    ::testing::Values(ParallelCase{2, CommPolicy::NoOverlap, TimeBoundary::Periodic},
                      ParallelCase{2, CommPolicy::Overlap, TimeBoundary::Periodic},
                      ParallelCase{2, CommPolicy::Overlap, TimeBoundary::Antiperiodic},
                      ParallelCase{4, CommPolicy::NoOverlap, TimeBoundary::Antiperiodic},
                      ParallelCase{4, CommPolicy::Overlap, TimeBoundary::Periodic}),
    [](const auto& info) {
      return std::to_string(info.param.ranks) + "ranks_" +
             (info.param.policy == CommPolicy::Overlap ? "overlap" : "noOverlap") + "_" +
             (info.param.bc == TimeBoundary::Periodic ? "periodic" : "antiperiodic");
    });

TEST(ParallelDslashNumerics, OverlapAndNoOverlapAreBitIdentical) {
  // the two policies reorder communication, not arithmetic
  const Geometry g({4, 4, 4, 8});
  HostGaugeField u(g);
  HostSpinorField in(g);
  make_random_gauge(u, 5000);
  make_random_spinor(in, 5001);

  const HostSpinorField a =
      parallel_hopping<PrecDouble>(u, in, 4, CommPolicy::NoOverlap, TimeBoundary::Periodic);
  const HostSpinorField b =
      parallel_hopping<PrecDouble>(u, in, 4, CommPolicy::Overlap, TimeBoundary::Periodic);
  for (std::int64_t i = 0; i < g.volume(); ++i) EXPECT_EQ(norm2(a[i] - b[i]), 0.0);
}

TEST(GaugeGhostExchange, GhostEqualsNeighborLastSlice) {
  const Geometry g({4, 4, 4, 8});
  HostGaugeField u(g);
  make_random_gauge(u, 6000);
  const int n_ranks = 4;

  VirtualCluster cluster(ClusterSpec::jlab_9g(n_ranks));
  cluster.run([&](RankContext& ctx) {
    comm::QmpGrid grid(ctx);
    const Geometry lg = local_geometry(g, n_ranks);
    const HostGaugeField lu = slice_gauge(u, ctx.rank(), n_ranks);
    GaugeField<PrecDouble> dev_u = upload_gauge<PrecDouble>(lu, Reconstruct::Twelve);
    parallel::exchange_gauge_ghost<PrecDouble>(grid, lg, &dev_u, Execution::Real);

    // the ghost must equal the backward neighbor's t = T_local-1 temporal links
    const int back = (ctx.rank() + n_ranks - 1) % n_ranks;
    const HostGaugeField bu = slice_gauge(u, back, n_ranks);
    for (int par = 0; par < 2; ++par) {
      const Parity parity = par == 0 ? Parity::Even : Parity::Odd;
      for (std::int64_t fs = 0; fs < lg.half_spatial_volume(); ++fs) {
        const Coords c = face_coords(lg, parity, lg.dims().t - 1, fs);
        const SU3<double> expect = bu.link(3, c);
        const SU3<double> got = dev_u.load_ghost(parity, fs);
        EXPECT_LT(frobenius_dist2(got, expect), 1e-20);
      }
    }
  });
}

// --- distributed solver -------------------------------------------------------

struct SolverSetup {
  Geometry g{LatticeDims{4, 4, 4, 8}};
  HostGaugeField u;
  HostCloverField t, tinv;
  HostSpinorField b;
  double mass = 0.1, csw = 1.0;

  SolverSetup() : u(g), b(g) {
    make_weak_field_gauge(u, 0.2, 7000);
    t = make_clover_term(u, csw);
    add_diag(t, 4.0 + mass);
    tinv = invert_clover(t);
    make_random_spinor(b, 7001);
  }
};

TEST(ParallelSolver, DistributedBiCGstabMatchesReferenceResidual) {
  SolverSetup s;
  const int n_ranks = 4;
  VirtualCluster cluster(ClusterSpec::jlab_9g(n_ranks));
  std::vector<HostSpinorField> xs(static_cast<std::size_t>(n_ranks));
  std::vector<SolverStats> stats(static_cast<std::size_t>(n_ranks));

  cluster.run([&](RankContext& ctx) {
    comm::QmpGrid grid(ctx);
    const int rank = ctx.rank();
    const Geometry lg = local_geometry(s.g, n_ranks);

    const HostGaugeField lu = slice_gauge(s.u, rank, n_ranks);
    const HostCloverField lt = slice_clover(s.t, rank, n_ranks);
    const HostCloverField ltinv = slice_clover(s.tinv, rank, n_ranks);
    const HostSpinorField lb = slice_spinor(s.b, rank, n_ranks);

    GaugeField<PrecDouble> dev_u = upload_gauge<PrecDouble>(lu, Reconstruct::Twelve);
    parallel::exchange_gauge_ghost<PrecDouble>(grid, lg, &dev_u, Execution::Real);
    const CloverField<PrecDouble> dev_t = upload_clover<PrecDouble>(lt);
    const CloverField<PrecDouble> dev_tinv = upload_clover<PrecDouble>(ltinv);

    OperatorParams params;
    params.mass = s.mass;
    params.time_bc = TimeBoundary::Antiperiodic;
    parallel::ParallelWilsonCloverOp<PrecDouble> op(grid, lg, dev_u, dev_t, dev_tinv, params,
                                                    CommPolicy::Overlap);

    SpinorFieldD b_e = upload_spinor<PrecDouble>(lb, Parity::Even);
    SpinorFieldD b_o = upload_spinor<PrecDouble>(lb, Parity::Odd);
    SpinorFieldD bprime(lg), x_e(lg), x_o(lg);
    op.prepare_source(bprime, b_e, b_o);

    SolverParams sp;
    sp.tol = 1e-11;
    sp.max_iter = 1000;
    stats[static_cast<std::size_t>(rank)] = solve_bicgstab(op, x_e, bprime, sp);
    op.reconstruct_odd(x_o, x_e, b_o);

    HostSpinorField lx(lg);
    download_spinor(x_e, Parity::Even, lx);
    download_spinor(x_o, Parity::Odd, lx);
    xs[static_cast<std::size_t>(rank)] = lx;
  });

  for (int r = 0; r < n_ranks; ++r) {
    EXPECT_TRUE(stats[static_cast<std::size_t>(r)].converged)
        << "rank " << r << ": " << stats[static_cast<std::size_t>(r)].summary();
    // identical global control flow: all ranks agree on the iteration count
    EXPECT_EQ(stats[static_cast<std::size_t>(r)].iterations, stats[0].iterations);
  }

  HostSpinorField x(s.g);
  for (int r = 0; r < n_ranks; ++r) merge_spinor(x, xs[static_cast<std::size_t>(r)], r, n_ranks);

  // end-to-end: the merged solution satisfies the reference operator
  WilsonParams wp;
  wp.mass = s.mass;
  wp.time_bc = TimeBoundary::Antiperiodic;
  const DenseCloverField dense = make_dense_clover_term(s.u, s.csw);
  HostSpinorField mx(s.g);
  apply_wilson_clover_ref(s.u, dense, x, mx, wp);
  EXPECT_LT(std::sqrt(rel_dist2(mx, s.b)), 1e-9);
}

TEST(ParallelSolver, MixedPrecisionDistributedSolve) {
  SolverSetup s;
  const int n_ranks = 2;
  VirtualCluster cluster(ClusterSpec::jlab_9g(n_ranks));
  std::vector<SolverStats> stats(static_cast<std::size_t>(n_ranks));

  cluster.run([&](RankContext& ctx) {
    comm::QmpGrid grid(ctx);
    const int rank = ctx.rank();
    const Geometry lg = local_geometry(s.g, n_ranks);

    const HostGaugeField lu = slice_gauge(s.u, rank, n_ranks);
    const HostCloverField lt = slice_clover(s.t, rank, n_ranks);
    const HostCloverField ltinv = slice_clover(s.tinv, rank, n_ranks);
    const HostSpinorField lb = slice_spinor(s.b, rank, n_ranks);

    GaugeField<PrecSingle> u_s = upload_gauge<PrecSingle>(lu, Reconstruct::Twelve);
    GaugeField<PrecHalf> u_h = upload_gauge<PrecHalf>(lu, Reconstruct::Twelve);
    parallel::exchange_gauge_ghost<PrecSingle>(grid, lg, &u_s, Execution::Real);
    parallel::exchange_gauge_ghost<PrecHalf>(grid, lg, &u_h, Execution::Real);
    const CloverField<PrecSingle> t_s = upload_clover<PrecSingle>(lt);
    const CloverField<PrecSingle> tinv_s = upload_clover<PrecSingle>(ltinv);
    const CloverField<PrecHalf> t_h = upload_clover<PrecHalf>(lt);
    const CloverField<PrecHalf> tinv_h = upload_clover<PrecHalf>(ltinv);

    OperatorParams params;
    params.mass = s.mass;
    params.time_bc = TimeBoundary::Antiperiodic;
    parallel::ParallelWilsonCloverOp<PrecSingle> op_hi(grid, lg, u_s, t_s, tinv_s, params,
                                                       CommPolicy::Overlap);
    parallel::ParallelWilsonCloverOp<PrecHalf> op_lo(grid, lg, u_h, t_h, tinv_h, params,
                                                     CommPolicy::Overlap);

    SpinorFieldS b_e = upload_spinor<PrecSingle>(lb, Parity::Even);
    SpinorFieldS x(lg);
    SolverParams sp;
    sp.tol = 1e-6;
    sp.delta = 1e-1;
    sp.max_iter = 2000;
    stats[static_cast<std::size_t>(rank)] = solve_bicgstab_reliable(op_hi, op_lo, x, b_e, sp);
  });

  for (int r = 0; r < n_ranks; ++r)
    EXPECT_TRUE(stats[static_cast<std::size_t>(r)].converged)
        << stats[static_cast<std::size_t>(r)].summary();
}

TEST(ParallelTiming, OverlapHidesTransfersForLargeLocalVolume) {
  // with a big interior, the overlapped policy's makespan must beat the
  // serialized one -- the left half of Fig. 5(a)'s story (Modeled mode)
  const LatticeDims local{32, 32, 32, 32};
  const Geometry lg(local);
  for (int ranks : {4}) {
    double makespans[2] = {0, 0};
    int idx = 0;
    for (CommPolicy policy : {CommPolicy::NoOverlap, CommPolicy::Overlap}) {
      VirtualCluster cluster(ClusterSpec::jlab_9g(ranks));
      cluster.run([&](RankContext& ctx) {
        comm::QmpGrid grid(ctx);
        HaloDslashConfig cfg;
        cfg.policy = policy;
        cfg.exec = Execution::Modeled;
        for (int rep = 0; rep < 10; ++rep) {
          cfg.out_parity = rep % 2 == 0 ? Parity::Even : Parity::Odd;
          parallel::halo_dslash<PrecSingle>(grid, lg, cfg, {});
        }
      });
      makespans[idx++] = cluster.makespan_us();
    }
    EXPECT_LT(makespans[1], makespans[0])
        << "overlap should win at local volume " << local.to_string();
  }
}

} // namespace
} // namespace quda
