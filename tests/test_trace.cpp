// Trace/metrics subsystem tests (src/trace): schema well-formedness of the
// recorded event streams, golden event-sequence digests pinned for small
// 2-rank solves (pipeline reordering fails loudly), property-based
// invariants across seeds and comm policies (span nesting, send/wait
// matching, overlap geometry, fault accounting), and exporter fidelity --
// a fig5-sized Overlap run exported through QUDA_SIM_TRACE whose Chrome
// JSON, re-parsed by hand, reproduces the overlap efficiency computed
// in-process to within 1%.

#include "parallel/modeled_solver.h"
#include "trace/metrics.h"
#include "trace/trace.h"
#include "trace/trace_export.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

namespace quda {
namespace {

using parallel::ModeledSolverConfig;
using parallel::ModeledSolverResult;
using trace::Event;

// the suite controls QUDA_SIM_TRACE itself (the acceptance test sets it);
// scrub any ambient value so every other traced run stays export-free
const bool g_env_cleared = [] {
  ::unsetenv("QUDA_SIM_TRACE");
  return true;
}();

// --- harness -----------------------------------------------------------------

ModeledSolverConfig small_config(CommPolicy policy) {
  ModeledSolverConfig cfg;
  cfg.local = LatticeDims{8, 8, 8, 16};
  cfg.outer = Precision::Single;
  cfg.sloppy = Precision::Half;
  cfg.policy = policy;
  cfg.iterations = 25;
  cfg.reliable_interval = 10;
  return cfg;
}

struct TracedRun {
  ModeledSolverResult result;
  trace::TraceReport report;
  double makespan_us = 0;
};

TracedRun run_traced(int ranks, const ModeledSolverConfig& cfg,
                     const sim::FaultConfig& faults = {}) {
  sim::ClusterSpec spec = sim::ClusterSpec::jlab_9g(ranks);
  spec.trace.enabled = true;
  spec.faults = faults;
  sim::VirtualCluster cluster(spec);
  TracedRun t;
  t.result = parallel::run_modeled_solver(cluster, cfg);
  t.report = cluster.trace();
  t.makespan_us = cluster.makespan_us();
  return t;
}

// --- interval helpers (independent of src/trace/metrics.cpp on purpose) ------

using Interval = std::pair<double, double>;

std::vector<Interval> interval_union(std::vector<Interval> v) {
  std::sort(v.begin(), v.end());
  std::vector<Interval> out;
  for (const Interval& iv : v) {
    if (!out.empty() && iv.first <= out.back().second)
      out.back().second = std::max(out.back().second, iv.second);
    else
      out.push_back(iv);
  }
  return out;
}

double total_length(const std::vector<Interval>& v) {
  double s = 0;
  for (const Interval& iv : v) s += iv.second - iv.first;
  return s;
}

double intersection_length(const std::vector<Interval>& a, const std::vector<Interval>& b) {
  double s = 0;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    const double lo = std::max(a[i].first, b[j].first);
    const double hi = std::min(a[i].second, b[j].second);
    if (hi > lo) s += hi - lo;
    if (a[i].second < b[j].second)
      ++i;
    else
      ++j;
  }
  return s;
}

// spans recorded on one track of one rank, as intervals
std::vector<Interval> spans_on(const std::vector<Event>& events, int track) {
  std::vector<Interval> out;
  for (const Event& e : events)
    if (!e.instant && e.track == track) out.emplace_back(e.ts_us, e.ts_us + e.dur_us);
  return out;
}

std::vector<Interval> spans_named(const std::vector<Event>& events, int track, const char* name) {
  std::vector<Interval> out;
  for (const Event& e : events)
    if (!e.instant && e.track == track && std::strcmp(e.name, name) == 0)
      out.emplace_back(e.ts_us, e.ts_us + e.dur_us);
  return out;
}

long count_instants(const std::vector<Event>& events, const char* name) {
  long n = 0;
  for (const Event& e : events)
    if (e.instant && std::strcmp(e.name, name) == 0) ++n;
  return n;
}

// spans on one track must be disjoint or properly nested (stack check);
// shared endpoints are allowed
::testing::AssertionResult properly_nested(std::vector<Interval> spans) {
  constexpr double eps = 1e-6;
  // sort by begin ascending, longer span first on ties so parents precede
  std::sort(spans.begin(), spans.end(), [](const Interval& a, const Interval& b) {
    if (a.first != b.first) return a.first < b.first;
    return a.second > b.second;
  });
  std::vector<double> stack; // open span end times
  for (const Interval& iv : spans) {
    while (!stack.empty() && stack.back() <= iv.first + eps) stack.pop_back();
    if (!stack.empty() && iv.second > stack.back() + eps)
      return ::testing::AssertionFailure()
             << "span [" << iv.first << ", " << iv.second << ") partially overlaps a span ending at "
             << stack.back();
    stack.push_back(iv.second);
  }
  return ::testing::AssertionSuccess();
}

// --- schema: the recorded streams are typed and well-formed ------------------

TEST(TraceSchema, TwoRankOverlapRunIsWellFormed) {
  const TracedRun t = run_traced(2, small_config(CommPolicy::Overlap));
  ASSERT_TRUE(t.report.enabled);
  ASSERT_EQ(t.report.per_rank.size(), 2u);
  ASSERT_GT(t.report.total_events(), 0u);

  const std::set<int> tracks = {0, 1, 2, trace::kTrackHost, trace::kTrackComm, trace::kTrackSolver};
  long collectives = 0;
  for (const auto& rank_events : t.report.per_rank) {
    ASSERT_FALSE(rank_events.empty());
    for (const Event& e : rank_events) {
      EXPECT_NE(e.name[0], '\0');
      EXPECT_NE(trace::cat_name(e.cat)[0], '\0');
      EXPECT_TRUE(tracks.count(e.track)) << e.name << " on unknown track " << e.track;
      EXPECT_GE(e.ts_us, 0.0) << e.name;
      EXPECT_GE(e.dur_us, 0.0) << e.name;
      if (e.instant) { EXPECT_EQ(e.dur_us, 0.0) << e.name; }
      if (e.cat == trace::Cat::Collective) ++collectives;
    }
  }
  EXPECT_GT(collectives, 0) << "modeled solve must record allreduce rendezvous";

  // the aggregated metrics see the same stream
  ASSERT_TRUE(t.result.traced);
  const trace::Metrics& m = t.result.metrics;
  EXPECT_EQ(m.events, static_cast<long>(t.report.total_events()));
  EXPECT_GT(m.messages, 0);
  EXPECT_GT(m.halo_bytes, 0);
  EXPECT_GT(m.comm_us, 0.0);
  EXPECT_GT(m.kernel_us, 0.0);
  EXPECT_TRUE(m.kernels.count("dslash_interior"));
  EXPECT_TRUE(m.kernels.count("dslash_boundary"));
  EXPECT_TRUE(m.kernels.count("blas"));
}

TEST(TraceSchema, DisabledTracingRecordsNothing) {
  sim::ClusterSpec spec = sim::ClusterSpec::jlab_9g(2);
  sim::VirtualCluster cluster(spec);
  const ModeledSolverResult r = parallel::run_modeled_solver(cluster, small_config(CommPolicy::Overlap));
  ASSERT_TRUE(r.fits);
  EXPECT_FALSE(r.traced);
  EXPECT_FALSE(cluster.trace().enabled);
  EXPECT_EQ(cluster.trace().total_events(), 0u);
}

// --- golden digests: the event pipeline's shape is pinned --------------------
//
// The digest hashes (name, cat, kind, track, bytes, peer, tag, seq) per
// event in order -- not timestamps -- so recalibrating the time model does
// not move it, but any reordering of the launch/copy/send pipeline does.
// If an intentional pipeline change lands, rerun and update the constants.

constexpr std::uint64_t kGoldenOverlap[2] = {0x7d42bf3dc6af0497ull, 0x22ebdb178b71f835ull};
constexpr std::uint64_t kGoldenNoOverlap[2] = {0xca70aa88b3e50087ull, 0xdb8a4fe5200d3a0dull};

TEST(TraceGolden, OverlapEventSequenceDigestsArePinned) {
  const TracedRun t = run_traced(2, small_config(CommPolicy::Overlap));
  ASSERT_EQ(t.report.per_rank.size(), 2u);
  for (int r = 0; r < 2; ++r) {
    const std::uint64_t d = trace::sequence_digest(t.report.per_rank[r]);
    EXPECT_EQ(d, kGoldenOverlap[r])
        << "rank " << r << " digest 0x" << std::hex << d << " (update the golden if intended)";
  }
}

TEST(TraceGolden, NoOverlapEventSequenceDigestsArePinned) {
  const TracedRun t = run_traced(2, small_config(CommPolicy::NoOverlap));
  ASSERT_EQ(t.report.per_rank.size(), 2u);
  for (int r = 0; r < 2; ++r) {
    const std::uint64_t d = trace::sequence_digest(t.report.per_rank[r]);
    EXPECT_EQ(d, kGoldenNoOverlap[r])
        << "rank " << r << " digest 0x" << std::hex << d << " (update the golden if intended)";
  }
}

TEST(TraceGolden, PoliciesProduceDistinctPipelines) {
  // the two comm policies must not hash to the same stream: a regression
  // that silently collapses Overlap into NoOverlap fails here
  const TracedRun a = run_traced(2, small_config(CommPolicy::Overlap));
  const TracedRun b = run_traced(2, small_config(CommPolicy::NoOverlap));
  EXPECT_NE(trace::sequence_digest(a.report.per_rank[0]),
            trace::sequence_digest(b.report.per_rank[0]));
}

TEST(TraceGolden, DigestAndTimingDeterministicAcrossRuns) {
  const TracedRun a = run_traced(2, small_config(CommPolicy::Overlap));
  const TracedRun b = run_traced(2, small_config(CommPolicy::Overlap));
  EXPECT_EQ(a.makespan_us, b.makespan_us);
  ASSERT_EQ(a.report.per_rank.size(), b.report.per_rank.size());
  for (std::size_t r = 0; r < a.report.per_rank.size(); ++r)
    EXPECT_EQ(trace::sequence_digest(a.report.per_rank[r]),
              trace::sequence_digest(b.report.per_rank[r]));
}

// --- digest unit semantics ----------------------------------------------------

Event make_span(const char* name, trace::Cat cat, int track, double b, double e,
                std::int64_t bytes = 0, int peer = -1, int tag = -1, std::int64_t seq = -1) {
  Event ev;
  ev.name = name;
  ev.cat = cat;
  ev.instant = false;
  ev.track = track;
  ev.ts_us = b;
  ev.dur_us = e - b;
  ev.bytes = bytes;
  ev.peer = peer;
  ev.tag = tag;
  ev.seq = seq;
  return ev;
}

Event make_instant(const char* name, trace::Cat cat, int track, double ts,
                   std::int64_t bytes = 0, int peer = -1, int tag = -1, std::int64_t seq = -1) {
  Event ev = make_span(name, cat, track, ts, ts, bytes, peer, tag, seq);
  ev.instant = true;
  return ev;
}

TEST(TraceDigest, TimestampsDoNotAffectTheDigest) {
  const std::vector<Event> a = {make_span("dslash", trace::Cat::Kernel, 0, 10, 20, 4096),
                                make_instant("isend", trace::Cat::Comm, -1, 15, 512, 1, 7, 3)};
  std::vector<Event> b = a;
  b[0].ts_us = 1000;
  b[0].dur_us = 99;
  b[1].ts_us = 2000;
  EXPECT_EQ(trace::sequence_digest(a), trace::sequence_digest(b));
}

TEST(TraceDigest, StructuralFieldsDoAffectTheDigest) {
  const std::vector<Event> a = {make_span("dslash", trace::Cat::Kernel, 0, 10, 20, 4096),
                                make_instant("isend", trace::Cat::Comm, -1, 15, 512, 1, 7, 3)};
  std::vector<Event> reordered = {a[1], a[0]};
  EXPECT_NE(trace::sequence_digest(a), trace::sequence_digest(reordered));

  std::vector<Event> renamed = a;
  renamed[0].name = "blas";
  EXPECT_NE(trace::sequence_digest(a), trace::sequence_digest(renamed));

  std::vector<Event> resized = a;
  resized[1].bytes = 1024;
  EXPECT_NE(trace::sequence_digest(a), trace::sequence_digest(resized));

  std::vector<Event> retracked = a;
  retracked[0].track = 1;
  EXPECT_NE(trace::sequence_digest(a), trace::sequence_digest(retracked));
}

// --- metrics unit semantics ---------------------------------------------------

TEST(TraceMetrics, SyntheticOverlapGeometry) {
  trace::TraceReport rep;
  rep.enabled = true;
  rep.per_rank.resize(1);
  auto& ev = rep.per_rank[0];
  ev.push_back(make_span("halo_comm", trace::Cat::Comm, trace::kTrackComm, 0, 10));
  ev.push_back(make_span("dslash", trace::Cat::Kernel, 0, 5, 15, 1 << 20));
  ev.push_back(make_instant("isend", trace::Cat::Comm, trace::kTrackHost, 1, 4096, 1, 0, 0));
  ev.push_back(make_instant("retry", trace::Cat::Fault, trace::kTrackHost, 2, 4096, 1, 0, 0));

  const trace::Metrics m = trace::compute_metrics(rep);
  EXPECT_EQ(m.events, 4);
  EXPECT_EQ(m.messages, 1);
  EXPECT_EQ(m.halo_bytes, 4096);
  EXPECT_EQ(m.retries, 1);
  EXPECT_DOUBLE_EQ(m.comm_us, 10.0);
  EXPECT_DOUBLE_EQ(m.overlapped_us, 5.0);
  EXPECT_DOUBLE_EQ(m.overlap_efficiency, 0.5);
  EXPECT_DOUBLE_EQ(m.kernel_us, 10.0);
  ASSERT_TRUE(m.kernels.count("dslash"));
  EXPECT_EQ(m.kernels.at("dslash").count, 1);
  EXPECT_DOUBLE_EQ(m.kernels.at("dslash").total_us, 10.0);
}

TEST(TraceMetrics, OverlappingWindowsAreUnionedBeforeIntersection) {
  trace::TraceReport rep;
  rep.enabled = true;
  rep.per_rank.resize(1);
  auto& ev = rep.per_rank[0];
  // two overlapping comm windows [0,10) + [5,20) union to 20us, fully
  // covered by one long kernel -> efficiency exactly 1, not 25/20
  ev.push_back(make_span("halo_comm", trace::Cat::Comm, trace::kTrackComm, 0, 10));
  ev.push_back(make_span("halo_comm", trace::Cat::Comm, trace::kTrackComm, 5, 20));
  ev.push_back(make_span("dslash", trace::Cat::Kernel, 1, 0, 30));
  const trace::Metrics m = trace::compute_metrics(rep);
  EXPECT_DOUBLE_EQ(m.comm_us, 20.0);
  EXPECT_DOUBLE_EQ(m.overlapped_us, 20.0);
  EXPECT_DOUBLE_EQ(m.overlap_efficiency, 1.0);
}

// --- metrics degenerate inputs ------------------------------------------------

TEST(TraceMetrics, EmptyKernelStatMeanIsZeroNotNan) {
  const trace::KernelStat empty{};
  EXPECT_EQ(empty.count, 0);
  EXPECT_DOUBLE_EQ(empty.mean_us(), 0.0);
}

TEST(TraceMetrics, EmptyReportYieldsAllZeroMetrics) {
  trace::TraceReport rep;
  rep.enabled = true;
  rep.per_rank.resize(2); // ranks that recorded nothing
  const trace::Metrics m = trace::compute_metrics(rep);
  EXPECT_EQ(m.events, 0);
  EXPECT_EQ(m.messages, 0);
  EXPECT_DOUBLE_EQ(m.comm_us, 0.0);
  EXPECT_DOUBLE_EQ(m.overlap_efficiency, 0.0) << "0/0 must not produce NaN";
  EXPECT_TRUE(m.kernels.empty());
}

TEST(TraceMetrics, ZeroLengthCommWindowsDoNotPoisonEfficiency) {
  trace::TraceReport rep;
  rep.enabled = true;
  rep.per_rank.resize(1);
  // a degenerate zero-duration comm window alongside a kernel: the union
  // must skip it and the efficiency ratio must stay finite
  rep.per_rank[0].push_back(
      make_span("halo_comm", trace::Cat::Comm, trace::kTrackComm, 5, 5));
  rep.per_rank[0].push_back(make_span("dslash", trace::Cat::Kernel, 0, 0, 10));
  const trace::Metrics m = trace::compute_metrics(rep);
  EXPECT_DOUBLE_EQ(m.comm_us, 0.0);
  EXPECT_DOUBLE_EQ(m.overlapped_us, 0.0);
  EXPECT_DOUBLE_EQ(m.overlap_efficiency, 0.0);
  EXPECT_DOUBLE_EQ(m.kernel_us, 10.0);
}

TEST(TraceMetrics, ZeroIterationSolveStaysFinite) {
  ModeledSolverConfig cfg = small_config(CommPolicy::Overlap);
  cfg.iterations = 0;
  const TracedRun t = run_traced(2, cfg);
  ASSERT_TRUE(t.result.fits);
  ASSERT_TRUE(t.result.traced);
  const trace::Metrics& m = t.result.metrics;
  EXPECT_TRUE(std::isfinite(m.overlap_efficiency));
  EXPECT_TRUE(std::isfinite(t.result.effective_gflops));
  EXPECT_GE(m.comm_us, 0.0);
  for (const auto& [name, stat] : m.kernels)
    EXPECT_TRUE(std::isfinite(stat.mean_us())) << name;
}

// --- properties across seeds and policies ------------------------------------

TEST(TraceProperties, SpansNestWithinEveryTrack) {
  // spans on one timeline must serialize or nest -- partial overlap means
  // two host-side phases claim the same simulated instant.  The comm track
  // is exempt: msg_flight spans of concurrent messages legitimately overlap.
  for (const CommPolicy policy : {CommPolicy::Overlap, CommPolicy::NoOverlap}) {
    for (const int ranks : {2, 4}) {
      const TracedRun t = run_traced(ranks, small_config(policy));
      for (std::size_t r = 0; r < t.report.per_rank.size(); ++r) {
        for (const int track : {0, 1, 2, trace::kTrackHost, trace::kTrackSolver}) {
          EXPECT_TRUE(properly_nested(spans_on(t.report.per_rank[r], track)))
              << "rank " << r << " track " << track << " policy "
              << (policy == CommPolicy::Overlap ? "Overlap" : "NoOverlap");
        }
      }
    }
  }
}

TEST(TraceProperties, DeliveredSendsMatchReceiverWaits) {
  // every delivered transport attempt (isend minus drop tombstones) must be
  // consumed by exactly one receiver-side mpi_wait carrying the same
  // modeled byte count, per (src, dst, tag) channel -- under fault
  // injection and retransmission too
  for (const std::uint64_t seed : {1ull, 7ull, 42ull}) {
    for (const CommPolicy policy : {CommPolicy::Overlap, CommPolicy::NoOverlap}) {
      sim::FaultConfig faults;
      faults.seed = seed;
      faults.drop_rate = 2e-3;
      faults.corrupt_rate = 2e-3;
      ModeledSolverConfig cfg = small_config(policy);
      cfg.retry.checksums = true;
      cfg.retry.max_retries = 6;
      const TracedRun t = run_traced(4, cfg, faults);

      using Channel = std::tuple<int, int, int>; // src, dst, tag
      std::map<Channel, std::pair<long, long>> sent, waited; // count, bytes
      for (std::size_t r = 0; r < t.report.per_rank.size(); ++r) {
        for (const Event& e : t.report.per_rank[r]) {
          if (e.instant && std::strcmp(e.name, "isend") == 0) {
            auto& s = sent[{static_cast<int>(r), e.peer, e.tag}];
            s.first += 1;
            s.second += e.bytes;
          } else if (e.instant && std::strcmp(e.name, "drop") == 0) {
            auto& s = sent[{static_cast<int>(r), e.peer, e.tag}];
            s.first -= 1;
            s.second -= e.bytes;
          } else if (!e.instant && std::strcmp(e.name, "mpi_wait") == 0) {
            auto& w = waited[{e.peer, static_cast<int>(r), e.tag}];
            w.first += 1;
            w.second += e.bytes;
          }
        }
      }
      EXPECT_EQ(sent, waited) << "seed " << seed;
      EXPECT_GT(t.result.faults.drops + t.result.faults.corruptions, 0)
          << "fault injection must actually fire for this property to bite";
    }
  }
}

TEST(TraceProperties, OverlapRunsInteriorKernelInsideCommWindow) {
  // the point of the paper's overlapped pipeline: on every cut rank the
  // interior kernel must execute inside the halo communication window
  const TracedRun t = run_traced(4, small_config(CommPolicy::Overlap));
  ASSERT_TRUE(t.result.traced);
  EXPECT_GT(t.result.metrics.overlap_efficiency, 0.0);
  for (std::size_t r = 0; r < t.report.per_rank.size(); ++r) {
    const auto& ev = t.report.per_rank[r];
    const auto comm = interval_union(spans_named(ev, trace::kTrackComm, "halo_comm"));
    const auto interior = interval_union(spans_named(ev, 0, "dslash_interior"));
    ASSERT_FALSE(comm.empty()) << "rank " << r;
    ASSERT_FALSE(interior.empty()) << "rank " << r;
    EXPECT_GT(intersection_length(comm, interior), 0.0)
        << "rank " << r << ": interior compute must overlap communication";
  }
}

TEST(TraceProperties, NoOverlapRunsSerializeCommAndKernels) {
  const TracedRun t = run_traced(4, small_config(CommPolicy::NoOverlap));
  ASSERT_TRUE(t.result.traced);
  EXPECT_GT(t.result.metrics.comm_us, 0.0);
  EXPECT_DOUBLE_EQ(t.result.metrics.overlapped_us, 0.0);
  EXPECT_DOUBLE_EQ(t.result.metrics.overlap_efficiency, 0.0);
}

TEST(TraceProperties, FaultInstantsMatchFaultReportCounters) {
  // the trace is an audit log of the fault machinery: injected and
  // recovered events in the stream must match the FaultCounters totals
  for (const std::uint64_t seed : {3ull, 11ull}) {
    sim::FaultConfig faults;
    faults.seed = seed;
    faults.drop_rate = 1e-3;
    faults.corrupt_rate = 1e-3;
    faults.stall_rate = 1e-4;
    ModeledSolverConfig cfg = small_config(CommPolicy::Overlap);
    cfg.iterations = 60;
    cfg.retry.checksums = true;
    cfg.retry.max_retries = 6;
    const TracedRun t = run_traced(4, cfg, faults);

    long drops = 0, corrupts = 0, stalls = 0, retries = 0, checksum_errors = 0;
    for (const auto& ev : t.report.per_rank) {
      drops += count_instants(ev, "drop");
      corrupts += count_instants(ev, "corrupt");
      stalls += count_instants(ev, "stall");
      retries += count_instants(ev, "retry");
      checksum_errors += count_instants(ev, "checksum_error");
    }
    EXPECT_EQ(drops, t.result.faults.drops) << "seed " << seed;
    EXPECT_EQ(corrupts, t.result.faults.corruptions) << "seed " << seed;
    EXPECT_EQ(stalls, t.result.faults.stalls) << "seed " << seed;
    EXPECT_EQ(retries, t.result.faults.retries) << "seed " << seed;
    EXPECT_EQ(checksum_errors, t.result.faults.checksum_errors) << "seed " << seed;
    EXPECT_EQ(t.result.metrics.retries, t.result.faults.retries) << "seed " << seed;
    EXPECT_GT(retries, 0) << "seed " << seed << ": retries must actually fire";
  }
}

TEST(TraceProperties, TracingIsObservationalOnly) {
  // identical simulated makespan with recording on and off -- the
  // bit-identity contract of the tracer (the Real-mode version lives in
  // test_exec.cpp).  Edge recording (dep_rank/dep_ts/edge_us, consumed by
  // the critical-path analyzer) runs inside the traced branch, so this
  // equality also proves the happens-before bookkeeping costs zero
  // simulated time.
  for (const CommPolicy policy : {CommPolicy::Overlap, CommPolicy::NoOverlap}) {
    const ModeledSolverConfig cfg = small_config(policy);
    sim::ClusterSpec spec = sim::ClusterSpec::jlab_9g(4);
    sim::VirtualCluster off(spec);
    const ModeledSolverResult r_off = parallel::run_modeled_solver(off, cfg);
    spec.trace.enabled = true;
    sim::VirtualCluster on(spec);
    const ModeledSolverResult r_on = parallel::run_modeled_solver(on, cfg);
    EXPECT_EQ(r_off.time_us, r_on.time_us);
    EXPECT_EQ(off.makespan_us(), on.makespan_us());
    EXPECT_FALSE(r_off.traced);
    EXPECT_TRUE(r_on.traced);
  }
}

TEST(TraceProperties, DependencyEdgesAreRecordedAndDeterministic) {
  // every completed receive names its sender (and the recorded send time
  // matches that sender's isend instant); every allreduce names a valid
  // gate rank; kernels and copies anchor to a non-negative host issue time.
  // Two identical runs must agree on every edge bitwise -- the analyzer's
  // exactness rests on this.
  const int ranks = 4;
  const TracedRun a = run_traced(ranks, small_config(CommPolicy::Overlap));
  const TracedRun b = run_traced(ranks, small_config(CommPolicy::Overlap));
  long waits = 0, colls = 0, device_spans = 0;
  for (int r = 0; r < ranks; ++r) {
    const auto& ev = a.report.per_rank[r];
    const auto& ev_b = b.report.per_rank[r];
    ASSERT_EQ(ev.size(), ev_b.size()) << "rank " << r;
    for (std::size_t i = 0; i < ev.size(); ++i) {
      const Event& e = ev[i];
      EXPECT_EQ(e.dep_rank, ev_b[i].dep_rank);
      EXPECT_EQ(e.dep_ts_us, ev_b[i].dep_ts_us);
      EXPECT_EQ(e.edge_us, ev_b[i].edge_us);
      EXPECT_LT(e.dep_rank, ranks);
      if (!e.instant && std::strcmp(e.name, "mpi_wait") == 0) {
        ++waits;
        EXPECT_EQ(e.dep_rank, e.peer) << "wait edge must name the sender";
        EXPECT_GE(e.dep_ts_us, 0.0);
        EXPECT_GE(e.edge_us, 0.0);
      } else if (!e.instant && std::strcmp(e.name, "allreduce") == 0) {
        ++colls;
        EXPECT_GE(e.dep_rank, 0);
      } else if (!e.instant && (e.cat == trace::Cat::Kernel || e.cat == trace::Cat::Copy)) {
        ++device_spans;
        EXPECT_GE(e.dep_ts_us, 0.0) << e.name << ": issue anchor missing";
        EXPECT_LE(e.dep_ts_us, e.ts_us) << e.name << ": issued after it started";
      }
    }
  }
  EXPECT_GT(waits, 0);
  EXPECT_GT(colls, 0);
  EXPECT_GT(device_spans, 0);
}

// --- exporter ----------------------------------------------------------------

TEST(TraceExport, ChromeJsonIsOneEventPerLineAndComplete) {
  const TracedRun t = run_traced(2, small_config(CommPolicy::Overlap));
  const std::string json = trace::chrome_trace_json(t.report);
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"args\": {\"name\": \"comm\"}"), std::string::npos);
  EXPECT_NE(json.find("\"args\": {\"name\": \"solver\"}"), std::string::npos);
  EXPECT_NE(json.find("\"args\": {\"name\": \"stream 0\"}"), std::string::npos);

  // one JSON object per line: the number of event lines matches the report
  std::istringstream is(json);
  std::string line;
  std::size_t spans = 0, instants = 0;
  while (std::getline(is, line)) {
    if (line.find("\"ph\": \"X\"") != std::string::npos) ++spans;
    if (line.find("\"ph\": \"i\"") != std::string::npos) ++instants;
  }
  EXPECT_EQ(spans + instants, t.report.total_events());
}

TEST(TraceExport, UniqueTracePathsDiffer) {
  const std::string a = trace::unique_trace_path("trace_unique_test.json");
  const std::string b = trace::unique_trace_path("trace_unique_test.json");
  EXPECT_NE(a, b);
  EXPECT_EQ(a.rfind("trace_unique_test.json", 0), 0u);
  EXPECT_EQ(b.rfind("trace_unique_test.json", 0), 0u);
}

// --- acceptance: fig5-sized Overlap run through QUDA_SIM_TRACE ---------------

// minimal field extractors for the exporter's one-object-per-line format
double json_num(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\": ";
  const std::size_t pos = line.find(needle);
  EXPECT_NE(pos, std::string::npos) << key << " missing in: " << line;
  return std::strtod(line.c_str() + pos + needle.size(), nullptr);
}

std::string json_str(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\": \"";
  const std::size_t pos = line.find(needle);
  EXPECT_NE(pos, std::string::npos) << key << " missing in: " << line;
  const std::size_t begin = pos + needle.size();
  return line.substr(begin, line.find('"', begin) - begin);
}

TEST(TraceAcceptance, Fig5SizedOverlapExportRoundTripsOverlapEfficiency) {
  // fig5(b) mid-point: global 24^3 x 128 over 8 GPUs, overlapped comms,
  // exported exactly the way a user would capture it: QUDA_SIM_TRACE=<path>
  const std::string base = "trace_fig5_acceptance.json";
  // the export suffixes the path when earlier runs in this process already
  // exported; scrub every candidate so exactly the fresh file survives
  auto candidate = [&](int n) { return n == 0 ? base : base + "." + std::to_string(n); };
  for (int n = 0; n < 4096; ++n) std::remove(candidate(n).c_str());
  ASSERT_EQ(::setenv("QUDA_SIM_TRACE", base.c_str(), 1), 0);

  ModeledSolverConfig cfg;
  cfg.local = LatticeDims{24, 24, 24, 16};
  cfg.outer = Precision::Single;
  cfg.sloppy = Precision::Half;
  cfg.policy = CommPolicy::Overlap;
  cfg.iterations = 40;
  cfg.reliable_interval = 40;

  sim::ClusterSpec spec = sim::ClusterSpec::jlab_9g(8); // trace.enabled left false: env drives it
  sim::VirtualCluster cluster(spec);
  const ModeledSolverResult r = parallel::run_modeled_solver(cluster, cfg);
  ::unsetenv("QUDA_SIM_TRACE");
  ASSERT_TRUE(r.fits);
  ASSERT_TRUE(r.traced) << "QUDA_SIM_TRACE must enable tracing without spec changes";
  ASSERT_GT(r.metrics.overlap_efficiency, 0.0);

  std::string path;
  for (int n = 0; n < 4096 && path.empty(); ++n)
    if (std::ifstream(candidate(n)).good()) path = candidate(n);
  ASSERT_FALSE(path.empty()) << "no exported trace found";

  // re-derive the overlap efficiency from the file alone: per rank, union
  // of halo_comm windows on the comm track intersected with the union of
  // kernel spans on the stream tracks
  std::ifstream is(path);
  ASSERT_TRUE(is.good());
  std::map<int, std::vector<Interval>> comm, kernels;
  std::size_t event_lines = 0;
  std::string line;
  while (std::getline(is, line)) {
    if (line.find("\"ph\": \"X\"") != std::string::npos ||
        line.find("\"ph\": \"i\"") != std::string::npos)
      ++event_lines;
    if (line.find("\"ph\": \"X\"") == std::string::npos) continue;
    const int pid = static_cast<int>(json_num(line, "pid"));
    const int tid = static_cast<int>(json_num(line, "tid"));
    const double ts = json_num(line, "ts");
    const double dur = json_num(line, "dur");
    if (tid == 11 && json_str(line, "name") == "halo_comm")
      comm[pid].emplace_back(ts, ts + dur);
    else if (tid < 10 && json_str(line, "cat") == "kernel")
      kernels[pid].emplace_back(ts, ts + dur);
  }
  EXPECT_EQ(event_lines, cluster.trace().total_events());
  ASSERT_EQ(comm.size(), 8u) << "every rank must have halo comm windows";

  double comm_us = 0, overlapped_us = 0;
  for (auto& [pid, windows] : comm) {
    const auto cw = interval_union(std::move(windows));
    comm_us += total_length(cw);
    overlapped_us += intersection_length(cw, interval_union(kernels[pid]));
  }
  ASSERT_GT(comm_us, 0.0);
  const double file_efficiency = overlapped_us / comm_us;

  // the file-derived split must match the in-process metrics within 1%
  EXPECT_NEAR(comm_us, r.metrics.comm_us, 0.01 * r.metrics.comm_us);
  EXPECT_NEAR(overlapped_us, r.metrics.overlapped_us, 0.01 * r.metrics.overlapped_us);
  EXPECT_NEAR(file_efficiency, r.metrics.overlap_efficiency,
              0.01 * r.metrics.overlap_efficiency);
}

} // namespace
} // namespace quda
