// Cross-checks among solvers and remaining model corners: CGNR and BiCGstab
// agree on the solution; nonzero initial guesses work; boundary conditions
// matter; the clover xpay fusion; and the CPU-cluster baseline model.

#include "cpuref/cpu_cluster.h"
#include "dirac/clover_term.h"
#include "dirac/gauge_init.h"
#include "dirac/transfer.h"
#include "dirac/wilson_clover_op.h"
#include "solvers/bicgstab.h"
#include "solvers/cg.h"

#include <gtest/gtest.h>

namespace quda {
namespace {

struct Sys {
  Geometry g{LatticeDims{4, 4, 4, 8}};
  HostGaugeField u;
  HostCloverField t, tinv;
  GaugeFieldD gauge;
  CloverFieldD clover, clover_inv;
  OperatorParams params;

  explicit Sys(TimeBoundary bc = TimeBoundary::Antiperiodic) : u(g) {
    make_weak_field_gauge(u, 0.2, 50001);
    t = make_clover_term(u, 1.0);
    add_diag(t, 4.1);
    tinv = invert_clover(t);
    gauge = upload_gauge<PrecDouble>(u, Reconstruct::Twelve);
    clover = upload_clover<PrecDouble>(t);
    clover_inv = upload_clover<PrecDouble>(tinv);
    params.mass = 0.1;
    params.time_bc = bc;
  }
};

double field_rel_dist2(const SpinorFieldD& a, const SpinorFieldD& b) {
  double num = 0, den = 0;
  for (std::int64_t i = 0; i < a.sites(); ++i) {
    num += quda::norm2(a.load(i) - b.load(i));
    den += quda::norm2(b.load(i));
  }
  return num / den;
}

TEST(SolverCrossChecks, CgnrAndBicgstabAgreeOnTheSolution) {
  Sys s;
  WilsonCloverOp<PrecDouble> op(s.g, s.gauge, s.clover, s.clover_inv, s.params);
  HostSpinorField hb(s.g);
  make_random_spinor(hb, 50002);
  const SpinorFieldD b = upload_spinor<PrecDouble>(hb, Parity::Even);

  SpinorFieldD x_bi(s.g), x_cg(s.g);
  SolverParams sp;
  sp.tol = 1e-10;
  sp.max_iter = 4000;
  const SolverStats s1 = solve_bicgstab(op, x_bi, b, sp);
  const SolverStats s2 = solve_cgnr(op, x_cg, b, sp);
  ASSERT_TRUE(s1.converged) << s1.summary();
  ASSERT_TRUE(s2.converged) << s2.summary();
  EXPECT_LT(field_rel_dist2(x_bi, x_cg), 1e-16);
  // CG on the normal equations squares the condition number: more iterations
  EXPECT_GT(s2.iterations, s1.iterations);
}

TEST(SolverCrossChecks, NonzeroInitialGuessConvergesToSameSolution) {
  Sys s;
  WilsonCloverOp<PrecDouble> op(s.g, s.gauge, s.clover, s.clover_inv, s.params);
  HostSpinorField hb(s.g), hguess(s.g);
  make_random_spinor(hb, 50003);
  make_random_spinor(hguess, 50004);
  const SpinorFieldD b = upload_spinor<PrecDouble>(hb, Parity::Even);

  SolverParams sp;
  sp.tol = 1e-11;
  sp.max_iter = 4000;

  SpinorFieldD x_zero(s.g);
  SpinorFieldD x_guess = upload_spinor<PrecDouble>(hguess, Parity::Even);
  const SolverStats s1 = solve_bicgstab(op, x_zero, b, sp);
  const SolverStats s2 = solve_bicgstab(op, x_guess, b, sp);
  ASSERT_TRUE(s1.converged);
  ASSERT_TRUE(s2.converged);
  EXPECT_LT(field_rel_dist2(x_guess, x_zero), 1e-18);
}

TEST(SolverCrossChecks, BoundaryConditionChangesTheSolution) {
  // anti-periodic vs periodic time BC are different operators; a solver that
  // ignored the phase would pass the residual check of the wrong system
  Sys s_apbc(TimeBoundary::Antiperiodic);
  Sys s_pbc(TimeBoundary::Periodic);
  WilsonCloverOp<PrecDouble> op_a(s_apbc.g, s_apbc.gauge, s_apbc.clover, s_apbc.clover_inv,
                                  s_apbc.params);
  WilsonCloverOp<PrecDouble> op_p(s_pbc.g, s_pbc.gauge, s_pbc.clover, s_pbc.clover_inv,
                                  s_pbc.params);

  HostSpinorField hb(s_apbc.g);
  make_random_spinor(hb, 50005);
  const SpinorFieldD b = upload_spinor<PrecDouble>(hb, Parity::Even);
  SpinorFieldD xa(s_apbc.g), xp(s_pbc.g);
  SolverParams sp;
  sp.tol = 1e-10;
  sp.max_iter = 4000;
  ASSERT_TRUE(solve_bicgstab(op_a, xa, b, sp).converged);
  ASSERT_TRUE(solve_bicgstab(op_p, xp, b, sp).converged);
  EXPECT_GT(field_rel_dist2(xa, xp), 1e-6);
}

TEST(SolverCrossChecks, CloverXpayFusionMatchesComposition) {
  Sys s;
  HostSpinorField hx(s.g), hy(s.g);
  make_random_spinor(hx, 50006);
  make_random_spinor(hy, 50007);
  const SpinorFieldD x = upload_spinor<PrecDouble>(hx, Parity::Even);
  SpinorFieldD fused = upload_spinor<PrecDouble>(hy, Parity::Even);
  SpinorFieldD plain(s.g);

  const double bcoef = -0.25;
  // fused: out = C x + b out
  apply_clover_xpay<PrecDouble>(fused, s.clover, Parity::Even, x, s.g, 0, s.g.half_volume(),
                                bcoef);
  // composed: C x, then add b*y manually
  apply_clover_xpay<PrecDouble>(plain, s.clover, Parity::Even, x, s.g, 0, s.g.half_volume(), 0);
  const SpinorFieldD y = upload_spinor<PrecDouble>(hy, Parity::Even);
  blas::axpy(bcoef, y, plain);
  for (std::int64_t i = 0; i < x.sites(); ++i)
    ASSERT_LT(quda::norm2(fused.load(i) - plain.load(i)), 1e-24);
}

TEST(CpuCluster, BaselineModelMatchesPaperNumbers) {
  // 16 nodes x 8 Nehalem cores at ~2 Gflops/core SSE = the paper's 255 Gflops
  EXPECT_NEAR(cpuref::cluster_gflops(16, Precision::Single), 256.0, 8.0);
  EXPECT_EQ(cpuref::sse_core_gflops(Precision::Half), 0.0) << "no 16-bit SSE path";
  EXPECT_LT(cpuref::cluster_gflops(16, Precision::Double),
            cpuref::cluster_gflops(16, Precision::Single));
  // iteration time scales with volume and inversely with nodes
  const double t16 = cpuref::iteration_time_us({32, 32, 32, 256}, 16, Precision::Single);
  const double t32 = cpuref::iteration_time_us({32, 32, 32, 256}, 32, Precision::Single);
  EXPECT_NEAR(t16 / t32, 2.0, 1e-9);
}

TEST(SolverCrossChecks, MaxIterZeroReturnsNotConverged) {
  Sys s;
  WilsonCloverOp<PrecDouble> op(s.g, s.gauge, s.clover, s.clover_inv, s.params);
  HostSpinorField hb(s.g);
  make_random_spinor(hb, 50008);
  const SpinorFieldD b = upload_spinor<PrecDouble>(hb, Parity::Even);
  SpinorFieldD x(s.g);
  SolverParams sp;
  sp.tol = 1e-10;
  sp.max_iter = 0;
  const SolverStats stats = solve_bicgstab(op, x, b, sp);
  EXPECT_FALSE(stats.converged);
  EXPECT_EQ(stats.iterations, 0);
}

} // namespace
} // namespace quda
