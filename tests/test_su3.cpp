// Unit tests: complex arithmetic, SU(3) algebra, 2-row compression, and
// re-unitarization.

#include "su3/su3.h"

#include <gtest/gtest.h>

#include <random>

namespace quda {
namespace {

SU3<double> random_su3(std::mt19937_64& rng) {
  std::normal_distribution<double> d(0.0, 1.0);
  SU3<double> m;
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c) m.e[r][c] = complexd(d(rng), d(rng));
  return reunitarize(m);
}

TEST(Complex, Arithmetic) {
  const complexd a{1.0, 2.0}, b{-3.0, 0.5};
  EXPECT_EQ((a + b).re, -2.0);
  EXPECT_EQ((a + b).im, 2.5);
  const complexd p = a * b;
  EXPECT_DOUBLE_EQ(p.re, 1.0 * -3.0 - 2.0 * 0.5);
  EXPECT_DOUBLE_EQ(p.im, 1.0 * 0.5 + 2.0 * -3.0);
  const complexd q = (a * b) / b;
  EXPECT_NEAR(q.re, a.re, 1e-14);
  EXPECT_NEAR(q.im, a.im, 1e-14);
  EXPECT_DOUBLE_EQ(norm2(a), 5.0);
  EXPECT_EQ(conj(a).im, -2.0);
  EXPECT_EQ(times_i(a).re, -2.0);
  EXPECT_EQ(times_i(a).im, 1.0);
  EXPECT_EQ(times_minus_i(times_i(a)), a);
}

TEST(Complex, FusedOps) {
  const complexd a{0.3, -0.7}, b{1.1, 0.2};
  complexd acc{2.0, 3.0};
  cmad(acc, a, b);
  const complexd expect = complexd{2.0, 3.0} + a * b;
  EXPECT_NEAR(acc.re, expect.re, 1e-15);
  EXPECT_NEAR(acc.im, expect.im, 1e-15);

  complexd acc2{};
  conj_cmad(acc2, a, b);
  const complexd expect2 = conj(a) * b;
  EXPECT_NEAR(acc2.re, expect2.re, 1e-15);
  EXPECT_NEAR(acc2.im, expect2.im, 1e-15);
  EXPECT_NEAR(conj_mul(a, b).re, expect2.re, 1e-15);
}

TEST(SU3, ReunitarizeProducesSpecialUnitary) {
  std::mt19937_64 rng(7);
  for (int i = 0; i < 50; ++i) {
    const SU3<double> u = random_su3(rng);
    // U U^dag = 1
    const SU3<double> id = u * adjoint(u);
    EXPECT_LT(frobenius_dist2(id, SU3<double>::identity()), 1e-24);
    // det U = 1
    const complexd d = det(u);
    EXPECT_NEAR(d.re, 1.0, 1e-12);
    EXPECT_NEAR(d.im, 0.0, 1e-12);
  }
}

TEST(SU3, CompressionRoundTrip) {
  std::mt19937_64 rng(13);
  for (int i = 0; i < 50; ++i) {
    const SU3<double> u = random_su3(rng);
    const SU3<double> v = decompress(compress(u));
    EXPECT_LT(frobenius_dist2(u, v), 1e-24) << "third-row reconstruction failed";
  }
}

TEST(SU3, AdjMulMatchesExplicitAdjoint) {
  std::mt19937_64 rng(21);
  std::normal_distribution<double> d(0.0, 1.0);
  const SU3<double> u = random_su3(rng);
  ColorVector<double> v;
  for (std::size_t c = 0; c < 3; ++c) v.c[c] = complexd(d(rng), d(rng));
  const ColorVector<double> a = adj_mul(u, v);
  const ColorVector<double> b = adjoint(u) * v;
  for (std::size_t c = 0; c < 3; ++c) {
    EXPECT_NEAR(a.c[c].re, b.c[c].re, 1e-13);
    EXPECT_NEAR(a.c[c].im, b.c[c].im, 1e-13);
  }
}

TEST(SU3, MatVecLinearity) {
  std::mt19937_64 rng(5);
  std::normal_distribution<double> d(0.0, 1.0);
  const SU3<double> u = random_su3(rng);
  ColorVector<double> v, w;
  for (std::size_t c = 0; c < 3; ++c) {
    v.c[c] = complexd(d(rng), d(rng));
    w.c[c] = complexd(d(rng), d(rng));
  }
  const ColorVector<double> lhs = u * (v + w);
  ColorVector<double> rhs = u * v;
  rhs += u * w;
  for (std::size_t c = 0; c < 3; ++c) EXPECT_NEAR(norm2(lhs.c[c] - rhs.c[c]), 0.0, 1e-24);
}

TEST(SU3, UnitaryPreservesNorm) {
  std::mt19937_64 rng(99);
  std::normal_distribution<double> d(0.0, 1.0);
  const SU3<double> u = random_su3(rng);
  ColorVector<double> v;
  for (std::size_t c = 0; c < 3; ++c) v.c[c] = complexd(d(rng), d(rng));
  EXPECT_NEAR(norm2(u * v), norm2(v), 1e-12 * norm2(v));
}

TEST(SU3, WeakFieldIsNearIdentity) {
  std::mt19937_64 rng(3);
  std::normal_distribution<double> d(0.0, 0.05);
  SU3<double> m = SU3<double>::identity();
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c) m.e[r][c] += complexd(d(rng), d(rng));
  const SU3<double> u = reunitarize(m);
  EXPECT_LT(frobenius_dist2(u, SU3<double>::identity()), 0.3);
  EXPECT_NEAR(det(u).re, 1.0, 1e-12);
}

} // namespace
} // namespace quda
