// Unit tests: complex arithmetic, SU(3) algebra, 2-row compression, and
// re-unitarization.

#include "su3/su3.h"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace quda {
namespace {

SU3<double> random_su3(std::mt19937_64& rng) {
  std::normal_distribution<double> d(0.0, 1.0);
  SU3<double> m;
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c) m.e[r][c] = complexd(d(rng), d(rng));
  return reunitarize(m);
}

TEST(Complex, Arithmetic) {
  const complexd a{1.0, 2.0}, b{-3.0, 0.5};
  EXPECT_EQ((a + b).re, -2.0);
  EXPECT_EQ((a + b).im, 2.5);
  const complexd p = a * b;
  EXPECT_DOUBLE_EQ(p.re, 1.0 * -3.0 - 2.0 * 0.5);
  EXPECT_DOUBLE_EQ(p.im, 1.0 * 0.5 + 2.0 * -3.0);
  const complexd q = (a * b) / b;
  EXPECT_NEAR(q.re, a.re, 1e-14);
  EXPECT_NEAR(q.im, a.im, 1e-14);
  EXPECT_DOUBLE_EQ(norm2(a), 5.0);
  EXPECT_EQ(conj(a).im, -2.0);
  EXPECT_EQ(times_i(a).re, -2.0);
  EXPECT_EQ(times_i(a).im, 1.0);
  EXPECT_EQ(times_minus_i(times_i(a)), a);
}

TEST(Complex, FusedOps) {
  const complexd a{0.3, -0.7}, b{1.1, 0.2};
  complexd acc{2.0, 3.0};
  cmad(acc, a, b);
  const complexd expect = complexd{2.0, 3.0} + a * b;
  EXPECT_NEAR(acc.re, expect.re, 1e-15);
  EXPECT_NEAR(acc.im, expect.im, 1e-15);

  complexd acc2{};
  conj_cmad(acc2, a, b);
  const complexd expect2 = conj(a) * b;
  EXPECT_NEAR(acc2.re, expect2.re, 1e-15);
  EXPECT_NEAR(acc2.im, expect2.im, 1e-15);
  EXPECT_NEAR(conj_mul(a, b).re, expect2.re, 1e-15);
}

TEST(SU3, ReunitarizeProducesSpecialUnitary) {
  std::mt19937_64 rng(7);
  for (int i = 0; i < 50; ++i) {
    const SU3<double> u = random_su3(rng);
    // U U^dag = 1
    const SU3<double> id = u * adjoint(u);
    EXPECT_LT(frobenius_dist2(id, SU3<double>::identity()), 1e-24);
    // det U = 1
    const complexd d = det(u);
    EXPECT_NEAR(d.re, 1.0, 1e-12);
    EXPECT_NEAR(d.im, 0.0, 1e-12);
  }
}

TEST(SU3, CompressionRoundTrip) {
  std::mt19937_64 rng(13);
  for (int i = 0; i < 50; ++i) {
    const SU3<double> u = random_su3(rng);
    const SU3<double> v = decompress(compress(u));
    EXPECT_LT(frobenius_dist2(u, v), 1e-24) << "third-row reconstruction failed";
  }
}

TEST(SU3, AdjMulMatchesExplicitAdjoint) {
  std::mt19937_64 rng(21);
  std::normal_distribution<double> d(0.0, 1.0);
  const SU3<double> u = random_su3(rng);
  ColorVector<double> v;
  for (std::size_t c = 0; c < 3; ++c) v.c[c] = complexd(d(rng), d(rng));
  const ColorVector<double> a = adj_mul(u, v);
  const ColorVector<double> b = adjoint(u) * v;
  for (std::size_t c = 0; c < 3; ++c) {
    EXPECT_NEAR(a.c[c].re, b.c[c].re, 1e-13);
    EXPECT_NEAR(a.c[c].im, b.c[c].im, 1e-13);
  }
}

TEST(SU3, MatVecLinearity) {
  std::mt19937_64 rng(5);
  std::normal_distribution<double> d(0.0, 1.0);
  const SU3<double> u = random_su3(rng);
  ColorVector<double> v, w;
  for (std::size_t c = 0; c < 3; ++c) {
    v.c[c] = complexd(d(rng), d(rng));
    w.c[c] = complexd(d(rng), d(rng));
  }
  const ColorVector<double> lhs = u * (v + w);
  ColorVector<double> rhs = u * v;
  rhs += u * w;
  for (std::size_t c = 0; c < 3; ++c) EXPECT_NEAR(norm2(lhs.c[c] - rhs.c[c]), 0.0, 1e-24);
}

TEST(SU3, UnitaryPreservesNorm) {
  std::mt19937_64 rng(99);
  std::normal_distribution<double> d(0.0, 1.0);
  const SU3<double> u = random_su3(rng);
  ColorVector<double> v;
  for (std::size_t c = 0; c < 3; ++c) v.c[c] = complexd(d(rng), d(rng));
  EXPECT_NEAR(norm2(u * v), norm2(v), 1e-12 * norm2(v));
}

TEST(SU3, WeakFieldIsNearIdentity) {
  std::mt19937_64 rng(3);
  std::normal_distribution<double> d(0.0, 0.05);
  SU3<double> m = SU3<double>::identity();
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c) m.e[r][c] += complexd(d(rng), d(rng));
  const SU3<double> u = reunitarize(m);
  EXPECT_LT(frobenius_dist2(u, SU3<double>::identity()), 0.3);
  EXPECT_NEAR(det(u).re, 1.0, 1e-12);
}

TEST(SU3, EightRealRoundTrip) {
  std::mt19937_64 rng(17);
  for (int i = 0; i < 200; ++i) {
    const SU3<double> u = random_su3(rng);
    const SU3<double> v = unpack_eight(pack_eight(u));
    EXPECT_LT(frobenius_dist2(u, v), 1e-22) << "8-real reconstruction failed at trial " << i;
  }
}

TEST(SU3, EightRealRoundTripSingle) {
  std::mt19937_64 rng(29);
  for (int i = 0; i < 200; ++i) {
    const SU3<double> ud = random_su3(rng);
    SU3<float> u;
    for (std::size_t r = 0; r < 3; ++r)
      for (std::size_t c = 0; c < 3; ++c)
        u.e[r][c] = Complex<float>(static_cast<float>(ud.e[r][c].re),
                                   static_cast<float>(ud.e[r][c].im));
    const SU3<float> v = unpack_eight(pack_eight(u));
    EXPECT_LT(frobenius_dist2(u, v), 1e-9f) << "trial " << i;
  }
}

// the reconstructed matrix must live on the SU(3) manifold even when the
// inputs are rounded (the unpack enforces unitarity by construction)
TEST(SU3, EightRealUnpackIsSpecialUnitary) {
  std::mt19937_64 rng(31);
  for (int i = 0; i < 100; ++i) {
    const SU3<double> u = unpack_eight(pack_eight(random_su3(rng)));
    EXPECT_LT(frobenius_dist2(u * adjoint(u), SU3<double>::identity()), 1e-22);
    EXPECT_NEAR(det(u).re, 1.0, 1e-11);
    EXPECT_NEAR(det(u).im, 0.0, 1e-11);
  }
}

// links with a (numerically) vanishing first-row tail |U01|^2 + |U02|^2 hit
// the degenerate branch: the unpack must still return a valid SU(3) matrix
// that agrees on the stored first column phase
TEST(SU3, EightRealDegenerateFallback) {
  SU3<double> u{}; // diag(e^{i a}, 1, e^{-i a}): U01 = U02 = 0 exactly
  const double a = 0.73;
  u.e[0][0] = complexd(std::cos(a), std::sin(a));
  u.e[1][1] = complexd(1.0, 0.0);
  u.e[2][2] = complexd(std::cos(a), -std::sin(a));
  const SU3<double> v = unpack_eight(pack_eight(u));
  EXPECT_LT(frobenius_dist2(v * adjoint(v), SU3<double>::identity()), 1e-24);
  EXPECT_NEAR(det(v).re, 1.0, 1e-12);
  EXPECT_NEAR(v.e[0][0].re, u.e[0][0].re, 1e-12);
  EXPECT_NEAR(v.e[0][0].im, u.e[0][0].im, 1e-12);
  // the identity link is its own reconstruction
  const SU3<double> id = SU3<double>::identity();
  EXPECT_LT(frobenius_dist2(unpack_eight(pack_eight(id)), id), 1e-28);
}

} // namespace
} // namespace quda
