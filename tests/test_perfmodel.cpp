// Property tests on the performance model: the paper's memory gates, face
// traffic arithmetic, and qualitative scaling shapes of the modeled solver
// (weak scaling flatness, mixed > single > double ordering, NUMA penalty).

#include "parallel/modeled_solver.h"
#include "perfmodel/costs.h"
#include "perfmodel/footprint.h"

#include <gtest/gtest.h>

namespace quda {
namespace {

using parallel::ModeledSolverConfig;
using parallel::ModeledSolverResult;
using parallel::run_modeled_solver;
using sim::ClusterSpec;
using sim::VirtualCluster;

ModeledSolverResult run_case(int ranks, const LatticeDims& local, Precision outer,
                             std::optional<Precision> sloppy, CommPolicy policy,
                             bool good_numa = true, int iters = 50) {
  ClusterSpec spec = ClusterSpec::jlab_9g(ranks);
  spec.good_numa_binding = good_numa;
  VirtualCluster cluster(spec);
  ModeledSolverConfig cfg;
  cfg.local = local;
  cfg.outer = outer;
  cfg.sloppy = sloppy;
  cfg.policy = policy;
  cfg.iterations = iters;
  return run_modeled_solver(cluster, cfg);
}

TEST(Costs, PaperAnchorNumbers) {
  EXPECT_DOUBLE_EQ(perf::kMatrixFlopsPerSite, 3696.0);
  EXPECT_DOUBLE_EQ(perf::matrix_bytes_per_site(Precision::Single), 2976.0);
  EXPECT_DOUBLE_EQ(perf::matrix_bytes_per_site(Precision::Double), 5952.0);
  EXPECT_LT(perf::matrix_bytes_per_site(Precision::Half),
            0.55 * perf::matrix_bytes_per_site(Precision::Single));
}

TEST(Costs, ReconAwareTrafficShrinks) {
  // Twelve is the anchor: the recon-aware overload must reproduce the
  // two-argument totals bit-for-bit
  for (Precision p : {Precision::Double, Precision::Single, Precision::Half}) {
    EXPECT_EQ(perf::matrix_bytes_per_site(p, Reconstruct::Twelve), perf::matrix_bytes_per_site(p));
    const auto anchor = perf::dslash_kernel_cost(p, 1000);
    const auto twelve = perf::dslash_kernel_cost(p, 1000, Reconstruct::Twelve);
    EXPECT_EQ(anchor.bytes, twelve.bytes);
    EXPECT_EQ(anchor.flops, twelve.flops);
  }

  // gauge-only traffic: 16 link loads x stored reals; the acceptance floors
  // of the reconstruction work -- 8-real cuts >= 30% of the gauge traffic
  // vs 18-real and >= 25% vs 12-real
  for (Precision p : {Precision::Double, Precision::Single, Precision::Half}) {
    const double g8 = perf::gauge_bytes_per_site(p, Reconstruct::Eight);
    const double g12 = perf::gauge_bytes_per_site(p, Reconstruct::Twelve);
    const double g18 = perf::gauge_bytes_per_site(p, Reconstruct::Eighteen);
    EXPECT_DOUBLE_EQ(g12, 16.0 * 12 * bytes_per_real(p));
    EXPECT_GE((g18 - g8) / g18, 0.30);
    EXPECT_GE((g12 - g8) / g12, 0.25);
  }

  // the full matrix traffic moves by exactly the gauge delta, so effective
  // Gflops scale with it in the bandwidth-bound model
  const double m8 = perf::matrix_bytes_per_site(Precision::Single, Reconstruct::Eight);
  const double m12 = perf::matrix_bytes_per_site(Precision::Single, Reconstruct::Twelve);
  const double m18 = perf::matrix_bytes_per_site(Precision::Single, Reconstruct::Eighteen);
  EXPECT_DOUBLE_EQ(m12 - m8, 16.0 * 4 * 4.0);
  EXPECT_DOUBLE_EQ(m18 - m12, 16.0 * 6 * 4.0);
  EXPECT_LT(m8, m12);
  EXPECT_LT(m12, m18);
}

TEST(Footprint, ReconAwareGaugeBytes) {
  const LatticeDims local{8, 8, 8, 16};
  // the nullopt passthrough keeps the legacy per-precision convention
  EXPECT_EQ(perf::gauge_field_bytes(Precision::Single, local),
            perf::gauge_field_bytes(Precision::Single, local, Reconstruct::Twelve));
  EXPECT_EQ(perf::gauge_field_bytes(Precision::Double, local),
            perf::gauge_field_bytes(Precision::Double, local, Reconstruct::Eighteen));
  // stored bytes scale with the link width
  const auto b8 = perf::gauge_field_bytes(Precision::Single, local, Reconstruct::Eight);
  const auto b12 = perf::gauge_field_bytes(Precision::Single, local, Reconstruct::Twelve);
  const auto b18 = perf::gauge_field_bytes(Precision::Single, local, Reconstruct::Eighteen);
  EXPECT_EQ(b8 * 12, b12 * 8);
  EXPECT_EQ(b8 * 18, b18 * 8);

  // the solver footprint honors per-level reconstruction: sloppy inherits
  // the outer knob unless overridden
  const auto base = perf::solver_footprint(local, Precision::Single, Precision::Half);
  const auto r8 = perf::solver_footprint(local, Precision::Single, Precision::Half,
                                         Reconstruct::Eight);
  const auto mixed = perf::solver_footprint(local, Precision::Single, Precision::Half,
                                            Reconstruct::Twelve, Reconstruct::Eight);
  EXPECT_LT(r8.gauge_bytes, base.gauge_bytes);
  EXPECT_LT(mixed.gauge_bytes, base.gauge_bytes);
  EXPECT_LT(r8.gauge_bytes, mixed.gauge_bytes);
  EXPECT_EQ(r8.spinor_bytes, base.spinor_bytes);
  EXPECT_EQ(r8.clover_bytes, base.clover_bytes);
}

TEST(ModeledSolver, Recon8RaisesModeledPerformance) {
  // less gauge traffic -> faster bandwidth-bound dslash -> higher effective
  // Gflops, with the gauge footprint shrinking accordingly
  const LatticeDims local{24, 24, 24, 32};
  ClusterSpec spec = ClusterSpec::jlab_9g(4);
  auto run_recon = [&](std::optional<Reconstruct> r) {
    VirtualCluster cluster(spec);
    ModeledSolverConfig cfg;
    cfg.local = local;
    cfg.outer = Precision::Single;
    cfg.policy = CommPolicy::Overlap;
    cfg.iterations = 50;
    cfg.reconstruct = r;
    return run_modeled_solver(cluster, cfg);
  };
  const auto legacy = run_recon(std::nullopt);
  const auto r12 = run_recon(Reconstruct::Twelve);
  const auto r8 = run_recon(Reconstruct::Eight);
  const auto r18 = run_recon(Reconstruct::Eighteen);
  ASSERT_TRUE(legacy.fits && r12.fits && r8.fits && r18.fits);
  // unset knob == explicit Twelve (the pre-knob behavior) for the kernels
  EXPECT_EQ(legacy.effective_gflops, r12.effective_gflops);
  EXPECT_GT(r8.effective_gflops, r12.effective_gflops);
  EXPECT_GT(r12.effective_gflops, r18.effective_gflops);
  EXPECT_LT(r8.gauge_footprint_bytes, r12.gauge_footprint_bytes);
  EXPECT_LT(r12.gauge_footprint_bytes, r18.gauge_footprint_bytes);
}

TEST(Costs, FaceBytesArithmetic) {
  // 12 reals per face site (the projected half spinor)
  EXPECT_EQ(perf::face_bytes(Precision::Single, 1000), 1000 * 12 * 4);
  EXPECT_EQ(perf::face_bytes(Precision::Double, 1000), 1000 * 12 * 8);
  // half adds one float norm per site
  EXPECT_EQ(perf::face_bytes(Precision::Half, 1000), 1000 * (12 * 2 + 4));
  // no-overlap moves 24/Nvec blocks per face, +1 for half norms
  EXPECT_EQ(perf::face_copy_blocks(Precision::Single), 6);
  EXPECT_EQ(perf::face_copy_blocks(Precision::Double), 12);
  EXPECT_EQ(perf::face_copy_blocks(Precision::Half), 7);
}

// --- the paper's device-memory gates (Sections VII-B and VII-C) ---------------

TEST(Footprint, Strong323x256MixedNeedsAtLeastEightGpus) {
  const gpusim::Device probe(gpusim::geforce_gtx285(), gpusim::BusModel{});
  // N = 4: local 32^3 x 64, mixed single-half does NOT fit
  const auto f4 = perf::solver_footprint({32, 32, 32, 64}, Precision::Single, Precision::Half);
  EXPECT_GT(f4.total(), probe.bytes_capacity());
  // N = 8: local 32^3 x 32 fits
  const auto f8 = perf::solver_footprint({32, 32, 32, 32}, Precision::Single, Precision::Half);
  EXPECT_LE(f8.total(), probe.bytes_capacity());
}

TEST(Footprint, Strong323x256UniformSingleFitsOnFourGpus) {
  const gpusim::Device probe(gpusim::geforce_gtx285(), gpusim::BusModel{});
  const auto f4 = perf::solver_footprint({32, 32, 32, 64}, Precision::Single);
  EXPECT_LE(f4.total(), probe.bytes_capacity());
}

TEST(Footprint, Weak32p4DoubleDoesNotFit) {
  // Fig. 4(a): "we were unable to fit the double precision ... problems
  // into device memory" at 32^4 sites per GPU
  const gpusim::Device probe(gpusim::geforce_gtx285(), gpusim::BusModel{});
  const auto fd = perf::solver_footprint({32, 32, 32, 32}, Precision::Double);
  EXPECT_GT(fd.total(), probe.bytes_capacity());
  const auto fdh = perf::solver_footprint({32, 32, 32, 32}, Precision::Double, Precision::Half);
  EXPECT_GT(fdh.total(), probe.bytes_capacity());
  // but single fits
  const auto fs = perf::solver_footprint({32, 32, 32, 32}, Precision::Single);
  EXPECT_LE(fs.total(), probe.bytes_capacity());
}

TEST(Footprint, Weak243x32DoubleAndDoubleHalfFit) {
  // Fig. 4(b) shows double and double-half curves at 24^3 x 32 per GPU
  const gpusim::Device probe(gpusim::geforce_gtx285(), gpusim::BusModel{});
  EXPECT_LE(perf::solver_footprint({24, 24, 24, 32}, Precision::Double).total(),
            probe.bytes_capacity());
  EXPECT_LE(perf::solver_footprint({24, 24, 24, 32}, Precision::Double, Precision::Half).total(),
            probe.bytes_capacity());
}

TEST(ModeledSolver, OomIsReportedNotCrashed) {
  const auto r = run_case(4, {32, 32, 32, 64}, Precision::Single, Precision::Half,
                          CommPolicy::Overlap);
  EXPECT_FALSE(r.fits);
  EXPECT_EQ(r.effective_gflops, 0.0);
}

// --- qualitative scaling shapes ------------------------------------------------

TEST(ModeledSolver, WeakScalingIsNearLinear) {
  // constant local volume: aggregate Gflops at 16 GPUs should be close to
  // 8x the 2-GPU value (Fig. 4's shape)
  const LatticeDims local{24, 24, 24, 32};
  const auto r2 = run_case(2, local, Precision::Single, std::nullopt, CommPolicy::Overlap);
  const auto r16 = run_case(16, local, Precision::Single, std::nullopt, CommPolicy::Overlap);
  ASSERT_TRUE(r2.fits);
  ASSERT_TRUE(r16.fits);
  const double parallel_efficiency = r16.effective_gflops / (8.0 * r2.effective_gflops);
  EXPECT_GT(parallel_efficiency, 0.9);
  EXPECT_LT(parallel_efficiency, 1.05);
}

TEST(ModeledSolver, PrecisionOrderingMatchesPaper) {
  // per-GPU performance: half-sloppy mixed > single > double (Figs. 4, 6)
  const LatticeDims local{24, 24, 24, 32};
  const auto mixed =
      run_case(8, local, Precision::Single, Precision::Half, CommPolicy::Overlap);
  const auto single = run_case(8, local, Precision::Single, std::nullopt, CommPolicy::Overlap);
  const auto dbl = run_case(8, local, Precision::Double, std::nullopt, CommPolicy::Overlap);
  ASSERT_TRUE(mixed.fits && single.fits && dbl.fits);
  EXPECT_GT(mixed.effective_gflops, single.effective_gflops);
  EXPECT_GT(single.effective_gflops, 2.0 * dbl.effective_gflops);
}

TEST(ModeledSolver, DoubleHalfTracksSingleHalf) {
  // Fig. 4(b): "the mixed double-half precision performance ... is nearly
  // identical to that of the single-half precision case"
  const LatticeDims local{24, 24, 24, 32};
  const auto sh = run_case(8, local, Precision::Single, Precision::Half, CommPolicy::Overlap);
  const auto dh = run_case(8, local, Precision::Double, Precision::Half, CommPolicy::Overlap);
  ASSERT_TRUE(sh.fits && dh.fits);
  EXPECT_NEAR(dh.effective_gflops / sh.effective_gflops, 1.0, 0.15);
}

TEST(ModeledSolver, StrongScalingRollsOff) {
  // fixed global volume 24^3 x 128: efficiency per GPU decreases with N
  const auto r4 = run_case(4, {24, 24, 24, 32}, Precision::Single, std::nullopt,
                           CommPolicy::NoOverlap);
  const auto r32 = run_case(32, {24, 24, 24, 4}, Precision::Single, std::nullopt,
                            CommPolicy::NoOverlap);
  ASSERT_TRUE(r4.fits && r32.fits);
  const double per_gpu_4 = r4.effective_gflops / 4.0;
  const double per_gpu_32 = r32.effective_gflops / 32.0;
  EXPECT_LT(per_gpu_32, 0.85 * per_gpu_4);
}

TEST(ModeledSolver, AsyncLatencyHurtsOverlapAtSmallLocalVolume) {
  // Fig. 5(b): on the small lattice at high GPU counts, the no-overlap
  // solver with its cheap synchronous copies wins in mixed precision
  const LatticeDims tiny{24, 24, 24, 4}; // 24^3 x 128 on 32 GPUs
  const auto over =
      run_case(32, tiny, Precision::Single, Precision::Half, CommPolicy::Overlap);
  const auto noover =
      run_case(32, tiny, Precision::Single, Precision::Half, CommPolicy::NoOverlap);
  ASSERT_TRUE(over.fits && noover.fits);
  EXPECT_GT(noover.effective_gflops, over.effective_gflops);
}

TEST(ModeledSolver, OverlapWinsAtLargeLocalVolume) {
  // Fig. 5(a): on the big lattice the overlapped solver is faster
  const LatticeDims big{32, 32, 32, 16}; // 32^3 x 256 on 16 GPUs
  const auto over = run_case(16, big, Precision::Single, std::nullopt, CommPolicy::Overlap);
  const auto noover = run_case(16, big, Precision::Single, std::nullopt, CommPolicy::NoOverlap);
  ASSERT_TRUE(over.fits && noover.fits);
  EXPECT_GT(over.effective_gflops, noover.effective_gflops);
}

TEST(ModeledSolver, BadNumaPlacementCostsPerformance) {
  // the maroon series of Fig. 5(a): at 32 GPUs the local volume is small
  // enough that the (NUMA-degraded) transfers are no longer fully hidden
  const LatticeDims local{32, 32, 32, 8};
  const auto good = run_case(32, local, Precision::Single, Precision::Half, CommPolicy::Overlap,
                             /*good_numa=*/true);
  const auto bad = run_case(32, local, Precision::Single, Precision::Half, CommPolicy::Overlap,
                            /*good_numa=*/false);
  ASSERT_TRUE(good.fits && bad.fits);
  EXPECT_LT(bad.effective_gflops, 0.97 * good.effective_gflops);
}

TEST(ModeledSolver, SingleGpuLandsInPaperRegime) {
  // per-GPU single precision solver performance on the GTX 285 should land
  // near the ~100 effective Gflops regime the paper reports
  const auto r = run_case(1, {24, 24, 24, 32}, Precision::Single, std::nullopt,
                          CommPolicy::Overlap);
  ASSERT_TRUE(r.fits);
  EXPECT_GT(r.effective_gflops, 70.0);
  EXPECT_LT(r.effective_gflops, 140.0);
}

TEST(ModeledSolver, DeterministicAcrossRuns) {
  const auto a = run_case(8, {24, 24, 24, 8}, Precision::Single, Precision::Half,
                          CommPolicy::Overlap);
  const auto b = run_case(8, {24, 24, 24, 8}, Precision::Single, Precision::Half,
                          CommPolicy::Overlap);
  EXPECT_DOUBLE_EQ(a.time_us, b.time_us);
  EXPECT_DOUBLE_EQ(a.effective_gflops, b.effective_gflops);
}

} // namespace
} // namespace quda
