// Pinned 256-rank golden run (DESIGN.md §12): a quick-lattice modeled
// solve on a 4x4x4x4 process grid (256 simulated GPUs, global 16^4) under
// the cooperative seq scheduler on the default fat-tree cluster.  The seq
// scheduler makes rank count a parameter instead of an OS thread budget,
// so this runs on one CPU in well under the suite timeout -- and because
// the DES is conservative, every number below is a pure function of the
// configuration.  The goldens pin:
//
//   - the simulated makespan, bitwise (the full hierarchical-interconnect
//     cost model: intra-node shm, leaf-switch IB, cross-switch hops with
//     oversubscription, and the switch-hop allreduce surcharge);
//   - per-rank FNV-1a event-sequence digests (first, last, and a fold over
//     all 256 ranks), pinning the pipeline structure at scale;
//   - the critical-path walk: valid, closed at t = 0, path == makespan
//     bitwise, category tiling exact;
//   - the per-link-class traffic split (shm/ib/xswitch bytes), pinning the
//     topology classification of every message.
//
// Any change to the scheduler, the interconnect model, or the halo pipeline
// that moves the 256-rank timeline fails here loudly.  The exported trace
// (trace_seq256_golden.json) is left on disk for tools/quick_gate.sh to
// lint against tools/trace_schema.json.

#include "exec/host_engine.h"
#include "parallel/modeled_solver.h"
#include "sim/event_sim.h"
#include "trace/trace.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>

namespace quda {
namespace {

constexpr const char* kTracePath = "trace_seq256_golden.json";
constexpr const char* kTelemetryPath = "telemetry_seq256.jsonl";

// drop stale exports (the exporters append .N suffixes rather than
// overwrite, which would otherwise accumulate across local reruns)
void scrub_trace_exports() {
  for (const char* base : {kTracePath, kTelemetryPath}) {
    std::remove(base);
    for (int n = 1; n < 64; ++n)
      std::remove((std::string(base) + "." + std::to_string(n)).c_str());
  }
}

TEST(SeqGolden, Pinned256RankModeledSolve) {
  exec::set_thread_budget(1); // goldens are budget-invariant; 1 is cheapest
  scrub_trace_exports();

  sim::ClusterSpec spec = sim::ClusterSpec::fat_tree(256);
  spec.scheduler = sim::SchedulerKind::Seq;
  spec.trace.enabled = true;
  spec.trace.path = kTracePath;
  // the flight recorder runs on top: the goldens below must survive it
  // bit-for-bit (observational purity, DESIGN.md §13), and quick_gate.sh
  // renders the JSONL left on disk into the HTML run report
  spec.telemetry.enabled = true;
  spec.telemetry.path = kTelemetryPath;
  sim::VirtualCluster cluster(spec);

  parallel::ModeledSolverConfig cfg;
  cfg.local = LatticeDims{4, 4, 4, 4}; // 16^4 global over the 4x4x4x4 grid
  cfg.topology = comm::GridTopology{{4, 4, 4, 4}};
  cfg.outer = Precision::Single;
  cfg.sloppy = Precision::Half;
  cfg.policy = CommPolicy::Overlap;
  cfg.iterations = 5;
  cfg.reliable_interval = 5;

  const parallel::ModeledSolverResult r = parallel::run_modeled_solver(cluster, cfg);
  ASSERT_TRUE(r.fits);
  ASSERT_TRUE(r.traced);
  ASSERT_EQ(cluster.trace().per_rank.size(), 256u);

  // --- critical-path tiling --------------------------------------------------
  ASSERT_TRUE(r.critpath.valid) << r.critpath.error;
  EXPECT_EQ(r.critpath.path_us, r.critpath.makespan_us)
      << "the walk must close at t = 0: path tiles [0, makespan] exactly";
  EXPECT_EQ(r.critpath.makespan_us, cluster.makespan_us());
  double cat_sum = 0;
  for (int c = 0; c < trace::kNumPathCats; ++c) cat_sum += r.critpath.cat_us[c];
  EXPECT_NEAR(cat_sum, r.critpath.path_us, 1e-6 * r.critpath.path_us)
      << "attribution categories must tile the path";
  EXPECT_GT(r.critpath.exposed_comm_us(), 0.0)
      << "a 4^4 local volume is firmly communication-bound";

  // --- pinned goldens --------------------------------------------------------
  // regenerate by running with --gtest_also_run_disabled_tests and reading
  // the printout below, after verifying the timeline change is intended
  const double kGoldenMakespanUs = 81581.101610996702;
  const std::uint64_t kGoldenDigestRank0 = 9794379416283240936ull;
  const std::uint64_t kGoldenDigestRank255 = 16109566784602716260ull;
  const std::uint64_t kGoldenDigestFold = 18162238263478380985ull;
  const long kGoldenShmBytes = 6555648;
  const long kGoldenIbBytes = 19666944;
  const long kGoldenXswitchBytes = 26222592;

  const auto& per_rank = cluster.trace().per_rank;
  const std::uint64_t d0 = trace::sequence_digest(per_rank.front());
  const std::uint64_t d255 = trace::sequence_digest(per_rank.back());
  // FNV-1a fold of all 256 per-rank digests, so a change on *any* rank
  // fails even if ranks 0/255 happen to keep their sequence
  std::uint64_t fold = 1469598103934665603ull;
  for (const auto& events : per_rank) {
    std::uint64_t d = trace::sequence_digest(events);
    for (int b = 0; b < 8; ++b) {
      fold ^= (d >> (8 * b)) & 0xffull;
      fold *= 1099511628211ull;
    }
  }

  std::printf("SeqGolden: makespan %.17g digest0 %llu digest255 %llu fold %llu "
              "shm %ld ib %ld xswitch %ld\n",
              cluster.makespan_us(), static_cast<unsigned long long>(d0),
              static_cast<unsigned long long>(d255),
              static_cast<unsigned long long>(fold), r.metrics.shm_bytes,
              r.metrics.ib_bytes, r.metrics.xswitch_bytes);

  EXPECT_EQ(cluster.makespan_us(), kGoldenMakespanUs);
  EXPECT_EQ(d0, kGoldenDigestRank0);
  EXPECT_EQ(d255, kGoldenDigestRank255);
  EXPECT_EQ(fold, kGoldenDigestFold);
  // traffic split over the interconnect hierarchy: with 2 GPUs per node and
  // 8 nodes per leaf switch, a 256-rank solve exercises all three classes
  EXPECT_EQ(r.metrics.shm_bytes, kGoldenShmBytes);
  EXPECT_EQ(r.metrics.ib_bytes, kGoldenIbBytes);
  EXPECT_EQ(r.metrics.xswitch_bytes, kGoldenXswitchBytes);
  EXPECT_GT(r.metrics.shm_bytes, 0);
  EXPECT_GT(r.metrics.ib_bytes, 0);
  EXPECT_GT(r.metrics.xswitch_bytes, 0);

  exec::set_thread_budget(0); // back to the environment default
}

} // namespace
} // namespace quda
