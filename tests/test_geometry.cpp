// Unit tests: lattice geometry, checkerboard indexing, neighbors, and the
// QUDA blocked layout (equations (3)-(5) of the paper).

#include "lattice/geometry.h"
#include "lattice/layout.h"

#include <gtest/gtest.h>

#include <set>

namespace quda {
namespace {

TEST(Geometry, LinearIndexRoundTrip) {
  const Geometry g({4, 6, 2, 8});
  for (std::int64_t i = 0; i < g.volume(); ++i) {
    EXPECT_EQ(g.linear_index(g.coords(i)), i);
  }
}

TEST(Geometry, ParityBalance) {
  const Geometry g({4, 4, 4, 4});
  std::int64_t even = 0, odd = 0;
  for (std::int64_t i = 0; i < g.volume(); ++i) {
    if (Geometry::site_parity(g.coords(i)) == Parity::Even)
      ++even;
    else
      ++odd;
  }
  EXPECT_EQ(even, g.half_volume());
  EXPECT_EQ(odd, g.half_volume());
}

TEST(Geometry, CbIndexIsParityBijection) {
  const Geometry g({4, 2, 6, 4});
  for (int par = 0; par < 2; ++par) {
    const Parity parity = par == 0 ? Parity::Even : Parity::Odd;
    std::set<std::int64_t> seen;
    for (std::int64_t i = 0; i < g.volume(); ++i) {
      const Coords c = g.coords(i);
      if (Geometry::site_parity(c) != parity) continue;
      const std::int64_t cb = g.cb_index(c);
      EXPECT_GE(cb, 0);
      EXPECT_LT(cb, g.half_volume());
      EXPECT_TRUE(seen.insert(cb).second) << "cb index collision";
      // inverse
      EXPECT_EQ(g.cb_coords(parity, cb), c);
    }
    EXPECT_EQ(std::int64_t(seen.size()), g.half_volume());
  }
}

TEST(Geometry, NeighborWrapsPeriodically) {
  const Geometry g({4, 4, 4, 8});
  const Coords origin{0, 0, 0, 0};
  for (int mu = 0; mu < 4; ++mu) {
    Coords back = g.neighbor(origin, mu, -1);
    EXPECT_EQ(back[mu], g.dims()[mu] - 1);
    EXPECT_TRUE(g.crosses_boundary(origin, mu, -1));
    EXPECT_FALSE(g.crosses_boundary(origin, mu, +1));
    // forward then backward is the identity
    EXPECT_EQ(g.neighbor(g.neighbor(origin, mu, +1), mu, -1), origin);
  }
}

TEST(Geometry, NeighborFlipsParity) {
  const Geometry g({4, 4, 2, 4});
  for (std::int64_t i = 0; i < g.volume(); ++i) {
    const Coords c = g.coords(i);
    for (int mu = 0; mu < 4; ++mu)
      for (int dir : {-1, +1})
        EXPECT_NE(Geometry::site_parity(c), Geometry::site_parity(g.neighbor(c, mu, dir)));
  }
}

TEST(Geometry, RejectsOddX) {
  EXPECT_THROW(Geometry({3, 4, 4, 4}), std::invalid_argument);
  EXPECT_THROW(Geometry({0, 4, 4, 4}), std::invalid_argument);
}

TEST(BlockLayout, IndexBijectiveAndInBounds) {
  const BlockLayout l(/*sites=*/120, /*pad=*/8, /*nint=*/24, /*nvec=*/4);
  EXPECT_EQ(l.stride(), 128);
  EXPECT_EQ(l.blocks(), 6);
  EXPECT_EQ(l.body_size(), 6 * 128 * 4);

  std::set<std::int64_t> seen;
  for (std::int64_t x = 0; x < l.sites; ++x)
    for (int n = 0; n < l.nint; ++n) {
      const std::int64_t i = l.index(x, n);
      EXPECT_GE(i, 0);
      EXPECT_LT(i, l.body_size());
      EXPECT_TRUE(seen.insert(i).second);
    }
}

TEST(BlockLayout, ConsecutiveSitesAreNvecApart) {
  // coalescing property: thread x and thread x+1 read elements Nvec apart
  const BlockLayout l(64, 4, 24, 4);
  for (int n = 0; n < l.nint; ++n)
    EXPECT_EQ(l.index(5, n) + l.nvec, l.index(6, n));
}

TEST(BlockLayout, PadSlotsDoNotAliasBody) {
  const BlockLayout l(64, 8, 72, 2);
  std::set<std::int64_t> body;
  for (std::int64_t x = 0; x < l.sites; ++x)
    for (int n = 0; n < l.nint; ++n) body.insert(l.index(x, n));
  for (std::int64_t p = 0; p < l.pad; ++p)
    for (int n = 0; n < l.nint; ++n) {
      const std::int64_t i = l.pad_index(p, n);
      EXPECT_LT(i, l.body_size());
      EXPECT_EQ(body.count(i), 0u) << "pad slot aliases body element";
    }
}

TEST(BlockLayout, RejectsBadNvec) {
  EXPECT_THROW(BlockLayout(10, 0, 24, 5), std::invalid_argument);
}

} // namespace
} // namespace quda
