// Integration tests: Krylov solvers on the even-odd preconditioned
// Wilson-clover system -- uniform precision BiCGstab and CGNR, mixed
// precision with reliable updates (single-half, double-half, double-single),
// the defect-correction baseline, and full-solution reconstruction.

#include "blas/blas.h"
#include "dirac/clover_term.h"
#include "dirac/gauge_init.h"
#include "dirac/transfer.h"
#include "dirac/wilson_clover_op.h"
#include "dirac/wilson_ref.h"
#include "solvers/bicgstab.h"
#include "solvers/cg.h"
#include "solvers/mixed_precision.h"

#include <gtest/gtest.h>

namespace quda {
namespace {

// A complete single-device problem: weak-field gauge, clover term, uploaded
// fields in every precision, and operators over them.
struct Problem {
  Geometry g;
  HostGaugeField u;
  HostCloverField t, tinv;
  double mass, csw;

  GaugeFieldD gauge_d;
  GaugeFieldS gauge_s;
  GaugeFieldH gauge_h;
  CloverFieldD clover_d, clover_inv_d;
  CloverFieldS clover_s, clover_inv_s;
  CloverFieldH clover_h, clover_inv_h;
  OperatorParams params;

  Problem(LatticeDims dims, double mass_, double csw_, std::uint64_t seed = 2024)
      : g(dims), u(g), mass(mass_), csw(csw_) {
    make_weak_field_gauge(u, 0.2, seed);
    t = make_clover_term(u, csw);
    add_diag(t, 4.0 + mass);
    tinv = invert_clover(t);

    gauge_d = upload_gauge<PrecDouble>(u, Reconstruct::Twelve);
    gauge_s = upload_gauge<PrecSingle>(u, Reconstruct::Twelve);
    gauge_h = upload_gauge<PrecHalf>(u, Reconstruct::Twelve);
    clover_d = upload_clover<PrecDouble>(t);
    clover_inv_d = upload_clover<PrecDouble>(tinv);
    clover_s = upload_clover<PrecSingle>(t);
    clover_inv_s = upload_clover<PrecSingle>(tinv);
    clover_h = upload_clover<PrecHalf>(t);
    clover_inv_h = upload_clover<PrecHalf>(tinv);

    params.mass = mass;
    params.time_bc = TimeBoundary::Antiperiodic;
  }

  WilsonCloverOp<PrecDouble> op_d() { return {g, gauge_d, clover_d, clover_inv_d, params}; }
  WilsonCloverOp<PrecSingle> op_s() { return {g, gauge_s, clover_s, clover_inv_s, params}; }
  WilsonCloverOp<PrecHalf> op_h() { return {g, gauge_h, clover_h, clover_inv_h, params}; }
};

TEST(BiCGstab, ConvergesDoublePrecision) {
  Problem prob({4, 4, 4, 8}, 0.1, 1.0);
  auto op = prob.op_d();

  HostSpinorField hb(prob.g);
  make_random_spinor(hb, 31);
  const SpinorFieldD b = upload_spinor<PrecDouble>(hb, Parity::Even);
  SpinorFieldD x(prob.g);

  SolverParams sp;
  sp.tol = 1e-10;
  sp.max_iter = 500;
  const SolverStats stats = solve_bicgstab(op, x, b, sp);
  EXPECT_TRUE(stats.converged) << stats.summary();
  EXPECT_LT(stats.true_residual, 1e-9);
  EXPECT_GT(stats.iterations, 3);
}

TEST(BiCGstab, ConvergesSinglePrecision) {
  Problem prob({4, 4, 4, 8}, 0.1, 1.0);
  auto op = prob.op_s();

  HostSpinorField hb(prob.g);
  make_random_spinor(hb, 77);
  const SpinorFieldS b = upload_spinor<PrecSingle>(hb, Parity::Even);
  SpinorFieldS x(prob.g);

  SolverParams sp;
  sp.tol = 1e-5;
  sp.max_iter = 500;
  const SolverStats stats = solve_bicgstab(op, x, b, sp);
  EXPECT_TRUE(stats.converged) << stats.summary();
}

TEST(BiCGstab, SolutionSatisfiesReferenceOperator) {
  // solve the Schur system, reconstruct the odd parity, and check the full
  // solution against the *reference* operator: M x == b end-to-end
  Problem prob({4, 4, 4, 8}, 0.15, 1.3, 555);
  auto op = prob.op_d();

  HostSpinorField hb(prob.g);
  make_random_spinor(hb, 3);
  const SpinorFieldD b_e = upload_spinor<PrecDouble>(hb, Parity::Even);
  const SpinorFieldD b_o = upload_spinor<PrecDouble>(hb, Parity::Odd);

  SpinorFieldD bprime(prob.g), x_e(prob.g), x_o(prob.g);
  op.prepare_source(bprime, b_e, b_o);

  SolverParams sp;
  sp.tol = 1e-11;
  sp.max_iter = 1000;
  const SolverStats stats = solve_bicgstab(op, x_e, bprime, sp);
  ASSERT_TRUE(stats.converged) << stats.summary();
  op.reconstruct_odd(x_o, x_e, b_o);

  HostSpinorField hx(prob.g);
  download_spinor(x_e, Parity::Even, hx);
  download_spinor(x_o, Parity::Odd, hx);

  // reference check
  WilsonParams wp;
  wp.mass = prob.mass;
  wp.time_bc = TimeBoundary::Antiperiodic;
  const DenseCloverField dense = make_dense_clover_term(prob.u, prob.csw);
  HostSpinorField mx(prob.g);
  apply_wilson_clover_ref(prob.u, dense, hx, mx, wp);

  double num = 0, den = 0;
  for (std::int64_t i = 0; i < prob.g.volume(); ++i) {
    num += norm2(mx[i] - hb[i]);
    den += norm2(hb[i]);
  }
  EXPECT_LT(std::sqrt(num / den), 1e-9);
}

TEST(CGNR, ConvergesDoublePrecision) {
  Problem prob({4, 4, 4, 4}, 0.2, 1.0, 808);
  auto op = prob.op_d();

  HostSpinorField hb(prob.g);
  make_random_spinor(hb, 10);
  const SpinorFieldD b = upload_spinor<PrecDouble>(hb, Parity::Even);
  SpinorFieldD x(prob.g);

  SolverParams sp;
  sp.tol = 1e-8;
  sp.max_iter = 2000;
  const SolverStats stats = solve_cgnr(op, x, b, sp);
  EXPECT_TRUE(stats.converged) << stats.summary();
  EXPECT_LT(stats.true_residual, 1e-8);
}

TEST(MixedPrecision, SingleHalfReachesSingleTolerance) {
  // the paper's workhorse mode: outer single, sloppy half, target 1e-7
  Problem prob({4, 4, 4, 8}, 0.1, 1.0, 99);
  auto op_hi = prob.op_s();
  auto op_lo = prob.op_h();

  HostSpinorField hb(prob.g);
  make_random_spinor(hb, 8);
  const SpinorFieldS b = upload_spinor<PrecSingle>(hb, Parity::Even);
  SpinorFieldS x(prob.g);

  SolverParams sp;
  sp.tol = 1e-6;
  sp.delta = 1e-1; // the paper's delta for mixed single-half
  sp.max_iter = 2000;
  const SolverStats stats = solve_bicgstab_reliable(op_hi, op_lo, x, b, sp);
  EXPECT_TRUE(stats.converged) << stats.summary();
  EXPECT_GT(stats.reliable_updates, 0) << "half precision alone cannot reach 1e-6";
}

TEST(MixedPrecision, DoubleHalfReachesDeepTolerance) {
  Problem prob({4, 4, 4, 8}, 0.1, 1.0, 44);
  auto op_hi = prob.op_d();
  auto op_lo = prob.op_h();

  HostSpinorField hb(prob.g);
  make_random_spinor(hb, 9);
  const SpinorFieldD b = upload_spinor<PrecDouble>(hb, Parity::Even);
  SpinorFieldD x(prob.g);

  SolverParams sp;
  sp.tol = 1e-10;
  sp.delta = 1e-2; // the paper's delta for mixed double-half
  sp.max_iter = 4000;
  const SolverStats stats = solve_bicgstab_reliable(op_hi, op_lo, x, b, sp);
  EXPECT_TRUE(stats.converged) << stats.summary();
  EXPECT_LT(stats.true_residual, 1e-9);
  EXPECT_GT(stats.reliable_updates, 1);
}

TEST(MixedPrecision, DoubleSingleReachesDeepTolerance) {
  Problem prob({4, 4, 4, 8}, 0.1, 1.0, 45);
  auto op_hi = prob.op_d();
  auto op_lo = prob.op_s();

  HostSpinorField hb(prob.g);
  make_random_spinor(hb, 11);
  const SpinorFieldD b = upload_spinor<PrecDouble>(hb, Parity::Even);
  SpinorFieldD x(prob.g);

  SolverParams sp;
  sp.tol = 1e-12;
  sp.delta = 1e-3;
  sp.max_iter = 4000;
  const SolverStats stats = solve_bicgstab_reliable(op_hi, op_lo, x, b, sp);
  EXPECT_TRUE(stats.converged) << stats.summary();
  EXPECT_LT(stats.true_residual, 1e-11);
}

TEST(MixedPrecision, DefectCorrectionConvergesButRestarts) {
  Problem prob({4, 4, 4, 8}, 0.1, 1.0, 46);
  auto op_hi = prob.op_d();
  auto op_lo = prob.op_s();

  HostSpinorField hb(prob.g);
  make_random_spinor(hb, 12);
  const SpinorFieldD b = upload_spinor<PrecDouble>(hb, Parity::Even);
  SpinorFieldD x(prob.g);

  SolverParams sp;
  sp.tol = 1e-10;
  sp.max_iter = 8000;
  const SolverStats stats = solve_defect_correction(op_hi, op_lo, x, b, sp, 1e-3);
  EXPECT_TRUE(stats.converged) << stats.summary();
  EXPECT_GT(stats.restarts, 1) << "defect correction restarts the Krylov space";
}

TEST(MixedPrecision, ReliableBeatsDefectCorrectionOnIterations) {
  // the motivation for reliable updates the paper cites from [4]: a single
  // preserved Krylov space needs fewer total iterations than restarting
  Problem prob({4, 4, 4, 8}, 0.05, 1.0, 47); // lighter mass = harder system
  auto op_hi = prob.op_d();
  auto op_lo1 = prob.op_s();
  auto op_lo2 = prob.op_s();

  HostSpinorField hb(prob.g);
  make_random_spinor(hb, 13);
  const SpinorFieldD b = upload_spinor<PrecDouble>(hb, Parity::Even);

  SolverParams sp;
  sp.tol = 1e-10;
  sp.delta = 1e-3;
  sp.max_iter = 8000;

  SpinorFieldD x1(prob.g), x2(prob.g);
  const SolverStats rel = solve_bicgstab_reliable(op_hi, op_lo1, x1, b, sp);
  const SolverStats dc = solve_defect_correction(op_hi, op_lo2, x2, b, sp, 1e-2);
  ASSERT_TRUE(rel.converged) << rel.summary();
  ASSERT_TRUE(dc.converged) << dc.summary();
  EXPECT_LE(rel.iterations, dc.iterations) << "reliable: " << rel.summary()
                                           << " vs defect-correction: " << dc.summary();
}

TEST(Solvers, ZeroSourceGivesZeroSolution) {
  Problem prob({4, 4, 4, 4}, 0.2, 1.0, 48);
  auto op = prob.op_d();
  SpinorFieldD b(prob.g), x(prob.g);
  HostSpinorField ones(prob.g);
  make_random_spinor(ones, 14);
  x = upload_spinor<PrecDouble>(ones, Parity::Even); // non-zero initial guess
  SolverParams sp;
  const SolverStats stats = solve_bicgstab(op, x, b, sp);
  EXPECT_TRUE(stats.converged);
  EXPECT_EQ(blas::norm2(x), 0.0);
}

} // namespace
} // namespace quda
