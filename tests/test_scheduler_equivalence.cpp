// Scheduler equivalence suite (DESIGN.md §12): the cooperative event-loop
// scheduler (QUDA_SIM_SCHED=seq, rank-per-fiber) must be observationally
// indistinguishable from the historical thread-per-rank scheduler.  Because
// the DES is conservative -- message and collective completion times are
// pure functions of the participants' simulated clocks -- both schedulers
// walk the same timeline, and every observable must match *bitwise*:
// solution vectors, makespans, FaultReport/RecoveryReport (checkpoint
// digests included), per-rank FNV-1a trace digests, and exported trace
// files with timestamps.  The sweep runs each scenario under both
// schedulers at QUDA_SIM_THREADS budgets {1, 2, 8}: the budget throttles
// host-side parallel_for work and must not perturb the timeline either.
//
// Also pinned here: the typed SchedulerCapacityError raised when the
// threads scheduler is asked for more ranks than it can service, and the
// QUDA_SIM_SCHED resolution rules (explicit spec beats environment,
// unknown values are a loud std::invalid_argument).

#include "core/quda_api.h"
#include "dirac/gauge_init.h"
#include "exec/host_engine.h"
#include "parallel/modeled_solver.h"
#include "sim/event_sim.h"
#include "sim/scheduler.h"
#include "trace/trace.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace quda {
namespace {

using parallel::ModeledSolverConfig;
using parallel::ModeledSolverResult;

// the suite drives the scheduler and capacity knobs itself; scrub any
// ambient values so every run starts from the documented defaults
const bool g_env_cleared = [] {
  ::unsetenv("QUDA_SIM_TRACE");
  ::unsetenv("QUDA_SIM_TELEMETRY");
  ::unsetenv("QUDA_SIM_SCHED");
  ::unsetenv("QUDA_SIM_MAX_RANK_THREADS");
  return true;
}();

// --- modeled-solver scenarios ------------------------------------------------

ModeledSolverConfig modeled_config(CommPolicy policy) {
  ModeledSolverConfig cfg;
  cfg.local = LatticeDims{8, 8, 8, 16};
  cfg.outer = Precision::Single;
  cfg.sloppy = Precision::Half;
  cfg.policy = policy;
  cfg.iterations = 25;
  cfg.reliable_interval = 10;
  return cfg;
}

// everything observable about one modeled run, digested for comparison
struct ModeledObs {
  ModeledSolverResult result;
  double makespan = 0;
  std::vector<std::uint64_t> digests; // per-rank trace sequence digests
};

ModeledObs run_modeled(sim::SchedulerKind kind, int ranks, const ModeledSolverConfig& cfg,
                       const sim::FaultConfig& faults = {}) {
  sim::ClusterSpec spec = sim::ClusterSpec::jlab_9g(ranks);
  spec.scheduler = kind;
  spec.trace.enabled = true;
  spec.faults = faults;
  sim::VirtualCluster cluster(spec);
  ModeledObs o;
  o.result = parallel::run_modeled_solver(cluster, cfg);
  o.makespan = cluster.makespan_us();
  for (const auto& events : cluster.trace().per_rank)
    o.digests.push_back(trace::sequence_digest(events));
  return o;
}

void expect_same_modeled(const ModeledObs& a, const ModeledObs& b, const std::string& label) {
  EXPECT_EQ(a.result.fits, b.result.fits) << label;
  EXPECT_EQ(a.result.iterations, b.result.iterations) << label;
  // EXPECT_EQ on doubles is exact comparison on purpose: the schedulers
  // must agree bitwise, not to a tolerance
  EXPECT_EQ(a.result.time_us, b.result.time_us) << label;
  EXPECT_EQ(a.result.effective_gflops, b.result.effective_gflops) << label;
  EXPECT_EQ(a.makespan, b.makespan) << label;
  ASSERT_EQ(a.digests.size(), b.digests.size()) << label;
  for (std::size_t r = 0; r < a.digests.size(); ++r)
    EXPECT_EQ(a.digests[r], b.digests[r]) << label << " rank " << r << " trace digest";
}

// run one scenario under every (scheduler, thread budget) combination and
// require each run to match the threads/budget-1 baseline bitwise
void sweep_modeled(int ranks, const ModeledSolverConfig& cfg,
                   const sim::FaultConfig& faults = {}) {
  exec::set_thread_budget(1);
  const ModeledObs base = run_modeled(sim::SchedulerKind::Threads, ranks, cfg, faults);
  ASSERT_TRUE(base.result.fits);
  ASSERT_EQ(base.digests.size(), static_cast<std::size_t>(ranks));

  for (const sim::SchedulerKind kind :
       {sim::SchedulerKind::Threads, sim::SchedulerKind::Seq}) {
    for (const int budget : {1, 2, 8}) {
      exec::set_thread_budget(budget);
      const ModeledObs other = run_modeled(kind, ranks, cfg, faults);
      expect_same_modeled(base, other,
                          std::string(sim::scheduler_name(kind)) + " budget " +
                              std::to_string(budget));
    }
  }
  exec::set_thread_budget(0); // back to the environment default
}

TEST(SchedulerEquivalence, ModeledSolveOverlap) {
  sweep_modeled(4, modeled_config(CommPolicy::Overlap));
}

TEST(SchedulerEquivalence, ModeledSolveNoOverlap) {
  sweep_modeled(4, modeled_config(CommPolicy::NoOverlap));
}

// a 1x2x2x2 grid exercises the multi-dimensional halo exchange paths (six
// neighbors per rank instead of two) under both schedulers
TEST(SchedulerEquivalence, ModeledSolveMultiDimGrid) {
  ModeledSolverConfig cfg = modeled_config(CommPolicy::Overlap);
  cfg.topology = comm::GridTopology{{1, 2, 2, 2}};
  sweep_modeled(8, cfg);
}

// message faults (drops, degraded links, transient stalls) perturb the
// timeline through the retry machinery; the injected schedule is a pure
// function of the seed, so both schedulers must replay it exactly
TEST(SchedulerEquivalence, ModeledSolveWithMessageFaults) {
  sim::FaultConfig faults;
  faults.seed = 20260808;
  faults.drop_rate = 0.02;
  faults.delay_rate = 0.05;
  faults.stall_rate = 0.01;
  sweep_modeled(4, modeled_config(CommPolicy::Overlap), faults);
}

// --- real-mode solves (invert_multi_gpu) -------------------------------------

struct RealFixture {
  Geometry g{LatticeDims{4, 4, 4, 8}};
  HostGaugeField u;
  HostSpinorField b;
  InvertParams params;

  RealFixture() : u(g), b(g) {
    make_weak_field_gauge(u, 0.2, 9000);
    make_random_spinor(b, 9001);
    params.mass = 0.1;
    params.csw = 1.0;
    params.precision = Precision::Single;
    params.sloppy = Precision::Half;
    params.tol = 1e-6;
    params.delta = 1e-1;
    params.max_iter = 2000;
    params.checkpoint_interval = 1;
  }
};

struct RealObs {
  InvertResult r;
  HostSpinorField x;
  std::string trace_json; // exported Chrome trace, timestamps included
};

// Exports carry a one-line provenance stamp naming the scheduler and thread
// budget -- exactly what these tests vary -- so strip those lines before the
// bitwise comparison.  Everything else must match to the last bit.
std::string strip_provenance(const std::string& text) {
  std::string out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    if (line.find("\"provenance\"") == std::string::npos) {
      out += line;
      if (eol < text.size()) out += '\n';
    }
    pos = eol + 1;
  }
  return out;
}

// trace exports append .N suffixes when the base name exists; each run here
// uses a distinct base, so exactly one variant exists: read it, delete it
std::string slurp_export(const std::string& base) {
  for (int n = 0; n < 64; ++n) {
    const std::string path = n == 0 ? base : base + "." + std::to_string(n);
    std::ifstream in(path, std::ios::binary);
    if (!in) continue;
    std::ostringstream ss;
    ss << in.rdbuf();
    std::remove(path.c_str());
    return strip_provenance(ss.str());
  }
  return "";
}

RealObs run_real(const RealFixture& f, sim::ClusterSpec spec, sim::SchedulerKind kind,
                 int budget, int run_index) {
  exec::set_thread_budget(budget);
  spec.scheduler = kind;
  spec.trace.enabled = true;
  const std::string trace_path =
      "sched_equiv_" + std::to_string(run_index) + ".trace.json";
  spec.trace.path = trace_path;
  RealObs o{InvertResult{}, HostSpinorField(f.g), ""};
  o.r = invert_multi_gpu(spec, f.u, f.b, o.x, f.params);
  o.trace_json = slurp_export(trace_path);
  return o;
}

void expect_same_real(const RealObs& a, const RealObs& b, const Geometry& g,
                      const std::string& label) {
  EXPECT_EQ(a.r.stats.converged, b.r.stats.converged) << label;
  EXPECT_EQ(a.r.stats.iterations, b.r.stats.iterations) << label;
  EXPECT_EQ(a.r.stats.true_residual, b.r.stats.true_residual) << label;
  EXPECT_EQ(a.r.simulated_time_us, b.r.simulated_time_us) << label;
  EXPECT_EQ(a.r.effective_gflops, b.r.effective_gflops) << label;

  const FaultReport& fa = a.r.faults;
  const FaultReport& fb = b.r.faults;
  EXPECT_EQ(fa.drops, fb.drops) << label;
  EXPECT_EQ(fa.delays, fb.delays) << label;
  EXPECT_EQ(fa.corruptions, fb.corruptions) << label;
  EXPECT_EQ(fa.stalls, fb.stalls) << label;
  EXPECT_EQ(fa.retries, fb.retries) << label;
  EXPECT_EQ(fa.recovered, fb.recovered) << label;
  EXPECT_EQ(fa.rollbacks, fb.rollbacks) << label;
  EXPECT_EQ(fa.recovery_time_us, fb.recovery_time_us) << label;
  EXPECT_EQ(fa.recovery.failures, fb.recovery.failures) << label;
  EXPECT_EQ(fa.recovery.crashes, fb.recovery.crashes) << label;
  EXPECT_EQ(fa.recovery.hangs, fb.recovery.hangs) << label;
  EXPECT_EQ(fa.recovery.respawns, fb.recovery.respawns) << label;
  EXPECT_EQ(fa.recovery.checkpoints, fb.recovery.checkpoints) << label;
  EXPECT_EQ(fa.recovery.restores, fb.recovery.restores) << label;
  EXPECT_EQ(fa.recovery.detection_us, fb.recovery.detection_us) << label;
  EXPECT_EQ(fa.recovery.checkpoint_us, fb.recovery.checkpoint_us) << label;
  EXPECT_EQ(fa.recovery.restore_us, fb.recovery.restore_us) << label;
  EXPECT_EQ(fa.recovery.checkpoint_digest, fb.recovery.checkpoint_digest) << label;

  EXPECT_EQ(a.trace_json, b.trace_json)
      << label << ": exported trace (timestamps included) must be bit-identical";
  for (std::int64_t i = 0; i < g.volume(); ++i)
    ASSERT_EQ(norm2(a.x[i] - b.x[i]), 0.0) << label << " site " << i;
}

// CG on the normal equations with a seeded message-fault environment: the
// full reliable-messaging story (retries, degraded links, rollbacks) must
// replay identically under the fiber scheduler
TEST(SchedulerEquivalence, RealCGWithMessageFaults) {
  RealFixture f;
  // uniform-precision CG: the mixed-precision path is BiCGstab-only
  f.params.solver = SolverType::CG;
  f.params.sloppy.reset();
  f.params.retry.checksums = true;

  sim::ClusterSpec spec = sim::ClusterSpec::jlab_9g(4);
  spec.faults.seed = 31337;
  spec.faults.drop_rate = 0.02;
  spec.faults.delay_rate = 0.05;
  spec.faults.corrupt_rate = 0.01;

  int run_index = 0;
  const RealObs base = run_real(f, spec, sim::SchedulerKind::Threads, 1, run_index++);
  ASSERT_TRUE(base.r.stats.converged) << base.r.stats.summary();
  ASSERT_FALSE(base.r.faults.clean()) << "the fault injection must actually fire";
  ASSERT_FALSE(base.trace_json.empty());

  for (const sim::SchedulerKind kind :
       {sim::SchedulerKind::Threads, sim::SchedulerKind::Seq}) {
    for (const int budget : {1, 2, 8}) {
      const RealObs other = run_real(f, spec, kind, budget, run_index++);
      expect_same_real(base, other, f.g,
                       std::string(sim::scheduler_name(kind)) + " budget " +
                           std::to_string(budget));
    }
  }
  exec::set_thread_budget(0);
}

// rank crashes, heartbeat detection, and coordinated checkpoint/restart:
// the hardest scenario for the seq scheduler's deterministic deadlock
// protocol (survivors park on a dead peer, the watchdog must fire in
// simulated order, and the recovery rendezvous must reconverge)
TEST(SchedulerEquivalence, RealCrashRecoveryCheckpointRestart) {
  RealFixture f;

  exec::set_thread_budget(8);
  HostSpinorField x_clean(f.g);
  const InvertResult clean = invert_multi_gpu(sim::ClusterSpec::jlab_9g(4), f.u, f.b,
                                              x_clean, f.params);
  ASSERT_TRUE(clean.stats.converged) << clean.stats.summary();

  sim::ClusterSpec spec = sim::ClusterSpec::jlab_9g(4);
  spec.faults.seed = 4242;
  spec.faults.crash_rate = 0.35;
  spec.faults.crash_window_us = 0.5 * clean.simulated_time_us;

  int run_index = 100;
  const RealObs base = run_real(f, spec, sim::SchedulerKind::Threads, 1, run_index++);
  ASSERT_TRUE(base.r.stats.converged) << base.r.stats.summary();
  ASSERT_GT(base.r.faults.recovery.crashes, 0) << "the crash injection must actually fire";
  ASSERT_GT(base.r.faults.recovery.restores, 0);
  ASSERT_NE(base.r.faults.recovery.checkpoint_digest, 0u);
  ASSERT_FALSE(base.trace_json.empty());

  for (const sim::SchedulerKind kind :
       {sim::SchedulerKind::Threads, sim::SchedulerKind::Seq}) {
    for (const int budget : {1, 2, 8}) {
      const RealObs other = run_real(f, spec, kind, budget, run_index++);
      expect_same_real(base, other, f.g,
                       std::string(sim::scheduler_name(kind)) + " budget " +
                           std::to_string(budget));
    }
  }
  exec::set_thread_budget(0);
}

// --- scheduler selection and capacity ----------------------------------------

TEST(SchedulerCapacity, DefaultCapacityAndOverride) {
  EXPECT_EQ(sim::threads_scheduler_capacity(), 512);
  ::setenv("QUDA_SIM_MAX_RANK_THREADS", "3", 1);
  EXPECT_EQ(sim::threads_scheduler_capacity(), 3);
  ::setenv("QUDA_SIM_MAX_RANK_THREADS", "0", 1); // below the >= 1 floor: ignored
  EXPECT_EQ(sim::threads_scheduler_capacity(), 512);
  ::unsetenv("QUDA_SIM_MAX_RANK_THREADS");
  EXPECT_EQ(sim::threads_scheduler_capacity(), 512);
}

TEST(SchedulerCapacity, ThreadsOverCapacityRaisesTypedError) {
  ::setenv("QUDA_SIM_MAX_RANK_THREADS", "3", 1);
  sim::ClusterSpec spec = sim::ClusterSpec::jlab_9g(4);
  spec.scheduler = sim::SchedulerKind::Threads;
  sim::VirtualCluster cluster(spec);
  const ModeledSolverConfig cfg = modeled_config(CommPolicy::Overlap);
  bool threw = false;
  try {
    parallel::run_modeled_solver(cluster, cfg);
  } catch (const sim::SchedulerCapacityError& e) {
    threw = true;
    EXPECT_EQ(e.requested(), 4);
    EXPECT_EQ(e.capacity(), 3);
    // the message must name the escape hatch
    EXPECT_NE(std::string(e.what()).find("QUDA_SIM_SCHED=seq"), std::string::npos)
        << e.what();
  }
  EXPECT_TRUE(threw) << "4 ranks over a 3-thread capacity must refuse to run";

  // the same cluster size sails through under the cooperative scheduler
  sim::ClusterSpec seq_spec = sim::ClusterSpec::jlab_9g(4);
  seq_spec.scheduler = sim::SchedulerKind::Seq;
  sim::VirtualCluster seq_cluster(seq_spec);
  const ModeledSolverResult r = parallel::run_modeled_solver(seq_cluster, cfg);
  EXPECT_TRUE(r.fits);
  EXPECT_GT(r.effective_gflops, 0.0);
  ::unsetenv("QUDA_SIM_MAX_RANK_THREADS");
}

TEST(SchedulerResolve, ExplicitSpecBeatsEnvironment) {
  ::setenv("QUDA_SIM_SCHED", "seq", 1);
  EXPECT_EQ(sim::resolve_scheduler(sim::SchedulerKind::Threads),
            sim::SchedulerKind::Threads);
  EXPECT_EQ(sim::resolve_scheduler(sim::SchedulerKind::Seq), sim::SchedulerKind::Seq);
  EXPECT_EQ(sim::resolve_scheduler(sim::SchedulerKind::Auto), sim::SchedulerKind::Seq);
  ::setenv("QUDA_SIM_SCHED", "threads", 1);
  EXPECT_EQ(sim::resolve_scheduler(sim::SchedulerKind::Auto), sim::SchedulerKind::Threads);
  ::unsetenv("QUDA_SIM_SCHED");
  EXPECT_EQ(sim::resolve_scheduler(sim::SchedulerKind::Auto), sim::SchedulerKind::Threads);
}

TEST(SchedulerResolve, UnknownEnvValueIsLoud) {
  ::setenv("QUDA_SIM_SCHED", "fibers", 1);
  EXPECT_THROW(sim::resolve_scheduler(sim::SchedulerKind::Auto), std::invalid_argument);
  ::unsetenv("QUDA_SIM_SCHED");
}

TEST(SchedulerResolve, SchedulerNames) {
  EXPECT_STREQ(sim::scheduler_name(sim::SchedulerKind::Threads), "threads");
  EXPECT_STREQ(sim::scheduler_name(sim::SchedulerKind::Seq), "seq");
}

// the environment path end-to-end: Auto + QUDA_SIM_SCHED=seq runs the
// fiber scheduler and lands on the threads timeline bitwise
TEST(SchedulerResolve, EnvSelectedSeqMatchesThreads) {
  exec::set_thread_budget(2);
  const ModeledSolverConfig cfg = modeled_config(CommPolicy::Overlap);
  const ModeledObs threads = run_modeled(sim::SchedulerKind::Threads, 4, cfg);
  ::setenv("QUDA_SIM_SCHED", "seq", 1);
  const ModeledObs env_seq = run_modeled(sim::SchedulerKind::Auto, 4, cfg);
  ::unsetenv("QUDA_SIM_SCHED");
  expect_same_modeled(threads, env_seq, "env-selected seq");
  exec::set_thread_budget(0);
}

} // namespace
} // namespace quda
