// Seeded sim-bench-schema violation: mystery_metric is emitted but neither
// gated nor allowlisted.  time_us/iters are gated by the fixture manifest,
// halo_bytes and the dynamic kernel_* prefix are allowlisted, and table is
// a join key.  The manifest also gates ghost_metric, which no bench emits;
// expect_extra.json pins that manifest-anchored finding.
#include <string>
#include "solvers/solver.h"

namespace fix {

struct BenchJson {
  BenchJson& field(const std::string&, double) { return *this; }
};

void emit(BenchJson& row, const std::string& name) {
  row.field("table", 1)
      .field("time_us", 2)
      .field("iters", 3)
      .field("halo_bytes", 4)
      .field("kernel_" + name, 5)
      .field("mystery_metric", 6);  // EXPECT-SEM: sim-bench-schema
}

}  // namespace fix
