// Seeded sim-death-swallow violation: RankDeath growing a base class would
// make it catchable by generic std::exception handlers upstream of the
// transport paths, defeating the only-the-recovery-loop-catches-it design.
#pragma once
#include <stdexcept>

namespace fix {

struct RankDeath : std::runtime_error {  // EXPECT-SEM: sim-death-swallow
  using std::runtime_error::runtime_error;
};

}  // namespace fix
