// Seeded sim-wallclock-taint violations: a direct seed read, one-hop
// propagation through the call graph, an allowlisted watchdog edge, and a
// NOLINT-justified probe the self-test counts as an honored suppression.
#include "core/clock_shim.h"
#include "lattice/upward.h"

namespace fix {

double raw_read() { return wall_now(); }  // EXPECT-SEM: sim-wallclock-taint

double derived() { return raw_read() + 1.0; }  // EXPECT-SEM: sim-wallclock-taint

double allowed_watchdog() { return now_for_watchdog(); }

double justified_probe() {
  // NOLINT(sim-wallclock-taint): fixture-justified probe; the reading only
  // arms a fallback deadline and never feeds simulated time
  return raw_read();
}

int pure_path() { return face_iters(); }

}  // namespace fix
