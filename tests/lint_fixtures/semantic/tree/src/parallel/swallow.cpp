// Seeded sim-death-swallow violation plus every sanctioned repair: a bare
// swallow (the finding), a rethrow, an explicit guard call, a RankDeath-
// first handler chain, and a NOLINT-justified rendezvous boundary.
#include "sim/bad_death.h"

namespace fix {

inline void rethrow_if_rank_death() {}
void run_step();
void log_note(const char*);

void swallow_bad() {
  try {
    run_step();
  } catch (...) {  // EXPECT-SEM: sim-death-swallow
    log_note("swallowed");
  }
}

void swallow_rethrows() {
  try {
    run_step();
  } catch (...) {
    log_note("noted");
    throw;
  }
}

void swallow_guarded() {
  try {
    run_step();
  } catch (...) {
    rethrow_if_rank_death();
    log_note("not a death");
  }
}

void swallow_chained() {
  try {
    run_step();
  } catch (const RankDeath&) {
    throw;
  } catch (...) {
    log_note("non-death");
  }
}

void swallow_justified() {
  try {
    run_step();
    // NOLINT(sim-death-swallow): fixture boundary; the rendezvous stores
    // the exception_ptr and rethrows it on the issuing rank
  } catch (...) {
    log_note("stored");
  }
}

}  // namespace fix
