// Seeded sim-layering violation: lattice reaching up into solvers.
#pragma once
#include "solvers/solver.h"  // EXPECT-SEM: sim-layering

namespace fix {

inline int face_iters() { return solve_iters(); }

}  // namespace fix
