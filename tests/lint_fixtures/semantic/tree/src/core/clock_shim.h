// Fixture stand-in for src/core/wallclock.h: the fixture manifest lists
// this file under wallclock_taint.shim_files, so the seed definitions
// below neither taint nor produce findings.
#pragma once

namespace fix {

inline double wall_now() { return 0.0; }

inline double now_for_watchdog() { return wall_now(); }

}  // namespace fix
