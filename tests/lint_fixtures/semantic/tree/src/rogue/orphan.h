// EXPECT-SEM: sim-layering
// (this directory is deliberately absent from the fixture layer manifest,
// so the file itself is the finding, anchored on line 1)
#pragma once
