// Upper-layer header for the layering fixture: src/lattice must not
// include this (solvers sits above lattice in the fixture manifest).
#pragma once
#include "core/clock_shim.h"

namespace fix {

inline int solve_iters() { return 7; }

}  // namespace fix
