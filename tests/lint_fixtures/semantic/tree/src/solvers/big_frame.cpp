// Seeded sim-fiber-stack violations: a frame far over the 64 KiB budget
// and a two-function recursion cycle; the heap-backed repair and the
// manifest-allowlisted bounded pair stay clean.
#include <vector>
#include "solvers/solver.h"

namespace fix {

double overflow_frame() {  // EXPECT-SEM: sim-fiber-stack
  double buf[16384];
  for (int i = 0; i < 16384; ++i) buf[i] = i;
  return buf[0];
}

double heap_frame() {
  std::vector<double> buf(16384, 0.0);
  return buf[0];
}

int recurse_a(int n);
int recurse_b(int n) { return n <= 0 ? 0 : recurse_a(n - 1); }  // EXPECT-SEM: sim-fiber-stack
int recurse_a(int n) { return n <= 0 ? 1 : recurse_b(n - 1); }

int bounded_a(int n);
int bounded_b(int n) { return n <= 0 ? 0 : bounded_a(n / 2); }
int bounded_a(int n) { return n <= 0 ? 1 : bounded_b(n / 2); }

}  // namespace fix
