// Model-builder fixture: the other half of the deliberate include cycle.
#pragma once
#include "a/cycle_a.h"
