// Model-builder fixture: overload / namespace / class call resolution.
// ns_a::caller's bare helper(x) must bind to the same-namespace free
// helper, ns_a::cross_caller's qualified call must cross to ns_b, and
// Widget::spin's bare call must prefer the class member.
#include "a/cycle_a.h"

namespace ns_a {

int helper(int x) { return x + 1; }

struct Widget {
  int helper(int x) { return x + 2; }
  int spin(int x) { return helper(x); }
};

int caller(int x) { return helper(x); }

int cross_caller(int x) { return ns_b::helper(x); }

}  // namespace ns_a

namespace ns_b {

int helper(int x) { return x * 2; }

}  // namespace ns_b
