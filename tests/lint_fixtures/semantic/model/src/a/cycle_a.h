// Model-builder fixture: one half of a deliberate include cycle the
// --test-model pass must detect (and report exactly once).
#pragma once
#include "b/cycle_b.h"
