// Lint fixture (never compiled): seeded sim-nondeterminism violations.
// Every entropy / wall-clock source the rule bans must fire exactly on the
// marked lines; the shim src/core/wallclock.h is the only allowlisted reader.

int fixture_entropy() {
  int a = rand();                                  // EXPECT-LINT: sim-nondeterminism
  srand(42);                                       // EXPECT-LINT: sim-nondeterminism
  std::random_device rd;                           // EXPECT-LINT: sim-nondeterminism
  unsigned seed = 0;
  int b = rand_r(&seed);                           // EXPECT-LINT: sim-nondeterminism
  double c = drand48();                            // EXPECT-LINT: sim-nondeterminism
  return a + b + static_cast<int>(c) + static_cast<int>(rd());
}

double fixture_wall_clock() {
  auto t0 = std::chrono::steady_clock::now();      // EXPECT-LINT: sim-nondeterminism
  auto t1 = std::chrono::system_clock::now();      // EXPECT-LINT: sim-nondeterminism
  auto t2 = std::chrono::high_resolution_clock::now(); // EXPECT-LINT: sim-nondeterminism
  struct timeval tv;
  gettimeofday(&tv, nullptr);                      // EXPECT-LINT: sim-nondeterminism
  struct timespec ts;
  clock_gettime(0, &ts);                           // EXPECT-LINT: sim-nondeterminism
  timespec_get(&ts, 1);                            // EXPECT-LINT: sim-nondeterminism
  std::time_t now = 0;
  std::tm* cal = localtime(&now);                  // EXPECT-LINT: sim-nondeterminism
  (void)t0; (void)t1; (void)t2; (void)cal;
  return static_cast<double>(tv.tv_sec + ts.tv_sec);
}
