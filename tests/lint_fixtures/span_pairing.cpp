// LINT-AS: src/trace/fixture_span.cpp
// Lint fixture (never compiled): a captured `*begin*_us` timestamp that no
// later span() call consumes.  A begin time without its closing span leaves
// a half-recorded trace window -- the timeline silently loses the interval.

void fixture_unclosed_window(Ctx& ctx) {
  const double begin_us = ctx.clock().now_us;      // EXPECT-LINT: sim-span-pairing
  run_interior_kernel(ctx);
  double halo_begin_us = ctx.clock().now_us;       // EXPECT-LINT: sim-span-pairing
  run_halo_exchange(ctx);
}

void fixture_closed_window(Ctx& ctx) {
  // the blessed pattern: the begin time reaches a span() call
  const double pack_begin_us = ctx.clock().now_us;
  run_pack_kernel(ctx);
  ctx.tracer().span(trace::Cat::Kernel, "pack", pack_begin_us, ctx.clock().now_us);
}
