// Lint fixture (never compiled): a well-formed suppression silences the
// finding entirely -- the self-test asserts these lines produce NO report
// and that the suppressions are counted as honored.

int fixture_suppressed_entropy() {
  // NOLINT(sim-nondeterminism): fixture demonstrating an honored suppression
  return rand();
}

int fixture_suppressed_static() {
  static int memo = -1;  // NOLINT(sim-static-state): memoized pure value, fixture only
  if (memo < 0) memo = 7;
  return memo;
}
