// LINT-AS: src/sim/fixture_unordered.cpp
// Lint fixture (never compiled): iteration over unordered containers inside
// a sim-time-affecting layer.  Iteration order of unordered_map/set is
// implementation- and seed-dependent, so any simulated-time quantity folded
// over it would vary run to run; the rule demands an ordered container or an
// explicit ordering justification.

void fixture_unordered_iteration() {
  std::unordered_map<int, double> table;
  std::unordered_set<int> keys;
  std::map<int, double> sorted_table;

  double total = 0;
  for (const auto& kv : table) total += kv.second;  // EXPECT-LINT: sim-unordered-iter
  for (int k : keys) total += k;                    // EXPECT-LINT: sim-unordered-iter
  for (auto it = table.begin(); it != table.end(); ++it) // EXPECT-LINT: sim-unordered-iter
    total += it->second;

  // ordered containers iterate deterministically: no finding
  for (const auto& kv : sorted_table) total += kv.second;

  // SIM_ORDERED: commutative count, result independent of visitation order
  for (const auto& kv : table)
    if (kv.second > 0) total += 1;
}
