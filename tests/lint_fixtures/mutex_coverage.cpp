// Lint fixture (never compiled): the structural mutex-annotation coverage
// check.  Every mutex member must be named by at least one annotation, every
// condition variable must declare its pairing mutex, and every annotation
// must reference a mutex that is actually declared somewhere in the tree.

struct FixtureCovered {
  core::Mutex fixture_good_m;
  int guarded QUDA_GUARDED_BY(fixture_good_m);
  core::CondVar fixture_paired_cv QUDA_CV_WAITS_WITH(fixture_good_m);
};

struct FixtureUncovered {
  core::Mutex fixture_lonely_m;                       // EXPECT-LINT: sim-mutex-coverage
  core::CondVar fixture_naked_cv;                     // EXPECT-LINT: sim-mutex-coverage
  int ghost_field QUDA_GUARDED_BY(fixture_ghost_m);   // EXPECT-LINT: sim-mutex-coverage
};
