// LINT-AS: src/blas/fixture_accum.cpp
// Lint fixture (never compiled): raw += float accumulation in a loop inside
// src/blas.  Serial accumulation order differs from the fixed binary
// reduction tree exec::parallel_reduce builds, so dot products written this
// way would drift between thread budgets; the rule routes reductions through
// the helper.

double fixture_raw_accumulation(const double* v, int n) {
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += v[i];  // EXPECT-LINT: sim-float-accum
  float partial = 0;
  for (int i = 0; i < n; ++i) {
    partial += static_cast<float>(v[i]);    // EXPECT-LINT: sim-float-accum
  }
  return sum + partial;
}

double fixture_reduction_helper(const double* v, std::int64_t n) {
  // the blessed pattern: the addition tree is owned by parallel_reduce, so
  // the accumulation inside its region is exempt
  return exec::parallel_reduce(
      n, RSum{}, [&](std::int64_t i, RSum& acc) { acc.r += v[i]; },
      [](RSum& into, const RSum& from) { into.r += from.r; }).r;
}
