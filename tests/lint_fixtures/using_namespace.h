#pragma once
// Lint fixture (never compiled): `using namespace` at header scope leaks the
// whole namespace into every translation unit that includes the header.

using namespace quda::sim;           // EXPECT-LINT: sim-using-namespace-header

namespace quda::fixture {
using namespace std::chrono;         // EXPECT-LINT: sim-using-namespace-header

// fine: scoped aliases do not leak
using sim_clock = double;
}  // namespace quda::fixture
