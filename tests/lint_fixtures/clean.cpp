// Lint fixture (never compiled): a file every rule passes over in silence.
// The self-test treats any finding here as a false positive.

namespace quda::fixture {

struct Accumulator {
  double value = 0;
  void add(double x) { value += x; }  // member accumulation, not a loop fold
};

inline int clamp_index(int i, int n) {
  if (i < 0) return 0;
  if (i >= n) return n - 1;
  return i;
}

inline double weighted_sum(const std::map<int, double>& weights) {
  Accumulator acc;
  for (const auto& [k, w] : weights) acc.add(k * w);  // ordered: deterministic
  return acc.value;
}

}  // namespace quda::fixture
