// Lint fixture (never compiled): mutable function-local static state.  Such
// state persists across calls and across tests in the same process, so two
// runs of the same function can diverge; the rule demands a justification.

int fixture_call_counter() {
  static int calls = 0;              // EXPECT-LINT: sim-static-state
  return ++calls;
}

const char* fixture_scratch() {
  static char buffer[64];            // EXPECT-LINT: sim-static-state
  return buffer;
}

int fixture_immutable_table(int i) {
  // fine: immutable statics cannot carry state between calls
  static const int table[4] = {3, 1, 4, 1};
  static constexpr double scale = 2.25;
  return static_cast<int>(table[i & 3] * scale);
}
