// Lint fixture (never compiled): malformed suppressions are themselves
// findings -- a suppression comment must name the rule(s) and give a
// reason, and an ordering justification must carry a non-empty reason.
// sim-bad-suppression is the one rule that can never be suppressed.

int fixture_bare_nolint() {
  static int a = 1;  // NOLINT -- EXPECT-LINT: sim-bad-suppression, sim-static-state
  return a;
}

int fixture_unknown_rule() {
  static int b = 2;  // NOLINT(sim-no-such-rule): text -- EXPECT-LINT: sim-bad-suppression, sim-static-state
  return b;
}

int fixture_missing_reason() {
  // EXPECT-LINT-NEXT: sim-bad-suppression
  // NOLINT(sim-static-state)
  static int c = 3;                // EXPECT-LINT: sim-static-state
  return c;
}

// EXPECT-LINT-NEXT: sim-bad-suppression
// SIM_ORDERED
// EXPECT-LINT-NEXT: sim-bad-suppression
// SIM_ORDERED:
