// Unit tests: gamma-matrix algebra in both bases, the numerically-derived
// basis rotation, spin projectors, and the fast projection/reconstruction
// path used by the dslash kernels.

#include "su3/gamma.h"

#include <gtest/gtest.h>

#include <random>

namespace quda {
namespace {

Spinor<double> random_spinor(std::mt19937_64& rng) {
  std::normal_distribution<double> d(0.0, 1.0);
  Spinor<double> s;
  for (std::size_t spin = 0; spin < 4; ++spin)
    for (std::size_t c = 0; c < 3; ++c) s.s[spin][c] = complexd(d(rng), d(rng));
  return s;
}

class GammaBases : public ::testing::TestWithParam<GammaBasis> {};

TEST_P(GammaBases, CliffordAlgebra) {
  const GammaBasis basis = GetParam();
  for (int mu = 0; mu < 4; ++mu)
    for (int nu = 0; nu < 4; ++nu) {
      const SpinMatrix anti = gamma(basis, mu) * gamma(basis, nu) +
                              gamma(basis, nu) * gamma(basis, mu);
      SpinMatrix expect;
      if (mu == nu) {
        expect = SpinMatrix::identity();
        expect *= complexd(2.0);
      }
      EXPECT_LT(frobenius_dist2(anti, expect), 1e-24)
          << "{gamma_" << mu << ", gamma_" << nu << "} != 2 delta";
    }
}

TEST_P(GammaBases, GammasAreHermitianAndUnitary) {
  const GammaBasis basis = GetParam();
  for (int mu = 0; mu < 4; ++mu) {
    const SpinMatrix& g = gamma(basis, mu);
    EXPECT_LT(frobenius_dist2(g, adjoint(g)), 1e-24);
    EXPECT_LT(frobenius_dist2(g * g, SpinMatrix::identity()), 1e-24);
  }
}

TEST_P(GammaBases, Gamma5AnticommutesWithGammas) {
  const GammaBasis basis = GetParam();
  const SpinMatrix& g5 = gamma5(basis);
  EXPECT_LT(frobenius_dist2(g5 * g5, SpinMatrix::identity()), 1e-24);
  for (int mu = 0; mu < 4; ++mu) {
    const SpinMatrix anti = g5 * gamma(basis, mu) + gamma(basis, mu) * g5;
    EXPECT_LT(frobenius_dist2(anti, SpinMatrix::zero()), 1e-24);
  }
}

TEST_P(GammaBases, SigmaMunuHermitianAndChiral) {
  const GammaBasis basis = GetParam();
  const SpinMatrix& g5 = gamma5(basis);
  for (int mu = 0; mu < 4; ++mu)
    for (int nu = mu + 1; nu < 4; ++nu) {
      const SpinMatrix s = sigma_munu(basis, mu, nu);
      EXPECT_LT(frobenius_dist2(s, adjoint(s)), 1e-24) << "sigma not Hermitian";
      EXPECT_LT(frobenius_dist2(s * g5, g5 * s), 1e-24) << "sigma does not commute with g5";
    }
}

INSTANTIATE_TEST_SUITE_P(BothBases, GammaBases,
                         ::testing::Values(GammaBasis::DeGrandRossi,
                                           GammaBasis::NonRelativistic),
                         [](const auto& info) {
                           return info.param == GammaBasis::DeGrandRossi ? "DeGrandRossi"
                                                                         : "NonRelativistic";
                         });

TEST(GammaBasisSpecifics, DRGamma5IsDiagonal) {
  const SpinMatrix& g5 = gamma5(GammaBasis::DeGrandRossi);
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 4; ++c)
      if (r != c) EXPECT_LT(norm2(g5.e[r][c]), 1e-24);
}

TEST(GammaBasisSpecifics, NRTemporalProjectorsAreDiagonal) {
  // the paper's equation (6): in the non-relativistic basis P+4 =
  // diag(2,2,0,0) and P-4 = diag(0,0,2,2)
  const SpinMatrix pp = projector(GammaBasis::NonRelativistic, 3, +1);
  const SpinMatrix pm = projector(GammaBasis::NonRelativistic, 3, -1);
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 4; ++c) {
      if (r != c) {
        EXPECT_LT(norm2(pp.e[r][c]), 1e-24);
        EXPECT_LT(norm2(pm.e[r][c]), 1e-24);
      }
    }
  EXPECT_NEAR(pp.e[0][0].re, 2.0, 1e-14);
  EXPECT_NEAR(pp.e[1][1].re, 2.0, 1e-14);
  EXPECT_NEAR(pp.e[2][2].re, 0.0, 1e-14);
  EXPECT_NEAR(pm.e[3][3].re, 2.0, 1e-14);
}

TEST(BasisRotation, IntertwinesAllGammas) {
  const SpinMatrix& s = basis_rotation_dr_to_nr();
  // unitary
  EXPECT_LT(frobenius_dist2(s * adjoint(s), SpinMatrix::identity()), 1e-20);
  for (int mu = 0; mu < 4; ++mu) {
    const SpinMatrix rotated = s * gamma(GammaBasis::DeGrandRossi, mu) * adjoint(s);
    EXPECT_LT(frobenius_dist2(rotated, gamma(GammaBasis::NonRelativistic, mu)), 1e-20)
        << "rotation fails for mu = " << mu;
  }
}

TEST(BasisRotation, RotateBasisRoundTrip) {
  std::mt19937_64 rng(11);
  const Spinor<double> psi = random_spinor(rng);
  const Spinor<double> nr =
      rotate_basis(GammaBasis::DeGrandRossi, GammaBasis::NonRelativistic, psi);
  const Spinor<double> back =
      rotate_basis(GammaBasis::NonRelativistic, GammaBasis::DeGrandRossi, nr);
  EXPECT_NEAR(norm2(psi - back), 0.0, 1e-24);
  EXPECT_NEAR(norm2(nr), norm2(psi), 1e-12); // unitary
}

TEST(ChiralTransform, DiagonalizesGamma5) {
  const SpinMatrix& w = chiral_transform();
  EXPECT_LT(frobenius_dist2(w * adjoint(w), SpinMatrix::identity()), 1e-20);
  const SpinMatrix d = adjoint(w) * gamma5(GammaBasis::NonRelativistic) * w;
  EXPECT_NEAR(d.e[0][0].re, 1.0, 1e-12);
  EXPECT_NEAR(d.e[1][1].re, 1.0, 1e-12);
  EXPECT_NEAR(d.e[2][2].re, -1.0, 1e-12);
  EXPECT_NEAR(d.e[3][3].re, -1.0, 1e-12);
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 4; ++c)
      if (r != c) EXPECT_LT(norm2(d.e[r][c]), 1e-20);
}

struct ProjCase {
  int mu;
  int sign;
};

class Projection : public ::testing::TestWithParam<ProjCase> {};

TEST_P(Projection, ProjectorSquaredIsTwiceProjector) {
  const auto [mu, sign] = GetParam();
  const SpinMatrix p = projector(GammaBasis::NonRelativistic, mu, sign);
  SpinMatrix twice = p;
  twice *= complexd(2.0);
  EXPECT_LT(frobenius_dist2(p * p, twice), 1e-24);
}

TEST_P(Projection, FastPathMatchesDenseProjector) {
  const auto [mu, sign] = GetParam();
  std::mt19937_64 rng(mu * 17 + sign + 100);
  const Spinor<double> psi = random_spinor(rng);

  // dense: (1 + sign*gamma_mu) psi
  const SpinMatrix p = projector(GammaBasis::NonRelativistic, mu, sign);
  const Spinor<double> dense = apply_spin(p, psi);

  // fast: project to half spinor, reconstruct
  const HalfSpinor<double> h = project(mu, sign, psi);
  Spinor<double> fast{};
  reconstruct_add(mu, sign, h, fast);

  EXPECT_LT(norm2(dense - fast), 1e-24)
      << "projection path mismatch at mu=" << mu << " sign=" << sign;
}

INSTANTIATE_TEST_SUITE_P(AllDirections, Projection,
                         ::testing::Values(ProjCase{0, +1}, ProjCase{0, -1}, ProjCase{1, +1},
                                           ProjCase{1, -1}, ProjCase{2, +1}, ProjCase{2, -1},
                                           ProjCase{3, +1}, ProjCase{3, -1}),
                         [](const auto& info) {
                           return "mu" + std::to_string(info.param.mu) +
                                  (info.param.sign > 0 ? "_plus" : "_minus");
                         });

} // namespace
} // namespace quda
