// Critical-path analyzer tests (src/trace/critpath, src/trace/attribution).
//
// The analyzer's contract is exactness, so the tests assert bitwise and
// near-machine-precision identities, not tolerances-of-convenience:
//   * the backward walk's path length equals the end-to-end simulated time
//     EXACTLY (the walk uses only recorded doubles and recomputes every
//     cross-rank arrival with the same expression the simulator used);
//   * the typed segments tile [0, makespan], so the attribution categories
//     sum to the path length;
//   * the forward replay with unedited weights reproduces the makespan, and
//     every monotone what-if projection is bracketed by the compute bound
//     below and the measured time above;
//   * the paper's qualitative structure shows up in the attribution:
//     NoOverlap exposes far more communication than Overlap at fig5 sizes.

#include "core/quda_api.h"
#include "dirac/gauge_init.h"
#include "parallel/modeled_solver.h"
#include "trace/attribution.h"
#include "trace/critpath.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>

namespace quda {
namespace {

using parallel::ModeledSolverConfig;
using parallel::ModeledSolverResult;

struct AnalyzedRun {
  ModeledSolverResult result;
  trace::CritSummary crit; // re-derived from the raw report (independent of
                           // the copy run_modeled_solver attaches)
  double makespan_us = 0;
};

AnalyzedRun run_analyzed(int ranks, const ModeledSolverConfig& cfg,
                         const sim::FaultConfig& faults = {}) {
  sim::ClusterSpec spec = sim::ClusterSpec::jlab_9g(ranks);
  spec.trace.enabled = true;
  spec.faults = faults;
  sim::VirtualCluster cluster(spec);
  AnalyzedRun a;
  a.result = parallel::run_modeled_solver(cluster, cfg);
  a.crit = trace::analyze_solve(cluster.trace(),
                                trace::ModelConfig{spec.device.dual_copy_engine});
  a.makespan_us = cluster.makespan_us();
  return a;
}

// fig5(b)-sized local problem: global 24^3 x 32 over 2 GPUs
ModeledSolverConfig fig5_config(CommPolicy policy, int iterations = 30) {
  ModeledSolverConfig cfg;
  cfg.local = LatticeDims{24, 24, 24, 16};
  cfg.outer = Precision::Single;
  cfg.sloppy = Precision::Half;
  cfg.policy = policy;
  cfg.iterations = iterations;
  cfg.reliable_interval = 10;
  return cfg;
}

double cat_sum(const trace::CritSummary& c) {
  double s = 0;
  for (int i = 0; i < trace::kNumPathCats; ++i) s += c.cat_us[i];
  return s;
}

// --- exactness invariants on real solves -------------------------------------

class CritPathPolicies : public ::testing::TestWithParam<CommPolicy> {};

TEST_P(CritPathPolicies, PathLengthEqualsEndToEndTimeExactly) {
  const AnalyzedRun a = run_analyzed(2, fig5_config(GetParam()));
  ASSERT_TRUE(a.result.fits);
  ASSERT_TRUE(a.crit.valid) << a.crit.error;
  // bitwise: the walk closed at t == 0 and every segment endpoint is a
  // recorded double, so no epsilon is needed or tolerated
  EXPECT_EQ(a.crit.path_us, a.result.time_us);
  EXPECT_EQ(a.crit.makespan_us, a.makespan_us);
  EXPECT_GE(a.crit.critical_rank, 0);
  EXPECT_LT(a.crit.critical_rank, 2);
  EXPECT_GT(a.crit.segments, 0u);
}

TEST_P(CritPathPolicies, CategoriesTileTheCriticalPath) {
  const AnalyzedRun a = run_analyzed(2, fig5_config(GetParam()));
  ASSERT_TRUE(a.crit.valid) << a.crit.error;
  // the sum re-associates many recorded doubles, so allow rounding only
  EXPECT_NEAR(cat_sum(a.crit), a.crit.path_us, 1e-9 * a.crit.path_us);
  for (int i = 0; i < trace::kNumPathCats; ++i)
    EXPECT_GE(a.crit.cat_us[i], 0.0) << trace::path_cat_name(static_cast<trace::PathCat>(i));
}

TEST_P(CritPathPolicies, WhatIfProjectionsAreBracketed) {
  const AnalyzedRun a = run_analyzed(2, fig5_config(GetParam()));
  ASSERT_TRUE(a.crit.valid) << a.crit.error;
  // monotone max-plus: removing edge weight can only shrink the makespan,
  // and kernel time per stream survives every projection
  EXPECT_GT(a.crit.compute_bound_us, 0.0);
  EXPECT_LE(a.crit.compute_bound_us, a.crit.whatif_zero_latency_us);
  EXPECT_LE(a.crit.whatif_zero_latency_us, a.crit.makespan_us);
  EXPECT_LE(a.crit.whatif_free_pcie_us, a.crit.makespan_us);
  EXPECT_LE(a.crit.whatif_infinite_overlap_us, a.crit.makespan_us);
  // identity replay re-derives the recorded schedule
  EXPECT_NEAR(a.crit.replay_identity_us, a.crit.makespan_us, 1e-6 * a.crit.makespan_us);
}

TEST_P(CritPathPolicies, AnalysisIsDeterministicAcrossRuns) {
  const AnalyzedRun a = run_analyzed(2, fig5_config(GetParam(), /*iterations=*/10));
  const AnalyzedRun b = run_analyzed(2, fig5_config(GetParam(), /*iterations=*/10));
  ASSERT_TRUE(a.crit.valid) << a.crit.error;
  ASSERT_TRUE(b.crit.valid) << b.crit.error;
  EXPECT_EQ(a.crit.path_us, b.crit.path_us);
  EXPECT_EQ(a.crit.critical_rank, b.crit.critical_rank);
  EXPECT_EQ(a.crit.segments, b.crit.segments);
  EXPECT_EQ(a.crit.cross_rank_jumps, b.crit.cross_rank_jumps);
  for (int i = 0; i < trace::kNumPathCats; ++i) EXPECT_EQ(a.crit.cat_us[i], b.crit.cat_us[i]);
}

INSTANTIATE_TEST_SUITE_P(BothPolicies, CritPathPolicies,
                         ::testing::Values(CommPolicy::Overlap, CommPolicy::NoOverlap),
                         [](const ::testing::TestParamInfo<CommPolicy>& info) {
                           return info.param == CommPolicy::Overlap ? "Overlap" : "NoOverlap";
                         });

// --- the paper's structure in the attribution --------------------------------

TEST(CritPathAttribution, NoOverlapExposesMoreCommThanOverlap) {
  const AnalyzedRun no = run_analyzed(2, fig5_config(CommPolicy::NoOverlap));
  const AnalyzedRun ov = run_analyzed(2, fig5_config(CommPolicy::Overlap));
  ASSERT_TRUE(no.crit.valid) << no.crit.error;
  ASSERT_TRUE(ov.crit.valid) << ov.crit.error;
  // the whole point of the overlapped pipeline: communication leaves the
  // critical path.  At fig5(b) sizes the gap is large, not marginal.
  EXPECT_GT(no.crit.exposed_comm_us(), 2.0 * ov.crit.exposed_comm_us());
  // both runs are compute-dominated at this local volume
  EXPECT_GT(no.crit.interior_us() + no.crit.boundary_us(), no.crit.exposed_comm_us());
}

TEST(CritPathAttribution, SoloRankHasNoExposedCommAndNoRankHops) {
  ModeledSolverConfig cfg = fig5_config(CommPolicy::Overlap);
  cfg.local = LatticeDims{24, 24, 24, 32};
  const AnalyzedRun a = run_analyzed(1, cfg);
  ASSERT_TRUE(a.result.fits);
  ASSERT_TRUE(a.crit.valid) << a.crit.error;
  EXPECT_EQ(a.crit.path_us, a.result.time_us);
  EXPECT_EQ(a.crit.cross_rank_jumps, 0);
  EXPECT_EQ(a.crit.critical_rank, 0);
  // a 1-rank solve has no halo messages to expose (the boundary kernels
  // still run: periodic wrap within the rank)
  EXPECT_DOUBLE_EQ(a.crit.exposed_comm_us(), 0.0);
}

TEST(CritPathAttribution, WalkStaysExactUnderFaultInjection) {
  // retransmissions, checksum failures and stalls reshape the DAG but every
  // edge is still recorded, so the walk must still close at time zero
  sim::FaultConfig faults;
  faults.seed = 7;
  faults.drop_rate = 2e-3;
  faults.corrupt_rate = 2e-3;
  ModeledSolverConfig cfg = fig5_config(CommPolicy::Overlap);
  cfg.local = LatticeDims{8, 8, 8, 16};
  cfg.iterations = 60;
  cfg.retry.checksums = true;
  cfg.retry.max_retries = 6;
  const AnalyzedRun a = run_analyzed(4, cfg, faults);
  ASSERT_TRUE(a.crit.valid) << a.crit.error;
  EXPECT_GT(a.result.faults.retries, 0) << "faults must actually fire";
  EXPECT_EQ(a.crit.path_us, a.result.time_us);
  EXPECT_NEAR(cat_sum(a.crit), a.crit.path_us, 1e-9 * a.crit.path_us);
}

TEST(CritPathAttribution, SolverResultCarriesTheSameSummary) {
  // run_modeled_solver attaches the analysis; it must match a re-derivation
  // from the same report
  const AnalyzedRun a = run_analyzed(2, fig5_config(CommPolicy::Overlap, /*iterations=*/10));
  ASSERT_TRUE(a.result.traced);
  ASSERT_TRUE(a.result.critpath.valid) << a.result.critpath.error;
  EXPECT_EQ(a.result.critpath.path_us, a.crit.path_us);
  for (int i = 0; i < trace::kNumPathCats; ++i)
    EXPECT_EQ(a.result.critpath.cat_us[i], a.crit.cat_us[i]);
}

// --- degenerate inputs and rendering -----------------------------------------

TEST(CritPathDegenerate, EmptyReportIsInvalidWithError) {
  trace::TraceReport empty;
  const trace::CritSummary c = trace::analyze_solve(empty);
  EXPECT_FALSE(c.valid);
  EXPECT_FALSE(c.error.empty());
  EXPECT_EQ(c.path_us, 0.0);
  // the renderer must degrade gracefully, not crash or print a table of zeros
  const std::string table = trace::attribution_table(c);
  EXPECT_NE(table.find("unavailable"), std::string::npos);
}

TEST(CritPathDegenerate, UntracedRunYieldsInvalidSummary) {
  sim::ClusterSpec spec = sim::ClusterSpec::jlab_9g(2);
  sim::VirtualCluster cluster(spec);
  const ModeledSolverResult r =
      parallel::run_modeled_solver(cluster, fig5_config(CommPolicy::Overlap, 5));
  ASSERT_TRUE(r.fits);
  EXPECT_FALSE(r.traced);
  EXPECT_FALSE(r.critpath.valid);
}

TEST(CritPathDegenerate, AttributionTableNamesEveryCategory) {
  const AnalyzedRun a = run_analyzed(2, fig5_config(CommPolicy::Overlap, /*iterations=*/10));
  ASSERT_TRUE(a.crit.valid) << a.crit.error;
  const std::string table = trace::attribution_table(a.crit);
  ASSERT_FALSE(table.empty());
  for (int i = 0; i < trace::kNumPathCats; ++i)
    EXPECT_NE(table.find(trace::path_cat_name(static_cast<trace::PathCat>(i))),
              std::string::npos)
        << table;
  EXPECT_NE(table.find("what-if"), std::string::npos) << table;
}

// --- full public-API run (Real execution mode) -------------------------------

TEST(CritPathApi, InvertAttributesItsFullTimeline) {
  // the analyzer must close over a complete invertQuda-style run -- setup,
  // reordering, mixed-precision solve, reliable updates -- not just the
  // modeled inner loop
  Geometry g{LatticeDims{4, 4, 4, 8}};
  HostGaugeField u(g);
  HostSpinorField b(g), x(g);
  make_weak_field_gauge(u, 0.2, 9000);
  make_random_spinor(b, 9001);
  InvertParams params;
  params.mass = 0.1;
  params.tol = 1e-6;
  params.precision = Precision::Single;
  params.max_iter = 500;

  sim::ClusterSpec spec = sim::ClusterSpec::jlab_9g(2);
  spec.trace.enabled = true;
  const InvertResult r = invert_multi_gpu(spec, u, b, x, params);
  EXPECT_TRUE(r.stats.converged) << r.stats.summary();
  ASSERT_TRUE(r.traced);
  ASSERT_TRUE(r.critpath.valid) << r.critpath.error;
  // the attribution covers the whole timeline; simulated_time_us is the
  // solve window only (setup excluded), so the path strictly contains it
  EXPECT_EQ(r.critpath.path_us, r.critpath.makespan_us);
  EXPECT_GE(r.critpath.path_us, r.simulated_time_us);
  EXPECT_NEAR(cat_sum(r.critpath), r.critpath.path_us, 1e-9 * r.critpath.path_us);
  EXPECT_GT(r.critpath.compute_bound_us, 0.0);
  EXPECT_LE(r.critpath.whatif_zero_latency_us, r.critpath.makespan_us);
}

} // namespace
} // namespace quda
