// Integration tests for the multi-dimensional decomposition (the paper's
// Section VI-A "future work", implemented here): the halo-exchanged dslash
// and solver on 2-D, 3-D and 4-D rank grids must reproduce the reference
// results exactly, for both communication policies.

#include "core/partition.h"
#include "dirac/gauge_init.h"
#include "dirac/transfer.h"
#include "dirac/wilson_ref.h"
#include "parallel/halo_dslash.h"
#include "parallel/parallel_op.h"
#include "sim/event_sim.h"
#include "solvers/bicgstab.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

namespace quda {
namespace {

using comm::GridTopology;
using parallel::HaloDslashConfig;
using sim::ClusterSpec;
using sim::RankContext;
using sim::VirtualCluster;

double rel_dist2(const HostSpinorField& a, const HostSpinorField& b) {
  double num = 0, den = 0;
  for (std::int64_t i = 0; i < a.geom().volume(); ++i) {
    num += norm2(a[i] - b[i]);
    den += norm2(b[i]);
  }
  return num / den;
}

template <typename P>
HostSpinorField md_parallel_hopping(const HostGaugeField& gauge, const HostSpinorField& in,
                                    const GridTopology& topo, CommPolicy policy,
                                    TimeBoundary bc) {
  const Geometry& gg = gauge.geom();
  const int n_ranks = topo.num_ranks();
  VirtualCluster cluster(ClusterSpec::jlab_9g(n_ranks));
  std::vector<HostSpinorField> outs(static_cast<std::size_t>(n_ranks));

  cluster.run([&](RankContext& ctx) {
    comm::QmpGrid grid(ctx, topo);
    const int rank = ctx.rank();
    const Geometry lg = core::local_geometry(gg, topo);
    const PartitionMask mask = topo.partition_mask();

    const HostGaugeField lu = core::slice_gauge(gauge, topo, rank);
    const HostSpinorField lin = core::slice_spinor(in, topo, rank);

    GaugeField<P> dev_u = upload_gauge<P>(lu, Reconstruct::Twelve);
    parallel::exchange_gauge_ghost<P>(grid, lg, &dev_u, Execution::Real);

    SpinorField<P> in_e = upload_spinor<P>(lin, Parity::Even, mask);
    SpinorField<P> in_o = upload_spinor<P>(lin, Parity::Odd, mask);
    SpinorField<P> out_e(lg, mask), out_o(lg, mask);

    HaloDslashConfig cfg;
    cfg.policy = policy;
    cfg.exec = Execution::Real;
    cfg.time_bc = bc;

    cfg.out_parity = Parity::Even;
    parallel::halo_dslash<P>(grid, lg, cfg, {&out_e, &dev_u, &in_o});
    cfg.out_parity = Parity::Odd;
    parallel::halo_dslash<P>(grid, lg, cfg, {&out_o, &dev_u, &in_e});

    HostSpinorField lout(lg);
    download_spinor(out_e, Parity::Even, lout);
    download_spinor(out_o, Parity::Odd, lout);
    outs[static_cast<std::size_t>(rank)] = lout;
  });

  HostSpinorField global_out(gg);
  for (int r = 0; r < n_ranks; ++r)
    core::merge_spinor(global_out, outs[static_cast<std::size_t>(r)], topo, r);
  return global_out;
}

struct MdCase {
  GridTopology topo;
  CommPolicy policy;
  TimeBoundary bc;
  const char* name;
};

class MultiDimDslash : public ::testing::TestWithParam<MdCase> {};

TEST_P(MultiDimDslash, MatchesReferenceDouble) {
  const auto& c = GetParam();
  const Geometry g({4, 4, 4, 8});
  HostGaugeField u(g);
  HostSpinorField in(g), ref(g);
  make_random_gauge(u, 11000);
  make_random_spinor(in, 11001);

  WilsonParams wp;
  wp.time_bc = c.bc;
  apply_hopping_ref(u, in, ref, wp);

  const HostSpinorField out = md_parallel_hopping<PrecDouble>(u, in, c.topo, c.policy, c.bc);
  EXPECT_LT(rel_dist2(out, ref), 1e-24);
}

TEST_P(MultiDimDslash, MatchesReferenceHalf) {
  const auto& c = GetParam();
  const Geometry g({4, 4, 4, 8});
  HostGaugeField u(g);
  HostSpinorField in(g), ref(g);
  make_random_gauge(u, 12000);
  make_random_spinor(in, 12001);

  WilsonParams wp;
  wp.time_bc = c.bc;
  apply_hopping_ref(u, in, ref, wp);

  const HostSpinorField out = md_parallel_hopping<PrecHalf>(u, in, c.topo, c.policy, c.bc);
  EXPECT_LT(rel_dist2(out, ref), 1e-5);
}

INSTANTIATE_TEST_SUITE_P(
    Grids, MultiDimDslash,
    ::testing::Values(
        MdCase{{{1, 1, 2, 2}}, CommPolicy::Overlap, TimeBoundary::Periodic, "zt_overlap"},
        MdCase{{{1, 1, 2, 2}}, CommPolicy::NoOverlap, TimeBoundary::Antiperiodic,
               "zt_noOverlap_apbc"},
        MdCase{{{2, 1, 1, 2}}, CommPolicy::Overlap, TimeBoundary::Antiperiodic,
               "xt_overlap_apbc"},
        MdCase{{{1, 2, 2, 2}}, CommPolicy::Overlap, TimeBoundary::Periodic, "yzt_overlap"},
        MdCase{{{2, 2, 2, 2}}, CommPolicy::NoOverlap, TimeBoundary::Periodic, "xyzt_noOverlap"},
        MdCase{{{2, 2, 2, 2}}, CommPolicy::Overlap, TimeBoundary::Antiperiodic,
               "xyzt_overlap_apbc"},
        MdCase{{{1, 1, 2, 1}}, CommPolicy::Overlap, TimeBoundary::Periodic, "pure_z_overlap"}),
    [](const auto& info) { return info.param.name; });

TEST(MultiDimDslash, OverlapAndNoOverlapBitIdentical) {
  const Geometry g({4, 4, 4, 8});
  HostGaugeField u(g);
  HostSpinorField in(g);
  make_random_gauge(u, 13000);
  make_random_spinor(in, 13001);
  const GridTopology topo{{2, 1, 2, 2}};

  const HostSpinorField a =
      md_parallel_hopping<PrecDouble>(u, in, topo, CommPolicy::NoOverlap, TimeBoundary::Periodic);
  const HostSpinorField b =
      md_parallel_hopping<PrecDouble>(u, in, topo, CommPolicy::Overlap, TimeBoundary::Periodic);
  for (std::int64_t i = 0; i < g.volume(); ++i) EXPECT_EQ(norm2(a[i] - b[i]), 0.0);
}

TEST(MultiDim, InteriorSiteCount) {
  const Geometry g({8, 8, 8, 8});
  EXPECT_EQ(parallel::interior_sites(g, {false, false, false, true}), 8 * 8 * 8 * 6 / 2);
  EXPECT_EQ(parallel::interior_sites(g, {false, false, true, true}), 8 * 8 * 6 * 6 / 2);
  EXPECT_EQ(parallel::interior_sites(g, {true, true, true, true}), 6 * 6 * 6 * 6 / 2);
  EXPECT_EQ(parallel::interior_sites(g, {false, false, false, false}), g.half_volume());
}

TEST(MultiDim, TopologyRoundTrip) {
  const GridTopology topo{{2, 3, 1, 4}};
  EXPECT_EQ(topo.num_ranks(), 24);
  for (int r = 0; r < topo.num_ranks(); ++r) EXPECT_EQ(topo.rank_of(topo.coords(r)), r);
  EXPECT_TRUE(topo.partitioned(0));
  EXPECT_FALSE(topo.partitioned(2));
}

TEST(MultiDim, FaceIndexBijectivePerDirection) {
  const Geometry g({4, 6, 4, 8});
  for (int mu = 0; mu < 4; ++mu) {
    for (int par = 0; par < 2; ++par) {
      const Parity parity = par == 0 ? Parity::Even : Parity::Odd;
      const int slice = g.dims()[mu] - 1;
      std::vector<bool> seen(static_cast<std::size_t>(g.face_sites(mu)), false);
      for (std::int64_t fs = 0; fs < g.face_sites(mu); ++fs) {
        const Coords c = g.face_site_coords(mu, parity, slice, fs);
        EXPECT_EQ(c[mu], slice);
        EXPECT_EQ(Geometry::site_parity(c), parity);
        EXPECT_EQ(g.face_index(mu, c), fs);
        EXPECT_FALSE(seen[static_cast<std::size_t>(fs)]);
        seen[static_cast<std::size_t>(fs)] = true;
      }
    }
  }
}

TEST(MultiDimSolver, TwoDimensionalSolveMatchesReference) {
  const Geometry g({4, 4, 4, 8});
  HostGaugeField u(g);
  HostSpinorField b(g);
  make_weak_field_gauge(u, 0.2, 14000);
  make_random_spinor(b, 14001);
  const double mass = 0.1, csw = 1.0;
  HostCloverField t = make_clover_term(u, csw);
  add_diag(t, 4.0 + mass);
  const HostCloverField tinv = invert_clover(t);

  const GridTopology topo{{1, 1, 2, 2}};
  const int n_ranks = topo.num_ranks();
  VirtualCluster cluster(ClusterSpec::jlab_9g(n_ranks));
  std::vector<HostSpinorField> xs(static_cast<std::size_t>(n_ranks));
  std::vector<SolverStats> stats(static_cast<std::size_t>(n_ranks));

  cluster.run([&](RankContext& ctx) {
    comm::QmpGrid grid(ctx, topo);
    const int rank = ctx.rank();
    const Geometry lg = core::local_geometry(g, topo);
    const PartitionMask mask = topo.partition_mask();

    const HostGaugeField lu = core::slice_gauge(u, topo, rank);
    const HostCloverField lt = core::slice_clover(t, topo, rank);
    const HostCloverField ltinv = core::slice_clover(tinv, topo, rank);
    const HostSpinorField lb = core::slice_spinor(b, topo, rank);

    GaugeField<PrecDouble> dev_u = upload_gauge<PrecDouble>(lu, Reconstruct::Twelve);
    parallel::exchange_gauge_ghost<PrecDouble>(grid, lg, &dev_u, Execution::Real);
    const CloverField<PrecDouble> dev_t = upload_clover<PrecDouble>(lt);
    const CloverField<PrecDouble> dev_tinv = upload_clover<PrecDouble>(ltinv);

    OperatorParams params;
    params.mass = mass;
    params.time_bc = TimeBoundary::Antiperiodic;
    parallel::ParallelWilsonCloverOp<PrecDouble> op(grid, lg, dev_u, dev_t, dev_tinv, params,
                                                    CommPolicy::Overlap);

    SpinorFieldD b_e = upload_spinor<PrecDouble>(lb, Parity::Even, mask);
    SpinorFieldD b_o = upload_spinor<PrecDouble>(lb, Parity::Odd, mask);
    SpinorFieldD bprime = op.make_vector(), x_e = op.make_vector(), x_o = op.make_vector();
    op.prepare_source(bprime, b_e, b_o);

    SolverParams sp;
    sp.tol = 1e-11;
    sp.max_iter = 1000;
    stats[static_cast<std::size_t>(rank)] = solve_bicgstab(op, x_e, bprime, sp);
    op.reconstruct_odd(x_o, x_e, b_o);

    HostSpinorField lx(lg);
    download_spinor(x_e, Parity::Even, lx);
    download_spinor(x_o, Parity::Odd, lx);
    xs[static_cast<std::size_t>(rank)] = lx;
  });

  for (int r = 0; r < n_ranks; ++r)
    ASSERT_TRUE(stats[static_cast<std::size_t>(r)].converged)
        << stats[static_cast<std::size_t>(r)].summary();

  HostSpinorField x(g);
  for (int r = 0; r < n_ranks; ++r)
    core::merge_spinor(x, xs[static_cast<std::size_t>(r)], topo, r);

  WilsonParams wp;
  wp.mass = mass;
  wp.time_bc = TimeBoundary::Antiperiodic;
  const DenseCloverField dense = make_dense_clover_term(u, csw);
  HostSpinorField mx(g);
  apply_wilson_clover_ref(u, dense, x, mx, wp);
  EXPECT_LT(std::sqrt(rel_dist2(mx, b)), 1e-9);
}

// --- decomposition property tests (PR 8) --------------------------------------
// Random grid factorizations must partition the lattice exactly: every
// global site is owned by exactly one rank, slice-then-merge is the
// identity byte-for-byte, and the degenerate 1x1x1xN grid is literally the
// paper's 1-D time slicing.

// deterministic xorshift64 draw (no std::random_device: the sampled grids
// must be identical on every machine and every run)
std::uint64_t lcg_next(std::uint64_t& s) {
  s ^= s << 13;
  s ^= s >> 7;
  s ^= s << 17;
  return s;
}

// sample a valid factorization with 4 <= ranks <= 64 for an {8,8,8,16}
// global lattice: x,y,z cuts from {1,2,4}, t cuts from {1,2,4,8}
GridTopology draw_topology(std::uint64_t& s) {
  const int xyz_choices[] = {1, 2, 4};
  const int t_choices[] = {1, 2, 4, 8};
  for (;;) {
    GridTopology topo{{xyz_choices[lcg_next(s) % 3], xyz_choices[lcg_next(s) % 3],
                       xyz_choices[lcg_next(s) % 3],
                       t_choices[lcg_next(s) % 4]}};
    if (topo.num_ranks() >= 4 && topo.num_ranks() <= 64) return topo;
  }
}

TEST(MultiDimProperty, RandomFactorizationSliceMergeRoundTrip) {
  const Geometry g({8, 8, 8, 16});
  HostSpinorField in(g);
  HostGaugeField u(g);
  make_random_spinor(in, 15001);
  make_random_gauge(u, 15000);

  std::uint64_t seed = 0x9e3779b97f4a7c15ull;
  for (int draw = 0; draw < 12; ++draw) {
    const GridTopology topo = draw_topology(seed);
    const int n = topo.num_ranks();
    const std::string label = std::to_string(topo.dims[0]) + "x" +
                              std::to_string(topo.dims[1]) + "x" +
                              std::to_string(topo.dims[2]) + "x" +
                              std::to_string(topo.dims[3]);

    // spinor: slice every rank, merge into a fresh field, compare bytes
    HostSpinorField merged(g);
    for (int r = 0; r < n; ++r)
      core::merge_spinor(merged, core::slice_spinor(in, topo, r), topo, r);
    for (std::int64_t i = 0; i < g.volume(); ++i)
      ASSERT_EQ(norm2(merged[i] - in[i]), 0.0) << label << " site " << i;

    // gauge: the blocks must cover every global site exactly once, and each
    // local link must equal the global link it claims to be
    std::vector<int> owners(static_cast<std::size_t>(g.volume()), 0);
    for (int r = 0; r < n; ++r) {
      const HostGaugeField lu = core::slice_gauge(u, topo, r);
      const Geometry& lg = lu.geom();
      for (std::int64_t i = 0; i < lg.volume(); ++i) {
        const Coords lc = lg.coords(i);
        const Coords gc = core::block_to_global(lc, topo, r, lg.dims());
        ++owners[static_cast<std::size_t>(g.linear_index(gc))];
        for (int mu = 0; mu < 4; ++mu)
          ASSERT_EQ(frobenius_dist2(lu.link(mu, lc), u.link(mu, gc)), 0.0)
              << label << " rank " << r << " site " << i << " mu " << mu;
      }
    }
    for (std::int64_t i = 0; i < g.volume(); ++i)
      ASSERT_EQ(owners[static_cast<std::size_t>(i)], 1)
          << label << ": every site is owned by exactly one rank";
  }
}

// The halo-exchanged dslash on randomly drawn grids agrees with the
// single-rank reference kernel at the last ulp per site (the wire's
// gamma-basis projection rounds once per cut direction, so exact bit
// equality with the undecomposed kernel is not attainable -- the per-site
// error bound below is ~1e-15 in amplitude, i.e. one double rounding), and
// for each drawn grid the Overlap and NoOverlap pipelines are bit-identical
// -- the property that actually pins the decomposition's arithmetic.
TEST(MultiDimProperty, RandomGridHaloDslashMatchesReference) {
  const Geometry g({4, 4, 4, 8});
  HostGaugeField u(g);
  HostSpinorField in(g), ref(g);
  make_random_gauge(u, 16000);
  make_random_spinor(in, 16001);

  WilsonParams wp;
  wp.time_bc = TimeBoundary::Antiperiodic;
  apply_hopping_ref(u, in, ref, wp);

  // the 4^3 x 8 volume admits cuts of 2 in x,y,z and {2,4} in t
  std::uint64_t seed = 0x2545f4914f6cdd1dull;
  const int draws = 4;
  for (int draw = 0; draw < draws; ++draw) {
    GridTopology topo{{1 + static_cast<int>(lcg_next(seed) % 2),
                       1 + static_cast<int>(lcg_next(seed) % 2),
                       1 + static_cast<int>(lcg_next(seed) % 2),
                       2 << (lcg_next(seed) % 2)}};
    if (topo.num_ranks() < 4) topo.dims[3] = 4;
    const std::string label = std::to_string(topo.dims[0]) + "x" +
                              std::to_string(topo.dims[1]) + "x" +
                              std::to_string(topo.dims[2]) + "x" +
                              std::to_string(topo.dims[3]);
    const HostSpinorField out =
        md_parallel_hopping<PrecDouble>(u, in, topo, CommPolicy::Overlap, wp.time_bc);
    for (std::int64_t i = 0; i < g.volume(); ++i)
      ASSERT_LT(norm2(out[i] - ref[i]), 1e-26) << label << " site " << i;

    const HostSpinorField out_no =
        md_parallel_hopping<PrecDouble>(u, in, topo, CommPolicy::NoOverlap, wp.time_bc);
    for (std::int64_t i = 0; i < g.volume(); ++i)
      ASSERT_EQ(norm2(out[i] - out_no[i]), 0.0)
          << label << " site " << i << ": policies must agree bitwise";
  }
}

// a 1x1x1xN grid is exactly the paper's 1-D time decomposition: the 4-D
// block utilities must reproduce the legacy 1-D slicers byte-for-byte
TEST(MultiDimProperty, DegenerateTimeGridMatchesLegacy1D) {
  const Geometry g({4, 4, 4, 16});
  HostGaugeField u(g);
  HostSpinorField in(g);
  make_random_gauge(u, 17000);
  make_random_spinor(in, 17001);

  for (const int n : {2, 4, 8}) {
    const GridTopology topo{{1, 1, 1, n}};
    ASSERT_EQ(core::local_geometry(g, topo).dims().t, core::local_geometry(g, n).dims().t);
    HostSpinorField merged_md(g), merged_1d(g);
    for (int r = 0; r < n; ++r) {
      const HostSpinorField ls_md = core::slice_spinor(in, topo, r);
      const HostSpinorField ls_1d = core::slice_spinor(in, r, n);
      for (std::int64_t i = 0; i < ls_md.geom().volume(); ++i)
        ASSERT_EQ(norm2(ls_md[i] - ls_1d[i]), 0.0) << "ranks " << n << " site " << i;

      const HostGaugeField lu_md = core::slice_gauge(u, topo, r);
      const HostGaugeField lu_1d = core::slice_gauge(u, r, n);
      for (std::int64_t i = 0; i < lu_md.geom().volume(); ++i) {
        const Coords lc = lu_md.geom().coords(i);
        for (int mu = 0; mu < 4; ++mu)
          ASSERT_EQ(frobenius_dist2(lu_md.link(mu, lc), lu_1d.link(mu, lc)), 0.0)
              << "ranks " << n << " site " << i << " mu " << mu;
      }

      core::merge_spinor(merged_md, ls_md, topo, r);
      core::merge_spinor(merged_1d, ls_1d, r);
    }
    for (std::int64_t i = 0; i < g.volume(); ++i) {
      ASSERT_EQ(norm2(merged_md[i] - in[i]), 0.0);
      ASSERT_EQ(norm2(merged_1d[i] - in[i]), 0.0);
    }
  }
}

TEST(MultiDim, RejectsOddLocalExtent) {
  const Geometry g({4, 4, 4, 8});
  // z = 4 over 2 ranks is fine; y = 4 over 4 ranks gives local 1
  EXPECT_THROW(core::local_geometry(g, GridTopology{{1, 4, 1, 1}}), std::invalid_argument);
  // 6 over 2 gives local 3 (odd)
  const Geometry g2({4, 6, 4, 8});
  EXPECT_THROW(core::local_geometry(g2, GridTopology{{1, 2, 1, 1}}), std::invalid_argument);
}

} // namespace
} // namespace quda
