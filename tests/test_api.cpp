// End-to-end tests of the public API: invert() / invert_multi_gpu() /
// apply_matrix_multi_gpu() with Chroma-style DeGrand-Rossi interface fields,
// verified against the naive-order reference operator in the same basis.

#include "core/quda_api.h"
#include "dirac/clover_term.h"
#include "dirac/gauge_init.h"

#include <gtest/gtest.h>

namespace quda {
namespace {

struct ApiFixture {
  Geometry g{LatticeDims{4, 4, 4, 8}};
  HostGaugeField u;
  HostSpinorField b;
  InvertParams params;

  ApiFixture() : u(g), b(g) {
    make_weak_field_gauge(u, 0.2, 9000);
    make_random_spinor(b, 9001);
    params.mass = 0.1;
    params.csw = 1.0;
    params.tol = 1e-9;
    params.precision = Precision::Double;
    params.max_iter = 2000;
  }

  // |M x - b| / |b| with the reference operator in the interface basis
  double reference_residual(const HostSpinorField& x) const {
    WilsonParams wp;
    wp.mass = params.mass;
    wp.time_bc = params.time_bc;
    wp.basis = params.interface_basis;
    HostSpinorField mx(g);
    if (params.csw != 0.0) {
      // build the dense clover in the *interface* basis for an independent check
      HostSpinorField x_nr(g), mx_nr(g);
      for (std::int64_t i = 0; i < g.volume(); ++i)
        x_nr[i] = rotate_basis(params.interface_basis, GammaBasis::NonRelativistic, x[i]);
      const DenseCloverField dense = make_dense_clover_term(u, params.csw);
      WilsonParams wnr = wp;
      wnr.basis = GammaBasis::NonRelativistic;
      apply_wilson_clover_ref(u, dense, x_nr, mx_nr, wnr);
      for (std::int64_t i = 0; i < g.volume(); ++i)
        mx[i] = rotate_basis(GammaBasis::NonRelativistic, params.interface_basis, mx_nr[i]);
    } else {
      apply_wilson_ref(u, x, mx, wp);
    }
    double num = 0, den = 0;
    for (std::int64_t i = 0; i < g.volume(); ++i) {
      num += norm2(mx[i] - b[i]);
      den += norm2(b[i]);
    }
    return std::sqrt(num / den);
  }
};

TEST(PublicApi, SingleGpuInvertDouble) {
  ApiFixture f;
  HostSpinorField x(f.g);
  const InvertResult r = invert(f.u, f.b, x, f.params);
  EXPECT_TRUE(r.stats.converged) << r.stats.summary();
  EXPECT_LT(f.reference_residual(x), 1e-8);
  EXPECT_GT(r.effective_gflops, 0.0);
  EXPECT_GT(r.simulated_time_us, 0.0);
  EXPECT_GT(r.device_bytes_peak, 0);
}

TEST(PublicApi, MultiGpuInvertMatchesSingleGpu) {
  ApiFixture f;
  HostSpinorField x1(f.g), x4(f.g);
  const InvertResult r1 = invert(f.u, f.b, x1, f.params);
  const InvertResult r4 = invert_multi_gpu(sim::ClusterSpec::jlab_9g(4), f.u, f.b, x4, f.params);
  ASSERT_TRUE(r1.stats.converged);
  ASSERT_TRUE(r4.stats.converged);
  double num = 0, den = 0;
  for (std::int64_t i = 0; i < f.g.volume(); ++i) {
    num += norm2(x1[i] - x4[i]);
    den += norm2(x1[i]);
  }
  EXPECT_LT(std::sqrt(num / den), 1e-7) << "decomposition must not change the solution";
}

TEST(PublicApi, MixedPrecisionSingleHalf) {
  ApiFixture f;
  f.params.precision = Precision::Single;
  f.params.sloppy = Precision::Half;
  f.params.tol = 1e-6;
  f.params.delta = 1e-1;
  HostSpinorField x(f.g);
  const InvertResult r = invert_multi_gpu(sim::ClusterSpec::jlab_9g(2), f.u, f.b, x, f.params);
  EXPECT_TRUE(r.stats.converged) << r.stats.summary();
  EXPECT_GT(r.stats.reliable_updates, 0);
  EXPECT_LT(f.reference_residual(x), 1e-4);
}

TEST(PublicApi, WilsonWithoutClover) {
  ApiFixture f;
  f.params.csw = 0.0;
  HostSpinorField x(f.g);
  const InvertResult r = invert(f.u, f.b, x, f.params);
  EXPECT_TRUE(r.stats.converged) << r.stats.summary();
  EXPECT_LT(f.reference_residual(x), 1e-8);
}

TEST(PublicApi, CgSolver) {
  ApiFixture f;
  f.params.solver = SolverType::CG;
  f.params.tol = 1e-8;
  f.params.max_iter = 4000;
  HostSpinorField x(f.g);
  const InvertResult r = invert(f.u, f.b, x, f.params);
  EXPECT_TRUE(r.stats.converged) << r.stats.summary();
}

TEST(PublicApi, ApplyMatrixIsConsistentWithInvert) {
  // M applied to the solve's solution must reproduce the source
  ApiFixture f;
  HostSpinorField x(f.g), mx(f.g);
  const InvertResult r = invert(f.u, f.b, x, f.params);
  ASSERT_TRUE(r.stats.converged);
  apply_matrix_multi_gpu(sim::ClusterSpec::jlab_9g(2), f.u, x, mx, f.params);
  double num = 0, den = 0;
  for (std::int64_t i = 0; i < f.g.volume(); ++i) {
    num += norm2(mx[i] - f.b[i]);
    den += norm2(f.b[i]);
  }
  EXPECT_LT(std::sqrt(num / den), 1e-7);
}

TEST(PublicApi, Recon8SolveMatchesRecon12) {
  // the solve with 8-real gauge storage must converge to the same residual
  // tolerance as the 12-real default -- reconstruction changes the storage
  // and the kernel arithmetic, not the operator being inverted
  ApiFixture f;
  HostSpinorField x12(f.g), x8(f.g);

  InvertParams p12 = f.params;
  p12.reconstruct = Reconstruct::Twelve;
  const InvertResult r12 = invert(f.u, f.b, x12, p12);

  InvertParams p8 = f.params;
  p8.reconstruct = Reconstruct::Eight;
  const InvertResult r8 = invert(f.u, f.b, x8, p8);

  ASSERT_TRUE(r12.stats.converged) << r12.stats.summary();
  ASSERT_TRUE(r8.stats.converged) << r8.stats.summary();
  EXPECT_LT(f.reference_residual(x12), 1e-8);
  EXPECT_LT(f.reference_residual(x8), 1e-8);
  // 8-real storage holds fewer reals per link, so the device gauge
  // allocation must shrink
  EXPECT_GT(r12.gauge_device_bytes, 0);
  EXPECT_LT(r8.gauge_device_bytes, r12.gauge_device_bytes);
}

TEST(PublicApi, Recon8MixedPrecisionSloppy) {
  // outer Twelve + sloppy Eight: the compressed level only carries the
  // sloppy iterations; reliable updates in the outer precision restore the
  // true residual
  ApiFixture f;
  f.params.precision = Precision::Single;
  f.params.sloppy = Precision::Half;
  f.params.tol = 1e-6;
  f.params.delta = 1e-1;
  f.params.reconstruct = Reconstruct::Twelve;
  f.params.reconstruct_sloppy = Reconstruct::Eight;
  HostSpinorField x(f.g);
  const InvertResult r = invert_multi_gpu(sim::ClusterSpec::jlab_9g(2), f.u, f.b, x, f.params);
  EXPECT_TRUE(r.stats.converged) << r.stats.summary();
  EXPECT_LT(f.reference_residual(x), 1e-4);
}

TEST(PublicApi, RejectsInvalidParams) {
  ApiFixture f;
  HostSpinorField x(f.g);
  InvertParams bad = f.params;
  bad.precision = Precision::Half;
  EXPECT_THROW(invert(f.u, f.b, x, bad), std::invalid_argument);

  bad = f.params;
  bad.precision = Precision::Single;
  bad.sloppy = Precision::Double;
  EXPECT_THROW(invert(f.u, f.b, x, bad), std::invalid_argument);

  // T not divisible by ranks
  EXPECT_THROW(invert_multi_gpu(sim::ClusterSpec::jlab_9g(3), f.u, f.b, x, f.params),
               std::invalid_argument);

  // the sloppy level may compress harder than the outer, never less
  bad = f.params;
  bad.precision = Precision::Single;
  bad.sloppy = Precision::Half;
  bad.reconstruct = Reconstruct::Eight;
  bad.reconstruct_sloppy = Reconstruct::Eighteen;
  EXPECT_THROW(invert(f.u, f.b, x, bad), std::invalid_argument);
}

TEST(PublicApi, MultiDimGridMatchesTimeSlicing) {
  // the same solve on a 2x2 (z, t) grid must give the 1-D answer
  ApiFixture f;
  HostSpinorField x_1d(f.g), x_2d(f.g);
  const InvertResult r1 = invert_multi_gpu(sim::ClusterSpec::jlab_9g(4), f.u, f.b, x_1d, f.params);
  InvertParams p2 = f.params;
  p2.grid = {1, 1, 2, 2};
  const InvertResult r2 = invert_multi_gpu(sim::ClusterSpec::jlab_9g(4), f.u, f.b, x_2d, p2);
  ASSERT_TRUE(r1.stats.converged);
  ASSERT_TRUE(r2.stats.converged);
  double num = 0, den = 0;
  for (std::int64_t i = 0; i < f.g.volume(); ++i) {
    num += norm2(x_1d[i] - x_2d[i]);
    den += norm2(x_1d[i]);
  }
  EXPECT_LT(std::sqrt(num / den), 1e-7);
}

TEST(PublicApi, RejectsMismatchedGrid) {
  ApiFixture f;
  HostSpinorField x(f.g);
  InvertParams p = f.params;
  p.grid = {1, 1, 2, 2}; // 4 ranks on a 2-rank cluster
  EXPECT_THROW(invert_multi_gpu(sim::ClusterSpec::jlab_9g(2), f.u, f.b, x, p),
               std::invalid_argument);
}

TEST(PublicApi, DeviceMemoryGateThrows) {
  // a deliberately tiny card cannot hold even this small problem
  ApiFixture f;
  sim::ClusterSpec spec = sim::ClusterSpec::jlab_9g(1);
  spec.device.ram_gib = 0.17; // below even the driver reservation
  HostSpinorField x(f.g);
  EXPECT_THROW(invert_multi_gpu(spec, f.u, f.b, x, f.params), std::bad_alloc);
}

} // namespace
} // namespace quda
