// Unit tests: the simulated device -- Table I specs, the PCI-E bus model
// (Fig. 7 structure), stream/copy-engine timelines, the kernel model
// (occupancy, partition camping), and memory capacity accounting.

#include "gpusim/device.h"

#include <gtest/gtest.h>

namespace quda::gpusim {
namespace {

TEST(DeviceSpecs, TableOneValues) {
  // spot checks against Table I of the paper
  EXPECT_EQ(geforce_gtx285().cores, 240);
  EXPECT_DOUBLE_EQ(geforce_gtx285().mem_bandwidth_gbs, 159.0);
  EXPECT_DOUBLE_EQ(geforce_gtx285().gflops_sp, 1062.0);
  EXPECT_DOUBLE_EQ(geforce_gtx285().gflops_dp, 88.0);
  EXPECT_EQ(tesla_c1060().cores, 240);
  EXPECT_DOUBLE_EQ(tesla_c1060().ram_gib, 4.0);
  EXPECT_EQ(geforce_8800_gtx().gflops_dp, 0) << "pre-GT200 cards have no double precision";
  EXPECT_TRUE(tesla_c2050().dual_copy_engine) << "Fermi allows bidirectional PCI-E transfers";
  EXPECT_FALSE(geforce_gtx285().dual_copy_engine);
  EXPECT_EQ(representative_cards().size(), 6u);
}

TEST(BusModel, AsyncLatencyExceedsSyncLatency) {
  // the Section VII-D observation that drives Fig. 5(b)
  const BusModel bus;
  const double sync1k = bus.transfer_time_us(1024, CopyDir::DeviceToHost, false, true);
  const double async1k = bus.transfer_time_us(1024, CopyDir::DeviceToHost, true, true);
  EXPECT_GT(async1k, 3.0 * sync1k);
  EXPECT_NEAR(sync1k, 11.0, 1.0);  // ~11 us (Fig. 7)
  EXPECT_NEAR(async1k, 48.0, 3.0); // ~50 us (Fig. 7)
}

TEST(BusModel, DirectionalBandwidthAsymmetry) {
  // the different gradients of the Fig. 7 curves
  const BusModel bus;
  const std::int64_t big = 1 << 20;
  const double h2d = bus.transfer_time_us(big, CopyDir::HostToDevice, false, true);
  const double d2h = bus.transfer_time_us(big, CopyDir::DeviceToHost, false, true);
  EXPECT_LT(h2d, d2h) << "host-to-device should be the faster direction";
}

TEST(BusModel, BadNumaBindingIsSlower) {
  const BusModel bus;
  for (std::int64_t bytes : {1024ll, 65536ll, 1048576ll}) {
    EXPECT_GT(bus.transfer_time_us(bytes, CopyDir::DeviceToHost, false, false),
              bus.transfer_time_us(bytes, CopyDir::DeviceToHost, false, true));
  }
}

TEST(KernelModel, OccupancyPeaksAt256) {
  EXPECT_DOUBLE_EQ(occupancy_factor(256), 1.0);
  EXPECT_LT(occupancy_factor(64), occupancy_factor(128));
  EXPECT_LT(occupancy_factor(128), occupancy_factor(256));
  EXPECT_LT(occupancy_factor(512), occupancy_factor(256));
  EXPECT_LT(occupancy_factor(100), 0.5) << "non-multiple-of-64 blocks fragment warps";
}

TEST(KernelModel, PartitionCampingOnPowerOfTwoStride) {
  // a stride equal to partitions*region lands every row on one bank
  const DeviceSpec& dev = geforce_gtx285();
  const std::int64_t bad = std::int64_t(dev.memory_partitions) * dev.partition_bytes; // 2048
  const std::int64_t good = bad + dev.partition_bytes; // padded off the pathological value
  EXPECT_LE(partition_camping_factor(bad, dev), 0.55);
  EXPECT_DOUBLE_EQ(partition_camping_factor(good, dev), 1.0);
  EXPECT_DOUBLE_EQ(partition_camping_factor(0, dev), 1.0) << "no stride info = no penalty";
}

TEST(KernelModel, BandwidthBoundKernelScalesWithBytes) {
  const DeviceSpec& dev = geforce_gtx285();
  KernelCost c;
  c.bytes = 1e6;
  c.flops = 1.0; // negligible
  c.efficiency = 0.5;
  const double t1 = kernel_duration_us(c, {256, 0}, dev, false);
  c.bytes = 2e6;
  const double t2 = kernel_duration_us(c, {256, 0}, dev, false);
  EXPECT_NEAR(t2, 2.0 * t1, 1e-9);
  // 1e6 bytes at 0.5 * 159 GB/s = ~12.6 us
  EXPECT_NEAR(t1, 1e6 / (0.5 * 159e3), 1e-6);
}

TEST(KernelModel, ComputeBoundKernelUsesFlopRate) {
  const DeviceSpec& dev = geforce_gtx285();
  KernelCost c;
  c.flops = 1e9; // dominated by arithmetic
  c.bytes = 8;
  const double t_sp = kernel_duration_us(c, {256, 0}, dev, false);
  const double t_dp = kernel_duration_us(c, {256, 0}, dev, true);
  EXPECT_GT(t_dp, 10.0 * t_sp) << "GTX 285 double peak is 88 vs 1062 Gflops";
}

TEST(Device, SyncCopyBlocksHost) {
  Device dev(geforce_gtx285(), BusModel{});
  const double t = dev.memcpy_sync(100.0, 1 << 20, CopyDir::DeviceToHost);
  EXPECT_GT(t, 100.0 + 300.0); // 1 MiB at ~3.1 GB/s is ~340 us
}

TEST(Device, AsyncCopyReturnsImmediatelyButOccupiesEngine) {
  Device dev(geforce_gtx285(), BusModel{});
  const double t_host = dev.memcpy_async(100.0, 1, 1 << 20, CopyDir::DeviceToHost);
  EXPECT_LT(t_host, 105.0) << "async issue should cost only the call overhead";
  const double t_done = dev.stream_synchronize(t_host, 1);
  EXPECT_GT(t_done, 100.0 + 300.0);
}

TEST(Device, SingleCopyEngineSerializesStreams) {
  // GT200: transfers on different streams still share one engine
  Device dev(geforce_gtx285(), BusModel{});
  dev.memcpy_async(0.0, 1, 1 << 20, CopyDir::DeviceToHost);
  dev.memcpy_async(0.0, 2, 1 << 20, CopyDir::DeviceToHost);
  const double t1 = dev.stream_synchronize(0.0, 1);
  const double t2 = dev.stream_synchronize(0.0, 2);
  EXPECT_GT(t2, 1.9 * t1 - 100.0) << "second transfer must wait for the engine";
}

TEST(Device, DualCopyEngineOverlapsDirections) {
  // Fermi (footnote 4): one engine per direction allows bidirectional overlap
  Device fermi(tesla_c2050(), BusModel{});
  fermi.memcpy_async(0.0, 1, 1 << 20, CopyDir::DeviceToHost);
  fermi.memcpy_async(0.0, 2, 1 << 20, CopyDir::HostToDevice);
  const double t1 = fermi.stream_synchronize(0.0, 1);
  const double t2 = fermi.stream_synchronize(0.0, 2);
  // both complete in roughly one transfer time, not two
  EXPECT_LT(std::max(t1, t2), 500.0);
}

TEST(Device, KernelsSerializeWithinAStream) {
  Device dev(geforce_gtx285(), BusModel{});
  KernelCost c;
  c.bytes = 1e6;
  c.efficiency = 1.0;
  dev.launch_kernel(0.0, 0, c, {256, 0});
  dev.launch_kernel(0.0, 0, c, {256, 0});
  const double t = dev.stream_synchronize(0.0, 0);
  const double single = kernel_duration_us(c, {256, 0}, dev.spec(), false);
  EXPECT_GT(t, 2.0 * single);
}

TEST(Device, StreamWaitStreamCreatesDependency) {
  Device dev(geforce_gtx285(), BusModel{});
  dev.memcpy_async(0.0, 1, 1 << 20, CopyDir::HostToDevice);
  const double before = dev.stream_ready(0);
  dev.stream_wait_stream(0, 1);
  EXPECT_GT(dev.stream_ready(0), before);
  EXPECT_DOUBLE_EQ(dev.stream_ready(0), dev.stream_ready(1));
}

TEST(Device, MemoryCapacityGate) {
  Device dev(geforce_gtx285(), BusModel{});
  const std::int64_t cap = dev.bytes_capacity();
  EXPECT_LT(cap, 2ll << 30) << "driver reservation must reduce usable memory";
  dev.malloc_bytes(cap - 100);
  EXPECT_THROW(dev.malloc_bytes(200), std::bad_alloc);
  dev.free_bytes(cap - 100);
  EXPECT_EQ(dev.bytes_used(), 0);
  EXPECT_EQ(dev.bytes_peak(), cap - 100);
}

} // namespace
} // namespace quda::gpusim
