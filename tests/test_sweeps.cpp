// Parameterized property sweeps: memory-footprint arithmetic across volumes
// and precision modes, solver convergence across tolerance targets, field
// precision conversions, and the interior/boundary kernel-region split.

#include "dirac/gauge_init.h"
#include "dirac/transfer.h"
#include "dirac/wilson_clover_op.h"
#include "parallel/halo_dslash.h"
#include "perfmodel/footprint.h"
#include "solvers/bicgstab.h"
#include "solvers/mixed_precision.h"

#include <gtest/gtest.h>

namespace quda {
namespace {

// --- footprint sweeps -----------------------------------------------------------

class FootprintSweep : public ::testing::TestWithParam<LatticeDims> {};

TEST_P(FootprintSweep, ScalesLinearlyWithVolume) {
  const LatticeDims dims = GetParam();
  LatticeDims doubled = dims;
  doubled.t *= 2;
  const auto f1 = perf::solver_footprint(dims, Precision::Single);
  const auto f2 = perf::solver_footprint(doubled, Precision::Single);
  // doubling T doubles every volume term; padding/ghosts scale sublinearly
  EXPECT_GT(f2.total(), 1.9 * f1.total());
  EXPECT_LT(f2.total(), 2.1 * f1.total());
}

TEST_P(FootprintSweep, PrecisionOrdering) {
  const LatticeDims dims = GetParam();
  const auto fd = perf::solver_footprint(dims, Precision::Double);
  const auto fs = perf::solver_footprint(dims, Precision::Single);
  const auto mixed = perf::solver_footprint(dims, Precision::Single, Precision::Half);
  EXPECT_GT(fd.total(), fs.total());
  // mixed stores both precision copies: bigger than uniform single
  EXPECT_GT(mixed.total(), fs.total());
  EXPECT_LT(mixed.total(), fd.total()) << "half copies cost less than full double";
}

TEST_P(FootprintSweep, GaugeBytesExact) {
  const LatticeDims dims = GetParam();
  // single precision, 12-real compression, one face of padding
  const std::int64_t expect =
      (dims.volume() + dims.spatial_volume()) * 4 * 12 * 4;
  EXPECT_EQ(perf::gauge_field_bytes(Precision::Single, dims), expect);
  // double stores 18 reals
  const std::int64_t expect_d =
      (dims.volume() + dims.spatial_volume()) * 4 * 18 * 8;
  EXPECT_EQ(perf::gauge_field_bytes(Precision::Double, dims), expect_d);
}

INSTANTIATE_TEST_SUITE_P(Volumes, FootprintSweep,
                         ::testing::Values(LatticeDims{16, 16, 16, 32},
                                           LatticeDims{24, 24, 24, 32},
                                           LatticeDims{24, 24, 24, 64},
                                           LatticeDims{32, 32, 32, 32},
                                           LatticeDims{32, 32, 32, 64}),
                         [](const auto& info) { return info.param.to_string(); });

// --- solver tolerance sweep ------------------------------------------------------

struct SolveSetup {
  Geometry g{LatticeDims{4, 4, 4, 8}};
  HostGaugeField u;
  HostCloverField t, tinv;
  GaugeFieldD gauge;
  CloverFieldD clover, clover_inv;
  OperatorParams params;

  SolveSetup() : u(g) {
    make_weak_field_gauge(u, 0.2, 40001);
    t = make_clover_term(u, 1.0);
    add_diag(t, 4.1);
    tinv = invert_clover(t);
    gauge = upload_gauge<PrecDouble>(u, Reconstruct::Twelve);
    clover = upload_clover<PrecDouble>(t);
    clover_inv = upload_clover<PrecDouble>(tinv);
    params.mass = 0.1;
  }
};

class ToleranceSweep : public ::testing::TestWithParam<double> {};

TEST_P(ToleranceSweep, BiCGstabReachesTarget) {
  // NOLINT(sim-static-state): fixture cached across the parameter sweep --
  // construction dominates the test time and the setup is read-only after init
  static SolveSetup setup;
  WilsonCloverOp<PrecDouble> op(setup.g, setup.gauge, setup.clover, setup.clover_inv,
                                setup.params);
  HostSpinorField hb(setup.g);
  make_random_spinor(hb, 40002);
  const SpinorFieldD b = upload_spinor<PrecDouble>(hb, Parity::Even);
  SpinorFieldD x(setup.g);

  SolverParams sp;
  sp.tol = GetParam();
  sp.max_iter = 2000;
  const SolverStats stats = solve_bicgstab(op, x, b, sp);
  EXPECT_TRUE(stats.converged) << stats.summary();
  EXPECT_LE(stats.true_residual, GetParam() * 2.5);
}

INSTANTIATE_TEST_SUITE_P(Tolerances, ToleranceSweep,
                         ::testing::Values(1e-4, 1e-6, 1e-8, 1e-10, 1e-12),
                         [](const auto& info) {
                           return "tol1em" + std::to_string(
                                                 static_cast<int>(-std::log10(info.param) + 0.5));
                         });

// tighter tolerance must not need fewer iterations (monotonicity)
TEST(ToleranceMonotonicity, IterationsGrowWithPrecision) {
  SolveSetup setup;
  WilsonCloverOp<PrecDouble> op(setup.g, setup.gauge, setup.clover, setup.clover_inv,
                                setup.params);
  HostSpinorField hb(setup.g);
  make_random_spinor(hb, 40003);
  const SpinorFieldD b = upload_spinor<PrecDouble>(hb, Parity::Even);

  int prev_iters = 0;
  for (double tol : {1e-4, 1e-7, 1e-10}) {
    SpinorFieldD x(setup.g);
    SolverParams sp;
    sp.tol = tol;
    sp.max_iter = 2000;
    const SolverStats stats = solve_bicgstab(op, x, b, sp);
    ASSERT_TRUE(stats.converged);
    EXPECT_GE(stats.iterations, prev_iters);
    prev_iters = stats.iterations;
  }
}

// --- precision conversion round trips --------------------------------------------

TEST(ConvertField, DoubleToSingleToDoubleLosesOnlySinglePrecision) {
  const Geometry g({4, 4, 4, 4});
  HostSpinorField h(g);
  make_random_spinor(h, 40004);
  const SpinorFieldD d = upload_spinor<PrecDouble>(h, Parity::Even);
  SpinorFieldS s(g);
  SpinorFieldD back(g);
  convert_spinor_field(s, d);
  convert_spinor_field(back, s);
  double num = 0, den = 0;
  for (std::int64_t i = 0; i < d.sites(); ++i) {
    num += quda::norm2(back.load(i) - d.load(i));
    den += quda::norm2(d.load(i));
  }
  EXPECT_LT(num / den, 1e-13);
  EXPECT_GT(num, 0.0) << "single precision must actually round";
}

TEST(ConvertField, HalfRoundTripWithinQuantizationBound) {
  const Geometry g({4, 4, 4, 4});
  HostSpinorField hf(g);
  make_random_spinor(hf, 40005);
  const SpinorFieldS s = upload_spinor<PrecSingle>(hf, Parity::Even);
  SpinorFieldH h(g);
  SpinorFieldS back(g);
  convert_spinor_field(h, s);
  convert_spinor_field(back, h);
  for (std::int64_t i = 0; i < s.sites(); ++i) {
    const auto a = s.load(i), b = back.load(i);
    const float bound = 2.0f * max_abs(a) / kHalfPointScale;
    for (std::size_t spin = 0; spin < 4; ++spin)
      for (std::size_t c = 0; c < 3; ++c) {
        EXPECT_NEAR(a.s[spin][c].re, b.s[spin][c].re, bound);
        EXPECT_NEAR(a.s[spin][c].im, b.s[spin][c].im, bound);
      }
  }
}

// --- kernel region split ----------------------------------------------------------

TEST(KernelRegions, InteriorPlusBoundaryEqualsAll) {
  // a periodic single-rank "self-exchange": packing the field's own faces
  // into its own ghost zones makes ghost reads identical to wrapped reads,
  // so the region-split kernel must reproduce the wrap kernel exactly
  const Geometry g({4, 4, 4, 8});
  HostGaugeField hu(g);
  HostSpinorField hin(g);
  make_random_gauge(hu, 40006);
  make_random_spinor(hin, 40007);

  for (const PartitionMask mask :
       {PartitionMask{false, false, false, true}, PartitionMask{false, true, false, true},
        PartitionMask{true, true, true, true}}) {
    GaugeFieldD u = upload_gauge<PrecDouble>(hu, Reconstruct::Twelve);
    SpinorFieldD in(g, mask);
    {
      const SpinorFieldD tmp = upload_spinor<PrecDouble>(hin, Parity::Odd, mask);
      blas::copy(in, tmp);
    }
    // self-exchange: own last face -> own Backward ghost (and gauge ghost),
    // own first face -> own Forward ghost
    for (int mu = 0; mu < 4; ++mu) {
      if (!mask[static_cast<std::size_t>(mu)]) continue;
      FaceBuffer<PrecDouble> fwd_face, back_face;
      pack_face(in, g, Parity::Odd, mu, g.dims()[mu] - 1, +1, fwd_face);
      unpack_ghost(in, g, mu, GhostFace::Backward, fwd_face);
      pack_face(in, g, Parity::Odd, mu, 0, -1, back_face);
      unpack_ghost(in, g, mu, GhostFace::Forward, back_face);
      GaugeFaceBuffer<PrecDouble> gf;
      pack_gauge_face(u, g, mu, g.dims()[mu] - 1, gf);
      unpack_gauge_ghost(u, g, mu, gf);
    }

    SpinorFieldD all(g, mask), split(g, mask);
    DslashOptions wrap;
    dslash<PrecDouble>(all, u, in, g, wrap, 0, g.half_volume(), 1, Accumulate::No);

    DslashOptions ghosted;
    ghosted.ghost = mask;
    dslash<PrecDouble>(split, u, in, g, ghosted, 0, g.half_volume(), 1, Accumulate::No,
                       KernelRegion::Interior);
    dslash<PrecDouble>(split, u, in, g, ghosted, 0, g.half_volume(), 1, Accumulate::No,
                       KernelRegion::Boundary);

    for (std::int64_t i = 0; i < g.half_volume(); ++i)
      ASSERT_LT(quda::norm2(split.load(i) - all.load(i)), 1e-24)
          << "site " << i << " differs for a mask";
  }
}

TEST(KernelRegions, InteriorCountMatchesDirectEnumeration) {
  const Geometry g({4, 4, 4, 8});
  for (const PartitionMask mask :
       {PartitionMask{false, false, false, true}, PartitionMask{false, true, false, true},
        PartitionMask{true, true, true, true}}) {
    std::int64_t interior = 0;
    for (std::int64_t cb = 0; cb < g.half_volume(); ++cb) {
      const Coords x = g.cb_coords(Parity::Even, cb);
      bool edge = false;
      for (int mu = 0; mu < 4; ++mu)
        if (mask[static_cast<std::size_t>(mu)] && (x[mu] == 0 || x[mu] == g.dims()[mu] - 1))
          edge = true;
      if (!edge) ++interior;
    }
    EXPECT_EQ(interior, parallel::interior_sites(g, mask));
  }
}

} // namespace
} // namespace quda
