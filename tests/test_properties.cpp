// Property-based tests on cross-cutting invariants:
//
//  * gauge covariance of the Wilson-clover operator (the deepest physics
//    check: a random local SU(3) rotation of links and fields commutes with
//    the operator);
//  * gamma_5 Hermiticity of the full operator;
//  * Modeled and Real execution charge *identical* simulated time (the
//    benchmark harness times exactly the code path the tests validate);
//  * BLAS kernels against naive recompositions, in all precisions;
//  * the auto-tuner's sweep semantics.

#include "blas/autotune.h"
#include "blas/blas.h"
#include "comm/qmp.h"
#include "dirac/clover_term.h"
#include "dirac/gauge_init.h"
#include "dirac/transfer.h"
#include "dirac/wilson_ref.h"
#include "parallel/halo_dslash.h"
#include "sim/event_sim.h"

#include <gtest/gtest.h>

#include <random>

namespace quda {
namespace {

// --- gauge covariance ---------------------------------------------------------

SU3<double> random_su3(std::mt19937_64& rng) {
  std::normal_distribution<double> d(0.0, 1.0);
  SU3<double> m;
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c) m.e[r][c] = complexd(d(rng), d(rng));
  return reunitarize(m);
}

TEST(GaugeCovariance, WilsonCloverOperatorTransformsCovariantly) {
  // M[U^g] (g psi) == g (M[U] psi) for a random gauge transformation g(x)
  const Geometry g({4, 4, 4, 6});
  HostGaugeField u(g), ug(g);
  HostSpinorField psi(g), psig(g);
  make_random_gauge(u, 20001);
  make_random_spinor(psi, 20002);

  std::mt19937_64 rng(20003);
  std::vector<SU3<double>> rot(static_cast<std::size_t>(g.volume()));
  for (auto& m : rot) m = random_su3(rng);

  for (std::int64_t i = 0; i < g.volume(); ++i) {
    const Coords x = g.coords(i);
    for (int mu = 0; mu < 4; ++mu) {
      const std::int64_t xf = g.linear_index(g.neighbor(x, mu, +1));
      // U'_mu(x) = g(x) U_mu(x) g(x+mu)^dag
      ug.link(mu, i) = rot[static_cast<std::size_t>(i)] * u.link(mu, i) *
                       adjoint(rot[static_cast<std::size_t>(xf)]);
    }
    psig[i] = rot[static_cast<std::size_t>(i)] * psi[i];
  }

  WilsonParams wp;
  wp.mass = 0.1;
  wp.time_bc = TimeBoundary::Antiperiodic;

  const DenseCloverField clover = make_dense_clover_term(u, 1.3);
  const DenseCloverField clover_g = make_dense_clover_term(ug, 1.3);

  HostSpinorField m_psi(g), m_psig(g);
  apply_wilson_clover_ref(u, clover, psi, m_psi, wp);
  apply_wilson_clover_ref(ug, clover_g, psig, m_psig, wp);

  double num = 0, den = 0;
  for (std::int64_t i = 0; i < g.volume(); ++i) {
    const Spinor<double> rotated = rot[static_cast<std::size_t>(i)] * m_psi[i];
    num += norm2(m_psig[i] - rotated);
    den += norm2(rotated);
  }
  EXPECT_LT(num / den, 1e-22) << "operator is not gauge covariant";
}

TEST(GaugeCovariance, PlaquetteIsGaugeInvariant) {
  const Geometry g({4, 4, 4, 4});
  HostGaugeField u(g), ug(g);
  make_random_gauge(u, 20010);
  std::mt19937_64 rng(20011);
  std::vector<SU3<double>> rot(static_cast<std::size_t>(g.volume()));
  for (auto& m : rot) m = random_su3(rng);
  for (std::int64_t i = 0; i < g.volume(); ++i) {
    const Coords x = g.coords(i);
    for (int mu = 0; mu < 4; ++mu) {
      const std::int64_t xf = g.linear_index(g.neighbor(x, mu, +1));
      ug.link(mu, i) = rot[static_cast<std::size_t>(i)] * u.link(mu, i) *
                       adjoint(rot[static_cast<std::size_t>(xf)]);
    }
  }
  EXPECT_NEAR(average_plaquette(u), average_plaquette(ug), 1e-12);
}

TEST(Gamma5Hermiticity, FullOperatorSatisfiesG5MG5EqualsMdag) {
  // <phi, g5 M g5 psi> == conj(<psi, g5 M g5 phi>) -- i.e. g5 M g5 is the
  // adjoint of M (the property CGNR's dagger application relies on)
  const Geometry g({4, 4, 4, 4});
  HostGaugeField u(g);
  make_random_gauge(u, 20020);
  HostSpinorField psi(g), phi(g);
  make_random_spinor(psi, 20021);
  make_random_spinor(phi, 20022);

  WilsonParams wp;
  wp.mass = 0.2;
  const DenseCloverField clover = make_dense_clover_term(u, 1.0);

  const SpinMatrix& g5 = gamma5(GammaBasis::NonRelativistic);
  auto g5_rotate = [&](const HostSpinorField& f) {
    HostSpinorField out(g);
    for (std::int64_t i = 0; i < g.volume(); ++i) out[i] = apply_spin(g5, f[i]);
    return out;
  };
  auto inner = [&](const HostSpinorField& a, const HostSpinorField& b) {
    complexd s{};
    for (std::int64_t i = 0; i < g.volume(); ++i) s += dot(a[i], b[i]);
    return s;
  };

  HostSpinorField m_psi(g), m_phi(g);
  apply_wilson_clover_ref(u, clover, psi, m_psi, wp);
  apply_wilson_clover_ref(u, clover, phi, m_phi, wp);

  // <phi, g5 M g5 psi> where the outer g5 pairs with phi
  const complexd lhs = inner(g5_rotate(phi), m_psi) * complexd(1.0, 0.0);
  const complexd rhs = conj(inner(g5_rotate(psi), m_phi));
  // g5 M g5 = M^dag  <=>  <g5 phi, M psi> == conj(<g5 psi, M phi>)
  EXPECT_NEAR(lhs.re, rhs.re, 1e-8);
  EXPECT_NEAR(lhs.im, rhs.im, 1e-8);
}

// --- Modeled == Real timing ----------------------------------------------------

TEST(ExecutionModes, ModeledAndRealChargeIdenticalTime) {
  const Geometry lg({4, 4, 4, 4});
  const int ranks = 4;

  auto run_mode = [&](Execution exec) {
    sim::VirtualCluster cluster(sim::ClusterSpec::jlab_9g(ranks));
    std::vector<double> clocks(static_cast<std::size_t>(ranks));
    cluster.run([&](sim::RankContext& ctx) {
      comm::QmpGrid grid(ctx);
      parallel::HaloDslashConfig cfg;
      cfg.policy = CommPolicy::Overlap;
      cfg.exec = exec;

      HostGaugeField hu(lg);
      make_weak_field_gauge(hu, 0.1, 99);
      HostSpinorField hin(lg);
      make_random_spinor(hin, 100);
      GaugeField<PrecSingle> u = upload_gauge<PrecSingle>(hu, Reconstruct::Twelve);
      parallel::exchange_gauge_ghost<PrecSingle>(
          grid, lg, exec == Execution::Real ? &u : nullptr, exec);
      SpinorField<PrecSingle> in = upload_spinor<PrecSingle>(hin, Parity::Odd);
      SpinorField<PrecSingle> out(lg);

      for (int rep = 0; rep < 6; ++rep) {
        cfg.out_parity = rep % 2 == 0 ? Parity::Even : Parity::Odd;
        if (exec == Execution::Real)
          parallel::halo_dslash<PrecSingle>(grid, lg, cfg, {&out, &u, &in});
        else
          parallel::halo_dslash<PrecSingle>(grid, lg, cfg, {});
      }
      clocks[static_cast<std::size_t>(ctx.rank())] = ctx.clock().now_us;
    });
    return clocks;
  };

  const auto real = run_mode(Execution::Real);
  const auto modeled = run_mode(Execution::Modeled);
  for (int r = 0; r < ranks; ++r)
    EXPECT_DOUBLE_EQ(real[static_cast<std::size_t>(r)], modeled[static_cast<std::size_t>(r)])
        << "rank " << r << ": the benches time a different path than the tests validate";
}

// --- BLAS kernels vs naive recomposition ---------------------------------------

template <typename P> class BlasTyped : public ::testing::Test {};
using AllPrecs = ::testing::Types<PrecDouble, PrecSingle, PrecHalf>;
TYPED_TEST_SUITE(BlasTyped, AllPrecs);

template <typename P>
SpinorField<P> random_field(const Geometry& g, std::uint64_t seed) {
  HostSpinorField h(g);
  make_random_spinor(h, seed);
  return upload_spinor<P>(h, Parity::Even);
}

template <typename P> double tolerance() {
  return P::value == Precision::Double ? 1e-20 : P::value == Precision::Single ? 1e-9 : 2e-3;
}

TYPED_TEST(BlasTyped, AxpyNormIsAxpyThenNorm) {
  using P = TypeParam;
  const Geometry g({4, 4, 4, 4});
  const SpinorField<P> x = random_field<P>(g, 1);
  SpinorField<P> y1 = random_field<P>(g, 2);
  SpinorField<P> y2 = SpinorField<P>::like(y1);
  blas::copy(y2, y1);

  const double fused = blas::axpy_norm(0.37, x, y1);
  blas::axpy(0.37, x, y2);
  const double composed = blas::norm2(y2);
  EXPECT_NEAR(fused, composed, tolerance<P>() * composed * 100 + 1e-12);
}

TYPED_TEST(BlasTyped, XmyNormMatchesManual) {
  using P = TypeParam;
  const Geometry g({4, 4, 4, 4});
  const SpinorField<P> x = random_field<P>(g, 3);
  SpinorField<P> y = random_field<P>(g, 4);
  SpinorField<P> expect = SpinorField<P>::like(y);
  // expect = x - y
  blas::copy(expect, x);
  blas::axpy(-1.0, y, expect);
  const double n = blas::xmy_norm(x, y);
  EXPECT_NEAR(n, blas::norm2(expect), tolerance<P>() * n * 100 + 1e-12);
  // y now holds x - y
  double diff = 0;
  for (std::int64_t i = 0; i < y.sites(); ++i)
    diff += static_cast<double>(quda::norm2(y.load(i) - expect.load(i)));
  EXPECT_NEAR(diff, 0.0, tolerance<P>() * n * 10 + 1e-12);
}

TYPED_TEST(BlasTyped, BicgstabPUpdateMatchesComposition) {
  using P = TypeParam;
  const Geometry g({4, 4, 4, 4});
  const SpinorField<P> r = random_field<P>(g, 5);
  const SpinorField<P> v = random_field<P>(g, 6);
  SpinorField<P> p = random_field<P>(g, 7);
  SpinorField<P> expect = SpinorField<P>::like(p);
  blas::copy(expect, p);

  const complexd beta{0.3, -0.4}, omega{1.1, 0.2};
  // expect = r + beta*(p - omega v)
  blas::caxpy(-omega, v, expect);      // p - omega v
  // scale by beta then add r: use caxpby-by-hand
  for (std::int64_t i = 0; i < expect.sites(); ++i) {
    auto e = expect.load(i);
    using real_t = typename P::real_t;
    e *= Complex<real_t>(static_cast<real_t>(beta.re), static_cast<real_t>(beta.im));
    e += r.load(i);
    expect.store(i, e);
  }
  blas::bicgstab_p_update(p, r, v, beta, omega);
  double diff = 0, den = 0;
  for (std::int64_t i = 0; i < p.sites(); ++i) {
    diff += static_cast<double>(quda::norm2(p.load(i) - expect.load(i)));
    den += static_cast<double>(quda::norm2(expect.load(i)));
  }
  EXPECT_LT(diff / den, tolerance<P>() * 100);
}

TYPED_TEST(BlasTyped, RUpdateReductionsMatchSeparateKernels) {
  using P = TypeParam;
  const Geometry g({4, 4, 4, 4});
  const SpinorField<P> s = random_field<P>(g, 8);
  const SpinorField<P> t = random_field<P>(g, 9);
  const SpinorField<P> r0 = random_field<P>(g, 10);
  SpinorField<P> r = SpinorField<P>::like(s);

  const complexd omega{0.8, -0.1};
  double r2 = 0;
  complexd rho;
  blas::bicgstab_r_update(r, s, t, omega, r2, rho, r0);

  EXPECT_NEAR(r2, blas::norm2(r), tolerance<P>() * r2 * 100 + 1e-12);
  const complexd rho_ref = blas::cdot(r0, r);
  EXPECT_NEAR(rho.re, rho_ref.re, tolerance<P>() * std::abs(rho_ref.re) * 100 + 1e-9);
  EXPECT_NEAR(rho.im, rho_ref.im, tolerance<P>() * std::abs(rho_ref.re) * 100 + 1e-9);
}

TYPED_TEST(BlasTyped, Gamma5IsInvolution) {
  using P = TypeParam;
  const Geometry g({4, 4, 4, 4});
  const SpinorField<P> x = random_field<P>(g, 11);
  SpinorField<P> y = SpinorField<P>::like(x);
  apply_gamma5<P>(y, x);
  apply_gamma5<P>(y, y);
  double diff = 0, den = 0;
  for (std::int64_t i = 0; i < x.sites(); ++i) {
    diff += static_cast<double>(quda::norm2(y.load(i) - x.load(i)));
    den += static_cast<double>(quda::norm2(x.load(i)));
  }
  EXPECT_LT(diff / den, tolerance<P>() * 100);
}

// --- auto-tuner -----------------------------------------------------------------

TEST(AutoTuner, PrefersPeakOccupancyForStreamingKernels) {
  blas::AutoTuner tuner(gpusim::geforce_gtx285());
  gpusim::KernelCost cost;
  cost.bytes = 1e7;
  cost.efficiency = 0.85;
  const auto& best = tuner.tune("stream", cost);
  EXPECT_EQ(best.launch.block_size, 256) << "256 threads has the peak occupancy factor";
  EXPECT_GT(best.time_us, 0.0);
}

TEST(AutoTuner, CachesByKey) {
  blas::AutoTuner tuner(gpusim::geforce_gtx285());
  gpusim::KernelCost a;
  a.bytes = 1e6;
  a.efficiency = 1.0;
  const auto* first = &tuner.tune("k1", a);
  const auto* again = &tuner.tune("k1", a);
  EXPECT_EQ(first, again);
  EXPECT_EQ(tuner.cache_size(), 1u);
  tuner.tune("k2", a);
  EXPECT_EQ(tuner.cache_size(), 2u);
}

TEST(AutoTuner, ExportsHeaderWithAllKeys) {
  blas::AutoTuner tuner(gpusim::geforce_gtx285());
  gpusim::KernelCost a;
  a.bytes = 1e6;
  a.efficiency = 1.0;
  tuner.tune("axpy_single", a);
  tuner.tune("caxpy_half", a);
  const std::string header = tuner.export_header();
  EXPECT_NE(header.find("BLOCKDIM_AXPY_SINGLE"), std::string::npos);
  EXPECT_NE(header.find("BLOCKDIM_CAXPY_HALF"), std::string::npos);
}

TEST(AutoTuner, TunedNeverWorseThanAnySweptConfig) {
  blas::AutoTuner tuner(gpusim::geforce_gtx285());
  gpusim::KernelCost cost;
  cost.bytes = 5e6;
  cost.flops = 2e6;
  cost.efficiency = 0.6;
  const auto& best = tuner.tune("sweep", cost);
  for (int block = 64; block <= 512; block += 64)
    EXPECT_LE(best.time_us, tuner.duration_at(cost, block) + 1e-12);
}

} // namespace
} // namespace quda
