// Rank-failure tolerance (DESIGN.md §10): seeded crash/hang injection,
// heartbeat detection turning silent peer death into typed RankFailure, and
// coordinated checkpoint/restart of the solver state.  Acceptance: a solve
// with a mid-iteration rank crash completes via checkpoint/restart with the
// fault-free true residual, fully deterministically (bit-identical
// RecoveryReport, checkpoint digests, and trace files for a fixed seed at
// any QUDA_SIM_THREADS budget), with no hang -- detection and recovery are
// bounded in simulated time and attributed by the critical-path analyzer.

#include "core/quda_api.h"
#include "dirac/gauge_init.h"
#include "exec/host_engine.h"
#include "sim/fault_model.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace quda {
namespace {

struct RankFailureFixture {
  Geometry g{LatticeDims{4, 4, 4, 8}};
  HostGaugeField u;
  HostSpinorField b;
  InvertParams params;

  RankFailureFixture() : u(g), b(g) {
    make_weak_field_gauge(u, 0.2, 9000);
    make_random_spinor(b, 9001);
    params.mass = 0.1;
    params.csw = 1.0;
    params.precision = Precision::Single;
    params.sloppy = Precision::Half;
    params.tol = 1e-6;
    params.delta = 1e-1;
    params.max_iter = 2000;
    params.checkpoint_interval = 1; // checkpoint at every reliable update
  }

  InvertResult run_clean(HostSpinorField& x) const {
    return invert_multi_gpu(sim::ClusterSpec::jlab_9g(4), u, b, x, params);
  }

  // a crash schedule whose window sits inside the solve: deaths fire
  // mid-iteration, not after the last allreduce
  sim::ClusterSpec crashy_spec(std::uint64_t seed, double solve_us, double rate) const {
    sim::ClusterSpec spec = sim::ClusterSpec::jlab_9g(4);
    spec.faults.seed = seed;
    spec.faults.crash_rate = rate;
    spec.faults.crash_window_us = 0.5 * solve_us;
    return spec;
  }
};

double rel_diff(const HostSpinorField& a, const HostSpinorField& b, const Geometry& g) {
  double num = 0, den = 0;
  for (std::int64_t i = 0; i < g.volume(); ++i) {
    num += norm2(a[i] - b[i]);
    den += norm2(b[i]);
  }
  return den > 0 ? std::sqrt(num / den) : std::sqrt(num);
}

// acceptance: a mid-solve rank crash is detected, the cluster rolls back to
// the last committed checkpoint, the dead rank's warm spare rejoins, and
// the solve converges to the fault-free residual
TEST(RankFailure, CrashMidSolveRecoversViaCheckpointRestart) {
  RankFailureFixture f;

  HostSpinorField x_clean(f.g);
  const InvertResult clean = f.run_clean(x_clean);
  ASSERT_TRUE(clean.stats.converged) << clean.stats.summary();
  EXPECT_TRUE(clean.faults.clean());
  EXPECT_GT(clean.faults.recovery.checkpoints, 0) << "checkpointing must be active";
  EXPECT_EQ(clean.faults.recovery.failures, 0);
  EXPECT_NE(clean.faults.recovery.checkpoint_digest, 0u);

  const sim::ClusterSpec spec = f.crashy_spec(4242, clean.simulated_time_us, 0.35);
  HostSpinorField x(f.g);
  const InvertResult r = invert_multi_gpu(spec, f.u, f.b, x, f.params);

  const RecoveryReport& rec = r.faults.recovery;
  ASSERT_GT(rec.crashes, 0) << "the crash injection must actually fire";
  EXPECT_GT(rec.failures, 0) << "a recovery epoch must have completed";
  EXPECT_GT(rec.respawns, 0) << "the dead rank must come back as a warm spare";
  EXPECT_GT(rec.restores, 0) << "survivors must roll back to the committed checkpoint";
  EXPECT_GT(rec.detection_us, 0.0) << "failure detection has a modeled latency";
  EXPECT_GT(rec.checkpoint_us, 0.0);
  EXPECT_GT(rec.restore_us, 0.0);
  EXPECT_FALSE(r.faults.clean());

  // the recovered solve completes and matches the fault-free answer
  ASSERT_TRUE(r.stats.converged) << r.stats.summary();
  EXPECT_NEAR(r.stats.true_residual, clean.stats.true_residual, f.params.tol);
  EXPECT_LT(rel_diff(x, x_clean, f.g), 1e-2);

  // detection + recovery are bounded in simulated time, and cost time: each
  // epoch can at worst pay detection + respawn + rollback/restore and redo
  // work since the last checkpoint (bounded by one clean solve)
  EXPECT_GT(r.simulated_time_us, clean.simulated_time_us);
  const double per_epoch_us = spec.faults.crash_window_us + spec.faults.hang_timeout_us +
                              spec.faults.respawn_us + spec.faults.rollback_us + 1e6 +
                              clean.simulated_time_us;
  EXPECT_LT(r.simulated_time_us,
            clean.simulated_time_us + static_cast<double>(rec.failures) * per_epoch_us);
}

// a hung rank is indistinguishable from a crashed one at the transport, but
// the failure detector charges the longer hang timeout
TEST(RankFailure, HangIsDetectedViaHangTimeout) {
  RankFailureFixture f;

  HostSpinorField x_clean(f.g);
  const InvertResult clean = f.run_clean(x_clean);
  ASSERT_TRUE(clean.stats.converged) << clean.stats.summary();

  sim::ClusterSpec spec = sim::ClusterSpec::jlab_9g(4);
  spec.faults.seed = 4242;
  spec.faults.hang_rate = 0.35;
  spec.faults.crash_window_us = 0.5 * clean.simulated_time_us;

  HostSpinorField x(f.g);
  const InvertResult r = invert_multi_gpu(spec, f.u, f.b, x, f.params);
  const RecoveryReport& rec = r.faults.recovery;
  ASSERT_GT(rec.hangs, 0) << "the hang injection must actually fire";
  EXPECT_EQ(rec.crashes, 0);
  EXPECT_GE(rec.detection_us, spec.faults.hang_timeout_us)
      << "a hang is only declared dead after the hang timeout";
  ASSERT_TRUE(r.stats.converged) << r.stats.summary();
  EXPECT_NEAR(r.stats.true_residual, clean.stats.true_residual, f.params.tol);
}

// with no committed checkpoint the recovery restarts from the initial
// guess: slower, but still correct
TEST(RankFailure, RecoveryWithoutCheckpointRestartsFromZero) {
  RankFailureFixture f;

  HostSpinorField x_clean(f.g);
  const InvertResult clean = f.run_clean(x_clean);
  ASSERT_TRUE(clean.stats.converged) << clean.stats.summary();

  sim::ClusterSpec spec = f.crashy_spec(4242, clean.simulated_time_us, 0.35);
  InvertParams p = f.params;
  p.checkpoint_interval = 0; // checkpointing off

  HostSpinorField x(f.g);
  const InvertResult r = invert_multi_gpu(spec, f.u, f.b, x, p);
  const RecoveryReport& rec = r.faults.recovery;
  ASSERT_GT(rec.crashes, 0);
  EXPECT_EQ(rec.checkpoints, 0);
  EXPECT_EQ(rec.restores, 0);
  EXPECT_EQ(rec.checkpoint_digest, 0u);
  ASSERT_TRUE(r.stats.converged) << r.stats.summary();
  EXPECT_NEAR(r.stats.true_residual, clean.stats.true_residual, f.params.tol);
}

// every rank dying on every incarnation exhausts the cluster-global
// recovery budget: a typed abort on all ranks, never a hang
TEST(RankFailure, RecoveryBudgetExhaustionAbortsDeterministically) {
  RankFailureFixture f;
  sim::ClusterSpec spec = sim::ClusterSpec::jlab_9g(4);
  spec.faults.seed = 99;
  spec.faults.crash_rate = 1.0; // every incarnation dies
  spec.faults.crash_window_us = 2000.0;
  spec.faults.max_failures = 2;
  HostSpinorField x(f.g);
  EXPECT_THROW(invert_multi_gpu(spec, f.u, f.b, x, f.params), std::runtime_error);
}

// the recovery spans show up in the critical-path attribution as a typed
// Recovery category (detect/respawn/rollback/restore/resume + checkpoints)
TEST(RankFailure, RecoveryIsAttributedOnTheCriticalPath) {
  RankFailureFixture f;

  HostSpinorField x_clean(f.g);
  const InvertResult clean = f.run_clean(x_clean);
  ASSERT_TRUE(clean.stats.converged) << clean.stats.summary();

  // export the crashy trace under a well-known name: tools/quick_gate.sh
  // lints it against the recovery pairing rules in tools/trace_lint.py
  const std::string trace_base = "trace_rank_failure.json";
  std::remove(trace_base.c_str());
  for (int n = 1; n < 16; ++n) std::remove((trace_base + "." + std::to_string(n)).c_str());

  sim::ClusterSpec spec = f.crashy_spec(4242, clean.simulated_time_us, 0.35);
  spec.trace.enabled = true;
  spec.trace.path = trace_base;
  HostSpinorField x(f.g);
  const InvertResult r = invert_multi_gpu(spec, f.u, f.b, x, f.params);
  ASSERT_GT(r.faults.recovery.crashes, 0);
  ASSERT_TRUE(r.stats.converged) << r.stats.summary();

  ASSERT_TRUE(r.traced);
  ASSERT_TRUE(r.critpath.valid) << r.critpath.error;
  EXPECT_GT(r.critpath.recovery_us(), 0.0)
      << "recovery time must be attributed as its own category";
  // the walk still tiles the makespan exactly
  EXPECT_DOUBLE_EQ(r.critpath.path_us, r.critpath.makespan_us);
}

// The exporters route every output path through trace::unique_trace_path,
// whose process-wide counter may suffix our base name (base.1, base.2, ...)
// depending on how many exports ran earlier in this process.  Each run here
// uses a distinct base, so exactly one suffixed variant exists: find it,
// read it, delete it.
std::string slurp_export(const std::string& base) {
  for (int n = 0; n < 64; ++n) {
    const std::string path = n == 0 ? base : base + "." + std::to_string(n);
    std::ifstream in(path, std::ios::binary);
    if (!in) continue;
    std::ostringstream ss;
    ss << in.rdbuf();
    std::remove(path.c_str());
    // drop the one-line provenance stamp: it names the thread budget, which
    // is exactly what the bitwise comparisons below vary
    std::string text = ss.str(), out;
    std::size_t pos = 0;
    while (pos < text.size()) {
      std::size_t eol = text.find('\n', pos);
      if (eol == std::string::npos) eol = text.size();
      const std::string line = text.substr(pos, eol - pos);
      if (line.find("\"provenance\"") == std::string::npos) {
        out += line;
        if (eol < text.size()) out += '\n';
      }
      pos = eol + 1;
    }
    return out;
  }
  return "";
}

// acceptance: for a fixed seed the whole recovery story -- report,
// checkpoint digests, exported trace (timestamps included), checkpoint
// event log -- is bit-identical across runs and QUDA_SIM_THREADS budgets
TEST(RankFailure, RecoveryIsDeterministicAcrossThreadBudgets) {
  RankFailureFixture f;

  HostSpinorField x_clean(f.g);
  const InvertResult clean = f.run_clean(x_clean);
  ASSERT_TRUE(clean.stats.converged) << clean.stats.summary();

  struct RunResult {
    InvertResult r;
    HostSpinorField x;
    std::string trace_json;
    std::string ckpt_log;
  };
  int run_index = 0;
  auto run_at_budget = [&](int budget) {
    exec::set_thread_budget(budget);
    sim::ClusterSpec spec = f.crashy_spec(4242, clean.simulated_time_us, 0.35);
    spec.trace.enabled = true;
    const std::string trace_path =
        "rank_failure_det_" + std::to_string(run_index) + ".trace.json";
    const std::string ckpt_path =
        "rank_failure_det_" + std::to_string(run_index) + ".ckpt.jsonl";
    ++run_index;
    spec.trace.path = trace_path;
    setenv("QUDA_SIM_CKPT", ckpt_path.c_str(), 1);
    RunResult out{InvertResult{}, HostSpinorField(f.g), "", ""};
    out.r = invert_multi_gpu(spec, f.u, f.b, out.x, f.params);
    unsetenv("QUDA_SIM_CKPT");
    out.trace_json = slurp_export(trace_path);
    out.ckpt_log = slurp_export(ckpt_path);
    return out;
  };

  const RunResult base = run_at_budget(1);
  ASSERT_GT(base.r.faults.recovery.crashes, 0);
  ASSERT_TRUE(base.r.stats.converged) << base.r.stats.summary();
  ASSERT_FALSE(base.trace_json.empty());
  ASSERT_FALSE(base.ckpt_log.empty());
  EXPECT_NE(base.r.faults.recovery.checkpoint_digest, 0u);

  for (int budget : {2, 8}) {
    const RunResult other = run_at_budget(budget);
    const RecoveryReport& a = base.r.faults.recovery;
    const RecoveryReport& b = other.r.faults.recovery;
    EXPECT_EQ(a.failures, b.failures) << "budget " << budget;
    EXPECT_EQ(a.crashes, b.crashes) << "budget " << budget;
    EXPECT_EQ(a.hangs, b.hangs) << "budget " << budget;
    EXPECT_EQ(a.respawns, b.respawns) << "budget " << budget;
    EXPECT_EQ(a.checkpoints, b.checkpoints) << "budget " << budget;
    EXPECT_EQ(a.restores, b.restores) << "budget " << budget;
    EXPECT_DOUBLE_EQ(a.detection_us, b.detection_us) << "budget " << budget;
    EXPECT_DOUBLE_EQ(a.checkpoint_us, b.checkpoint_us) << "budget " << budget;
    EXPECT_DOUBLE_EQ(a.restore_us, b.restore_us) << "budget " << budget;
    EXPECT_EQ(a.checkpoint_digest, b.checkpoint_digest) << "budget " << budget;
    EXPECT_DOUBLE_EQ(base.r.simulated_time_us, other.r.simulated_time_us)
        << "budget " << budget;
    EXPECT_EQ(base.trace_json, other.trace_json)
        << "exported trace must be bit-identical at budget " << budget;
    EXPECT_EQ(base.ckpt_log, other.ckpt_log)
        << "checkpoint event log must be bit-identical at budget " << budget;
    for (std::int64_t i = 0; i < f.g.volume(); ++i)
      ASSERT_EQ(norm2(base.x[i] - other.x[i]), 0.0) << "site " << i;
  }
  exec::set_thread_budget(0); // back to the environment default
}

// property sweep: for every (seed, checkpoint-interval) draw the recovered
// solve converges and lands on the fault-free residual, and the recovery
// outcome is invariant under the thread budget
TEST(RankFailureProperty, RecoveredSolvesConvergeAcrossSeeds) {
  RankFailureFixture f;

  HostSpinorField x_clean(f.g);
  const InvertResult clean = f.run_clean(x_clean);
  ASSERT_TRUE(clean.stats.converged) << clean.stats.summary();

  long total_crashes = 0;
  for (const std::uint64_t seed : {11ull, 23ull, 4242ull}) {
    for (const int interval : {1, 3}) {
      InvertParams p = f.params;
      p.checkpoint_interval = interval;
      const sim::ClusterSpec spec = f.crashy_spec(seed, clean.simulated_time_us, 0.35);

      exec::set_thread_budget(1);
      HostSpinorField x1(f.g);
      const InvertResult r1 = invert_multi_gpu(spec, f.u, f.b, x1, p);
      ASSERT_TRUE(r1.stats.converged)
          << "seed " << seed << " interval " << interval << ": " << r1.stats.summary();
      EXPECT_NEAR(r1.stats.true_residual, clean.stats.true_residual, p.tol)
          << "seed " << seed << " interval " << interval;
      total_crashes += r1.faults.recovery.crashes;

      exec::set_thread_budget(8);
      HostSpinorField x8(f.g);
      const InvertResult r8 = invert_multi_gpu(spec, f.u, f.b, x8, p);
      EXPECT_EQ(r1.faults.recovery.crashes, r8.faults.recovery.crashes);
      EXPECT_EQ(r1.faults.recovery.failures, r8.faults.recovery.failures);
      EXPECT_EQ(r1.faults.recovery.checkpoint_digest, r8.faults.recovery.checkpoint_digest);
      EXPECT_DOUBLE_EQ(r1.simulated_time_us, r8.simulated_time_us);
      for (std::int64_t i = 0; i < f.g.volume(); ++i)
        ASSERT_EQ(norm2(x1[i] - x8[i]), 0.0) << "site " << i;
    }
  }
  exec::set_thread_budget(0);
  EXPECT_GT(total_crashes, 0) << "the sweep must include real crash draws";
}

} // namespace
} // namespace quda
