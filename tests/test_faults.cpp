// Fault injection and recovery: deterministic fault schedules, reliable
// message delivery under payload corruption and drops, typed CommTimeout on
// exhausted retries (no deadlock), solver SDC rollback, and reproducibility
// of both the fault schedule and the simulated-time totals.

#include "comm/qmp.h"
#include "core/quda_api.h"
#include "dirac/gauge_init.h"
#include "parallel/modeled_solver.h"
#include "sim/fault_model.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace quda {
namespace {

// --- fault model unit tests --------------------------------------------------

TEST(FaultModel, SameSeedSameSchedule) {
  sim::FaultConfig cfg;
  cfg.seed = 777;
  cfg.drop_rate = 0.1;
  cfg.corrupt_rate = 0.1;
  cfg.delay_rate = 0.1;
  cfg.stall_rate = 0.05;
  cfg.device_flip_rate = 0.1;
  const sim::FaultModel a(cfg), b(cfg);
  for (int rank = 0; rank < 4; ++rank) {
    for (std::uint64_t e = 0; e < 1000; ++e) {
      const sim::MessageFault fa = a.message_fault(rank, e);
      const sim::MessageFault fb = b.message_fault(rank, e);
      EXPECT_EQ(fa.drop, fb.drop);
      EXPECT_EQ(fa.corrupt, fb.corrupt);
      EXPECT_EQ(fa.corrupt_bits, fb.corrupt_bits);
      EXPECT_EQ(fa.delay_factor, fb.delay_factor);
      EXPECT_EQ(fa.stall_us, fb.stall_us);
      EXPECT_EQ(a.device_fault(rank, e), b.device_fault(rank, e));
    }
  }
}

TEST(FaultModel, RanksSeeDifferentSchedules) {
  sim::FaultConfig cfg;
  cfg.seed = 777;
  cfg.drop_rate = 0.2;
  const sim::FaultModel m(cfg);
  int differing = 0;
  for (std::uint64_t e = 0; e < 200; ++e)
    if (m.message_fault(0, e).drop != m.message_fault(1, e).drop) ++differing;
  EXPECT_GT(differing, 0) << "rank must be part of the draw key";
}

TEST(FaultModel, RatesAreHonoredApproximately) {
  sim::FaultConfig cfg;
  cfg.seed = 99;
  cfg.drop_rate = 0.25;
  const sim::FaultModel m(cfg);
  int drops = 0;
  const int n = 4000;
  for (std::uint64_t e = 0; e < n; ++e)
    if (m.message_fault(0, e).drop) ++drops;
  EXPECT_NEAR(static_cast<double>(drops) / n, cfg.drop_rate, 0.03);
}

// --- FaultConfig validation --------------------------------------------------

// every rejected field raises the typed FaultConfigError naming the field
TEST(FaultConfigValidate, RejectsEachBadField) {
  auto rejects = [](void (*mutate)(sim::FaultConfig&)) {
    sim::FaultConfig cfg;
    cfg.seed = 1;
    mutate(cfg);
    EXPECT_THROW(cfg.validate(), sim::FaultConfigError);
  };
  // probabilities must live in [0, 1]
  rejects([](sim::FaultConfig& c) { c.drop_rate = -0.1; });
  rejects([](sim::FaultConfig& c) { c.drop_rate = 1.5; });
  rejects([](sim::FaultConfig& c) { c.delay_rate = -1.0; });
  rejects([](sim::FaultConfig& c) { c.corrupt_rate = 2.0; });
  rejects([](sim::FaultConfig& c) { c.device_flip_rate = -0.5; });
  rejects([](sim::FaultConfig& c) { c.stall_rate = 1.01; });
  rejects([](sim::FaultConfig& c) { c.crash_rate = -0.01; });
  rejects([](sim::FaultConfig& c) { c.hang_rate = 1.0001; });
  // a delayed path cannot beat the nominal one
  rejects([](sim::FaultConfig& c) { c.delay_factor = 0.5; });
  // durations are non-negative
  rejects([](sim::FaultConfig& c) { c.stall_us = -1.0; });
  rejects([](sim::FaultConfig& c) { c.heartbeat_interval_us = -1.0; });
  rejects([](sim::FaultConfig& c) { c.hang_timeout_us = -1.0; });
  rejects([](sim::FaultConfig& c) { c.respawn_us = -1.0; });
  rejects([](sim::FaultConfig& c) { c.rollback_us = -1.0; });
  // the recovery budget cannot be negative
  rejects([](sim::FaultConfig& c) { c.max_failures = -1; });
  // death times need a positive draw window once process faults are on
  rejects([](sim::FaultConfig& c) {
    c.crash_rate = 0.1;
    c.crash_window_us = 0.0;
  });
  // seed 0 degenerates the per-kind seed^salt mixing
  rejects([](sim::FaultConfig& c) {
    c.seed = 0;
    c.crash_rate = 0.1;
  });
}

TEST(FaultConfigValidate, AcceptsDefaultsAndEnabledConfigs) {
  sim::FaultConfig off; // all rates zero, seed 0: nothing enabled, valid
  EXPECT_NO_THROW(off.validate());

  sim::FaultConfig on;
  on.seed = 42;
  on.drop_rate = 0.1;
  on.crash_rate = 0.05;
  on.hang_rate = 0.05;
  EXPECT_NO_THROW(on.validate());
}

// the cluster totals are exactly the sum of the per-rank counters, for
// every field -- including the crash/hang/detection/recovery ones
// --- generic-catch death guard ----------------------------------------------
// rethrow_if_rank_death() is the sanctioned escape hatch for a generic
// `catch (...)` that sits upstream of transport ops (rule sim-death-swallow
// in tools/semantic_check.py): a RankDeath passes through untouched, every
// other exception falls through to the handler body.

TEST(RankDeathGuard, RethrowsRankDeathThroughGenericCatch) {
  bool swallowed = false;
  bool rethrown = false;
  try {
    try {
      throw sim::RankDeath{3, sim::DeathKind::Hang, 42.0};
    } catch (...) {
      sim::rethrow_if_rank_death();
      swallowed = true; // must stay unreachable for a death
    }
  } catch (const sim::RankDeath&) {
    rethrown = true;
  }
  EXPECT_TRUE(rethrown);
  EXPECT_FALSE(swallowed);
}

TEST(RankDeathGuard, PassesOrdinaryExceptionsToTheHandler) {
  bool handled = false;
  try {
    throw std::runtime_error("plain failure");
  } catch (...) {
    sim::rethrow_if_rank_death();
    handled = true;
  }
  EXPECT_TRUE(handled);
}

TEST(RankDeathGuard, PreservesTheDeathPayload) {
  try {
    try {
      throw sim::RankDeath{7, sim::DeathKind::Crash, 123.5};
    } catch (...) {
      sim::rethrow_if_rank_death();
      FAIL() << "guard swallowed a RankDeath";
    }
  } catch (const sim::RankDeath& d) {
    EXPECT_EQ(d.rank, 7);
    EXPECT_EQ(d.kind, sim::DeathKind::Crash);
    EXPECT_DOUBLE_EQ(d.time_us, 123.5);
  }
}

TEST(FaultCountersAgg, PerRankCountersSumToClusterTotals) {
  sim::ClusterSpec spec = sim::ClusterSpec::jlab_9g(4);
  spec.faults.seed = 606;
  spec.faults.crash_rate = 0.5;
  spec.faults.hang_rate = 0.3;
  spec.faults.crash_window_us = 50.0;
  spec.faults.drop_rate = 0.02;

  sim::VirtualCluster cluster(spec);
  cluster.run([&](sim::RankContext& ctx) {
    const sim::FaultConfig& fc = ctx.spec().faults;
    auto& c = ctx.faults().counters();
    ctx.faults().arm_deaths(ctx.clock().now_us);
    // distinct per-rank checkpoint accounting, so an aggregation bug that
    // drops or double-counts a rank cannot cancel out
    c.checkpoints_committed += ctx.rank() + 1;
    c.checkpoint_us += 10.0 * (ctx.rank() + 1);
    for (int iter = 0; iter < 50; ++iter) {
      try {
        ctx.allreduce_sum(1.0);
      } catch (const sim::RankDeath&) { // this rank died: respawn + rejoin
        ctx.clock().advance(fc.respawn_us);
        ++c.respawns;
        ++c.restores;
        c.restore_us += fc.rollback_us;
        ctx.faults().arm_deaths(ctx.clock().now_us);
        (void)ctx.recovery_rendezvous();
      } catch (const sim::RankFailure&) { // a peer died: detect + roll back
        ctx.enter_recovery();
        ++c.rank_failures_detected;
        c.detection_us += fc.heartbeat_interval_us;
        (void)ctx.recovery_rendezvous();
      }
    }
  });

  const auto& per_rank = cluster.per_rank_fault_counters();
  ASSERT_EQ(per_rank.size(), 4u);
  sim::FaultCounters sum;
  for (const sim::FaultCounters& c : per_rank) sum += c;

  const sim::FaultCounters& tot = cluster.fault_totals();
  EXPECT_GT(tot.crashes + tot.hangs, 0) << "deaths must actually fire in this schedule";
  EXPECT_EQ(sum.drops, tot.drops);
  EXPECT_EQ(sum.delays, tot.delays);
  EXPECT_EQ(sum.corruptions, tot.corruptions);
  EXPECT_EQ(sum.device_flips, tot.device_flips);
  EXPECT_EQ(sum.stalls, tot.stalls);
  EXPECT_EQ(sum.checksum_errors, tot.checksum_errors);
  EXPECT_EQ(sum.retries, tot.retries);
  EXPECT_EQ(sum.recovered_messages, tot.recovered_messages);
  EXPECT_DOUBLE_EQ(sum.recovery_us, tot.recovery_us);
  EXPECT_EQ(sum.crashes, tot.crashes);
  EXPECT_EQ(sum.hangs, tot.hangs);
  EXPECT_EQ(sum.rank_failures_detected, tot.rank_failures_detected);
  EXPECT_EQ(sum.respawns, tot.respawns);
  EXPECT_EQ(sum.checkpoints_committed, tot.checkpoints_committed);
  EXPECT_EQ(sum.restores, tot.restores);
  EXPECT_DOUBLE_EQ(sum.detection_us, tot.detection_us);
  EXPECT_DOUBLE_EQ(sum.checkpoint_us, tot.checkpoint_us);
  EXPECT_DOUBLE_EQ(sum.restore_us, tot.restore_us);
  EXPECT_EQ(sum.checkpoints_committed, 1 + 2 + 3 + 4);
}

// --- reliable delivery through the full solver stack -------------------------

struct FaultFixture {
  Geometry g{LatticeDims{4, 4, 4, 8}};
  HostGaugeField u;
  HostSpinorField b;
  InvertParams params;

  FaultFixture() : u(g), b(g) {
    make_weak_field_gauge(u, 0.2, 9000);
    make_random_spinor(b, 9001);
    params.mass = 0.1;
    params.csw = 1.0;
    params.precision = Precision::Single;
    params.sloppy = Precision::Half;
    params.tol = 1e-6;
    params.delta = 1e-1;
    params.max_iter = 2000;
  }
};

// acceptance (1): a 4-rank mixed-precision solve with injected payload
// bit-flips and drops, checksums + retry on, converges to the identical
// solution of the fault-free run, with recovered messages reported
TEST(FaultRecovery, CorruptedHalosRecoverToFaultFreeSolution) {
  FaultFixture f;

  HostSpinorField x_clean(f.g);
  const InvertResult clean =
      invert_multi_gpu(sim::ClusterSpec::jlab_9g(4), f.u, f.b, x_clean, f.params);
  ASSERT_TRUE(clean.stats.converged) << clean.stats.summary();
  EXPECT_TRUE(clean.faults.clean());
  EXPECT_EQ(clean.faults.recovered, 0);

  sim::ClusterSpec faulty = sim::ClusterSpec::jlab_9g(4);
  faulty.faults.seed = 2024;
  faulty.faults.corrupt_rate = 0.05;
  faulty.faults.drop_rate = 0.02;
  InvertParams p = f.params;
  p.retry.checksums = true;
  p.retry.max_retries = 5;

  HostSpinorField x_faulty(f.g);
  const InvertResult r = invert_multi_gpu(faulty, f.u, f.b, x_faulty, p);
  ASSERT_TRUE(r.stats.converged) << r.stats.summary();

  EXPECT_GT(r.faults.corruptions + r.faults.drops, 0) << "faults must actually fire";
  EXPECT_GT(r.faults.checksum_errors, 0) << "receivers must catch corrupt frames";
  EXPECT_GT(r.faults.retries, 0);
  EXPECT_GT(r.faults.recovered, 0);
  EXPECT_GT(r.faults.recovery_time_us, 0.0);

  // every damaged frame was discarded and retransmitted, so the numerics
  // are bit-identical to the fault-free run
  EXPECT_EQ(r.stats.iterations, clean.stats.iterations);
  EXPECT_NEAR(r.stats.true_residual, clean.stats.true_residual,
              1e-12 + 1e-6 * clean.stats.true_residual);
  double num = 0, den = 0;
  for (std::int64_t i = 0; i < f.g.volume(); ++i) {
    num += norm2(x_faulty[i] - x_clean[i]);
    den += norm2(x_clean[i]);
  }
  EXPECT_LT(std::sqrt(num / den), 1e-12) << "recovered solve must match fault-free solve";

  // recovery costs simulated time
  EXPECT_GT(r.simulated_time_us, clean.simulated_time_us);
}

// acceptance (2): a permanent drop exhausts the retry budget and every rank
// fails with a typed CommTimeout -- no deadlock, no abort
TEST(FaultRecovery, ExhaustedRetriesRaiseCommTimeoutOnEveryRank) {
  sim::ClusterSpec spec = sim::ClusterSpec::jlab_9g(4);
  spec.faults.seed = 7;
  spec.faults.drop_rate = 1.0; // the link is dead

  sim::RetryPolicy rp;
  rp.max_retries = 2;

  sim::VirtualCluster cluster(spec);
  std::vector<int> timed_out(4, 0), wrong_error(4, 0);
  cluster.run([&](sim::RankContext& ctx) {
    comm::QmpGrid grid(ctx);
    grid.set_retry_policy(rp);
    try {
      // ring exchange: every rank sends forward and receives from behind
      auto pending = grid.post_receive(comm::Direction::Backward, 0);
      grid.send_to(comm::Direction::Forward, 0, std::vector<std::byte>(64), 64);
      (void)grid.wait_receive(pending);
    } catch (const sim::CommTimeout&) {
      timed_out[static_cast<std::size_t>(ctx.rank())] = 1;
    } catch (...) {
      wrong_error[static_cast<std::size_t>(ctx.rank())] = 1;
    }
  });

  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(timed_out[static_cast<std::size_t>(r)], 1) << "rank " << r;
    EXPECT_EQ(wrong_error[static_cast<std::size_t>(r)], 0) << "rank " << r;
  }
  EXPECT_GT(cluster.fault_totals().drops, 0);
}

// the same failure propagates out of invert_multi_gpu as the typed error
TEST(FaultRecovery, InvertPropagatesCommTimeout) {
  FaultFixture f;
  sim::ClusterSpec spec = sim::ClusterSpec::jlab_9g(4);
  spec.faults.seed = 7;
  spec.faults.drop_rate = 1.0;
  InvertParams p = f.params;
  p.retry.max_retries = 1;
  HostSpinorField x(f.g);
  EXPECT_THROW(invert_multi_gpu(spec, f.u, f.b, x, p), sim::CommTimeout);
}

// acceptance (3): the same seed reproduces the identical fault schedule and
// identical simulated-time totals across two runs
TEST(FaultRecovery, SameSeedReproducesScheduleAndTimings) {
  FaultFixture f;
  sim::ClusterSpec spec = sim::ClusterSpec::jlab_9g(4);
  spec.faults.seed = 31337;
  spec.faults.corrupt_rate = 0.03;
  spec.faults.drop_rate = 0.02;
  spec.faults.delay_rate = 0.05;
  spec.faults.stall_rate = 0.01;
  InvertParams p = f.params;
  p.retry.checksums = true;
  p.retry.max_retries = 5;

  HostSpinorField x1(f.g), x2(f.g);
  const InvertResult r1 = invert_multi_gpu(spec, f.u, f.b, x1, p);
  const InvertResult r2 = invert_multi_gpu(spec, f.u, f.b, x2, p);
  ASSERT_TRUE(r1.stats.converged) << r1.stats.summary();

  EXPECT_EQ(r1.faults.drops, r2.faults.drops);
  EXPECT_EQ(r1.faults.delays, r2.faults.delays);
  EXPECT_EQ(r1.faults.corruptions, r2.faults.corruptions);
  EXPECT_EQ(r1.faults.stalls, r2.faults.stalls);
  EXPECT_EQ(r1.faults.checksum_errors, r2.faults.checksum_errors);
  EXPECT_EQ(r1.faults.retries, r2.faults.retries);
  EXPECT_EQ(r1.faults.recovered, r2.faults.recovered);
  EXPECT_EQ(r1.stats.iterations, r2.stats.iterations);
  EXPECT_DOUBLE_EQ(r1.faults.recovery_time_us, r2.faults.recovery_time_us);
  EXPECT_DOUBLE_EQ(r1.simulated_time_us, r2.simulated_time_us);
  for (std::int64_t i = 0; i < f.g.volume(); ++i)
    ASSERT_EQ(norm2(x1[i] - x2[i]), 0.0) << "site " << i;
}

// --- SDC detection and rollback ----------------------------------------------

// device-memory bit flips ("ECC off") corrupt iterates; the reliable-update
// SDC check detects the residual jump and rolls back to the last reliable
// iterate, and the solve still converges to a correct solution
TEST(FaultRecovery, DeviceFlipsAreDetectedAndRolledBack) {
  // a larger lattice than the fixture's: enough iterations (and flip draws)
  // that some flips land in exponent bits and actually trip the SDC check
  const Geometry g{LatticeDims{8, 8, 8, 16}};
  HostGaugeField u(g);
  make_weak_field_gauge(u, 0.2, 9000);
  HostSpinorField b(g);
  make_point_source(b, {0, 0, 0, 0}, 0, 0);

  InvertParams p;
  p.mass = 0.1;
  p.csw = 1.0;
  p.precision = Precision::Double;
  p.sloppy = Precision::Single;
  p.tol = 1e-8;
  p.max_iter = 2000;
  p.sdc_threshold = 10.0;
  p.max_rollbacks = 20;

  sim::ClusterSpec spec = sim::ClusterSpec::jlab_9g(4);
  spec.faults.seed = 99;
  spec.faults.device_flip_rate = 0.3; // high enough that some flips hit exponent bits
  HostSpinorField x(g);
  const InvertResult r = invert_multi_gpu(spec, u, b, x, p);
  EXPECT_GT(r.faults.device_flips, 0) << "flips must actually fire";
  EXPECT_GT(r.faults.sdc_detected, 0) << "rollback branch must actually execute";
  EXPECT_GT(r.faults.rollbacks, 0);
  ASSERT_TRUE(r.stats.converged) << r.stats.summary();
  EXPECT_LT(r.stats.true_residual, 1e-7);
}

// with detection off, the modeled solver's schedule is unchanged by the
// flips; with it on, rollbacks repeat reliable segments and cost time
TEST(FaultRecovery, ModeledRollbackChargesTime) {
  parallel::ModeledSolverConfig cfg;
  cfg.local = LatticeDims{8, 8, 8, 16};
  cfg.outer = Precision::Single;
  cfg.sloppy = Precision::Half;
  cfg.iterations = 120;
  cfg.reliable_interval = 40;

  sim::ClusterSpec clean = sim::ClusterSpec::jlab_9g(4);
  sim::VirtualCluster c0(clean);
  const auto r0 = parallel::run_modeled_solver(c0, cfg);
  ASSERT_TRUE(r0.fits);
  EXPECT_EQ(r0.rollbacks, 0);
  EXPECT_EQ(r0.iterations, cfg.iterations);

  sim::ClusterSpec faulty = clean;
  faulty.faults.seed = 5150;
  faulty.faults.device_flip_rate = 0.01;
  sim::VirtualCluster c1(faulty);
  const auto r1 = parallel::run_modeled_solver(c1, cfg);
  ASSERT_TRUE(r1.fits);
  EXPECT_GT(r1.faults.device_flips, 0);
  EXPECT_GT(r1.rollbacks, 0);
  EXPECT_EQ(r1.iterations, cfg.iterations + r1.rollbacks * cfg.reliable_interval);
  EXPECT_GT(r1.time_us, r0.time_us) << "re-run segments must cost simulated time";
}

} // namespace
} // namespace quda
