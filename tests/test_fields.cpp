// Unit tests: device field store/load round trips in all three precisions,
// half-precision quantization error bounds, ghost end zones, and the gauge
// ghost living inside the padding.

#include "dirac/gauge_init.h"
#include "dirac/transfer.h"
#include "lattice/clover_field.h"
#include "lattice/gauge_field.h"
#include "lattice/spinor_field.h"

#include <gtest/gtest.h>

#include <random>

namespace quda {
namespace {

Spinor<double> random_spinor(std::mt19937_64& rng, double scale = 1.0) {
  std::normal_distribution<double> d(0.0, scale);
  Spinor<double> s;
  for (std::size_t spin = 0; spin < 4; ++spin)
    for (std::size_t c = 0; c < 3; ++c) s.s[spin][c] = complexd(d(rng), d(rng));
  return s;
}

template <typename P> class SpinorFieldTyped : public ::testing::Test {};
using AllPrecisions = ::testing::Types<PrecDouble, PrecSingle, PrecHalf>;
TYPED_TEST_SUITE(SpinorFieldTyped, AllPrecisions);

TYPED_TEST(SpinorFieldTyped, StoreLoadRoundTrip) {
  using P = TypeParam;
  const Geometry g({4, 4, 4, 4});
  SpinorField<P> f(g);
  std::mt19937_64 rng(42);

  std::vector<Spinor<double>> ref(static_cast<std::size_t>(f.sites()));
  for (std::int64_t i = 0; i < f.sites(); ++i) {
    ref[static_cast<std::size_t>(i)] = random_spinor(rng);
    f.store(i, convert<typename P::real_t>(ref[static_cast<std::size_t>(i)]));
  }

  // tolerance: exact in double; float rounding in single; ~1/32767 relative
  // to the per-spinor max in half
  const double tol = P::value == Precision::Double   ? 1e-30
                     : P::value == Precision::Single ? 1e-12
                                                     : 2e-4;
  for (std::int64_t i = 0; i < f.sites(); ++i) {
    const Spinor<double> got = convert<double>(f.load(i));
    const Spinor<double>& want = ref[static_cast<std::size_t>(i)];
    EXPECT_LT(norm2(got - want) / norm2(want), tol);
  }
}

TYPED_TEST(SpinorFieldTyped, GhostEndZoneRoundTrip) {
  using P = TypeParam;
  using real_t = typename P::real_t;
  const Geometry g({4, 4, 4, 4});
  SpinorField<P> f(g);
  std::mt19937_64 rng(17);
  std::normal_distribution<double> d(0.0, 1.0);

  for (int face = 0; face < 2; ++face) {
    for (std::int64_t fs = 0; fs < f.face_sites(); ++fs) {
      HalfSpinor<real_t> h;
      double m = 0;
      for (std::size_t sp = 0; sp < 2; ++sp)
        for (std::size_t c = 0; c < 3; ++c) {
          const double re = d(rng), im = d(rng);
          h.s[sp][c] = Complex<real_t>(static_cast<real_t>(re), static_cast<real_t>(im));
          m = std::max({m, std::abs(re), std::abs(im)});
        }
      f.store_ghost(static_cast<GhostFace>(face), fs, h, static_cast<float>(m));
      const HalfSpinor<real_t> got = f.load_ghost(static_cast<GhostFace>(face), fs);
      for (std::size_t sp = 0; sp < 2; ++sp)
        for (std::size_t c = 0; c < 3; ++c) {
          const double tol = P::value == Precision::Half ? 2e-4 * m : 1e-6 * m + 1e-30;
          EXPECT_NEAR(static_cast<double>(got.s[sp][c].re),
                      static_cast<double>(h.s[sp][c].re), tol);
        }
    }
  }
}

TYPED_TEST(SpinorFieldTyped, GhostDoesNotClobberBody) {
  using P = TypeParam;
  using real_t = typename P::real_t;
  const Geometry g({4, 4, 4, 4});
  SpinorField<P> f(g);
  std::mt19937_64 rng(29);
  std::vector<Spinor<double>> ref(static_cast<std::size_t>(f.sites()));
  for (std::int64_t i = 0; i < f.sites(); ++i) {
    ref[static_cast<std::size_t>(i)] = random_spinor(rng);
    f.store(i, convert<real_t>(ref[static_cast<std::size_t>(i)]));
  }
  // fill both ghost faces
  for (int face = 0; face < 2; ++face)
    for (std::int64_t fs = 0; fs < f.face_sites(); ++fs) {
      HalfSpinor<real_t> h;
      for (std::size_t sp = 0; sp < 2; ++sp)
        for (std::size_t c = 0; c < 3; ++c) h.s[sp][c] = Complex<real_t>(real_t(0.5), real_t(-0.5));
      f.store_ghost(static_cast<GhostFace>(face), fs, h, 0.5f);
    }
  // body intact
  for (std::int64_t i = 0; i < f.sites(); ++i) {
    const Spinor<double> got = convert<double>(f.load(i));
    const double tol = P::value == Precision::Double   ? 1e-30
                       : P::value == Precision::Single ? 1e-12
                                                       : 2e-4;
    EXPECT_LT(norm2(got - ref[static_cast<std::size_t>(i)]) /
                  norm2(ref[static_cast<std::size_t>(i)]),
              tol);
  }
}

TEST(HalfPrecision, QuantizationErrorBound) {
  // |from_half(to_half(x)) - x| <= 1/(2*32767) for x in [-1, 1]
  std::mt19937_64 rng(1);
  std::uniform_real_distribution<float> u(-1.0f, 1.0f);
  for (int i = 0; i < 10000; ++i) {
    const float x = u(rng);
    EXPECT_NEAR(from_half(to_half(x)), x, 0.5f / kHalfPointScale + 1e-7f);
  }
  // clamping
  EXPECT_EQ(to_half(1.5f), to_half(1.0f));
  EXPECT_EQ(to_half(-1.5f), to_half(-1.0f));
}

TEST(HalfPrecision, SpinorPackSharedNorm) {
  std::mt19937_64 rng(5);
  const Spinor<double> sd = random_spinor(rng, 100.0); // large dynamic range
  const Spinor<float> s = convert<float>(sd);
  const PackedSpinorHalf p = pack_half(s);
  EXPECT_FLOAT_EQ(p.norm, max_abs(s));
  const Spinor<float> u = unpack_half(p);
  const double tol = 2.0 / kHalfPointScale * p.norm;
  for (std::size_t spin = 0; spin < 4; ++spin)
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_NEAR(u.s[spin][c].re, s.s[spin][c].re, tol);
      EXPECT_NEAR(u.s[spin][c].im, s.s[spin][c].im, tol);
    }
}

template <typename P> class GaugeFieldTyped : public ::testing::Test {};
TYPED_TEST_SUITE(GaugeFieldTyped, AllPrecisions);

TYPED_TEST(GaugeFieldTyped, UploadLoadMatchesHost) {
  using P = TypeParam;
  const Geometry g({4, 4, 4, 4});
  HostGaugeField host(g);
  make_random_gauge(host, 33);

  for (Reconstruct recon : {Reconstruct::Twelve, Reconstruct::Eighteen, Reconstruct::Eight}) {
    GaugeField<P> dev = upload_gauge<P>(host, recon);
    // 8-real storage round-trips through atan2/cos/sin and the Cramer-rule
    // reconstruction, which amplifies rounding by 1/(|U01|^2+|U02|^2) --
    // hence the looser per-recon tolerances
    const bool eight = recon == Reconstruct::Eight;
    const double tol = P::value == Precision::Double   ? (eight ? 1e-20 : 1e-28)
                       : P::value == Precision::Single ? (eight ? 1e-9 : 1e-12)
                                                       : // half: (1/32767)^2-ish per element
                           (eight ? 1e-4 : 2e-7);
    for (int par = 0; par < 2; ++par) {
      const Parity parity = par == 0 ? Parity::Even : Parity::Odd;
      for (std::int64_t cb = 0; cb < g.half_volume(); ++cb) {
        const Coords c = g.cb_coords(parity, cb);
        for (int mu = 0; mu < 4; ++mu) {
          const SU3<double> got = convert<double>(dev.load(mu, parity, cb));
          EXPECT_LT(frobenius_dist2(got, host.link(mu, c)) / 9.0, tol);
        }
      }
    }
  }
}

TYPED_TEST(GaugeFieldTyped, GhostLivesInPadWithoutAliasing) {
  using P = TypeParam;
  const Geometry g({4, 4, 4, 4});
  HostGaugeField host(g);
  make_random_gauge(host, 77);
  GaugeField<P> dev = upload_gauge<P>(host, Reconstruct::Twelve);

  // snapshot of all body links
  std::vector<SU3<double>> body;
  for (int par = 0; par < 2; ++par)
    for (std::int64_t cb = 0; cb < g.half_volume(); ++cb)
      for (int mu = 0; mu < 4; ++mu)
        body.push_back(convert<double>(dev.load(mu, par == 0 ? Parity::Even : Parity::Odd, cb)));

  // write ghosts into the pad
  std::mt19937_64 rng(3);
  std::normal_distribution<double> d(0.0, 1.0);
  std::vector<SU3<double>> ghosts;
  for (int par = 0; par < 2; ++par)
    for (std::int64_t fs = 0; fs < dev.face_sites(); ++fs) {
      SU3<double> u;
      for (std::size_t r = 0; r < 3; ++r)
        for (std::size_t c = 0; c < 3; ++c) u.e[r][c] = complexd(d(rng), d(rng));
      u = reunitarize(u);
      ghosts.push_back(u);
      dev.store_ghost(par == 0 ? Parity::Even : Parity::Odd, fs, u);
    }

  // ghosts read back
  std::size_t k = 0;
  const double tol = P::value == Precision::Half ? 1e-6 : 1e-10;
  for (int par = 0; par < 2; ++par)
    for (std::int64_t fs = 0; fs < dev.face_sites(); ++fs, ++k) {
      const SU3<double> got =
          convert<double>(dev.load_ghost(par == 0 ? Parity::Even : Parity::Odd, fs));
      EXPECT_LT(frobenius_dist2(got, ghosts[k]), tol);
    }

  // body untouched
  k = 0;
  for (int par = 0; par < 2; ++par)
    for (std::int64_t cb = 0; cb < g.half_volume(); ++cb)
      for (int mu = 0; mu < 4; ++mu, ++k) {
        const SU3<double> got =
            convert<double>(dev.load(mu, par == 0 ? Parity::Even : Parity::Odd, cb));
        EXPECT_LT(frobenius_dist2(got, body[k]), 1e-20);
      }
}

// the block-span conversion fast path (single <-> half with matching
// layouts) must produce bit-identical payloads and norms to the generic
// per-site path; forcing a pad mismatch on the reference destination routes
// it through convert_field_generic
TEST(ConvertField, FastPathMatchesGenericQuantize) {
  const std::int64_t sites = 96, face = 16;
  SpinorField<PrecSingle> src(sites, face);
  std::mt19937_64 rng(11);
  for (std::int64_t i = 0; i < sites; ++i)
    src.store(i, convert<float>(random_spinor(rng, i % 7 == 0 ? 1e3 : 1.0)));
  src.store(5, Spinor<float>{}); // exercise the zero-vector norm rule

  SpinorField<PrecHalf> fast(sites, face);
  SpinorField<PrecHalf> ref(sites, face, face + 3); // pad mismatch -> generic
  convert_field(src, fast);
  convert_field_generic(src, ref);

  for (std::int64_t i = 0; i < sites; ++i) {
    EXPECT_EQ(fast.norm_data()[static_cast<std::size_t>(i)],
              ref.norm_data()[static_cast<std::size_t>(i)])
        << "site " << i;
    const Spinor<float> a = fast.load(i), b = ref.load(i);
    for (std::size_t spin = 0; spin < 4; ++spin)
      for (std::size_t c = 0; c < 3; ++c) {
        EXPECT_EQ(a.s[spin][c].re, b.s[spin][c].re) << "site " << i;
        EXPECT_EQ(a.s[spin][c].im, b.s[spin][c].im) << "site " << i;
      }
  }
}

TEST(ConvertField, FastPathMatchesGenericExpand) {
  const std::int64_t sites = 96, face = 16;
  SpinorField<PrecHalf> src(sites, face);
  std::mt19937_64 rng(23);
  for (std::int64_t i = 0; i < sites; ++i)
    src.store(i, convert<float>(random_spinor(rng, 2.5)));

  SpinorField<PrecSingle> fast(sites, face);
  SpinorField<PrecSingle> ref(sites, face, face + 5); // pad mismatch -> generic
  convert_field(src, fast);
  convert_field_generic(src, ref);

  for (std::int64_t i = 0; i < sites; ++i) {
    const Spinor<float> a = fast.load(i), b = ref.load(i);
    for (std::size_t spin = 0; spin < 4; ++spin)
      for (std::size_t c = 0; c < 3; ++c) {
        EXPECT_EQ(a.s[spin][c].re, b.s[spin][c].re) << "site " << i;
        EXPECT_EQ(a.s[spin][c].im, b.s[spin][c].im) << "site " << i;
      }
  }
}

// the fast path parallelizes over the same kBlasGrain site grains as the
// generic path, so any thread budget yields the same bits
TEST(ConvertField, FastPathThreadInvariance) {
  const std::int64_t sites = 3 * exec::kBlasGrain + 37, face = 64;
  SpinorField<PrecSingle> src(sites, face);
  std::mt19937_64 rng(31);
  for (std::int64_t i = 0; i < sites; ++i)
    src.store(i, convert<float>(random_spinor(rng)));

  SpinorField<PrecHalf> one(sites, face), many(sites, face);
  exec::set_thread_budget(1);
  convert_field(src, one);
  exec::set_thread_budget(8);
  convert_field(src, many);
  exec::set_thread_budget(0);
  EXPECT_EQ(one.raw_data(), many.raw_data());
  EXPECT_EQ(one.norm_data(), many.norm_data());
}

TEST(SpinorUploadDownload, RoundTripBothParities) {
  const Geometry g({4, 4, 4, 8});
  HostSpinorField host(g), back(g);
  make_random_spinor(host, 9);

  const SpinorFieldD even = upload_spinor<PrecDouble>(host, Parity::Even);
  const SpinorFieldD odd = upload_spinor<PrecDouble>(host, Parity::Odd);
  download_spinor(even, Parity::Even, back);
  download_spinor(odd, Parity::Odd, back);

  for (std::int64_t i = 0; i < g.volume(); ++i) EXPECT_LT(norm2(host[i] - back[i]), 1e-28);
}

} // namespace
} // namespace quda
