// Integration tests: the optimized QUDA-order dslash and Wilson-clover
// operator against the independent naive-order reference implementation, in
// all three precisions and both temporal boundary conditions.

#include "dirac/dslash.h"
#include "dirac/gauge_init.h"
#include "dirac/transfer.h"
#include "dirac/wilson_clover_op.h"
#include "dirac/wilson_ref.h"

#include <gtest/gtest.h>

namespace quda {
namespace {

struct DslashFixture {
  Geometry g;
  HostGaugeField u;
  HostSpinorField in;

  explicit DslashFixture(LatticeDims dims, std::uint64_t seed = 123)
      : g(dims), u(g), in(g) {
    make_random_gauge(u, seed);
    make_random_spinor(in, seed + 1);
  }
};

// apply the device path (both parities) and download to a host field
template <typename P>
HostSpinorField device_hopping(const DslashFixture& s, TimeBoundary bc) {
  const GaugeField<P> gauge = upload_gauge<P>(s.u, Reconstruct::Twelve);
  const SpinorField<P> in_e = upload_spinor<P>(s.in, Parity::Even);
  const SpinorField<P> in_o = upload_spinor<P>(s.in, Parity::Odd);
  SpinorField<P> out_e(s.g), out_o(s.g);

  DslashOptions opt;
  const double phase = bc == TimeBoundary::Antiperiodic ? -1.0 : 1.0;
  opt.bc_backward = phase;
  opt.bc_forward = phase;

  opt.out_parity = Parity::Even;
  dslash<P>(out_e, gauge, in_o, s.g, opt, 0, s.g.half_volume(), 1, Accumulate::No);
  opt.out_parity = Parity::Odd;
  dslash<P>(out_o, gauge, in_e, s.g, opt, 0, s.g.half_volume(), 1, Accumulate::No);

  HostSpinorField out(s.g);
  download_spinor(out_e, Parity::Even, out);
  download_spinor(out_o, Parity::Odd, out);
  return out;
}

double rel_dist2(const HostSpinorField& a, const HostSpinorField& b) {
  double num = 0, den = 0;
  for (std::int64_t i = 0; i < a.geom().volume(); ++i) {
    num += norm2(a[i] - b[i]);
    den += norm2(b[i]);
  }
  return num / den;
}

class DslashVsReference : public ::testing::TestWithParam<TimeBoundary> {};

TEST_P(DslashVsReference, DoublePrecisionHopping) {
  const DslashFixture s({4, 4, 4, 6});
  WilsonParams wp;
  wp.time_bc = GetParam();
  HostSpinorField ref(s.g);
  apply_hopping_ref(s.u, s.in, ref, wp);
  const HostSpinorField dev = device_hopping<PrecDouble>(s, GetParam());
  EXPECT_LT(rel_dist2(dev, ref), 1e-24);
}

TEST_P(DslashVsReference, SinglePrecisionHopping) {
  const DslashFixture s({4, 4, 4, 6});
  WilsonParams wp;
  wp.time_bc = GetParam();
  HostSpinorField ref(s.g);
  apply_hopping_ref(s.u, s.in, ref, wp);
  const HostSpinorField dev = device_hopping<PrecSingle>(s, GetParam());
  EXPECT_LT(rel_dist2(dev, ref), 1e-11);
}

TEST_P(DslashVsReference, HalfPrecisionHopping) {
  const DslashFixture s({4, 4, 4, 6});
  WilsonParams wp;
  wp.time_bc = GetParam();
  HostSpinorField ref(s.g);
  apply_hopping_ref(s.u, s.in, ref, wp);
  const HostSpinorField dev = device_hopping<PrecHalf>(s, GetParam());
  // 16-bit storage: relative error per element ~ 8 * 2/32767
  EXPECT_LT(rel_dist2(dev, ref), 1e-5);
}

INSTANTIATE_TEST_SUITE_P(BothBCs, DslashVsReference,
                         ::testing::Values(TimeBoundary::Periodic, TimeBoundary::Antiperiodic),
                         [](const auto& info) {
                           return info.param == TimeBoundary::Periodic ? "periodic"
                                                                       : "antiperiodic";
                         });

TEST(DslashRegions, TimesliceSplitCoversWholeLattice) {
  // interior + boundary region calls must reproduce the full-volume kernel
  const DslashFixture s({4, 4, 4, 8});
  const GaugeField<PrecDouble> gauge = upload_gauge<PrecDouble>(s.u, Reconstruct::Twelve);
  const SpinorField<PrecDouble> in_o = upload_spinor<PrecDouble>(s.in, Parity::Odd);
  SpinorField<PrecDouble> full(s.g), split(s.g);

  DslashOptions opt;
  opt.out_parity = Parity::Even;
  dslash<PrecDouble>(full, gauge, in_o, s.g, opt, 0, s.g.half_volume(), 1, Accumulate::No);

  const std::int64_t fs = s.g.half_spatial_volume();
  const int t = s.g.dims().t;
  // boundary slices t=0 and t=T-1, interior in between
  dslash<PrecDouble>(split, gauge, in_o, s.g, opt, 0, fs, 1, Accumulate::No);
  dslash<PrecDouble>(split, gauge, in_o, s.g, opt, fs, (t - 1) * fs, 1, Accumulate::No);
  dslash<PrecDouble>(split, gauge, in_o, s.g, opt, (t - 1) * fs, t * fs, 1, Accumulate::No);

  for (std::int64_t i = 0; i < s.g.half_volume(); ++i)
    EXPECT_LT(norm2(convert<double>(full.load(i)) - convert<double>(split.load(i))), 1e-28);
}

TEST(DslashCompression, TwelveMatchesEighteen) {
  const DslashFixture s({4, 4, 4, 4});
  const HostSpinorField a = [&] {
    const GaugeField<PrecDouble> g12 = upload_gauge<PrecDouble>(s.u, Reconstruct::Twelve);
    const SpinorField<PrecDouble> in_o = upload_spinor<PrecDouble>(s.in, Parity::Odd);
    SpinorField<PrecDouble> out(s.g);
    DslashOptions opt;
    dslash<PrecDouble>(out, g12, in_o, s.g, opt, 0, s.g.half_volume(), 1, Accumulate::No);
    HostSpinorField h(s.g);
    download_spinor(out, Parity::Even, h);
    return h;
  }();
  const HostSpinorField b = [&] {
    const GaugeField<PrecDouble> g18 = upload_gauge<PrecDouble>(s.u, Reconstruct::Eighteen);
    const SpinorField<PrecDouble> in_o = upload_spinor<PrecDouble>(s.in, Parity::Odd);
    SpinorField<PrecDouble> out(s.g);
    DslashOptions opt;
    dslash<PrecDouble>(out, g18, in_o, s.g, opt, 0, s.g.half_volume(), 1, Accumulate::No);
    HostSpinorField h(s.g);
    download_spinor(out, Parity::Even, h);
    return h;
  }();
  // only even sites were written; compare those
  double num = 0;
  for (std::int64_t i = 0; i < s.g.volume(); ++i)
    if (Geometry::site_parity(s.g.coords(i)) == Parity::Even) num += norm2(a[i] - b[i]);
  EXPECT_LT(num, 1e-22);
}

TEST(DslashCompression, EightMatchesEighteen) {
  const DslashFixture s({4, 4, 4, 4});
  const auto run = [&](Reconstruct recon) {
    const GaugeField<PrecDouble> g = upload_gauge<PrecDouble>(s.u, recon);
    const SpinorField<PrecDouble> in_o = upload_spinor<PrecDouble>(s.in, Parity::Odd);
    SpinorField<PrecDouble> out(s.g);
    DslashOptions opt;
    dslash<PrecDouble>(out, g, in_o, s.g, opt, 0, s.g.half_volume(), 1, Accumulate::No);
    HostSpinorField h(s.g);
    download_spinor(out, Parity::Even, h);
    return h;
  };
  const HostSpinorField a = run(Reconstruct::Eight);
  const HostSpinorField b = run(Reconstruct::Eighteen);
  // the 8-real path re-derives six of nine link entries through atan2 and
  // Cramer's rule, so it agrees to reconstruction accuracy, not exactly
  double num = 0, den = 0;
  for (std::int64_t i = 0; i < s.g.volume(); ++i)
    if (Geometry::site_parity(s.g.coords(i)) == Parity::Even) {
      num += norm2(a[i] - b[i]);
      den += norm2(b[i]);
    }
  EXPECT_LT(num / den, 1e-20);
}

class FullOperator : public ::testing::TestWithParam<double> {};

TEST_P(FullOperator, WilsonCloverMatchesReference) {
  const double csw = GetParam();
  const DslashFixture s({4, 4, 4, 6}, 321);
  const double mass = 0.1;

  WilsonParams wp;
  wp.mass = mass;
  wp.time_bc = TimeBoundary::Antiperiodic;

  HostSpinorField ref(s.g);
  const DenseCloverField dense = make_dense_clover_term(s.u, csw);
  apply_wilson_clover_ref(s.u, dense, s.in, ref, wp);

  // device path
  HostCloverField t = make_clover_term(s.u, csw);
  add_diag(t, 4.0 + mass);
  const HostCloverField tinv = invert_clover(t);

  const GaugeField<PrecDouble> gauge = upload_gauge<PrecDouble>(s.u, Reconstruct::Twelve);
  const CloverField<PrecDouble> cl = upload_clover<PrecDouble>(t);
  const CloverField<PrecDouble> clinv = upload_clover<PrecDouble>(tinv);

  OperatorParams op_params;
  op_params.mass = mass;
  op_params.time_bc = TimeBoundary::Antiperiodic;
  WilsonCloverOp<PrecDouble> op(s.g, gauge, cl, clinv, op_params);

  const SpinorFieldD in_e = upload_spinor<PrecDouble>(s.in, Parity::Even);
  const SpinorFieldD in_o = upload_spinor<PrecDouble>(s.in, Parity::Odd);
  SpinorFieldD out_e(s.g), out_o(s.g);
  op.apply_full(out_e, out_o, in_e, in_o);

  HostSpinorField dev(s.g);
  download_spinor(out_e, Parity::Even, dev);
  download_spinor(out_o, Parity::Odd, dev);

  EXPECT_LT(rel_dist2(dev, ref), 1e-22) << "csw = " << csw;
}

INSTANTIATE_TEST_SUITE_P(CswValues, FullOperator, ::testing::Values(0.0, 1.0, 1.72),
                         [](const auto& info) {
                           return "csw_" + std::to_string(static_cast<int>(info.param * 100));
                         });

TEST(SchurOperator, DaggerIsAdjoint) {
  // <y, Mhat x> == <Mhat^dag y, x> for random x, y
  const DslashFixture s({4, 4, 4, 4}, 77);
  const double mass = 0.2, csw = 1.0;
  HostCloverField t = make_clover_term(s.u, csw);
  add_diag(t, 4.0 + mass);
  const HostCloverField tinv = invert_clover(t);

  const GaugeField<PrecDouble> gauge = upload_gauge<PrecDouble>(s.u, Reconstruct::Twelve);
  const CloverField<PrecDouble> cl = upload_clover<PrecDouble>(t);
  const CloverField<PrecDouble> clinv = upload_clover<PrecDouble>(tinv);
  OperatorParams p;
  p.mass = mass;
  WilsonCloverOp<PrecDouble> op(s.g, gauge, cl, clinv, p);

  HostSpinorField hx(s.g), hy(s.g);
  make_random_spinor(hx, 5);
  make_random_spinor(hy, 6);
  const SpinorFieldD x = upload_spinor<PrecDouble>(hx, Parity::Even);
  const SpinorFieldD y = upload_spinor<PrecDouble>(hy, Parity::Even);
  SpinorFieldD mx(s.g), mdy(s.g);
  op.apply(mx, x);
  op.apply_dagger(mdy, y);

  const complexd lhs = blas::cdot(y, mx);
  const complexd rhs = blas::cdot(mdy, x);
  EXPECT_NEAR(lhs.re, rhs.re, 1e-8 * std::abs(lhs.re) + 1e-10);
  EXPECT_NEAR(lhs.im, rhs.im, 1e-8 * std::abs(lhs.re) + 1e-10);
}

TEST(BasisRotationEquivalence, ReferenceOperatorsRelatedByRotation) {
  // M^NR (S psi) == S (M^DR psi): rotating the field and applying the
  // internal-basis operator equals applying the DR-basis operator and
  // rotating -- validates the interface-basis conversion path
  const DslashFixture s({4, 4, 4, 4}, 888);
  WilsonParams nr, dr;
  nr.mass = dr.mass = 0.3;
  nr.basis = GammaBasis::NonRelativistic;
  dr.basis = GammaBasis::DeGrandRossi;

  HostSpinorField rotated_in(s.g);
  for (std::int64_t i = 0; i < s.g.volume(); ++i)
    rotated_in[i] = rotate_basis(GammaBasis::DeGrandRossi, GammaBasis::NonRelativistic, s.in[i]);

  HostSpinorField out_nr(s.g), out_dr(s.g);
  apply_wilson_ref(s.u, rotated_in, out_nr, nr);
  apply_wilson_ref(s.u, s.in, out_dr, dr);

  double num = 0, den = 0;
  for (std::int64_t i = 0; i < s.g.volume(); ++i) {
    const Spinor<double> rotated_out =
        rotate_basis(GammaBasis::DeGrandRossi, GammaBasis::NonRelativistic, out_dr[i]);
    num += norm2(out_nr[i] - rotated_out);
    den += norm2(rotated_out);
  }
  EXPECT_LT(num / den, 1e-24);
}

} // namespace
} // namespace quda
