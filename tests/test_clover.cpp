// Unit tests: clover term construction, its chiral-block structure (the
// 72-reals-per-site representation), block inversion, and agreement between
// the blocked production path and the independent dense construction.

#include "dirac/clover_term.h"
#include "dirac/gauge_init.h"
#include "su3/clover_block.h"

#include <gtest/gtest.h>

#include <random>

namespace quda {
namespace {

HermitianBlock<double> random_block(std::mt19937_64& rng, double diag_shift) {
  std::normal_distribution<double> d(0.0, 0.3);
  HermitianBlock<double> h;
  for (std::size_t i = 0; i < 6; ++i) h.diag[i] = diag_shift + d(rng);
  for (std::size_t i = 0; i < 15; ++i) h.lower[i] = complexd(d(rng), d(rng));
  return h;
}

TEST(HermitianBlock, PackedApplyMatchesDense) {
  std::mt19937_64 rng(4);
  const HermitianBlock<double> h = random_block(rng, 1.0);
  const Dense6 m = to_dense(h);

  std::normal_distribution<double> d(0.0, 1.0);
  std::array<complexd, 6> x;
  for (auto& v : x) v = complexd(d(rng), d(rng));

  const auto y = h.apply(x);
  for (std::size_t r = 0; r < 6; ++r) {
    complexd expect{};
    for (std::size_t c = 0; c < 6; ++c) cmad(expect, m[r][c], x[c]);
    EXPECT_NEAR(y[r].re, expect.re, 1e-12);
    EXPECT_NEAR(y[r].im, expect.im, 1e-12);
  }
}

TEST(HermitianBlock, DensePackRoundTrip) {
  std::mt19937_64 rng(8);
  const HermitianBlock<double> h = random_block(rng, 2.0);
  const HermitianBlock<double> h2 = from_dense(to_dense(h));
  for (std::size_t i = 0; i < 6; ++i) EXPECT_DOUBLE_EQ(h.diag[i], h2.diag[i]);
  for (std::size_t i = 0; i < 15; ++i) {
    EXPECT_DOUBLE_EQ(h.lower[i].re, h2.lower[i].re);
    EXPECT_DOUBLE_EQ(h.lower[i].im, h2.lower[i].im);
  }
}

TEST(HermitianBlock, FromDenseRejectsNonHermitian) {
  Dense6 m{};
  m[0][1] = complexd(1.0, 0.0);
  m[1][0] = complexd(2.0, 0.0); // not conj(m[0][1])
  for (std::size_t i = 0; i < 6; ++i) m[i][i] = complexd(1.0);
  EXPECT_THROW(from_dense(m, 1e-12), std::invalid_argument);
}

TEST(HermitianBlock, InverseIsInverse) {
  std::mt19937_64 rng(15);
  for (int trial = 0; trial < 20; ++trial) {
    const HermitianBlock<double> h = random_block(rng, 4.0); // diagonally dominant
    const HermitianBlock<double> hinv = invert(h);
    const Dense6 a = to_dense(h), b = to_dense(hinv);
    for (std::size_t r = 0; r < 6; ++r)
      for (std::size_t c = 0; c < 6; ++c) {
        complexd prod{};
        for (std::size_t k = 0; k < 6; ++k) cmad(prod, a[r][k], b[k][c]);
        EXPECT_NEAR(prod.re, r == c ? 1.0 : 0.0, 1e-10);
        EXPECT_NEAR(prod.im, 0.0, 1e-10);
      }
  }
}

TEST(CloverTerm, VanishesOnUnitGauge) {
  const Geometry g({4, 4, 4, 4});
  HostGaugeField u(g);
  make_unit_gauge(u);
  const HostCloverField a = make_clover_term(u, 1.0);
  for (std::int64_t i = 0; i < g.volume(); ++i)
    for (int b = 0; b < 2; ++b) {
      for (std::size_t d = 0; d < 6; ++d) EXPECT_NEAR(a[i].block[b].diag[d], 0.0, 1e-14);
      for (std::size_t o = 0; o < 15; ++o) EXPECT_NEAR(norm2(a[i].block[b].lower[o]), 0.0, 1e-28);
    }
}

TEST(CloverTerm, FieldStrengthIsHermitianTraceless) {
  const Geometry g({4, 4, 4, 4});
  HostGaugeField u(g);
  make_random_gauge(u, 55);
  std::mt19937_64 rng(2);
  std::uniform_int_distribution<std::int64_t> pick(0, g.volume() - 1);
  for (int trial = 0; trial < 16; ++trial) {
    const Coords x = g.coords(pick(rng));
    for (int mu = 0; mu < 4; ++mu)
      for (int nu = mu + 1; nu < 4; ++nu) {
        const SU3<double> f = clover_leaf_ifield(u, x, mu, nu);
        EXPECT_LT(frobenius_dist2(f, adjoint(f)), 1e-24);
        complexd tr{};
        for (std::size_t d = 0; d < 3; ++d) tr += f.e[d][d];
        EXPECT_NEAR(tr.re, 0.0, 1e-12);
        EXPECT_NEAR(tr.im, 0.0, 1e-12);
      }
  }
}

TEST(CloverTerm, BlockedMatchesDenseConstruction) {
  // the production 72-real chiral-block path against the independent dense
  // 12x12 sigma.F construction, applied to random spinors
  const Geometry g({4, 4, 4, 4});
  HostGaugeField u(g);
  make_weak_field_gauge(u, 0.3, 101);
  const double csw = 1.3;
  const HostCloverField blocked = make_clover_term(u, csw);
  const DenseCloverField dense = make_dense_clover_term(u, csw);

  std::mt19937_64 rng(6);
  std::normal_distribution<double> d(0.0, 1.0);
  for (std::int64_t i = 0; i < g.volume(); ++i) {
    Spinor<double> psi;
    for (std::size_t spin = 0; spin < 4; ++spin)
      for (std::size_t c = 0; c < 3; ++c) psi.s[spin][c] = complexd(d(rng), d(rng));
    const Spinor<double> via_blocks = apply_clover_site(blocked[i], psi);
    const Spinor<double> via_dense = apply_dense_clover_site(dense[i], psi);
    EXPECT_LT(norm2(via_blocks - via_dense), 1e-20 * norm2(psi))
        << "blocked/dense clover mismatch at site " << i;
  }
}

TEST(CloverTerm, AddDiagShiftsOnlyDiagonal) {
  const Geometry g({4, 4, 4, 4});
  HostGaugeField u(g);
  make_weak_field_gauge(u, 0.2, 7);
  HostCloverField a = make_clover_term(u, 1.0);
  const HostCloverField orig = a;
  add_diag(a, 4.1);
  for (std::int64_t i = 0; i < g.volume(); ++i)
    for (int b = 0; b < 2; ++b) {
      for (std::size_t d = 0; d < 6; ++d)
        EXPECT_DOUBLE_EQ(a[i].block[b].diag[d], orig[i].block[b].diag[d] + 4.1);
      for (std::size_t o = 0; o < 15; ++o)
        EXPECT_EQ(norm2(a[i].block[b].lower[o] - orig[i].block[b].lower[o]), 0.0);
    }
}

TEST(CloverTerm, InvertCloverGivesIdentityAction) {
  const Geometry g({4, 4, 4, 4});
  HostGaugeField u(g);
  make_weak_field_gauge(u, 0.25, 31);
  HostCloverField t = make_clover_term(u, 1.2);
  add_diag(t, 4.05);
  const HostCloverField tinv = invert_clover(t);

  std::mt19937_64 rng(12);
  std::normal_distribution<double> d(0.0, 1.0);
  for (std::int64_t i = 0; i < g.volume(); i += 7) {
    Spinor<double> psi;
    for (std::size_t spin = 0; spin < 4; ++spin)
      for (std::size_t c = 0; c < 3; ++c) psi.s[spin][c] = complexd(d(rng), d(rng));
    const Spinor<double> round = apply_clover_site(tinv[i], apply_clover_site(t[i], psi));
    EXPECT_LT(norm2(round - psi), 1e-20 * norm2(psi));
  }
}

} // namespace
} // namespace quda
