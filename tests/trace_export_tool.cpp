// Helper binary for the TraceLint ctest fixture: runs a small deterministic
// 2-rank Overlap solve with tracing on and writes the Chrome JSON export to
// argv[1].  The companion TraceLint.validate test then runs
// tools/trace_lint.py over the file, so every `ctest` invocation checks the
// exporter against tools/trace_schema.json -- including the happens-before
// dep fields the critical-path analyzer consumes.

#include "parallel/modeled_solver.h"
#include "trace/trace_export.h"

#include <cstdio>

int main(int argc, char** argv) {
  using namespace quda;
  const char* path = argc > 1 ? argv[1] : "trace_lint_fixture.json";

  sim::ClusterSpec spec = sim::ClusterSpec::jlab_9g(2);
  spec.trace.enabled = true;
  sim::VirtualCluster cluster(spec);

  parallel::ModeledSolverConfig cfg;
  cfg.local = LatticeDims{8, 8, 8, 16};
  cfg.outer = Precision::Single;
  cfg.sloppy = Precision::Half;
  cfg.policy = CommPolicy::Overlap;
  cfg.iterations = 25;
  cfg.reliable_interval = 10;
  const parallel::ModeledSolverResult r = parallel::run_modeled_solver(cluster, cfg);
  if (!r.fits || !r.traced) {
    std::fprintf(stderr, "trace_export_tool: solve did not produce a trace\n");
    return 1;
  }
  if (!trace::write_chrome_trace(path, cluster.trace())) {
    std::fprintf(stderr, "trace_export_tool: cannot write %s\n", path);
    return 1;
  }
  std::printf("trace_export_tool: wrote %s (%zu events)\n", path,
              cluster.trace().total_events());
  return 0;
}
