// Unit tests: the discrete-event cluster simulator -- message timing
// semantics, FIFO channels, collectives, determinism across runs, and
// failure isolation.

#include "comm/qmp.h"
#include "core/wallclock.h"
#include "sim/event_sim.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>

namespace quda::sim {
namespace {

ClusterSpec two_ranks_one_node() {
  ClusterSpec s;
  s.nodes = 1;
  s.gpus_per_node = 2;
  return s;
}

TEST(ClusterSpec, Jlab9gShape) {
  const ClusterSpec s = ClusterSpec::jlab_9g(32);
  EXPECT_EQ(s.nodes, 16);
  EXPECT_EQ(s.gpus_per_node, 2);
  EXPECT_EQ(s.num_ranks(), 32);
  EXPECT_TRUE(s.same_node(0, 1));
  EXPECT_FALSE(s.same_node(1, 2));
  EXPECT_EQ(ClusterSpec::jlab_9g(1).num_ranks(), 1);
}

TEST(EventSim, MessageCarriesPayload) {
  VirtualCluster cluster(two_ranks_one_node());
  cluster.run([](RankContext& ctx) {
    if (ctx.rank() == 0) {
      const double value = 42.5;
      std::vector<std::byte> payload(sizeof(double));
      std::memcpy(payload.data(), &value, sizeof(double));
      ctx.isend(1, 0, std::move(payload), 1024);
    } else {
      RecvHandle h = ctx.recv(0, 0);
      const std::vector<std::byte> payload = h.take_payload();
      ASSERT_EQ(payload.size(), sizeof(double));
      double value = 0;
      std::memcpy(&value, payload.data(), sizeof(double));
      EXPECT_DOUBLE_EQ(value, 42.5);
    }
  });
}

TEST(EventSim, RecvCompletionUsesMaxOfSendAndRecvTime) {
  // late receiver: completion = recv time + path; early receiver waits for
  // the sender's post time
  ClusterSpec spec = two_ranks_one_node();
  VirtualCluster cluster(spec);
  std::atomic<double> late_recv_time{0}, early_recv_time{0};

  cluster.run([&](RankContext& ctx) {
    if (ctx.rank() == 0) {
      ctx.isend(1, 0, {}, 1000);       // posted at t=0
      ctx.clock().advance(10000.0);
      ctx.isend(1, 1, {}, 1000);       // posted at t~10000
    } else {
      ctx.clock().advance(500.0);      // receiver is late for msg 0
      RecvHandle a = ctx.recv(0, 0);
      late_recv_time = ctx.clock().now_us;
      RecvHandle b = ctx.recv(0, 1);   // receiver is early for msg 1
      early_recv_time = ctx.clock().now_us;
    }
  });

  const double path = spec.net.transfer_time_us(1000, true);
  EXPECT_NEAR(late_recv_time.load(), 500.0 + path + spec.net.mpi_overhead_us, 1.0);
  EXPECT_GT(early_recv_time.load(), 10000.0) << "early receiver must wait for the send";
}

TEST(EventSim, OffNodeIsSlowerThanOnNode) {
  ClusterSpec spec;
  spec.nodes = 2;
  spec.gpus_per_node = 2; // ranks 0,1 on node 0; 2,3 on node 1
  const std::int64_t bytes = 1 << 20;
  EXPECT_GT(spec.net.transfer_time_us(bytes, false), spec.net.transfer_time_us(bytes, true));
}

TEST(EventSim, ChannelsAreFifoPerTag) {
  VirtualCluster cluster(two_ranks_one_node());
  cluster.run([](RankContext& ctx) {
    if (ctx.rank() == 0) {
      for (int i = 0; i < 5; ++i) {
        std::vector<std::byte> payload(1);
        payload[0] = static_cast<std::byte>(i);
        ctx.isend(1, 0, std::move(payload), 16);
      }
    } else {
      for (int i = 0; i < 5; ++i) {
        RecvHandle h = ctx.recv(0, 0);
        EXPECT_EQ(static_cast<int>(h.take_payload()[0]), i);
      }
    }
  });
}

TEST(EventSim, AllreduceSumsAcrossRanks) {
  ClusterSpec spec = ClusterSpec::jlab_9g(8);
  VirtualCluster cluster(spec);
  std::vector<double> results(8, 0.0);
  cluster.run([&](RankContext& ctx) {
    results[static_cast<std::size_t>(ctx.rank())] =
        ctx.allreduce_sum(static_cast<double>(ctx.rank() + 1));
  });
  for (double r : results) EXPECT_DOUBLE_EQ(r, 36.0); // 1+2+...+8
}

TEST(EventSim, AllreduceVectorIsOneRendezvous) {
  ClusterSpec spec = ClusterSpec::jlab_9g(4);
  VirtualCluster cluster(spec);
  std::vector<double> t_scalar(4), t_vector(4);
  cluster.run([&](RankContext& ctx) {
    double v[2] = {1.0, 2.0};
    ctx.allreduce_sum(v, 2);
    EXPECT_DOUBLE_EQ(v[0], 4.0);
    EXPECT_DOUBLE_EQ(v[1], 8.0);
    t_vector[static_cast<std::size_t>(ctx.rank())] = ctx.clock().now_us;
  });
  const double vec_time = t_vector[0];
  cluster.run([&](RankContext& ctx) {
    (void)ctx.allreduce_sum(1.0);
    (void)ctx.allreduce_sum(2.0);
    t_scalar[static_cast<std::size_t>(ctx.rank())] = ctx.clock().now_us;
  });
  EXPECT_GT(t_scalar[0], vec_time) << "two scalar reductions must cost more than one fused";
}

TEST(EventSim, AllreduceSynchronizesClocks) {
  VirtualCluster cluster(ClusterSpec::jlab_9g(4));
  std::vector<double> times(4);
  cluster.run([&](RankContext& ctx) {
    ctx.clock().advance(100.0 * (ctx.rank() + 1)); // skewed clocks
    (void)ctx.allreduce_sum(0.0);
    times[static_cast<std::size_t>(ctx.rank())] = ctx.clock().now_us;
  });
  for (int r = 1; r < 4; ++r) EXPECT_DOUBLE_EQ(times[0], times[static_cast<std::size_t>(r)]);
  EXPECT_GT(times[0], 400.0) << "completion is bounded by the slowest rank";
}

TEST(EventSim, TimingIsDeterministicAcrossRuns) {
  // ring exchange with skewed work; the makespan must be bit-identical on
  // every run regardless of OS thread scheduling
  const auto workload = [](RankContext& ctx) {
    const int n = ctx.size();
    ctx.clock().advance(37.0 * ((ctx.rank() * 13) % 5));
    for (int round = 0; round < 20; ++round) {
      ctx.isend((ctx.rank() + 1) % n, round, {}, 4096);
      (void)ctx.recv((ctx.rank() + n - 1) % n, round);
      if (round % 3 == 0) (void)ctx.allreduce_sum(1.0);
    }
  };
  ClusterSpec spec = ClusterSpec::jlab_9g(8);
  double first = 0;
  for (int trial = 0; trial < 5; ++trial) {
    VirtualCluster cluster(spec);
    cluster.run(workload);
    if (trial == 0)
      first = cluster.makespan_us();
    else
      EXPECT_DOUBLE_EQ(cluster.makespan_us(), first) << "trial " << trial;
  }
  EXPECT_GT(first, 0.0);
}

TEST(EventSim, RankFailurePropagatesWithoutDeadlock) {
  VirtualCluster cluster(two_ranks_one_node());
  EXPECT_THROW(cluster.run([](RankContext& ctx) {
                 if (ctx.rank() == 0) throw std::runtime_error("injected fault");
                 (void)ctx.recv(0, 0); // would deadlock without abort handling
               }),
               std::runtime_error);
}

TEST(WallClock, WatchdogClockIsInjectableAndRestorable) {
  const auto fake = core::WallClock::time_point{} + std::chrono::seconds(5);
  const core::WallClockFn prev = core::set_watchdog_clock_for_testing(
      +[] { return core::WallClock::time_point{} + std::chrono::seconds(5); });
  EXPECT_EQ(core::now_for_watchdog(), fake);
  // restoring hands the watchdog back to the real monotonic clock
  core::set_watchdog_clock_for_testing(prev);
  const auto a = core::now_for_watchdog();
  const auto b = core::now_for_watchdog();
  EXPECT_LE(a, b);
  EXPECT_NE(a, fake);
}

TEST(EventSim, WatchdogUsesInjectableClock) {
  // The deadlock watchdog is the one real-time read in the simulator, and it
  // goes through core::now_for_watchdog().  Injecting a clock stuck in the
  // far past makes any deadline appear already expired, so the wait below
  // must raise CommTimeout immediately -- despite the generous 60 s budget
  // -- proving the watchdog reads the shim, not the real clock (and keeping
  // this test instant and scheduler-independent).
  const core::WallClockFn prev = core::set_watchdog_clock_for_testing(
      +[] { return core::WallClock::time_point::min(); });
  EXPECT_THROW(
      {
        VirtualCluster cluster(two_ranks_one_node());
        cluster.run([](RankContext& ctx) {
          if (ctx.rank() == 0) {
            RankContext::PendingRecv p = ctx.irecv(1, 0);
            (void)ctx.wait(p, /*wall_timeout_ms=*/60000.0); // rank 1 never sends
          }
        });
      },
      CommTimeout);
  core::set_watchdog_clock_for_testing(prev);
}

TEST(EventSim, RecvHandleExposesArrivalAndSendTime) {
  // late sender: the receiver posted first, so arrival = send time + path
  ClusterSpec spec = two_ranks_one_node();
  VirtualCluster cluster(spec);
  cluster.run([&](RankContext& ctx) {
    if (ctx.rank() == 0) {
      ctx.clock().advance(250.0);
      ctx.isend(1, 0, {}, 2048);
    } else {
      RecvHandle h = ctx.recv(0, 0); // posted at t=0
      EXPECT_DOUBLE_EQ(h.send_time_us(), 250.0);
      const double path = spec.net.transfer_time_us(2048, true);
      EXPECT_DOUBLE_EQ(h.arrival_us(), 250.0 + path);
      // the receive completes at arrival + the MPI call overhead
      EXPECT_DOUBLE_EQ(ctx.clock().now_us, h.arrival_us() + spec.net.mpi_overhead_us);
    }
  });
}

TEST(EventSim, RecvHandleArrivalUsesLatePostTime) {
  // late receiver: arrival = max(send time, post time) + path
  ClusterSpec spec = two_ranks_one_node();
  VirtualCluster cluster(spec);
  cluster.run([&](RankContext& ctx) {
    if (ctx.rank() == 0) {
      ctx.isend(1, 0, {}, 2048); // posted at t=0
    } else {
      ctx.clock().advance(500.0);
      RankContext::PendingRecv pending = ctx.irecv(0, 0); // posted at t=500
      RecvHandle h = ctx.wait(pending);
      EXPECT_DOUBLE_EQ(h.send_time_us(), 0.0);
      EXPECT_DOUBLE_EQ(h.arrival_us(), 500.0 + spec.net.transfer_time_us(2048, true));
      EXPECT_GE(ctx.clock().now_us, h.arrival_us());
    }
  });
}

TEST(EventSim, DoubleTakePayloadIsHardError) {
  VirtualCluster cluster(two_ranks_one_node());
  cluster.run([](RankContext& ctx) {
    if (ctx.rank() == 0) {
      ctx.isend(1, 0, std::vector<std::byte>(8), 64);
    } else {
      RecvHandle h = ctx.recv(0, 0);
      (void)h.take_payload();
      EXPECT_THROW((void)h.take_payload(), std::logic_error);
    }
  });
}

TEST(EventSim, DoubleWaitOnPendingRecvIsHardError) {
  VirtualCluster cluster(two_ranks_one_node());
  cluster.run([](RankContext& ctx) {
    if (ctx.rank() == 0) {
      ctx.isend(1, 0, std::vector<std::byte>(8), 64);
    } else {
      RankContext::PendingRecv pending = ctx.irecv(0, 0);
      (void)ctx.wait(pending);
      EXPECT_THROW((void)ctx.wait(pending), std::logic_error);
    }
  });
}

TEST(GridTopology, CoordsRankRoundTrip2x2x2x4) {
  const comm::GridTopology topo{{2, 2, 2, 4}};
  ASSERT_EQ(topo.num_ranks(), 32);
  for (int r = 0; r < topo.num_ranks(); ++r) {
    const auto c = topo.coords(r);
    for (int mu = 0; mu < 4; ++mu) {
      EXPECT_GE(c[static_cast<std::size_t>(mu)], 0);
      EXPECT_LT(c[static_cast<std::size_t>(mu)], topo.dims[static_cast<std::size_t>(mu)]);
    }
    EXPECT_EQ(topo.rank_of(c), r);
  }
  // coordinates run x fastest (QMP_declare_logical_topology order)
  EXPECT_EQ(topo.rank_of({1, 0, 0, 0}), 1);
  EXPECT_EQ(topo.rank_of({0, 1, 0, 0}), 2);
  EXPECT_EQ(topo.rank_of({0, 0, 1, 0}), 4);
  EXPECT_EQ(topo.rank_of({0, 0, 0, 1}), 8);
}

TEST(GridTopology, PartitionMaskMatchesPartitioned) {
  for (const comm::GridTopology topo :
       {comm::GridTopology{{2, 2, 2, 4}}, comm::GridTopology{{1, 2, 1, 8}},
        comm::GridTopology::time_only(4), comm::GridTopology{{1, 1, 1, 1}}}) {
    const PartitionMask mask = topo.partition_mask();
    for (int mu = 0; mu < 4; ++mu) {
      EXPECT_EQ(mask[static_cast<std::size_t>(mu)], topo.partitioned(mu))
          << "dims " << topo.dims[0] << "x" << topo.dims[1] << "x" << topo.dims[2] << "x"
          << topo.dims[3] << " mu=" << mu;
      EXPECT_EQ(topo.partitioned(mu), topo.dims[static_cast<std::size_t>(mu)] > 1);
    }
  }
}

TEST(QmpGrid, RingTopology) {
  VirtualCluster cluster(ClusterSpec::jlab_9g(4));
  cluster.run([](RankContext& ctx) {
    comm::QmpGrid grid(ctx);
    EXPECT_EQ(grid.neighbor(comm::Direction::Forward), (ctx.rank() + 1) % 4);
    EXPECT_EQ(grid.neighbor(comm::Direction::Backward), (ctx.rank() + 3) % 4);
    EXPECT_EQ(grid.owns_global_backward_edge(), ctx.rank() == 0);
    EXPECT_EQ(grid.owns_global_forward_edge(), ctx.rank() == 3);
  });
}

} // namespace
} // namespace quda::sim
