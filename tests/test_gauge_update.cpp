// Tests for the quenched gauge-generation module: staple algebra, exact
// invariances (unitarity, overrelaxation action preservation), and the
// statistical agreement of the heatbath with an independent Metropolis
// sampler of the same action.

#include "dirac/gauge_init.h"
#include "gauge/update.h"

#include <gtest/gtest.h>

namespace quda {
namespace {

double re_tr(const SU3<double>& m) {
  double s = 0;
  for (std::size_t d = 0; d < 3; ++d) s += m.e[d][d].re;
  return s;
}

// total Re tr of all plaquettes (proportional to the Wilson action)
double plaquette_retr_sum(const HostGaugeField& u) {
  return average_plaquette(u) * 3.0 * 6.0 * static_cast<double>(u.geom().volume());
}

TEST(GaugeUpdate, StapleReproducesLocalAction) {
  // sum over links of Re tr(U K^dag) counts every plaquette 4 times (once
  // per link it contains)
  const Geometry g({4, 4, 4, 4});
  HostGaugeField u(g);
  make_random_gauge(u, 30001);

  double via_staples = 0;
  for (std::int64_t i = 0; i < g.volume(); ++i) {
    const Coords x = g.coords(i);
    for (int mu = 0; mu < 4; ++mu)
      via_staples += re_tr(u.link(mu, x) * adjoint(gauge::staple_sum(u, x, mu)));
  }
  EXPECT_NEAR(via_staples / 4.0, plaquette_retr_sum(u), 1e-6 * std::abs(via_staples));
}

TEST(GaugeUpdate, SweepsPreserveUnitarity) {
  const Geometry g({4, 4, 4, 4});
  HostGaugeField u(g);
  make_weak_field_gauge(u, 0.2, 30002);
  std::mt19937_64 rng(30003);
  gauge::heatbath_sweep(u, 5.5, rng);
  gauge::overrelax_sweep(u, rng);
  gauge::metropolis_sweep(u, 5.5, 0.2, 2, rng);

  for (std::int64_t i = 0; i < g.volume(); ++i)
    for (int mu = 0; mu < 4; ++mu) {
      const SU3<double>& l = u.link(mu, g.coords(i));
      EXPECT_LT(frobenius_dist2(l * adjoint(l), SU3<double>::identity()), 1e-20);
      EXPECT_NEAR(det(l).re, 1.0, 1e-10);
    }
}

TEST(GaugeUpdate, OverrelaxationPreservesAction) {
  const Geometry g({4, 4, 4, 4});
  HostGaugeField u(g);
  make_random_gauge(u, 30004);
  std::mt19937_64 rng(30005);

  const double before = plaquette_retr_sum(u);
  gauge::overrelax_sweep(u, rng);
  const double after = plaquette_retr_sum(u);
  EXPECT_NEAR(after, before, 1e-7 * std::abs(before))
      << "micro-canonical update must leave the action invariant";
}

TEST(GaugeUpdate, OverrelaxationMovesTheConfiguration) {
  const Geometry g({4, 4, 4, 4});
  HostGaugeField u(g);
  make_random_gauge(u, 30006);
  const HostGaugeField orig = u;
  std::mt19937_64 rng(30007);
  gauge::overrelax_sweep(u, rng);
  double moved = 0;
  for (std::int64_t i = 0; i < g.volume(); ++i)
    for (int mu = 0; mu < 4; ++mu)
      moved += frobenius_dist2(u.link(mu, g.coords(i)), orig.link(mu, g.coords(i)));
  EXPECT_GT(moved, 1.0) << "overrelaxation should decorrelate, not fix, the links";
}

TEST(GaugeUpdate, PlaquetteIncreasesWithBeta) {
  const Geometry g({4, 4, 4, 4});
  double plaq[2];
  int k = 0;
  for (double beta : {2.0, 8.0}) {
    HostGaugeField u(g);
    make_random_gauge(u, 30008); // hot start
    std::mt19937_64 rng(30009);
    for (int s = 0; s < 20; ++s) gauge::heatbath_sweep(u, beta, rng);
    plaq[k++] = average_plaquette(u);
  }
  EXPECT_GT(plaq[1], plaq[0] + 0.2) << "weak coupling must order the links";
  EXPECT_GT(plaq[1], 0.7);
  EXPECT_LT(plaq[0], 0.5);
}

TEST(GaugeUpdate, HeatbathAgreesWithMetropolis) {
  // the heatbath and an independent Metropolis sampler must produce the
  // same stationary distribution; compare thermalized average plaquettes
  const Geometry g({4, 4, 4, 4});
  const double beta = 5.5;

  HostGaugeField u_hb(g), u_met(g);
  make_unit_gauge(u_hb);
  make_unit_gauge(u_met);
  std::mt19937_64 rng_hb(30010), rng_met(30011);

  for (int s = 0; s < 30; ++s) gauge::heatbath_sweep(u_hb, beta, rng_hb);
  for (int s = 0; s < 60; ++s) gauge::metropolis_sweep(u_met, beta, 0.18, 4, rng_met);

  double p_hb = 0, p_met = 0;
  const int measures = 30;
  for (int s = 0; s < measures; ++s) {
    gauge::heatbath_sweep(u_hb, beta, rng_hb);
    p_hb += average_plaquette(u_hb);
    gauge::metropolis_sweep(u_met, beta, 0.18, 4, rng_met);
    p_met += average_plaquette(u_met);
  }
  p_hb /= measures;
  p_met /= measures;
  EXPECT_NEAR(p_hb, p_met, 0.02)
      << "heatbath " << p_hb << " vs metropolis " << p_met << " at beta " << beta;
}

TEST(GaugeUpdate, ColdAndHotStartsConverge) {
  // ergodicity sanity: ordered and disordered starts thermalize to the same
  // plaquette
  const Geometry g({4, 4, 4, 4});
  const double beta = 6.0;
  HostGaugeField cold(g), hot(g);
  make_unit_gauge(cold);
  make_random_gauge(hot, 30012);
  std::mt19937_64 r1(30013), r2(30014);

  for (int s = 0; s < 40; ++s) {
    gauge::update_sweeps(cold, beta, 1, 2, r1);
    gauge::update_sweeps(hot, beta, 1, 2, r2);
  }
  double pc = 0, ph = 0;
  for (int s = 0; s < 20; ++s) {
    gauge::update_sweeps(cold, beta, 1, 2, r1);
    gauge::update_sweeps(hot, beta, 1, 2, r2);
    pc += average_plaquette(cold);
    ph += average_plaquette(hot);
  }
  EXPECT_NEAR(pc / 20, ph / 20, 0.02);
}

} // namespace
} // namespace quda
