// Google-benchmark microbenchmarks of the *real* (host-executed) kernels:
// the QUDA-order dslash in all precisions, the fused BLAS kernels, clover
// application, and the face gather.  These measure the reproduction's own
// host throughput (useful when hacking on the kernels); the simulated-GPU
// numbers in the figure benches come from the device model, not from here.

#include "blas/blas.h"
#include "dirac/clover_term.h"
#include "dirac/dslash.h"
#include "dirac/gauge_init.h"
#include "dirac/transfer.h"
#include "exec/host_engine.h"

#include <benchmark/benchmark.h>

#include <fstream>

namespace quda {
namespace {

struct BenchFixtureData {
  Geometry g{LatticeDims{16, 16, 16, 16}};
  HostGaugeField u;
  HostSpinorField in;
  HostCloverField t;

  BenchFixtureData() : u(g), in(g) {
    make_weak_field_gauge(u, 0.2, 99);
    make_random_spinor(in, 100);
    t = make_clover_term(u, 1.0);
    add_diag(t, 4.1);
  }
};

const BenchFixtureData& data() {
  static const BenchFixtureData d;
  return d;
}

template <typename P> void BM_Dslash(benchmark::State& state) {
  const auto& d = data();
  const GaugeField<P> gauge = upload_gauge<P>(d.u, Reconstruct::Twelve);
  const SpinorField<P> in = upload_spinor<P>(d.in, Parity::Odd);
  SpinorField<P> out(d.g);
  DslashOptions opt;
  for (auto _ : state) {
    dslash<P>(out, gauge, in, d.g, opt, 0, d.g.half_volume(), 1, Accumulate::No);
    benchmark::DoNotOptimize(out.raw_data().data());
  }
  state.SetItemsProcessed(state.iterations() * d.g.half_volume());
}
BENCHMARK(BM_Dslash<PrecDouble>)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Dslash<PrecSingle>)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Dslash<PrecHalf>)->Unit(benchmark::kMillisecond);

template <typename P> void BM_DslashCompressed(benchmark::State& state) {
  // link reconstruction sweep: 8-, 12-, and 18-real gauge storage (the Arg
  // is the stored reals per link); host wall-clock trades reconstruction
  // ALU against gauge memory footprint here, while the device model moves
  // its bandwidth charge via perf::matrix_bytes_per_site(p, recon)
  const auto& d = data();
  const Reconstruct recon = state.range(0) == 8    ? Reconstruct::Eight
                            : state.range(0) == 12 ? Reconstruct::Twelve
                                                   : Reconstruct::Eighteen;
  const GaugeField<P> gauge = upload_gauge<P>(d.u, recon);
  const SpinorField<P> in = upload_spinor<P>(d.in, Parity::Odd);
  SpinorField<P> out(d.g);
  DslashOptions opt;
  for (auto _ : state) {
    dslash<P>(out, gauge, in, d.g, opt, 0, d.g.half_volume(), 1, Accumulate::No);
    benchmark::DoNotOptimize(out.raw_data().data());
  }
  state.counters["gauge_mb"] =
      static_cast<double>(gauge.device_bytes()) / (1024.0 * 1024.0);
}
BENCHMARK(BM_DslashCompressed<PrecSingle>)->Arg(8)->Arg(12)->Arg(18)->Unit(benchmark::kMillisecond);

template <typename PDst, typename PSrc> void BM_ConvertField(benchmark::State& state) {
  // the mixed-precision solver's per-reliable-update conversion; single <->
  // half takes the contiguous block-span fast path in convert_field
  const auto& d = data();
  const SpinorField<PSrc> src = upload_spinor<PSrc>(d.in, Parity::Even);
  SpinorField<PDst> dst(d.g);
  for (auto _ : state) {
    convert_field(src, dst);
    benchmark::DoNotOptimize(dst.raw_data().data());
  }
  state.SetItemsProcessed(state.iterations() * d.g.half_volume());
}
BENCHMARK(BM_ConvertField<PrecHalf, PrecSingle>)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ConvertField<PrecSingle, PrecHalf>)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ConvertField<PrecSingle, PrecDouble>)->Unit(benchmark::kMicrosecond);

template <typename P> void BM_CloverApply(benchmark::State& state) {
  const auto& d = data();
  const CloverField<P> clover = upload_clover<P>(d.t);
  const SpinorField<P> in = upload_spinor<P>(d.in, Parity::Even);
  SpinorField<P> out(d.g);
  for (auto _ : state) {
    apply_clover_xpay<P>(out, clover, Parity::Even, in, d.g, 0, d.g.half_volume(), 0);
    benchmark::DoNotOptimize(out.raw_data().data());
  }
}
BENCHMARK(BM_CloverApply<PrecSingle>)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CloverApply<PrecHalf>)->Unit(benchmark::kMillisecond);

template <typename P> void BM_BlasAxpyNorm(benchmark::State& state) {
  const auto& d = data();
  const SpinorField<P> x = upload_spinor<P>(d.in, Parity::Even);
  SpinorField<P> y = upload_spinor<P>(d.in, Parity::Odd);
  double acc = 0;
  for (auto _ : state) {
    acc += blas::axpy_norm(0.001, x, y);
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(state.iterations() * d.g.half_volume());
}
BENCHMARK(BM_BlasAxpyNorm<PrecDouble>)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BlasAxpyNorm<PrecSingle>)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BlasAxpyNorm<PrecHalf>)->Unit(benchmark::kMillisecond);

template <typename P> void BM_FacePack(benchmark::State& state) {
  const auto& d = data();
  const SpinorField<P> in = upload_spinor<P>(d.in, Parity::Odd);
  FaceBuffer<P> buf;
  for (auto _ : state) {
    pack_face(in, d.g, Parity::Odd, d.g.dims().t - 1, +1, buf);
    benchmark::DoNotOptimize(buf.data.data());
  }
  state.SetItemsProcessed(state.iterations() * d.g.half_spatial_volume());
}
BENCHMARK(BM_FacePack<PrecSingle>)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_FacePack<PrecHalf>)->Unit(benchmark::kMicrosecond);

void BM_CloverConstruction(benchmark::State& state) {
  const auto& d = data();
  for (auto _ : state) {
    HostCloverField a = make_clover_term(d.u, 1.0);
    benchmark::DoNotOptimize(&a[0]);
  }
}
BENCHMARK(BM_CloverConstruction)->Unit(benchmark::kMillisecond);

// --- execution-engine thread sweeps ------------------------------------------
// The Arg is the worker budget for the run; 1 is the serial seed path.  These
// are the wall-clock speedup record for the host execution engine (the
// results land in BENCH_kernels.json with the rest).

template <typename P> void BM_DslashThreads(benchmark::State& state) {
  exec::set_thread_budget(static_cast<int>(state.range(0)));
  const auto& d = data();
  const GaugeField<P> gauge = upload_gauge<P>(d.u, Reconstruct::Twelve);
  const SpinorField<P> in = upload_spinor<P>(d.in, Parity::Odd);
  SpinorField<P> out(d.g);
  DslashOptions opt;
  for (auto _ : state) {
    dslash<P>(out, gauge, in, d.g, opt, 0, d.g.half_volume(), 1, Accumulate::No);
    benchmark::DoNotOptimize(out.raw_data().data());
  }
  state.SetItemsProcessed(state.iterations() * d.g.half_volume());
  exec::set_thread_budget(0);
}
BENCHMARK(BM_DslashThreads<PrecDouble>)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DslashThreads<PrecSingle>)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

template <typename P> void BM_BlasAxpyNormThreads(benchmark::State& state) {
  exec::set_thread_budget(static_cast<int>(state.range(0)));
  const auto& d = data();
  const SpinorField<P> x = upload_spinor<P>(d.in, Parity::Even);
  SpinorField<P> y = upload_spinor<P>(d.in, Parity::Odd);
  double acc = 0;
  for (auto _ : state) {
    acc += blas::axpy_norm(0.001, x, y);
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(state.iterations() * d.g.half_volume());
  exec::set_thread_budget(0);
}
BENCHMARK(BM_BlasAxpyNormThreads<PrecDouble>)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_BlasAxpyNormThreads<PrecSingle>)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMicrosecond);

template <typename P> void BM_BlasPUpdateThreads(benchmark::State& state) {
  exec::set_thread_budget(static_cast<int>(state.range(0)));
  const auto& d = data();
  SpinorField<P> p = upload_spinor<P>(d.in, Parity::Even);
  const SpinorField<P> r = upload_spinor<P>(d.in, Parity::Odd);
  const SpinorField<P> v = upload_spinor<P>(d.in, Parity::Even);
  const complexd beta{1.01, -0.02}, omega{0.97, 0.01};
  for (auto _ : state) {
    blas::bicgstab_p_update(p, r, v, beta, omega);
    benchmark::DoNotOptimize(p.raw_data().data());
  }
  state.SetItemsProcessed(state.iterations() * d.g.half_volume());
  exec::set_thread_budget(0);
}
BENCHMARK(BM_BlasPUpdateThreads<PrecSingle>)->Arg(1)->Arg(8)->Unit(benchmark::kMicrosecond);

} // namespace
} // namespace quda

// custom main: mirror the console run into BENCH_kernels.json so the host
// kernel throughput is tracked machine-readably across commits.  An explicit
// --benchmark_out on the command line overrides the default file.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = "--benchmark_out=BENCH_kernels.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  bool has_out = false;
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]).rfind("--benchmark_out=", 0) == 0) has_out = true;
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
