// Fig. 5 of the paper: strong scaling of the solver on the two production
// lattices, comparing the overlapped and non-overlapped communication
// strategies in single and mixed single-half precision.
//
//  (a) V = 32^3 x 256: overlap increasingly wins as the GPU count grows;
//      mixed precision needs >= 8 GPUs (memory footprint); uniform single
//      already fits on 4.  A deliberately NUMA-misbound series (maroon in
//      the paper) shows visibly lower performance.
//  (b) V = 24^3 x 128: the smaller lattice.  The overlapped mixed-precision
//      solver plateaus beyond ~8 GPUs -- the cudaMemcpyAsync latency
//      penalty is no longer hidden by the shrunken interior -- and is
//      overtaken by the non-overlapped variant, the paper's surprise result.

#include "bench_util.h"

#include <cstring>

using namespace quda;
using namespace quda::bench;

namespace {

void run_subfigure(BenchJson& json, const char* title, LatticeDims global,
                   const std::vector<int>& gpus, const std::vector<SolverSeries>& series,
                   int iterations) {
  std::vector<std::vector<parallel::ModeledSolverResult>> results(series.size());
  for (std::size_t s = 0; s < series.size(); ++s)
    for (int n : gpus) results[s].push_back(run_point(n, global, series[s], iterations));
  print_scaling_table(title, gpus, series, results);
  record_scaling_points(json, title, gpus, series, results);
}

} // namespace

int main(int argc, char** argv) {
  // --quick: a reduced sweep with stable point keys, cheap enough for the
  // per-commit perf gate (tools/quick_gate.sh diffs its JSON against a
  // baseline with tools/bench_diff.py)
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  std::printf("Fig. 5: strong scaling on up to 32 GPUs%s\n", quick ? " (quick gate mode)" : "");

  BenchJson json("fig5_strong");
  json.config("scaling", "strong");
  json.config("mode", quick ? "quick" : "full");

  if (quick) {
    run_subfigure(
        json, "(b) V = 24^3 x 128 sites", {24, 24, 24, 128}, {2, 4},
        {
            {"single, no overlap", Precision::Single, std::nullopt, CommPolicy::NoOverlap},
            {"single, overlap", Precision::Single, std::nullopt, CommPolicy::Overlap},
        },
        /*iterations=*/30);
    json.write();
    return 0;
  }

  run_subfigure(
      json, "(a) V = 32^3 x 256 sites", {32, 32, 32, 256}, {4, 8, 16, 32},
      {
          {"single, no overlap", Precision::Single, std::nullopt, CommPolicy::NoOverlap},
          {"single-half, no ovl", Precision::Single, Precision::Half, CommPolicy::NoOverlap},
          {"single, overlap", Precision::Single, std::nullopt, CommPolicy::Overlap},
          {"single-half, overlap", Precision::Single, Precision::Half, CommPolicy::Overlap},
          {"s-h ovl, bad NUMA", Precision::Single, Precision::Half, CommPolicy::Overlap,
           /*good_numa=*/false},
      },
      /*iterations=*/100);

  run_subfigure(
      json, "(b) V = 24^3 x 128 sites", {24, 24, 24, 128}, {1, 2, 4, 8, 16, 32},
      {
          {"single, no overlap", Precision::Single, std::nullopt, CommPolicy::NoOverlap},
          {"single-half, no ovl", Precision::Single, Precision::Half, CommPolicy::NoOverlap},
          {"single, overlap", Precision::Single, std::nullopt, CommPolicy::Overlap},
          {"single-half, overlap", Precision::Single, Precision::Half, CommPolicy::Overlap},
      },
      /*iterations=*/100);

  json.write();
  return 0;
}
