// Fig. 5 of the paper: strong scaling of the solver on the two production
// lattices, comparing the overlapped and non-overlapped communication
// strategies in single and mixed single-half precision.
//
//  (a) V = 32^3 x 256: overlap increasingly wins as the GPU count grows;
//      mixed precision needs >= 8 GPUs (memory footprint); uniform single
//      already fits on 4.  A deliberately NUMA-misbound series (maroon in
//      the paper) shows visibly lower performance.
//  (b) V = 24^3 x 128: the smaller lattice.  The overlapped mixed-precision
//      solver plateaus beyond ~8 GPUs -- the cudaMemcpyAsync latency
//      penalty is no longer hidden by the shrunken interior -- and is
//      overtaken by the non-overlapped variant, the paper's surprise result.
//
//  (c) extension past the paper, in the regime of "Scaling Lattice QCD
//      beyond 100 GPUs": 256-1024 simulated GPUs on (a)'s lattice,
//      per-dimension 4-D decomposition sweeps on a fat-tree cluster, run
//      under the cooperative seq scheduler (rank count is a parameter, not
//      an OS thread budget).  Each point carries critpath/whatif
//      attribution showing where each added cut dimension pays off.

#include "bench_util.h"

#include <cstring>

using namespace quda;
using namespace quda::bench;

namespace {

void run_subfigure(BenchJson& json, const char* title, LatticeDims global,
                   const std::vector<int>& gpus, const std::vector<SolverSeries>& series,
                   int iterations) {
  std::vector<std::vector<parallel::ModeledSolverResult>> results(series.size());
  for (std::size_t s = 0; s < series.size(); ++s)
    for (int n : gpus) results[s].push_back(run_point(n, global, series[s], iterations));
  print_scaling_table(title, gpus, series, results);
  record_scaling_points(json, title, gpus, series, results);
}

// the 256-1024 GPU decomposition sweep: fat-tree interconnect, seq scheduler
void run_multidim_table(BenchJson& json, const char* title, LatticeDims global,
                        const std::vector<comm::GridTopology>& grids,
                        const SolverSeries& series, int iterations) {
  std::printf("\n%s\n", title);
  std::printf("%-8s %-14s %14s %16s %18s\n", "GPUs", "grid", "Gflops", "GF per GPU",
              "exposed comm us");
  for (const auto& topo : grids) {
    sim::ClusterSpec spec = sim::ClusterSpec::fat_tree(topo.num_ranks());
    spec.scheduler = sim::SchedulerKind::Seq;
    const auto r = run_grid_point(spec, topo, global, series, iterations);
    record_grid_point(json, title, series, topo, r);
    if (!r.fits) {
      std::printf("%-8d %-14s %14s\n", topo.num_ranks(), grid_label(topo).c_str(), "OOM");
      continue;
    }
    std::printf("%-8d %-14s %12.1f GF %13.1f GF %16.1f\n", topo.num_ranks(),
                grid_label(topo).c_str(), r.effective_gflops,
                r.effective_gflops / topo.num_ranks(),
                r.critpath.valid ? r.critpath.exposed_comm_us() : 0.0);
  }
}

} // namespace

int main(int argc, char** argv) {
  // --quick: a reduced sweep with stable point keys, cheap enough for the
  // per-commit perf gate (tools/quick_gate.sh diffs its JSON against a
  // baseline with tools/bench_diff.py)
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  std::printf("Fig. 5: strong scaling on up to 32 GPUs%s\n", quick ? " (quick gate mode)" : "");

  BenchJson json("fig5_strong");
  json.config("scaling", "strong");
  json.config("mode", quick ? "quick" : "full");

  if (quick) {
    run_subfigure(
        json, "(b) V = 24^3 x 128 sites", {24, 24, 24, 128}, {2, 4},
        {
            {"single, no overlap", Precision::Single, std::nullopt, CommPolicy::NoOverlap},
            {"single, overlap", Precision::Single, std::nullopt, CommPolicy::Overlap},
        },
        /*iterations=*/30);
    // one 256-rank seq-scheduler point so the per-commit gate covers the
    // O(1000)-rank path (cheap: modeled iterations, cooperative fibers)
    run_multidim_table(json, "(c) multi-dim V = 24^3 x 128", {24, 24, 24, 128},
                       {{{1, 2, 2, 64}}},
                       {"single-half, overlap", Precision::Single, Precision::Half,
                        CommPolicy::Overlap},
                       /*iterations=*/10);
    json.write();
    return 0;
  }

  run_subfigure(
      json, "(a) V = 32^3 x 256 sites", {32, 32, 32, 256}, {4, 8, 16, 32},
      {
          {"single, no overlap", Precision::Single, std::nullopt, CommPolicy::NoOverlap},
          {"single-half, no ovl", Precision::Single, Precision::Half, CommPolicy::NoOverlap},
          {"single, overlap", Precision::Single, std::nullopt, CommPolicy::Overlap},
          {"single-half, overlap", Precision::Single, Precision::Half, CommPolicy::Overlap},
          {"s-h ovl, bad NUMA", Precision::Single, Precision::Half, CommPolicy::Overlap,
           /*good_numa=*/false},
      },
      /*iterations=*/100);

  run_subfigure(
      json, "(b) V = 24^3 x 128 sites", {24, 24, 24, 128}, {1, 2, 4, 8, 16, 32},
      {
          {"single, no overlap", Precision::Single, std::nullopt, CommPolicy::NoOverlap},
          {"single-half, no ovl", Precision::Single, Precision::Half, CommPolicy::NoOverlap},
          {"single, overlap", Precision::Single, std::nullopt, CommPolicy::Overlap},
          {"single-half, overlap", Precision::Single, Precision::Half, CommPolicy::Overlap},
      },
      /*iterations=*/100);

  // (c): strong scaling to 256-1024 simulated GPUs on (a)'s lattice, with
  // per-dimension decomposition sweeps at each GPU count.  At equal rank
  // counts the grids differ only in which dimensions are cut; the critpath
  // attribution (crit_*/whatif_* fields per point) shows the shrinking-
  // interior exposed-comm cost each extra cut dimension buys back.
  run_multidim_table(json, "(c) multi-dim V = 32^3 x 256 sites", {32, 32, 32, 256},
                     {
                         {{1, 1, 2, 128}},
                         {{1, 2, 2, 64}},
                         {{2, 2, 2, 32}},
                         {{1, 2, 2, 128}},
                         {{1, 2, 4, 64}},
                         {{2, 2, 4, 32}},
                         {{2, 2, 2, 128}},
                         {{2, 2, 4, 64}},
                         {{1, 4, 4, 64}},
                     },
                     {"single-half, overlap", Precision::Single, Precision::Half,
                      CommPolicy::Overlap},
                     /*iterations=*/10);

  json.write();
  return 0;
}
