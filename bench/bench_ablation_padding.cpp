// Ablation for Section V-B / [10]: partition camping and the field padding.
//
// Device memory on the GTX 285 is interleaved over 8 partitions in 256-byte
// regions.  A QUDA field is read as Nint/Nvec parallel block streams whose
// starting addresses are separated by stride*Nvec*sizeof(real); when that
// separation maps every stream onto the same partition, effective bandwidth
// collapses ("partition camping").  QUDA's fix is to pad each block by one
// spatial volume (equation (5)).  Camping is volume-dependent -- the paper
// says "certain problem sizes" -- so this bench sweeps volumes and reports,
// for each, the bank-coverage factor and modeled dslash time without and
// with the pad.

#include "gpusim/kernel_model.h"
#include "lattice/geometry.h"
#include "perfmodel/costs.h"

#include <cstdio>

using namespace quda;

int main() {
  const auto& dev = gpusim::geforce_gtx285();
  std::printf("Partition camping ablation (GTX 285: %d partitions x %d bytes)\n\n",
              dev.memory_partitions, dev.partition_bytes);
  std::printf("%-16s %14s %10s %10s %14s %14s %8s\n", "lattice", "stride(B)", "banks",
              "banks+pad", "dslash (us)", "padded (us)", "gain");

  const LatticeDims volumes[] = {
      {16, 16, 16, 64}, {20, 20, 20, 64}, {24, 24, 24, 32}, {24, 24, 24, 128},
      {28, 28, 28, 32}, {32, 32, 32, 64}, {32, 32, 32, 256}, {36, 36, 36, 32},
  };

  for (const auto& dims : volumes) {
    const Geometry g(dims);
    const std::int64_t vh = g.half_volume();
    constexpr int nvec_bytes = 4 * 4; // float4 blocks in single precision

    const std::int64_t stride_raw = vh * nvec_bytes;
    const std::int64_t stride_pad = (vh + g.half_spatial_volume()) * nvec_bytes;

    const double banks_raw = gpusim::partition_camping_factor(stride_raw, dev) *
                             dev.memory_partitions;
    const double banks_pad = gpusim::partition_camping_factor(stride_pad, dev) *
                             dev.memory_partitions;

    auto cost_raw = perf::dslash_kernel_cost(Precision::Single, vh, stride_raw);
    auto cost_pad = perf::dslash_kernel_cost(Precision::Single, vh, stride_pad);
    const double t_raw = gpusim::kernel_duration_us(cost_raw, {256, 0}, dev, false);
    const double t_pad = gpusim::kernel_duration_us(cost_pad, {256, 0}, dev, false);

    std::printf("%-16s %14lld %10.0f %10.0f %14.0f %14.0f %7.2fx\n", dims.to_string().c_str(),
                static_cast<long long>(stride_raw), banks_raw, banks_pad, t_raw, t_pad,
                t_raw / t_pad);
  }

  std::printf("\ncamping is volume-dependent (\"certain problem sizes\"); the pad shifts the\n");
  std::printf("stream alignment and restores bank coverage for the affected volumes.\n");
  std::printf("Volumes whose pad is itself partition-aligned need a tuned pad size, which\n");
  std::printf("the BlockLayout's free pad parameter supports.\n");
  return 0;
}
