// Section V-E: auto-tuned linear-algebra kernels.
//
// Sweeps the launch space of the fused BLAS kernels the BiCGstab solver
// uses, in all three precisions, printing the tuned block sizes and the
// gain over naive launch choices -- and then quantifies the paper's claim
// that the complete solver "typically runs 10 to 20% slower than would the
// matrix-vector product in isolation" due to these streaming kernels.

#include "blas/autotune.h"
#include "perfmodel/costs.h"

#include <cstdio>

using namespace quda;

namespace {

struct KernelDesc {
  const char* name;
  int reads;
  int writes;
};

// the fused kernels of the BiCGstab iteration (see solvers/bicgstab.h)
constexpr KernelDesc kKernels[] = {
    {"cDotProduct", 2, 0},    {"caxpy", 3, 2},        {"cDotProductNormA", 3, 0},
    {"axpyZpbx", 3, 1},       {"xpaypbz", 3, 1},      {"caxpbypzYmbw", 3, 1},
};

} // namespace

int main() {
  const auto& dev = gpusim::geforce_gtx285();
  blas::AutoTuner tuner(dev);
  const std::int64_t sites = 24 * 24 * 24 * 32 / 2; // one parity of a production local volume

  std::printf("Section V-E: BLAS kernel auto-tuning sweep (GTX 285, %lld sites)\n\n",
              static_cast<long long>(sites));
  std::printf("%-20s %-8s %10s %14s %14s %10s\n", "kernel", "prec", "block", "tuned (us)",
              "worst (us)", "gain");

  for (Precision p : {Precision::Half, Precision::Single, Precision::Double}) {
    for (const auto& k : kKernels) {
      const auto cost = perf::blas_kernel_cost(p, sites, k.reads, k.writes);
      const std::string key = std::string(k.name) + "_" + to_string(p);
      const auto& best = tuner.tune(key, cost, p == Precision::Double);
      double worst = 0;
      for (int block = 64; block <= 512; block += 64)
        worst = std::max(worst, tuner.duration_at(cost, block, p == Precision::Double));
      std::printf("%-20s %-8s %10d %14.1f %14.1f %9.0f%%\n", k.name, to_string(p),
                  best.launch.block_size, best.time_us, worst,
                  100.0 * (worst - best.time_us) / worst);
    }
  }

  // solver overhead estimate: per-iteration BLAS time vs matrix-vector time
  std::printf("\nsolver overhead from BLAS1 kernels (per BiCGstab iteration):\n");
  for (Precision p : {Precision::Half, Precision::Single, Precision::Double}) {
    double blas_us = 0;
    for (const auto& k : kKernels) {
      const auto cost = perf::blas_kernel_cost(p, sites, k.reads, k.writes);
      blas_us += tuner.tune(std::string(k.name) + "_" + to_string(p), cost,
                            p == Precision::Double)
                     .time_us;
    }
    const auto mv = perf::dslash_kernel_cost(p, sites);
    const double mv_us =
        4.0 * gpusim::kernel_duration_us(mv, {256, 0}, dev, p == Precision::Double);
    std::printf("  %-8s matrix %8.0f us + blas %8.0f us  -> solver %4.0f%% slower than M alone\n",
                to_string(p), mv_us, blas_us, 100.0 * blas_us / mv_us);
  }

  std::printf("\ngenerated header:\n%s", tuner.export_header().c_str());
  return 0;
}
