// Ablation for Section V-D: reliable updates vs defect correction.
//
// The paper's mixed-precision solver keeps a single Krylov space and folds
// in high-precision corrections (reliable updates); the traditional
// alternative, defect correction, restarts the Krylov space at every
// correction and therefore needs more total iterations.  This bench runs
// both (real arithmetic, small lattice) across sloppy precisions and delta
// values and reports iteration counts and true residuals.

#include "dirac/clover_term.h"
#include "dirac/gauge_init.h"
#include "dirac/transfer.h"
#include "dirac/wilson_clover_op.h"
#include "solvers/mixed_precision.h"

#include <cstdio>

using namespace quda;

int main() {
  const Geometry g({6, 6, 6, 8});
  HostGaugeField u(g);
  make_weak_field_gauge(u, 0.25, 424242);
  const double mass = 0.03, csw = 1.0; // light mass: an ill-conditioned system
  HostCloverField t = make_clover_term(u, csw);
  add_diag(t, 4.0 + mass);
  const HostCloverField tinv = invert_clover(t);

  const GaugeFieldD u_d = upload_gauge<PrecDouble>(u, Reconstruct::Twelve);
  const GaugeFieldS u_s = upload_gauge<PrecSingle>(u, Reconstruct::Twelve);
  const GaugeFieldH u_h = upload_gauge<PrecHalf>(u, Reconstruct::Twelve);
  const CloverFieldD t_d = upload_clover<PrecDouble>(t), tinv_d = upload_clover<PrecDouble>(tinv);
  const CloverFieldS t_s = upload_clover<PrecSingle>(t), tinv_s = upload_clover<PrecSingle>(tinv);
  const CloverFieldH t_h = upload_clover<PrecHalf>(t), tinv_h = upload_clover<PrecHalf>(tinv);

  OperatorParams params;
  params.mass = mass;
  params.time_bc = TimeBoundary::Antiperiodic;
  WilsonCloverOp<PrecDouble> op_d(g, u_d, t_d, tinv_d, params);
  WilsonCloverOp<PrecSingle> op_s(g, u_s, t_s, tinv_s, params);
  WilsonCloverOp<PrecHalf> op_h(g, u_h, t_h, tinv_h, params);

  HostSpinorField hb(g);
  make_random_spinor(hb, 5);
  const SpinorFieldD b = upload_spinor<PrecDouble>(hb, Parity::Even);

  std::printf("Reliable updates vs defect correction (V = 6^3 x 8, m = %.2f, tol = 1e-10)\n\n",
              mass);
  std::printf("%-16s %-10s %-10s %8s %10s %10s %14s\n", "strategy", "sloppy", "delta", "iters",
              "updates", "restarts", "true |r|/|b|");

  SolverParams sp;
  sp.tol = 1e-10;
  sp.max_iter = 20000;

  const double deltas[] = {1e-1, 1e-2, 1e-3};
  for (Precision sloppy : {Precision::Single, Precision::Half}) {
    for (double delta : deltas) {
      sp.delta = delta;
      SpinorFieldD x(g);
      SolverStats rel;
      if (sloppy == Precision::Single)
        rel = solve_bicgstab_reliable(op_d, op_s, x, b, sp);
      else
        rel = solve_bicgstab_reliable(op_d, op_h, x, b, sp);
      std::printf("%-16s %-10s %-10.0e %8d %10d %10d %14.2e\n", "reliable", to_string(sloppy),
                  delta, rel.iterations, rel.reliable_updates, rel.restarts, rel.true_residual);
    }
    SpinorFieldD x(g);
    SolverStats dc;
    if (sloppy == Precision::Single)
      dc = solve_defect_correction(op_d, op_s, x, b, sp, 1e-2);
    else
      dc = solve_defect_correction(op_d, op_h, x, b, sp, 1e-1);
    std::printf("%-16s %-10s %-10s %8d %10s %10d %14.2e\n", "defect-corr", to_string(sloppy),
                "-", dc.iterations, "-", dc.restarts, dc.true_residual);
  }

  // uniform double for reference
  SpinorFieldD x(g);
  SolverParams sp_u = sp;
  const SolverStats uni = solve_bicgstab(op_d, x, b, sp_u);
  std::printf("%-16s %-10s %-10s %8d %10s %10s %14.2e\n", "uniform", "double", "-",
              uni.iterations, "-", "-", uni.true_residual);

  std::printf("\nexpected: reliable updates converge in fewer total iterations than\n");
  std::printf("defect correction at equal sloppy precision (single Krylov space)\n");
  return 0;
}
