// Table I of the paper: specifications of representative NVIDIA graphics
// cards, printed from the device registry that parameterizes the simulated
// GPU layer.

#include "gpusim/device_spec.h"

#include <cstdio>

int main() {
  std::printf("Table I: specifications of representative NVIDIA graphics cards\n\n");
  std::printf("%-20s %6s %12s %10s %10s %8s\n", "Card", "Cores", "GB/s BW", "GF 32-bit",
              "GF 64-bit", "GiB RAM");
  for (const auto& card : quda::gpusim::representative_cards()) {
    if (card.gflops_dp > 0)
      std::printf("%-20s %6d %12.1f %10.0f %10.0f %8.2f\n", card.name.c_str(), card.cores,
                  card.mem_bandwidth_gbs, card.gflops_sp, card.gflops_dp, card.ram_gib);
    else
      std::printf("%-20s %6d %12.1f %10.0f %10s %8.2f\n", card.name.c_str(), card.cores,
                  card.mem_bandwidth_gbs, card.gflops_sp, "N/A", card.ram_gib);
  }
  std::printf("\n(the paper's test bed is the GeForce GTX 285 with 2 GiB)\n");
  return 0;
}
