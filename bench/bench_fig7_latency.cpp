// Fig. 7 of the paper: host/device transfer latency microbenchmark.
//
// Transfer times for messages of 1 KiB .. 256 KiB in four modes: cudaMemcpy
// and cudaMemcpyAsync(+synchronize), each in both directions.  The paper's
// observations to reproduce: cudaMemcpyAsync carries ~50 us of latency
// against ~11 us for cudaMemcpy (the Tylersburg chipset issue), and the
// host-to-device and device-to-host curves have different slopes
// (asymmetric bandwidth).  Timings are averaged over many transfers as in
// the paper's 500,000-transfer measurement.

#include "gpusim/device.h"

#include <cstdio>

using namespace quda::gpusim;

namespace {

// average per-transfer time over `reps` back-to-back transfers on an
// otherwise idle device
double average_transfer_us(const DeviceSpec& spec, std::int64_t bytes, CopyDir dir, bool async,
                           int reps) {
  Device dev(spec, BusModel{});
  double host = 0.0;
  for (int i = 0; i < reps; ++i) {
    if (async) {
      host = dev.memcpy_async(host, 1, bytes, dir);
      host = dev.stream_synchronize(host, 1); // cudaMemcpyAsync + synchronize
    } else {
      host = dev.memcpy_sync(host, bytes, dir);
    }
  }
  return host / reps;
}

} // namespace

int main() {
  std::printf("Fig. 7: transfer-time microbenchmark (GeForce GTX 285 node model)\n\n");
  std::printf("%-10s %18s %18s %22s %22s\n", "bytes", "memcpy d2h (us)", "memcpy h2d (us)",
              "memcpyAsync d2h (us)", "memcpyAsync h2d (us)");

  const DeviceSpec& spec = geforce_gtx285();
  const int reps = 500000 / 100; // the model is deterministic; 5000 reps suffice
  for (std::int64_t bytes = 1 << 10; bytes <= 1 << 18; bytes <<= 1) {
    const double sd = average_transfer_us(spec, bytes, CopyDir::DeviceToHost, false, reps);
    const double sh = average_transfer_us(spec, bytes, CopyDir::HostToDevice, false, reps);
    const double ad = average_transfer_us(spec, bytes, CopyDir::DeviceToHost, true, reps);
    const double ah = average_transfer_us(spec, bytes, CopyDir::HostToDevice, true, reps);
    std::printf("%-10lld %18.1f %18.1f %22.1f %22.1f\n", static_cast<long long>(bytes), sd, sh,
                ad, ah);
  }

  std::printf("\nexpected structure: ~11 us sync latency vs ~50 us async latency; d2h\n");
  std::printf("slope steeper than h2d (asymmetric bus bandwidth)\n");
  return 0;
}
