// Fig. 7 of the paper: host/device transfer latency microbenchmark.
//
// Transfer times for messages of 1 KiB .. 256 KiB in four modes: cudaMemcpy
// and cudaMemcpyAsync(+synchronize), each in both directions.  The paper's
// observations to reproduce: cudaMemcpyAsync carries ~50 us of latency
// against ~11 us for cudaMemcpy (the Tylersburg chipset issue), and the
// host-to-device and device-to-host curves have different slopes
// (asymmetric bandwidth).  Timings are averaged over many transfers as in
// the paper's 500,000-transfer measurement.
//
// Each mode is traced and run through the critical-path analyzer, so
// BENCH_fig7_latency.json carries a per-point attribution (PCIe occupancy
// vs host-side issue/sync time) -- the sync-vs-async latency gap is then
// explainable from the JSON alone: the async points show the same bus
// occupancy but a far larger non-PCIe share per transfer.

#include "bench_util.h"
#include "gpusim/device.h"
#include "trace/attribution.h"

#include <cstdio>

using namespace quda;
using namespace quda::gpusim;

namespace {

struct TransferPoint {
  double avg_us = 0;            // average per-transfer latency
  trace::CritSummary crit;      // attribution of the traced rep loop
};

// average per-transfer time over `reps` back-to-back transfers on an
// otherwise idle device, with the rep loop traced and attributed
TransferPoint measure(const DeviceSpec& spec, std::int64_t bytes, CopyDir dir, bool async,
                      int reps) {
  Device dev(spec, BusModel{});
  double host = 0.0;
  trace::RankTracer tracer;
  tracer.bind(0, &host);
  tracer.set_enabled(true);
  trace::ScopedTracer bind(&tracer);
  for (int i = 0; i < reps; ++i) {
    if (async) {
      host = dev.memcpy_async(host, 1, bytes, dir);
      host = dev.stream_synchronize(host, 1); // cudaMemcpyAsync + synchronize
    } else {
      host = dev.memcpy_sync(host, bytes, dir);
    }
  }
  TransferPoint p;
  p.avg_us = host / reps;
  trace::TraceReport report;
  report.enabled = true;
  report.per_rank.push_back(tracer.take_events());
  p.crit = trace::analyze_solve(report, trace::ModelConfig{spec.dual_copy_engine});
  return p;
}

void record(bench::BenchJson& json, std::int64_t bytes, const char* mode, const char* dir,
            const TransferPoint& p, int reps) {
  json.point();
  json.field("bytes", static_cast<double>(bytes));
  json.field("mode", mode);
  json.field("dir", dir);
  json.field("time_us", p.avg_us);
  bench::record_critpath(json, p.crit);
  if (p.crit.valid) {
    // per-transfer shares of the rep loop's critical path
    json.field("pcie_us_per_transfer", p.crit.pcie_us() / reps);
    json.field("host_us_per_transfer", (p.crit.path_us - p.crit.pcie_us()) / reps);
  }
}

} // namespace

int main() {
  std::printf("Fig. 7: transfer-time microbenchmark (GeForce GTX 285 node model)\n\n");
  std::printf("%-10s %18s %18s %22s %22s\n", "bytes", "memcpy d2h (us)", "memcpy h2d (us)",
              "memcpyAsync d2h (us)", "memcpyAsync h2d (us)");

  bench::BenchJson json("fig7_latency");
  json.config("device", "geforce_gtx285");

  const DeviceSpec& spec = geforce_gtx285();
  const int reps = 500; // the model is deterministic; tracing makes reps cheap but not free
  json.config("reps", static_cast<double>(reps));
  for (std::int64_t bytes = 1 << 10; bytes <= 1 << 18; bytes <<= 1) {
    const TransferPoint sd = measure(spec, bytes, CopyDir::DeviceToHost, false, reps);
    const TransferPoint sh = measure(spec, bytes, CopyDir::HostToDevice, false, reps);
    const TransferPoint ad = measure(spec, bytes, CopyDir::DeviceToHost, true, reps);
    const TransferPoint ah = measure(spec, bytes, CopyDir::HostToDevice, true, reps);
    std::printf("%-10lld %18.1f %18.1f %22.1f %22.1f\n", static_cast<long long>(bytes),
                sd.avg_us, sh.avg_us, ad.avg_us, ah.avg_us);
    record(json, bytes, "sync", "d2h", sd, reps);
    record(json, bytes, "sync", "h2d", sh, reps);
    record(json, bytes, "async", "d2h", ad, reps);
    record(json, bytes, "async", "h2d", ah, reps);
  }

  std::printf("\nexpected structure: ~11 us sync latency vs ~50 us async latency; d2h\n");
  std::printf("slope steeper than h2d (asymmetric bus bandwidth)\n");
  std::printf("\nattribution of the largest async d2h point:\n%s",
              trace::attribution_table(
                  measure(spec, 1 << 18, CopyDir::DeviceToHost, true, reps).crit)
                  .c_str());
  json.write();
  return 0;
}
