#pragma once
// Shared helpers for the benchmark binaries: each bench regenerates one
// table or figure of the paper, printing the same rows/series the paper
// plots.  Absolute numbers come from the calibrated device model; the
// shapes (who wins, by what factor, where the crossovers fall) are the
// reproduction targets recorded in EXPERIMENTS.md.

#include "parallel/modeled_solver.h"
#include "sim/event_sim.h"

#include <cstdio>
#include <optional>
#include <string>
#include <vector>

namespace quda::bench {

struct SolverSeries {
  std::string label;
  Precision outer;
  std::optional<Precision> sloppy;
  CommPolicy policy;
  bool good_numa = true;
};

// run one modeled-solver data point: global volume split over `ranks` GPUs
inline parallel::ModeledSolverResult run_point(int ranks, LatticeDims global,
                                               const SolverSeries& series,
                                               int iterations = 100) {
  sim::ClusterSpec spec = sim::ClusterSpec::jlab_9g(ranks);
  spec.good_numa_binding = series.good_numa;
  sim::VirtualCluster cluster(spec);

  parallel::ModeledSolverConfig cfg;
  cfg.local = global;
  cfg.local.t = global.t / ranks;
  cfg.outer = series.outer;
  cfg.sloppy = series.sloppy;
  cfg.policy = series.policy;
  cfg.iterations = iterations;
  return parallel::run_modeled_solver(cluster, cfg);
}

// weak scaling variant: `local` is the per-GPU volume
inline parallel::ModeledSolverResult run_weak_point(int ranks, LatticeDims local,
                                                    const SolverSeries& series,
                                                    int iterations = 100) {
  sim::ClusterSpec spec = sim::ClusterSpec::jlab_9g(ranks);
  spec.good_numa_binding = series.good_numa;
  sim::VirtualCluster cluster(spec);

  parallel::ModeledSolverConfig cfg;
  cfg.local = local;
  cfg.outer = series.outer;
  cfg.sloppy = series.sloppy;
  cfg.policy = series.policy;
  cfg.iterations = iterations;
  return parallel::run_modeled_solver(cluster, cfg);
}

inline void print_scaling_table(const char* title, const std::vector<int>& gpu_counts,
                                const std::vector<SolverSeries>& series,
                                const std::vector<std::vector<parallel::ModeledSolverResult>>&
                                    results /* [series][point] */) {
  std::printf("\n%s\n", title);
  std::printf("%-6s", "GPUs");
  for (const auto& s : series) std::printf("  %22s", s.label.c_str());
  std::printf("\n");
  for (std::size_t p = 0; p < gpu_counts.size(); ++p) {
    std::printf("%-6d", gpu_counts[p]);
    for (std::size_t s = 0; s < series.size(); ++s) {
      const auto& r = results[s][p];
      if (!r.fits)
        std::printf("  %22s", "OOM");
      else
        std::printf("  %18.1f GF", r.effective_gflops);
    }
    std::printf("\n");
  }
}

} // namespace quda::bench
