#pragma once
// Shared helpers for the benchmark binaries: each bench regenerates one
// table or figure of the paper, printing the same rows/series the paper
// plots.  Absolute numbers come from the calibrated device model; the
// shapes (who wins, by what factor, where the crossovers fall) are the
// reproduction targets recorded in EXPERIMENTS.md.

#include "core/provenance.h"
#include "core/wallclock.h"
#include "parallel/modeled_solver.h"
#include "sim/event_sim.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace quda::bench {

// Machine-readable companion to the text tables: accumulates config entries
// and data points, then writes BENCH_<name>.json (config, per-point numbers,
// total wall clock) so the perf trajectory can be diffed across commits.
class BenchJson {
public:
  explicit BenchJson(std::string name)
      : name_(std::move(name)), start_(core::wall_now()) {}

  void config(const std::string& key, const std::string& value) {
    config_.emplace_back(key, quote(value));
  }
  void config(const std::string& key, double value) { config_.emplace_back(key, num(value)); }

  // begin a new data point; field() calls attach to the most recent point
  void point() { points_.emplace_back(); }
  void field(const std::string& key, const std::string& value) {
    points_.back().emplace_back(key, quote(value));
  }
  void field(const std::string& key, double value) { points_.back().emplace_back(key, num(value)); }

  // write BENCH_<name>.json in the current directory
  void write() const {
    const double wall = std::chrono::duration<double>(core::wall_now() - start_).count();
    std::ofstream os("BENCH_" + name_ + ".json");
    // one provenance line (commit, build type, scheduler, thread budget) so
    // any perf delta can be traced back to what produced the numbers
    const sim::SchedulerKind kind = sim::resolve_scheduler(sim::SchedulerKind::Threads);
    os << "{\n  \"name\": " << quote(name_) << ",\n  \"provenance\": "
       << core::provenance_json(sim::scheduler_name(kind)) << ",\n  \"config\": {";
    write_fields(os, config_, "\n    ");
    os << "\n  },\n  \"points\": [";
    for (std::size_t p = 0; p < points_.size(); ++p) {
      os << (p ? ",\n    {" : "\n    {");
      write_fields(os, points_[p], " ");
      os << " }";
    }
    os << "\n  ],\n  \"wall_seconds\": " << num(wall) << "\n}\n";
  }

private:
  using Fields = std::vector<std::pair<std::string, std::string>>;

  static std::string quote(const std::string& s) {
    std::string q = "\"";
    for (char c : s) {
      if (c == '"' || c == '\\') q += '\\';
      q += c;
    }
    return q + "\"";
  }

  static std::string num(double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
  }

  static void write_fields(std::ofstream& os, const Fields& fields, const char* sep) {
    for (std::size_t i = 0; i < fields.size(); ++i)
      os << (i ? "," : "") << sep << quote(fields[i].first) << ": " << fields[i].second;
  }

  std::string name_;
  core::WallClock::time_point start_;
  Fields config_;
  std::vector<Fields> points_;
};

struct SolverSeries {
  std::string label;
  Precision outer;
  std::optional<Precision> sloppy;
  CommPolicy policy;
  bool good_numa = true;
  // gauge link storage (unset = the pre-knob 12-real-anchored model)
  std::optional<Reconstruct> recon{};
  std::optional<Reconstruct> recon_sloppy{};
};

// run one modeled-solver data point: global volume split over `ranks` GPUs
inline parallel::ModeledSolverResult run_point(int ranks, LatticeDims global,
                                               const SolverSeries& series,
                                               int iterations = 100) {
  sim::ClusterSpec spec = sim::ClusterSpec::jlab_9g(ranks);
  spec.good_numa_binding = series.good_numa;
  // record the event timeline so every point carries trace metrics (halo
  // bytes, overlap efficiency); QUDA_SIM_TRACE additionally exports the
  // Chrome JSON timeline of each run
  spec.trace.enabled = true;
  // flight recorder: every point carries the iteration ledger, utilization
  // timelines, and anomaly counts (QUDA_SIM_TELEMETRY exports the JSONL)
  spec.telemetry.enabled = true;
  sim::VirtualCluster cluster(spec);

  parallel::ModeledSolverConfig cfg;
  cfg.local = global;
  cfg.local.t = global.t / ranks;
  cfg.outer = series.outer;
  cfg.sloppy = series.sloppy;
  cfg.policy = series.policy;
  cfg.iterations = iterations;
  cfg.reconstruct = series.recon;
  cfg.reconstruct_sloppy = series.recon_sloppy;
  return parallel::run_modeled_solver(cluster, cfg);
}

// weak scaling variant: `local` is the per-GPU volume
inline parallel::ModeledSolverResult run_weak_point(int ranks, LatticeDims local,
                                                    const SolverSeries& series,
                                                    int iterations = 100) {
  sim::ClusterSpec spec = sim::ClusterSpec::jlab_9g(ranks);
  spec.good_numa_binding = series.good_numa;
  spec.trace.enabled = true;
  spec.telemetry.enabled = true;
  sim::VirtualCluster cluster(spec);

  parallel::ModeledSolverConfig cfg;
  cfg.local = local;
  cfg.outer = series.outer;
  cfg.sloppy = series.sloppy;
  cfg.policy = series.policy;
  cfg.iterations = iterations;
  cfg.reconstruct = series.recon;
  cfg.reconstruct_sloppy = series.recon_sloppy;
  return parallel::run_modeled_solver(cluster, cfg);
}

// Run one modeled-solver data point decomposed over a full 4-D process grid
// on an explicit cluster spec.  The big sweeps (256-1024 ranks) pair a
// fat_tree spec with SchedulerKind::Seq so rank count stays a parameter
// instead of an OS thread budget.
inline parallel::ModeledSolverResult run_grid_point(sim::ClusterSpec spec,
                                                    const comm::GridTopology& topo,
                                                    LatticeDims global,
                                                    const SolverSeries& series,
                                                    int iterations = 20) {
  spec.good_numa_binding = series.good_numa;
  spec.trace.enabled = true;
  spec.telemetry.enabled = true;
  sim::VirtualCluster cluster(spec);

  parallel::ModeledSolverConfig cfg;
  cfg.local = global;
  cfg.local.x /= topo.dims[0];
  cfg.local.y /= topo.dims[1];
  cfg.local.z /= topo.dims[2];
  cfg.local.t /= topo.dims[3];
  cfg.topology = topo;
  cfg.outer = series.outer;
  cfg.sloppy = series.sloppy;
  cfg.policy = series.policy;
  cfg.iterations = iterations;
  cfg.reconstruct = series.recon;
  cfg.reconstruct_sloppy = series.recon_sloppy;
  return parallel::run_modeled_solver(cluster, cfg);
}

// weak-scaling variant: `local` is the per-GPU volume, the global lattice
// grows with the grid
inline parallel::ModeledSolverResult run_weak_grid_point(sim::ClusterSpec spec,
                                                         const comm::GridTopology& topo,
                                                         LatticeDims local,
                                                         const SolverSeries& series,
                                                         int iterations = 20) {
  LatticeDims global = local;
  global.x *= topo.dims[0];
  global.y *= topo.dims[1];
  global.z *= topo.dims[2];
  global.t *= topo.dims[3];
  return run_grid_point(std::move(spec), topo, global, series, iterations);
}

inline std::string grid_label(const comm::GridTopology& topo) {
  return std::to_string(topo.dims[0]) + "x" + std::to_string(topo.dims[1]) + "x" +
         std::to_string(topo.dims[2]) + "x" + std::to_string(topo.dims[3]);
}

inline void print_scaling_table(const char* title, const std::vector<int>& gpu_counts,
                                const std::vector<SolverSeries>& series,
                                const std::vector<std::vector<parallel::ModeledSolverResult>>&
                                    results /* [series][point] */) {
  std::printf("\n%s\n", title);
  std::printf("%-6s", "GPUs");
  for (const auto& s : series) std::printf("  %22s", s.label.c_str());
  std::printf("\n");
  for (std::size_t p = 0; p < gpu_counts.size(); ++p) {
    std::printf("%-6d", gpu_counts[p]);
    for (std::size_t s = 0; s < series.size(); ++s) {
      const auto& r = results[s][p];
      if (!r.fits)
        std::printf("  %22s", "OOM");
      else
        std::printf("  %18.1f GF", r.effective_gflops);
    }
    std::printf("\n");
  }
}

// attach the aggregated trace metrics of one run to the current JSON point
inline void record_metrics(BenchJson& json, const trace::Metrics& m) {
  json.field("halo_bytes", static_cast<double>(m.halo_bytes));
  json.field("messages", static_cast<double>(m.messages));
  json.field("retries", static_cast<double>(m.retries));
  // delivered wire traffic split by interconnect link class (numeric, so
  // topology knobs show up as value deltas on stable point keys)
  json.field("shm_bytes", static_cast<double>(m.shm_bytes));
  json.field("ib_bytes", static_cast<double>(m.ib_bytes));
  json.field("xswitch_bytes", static_cast<double>(m.xswitch_bytes));
  json.field("comm_us", m.comm_us);
  json.field("overlapped_comm_us", m.overlapped_us);
  json.field("overlap_efficiency", m.overlap_efficiency);
  json.field("kernel_us", m.kernel_us);
  for (const auto& [name, stat] : m.kernels) {
    json.field("kernel_" + name + "_count", static_cast<double>(stat.count));
    json.field("kernel_" + name + "_us", stat.total_us);
  }
}

// attach the flight-recorder summary of one run to the current JSON point
// (gated by bench_diff: more iterations, worse imbalance, or new anomalies
// on an unchanged workload are regressions)
inline void record_telemetry(BenchJson& json, const telemetry::TelemetryReport& t) {
  if (!t.enabled) return;
  json.field("iterations", static_cast<double>(t.iterations()));
  json.field("load_imbalance", t.load_imbalance);
  json.field("anomaly_count", static_cast<double>(t.anomaly_count()));
}

// attach the critical-path attribution of one run to the current JSON point
inline void record_critpath(BenchJson& json, const trace::CritSummary& c) {
  json.field("crit_valid", static_cast<double>(c.valid));
  if (!c.valid) return;
  json.field("crit_path_us", c.path_us);
  json.field("crit_interior_us", c.interior_us());
  json.field("crit_boundary_us", c.boundary_us());
  json.field("crit_exposed_comm_us", c.exposed_comm_us());
  json.field("crit_pcie_us", c.pcie_us());
  json.field("crit_stall_us", c.stall_us());
  json.field("crit_solver_us", c.solver_us());
  json.field("crit_recovery_us", c.recovery_us());
  json.field("crit_rank_hops", static_cast<double>(c.cross_rank_jumps));
  json.field("compute_bound_us", c.compute_bound_us);
  json.field("whatif_zero_latency_us", c.whatif_zero_latency_us);
  json.field("whatif_free_pcie_us", c.whatif_free_pcie_us);
  json.field("whatif_infinite_overlap_us", c.whatif_infinite_overlap_us);
}

// record one grid-decomposed point; the "grid" string joins the point
// identity so per-dimension sweeps at equal GPU counts stay distinct keys
inline void record_grid_point(BenchJson& json, const char* table, const SolverSeries& series,
                              const comm::GridTopology& topo,
                              const parallel::ModeledSolverResult& r) {
  json.point();
  json.field("table", table);
  json.field("series", series.label);
  json.field("grid", grid_label(topo));
  json.field("gpus", static_cast<double>(topo.num_ranks()));
  if (series.recon) json.field("recon", to_string(*series.recon));
  if (series.recon_sloppy) json.field("recon_sloppy", to_string(*series.recon_sloppy));
  json.field("fits", static_cast<double>(r.fits));
  json.field("footprint_bytes", static_cast<double>(r.footprint_bytes));
  json.field("gauge_footprint_bytes", static_cast<double>(r.gauge_footprint_bytes));
  if (r.fits) {
    json.field("gflops", r.effective_gflops);
    json.field("time_us", r.time_us);
    if (r.traced) {
      record_metrics(json, r.metrics);
      record_critpath(json, r.critpath);
    }
    record_telemetry(json, r.telemetry);
  }
}

// record one scaling table's results as JSON points (one per series x count)
inline void record_scaling_points(BenchJson& json, const char* table,
                                  const std::vector<int>& gpu_counts,
                                  const std::vector<SolverSeries>& series,
                                  const std::vector<std::vector<parallel::ModeledSolverResult>>&
                                      results /* [series][point] */) {
  for (std::size_t s = 0; s < series.size(); ++s)
    for (std::size_t p = 0; p < gpu_counts.size(); ++p) {
      const auto& r = results[s][p];
      json.point();
      json.field("table", table);
      json.field("series", series[s].label);
      json.field("gpus", static_cast<double>(gpu_counts[p]));
      // link reconstruction joins the point identity (string fields are part
      // of the bench_diff key); legacy series omit it, keeping their
      // baseline keys byte-stable
      if (series[s].recon) json.field("recon", to_string(*series[s].recon));
      if (series[s].recon_sloppy) json.field("recon_sloppy", to_string(*series[s].recon_sloppy));
      json.field("fits", static_cast<double>(r.fits));
      // footprints are numeric (not part of the bench_diff join key), so
      // recon-knob changes show up as value deltas on stable points
      json.field("footprint_bytes", static_cast<double>(r.footprint_bytes));
      json.field("gauge_footprint_bytes", static_cast<double>(r.gauge_footprint_bytes));
      if (r.fits) {
        json.field("gflops", r.effective_gflops);
        json.field("time_us", r.time_us);
        if (r.traced) {
          record_metrics(json, r.metrics);
          record_critpath(json, r.critpath);
        }
        record_telemetry(json, r.telemetry);
      }
    }
}

} // namespace quda::bench
