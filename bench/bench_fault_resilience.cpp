// Fault-resilience overhead at paper scale (Modeled execution).
//
// Runs the modeled mixed-precision BiCGstab schedule on 24^3 x 128 over
// 8 GPUs (the paper's strong-scaling mid-point) and reports:
//   1. the overhead of message framing + checksum verification at fault
//      rate 0 -- the always-on insurance premium, which must stay under a
//      few percent of solve time, and
//   2. the recovery cost (retries, backoff, re-run reliable segments) as
//      the injected fault rates rise.
// Timing is simulated, so every row is deterministic and reproducible.

#include "bench_util.h"
#include "parallel/modeled_solver.h"

#include <cstdio>

using namespace quda;
using bench::BenchJson;
using parallel::ModeledSolverConfig;
using parallel::ModeledSolverResult;

namespace {

ModeledSolverConfig base_config() {
  ModeledSolverConfig cfg;
  cfg.local = LatticeDims{24, 24, 24, 16}; // 24^3 x 128 over 8 ranks (t-sliced)
  cfg.outer = Precision::Single;
  cfg.sloppy = Precision::Half;
  cfg.policy = CommPolicy::Overlap;
  cfg.iterations = 400;
  cfg.reliable_interval = 40;
  return cfg;
}

ModeledSolverResult run(const ModeledSolverConfig& cfg, const sim::FaultConfig& faults) {
  sim::ClusterSpec spec = sim::ClusterSpec::jlab_9g(8);
  spec.faults = faults;
  spec.trace.enabled = true; // carry halo/retry/overlap metrics into the JSON
  sim::VirtualCluster cluster(spec);
  return parallel::run_modeled_solver(cluster, cfg);
}

// one JSON point per solve: the printed row plus the aggregated trace metrics
void record(BenchJson& json, const char* label, double rate, const ModeledSolverResult& r) {
  json.point();
  json.field("series", label);
  json.field("fault_rate", rate);
  json.field("time_us", r.time_us);
  json.field("gflops", r.effective_gflops);
  json.field("drops", static_cast<double>(r.faults.drops));
  json.field("corruptions", static_cast<double>(r.faults.corruptions));
  json.field("device_flips", static_cast<double>(r.faults.device_flips));
  json.field("rollbacks", static_cast<double>(r.rollbacks));
  json.field("recovery_us", r.faults.recovery_us);
  if (r.traced) bench::record_metrics(json, r.metrics);
}

} // namespace

int main() {
  const ModeledSolverConfig cfg = base_config();
  BenchJson json("fault_resilience");
  json.config("lattice", "24^3 x 128");
  json.config("gpus", 8.0);
  json.config("precision", "single/half");
  json.config("iterations", static_cast<double>(cfg.iterations));
  std::printf("Fault resilience overhead, modeled 24^3 x 128 on 8 GPUs "
              "(single/half, %d iterations)\n\n",
              cfg.iterations);

  // --- 1. detection overhead at fault rate 0 ---------------------------------
  const sim::FaultConfig no_faults{}; // all rates zero

  ModeledSolverConfig plain = cfg; // checksums off (the seed's baseline)
  const ModeledSolverResult r_plain = run(plain, no_faults);

  ModeledSolverConfig checked = cfg;
  checked.retry.checksums = true;
  const ModeledSolverResult r_checked = run(checked, no_faults);

  record(json, "baseline", 0.0, r_plain);
  record(json, "checksums", 0.0, r_checked);

  const double overhead =
      (r_checked.time_us - r_plain.time_us) / r_plain.time_us * 100.0;
  std::printf("baseline (no checksums):   %10.1f us   %7.1f Gflops\n", r_plain.time_us,
              r_plain.effective_gflops);
  std::printf("checksums + seq framing:   %10.1f us   %7.1f Gflops\n", r_checked.time_us,
              r_checked.effective_gflops);
  std::printf("detection overhead at fault rate 0: %.2f%% of solve time (budget: < 5%%)\n\n",
              overhead);

  // --- 2. recovery cost vs fault rate -----------------------------------------
  std::printf("%-12s %10s %8s %8s %8s %8s %10s %12s %10s\n", "fault rate", "time us", "drops",
              "corrupt", "flips", "retries", "rollbacks", "recovery us", "slowdown");
  for (double rate : {0.0, 1e-4, 1e-3, 5e-3, 1e-2}) {
    sim::FaultConfig faults;
    faults.seed = 12345;
    faults.drop_rate = rate;
    faults.corrupt_rate = rate;
    faults.delay_rate = rate;
    faults.device_flip_rate = rate / 10; // SDC is far rarer than link noise
    faults.stall_rate = rate / 10;

    ModeledSolverConfig c = checked; // checksums + retry on
    c.retry.max_retries = 5;
    const ModeledSolverResult r = run(c, faults);
    std::printf("%-12.0e %10.1f %8ld %8ld %8ld %8ld %10d %12.1f %9.2fx\n", rate, r.time_us,
                r.faults.drops, r.faults.corruptions, r.faults.device_flips, r.faults.retries,
                r.rollbacks, r.faults.recovery_us, r.time_us / r_checked.time_us);
    record(json, "faulted", rate, r);
  }
  json.config("detection_overhead_pct", overhead);
  json.write();

  std::printf("\nexpected: detection overhead < 5%% at rate 0; recovery cost grows with\n");
  std::printf("the fault rate through retries, backoff, and re-run reliable segments\n");
  return 0;
}
