// Fault-resilience overhead at paper scale (Modeled execution).
//
// Runs the modeled mixed-precision BiCGstab schedule on 24^3 x 128 over
// 8 GPUs (the paper's strong-scaling mid-point) and reports:
//   1. the overhead of message framing + checksum verification at fault
//      rate 0 -- the always-on insurance premium, which must stay under a
//      few percent of solve time, and
//   2. the recovery cost (retries, backoff, re-run reliable segments) as
//      the injected fault rates rise.
// Timing is simulated, so every row is deterministic and reproducible.

#include "bench_util.h"
#include "core/quda_api.h"
#include "dirac/gauge_init.h"
#include "parallel/modeled_solver.h"

#include <cstdio>

using namespace quda;
using bench::BenchJson;
using parallel::ModeledSolverConfig;
using parallel::ModeledSolverResult;

namespace {

ModeledSolverConfig base_config() {
  ModeledSolverConfig cfg;
  cfg.local = LatticeDims{24, 24, 24, 16}; // 24^3 x 128 over 8 ranks (t-sliced)
  cfg.outer = Precision::Single;
  cfg.sloppy = Precision::Half;
  cfg.policy = CommPolicy::Overlap;
  cfg.iterations = 400;
  cfg.reliable_interval = 40;
  return cfg;
}

ModeledSolverResult run(const ModeledSolverConfig& cfg, const sim::FaultConfig& faults) {
  sim::ClusterSpec spec = sim::ClusterSpec::jlab_9g(8);
  spec.faults = faults;
  spec.trace.enabled = true; // carry halo/retry/overlap metrics into the JSON
  sim::VirtualCluster cluster(spec);
  return parallel::run_modeled_solver(cluster, cfg);
}

// one JSON point per solve: the printed row plus the aggregated trace metrics
void record(BenchJson& json, const char* label, double rate, const ModeledSolverResult& r) {
  json.point();
  json.field("series", label);
  json.field("fault_rate", rate);
  json.field("time_us", r.time_us);
  json.field("gflops", r.effective_gflops);
  json.field("drops", static_cast<double>(r.faults.drops));
  json.field("corruptions", static_cast<double>(r.faults.corruptions));
  json.field("device_flips", static_cast<double>(r.faults.device_flips));
  json.field("rollbacks", static_cast<double>(r.rollbacks));
  json.field("recovery_us", r.faults.recovery_us);
  if (r.traced) bench::record_metrics(json, r.metrics);
}

} // namespace

int main() {
  const ModeledSolverConfig cfg = base_config();
  BenchJson json("fault_resilience");
  json.config("lattice", "24^3 x 128");
  json.config("gpus", 8.0);
  json.config("precision", "single/half");
  json.config("iterations", static_cast<double>(cfg.iterations));
  std::printf("Fault resilience overhead, modeled 24^3 x 128 on 8 GPUs "
              "(single/half, %d iterations)\n\n",
              cfg.iterations);

  // --- 1. detection overhead at fault rate 0 ---------------------------------
  const sim::FaultConfig no_faults{}; // all rates zero

  ModeledSolverConfig plain = cfg; // checksums off (the seed's baseline)
  const ModeledSolverResult r_plain = run(plain, no_faults);

  ModeledSolverConfig checked = cfg;
  checked.retry.checksums = true;
  const ModeledSolverResult r_checked = run(checked, no_faults);

  record(json, "baseline", 0.0, r_plain);
  record(json, "checksums", 0.0, r_checked);

  const double overhead =
      (r_checked.time_us - r_plain.time_us) / r_plain.time_us * 100.0;
  std::printf("baseline (no checksums):   %10.1f us   %7.1f Gflops\n", r_plain.time_us,
              r_plain.effective_gflops);
  std::printf("checksums + seq framing:   %10.1f us   %7.1f Gflops\n", r_checked.time_us,
              r_checked.effective_gflops);
  std::printf("detection overhead at fault rate 0: %.2f%% of solve time (budget: < 5%%)\n\n",
              overhead);

  // --- 2. recovery cost vs fault rate -----------------------------------------
  std::printf("%-12s %10s %8s %8s %8s %8s %10s %12s %10s\n", "fault rate", "time us", "drops",
              "corrupt", "flips", "retries", "rollbacks", "recovery us", "slowdown");
  for (double rate : {0.0, 1e-4, 1e-3, 5e-3, 1e-2}) {
    sim::FaultConfig faults;
    faults.seed = 12345;
    faults.drop_rate = rate;
    faults.corrupt_rate = rate;
    faults.delay_rate = rate;
    faults.device_flip_rate = rate / 10; // SDC is far rarer than link noise
    faults.stall_rate = rate / 10;

    ModeledSolverConfig c = checked; // checksums + retry on
    c.retry.max_retries = 5;
    const ModeledSolverResult r = run(c, faults);
    std::printf("%-12.0e %10.1f %8ld %8ld %8ld %8ld %10d %12.1f %9.2fx\n", rate, r.time_us,
                r.faults.drops, r.faults.corruptions, r.faults.device_flips, r.faults.retries,
                r.rollbacks, r.faults.recovery_us, r.time_us / r_checked.time_us);
    record(json, "faulted", rate, r);
  }
  // --- 3. checkpoint/restart under rank crashes (Real execution) --------------
  // A small Real-mode solve (checkpointing needs the actual Krylov iterate):
  // the always-on checkpoint premium at crash rate 0, then a seeded
  // mid-solve rank crash recovered through rollback + warm-spare respawn.
  const Geometry g{LatticeDims{8, 8, 8, 16}};
  HostGaugeField u(g);
  make_weak_field_gauge(u, 0.2, 9000);
  HostSpinorField b(g);
  make_random_spinor(b, 9001);
  InvertParams ip;
  ip.mass = 0.1;
  ip.csw = 1.0;
  ip.precision = Precision::Single;
  ip.sloppy = Precision::Half;
  ip.tol = 1e-6;
  ip.delta = 1e-1;
  ip.max_iter = 2000;

  auto record_real = [&json](const char* label, const InvertResult& r) {
    json.point();
    json.field("series", label);
    json.field("time_us", r.simulated_time_us);
    json.field("gflops", r.effective_gflops);
    json.field("converged", static_cast<double>(r.stats.converged));
    json.field("crashes", static_cast<double>(r.faults.recovery.crashes));
    json.field("recovery_epochs", static_cast<double>(r.faults.recovery.failures));
    json.field("checkpoints", static_cast<double>(r.faults.recovery.checkpoints));
    json.field("restores", static_cast<double>(r.faults.recovery.restores));
    json.field("checkpoint_us", r.faults.recovery.checkpoint_us);
    json.field("restore_us", r.faults.recovery.restore_us);
    json.field("detection_us", r.faults.recovery.detection_us);
    if (r.traced) bench::record_critpath(json, r.critpath);
  };

  sim::ClusterSpec real_spec = sim::ClusterSpec::jlab_9g(4);
  real_spec.trace.enabled = true;
  HostSpinorField x0(g);
  const InvertResult r_nockpt = invert_multi_gpu(real_spec, u, b, x0, ip);
  record_real("ckpt_off", r_nockpt);

  ip.checkpoint_interval = 3; // every 3rd reliable update keeps the premium < 5%
  HostSpinorField x1(g);
  const InvertResult r_ckpt = invert_multi_gpu(real_spec, u, b, x1, ip);
  record_real("ckpt_on", r_ckpt);
  const double ckpt_overhead =
      (r_ckpt.simulated_time_us - r_nockpt.simulated_time_us) / r_nockpt.simulated_time_us *
      100.0;

  sim::ClusterSpec crash_spec = real_spec;
  crash_spec.faults.seed = 4242;
  crash_spec.faults.crash_rate = 0.35;
  crash_spec.faults.crash_window_us = 0.9 * r_ckpt.simulated_time_us;
  HostSpinorField x2(g);
  const InvertResult r_crash = invert_multi_gpu(crash_spec, u, b, x2, ip);
  record_real("crash_recovery", r_crash);

  std::printf("\nCheckpoint/restart, Real 8^3 x 16 on 4 GPUs (single/half)\n");
  std::printf("no checkpoints:            %10.1f us\n", r_nockpt.simulated_time_us);
  std::printf("checkpoints, no crashes:   %10.1f us   (%ld commits)\n",
              r_ckpt.simulated_time_us, r_ckpt.faults.recovery.checkpoints);
  std::printf("checkpoint overhead at crash rate 0: %.2f%% of solve time (budget: < 5%%)\n",
              ckpt_overhead);
  std::printf("crashes + restart:         %10.1f us   (%ld crashes, %d epochs, %ld restores, "
              "converged=%d, recovery attributed %.1f us)\n",
              r_crash.simulated_time_us, r_crash.faults.recovery.crashes,
              r_crash.faults.recovery.failures, r_crash.faults.recovery.restores,
              r_crash.stats.converged ? 1 : 0, r_crash.critpath.recovery_us());
  json.config("checkpoint_overhead_pct", ckpt_overhead);

  json.config("detection_overhead_pct", overhead);
  json.write();

  std::printf("\nexpected: detection overhead < 5%% at rate 0; recovery cost grows with\n");
  std::printf("the fault rate through retries, backoff, and re-run reliable segments;\n");
  std::printf("checkpoint overhead < 5%% at crash rate 0; a crashed solve still converges\n");
  return 0;
}
