// Fig. 4 of the paper: weak scaling of the parallelized solver up to 32
// GPUs, with overlapped communication (the faster choice in weak scaling).
//
//  (a) local volume 32^4 per GPU: single and mixed single-half precision
//      (double does not fit in device memory at this local volume -- the
//      bench prints OOM for it, reproducing the paper's footnote);
//  (b) local volume 24^3 x 32 per GPU: single, double, mixed single-half,
//      and mixed double-half.
//
// Expected shapes: near-linear scaling in every mode; mixed-precision
// solvers well above uniform single; double-half nearly identical to
// single-half; >4 Tflops aggregate at 32 GPUs for single-half in (a).

#include "bench_util.h"

using namespace quda;
using namespace quda::bench;

namespace {

void run_subfigure(BenchJson& json, const char* title, LatticeDims local,
                   const std::vector<SolverSeries>& series) {
  const std::vector<int> gpus = {1, 2, 4, 8, 16, 24, 32};
  std::vector<std::vector<parallel::ModeledSolverResult>> results(series.size());
  for (std::size_t s = 0; s < series.size(); ++s)
    for (int n : gpus) results[s].push_back(run_weak_point(n, local, series[s]));
  print_scaling_table(title, gpus, series, results);
  record_scaling_points(json, title, gpus, series, results);
}

} // namespace

int main() {
  std::printf("Fig. 4: weak scaling on up to 32 GPUs (overlapped communication)\n");

  BenchJson json("fig4_weak");
  json.config("scaling", "weak");
  json.config("policy", "overlap");

  run_subfigure(json, "(a) V = 32^4 sites per GPU",
                {32, 32, 32, 32},
                {
                    {"single", Precision::Single, std::nullopt, CommPolicy::Overlap},
                    {"single-half", Precision::Single, Precision::Half, CommPolicy::Overlap},
                    {"double (paper: OOM)", Precision::Double, std::nullopt, CommPolicy::Overlap},
                });

  run_subfigure(json, "(b) V = 24^3 x 32 sites per GPU",
                {24, 24, 24, 32},
                {
                    {"single", Precision::Single, std::nullopt, CommPolicy::Overlap},
                    {"double", Precision::Double, std::nullopt, CommPolicy::Overlap},
                    {"single-half", Precision::Single, Precision::Half, CommPolicy::Overlap},
                    {"double-half", Precision::Double, Precision::Half, CommPolicy::Overlap},
                });

  json.write();
  return 0;
}
