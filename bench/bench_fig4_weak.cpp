// Fig. 4 of the paper: weak scaling of the parallelized solver up to 32
// GPUs, with overlapped communication (the faster choice in weak scaling).
//
//  (a) local volume 32^4 per GPU: single and mixed single-half precision
//      (double does not fit in device memory at this local volume -- the
//      bench prints OOM for it, reproducing the paper's footnote);
//  (b) local volume 24^3 x 32 per GPU: single, double, mixed single-half,
//      and mixed double-half.
//
// Expected shapes: near-linear scaling in every mode; mixed-precision
// solvers well above uniform single; double-half nearly identical to
// single-half; >4 Tflops aggregate at 32 GPUs for single-half in (a).
//
// (c) extends past the paper to 256-1024 simulated GPUs ("Scaling Lattice
// QCD beyond 100 GPUs" regime): 4-D grid decompositions on a fat-tree
// cluster under the cooperative seq scheduler, with critpath attribution
// per point.  Weak scaling holds the local volume fixed, so the exposed-
// comm fraction per point isolates the interconnect hierarchy's cost.

#include "bench_util.h"

using namespace quda;
using namespace quda::bench;

namespace {

void run_subfigure(BenchJson& json, const char* title, LatticeDims local,
                   const std::vector<SolverSeries>& series) {
  const std::vector<int> gpus = {1, 2, 4, 8, 16, 24, 32};
  std::vector<std::vector<parallel::ModeledSolverResult>> results(series.size());
  for (std::size_t s = 0; s < series.size(); ++s)
    for (int n : gpus) results[s].push_back(run_weak_point(n, local, series[s]));
  print_scaling_table(title, gpus, series, results);
  record_scaling_points(json, title, gpus, series, results);
}

void run_multidim_table(BenchJson& json, const char* title, LatticeDims local,
                        const std::vector<comm::GridTopology>& grids,
                        const SolverSeries& series) {
  std::printf("\n%s\n", title);
  std::printf("%-8s %-14s %14s %16s\n", "GPUs", "grid", "Gflops", "GF per GPU");
  for (const auto& topo : grids) {
    sim::ClusterSpec spec = sim::ClusterSpec::fat_tree(topo.num_ranks());
    spec.scheduler = sim::SchedulerKind::Seq;
    const auto r = run_weak_grid_point(spec, topo, local, series, /*iterations=*/10);
    record_grid_point(json, title, series, topo, r);
    if (!r.fits) {
      std::printf("%-8d %-14s %14s\n", topo.num_ranks(), grid_label(topo).c_str(), "OOM");
      continue;
    }
    std::printf("%-8d %-14s %12.1f GF %13.1f GF\n", topo.num_ranks(),
                grid_label(topo).c_str(), r.effective_gflops,
                r.effective_gflops / topo.num_ranks());
  }
}

} // namespace

int main() {
  std::printf("Fig. 4: weak scaling on up to 32 GPUs (overlapped communication)\n");

  BenchJson json("fig4_weak");
  json.config("scaling", "weak");
  json.config("policy", "overlap");

  run_subfigure(json, "(a) V = 32^4 sites per GPU",
                {32, 32, 32, 32},
                {
                    {"single", Precision::Single, std::nullopt, CommPolicy::Overlap},
                    {"single-half", Precision::Single, Precision::Half, CommPolicy::Overlap},
                    {"double (paper: OOM)", Precision::Double, std::nullopt, CommPolicy::Overlap},
                });

  run_subfigure(json, "(b) V = 24^3 x 32 sites per GPU",
                {24, 24, 24, 32},
                {
                    {"single", Precision::Single, std::nullopt, CommPolicy::Overlap},
                    {"double", Precision::Double, std::nullopt, CommPolicy::Overlap},
                    {"single-half", Precision::Single, Precision::Half, CommPolicy::Overlap},
                    {"double-half", Precision::Double, Precision::Half, CommPolicy::Overlap},
                });

  // (c): weak scaling to 256-1024 simulated GPUs at (b)'s local volume,
  // sweeping which dimensions the process grid cuts at each count
  run_multidim_table(json, "(c) multi-dim V = 24^3 x 32 sites per GPU", {24, 24, 24, 32},
                     {
                         {{1, 1, 2, 128}},
                         {{1, 2, 2, 64}},
                         {{2, 2, 2, 32}},
                         {{1, 2, 2, 128}},
                         {{1, 2, 4, 64}},
                         {{2, 2, 4, 32}},
                         {{2, 2, 2, 128}},
                         {{2, 2, 4, 64}},
                         {{1, 4, 4, 64}},
                     },
                     {"single-half", Precision::Single, Precision::Half, CommPolicy::Overlap});

  json.write();
  return 0;
}
