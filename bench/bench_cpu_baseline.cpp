// Section VII-C's CPU baseline comparison: the same 32^3 x 256 solve on a
// 16-node partition of the GPU-less "9q" cluster (128 Nehalem cores with
// optimized SSE routines) sustained 255 Gflops in single precision, while
// 16 nodes / 32 GPUs of "9g" sustained over 3 Tflops -- "over a factor of
// 10 faster than observed without the GPUs".

#include "bench_util.h"
#include "cpuref/cpu_cluster.h"

using namespace quda;
using namespace quda::bench;

int main() {
  std::printf("CPU cluster baseline (Section VII-C)\n\n");

  const LatticeDims global{32, 32, 32, 256};
  const int nodes = 16;

  const double cpu_gflops = cpuref::cluster_gflops(nodes, Precision::Single);
  std::printf("  9q partition: %d nodes x %d cores, SSE single precision: %.0f Gflops\n",
              nodes, cpuref::kCoresPerNode, cpu_gflops);
  std::printf("  (paper measurement: 255 Gflops, ~2 Gflops per core)\n\n");

  const SolverSeries gpu_series{"single-half, overlap", Precision::Single, Precision::Half,
                                CommPolicy::Overlap};
  const auto gpu = run_point(32, global, gpu_series);
  if (!gpu.fits) {
    std::printf("  unexpected OOM in the GPU configuration\n");
    return 1;
  }
  std::printf("  9g partition: 16 nodes / 32 GTX 285, mixed single-half solver: %.0f Gflops\n",
              gpu.effective_gflops);

  const double speedup = gpu.effective_gflops / cpu_gflops;
  std::printf("\n  GPU / CPU speedup: %.1fx  (paper: \"over a factor of 10\")\n", speedup);

  // per-iteration wall-clock comparison for the production solve
  const double cpu_iter = cpuref::iteration_time_us(global, nodes, Precision::Single);
  std::printf("\n  per-iteration time, 32^3 x 256 even-odd system:\n");
  std::printf("    CPU cluster : %8.2f ms\n", cpu_iter / 1e3);
  std::printf("    GPU cluster : %8.2f ms\n", gpu.time_us / gpu.iterations / 1e3);
  return speedup > 10.0 ? 0 : 1;
}
