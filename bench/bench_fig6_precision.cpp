// Fig. 6 of the paper: strong scaling of the V = 24^3 x 128 lattice across
// all four precision modes -- uniform single, uniform double, mixed
// single-half, mixed double-half -- using the non-overlapping solver (which
// Fig. 5(b) showed to be the faster choice on this lattice).
//
// Expected shapes: both half-sloppy mixed modes clearly outperform the
// uniform solvers; uniform double is slowest in absolute terms but shows
// the *flattest* (best) strong scaling because its kernel, throttled by the
// GTX 285's weak double-precision path, keeps the compute-to-communication
// ratio high.

#include "bench_util.h"

using namespace quda;
using namespace quda::bench;

int main() {
  std::printf("Fig. 6: strong scaling, V = 24^3 x 128, all precision modes, no overlap\n");

  const LatticeDims global{24, 24, 24, 128};
  const std::vector<int> gpus = {1, 2, 4, 8, 16, 32};
  const std::vector<SolverSeries> series = {
      {"single", Precision::Single, std::nullopt, CommPolicy::NoOverlap},
      {"single-half", Precision::Single, Precision::Half, CommPolicy::NoOverlap},
      {"double", Precision::Double, std::nullopt, CommPolicy::NoOverlap},
      {"double-half", Precision::Double, Precision::Half, CommPolicy::NoOverlap},
  };

  std::vector<std::vector<parallel::ModeledSolverResult>> results(series.size());
  for (std::size_t s = 0; s < series.size(); ++s)
    for (int n : gpus) results[s].push_back(run_point(n, global, series[s]));
  print_scaling_table("V = 24^3 x 128 sites", gpus, series, results);

  // link-reconstruction sweep on the single and single-half modes: 8-real
  // storage cuts the dslash gauge traffic by a third vs the 12-real anchor
  // (over half vs 18-real), which the bandwidth-bound model converts
  // directly into effective Gflops
  const std::vector<SolverSeries> recon_series = {
      {"single-r18", Precision::Single, std::nullopt, CommPolicy::NoOverlap, true,
       Reconstruct::Eighteen, std::nullopt},
      {"single-r12", Precision::Single, std::nullopt, CommPolicy::NoOverlap, true,
       Reconstruct::Twelve, std::nullopt},
      {"single-r8", Precision::Single, std::nullopt, CommPolicy::NoOverlap, true,
       Reconstruct::Eight, std::nullopt},
      {"single-half-r8", Precision::Single, Precision::Half, CommPolicy::NoOverlap, true,
       Reconstruct::Eight, Reconstruct::Eight},
  };
  std::vector<std::vector<parallel::ModeledSolverResult>> recon_results(recon_series.size());
  for (std::size_t s = 0; s < recon_series.size(); ++s)
    for (int n : gpus) recon_results[s].push_back(run_point(n, global, recon_series[s]));
  print_scaling_table("V = 24^3 x 128 sites, link reconstruction", gpus, recon_series,
                      recon_results);

  BenchJson json("fig6_precision");
  json.config("scaling", "strong");
  json.config("policy", "no_overlap");
  record_scaling_points(json, "V = 24^3 x 128 sites", gpus, series, results);
  record_scaling_points(json, "V = 24^3 x 128 sites, link reconstruction", gpus, recon_series,
                        recon_results);
  json.write();

  // strong-scaling efficiency relative to the smallest fitting partition
  std::printf("\nparallel efficiency at 32 GPUs (vs the smallest fitting partition):\n");
  for (std::size_t s = 0; s < series.size(); ++s) {
    std::size_t base = 0;
    while (base < gpus.size() && !results[s][base].fits) ++base;
    if (base >= gpus.size()) continue;
    const double per_gpu_base = results[s][base].effective_gflops / gpus[base];
    const double per_gpu_32 = results[s].back().effective_gflops / gpus.back();
    std::printf("  %-14s %.1f%%\n", series[s].label.c_str(),
                100.0 * per_gpu_32 / per_gpu_base);
  }
  return 0;
}
