// Ablation for Section VI-D: when does overlapping communication with
// computation win?
//
// Sweeps the local time extent (i.e. the strong-scaling knob) at the two
// production spatial volumes and reports the per-application cost of the
// halo-exchanged matrix under both communication policies.  The crossover
// -- overlap winning for large interiors, losing to cheap synchronous
// copies when the local volume shrinks -- is the mechanism behind the
// difference between Fig. 5(a) and Fig. 5(b).

#include "comm/qmp.h"
#include "parallel/halo_dslash.h"
#include "sim/event_sim.h"

#include <cstdio>

using namespace quda;

namespace {

double dslash_time_us(const LatticeDims& local, Precision prec, CommPolicy policy, int ranks) {
  sim::VirtualCluster cluster(sim::ClusterSpec::jlab_9g(ranks));
  const Geometry lg(local);
  constexpr int reps = 20;
  cluster.run([&](sim::RankContext& ctx) {
    comm::QmpGrid grid(ctx);
    parallel::HaloDslashConfig cfg;
    cfg.policy = policy;
    cfg.exec = Execution::Modeled;
    for (int r = 0; r < reps; ++r) {
      cfg.out_parity = r % 2 == 0 ? Parity::Even : Parity::Odd;
      switch (prec) {
        case Precision::Double:
          parallel::halo_dslash<PrecDouble>(grid, lg, cfg, {});
          break;
        case Precision::Single:
          parallel::halo_dslash<PrecSingle>(grid, lg, cfg, {});
          break;
        case Precision::Half:
          parallel::halo_dslash<PrecHalf>(grid, lg, cfg, {});
          break;
      }
    }
  });
  return cluster.makespan_us() / reps;
}

void sweep(int sx, Precision prec) {
  std::printf("\nspatial volume %d^3, %s precision (8 ranks):\n", sx, to_string(prec));
  std::printf("%-10s %16s %16s %10s\n", "local T", "no overlap (us)", "overlap (us)", "winner");
  for (int t_local : {2, 4, 8, 16, 32, 64}) {
    const LatticeDims local{sx, sx, sx, t_local};
    const double no = dslash_time_us(local, prec, CommPolicy::NoOverlap, 8);
    const double ov = dslash_time_us(local, prec, CommPolicy::Overlap, 8);
    std::printf("%-10d %16.0f %16.0f %10s\n", t_local, no, ov,
                ov < no ? "overlap" : "no overlap");
  }
}

} // namespace

int main() {
  std::printf("Overlap vs no-overlap halo dslash across local volume (Section VI-D)\n");
  sweep(24, Precision::Half);   // the sloppy precision of the mixed solver
  sweep(24, Precision::Single);
  sweep(32, Precision::Single);
  std::printf("\nexpected: overlap wins for large local T; synchronous copies win when\n");
  std::printf("the interior kernel is too small to hide the async-copy latencies\n");
  return 0;
}
