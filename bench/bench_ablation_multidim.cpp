// Ablation for Section VI-A's scaling argument: "If one were to attempt to
// scale to hundreds of GPUs or more, multi-dimensional parallelization
// would clearly be needed to keep the local surface to volume ratio under
// control."
//
// This bench strong-scales the 32^3 x 256 production lattice far beyond the
// paper's 32 GPUs, comparing the paper's 1-D (time) decomposition against
// 2-D (z, t) decompositions at equal GPU counts.  The 1-D decomposition
// caps out at T/2 = 128 GPUs (local T must stay >= 2) and its face volume
// is constant while the interior shrinks; the 2-D grids keep the
// surface-to-volume ratio lower and keep scaling.

#include "bench_util.h"

using namespace quda;
using namespace quda::bench;

namespace {

parallel::ModeledSolverResult run_topo(const comm::GridTopology& topo, LatticeDims global) {
  sim::ClusterSpec spec = sim::ClusterSpec::jlab_9g(topo.num_ranks());
  // the event-loop scheduler keeps rank count a parameter: the 256-1024
  // rank cases are fibers on one thread, not hundreds of OS threads
  spec.scheduler = sim::SchedulerKind::Seq;
  sim::VirtualCluster cluster(spec);
  parallel::ModeledSolverConfig cfg;
  cfg.local = global;
  cfg.local.x /= topo.dims[0];
  cfg.local.y /= topo.dims[1];
  cfg.local.z /= topo.dims[2];
  cfg.local.t /= topo.dims[3];
  cfg.topology = topo;
  cfg.outer = Precision::Single;
  cfg.sloppy = Precision::Half;
  cfg.policy = CommPolicy::Overlap;
  // the modeled iteration cost is deterministic, so a short solve gives the
  // same per-iteration throughput as a long one; 20 iterations keeps the
  // 256-rank DES cases (256 OS threads in rendezvous) from dominating the
  // bench suite's wall clock
  cfg.iterations = 20;
  return parallel::run_modeled_solver(cluster, cfg);
}

} // namespace

int main() {
  std::printf("Multi-dimensional decomposition ablation: 32^3 x 256, mixed single-half,\n");
  std::printf("overlapped communication, scaling beyond the paper's 32 GPUs\n\n");
  std::printf("%-8s %-16s %14s %16s\n", "GPUs", "grid (x,y,z,t)", "Gflops", "GF per GPU");

  struct Case {
    comm::GridTopology topo;
  };
  const Case cases[] = {
      {{{1, 1, 1, 32}}},  {{{1, 1, 1, 64}}},  {{{1, 1, 2, 32}}},
      {{{1, 1, 1, 128}}}, {{{1, 1, 2, 64}}},  {{{1, 1, 4, 32}}},
      {{{1, 1, 2, 128}}}, {{{1, 1, 4, 64}}},  {{{1, 2, 4, 32}}},
      {{{1, 2, 4, 64}}},  {{{2, 2, 4, 32}}},  {{{2, 2, 4, 64}}},
      {{{1, 4, 4, 64}}},
  };

  for (const auto& c : cases) {
    const auto r = run_topo(c.topo, {32, 32, 32, 256});
    char grid[32];
    std::snprintf(grid, sizeof grid, "%dx%dx%dx%d", c.topo.dims[0], c.topo.dims[1],
                  c.topo.dims[2], c.topo.dims[3]);
    if (!r.fits) {
      std::printf("%-8d %-16s %14s\n", c.topo.num_ranks(), grid, "OOM");
      continue;
    }
    std::printf("%-8d %-16s %12.1f GF %13.1f GF\n", c.topo.num_ranks(), grid,
                r.effective_gflops, r.effective_gflops / c.topo.num_ranks());
  }

  std::printf("\ntwo regimes, consistent with the paper's choices: at moderate GPU counts\n");
  std::printf("the 1-D slice wins -- a second cut dimension adds a full extra set of\n");
  std::printf("per-face transfer latencies that outweigh its surface reduction, which is\n");
  std::printf("why the paper's 1-D choice is right at 32 GPUs.  1-D hard-caps at T/2 = 128\n");
  std::printf("GPUs; beyond that only multi-dimensional grids are possible, and the flat\n");
  std::printf("aggregate Gflops show this 2010-sized lattice is already at its strong-\n");
  std::printf("scaling ceiling -- the regime where the paper notes that 'small local\n");
  std::printf("volumes ... require rethinking of the fundamental algorithms'.\n");
  return 0;
}
