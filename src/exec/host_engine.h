#pragma once
// Host execution engine: a shared, lazily-initialized thread pool driving
// every Execution::Real kernel (dslash, clover, fused BLAS, face
// gather/scatter, precision conversion) through deterministic work
// decomposition.  This speeds up *wall clock* only -- simulated-time
// charging through the device model is completely unchanged.
//
// Determinism contract
// --------------------
// * parallel_for splits [begin, end) into fixed-size chunks of `grain`
//   sites.  Chunk boundaries depend only on (range, grain) -- never on the
//   thread budget -- and chunks write disjoint sites, so element-wise
//   kernels produce bit-identical fields at every thread count.
// * parallel_reduce computes one partial per chunk by *serial* in-order
//   accumulation within the chunk, then folds the partials left-to-right
//   in chunk-index order.  Because the chunk shape is fixed, the floating
//   point addition tree is identical at every thread count: reductions are
//   bit-identical whether run with 1, 2, or 64 threads.  When the whole
//   range fits in one chunk the fold degenerates to exactly the historical
//   serial loop, so every small-lattice (<= kBlasGrain sites) reduction --
//   which includes all tier-1 Real-mode tests and the fault-injection
//   suite -- reproduces the pre-engine results bit-for-bit.
// * The per-rank discrete-event simulation is untouched: fault draws,
//   message schedules, and clock charging happen on the rank thread, never
//   inside worker chunks.
//
// Thread budget
// -------------
// One global budget shared by every rank of a VirtualCluster run, read
// once from QUDA_SIM_THREADS (default: hardware_concurrency), so an
// N-rank simulation does not oversubscribe the machine with N private
// pools.  The pool owns budget-1 workers; calling threads participate in
// their own batches, so budget=1 means "no workers, run inline" -- the
// exact historical serial code path.  Nested parallel regions (a chunk
// body calling parallel_for) degrade to inline serial execution instead of
// deadlocking the pool.

#include <cstdint>
#include <functional>
#include <vector>

namespace quda::exec {

// default chunk grains (sites per chunk).  kBlasGrain is part of the
// determinism contract above: ranges up to kBlasGrain sites reduce in one
// chunk, i.e. in the historical serial order.  Do not shrink it casually.
inline constexpr std::int64_t kSiteGrain = 256;   // dslash/clover site loops
inline constexpr std::int64_t kBlasGrain = 4096;  // BLAS1 + reduction sweeps
inline constexpr std::int64_t kFaceGrain = 512;   // face gather/scatter

// the global worker budget (>= 1); first call reads QUDA_SIM_THREADS
int thread_budget();

// override the budget (n <= 0 re-reads the environment/default).  Stops and
// restarts the pool; must not race concurrent parallel_for calls -- intended
// for tests and benchmarks only.
void set_thread_budget(int n);

namespace detail {

inline std::int64_t chunk_count(std::int64_t n, std::int64_t grain) {
  return n <= 0 ? 0 : (n + grain - 1) / grain;
}

// run task(c) for every c in [0, num_chunks) on the shared pool; blocks
// until all chunks completed; rethrows the first chunk exception
void run_chunks(std::int64_t num_chunks, const std::function<void(std::int64_t)>& task);

} // namespace detail

// fn(chunk_begin, chunk_end) over contiguous chunks covering [begin, end)
template <typename Fn>
void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain, Fn&& fn) {
  const std::int64_t n = end - begin;
  if (n <= 0) return;
  if (grain < 1) grain = 1;
  const std::int64_t chunks = detail::chunk_count(n, grain);
  if (chunks == 1) {
    fn(begin, end);
    return;
  }
  detail::run_chunks(chunks, [&](std::int64_t c) {
    const std::int64_t b = begin + c * grain;
    const std::int64_t e = b + grain < end ? b + grain : end;
    fn(b, e);
  });
}

// partial(chunk_begin, chunk_end) -> T accumulated serially inside the
// chunk; partials folded with += in chunk order (see determinism contract).
// T must be zero-initialized by T{} and additive via +=.
template <typename T, typename Fn>
T parallel_reduce(std::int64_t begin, std::int64_t end, std::int64_t grain, Fn&& partial) {
  const std::int64_t n = end - begin;
  if (n <= 0) return T{};
  if (grain < 1) grain = 1;
  const std::int64_t chunks = detail::chunk_count(n, grain);
  if (chunks == 1) return partial(begin, end);
  std::vector<T> parts(static_cast<std::size_t>(chunks));
  detail::run_chunks(chunks, [&](std::int64_t c) {
    const std::int64_t b = begin + c * grain;
    const std::int64_t e = b + grain < end ? b + grain : end;
    parts[static_cast<std::size_t>(c)] = partial(b, e);
  });
  T total{};
  for (const T& p : parts) total += p;
  return total;
}

} // namespace quda::exec
