#include "exec/host_engine.h"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

namespace quda::exec {

namespace {

// one parallel_for/parallel_reduce invocation in flight on the pool
struct Batch {
  std::int64_t num_chunks = 0;
  const std::function<void(std::int64_t)>* task = nullptr;
  std::atomic<std::int64_t> next{0};
  std::atomic<std::int64_t> completed{0};
  std::mutex m;
  std::condition_variable done;
  std::exception_ptr error; // first chunk exception, guarded by m

  bool exhausted() const { return next.load() >= num_chunks; }
  bool finished() const { return completed.load() == num_chunks; }
};

// set while this thread is executing chunk bodies (worker or participating
// caller): nested parallel regions run inline instead of re-entering the pool
thread_local bool t_in_chunk = false;

int read_env_budget() {
  if (const char* env = std::getenv("QUDA_SIM_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<int>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? static_cast<int>(hw) : 1;
}

class Pool {
public:
  static Pool& instance() {
    static Pool pool;
    return pool;
  }

  int budget() {
    std::lock_guard<std::mutex> lock(config_m_);
    if (budget_ <= 0) budget_ = read_env_budget();
    return budget_;
  }

  void set_budget(int n) {
    stop_workers();
    std::lock_guard<std::mutex> lock(config_m_);
    budget_ = n >= 1 ? n : read_env_budget();
  }

  // submit a batch, help execute it, and block until every chunk completed
  void run(const std::shared_ptr<Batch>& batch) {
    ensure_workers();
    {
      std::lock_guard<std::mutex> lock(queue_m_);
      queue_.push_back(batch);
    }
    queue_cv_.notify_all();

    participate(*batch);

    { // all chunks are claimed; drop the batch from the work queue
      std::lock_guard<std::mutex> lock(queue_m_);
      for (auto it = queue_.begin(); it != queue_.end(); ++it)
        if (it->get() == batch.get()) {
          queue_.erase(it);
          break;
        }
    }
    std::unique_lock<std::mutex> lock(batch->m);
    batch->done.wait(lock, [&] { return batch->finished(); });
    if (batch->error) std::rethrow_exception(batch->error);
  }

  ~Pool() { stop_workers(); }

private:
  Pool() = default;

  void ensure_workers() {
    std::lock_guard<std::mutex> lock(config_m_);
    if (budget_ <= 0) budget_ = read_env_budget();
    const int want = budget_ - 1;
    if (static_cast<int>(workers_.size()) >= want) return;
    while (static_cast<int>(workers_.size()) < want)
      workers_.emplace_back([this] { worker_loop(); });
  }

  void stop_workers() {
    {
      std::lock_guard<std::mutex> lock(queue_m_);
      stop_ = true;
    }
    queue_cv_.notify_all();
    for (std::thread& w : workers_)
      if (w.joinable()) w.join();
    workers_.clear();
    std::lock_guard<std::mutex> lock(queue_m_);
    stop_ = false;
  }

  // claim and run chunks until the batch has none left to hand out
  static void participate(Batch& batch) {
    t_in_chunk = true;
    for (;;) {
      const std::int64_t c = batch.next.fetch_add(1);
      if (c >= batch.num_chunks) break;
      try {
        (*batch.task)(c);
      } catch (...) {
        std::lock_guard<std::mutex> lock(batch.m);
        if (!batch.error) batch.error = std::current_exception();
      }
      if (batch.completed.fetch_add(1) + 1 == batch.num_chunks) {
        std::lock_guard<std::mutex> lock(batch.m);
        batch.done.notify_all();
      }
    }
    t_in_chunk = false;
  }

  std::shared_ptr<Batch> find_work_locked() {
    for (const auto& b : queue_)
      if (!b->exhausted()) return b;
    return nullptr;
  }

  void worker_loop() {
    for (;;) {
      std::shared_ptr<Batch> batch;
      {
        std::unique_lock<std::mutex> lock(queue_m_);
        queue_cv_.wait(lock, [&] { return stop_ || find_work_locked() != nullptr; });
        if (stop_) return;
        batch = find_work_locked();
      }
      if (batch) participate(*batch);
    }
  }

  std::mutex config_m_;
  int budget_ = 0; // 0 = not yet read from the environment
  std::vector<std::thread> workers_;

  std::mutex queue_m_;
  std::condition_variable queue_cv_;
  std::deque<std::shared_ptr<Batch>> queue_;
  bool stop_ = false;
};

} // namespace

int thread_budget() { return Pool::instance().budget(); }

void set_thread_budget(int n) { Pool::instance().set_budget(n); }

namespace detail {

void run_chunks(std::int64_t num_chunks, const std::function<void(std::int64_t)>& task) {
  if (num_chunks <= 0) return;
  Pool& pool = Pool::instance();
  // serial fallback: budget 1 (the historical code path), a single chunk,
  // or a nested region from inside a running chunk -- all run inline, in
  // chunk-index order
  if (num_chunks == 1 || t_in_chunk || pool.budget() == 1) {
    for (std::int64_t c = 0; c < num_chunks; ++c) task(c);
    return;
  }
  auto batch = std::make_shared<Batch>();
  batch->num_chunks = num_chunks;
  batch->task = &task;
  pool.run(batch);
}

} // namespace detail

} // namespace quda::exec
