#include "exec/host_engine.h"

#include "core/sync.h"

#include <atomic>
#include <cstdlib>
#include <deque>
#include <exception>
#include <memory>
#include <thread>

namespace quda::exec {

namespace {

// one parallel_for/parallel_reduce invocation in flight on the pool
struct Batch {
  std::int64_t num_chunks = 0;
  const std::function<void(std::int64_t)>* task = nullptr;
  std::atomic<std::int64_t> next{0};
  std::atomic<std::int64_t> completed{0};
  core::Mutex m;
  core::CondVar done QUDA_CV_WAITS_WITH(m);
  std::exception_ptr error QUDA_GUARDED_BY(m); // first chunk exception

  bool exhausted() const { return next.load() >= num_chunks; }
  bool finished() const { return completed.load() == num_chunks; }
};

// set while this thread is executing chunk bodies (worker or participating
// caller): nested parallel regions run inline instead of re-entering the pool
thread_local bool t_in_chunk = false;

int read_env_budget() {
  if (const char* env = std::getenv("QUDA_SIM_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<int>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? static_cast<int>(hw) : 1;
}

class Pool {
public:
  static Pool& instance() {
    // NOLINT(sim-static-state): Meyers singleton for the process-wide worker
    // pool; constructed once, workers joined in the destructor at exit
    static Pool pool;
    return pool;
  }

  int budget() {
    core::MutexLock lock(config_m_);
    if (budget_ <= 0) budget_ = read_env_budget();
    return budget_;
  }

  void set_budget(int n) {
    stop_workers();
    core::MutexLock lock(config_m_);
    budget_ = n >= 1 ? n : read_env_budget();
  }

  // submit a batch, help execute it, and block until every chunk completed
  void run(const std::shared_ptr<Batch>& batch) {
    ensure_workers();
    {
      core::MutexLock lock(queue_m_);
      queue_.push_back(batch);
    }
    queue_cv_.notify_all();

    participate(*batch);

    { // all chunks are claimed; drop the batch from the work queue
      core::MutexLock lock(queue_m_);
      for (auto it = queue_.begin(); it != queue_.end(); ++it)
        if (it->get() == batch.get()) {
          queue_.erase(it);
          break;
        }
    }
    core::MutexLock lock(batch->m);
    batch->done.wait(lock, [&] { return batch->finished(); });
    if (batch->error) std::rethrow_exception(batch->error);
  }

  ~Pool() { stop_workers(); }

private:
  Pool() = default;

  void ensure_workers() {
    core::MutexLock lock(config_m_);
    if (budget_ <= 0) budget_ = read_env_budget();
    const int want = budget_ - 1;
    if (static_cast<int>(workers_.size()) >= want) return;
    while (static_cast<int>(workers_.size()) < want)
      workers_.emplace_back([this] { worker_loop(); });
  }

  void stop_workers() {
    {
      core::MutexLock lock(queue_m_);
      stop_ = true;
    }
    queue_cv_.notify_all();
    {
      // workers never take config_m_, so joining while holding it is safe
      core::MutexLock lock(config_m_);
      for (std::thread& w : workers_)
        if (w.joinable()) w.join();
      workers_.clear();
    }
    core::MutexLock lock(queue_m_);
    stop_ = false;
  }

  // claim and run chunks until the batch has none left to hand out
  static void participate(Batch& batch) {
    t_in_chunk = true;
    for (;;) {
      const std::int64_t c = batch.next.fetch_add(1);
      if (c >= batch.num_chunks) break;
      try {
        (*batch.task)(c);
        // NOLINT(sim-death-swallow): nothing is swallowed -- the
        // exception_ptr (a RankDeath included) is stored into batch.error
        // and rethrown verbatim on the issuing thread at the rendezvous
        // (std::rethrow_exception above); exec also sits below sim in the
        // layer DAG, so it cannot name RankDeath to filter for it here
      } catch (...) {
        core::MutexLock lock(batch.m);
        if (!batch.error) batch.error = std::current_exception();
      }
      if (batch.completed.fetch_add(1) + 1 == batch.num_chunks) {
        core::MutexLock lock(batch.m);
        batch.done.notify_all();
      }
    }
    t_in_chunk = false;
  }

  std::shared_ptr<Batch> find_work_locked() QUDA_REQUIRES(queue_m_) {
    for (const auto& b : queue_)
      if (!b->exhausted()) return b;
    return nullptr;
  }

  void worker_loop() {
    for (;;) {
      std::shared_ptr<Batch> batch;
      {
        core::MutexLock lock(queue_m_);
        queue_cv_.wait(lock, [&]() QUDA_REQUIRES(queue_m_) {
          return stop_ || find_work_locked() != nullptr;
        });
        if (stop_) return;
        batch = find_work_locked();
      }
      if (batch) participate(*batch);
    }
  }

  core::Mutex config_m_;
  int budget_ QUDA_GUARDED_BY(config_m_) = 0; // 0 = not yet read from the environment
  std::vector<std::thread> workers_ QUDA_GUARDED_BY(config_m_);

  core::Mutex queue_m_;
  core::CondVar queue_cv_ QUDA_CV_WAITS_WITH(queue_m_);
  std::deque<std::shared_ptr<Batch>> queue_ QUDA_GUARDED_BY(queue_m_);
  bool stop_ QUDA_GUARDED_BY(queue_m_) = false;
};

} // namespace

int thread_budget() { return Pool::instance().budget(); }

void set_thread_budget(int n) { Pool::instance().set_budget(n); }

namespace detail {

void run_chunks(std::int64_t num_chunks, const std::function<void(std::int64_t)>& task) {
  if (num_chunks <= 0) return;
  Pool& pool = Pool::instance();
  // serial fallback: budget 1 (the historical code path), a single chunk,
  // or a nested region from inside a running chunk -- all run inline, in
  // chunk-index order
  if (num_chunks == 1 || t_in_chunk || pool.budget() == 1) {
    for (std::int64_t c = 0; c < num_chunks; ++c) task(c);
    return;
  }
  auto batch = std::make_shared<Batch>();
  batch->num_chunks = num_chunks;
  batch->task = &task;
  pool.run(batch);
}

} // namespace detail

} // namespace quda::exec
