#pragma once
// Kernel execution-time model for the simulated device.
//
// The paper's kernels are strongly bandwidth bound (Section V-C), so a
// kernel's duration is modeled as
//
//   t = launch_overhead + max( bytes / BW_eff , flops / F_eff )
//
// where the effective rates are the device peaks scaled by an occupancy
// factor (a function of the thread-block size, Section III) and -- for the
// memory system -- a partition-camping factor (a function of the array
// stride, Section III / [10]).  The numbers a kernel moves and computes come
// from the analytic per-site counts in perfmodel/costs.h.

#include "gpusim/device_spec.h"

#include <algorithm>
#include <cstdint>

namespace quda::gpusim {

struct LaunchConfig {
  int block_size = 64; // must be a multiple of 64 (Section III)
  int grid_blocks = 0; // 0 = cover all threads
};

struct KernelCost {
  double flops = 0;
  double bytes = 0;            // device-memory traffic
  std::int64_t stride_bytes = 0; // dominant access stride, for camping; 0 = none
  double efficiency = 1.0;     // kernel-specific fraction of peak bandwidth
  const char* name = "kernel"; // static-lifetime label for tracing/metrics
};

inline constexpr double kKernelLaunchOverheadUs = 4.0;

// Occupancy: how well a block size hides memory latency.  Small blocks
// under-populate the multiprocessor; very large blocks exhaust registers /
// shared memory and reduce the number of resident blocks.  The curve peaks
// at 256 threads, which is typical of the GT200 kernels QUDA tunes for.
inline double occupancy_factor(int block_size) {
  switch (block_size) {
    case 64: return 0.62;
    case 128: return 0.86;
    case 192: return 0.95;
    case 256: return 1.00;
    case 320: return 0.97;
    case 384: return 0.93;
    case 448: return 0.88;
    case 512: return 0.84;
    default: return 0.25; // not a multiple of 64: warp fragmentation
  }
}

// Partition camping (Section III): successive `partition_bytes` regions of
// device memory map round-robin onto `partitions` banks.  When an array is
// walked with a fixed stride, only some banks may be touched; the achieved
// bandwidth scales with the fraction of banks in play.  Padding the field by
// one spatial volume (equation (5)) perturbs the stride off the pathological
// values.
inline double partition_camping_factor(std::int64_t stride_bytes, const DeviceSpec& dev) {
  if (stride_bytes <= 0) return 1.0;
  const int npart = dev.memory_partitions;
  const std::int64_t region = dev.partition_bytes;
  bool used[64] = {};
  int distinct = 0;
  // sample the bank pattern of the field's parallel block streams (starting
  // addresses k * stride)
  for (int k = 0; k < 4 * npart; ++k) {
    const int bank = static_cast<int>((static_cast<std::int64_t>(k) * stride_bytes / region) %
                                      npart);
    if (!used[bank]) {
      used[bank] = true;
      ++distinct;
    }
  }
  // camping throttles but does not fully serialize the memory system: the
  // in-flight warps still spread over regions within a stream.  The ~2x
  // worst case matches the losses reported for the affected volumes in [4].
  return std::max(static_cast<double>(distinct) / npart, 0.5);
}

// duration of a kernel (excluding launch overhead, which the stream engine
// adds) in microseconds
inline double kernel_duration_us(const KernelCost& cost, const LaunchConfig& launch,
                                 const DeviceSpec& dev, bool double_precision_flops) {
  const double occ = occupancy_factor(launch.block_size);
  const double camp = partition_camping_factor(cost.stride_bytes, dev);
  const double bw_eff = dev.mem_bandwidth_gbs * 1e3 * occ * camp * cost.efficiency; // bytes/us
  const double peak_flops =
      (double_precision_flops ? dev.gflops_dp : dev.gflops_sp) * 1e3 * occ; // flops/us
  const double t_mem = bw_eff > 0 ? cost.bytes / bw_eff : 0.0;
  const double t_alu = peak_flops > 0 ? cost.flops / peak_flops : 0.0;
  return std::max(t_mem, t_alu);
}

} // namespace quda::gpusim
