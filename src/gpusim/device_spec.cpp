#include "gpusim/device_spec.h"

namespace quda::gpusim {

namespace {
DeviceSpec make(std::string name, int cores, double bw, double sp, double dp, double ram,
                int sms, bool dual_engine) {
  DeviceSpec s;
  s.name = std::move(name);
  s.cores = cores;
  s.mem_bandwidth_gbs = bw;
  s.gflops_sp = sp;
  s.gflops_dp = dp;
  s.ram_gib = ram;
  s.multiprocessors = sms;
  s.dual_copy_engine = dual_engine;
  return s;
}
} // namespace

const DeviceSpec& geforce_8800_gtx() {
  static const DeviceSpec s = make("GeForce 8800 GTX", 128, 86.4, 518, 0, 0.75, 16, false);
  return s;
}
const DeviceSpec& tesla_c870() {
  static const DeviceSpec s = make("Tesla C870", 128, 76.8, 518, 0, 1.5, 16, false);
  return s;
}
const DeviceSpec& geforce_gtx285() {
  // the 9g cluster's cards carry 2 GiB
  static const DeviceSpec s = make("GeForce GTX 285", 240, 159, 1062, 88, 2.0, 30, false);
  return s;
}
const DeviceSpec& tesla_c1060() {
  static const DeviceSpec s = make("Tesla C1060", 240, 102, 933, 78, 4.0, 30, false);
  return s;
}
const DeviceSpec& geforce_gtx480() {
  static const DeviceSpec s = make("GeForce GTX 480", 480, 177, 1345, 168, 1.5, 15, true);
  return s;
}
const DeviceSpec& tesla_c2050() {
  static const DeviceSpec s = make("Tesla C2050", 448, 144, 1030, 515, 3.0, 14, true);
  return s;
}

const std::vector<DeviceSpec>& representative_cards() {
  static const std::vector<DeviceSpec> cards = {geforce_8800_gtx(), tesla_c870(),
                                                geforce_gtx285(),  tesla_c1060(),
                                                geforce_gtx480(),  tesla_c2050()};
  return cards;
}

} // namespace quda::gpusim
