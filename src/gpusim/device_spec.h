#pragma once
// Specifications of representative NVIDIA graphics cards (Table I of the
// paper) plus the host-side bus characteristics measured in Section VII-D.
//
// The simulated device layer is parameterized entirely by these structs;
// the benchmark binaries select the GTX 285 (the paper's test bed) but any
// entry -- or a hand-built spec -- can be used.

#include <cstdint>
#include <string>
#include <vector>

namespace quda::gpusim {

struct DeviceSpec {
  std::string name;
  int cores = 0;
  double mem_bandwidth_gbs = 0;  // device memory bandwidth, GB/s
  double gflops_sp = 0;          // 32-bit peak
  double gflops_dp = 0;          // 64-bit peak; 0 = not supported
  double ram_gib = 0;            // device memory
  int multiprocessors = 0;
  int memory_partitions = 8;     // banks for the partition-camping model
  int partition_bytes = 256;     // successive regions map round-robin
  bool dual_copy_engine = false; // Fermi allows bidirectional PCI-E (footnote 4)

  std::int64_t ram_bytes() const {
    return static_cast<std::int64_t>(ram_gib * 1024.0 * 1024.0 * 1024.0);
  }
};

// Table I rows
const DeviceSpec& geforce_8800_gtx();
const DeviceSpec& tesla_c870();
const DeviceSpec& geforce_gtx285(); // the paper's test bed (2 GiB variant)
const DeviceSpec& tesla_c1060();
const DeviceSpec& geforce_gtx480();
const DeviceSpec& tesla_c2050();

const std::vector<DeviceSpec>& representative_cards();

// direction of a host/device transfer
enum class CopyDir { HostToDevice, DeviceToHost };

// PCI-Express + chipset model (Section VII-D / Fig. 7).  The large latency
// difference between cudaMemcpy and cudaMemcpyAsync (+sync) is the paper's
// observed Tylersburg-chipset behaviour; the direction-dependent bandwidth
// reproduces the different gradients in Fig. 7.
struct BusModel {
  double lat_sync_us = 11.0;   // cudaMemcpy
  double lat_async_us = 48.0;  // cudaMemcpyAsync + cudaThreadSynchronize
  double bw_h2d_gbs = 5.5;
  double bw_d2h_gbs = 3.1;
  // multipliers applied when the controlling process is bound to the wrong
  // NUMA socket (the maroon series of Fig. 5(a))
  double numa_bw_penalty = 0.55;
  double numa_lat_penalty = 1.6;

  double transfer_time_us(std::int64_t bytes, CopyDir dir, bool async, bool good_numa) const {
    const double lat = (async ? lat_async_us : lat_sync_us) * (good_numa ? 1.0 : numa_lat_penalty);
    double bw = (dir == CopyDir::HostToDevice ? bw_h2d_gbs : bw_d2h_gbs);
    if (!good_numa) bw *= numa_bw_penalty;
    return lat + static_cast<double>(bytes) / (bw * 1e3); // bytes / (GB/s) in us
  }
};

} // namespace quda::gpusim
