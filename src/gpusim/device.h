#pragma once
// A simulated CUDA device: stream timelines, a copy engine, a memory
// allocator with capacity accounting, and synchronization primitives whose
// semantics mirror the CUDA runtime calls the paper's implementation uses
// (cudaMemcpy, cudaMemcpyAsync, cudaStreamSynchronize, kernel launches on
// streams).
//
// Time is a double in microseconds.  The device does not own a clock; every
// call takes the host's current time and returns the host's time after the
// call (blocking calls advance it, asynchronous calls add only issue
// overhead).  The rank's SimClock in the cluster simulator owns "now".
//
// GT200 devices have a single copy engine: all host/device transfers
// serialize on it regardless of stream (Fermi relaxes this -- footnote 4 of
// the paper -- modeled by DeviceSpec::dual_copy_engine).

#include "gpusim/device_spec.h"
#include "gpusim/kernel_model.h"
#include "trace/trace.h"

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace quda::gpusim {

class Device {
public:
  static constexpr int kNumStreams = 3; // interior + two face streams (Section VI-D2)
  static constexpr double kAsyncIssueOverheadUs = 1.5; // host cost of queueing an async op

  Device(const DeviceSpec& spec, const BusModel& bus, bool good_numa = true)
      : spec_(spec), bus_(bus), good_numa_(good_numa),
        stream_ready_(kNumStreams, 0.0), copy_engines_(spec.dual_copy_engine ? 2 : 1, 0.0) {}

  const DeviceSpec& spec() const { return spec_; }
  const BusModel& bus() const { return bus_; }
  bool good_numa() const { return good_numa_; }

  // --- memory ---------------------------------------------------------------

  // allocation accounting only; the payload lives in host std::vectors.
  // ~180 MiB of the card is reserved for the CUDA context/driver, as on the
  // real cards.
  static constexpr std::int64_t kDriverReservedBytes = 180ll << 20;

  void malloc_bytes(std::int64_t bytes) {
    if (bytes < 0) throw std::invalid_argument("negative allocation");
    if (used_ + bytes > spec_.ram_bytes() - kDriverReservedBytes)
      throw std::bad_alloc();
    used_ += bytes;
    peak_ = std::max(peak_, used_);
  }
  void free_bytes(std::int64_t bytes) { used_ -= bytes; }
  std::int64_t bytes_used() const { return used_; }
  std::int64_t bytes_peak() const { return peak_; }
  std::int64_t bytes_capacity() const { return spec_.ram_bytes() - kDriverReservedBytes; }
  bool fits(std::int64_t bytes) const { return used_ + bytes <= bytes_capacity(); }

  // --- transfers --------------------------------------------------------------

  // cudaMemcpy: host blocks until the transfer completes
  double memcpy_sync(double host_now, std::int64_t bytes, CopyDir dir) {
    double& engine = pick_engine(dir);
    const double start = std::max(host_now, engine);
    const double done = start + bus_.transfer_time_us(bytes, dir, /*async=*/false, good_numa_);
    engine = done;
    bytes_transferred_ += bytes;
    if (trace::RankTracer* tr = trace::current()) {
      tr->span(trace::Cat::Copy, dir == CopyDir::HostToDevice ? "memcpy_h2d" : "memcpy_d2h",
               trace::kTrackHost, start, done, bytes);
      // edge: issued by the host at host_now (start-host_now = engine wait),
      // weight = bus occupancy of the transfer
      tr->dep(-1, host_now, done - start);
    }
    return done;
  }

  // cudaMemcpyAsync on a stream: host pays only the issue overhead; the
  // transfer occupies the copy engine and the stream
  double memcpy_async(double host_now, int stream, std::int64_t bytes, CopyDir dir) {
    double& engine = pick_engine(dir);
    double& s = stream_ready_.at(static_cast<std::size_t>(stream));
    const double start = std::max({host_now, engine, s});
    const double done = start + bus_.transfer_time_us(bytes, dir, /*async=*/true, good_numa_);
    engine = done;
    s = done;
    bytes_transferred_ += bytes;
    if (trace::RankTracer* tr = trace::current()) {
      tr->span(trace::Cat::Copy,
               dir == CopyDir::HostToDevice ? "memcpy_async_h2d" : "memcpy_async_d2h", stream,
               start, done, bytes);
      tr->dep(-1, host_now, done - start);
    }
    return host_now + kAsyncIssueOverheadUs;
  }

  // --- kernels ----------------------------------------------------------------

  // asynchronous kernel launch on a stream
  double launch_kernel(double host_now, int stream, const KernelCost& cost,
                       const LaunchConfig& launch, bool double_precision = false) {
    double& s = stream_ready_.at(static_cast<std::size_t>(stream));
    const double start = std::max(host_now, s) + kKernelLaunchOverheadUs;
    s = start + kernel_duration_us(cost, launch, spec_, double_precision);
    flops_executed_ += cost.flops;
    if (trace::RankTracer* tr = trace::current()) {
      tr->span(trace::Cat::Kernel, cost.name, stream, start, s,
               static_cast<std::int64_t>(cost.bytes));
      // edge: issued by the host at host_now, weight = execution duration
      // (the launch overhead sits between the gating value and `start`)
      tr->dep(-1, host_now, s - start);
    }
    return host_now + kAsyncIssueOverheadUs;
  }

  // --- synchronization ---------------------------------------------------------

  double stream_synchronize(double host_now, int stream) const {
    const double t = std::max(host_now, stream_ready_.at(static_cast<std::size_t>(stream)));
    if (trace::RankTracer* tr = trace::current())
      tr->span(trace::Cat::Sync, "stream_sync", trace::kTrackHost, host_now, t, 0, -1, stream);
    return t;
  }

  double device_synchronize(double host_now) const {
    double t = host_now;
    for (double s : stream_ready_) t = std::max(t, s);
    for (double e : copy_engines_) t = std::max(t, e);
    if (trace::RankTracer* tr = trace::current())
      tr->span(trace::Cat::Sync, "device_sync", trace::kTrackHost, host_now, t);
    return t;
  }

  // make a stream wait for another stream's work issued so far (cuda event)
  void stream_wait_stream(int waiter, int waitee) {
    double& w = stream_ready_.at(static_cast<std::size_t>(waiter));
    const double src = stream_ready_.at(static_cast<std::size_t>(waitee));
    w = std::max(w, src);
    if (trace::RankTracer* tr = trace::current()) {
      // cross-stream edge: the waiter's next op is gated by the waitee's
      // ready value at insertion time (tag = waitee stream)
      tr->instant(trace::Cat::Sync, "stream_wait", waiter, tr->now_us(), 0, -1, waitee);
      tr->dep(-1, src, 0);
    }
  }

  double stream_ready(int stream) const {
    return stream_ready_.at(static_cast<std::size_t>(stream));
  }

  // --- counters ----------------------------------------------------------------

  double flops_executed() const { return flops_executed_; }
  std::int64_t pcie_bytes() const { return bytes_transferred_; }

  void reset_counters() {
    flops_executed_ = 0;
    bytes_transferred_ = 0;
  }

private:
  double& pick_engine(CopyDir dir) {
    // dual-engine devices dedicate one engine per direction
    if (copy_engines_.size() == 2)
      return copy_engines_[dir == CopyDir::HostToDevice ? 0 : 1];
    return copy_engines_[0];
  }

  DeviceSpec spec_;
  BusModel bus_;
  bool good_numa_;
  std::vector<double> stream_ready_;
  std::vector<double> copy_engines_;
  std::int64_t used_ = 0;
  std::int64_t peak_ = 0;
  double flops_executed_ = 0;
  std::int64_t bytes_transferred_ = 0;
};

} // namespace quda::gpusim
