#pragma once
// Common solver parameter and result types.
//
// The delta parameter controls the reliable-update trigger of the mixed
// precision solvers exactly as in the paper's experiments (Section VII-A):
// a reliable update -- recomputation of the true residual in high precision
// and accumulation of the low-precision solution -- fires when the iterated
// residual drops below delta times the maximum residual observed since the
// last update.

#include <cstdint>
#include <string>

namespace quda {

struct SolverParams {
  double tol = 1e-7;       // target relative residual |r| / |b|
  double delta = 1e-1;     // reliable update threshold (mixed precision only)
  int max_iter = 10000;
  bool verbose = false;
};

struct SolverStats {
  int iterations = 0;        // total Krylov iterations
  int reliable_updates = 0;  // high-precision residual recomputations
  int restarts = 0;          // explicit restarts (defect correction outer steps)
  double true_residual = 0;  // |b - Ax| / |b| measured at exit
  bool converged = false;

  std::string summary() const;
};

} // namespace quda
