#pragma once
// Common solver parameter and result types.
//
// The delta parameter controls the reliable-update trigger of the mixed
// precision solvers exactly as in the paper's experiments (Section VII-A):
// a reliable update -- recomputation of the true residual in high precision
// and accumulation of the low-precision solution -- fires when the iterated
// residual drops below delta times the maximum residual observed since the
// last update.

#include <cstdint>
#include <string>

namespace quda {

struct SolverParams {
  double tol = 1e-7;       // target relative residual |r| / |b|
  double delta = 1e-1;     // reliable update threshold (mixed precision only)
  int max_iter = 10000;
  bool verbose = false;

  // --- fault resilience --------------------------------------------------
  // Silent-data-corruption detection piggybacks on the reliable updates: a
  // true residual exceeding sdc_threshold times the residual at the last
  // accepted update means an iterate was corrupted (e.g. a device-memory
  // bit flip with ECC off); the solver rolls back to the last reliable
  // iterate and rebuilds the Krylov space.  0 disables detection.
  double sdc_threshold = 0;
  int max_rollbacks = 10;         // SDC rollback budget before giving up
  int max_breakdown_restarts = 3; // |rho|,|omega| underflow restart budget
};

struct SolverStats {
  int iterations = 0;        // total Krylov iterations
  int reliable_updates = 0;  // high-precision residual recomputations
  int restarts = 0;          // explicit restarts (defect correction outer steps)
  double true_residual = 0;  // |b - Ax| / |b| measured at exit
  bool converged = false;

  // fault recovery accounting
  int sdc_detected = 0;        // corrupted iterates caught at reliable updates
  int rollbacks = 0;           // rollbacks to the last reliable iterate
  int breakdown_restarts = 0;  // Krylov restarts after scalar breakdown
  bool escalated = false;      // recovery budget exhausted; caller should
                               // escalate to full outer precision

  SolverStats& merge(const SolverStats& o) {
    iterations += o.iterations;
    reliable_updates += o.reliable_updates;
    restarts += o.restarts;
    true_residual = o.true_residual;
    converged = o.converged;
    sdc_detected += o.sdc_detected;
    rollbacks += o.rollbacks;
    breakdown_restarts += o.breakdown_restarts;
    escalated = escalated || o.escalated;
    return *this;
  }

  std::string summary() const;
};

} // namespace quda
