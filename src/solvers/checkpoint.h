#pragma once
// Coordinated checkpointing of solver Krylov state (DESIGN.md §10).
//
// At configurable reliable-update boundaries every rank snapshots its local
// high-precision iterate to simulated stable storage and the cluster runs a
// two-phase commit: write (device->host staging + storage write, charged to
// the sim clock), then a commit vote over the existing allreduce, then the
// commit marker.  A rank death anywhere before the vote completes leaves the
// previous committed checkpoint as the recovery point -- the pending slot is
// simply never promoted -- so survivors and the respawned warm spare always
// roll back to the same iterate.
//
// Serialization goes through SpinorField::load() over the *interior* sites
// only: ghost end zones hold transient halo data that may be stale between
// exchanges, and folding them into the snapshot would break the bit-identical
// digest guarantee across QUDA_SIM_THREADS budgets.  Snapshot payloads are
// double regardless of the field precision, so the FNV-1a digest pins the
// exact iterate the solver would resume from.

#include "comm/qmp.h"
#include "lattice/spinor_field.h"
#include "trace/telemetry.h"
#include "trace/trace.h"

#include <cstdint>
#include <cstring>
#include <vector>

namespace quda {

// one entry of the per-rank checkpoint event log (exported when the
// QUDA_SIM_CKPT environment variable names a path)
struct CheckpointEvent {
  const char* action = ""; // "write" | "commit" | "abort" | "restore"
  int iteration = 0;       // solver iteration the snapshot belongs to
  double time_us = 0;      // sim time the event completed
  std::uint64_t digest = 0;
  std::int64_t bytes = 0;
};

template <typename P> class CheckpointManager {
public:
  CheckpointManager(comm::QmpGrid& grid, int interval) : grid_(grid), interval_(interval) {}

  bool active() const { return interval_ > 0; }
  int interval() const { return interval_; }

  // Solver hook, called at every checkpointable boundary (an accepted
  // reliable update in the mixed solver, every 10th iteration in the
  // uniform solvers): every `interval` boundaries, take a coordinated
  // checkpoint of the current iterate.
  void observe_boundary(const SpinorField<P>& x, int iteration) {
    if (!active()) return;
    if (++boundaries_ % interval_ != 0) return;
    checkpoint(x, iteration);
  }

  // Two-phase coordinated checkpoint.  Throws (RankFailure / RankDeath via
  // the commit vote) when the epoch dies mid-protocol; the pending slot is
  // then abandoned and the last committed checkpoint stands.
  void checkpoint(const SpinorField<P>& x, int iteration) {
    sim::RankContext& ctx = grid_.context();
    auto& counters = ctx.faults().counters();
    auto& tracer = ctx.tracer();
    const double begin_us = ctx.clock().now_us;

    serialize(x, pending_.data);
    pending_.digest = digest_of(pending_.data);
    pending_.iteration = iteration;
    pending_.bytes = static_cast<std::int64_t>(pending_.data.size() * sizeof(double));
    pending_.valid = true;

    // phase 1: stage the snapshot over PCIe and stream it to stable storage
    const double write_us =
        ctx.spec().bus.transfer_time_us(x.device_bytes(), gpusim::CopyDir::DeviceToHost,
                                        /*async=*/false, ctx.spec().good_numa_binding) +
        ctx.spec().storage.transfer_time_us(pending_.bytes);
    ctx.clock().advance(write_us);
    counters.checkpoint_us += write_us;
    tracer.span(trace::Cat::Fault, "checkpoint", trace::kTrackHost, begin_us,
                ctx.clock().now_us, pending_.bytes, -1, -1, iteration);
    log_.push_back({"write", iteration, ctx.clock().now_us, pending_.digest, pending_.bytes});

    // phase 2: commit vote -- the collective doubles as the barrier that
    // proves every rank's write reached stable storage
    try {
      grid_.sum(1.0);
    } catch (...) {
      pending_.valid = false;
      tracer.instant(trace::Cat::Fault, "ckpt_abort", trace::kTrackHost, ctx.clock().now_us, 0,
                     -1, -1, iteration);
      log_.push_back({"abort", iteration, ctx.clock().now_us, pending_.digest, pending_.bytes});
      throw;
    }

    // commit marker: one latency-only storage op, then promote the slot
    const double commit_begin_us = ctx.clock().now_us;
    ctx.clock().advance(ctx.spec().storage.latency_us);
    counters.checkpoint_us += ctx.spec().storage.latency_us;
    committed_ = pending_;
    pending_.valid = false;
    ++counters.checkpoints_committed;
    if (auto* rec = telemetry::current()) rec->flag(telemetry::kCheckpoint);
    tracer.span(trace::Cat::Fault, "ckpt_commit", trace::kTrackHost, commit_begin_us,
                ctx.clock().now_us, 0, -1, -1, iteration);
    log_.push_back(
        {"commit", iteration, ctx.clock().now_us, committed_.digest, committed_.bytes});
  }

  // Restore the last committed iterate into x, charging storage read +
  // host->device staging.  Returns the committed iteration, or -1 when no
  // checkpoint is committed (x is left untouched; the recovery driver
  // restarts from the initial guess instead).
  int restore(SpinorField<P>& x) {
    sim::RankContext& ctx = grid_.context();
    if (!committed_.valid) return -1;
    auto& counters = ctx.faults().counters();
    const double read_us =
        ctx.spec().storage.transfer_time_us(committed_.bytes) +
        ctx.spec().bus.transfer_time_us(x.device_bytes(), gpusim::CopyDir::HostToDevice,
                                        /*async=*/false, ctx.spec().good_numa_binding);
    ctx.clock().advance(read_us);
    counters.restore_us += read_us;
    ++counters.restores;
    deserialize(committed_.data, x);
    log_.push_back({"restore", committed_.iteration, ctx.clock().now_us, committed_.digest,
                    committed_.bytes});
    return committed_.iteration;
  }

  bool has_committed() const { return committed_.valid; }
  int committed_iteration() const { return committed_.valid ? committed_.iteration : -1; }
  std::uint64_t committed_digest() const { return committed_.valid ? committed_.digest : 0; }
  const std::vector<CheckpointEvent>& log() const { return log_; }

private:
  struct Slot {
    bool valid = false;
    int iteration = 0;
    std::uint64_t digest = 0;
    std::int64_t bytes = 0;
    std::vector<double> data;
  };

  static void serialize(const SpinorField<P>& x, std::vector<double>& out) {
    out.resize(static_cast<std::size_t>(x.sites()) * SpinorField<P>::kNint);
    std::size_t w = 0;
    for (std::int64_t site = 0; site < x.sites(); ++site) {
      const auto sp = x.load(site);
      for (std::size_t spin = 0; spin < 4; ++spin)
        for (std::size_t c = 0; c < 3; ++c) {
          out[w++] = static_cast<double>(sp.s[spin][c].re);
          out[w++] = static_cast<double>(sp.s[spin][c].im);
        }
    }
  }

  static void deserialize(const std::vector<double>& in, SpinorField<P>& x) {
    using real_t = typename P::real_t;
    std::size_t r = 0;
    for (std::int64_t site = 0; site < x.sites(); ++site) {
      Spinor<real_t> sp;
      for (std::size_t spin = 0; spin < 4; ++spin)
        for (std::size_t c = 0; c < 3; ++c) {
          const real_t re = static_cast<real_t>(in[r++]);
          const real_t im = static_cast<real_t>(in[r++]);
          sp.s[spin][c] = Complex<real_t>(re, im);
        }
      x.store(site, sp);
    }
  }

  static std::uint64_t digest_of(const std::vector<double>& data) {
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (double d : data) {
      std::uint64_t bits;
      std::memcpy(&bits, &d, sizeof(bits));
      for (int i = 0; i < 8; ++i) {
        h ^= (bits >> (8 * i)) & 0xffull;
        h *= 0x100000001b3ull;
      }
    }
    return h;
  }

  comm::QmpGrid& grid_;
  int interval_ = 0;
  long boundaries_ = 0;
  Slot pending_;
  Slot committed_;
  std::vector<CheckpointEvent> log_;
};

} // namespace quda
