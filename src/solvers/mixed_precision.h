#pragma once
// Mixed-precision solvers (Section V-D of the paper).
//
// solve_bicgstab_reliable: BiCGstab iterated in low ("sloppy") precision
// with *reliable updates*: when the iterated residual falls below delta
// times the maximum residual seen since the last update, the true residual
// is recomputed in high precision and the accumulated low-precision
// solution is folded into the high-precision solution.  A single Krylov
// space is preserved across updates (the search vectors are kept), which is
// the advantage over defect correction that the paper highlights.
//
// solve_defect_correction: the traditional alternative -- an inner solver
// restarted from scratch around every high-precision correction -- kept as
// the comparison baseline for the ablation benchmark.

#include "solvers/bicgstab.h"
#include "solvers/linear_operator.h"
#include "solvers/solver.h"

#include <cmath>
#include <cstdio>

namespace quda {

// convert between precision classes through the compute type
template <typename PDst, typename PSrc>
void convert_spinor_field(SpinorField<PDst>& dst, const SpinorField<PSrc>& src) {
  convert_field(src, dst);
}

template <typename PHi, typename PLo>
SolverStats solve_bicgstab_reliable(LinearOperator<PHi>& op_hi, LinearOperator<PLo>& op_lo,
                                    SpinorField<PHi>& x, const SpinorField<PHi>& b,
                                    const SolverParams& params,
                                    CheckpointManager<PHi>* ckpt = nullptr) {
  SolverStats stats;

  SpinorField<PHi> r_hi = SpinorField<PHi>::like(b);
  SpinorField<PHi> tmp_hi = SpinorField<PHi>::like(b);
  SpinorField<PLo> r = op_lo.make_vector(), r0 = op_lo.make_vector(), p = op_lo.make_vector(),
                   v = op_lo.make_vector(), s = op_lo.make_vector(), t = op_lo.make_vector(),
                   x_lo = op_lo.make_vector();

  const double b2 = op_hi.global_sum(blas::norm2(b));
  op_hi.account_blas(1, 0);
  if (b2 == 0.0) {
    x.zero();
    stats.converged = true;
    return stats;
  }
  const double stop = params.tol * params.tol * b2;

  // high-precision initial residual
  op_hi.apply(r_hi, x);
  double r2 = op_hi.global_sum(blas::xmy_norm(b, r_hi));
  op_hi.account_blas(2, 1);

  convert_spinor_field(r, r_hi);
  blas::copy(r0, r);
  blas::copy(p, r);
  x_lo.zero();
  op_lo.account_blas(3, 3);

  double maxrr = std::sqrt(r2);
  complexd rho = op_lo.global_sum(blas::cdot(r0, r));
  op_lo.account_blas(2, 0);
  complexd alpha{1.0, 0.0}, omega{1.0, 0.0};

  // last reliable iterate, for SDC rollback (only kept when detection is on)
  const bool sdc_on = params.sdc_threshold > 0;
  SpinorField<PHi> x_saved = SpinorField<PHi>::like(b);
  if (sdc_on) {
    blas::copy(x_saved, x);
    op_hi.account_blas(1, 1);
  }

  // rebuild the Krylov space from the current high-precision residual r_hi
  // (used after rollbacks and breakdown restarts); returns false when the
  // new shadow residual is itself degenerate
  auto rebuild_krylov = [&]() {
    convert_spinor_field(r, r_hi);
    blas::copy(r0, r);
    blas::copy(p, r);
    x_lo.zero();
    rho = op_lo.global_sum(blas::cdot(r0, r));
    op_lo.account_blas(4, 3);
    alpha = complexd{1.0, 0.0};
    omega = complexd{1.0, 0.0};
    maxrr = std::sqrt(r2);
    return norm2(rho) != 0.0;
  };

  // scalar breakdown (|rho| or |omega| underflow): fold the sloppy progress
  // into x, recompute the true residual, and restart the Krylov space from
  // the current iterate -- bounded by the restart budget
  auto breakdown_restart = [&]() {
    if (stats.breakdown_restarts >= params.max_breakdown_restarts) return false;
    ++stats.breakdown_restarts;
    if (trace::RankTracer* tr = trace::current())
      tr->instant(trace::Cat::Solver, "breakdown_restart", trace::kTrackSolver, tr->now_us(), 0,
                  -1, -1, stats.breakdown_restarts);
    if (auto* rec = telemetry::current()) rec->flag(telemetry::kBreakdownRestart);
    convert_spinor_field(tmp_hi, x_lo);
    blas::axpy(1.0, tmp_hi, x);
    op_hi.apply(r_hi, x);
    r2 = op_hi.global_sum(blas::xmy_norm(b, r_hi));
    op_hi.account_blas(5, 2);
    return rebuild_krylov();
  };

  // stagnation guard: when the tolerance sits at (or below) the outer
  // precision's floor, the true residual stops improving between reliable
  // updates; give up rather than thrash update after update
  double last_update_r2 = r2;
  int stagnant_updates = 0;

  int k = 0;
  while (k < params.max_iter && r2 > stop) {
    op_lo.apply(v, p);
    const complexd r0v = op_lo.global_sum(blas::cdot(r0, v));
    op_lo.account_blas(2, 0);
    if (norm2(r0v) == 0.0) {
      if (!breakdown_restart()) break;
      continue;
    }
    alpha = rho / r0v;

    blas::copy(s, r);
    blas::caxpy(-alpha, v, s);
    op_lo.account_blas(3, 2);

    op_lo.apply(t, s);
    const complexd ts = op_lo.global_sum(blas::cdot(t, s));
    const double t2 = op_lo.global_sum(blas::norm2(t));
    op_lo.account_blas(3, 0);
    if (t2 == 0.0) {
      if (!breakdown_restart()) break;
      continue;
    }
    omega = ts / t2;

    blas::bicgstab_x_update(x_lo, alpha, p, omega, s);
    op_lo.account_blas(3, 1);

    complexd rho_next;
    blas::bicgstab_r_update(r, s, t, omega, r2, rho_next, r0);
    r2 = op_lo.global_sum(r2);
    rho_next = op_lo.global_sum(rho_next);
    op_lo.account_blas(3, 1);
    ++k;
    if (trace::RankTracer* tr = trace::current())
      tr->instant(trace::Cat::Solver, "iteration", trace::kTrackSolver, tr->now_us(), 0, -1, -1,
                  k);
    // the ledger records the *sloppy* iterated residual with the sloppy
    // regime; reliable updates below attach the true residual
    if (auto* rec = telemetry::current()) rec->iteration(k, r2, to_string(PLo::value)[0]);

    const double rnorm = std::sqrt(r2);
    if (rnorm > maxrr) maxrr = rnorm;

    // --- reliable update trigger ------------------------------------------
    // a non-finite iterated residual means an iterate was corrupted; force
    // an update so the true residual exposes it to the SDC check below
    if (rnorm < params.delta * maxrr || r2 < stop || !std::isfinite(r2)) {
      trace::RankTracer* tr = trace::current();
      const double reliable_begin_us = tr != nullptr ? tr->now_us() : 0.0;
      // fold the sloppy solution into the high-precision solution and
      // recompute the true residual
      convert_spinor_field(tmp_hi, x_lo);
      blas::axpy(1.0, tmp_hi, x);
      op_hi.account_blas(3, 1);
      x_lo.zero();

      op_hi.apply(r_hi, x);
      r2 = op_hi.global_sum(blas::xmy_norm(b, r_hi));
      op_hi.account_blas(2, 1);
      ++stats.reliable_updates;
      if (auto* rec = telemetry::current()) {
        rec->flag(telemetry::kReliableUpdate);
        rec->true_residual(r2);
      }

      // --- SDC check: does the true residual contradict convergence? ------
      if (sdc_on && (!std::isfinite(r2) ||
                     r2 > params.sdc_threshold * params.sdc_threshold *
                              std::max(last_update_r2, stop))) {
        ++stats.sdc_detected;
        // roll back to the last reliable iterate; its corrupted successor
        // (and the whole Krylov space built on it) is discarded
        blas::copy(x, x_saved);
        op_hi.apply(r_hi, x);
        r2 = op_hi.global_sum(blas::xmy_norm(b, r_hi));
        op_hi.account_blas(3, 2);
        if (stats.rollbacks >= params.max_rollbacks) {
          stats.escalated = true; // budget exhausted: caller escalates
          if (tr != nullptr) {
            tr->instant(trace::Cat::Solver, "escalate", trace::kTrackSolver, tr->now_us());
            tr->span(trace::Cat::Solver, "reliable_update", trace::kTrackSolver,
                     reliable_begin_us, tr->now_us(), 0, -1, -1, k);
          }
          break;
        }
        ++stats.rollbacks;
        last_update_r2 = r2;
        stagnant_updates = 0;
        if (auto* rec = telemetry::current()) rec->flag(telemetry::kRollback);
        if (tr != nullptr)
          tr->instant(trace::Cat::Solver, "sdc_rollback", trace::kTrackSolver, tr->now_us(), 0,
                      -1, -1, stats.rollbacks);
        const bool rebuilt = rebuild_krylov();
        if (tr != nullptr)
          tr->span(trace::Cat::Solver, "reliable_update", trace::kTrackSolver,
                   reliable_begin_us, tr->now_us(), 0, -1, -1, k);
        if (!rebuilt) break;
        continue;
      }

      // accepted: this iterate becomes the rollback point
      if (sdc_on) {
        blas::copy(x_saved, x);
        op_hi.account_blas(1, 1);
      }
      convert_spinor_field(r, r_hi);
      op_lo.account_blas(1, 1);
      maxrr = std::sqrt(r2);
      // accepted reliable updates are the checkpointable boundaries: x is
      // exactly the iterate a restart would rebuild the Krylov space from
      if (ckpt != nullptr && r2 > stop) ckpt->observe_boundary(x, k);
      if (tr != nullptr)
        tr->span(trace::Cat::Solver, "reliable_update", trace::kTrackSolver, reliable_begin_us,
                 tr->now_us(), 0, -1, -1, k);
      if (r2 <= stop) break;
      if (r2 > 0.8 * last_update_r2) {
        if (++stagnant_updates >= 3) break; // converged as far as precision allows
      } else {
        stagnant_updates = 0;
      }
      last_update_r2 = r2;
      // note: r0, p, v and the scalar state are *kept* -- the Krylov space
      // is preserved across the update
    }

    if (norm2(rho_next) == 0.0) {
      // r became orthogonal to the shadow residual: re-seed r0
      blas::copy(r0, r);
      rho_next = op_lo.global_sum(blas::cdot(r0, r));
      op_lo.account_blas(3, 1);
      blas::copy(p, r);
      op_lo.account_blas(1, 1);
      ++stats.restarts;
      if (auto* rec = telemetry::current()) rec->flag(telemetry::kRestart);
      if (norm2(rho_next) == 0.0) break;
    }
    const complexd beta = (rho_next / rho) * (alpha / omega);
    rho = rho_next;

    blas::bicgstab_p_update(p, r, v, beta, omega);
    op_lo.account_blas(3, 1);

    if (params.verbose && (k % 10 == 0))
      std::printf("BiCGstab(mixed): iter %4d  |r|/|b| = %.3e\n", k, std::sqrt(r2 / b2));
  }

  // fold any remaining sloppy accumulation and measure the true residual
  convert_spinor_field(tmp_hi, x_lo);
  blas::axpy(1.0, tmp_hi, x);
  op_hi.apply(tmp_hi, x);
  const double true_r2 = op_hi.global_sum(blas::xmy_norm(b, tmp_hi));
  op_hi.account_blas(5, 2);

  stats.iterations = k;
  stats.true_residual = std::sqrt(true_r2 / b2);
  stats.converged = true_r2 <= stop * 4.0;
  return stats;
}

// Defect correction: restart the sloppy Krylov space around every
// high-precision correction.  Typically needs more total iterations than
// reliable updates (the comparison made in [4] and cited in Section V-D).
template <typename PHi, typename PLo>
SolverStats solve_defect_correction(LinearOperator<PHi>& op_hi, LinearOperator<PLo>& op_lo,
                                    SpinorField<PHi>& x, const SpinorField<PHi>& b,
                                    const SolverParams& params, double inner_tol = 1e-2) {
  SolverStats stats;

  SpinorField<PHi> r_hi = SpinorField<PHi>::like(b);
  SpinorField<PHi> e_hi = SpinorField<PHi>::like(b);
  SpinorField<PLo> r_lo = op_lo.make_vector();
  SpinorField<PLo> e_lo = op_lo.make_vector();

  const double b2 = op_hi.global_sum(blas::norm2(b));
  op_hi.account_blas(1, 0);
  if (b2 == 0.0) {
    x.zero();
    stats.converged = true;
    return stats;
  }
  const double stop = params.tol * params.tol * b2;

  double r2 = b2;
  double last_r2 = b2 * 4.0;
  while (stats.iterations < params.max_iter) {
    op_hi.apply(r_hi, x);
    r2 = op_hi.global_sum(blas::xmy_norm(b, r_hi));
    op_hi.account_blas(2, 1);
    if (r2 <= stop) break;
    if (r2 > 0.8 * last_r2) break; // correction loop has stagnated
    last_r2 = r2;

    convert_spinor_field(r_lo, r_hi);
    e_lo.zero();
    SolverParams inner = params;
    inner.tol = inner_tol;
    inner.max_iter = params.max_iter - stats.iterations;
    const SolverStats is = solve_bicgstab(op_lo, e_lo, r_lo, inner);
    stats.iterations += is.iterations;
    ++stats.restarts;
    // each defect-correction cycle is a restart of the inner Krylov space
    if (auto* rec = telemetry::current()) rec->flag(telemetry::kRestart);
    if (is.iterations == 0) break; // inner solver stalled

    convert_spinor_field(e_hi, e_lo);
    blas::axpy(1.0, e_hi, x);
    op_hi.account_blas(3, 1);
  }

  op_hi.apply(r_hi, x);
  const double true_r2 = op_hi.global_sum(blas::xmy_norm(b, r_hi));
  op_hi.account_blas(2, 1);
  stats.true_residual = std::sqrt(true_r2 / b2);
  stats.converged = true_r2 <= stop * 4.0;
  return stats;
}

} // namespace quda
