#pragma once
// BiCGstab (van der Vorst) in uniform precision.  This is the workhorse
// solver of the paper's experiments; the Wilson-clover matrix is
// non-Hermitian, so a nonsymmetric method is used directly rather than CG
// on the normal equations (Section II).
//
// All reductions are routed through the operator's global_sum hook so the
// identical code runs multi-GPU (Section VI-E).

#include "solvers/checkpoint.h"
#include "solvers/linear_operator.h"
#include "solvers/solver.h"
#include "trace/telemetry.h"
#include "trace/trace.h"

#include <cmath>
#include <cstdio>

namespace quda {

namespace detail {
template <typename P> SpinorField<P> make_like(const SpinorField<P>& proto) {
  return SpinorField<P>::like(proto);
}
} // namespace detail

// every 10th iteration of the uniform solvers is a checkpointable boundary
// (the mixed solver uses accepted reliable updates instead)
inline constexpr int kUniformCheckpointStride = 10;

template <typename P>
SolverStats solve_bicgstab(LinearOperator<P>& op, SpinorField<P>& x, const SpinorField<P>& b,
                           const SolverParams& params, CheckpointManager<P>* ckpt = nullptr) {
  SolverStats stats;

  SpinorField<P> r = detail::make_like(b);
  SpinorField<P> r0 = detail::make_like(b);
  SpinorField<P> p = detail::make_like(b);
  SpinorField<P> v = detail::make_like(b);
  SpinorField<P> s = detail::make_like(b);
  SpinorField<P> t = detail::make_like(b);

  const double b2 = op.global_sum(blas::norm2(b));
  op.account_blas(1, 0);
  if (b2 == 0.0) {
    x.zero();
    stats.converged = true;
    return stats;
  }
  const double stop = params.tol * params.tol * b2;

  // r = b - A x
  op.apply(r, x);
  double r2 = op.global_sum(blas::xmy_norm(b, r));
  op.account_blas(2, 1);
  blas::copy(r0, r);
  blas::copy(p, r);
  op.account_blas(2, 2);

  complexd rho = op.global_sum(blas::cdot(r0, r));
  op.account_blas(2, 0);
  complexd alpha{1.0, 0.0}, omega{1.0, 0.0};

  // scalar breakdown: restart the Krylov space from the current iterate
  // (bounded) instead of giving up on the first degenerate inner product
  auto breakdown_restart = [&]() {
    if (stats.breakdown_restarts >= params.max_breakdown_restarts) return false;
    ++stats.breakdown_restarts;
    if (trace::RankTracer* tr = trace::current())
      tr->instant(trace::Cat::Solver, "breakdown_restart", trace::kTrackSolver, tr->now_us(), 0,
                  -1, -1, stats.breakdown_restarts);
    if (auto* rec = telemetry::current()) rec->flag(telemetry::kBreakdownRestart);
    op.apply(r, x);
    r2 = op.global_sum(blas::xmy_norm(b, r));
    blas::copy(r0, r);
    blas::copy(p, r);
    rho = op.global_sum(blas::cdot(r0, r));
    op.account_blas(6, 3);
    alpha = complexd{1.0, 0.0};
    omega = complexd{1.0, 0.0};
    return norm2(rho) != 0.0;
  };

  int k = 0;
  while (k < params.max_iter && r2 > stop) {
    // v = A p
    op.apply(v, p);
    const complexd r0v = op.global_sum(blas::cdot(r0, v));
    op.account_blas(2, 0);
    if (norm2(r0v) == 0.0) { // breakdown
      if (!breakdown_restart()) break;
      continue;
    }
    alpha = rho / r0v;

    // s = r - alpha v
    blas::copy(s, r);
    blas::caxpy(-alpha, v, s);
    op.account_blas(3, 2);

    // t = A s
    op.apply(t, s);
    const complexd ts = op.global_sum(blas::cdot(t, s));
    const double t2 = op.global_sum(blas::norm2(t));
    op.account_blas(3, 0);
    if (t2 == 0.0) {
      if (!breakdown_restart()) break;
      continue;
    }
    omega = ts / t2;

    // x += alpha p + omega s
    blas::bicgstab_x_update(x, alpha, p, omega, s);
    op.account_blas(3, 1);

    // r = s - omega t (fused with the next rho and the residual norm)
    complexd rho_next;
    blas::bicgstab_r_update(r, s, t, omega, r2, rho_next, r0);
    r2 = op.global_sum(r2);
    rho_next = op.global_sum(rho_next);
    op.account_blas(3, 1);

    if (norm2(rho_next) == 0.0) { // breakdown: r orthogonal to r0
      ++k;
      if (!breakdown_restart()) break;
      continue;
    }
    const complexd beta = (rho_next / rho) * (alpha / omega);
    rho = rho_next;

    // p = r + beta (p - omega v)
    blas::bicgstab_p_update(p, r, v, beta, omega);
    op.account_blas(3, 1);

    ++k;
    if (trace::RankTracer* tr = trace::current())
      tr->instant(trace::Cat::Solver, "iteration", trace::kTrackSolver, tr->now_us(), 0, -1, -1,
                  k);
    if (auto* rec = telemetry::current()) rec->iteration(k, r2, to_string(P::value)[0]);
    if (ckpt != nullptr && k % kUniformCheckpointStride == 0 && r2 > stop)
      ckpt->observe_boundary(x, k);
    if (params.verbose && (k % 10 == 0))
      std::printf("BiCGstab: iter %4d  |r|/|b| = %.3e\n", k, std::sqrt(r2 / b2));
  }

  stats.iterations = k;
  // true residual
  op.apply(v, x);
  const double true_r2 = op.global_sum(blas::xmy_norm(b, v));
  op.account_blas(2, 1);
  if (auto* rec = telemetry::current()) rec->true_residual(true_r2);
  stats.true_residual = std::sqrt(true_r2 / b2);
  stats.converged = true_r2 <= stop * 4.0; // allow rounding slack vs iterated residual
  return stats;
}

} // namespace quda
