#pragma once
// Conjugate gradients on the normal equations (CGNR): solves A x = b via
// the Hermitian positive-definite system A^dag A x = A^dag b.  QUDA provides
// CG alongside BiCGstab (Section V); for the gamma_5-Hermitian Wilson-clover
// matrix the dagger application costs one extra pair of gamma_5 sweeps.

#include "solvers/checkpoint.h"
#include "solvers/linear_operator.h"
#include "solvers/solver.h"
#include "trace/telemetry.h"

#include <cmath>
#include <cstdio>

namespace quda {

template <typename P>
SolverStats solve_cgnr(LinearOperator<P>& op, SpinorField<P>& x, const SpinorField<P>& b,
                       const SolverParams& params, CheckpointManager<P>* ckpt = nullptr) {
  SolverStats stats;

  SpinorField<P> r = SpinorField<P>::like(b); // normal-eq residual
  SpinorField<P> p = SpinorField<P>::like(b);
  SpinorField<P> ap = SpinorField<P>::like(b);
  SpinorField<P> tmp = SpinorField<P>::like(b);

  const double b2 = op.global_sum(blas::norm2(b));
  op.account_blas(1, 0);
  if (b2 == 0.0) {
    x.zero();
    stats.converged = true;
    return stats;
  }

  // r = A^dag (b - A x)
  op.apply(tmp, x);
  blas::xmy_norm(b, tmp);
  op.account_blas(2, 1);
  op.apply_dagger(r, tmp);
  blas::copy(p, r);
  op.account_blas(2, 2);

  double rr = op.global_sum(blas::norm2(r));
  op.account_blas(1, 0);

  // convergence is judged on the original system's residual; track it by
  // recomputing periodically (every 10 iterations) and at exit
  const double stop = params.tol * params.tol * b2;
  int k = 0;
  double true_r2 = b2;

  // loss of positivity in p^dag A^dag A p means the search direction has
  // degenerated (rounding or a corrupted iterate); restart steepest-descent
  // from the current x, bounded by the restart budget
  auto breakdown_restart = [&]() {
    if (stats.breakdown_restarts >= params.max_breakdown_restarts) return false;
    ++stats.breakdown_restarts;
    if (auto* rec = telemetry::current()) rec->flag(telemetry::kBreakdownRestart);
    op.apply(tmp, x);
    blas::xmy_norm(b, tmp);
    op.apply_dagger(r, tmp);
    blas::copy(p, r);
    rr = op.global_sum(blas::norm2(r));
    op.account_blas(5, 3);
    return rr > 0.0;
  };

  while (k < params.max_iter) {
    // ap = A^dag A p
    op.apply(tmp, p);
    op.apply_dagger(ap, tmp);
    const double pap = op.global_sum(blas::cdot(p, ap)).re;
    op.account_blas(2, 0);
    if (pap <= 0.0) {
      if (!breakdown_restart()) break;
      continue;
    }
    const double alpha = rr / pap;

    blas::axpy(alpha, p, x);
    const double rr_new = op.global_sum(blas::axpy_norm(-alpha, ap, r));
    op.account_blas(5, 2);
    const double beta = rr_new / rr;
    rr = rr_new;
    blas::xpay(r, beta, p);
    op.account_blas(2, 1);

    ++k;
    if (auto* rec = telemetry::current()) rec->iteration(k, rr, to_string(P::value)[0]);
    if (k % 10 == 0 || rr < stop) {
      op.apply(tmp, x);
      SpinorField<P> res = SpinorField<P>::like(b);
      blas::copy(res, b);
      true_r2 = op.global_sum(blas::axpy_norm(-1.0, tmp, res));
      op.account_blas(4, 2);
      if (auto* rec = telemetry::current()) rec->true_residual(true_r2);
      if (params.verbose)
        std::printf("CGNR: iter %4d  |r|/|b| = %.3e\n", k, std::sqrt(true_r2 / b2));
      if (true_r2 <= stop) break;
      // the periodic true-residual check doubles as the checkpoint boundary
      if (ckpt != nullptr) ckpt->observe_boundary(x, k);
    }
  }

  stats.iterations = k;
  stats.true_residual = std::sqrt(true_r2 / b2);
  stats.converged = true_r2 <= stop;
  return stats;
}

} // namespace quda
