#pragma once
// Abstract linear operator interface shared by the single-device and
// multi-GPU even-odd Wilson-clover operators.  Solvers see only this
// interface, so the same Krylov code runs unchanged on one device or on a
// 32-GPU simulated cluster -- the parallel operator supplies halo-exchanged
// matrix application and MPI-reduced global sums (Section VI-E).

#include "blas/blas.h"
#include "lattice/spinor_field.h"

#include <cstdint>

namespace quda {

template <typename P> class LinearOperator {
public:
  virtual ~LinearOperator() = default;

  // single-parity local sites of the vectors this operator acts on
  virtual std::int64_t sites() const = 0;

  virtual void apply(SpinorField<P>& out, const SpinorField<P>& in) = 0;
  virtual void apply_dagger(SpinorField<P>& out, const SpinorField<P>& in) = 0;

  // a zero vector shaped for this operator (correct ghost-zone layout for
  // its decomposition); solvers allocate their temporaries through this
  virtual SpinorField<P> make_vector() const = 0;

  // reduce a locally-computed sum across all ranks; identity on one device
  virtual double global_sum(double local) { return local; }
  virtual complexd global_sum(const complexd& local) { return local; }

  // notify the timing layer that a fused BLAS kernel swept `vectors` of
  // this operator's size; the numerics layer has already done the work
  virtual void account_blas(int vectors_read, int vectors_written) {
    (void)vectors_read;
    (void)vectors_written;
  }
};

} // namespace quda
