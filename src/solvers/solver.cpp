#include "solvers/solver.h"

#include <sstream>

namespace quda {

std::string SolverStats::summary() const {
  std::ostringstream os;
  os << (converged ? "converged" : "NOT converged") << " in " << iterations << " iterations";
  if (reliable_updates > 0) os << " (" << reliable_updates << " reliable updates)";
  if (restarts > 0) os << " (" << restarts << " restarts)";
  if (sdc_detected > 0)
    os << " (" << sdc_detected << " SDC detections, " << rollbacks << " rollbacks)";
  if (breakdown_restarts > 0) os << " (" << breakdown_restarts << " breakdown restarts)";
  if (escalated) os << " [escalated]";
  os << ", true |r|/|b| = " << true_residual;
  return os.str();
}

} // namespace quda
