#include "solvers/solver.h"

#include <sstream>

namespace quda {

std::string SolverStats::summary() const {
  std::ostringstream os;
  os << (converged ? "converged" : "NOT converged") << " in " << iterations << " iterations";
  if (reliable_updates > 0) os << " (" << reliable_updates << " reliable updates)";
  if (restarts > 0) os << " (" << restarts << " restarts)";
  os << ", true |r|/|b| = " << true_residual;
  return os.str();
}

} // namespace quda
