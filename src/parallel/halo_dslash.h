#pragma once
// The multi-GPU Wilson dslash: domain decomposition with face halo exchange
// (Section VI of the paper).
//
// The paper's production configuration slices only the time dimension (the
// full spatial volume stays on one GPU); scaling to hundreds of GPUs needs
// the multi-dimensional decomposition the paper lists as future work, which
// this engine also implements: any subset of the four dimensions may be cut
// by the rank grid, with one pair of projected spinor faces (12 reals per
// face site, footnote 3) and one gauge ghost face per cut dimension.
//
// Two communication policies are implemented (Section VI-D):
//
//  * NoOverlap: synchronous per-block cudaMemcpy of all faces, a blocking
//    exchange, a single upload per face, then ONE kernel over the whole
//    local volume.  Cheap latency, zero overlap.
//  * Overlap: three CUDA streams.  Stream 0 runs the interior kernel
//    (sites touching no cut edge) while streams 1 and 2 move the
//    backward- and forward-traveling faces with cudaMemcpyAsync and
//    non-blocking MPI; the boundary kernel runs once the ghosts have
//    landed.  Hides transfer time behind compute but pays the
//    (Tylersburg-sized) async-copy latencies -- the tradeoff behind Fig. 5.
//
// The same entry point runs Execution::Real (numerics + timing) and
// Execution::Modeled (timing only; null fields) so that tests validate the
// exact code path the benchmarks time.

#include "comm/qmp.h"
#include "dirac/dslash.h"
#include "parallel/policy.h"
#include "perfmodel/costs.h"

namespace quda::parallel {

// which CUDA stream handles what, mirroring Section VI-D2
inline constexpr int kInteriorStream = 0;
inline constexpr int kBackwardFaceStream = 1; // face send backward / receive forward
inline constexpr int kForwardFaceStream = 2;  // face send forward / receive backward

// message tags: a face is tagged by its dimension and travel direction
inline constexpr int face_tag(int mu, int travel_dir) { return 2 * mu + (travel_dir > 0); }
inline constexpr int gauge_tag(int mu) { return 16 + mu; }

struct HaloDslashConfig {
  CommPolicy policy = CommPolicy::Overlap;
  Execution exec = Execution::Real;
  Parity out_parity = Parity::Even;
  double scale = 1.0;
  Accumulate accumulate = Accumulate::No;
  TimeBoundary time_bc = TimeBoundary::Periodic;
  // gauge storage format of the field this dslash streams: sets the modeled
  // gauge bytes per site (Real callers mirror gauge->reconstruct() here)
  Reconstruct reconstruct = Reconstruct::Twelve;
  gpusim::LaunchConfig launch{256, 0}; // dslash launch geometry (auto-tunable)
};

// field set for one halo dslash; all pointers may be null in Modeled mode
template <typename P> struct HaloFields {
  SpinorField<P>* out = nullptr;
  const GaugeField<P>* gauge = nullptr;
  SpinorField<P>* in = nullptr; // received ghosts are scattered into it
};

// out[local] (+)= scale * D in, exchanging faces with the grid neighbors in
// every partitioned dimension; advances the rank's simulated clock through
// the full protocol
template <typename P>
void halo_dslash(comm::QmpGrid& grid, const Geometry& local, const HaloDslashConfig& cfg,
                 HaloFields<P> f);

// one-time gauge ghost exchange at setup (Section VI-B): for each cut
// dimension mu, each rank sends the U_mu links of its last perpendicular
// slice forward; the receiver stores them in the pad of its mu slab.  The
// wire carries gauge_wire_reals(recon) reals per link; in Modeled mode
// (null gauge) `recon` alone sets the modeled bytes, in Real mode it must
// match gauge->reconstruct().
template <typename P>
void exchange_gauge_ghost(comm::QmpGrid& grid, const Geometry& local, GaugeField<P>* gauge,
                          Execution exec, Reconstruct recon = Reconstruct::Twelve);

// single-parity interior site count for a partition mask (the work the
// overlapped interior kernel covers)
std::int64_t interior_sites(const Geometry& local, const PartitionMask& mask);

} // namespace quda::parallel
