#pragma once
// The multi-GPU even-odd Wilson-clover operator: the single-device Schur
// operator with every dslash routed through the halo exchange, global sums
// through QMP/MPI reductions (Section VI-E), and all device work charged to
// the rank's simulated GPU.
//
// Clover applications are fused into the dslash kernels on the real device
// (the paper's per-site cost of 3696 flops / 2976 bytes already assumes
// kernel fusion), so they add numerics here but no extra modeled kernel
// time; the fused cost is carried by the dslash launches inside
// halo_dslash.

#include "dirac/wilson_clover_op.h"
#include "parallel/halo_dslash.h"
#include "solvers/linear_operator.h"

namespace quda::parallel {

template <typename P> class ParallelWilsonCloverOp final : public LinearOperator<P> {
public:
  // fields are local-lattice fields; the gauge field must already contain
  // its ghost links (exchange_gauge_ghost)
  ParallelWilsonCloverOp(comm::QmpGrid& grid, const Geometry& local, const GaugeField<P>& gauge,
                         const CloverField<P>& clover, const CloverField<P>& clover_inv,
                         const OperatorParams& params, CommPolicy policy)
      : grid_(grid), local_(local), gauge_(gauge), clover_(clover), clover_inv_(clover_inv),
        params_(params), policy_(policy),
        tmp_o_(local, grid.topology().partition_mask()),
        tmp2_o_(local, grid.topology().partition_mask()) {}

  std::int64_t sites() const override { return local_.half_volume(); }
  const Geometry& geom() const { return local_; }
  comm::QmpGrid& grid() { return grid_; }

  SpinorField<P> make_vector() const override {
    return SpinorField<P>(local_, grid_.topology().partition_mask());
  }

  double effective_flops() const { return effective_flops_; }

  // Mhat x_e = T_e x_e - 1/4 D_eo T_o^{-1} D_oe x_e, with halo exchange on
  // both hopping applications
  void apply(SpinorField<P>& out, const SpinorField<P>& in) override {
    const std::int64_t vh = local_.half_volume();
    // the ghost end zone of `in` receives the neighbors' faces -- it is
    // scratch space within the field, not logical content (mirrors QUDA,
    // where the received faces land inside the input spinor's allocation)
    halo(tmp_o_, const_cast<SpinorField<P>&>(in), Parity::Odd, 1.0, Accumulate::No);
    apply_clover_xpay<P>(tmp2_o_, clover_inv_, Parity::Odd, tmp_o_, local_, 0, vh, 0);
    halo(out, tmp2_o_, Parity::Even, 1.0, Accumulate::No);
    apply_clover_xpay<P>(out, clover_, Parity::Even, in, local_, 0, vh,
                         static_cast<typename P::real_t>(-0.25));
    effective_flops_ += perf::effective_matrix_flops(vh);
    maybe_inject_device_flip(out);
  }

  void apply_dagger(SpinorField<P>& out, const SpinorField<P>& in) override {
    SpinorField<P> g5in(local_);
    apply_gamma5<P>(g5in, in);
    apply(out, g5in);
    apply_gamma5<P>(out, out);
  }

  // b' = b_e + 1/2 D_eo T_o^{-1} b_o
  void prepare_source(SpinorField<P>& bprime, const SpinorField<P>& b_e, SpinorField<P>& b_o) {
    const std::int64_t vh = local_.half_volume();
    apply_clover_xpay<P>(tmp_o_, clover_inv_, Parity::Odd, b_o, local_, 0, vh, 0);
    blas::copy(bprime, b_e);
    halo(bprime, tmp_o_, Parity::Even, 0.5, Accumulate::Yes);
  }

  // x_o = T_o^{-1} (b_o + 1/2 D_oe x_e)
  void reconstruct_odd(SpinorField<P>& x_o, SpinorField<P>& x_e, const SpinorField<P>& b_o) {
    const std::int64_t vh = local_.half_volume();
    blas::copy(tmp_o_, b_o);
    halo(tmp_o_, x_e, Parity::Odd, 0.5, Accumulate::Yes);
    apply_clover_xpay<P>(x_o, clover_inv_, Parity::Odd, tmp_o_, local_, 0, vh, 0);
  }

  // full (two-parity) operator for end-to-end residual checks
  void apply_full(SpinorField<P>& out_e, SpinorField<P>& out_o, SpinorField<P>& in_e,
                  SpinorField<P>& in_o) {
    const std::int64_t vh = local_.half_volume();
    using real_t = typename P::real_t;
    halo(out_e, in_o, Parity::Even, -0.5, Accumulate::No);
    apply_clover_xpay<P>(out_e, clover_, Parity::Even, in_e, local_, 0, vh, real_t(1));
    halo(out_o, in_e, Parity::Odd, -0.5, Accumulate::No);
    apply_clover_xpay<P>(out_o, clover_, Parity::Odd, in_o, local_, 0, vh, real_t(1));
  }

  // MPI reductions for the solver's linear-algebra kernels (Section VI-E)
  double global_sum(double local) override {
    return grid_.sum(local);
  }
  complexd global_sum(const complexd& local) override {
    double v[2] = {local.re, local.im};
    grid_.sum(v, 2);
    return {v[0], v[1]};
  }

  // a fused BLAS kernel swept the local vectors: charge the streaming kernel
  void account_blas(int reads, int writes) override {
    auto& ctx = grid_.context();
    double& clk = ctx.clock().now_us;
    clk = ctx.device().launch_kernel(
        clk, kInteriorStream, perf::blas_kernel_cost(P::value, sites(), reads, writes),
        gpusim::LaunchConfig{256, 0});
    clk = ctx.device().device_synchronize(clk);
    effective_flops_ += perf::effective_blas_flops(sites(), reads);
  }

private:
  // Transient device-memory fault ("ECC off", as on the paper's GTX 285s):
  // one deterministic draw per operator application; when it fires, a single
  // bit of the freshly-computed output spinor is flipped -- the silent data
  // corruption the solver's reliable-update SDC check exists to catch.
  void maybe_inject_device_flip(SpinorField<P>& out) {
    auto& fs = grid_.context().faults();
    if (!fs.enabled()) return;
    const auto selector = fs.next_device_fault();
    if (!selector) return;
    ++fs.counters().device_flips;
    auto& data = out.raw_data();
    if (data.empty()) return;
    const std::uint64_t nbits =
        static_cast<std::uint64_t>(data.size()) * sizeof(typename P::store_t) * 8;
    const std::uint64_t bit = *selector % nbits;
    auto* bytes = reinterpret_cast<unsigned char*>(data.data());
    bytes[bit / 8] ^= static_cast<unsigned char>(1u << (bit % 8));
  }

  void halo(SpinorField<P>& out, SpinorField<P>& in, Parity out_parity, double scale,
            Accumulate acc) {
    HaloDslashConfig cfg;
    cfg.policy = policy_;
    cfg.exec = Execution::Real;
    cfg.out_parity = out_parity;
    cfg.scale = scale;
    cfg.accumulate = acc;
    cfg.time_bc = params_.time_bc;
    cfg.reconstruct = gauge_.reconstruct();
    HaloFields<P> f;
    f.out = &out;
    f.gauge = &gauge_;
    f.in = &in;
    halo_dslash<P>(grid_, local_, cfg, f);
  }

  comm::QmpGrid& grid_;
  Geometry local_;
  const GaugeField<P>& gauge_;
  const CloverField<P>& clover_;
  const CloverField<P>& clover_inv_;
  OperatorParams params_;
  CommPolicy policy_;
  SpinorField<P> tmp_o_, tmp2_o_;
  double effective_flops_ = 0;
};

} // namespace quda::parallel
