#pragma once
// Execution policies for the multi-GPU operator.

namespace quda {

// Section VI-D: the two communication strategies whose tradeoff the paper's
// strong-scaling study maps out
enum class CommPolicy {
  NoOverlap, // all transfers up front with synchronous cudaMemcpy, then one kernel
  Overlap,   // 3-stream pipeline: interior kernel overlapped with async copies + MPI
};

inline const char* to_string(CommPolicy p) {
  return p == CommPolicy::NoOverlap ? "not overlapped" : "overlapped";
}

// Real: perform the numerics on the host while advancing the simulated
// clocks (tests, examples).  Modeled: advance the clocks only -- used by the
// benchmark harness to run paper-sized volumes whose arithmetic would take
// hours on one host core.  Both modes share the identical timing path.
enum class Execution {
  Real,
  Modeled,
};

} // namespace quda
