#include "parallel/modeled_solver.h"

#include <stdexcept>

namespace quda::parallel {

namespace {

// dispatch a modeled halo dslash at a runtime precision and link storage
void modeled_halo(comm::QmpGrid& grid, const Geometry& local, Precision prec, Reconstruct recon,
                  CommPolicy policy, TimeBoundary bc, Parity parity) {
  HaloDslashConfig cfg;
  cfg.policy = policy;
  cfg.exec = Execution::Modeled;
  cfg.out_parity = parity;
  cfg.time_bc = bc;
  cfg.reconstruct = recon;
  switch (prec) {
    case Precision::Double:
      halo_dslash<PrecDouble>(grid, local, cfg, {});
      break;
    case Precision::Single:
      halo_dslash<PrecSingle>(grid, local, cfg, {});
      break;
    case Precision::Half:
      halo_dslash<PrecHalf>(grid, local, cfg, {});
      break;
  }
}

// one even-odd matrix application: two halo dslashes (clover fused)
void modeled_matrix(comm::QmpGrid& grid, const Geometry& local, Precision prec, Reconstruct recon,
                    CommPolicy policy, TimeBoundary bc) {
  modeled_halo(grid, local, prec, recon, policy, bc, Parity::Odd);
  modeled_halo(grid, local, prec, recon, policy, bc, Parity::Even);
}

// one fused BLAS kernel + counters
void modeled_blas(sim::RankContext& ctx, Precision prec, std::int64_t sites, int reads,
                  int writes, double& eff_flops) {
  double& clk = ctx.clock().now_us;
  clk = ctx.device().launch_kernel(clk, kInteriorStream,
                                   perf::blas_kernel_cost(prec, sites, reads, writes),
                                   gpusim::LaunchConfig{256, 0});
  clk = ctx.device().device_synchronize(clk);
  eff_flops += perf::effective_blas_flops(sites, reads);
}

void modeled_reduction(sim::RankContext& ctx) { (void)ctx.allreduce_sum(0.0); }

} // namespace

ModeledSolverResult run_modeled_solver(sim::VirtualCluster& cluster,
                                       const ModeledSolverConfig& config) {
  ModeledSolverResult result;
  result.iterations = config.iterations;

  // --- memory gate -------------------------------------------------------------
  const perf::SolverFootprint fp =
      perf::solver_footprint(config.local, config.outer, config.sloppy, config.reconstruct,
                             config.reconstruct_sloppy);
  result.footprint_bytes = fp.total();
  result.gauge_footprint_bytes = fp.gauge_bytes;
  gpusim::Device probe(cluster.spec().device, cluster.spec().bus);
  if (!probe.fits(fp.total())) {
    result.fits = false;
    return result;
  }

  const Geometry local(config.local);
  const std::int64_t vh = local.half_volume();
  const Precision sloppy = config.sloppy.value_or(config.outer);
  const bool mixed = sloppy != config.outer;
  // kernel/wire charges: unset knobs keep the pre-knob 12-real anchor
  const Reconstruct recon_outer = config.reconstruct.value_or(Reconstruct::Twelve);
  const Reconstruct recon_sloppy =
      config.reconstruct_sloppy.value_or(config.reconstruct.value_or(Reconstruct::Twelve));

  // every rank runs the same schedule; one rank accumulates the flop count
  // (all ranks are identical, so aggregate = per-rank x N)
  std::vector<double> eff_flops(static_cast<std::size_t>(cluster.spec().num_ranks()), 0.0);
  int rollbacks_rank0 = 0;
  int iterations_rank0 = config.iterations;

  cluster.run([&](sim::RankContext& ctx) {
    const bool custom_topology = config.topology.num_ranks() == ctx.size() &&
                                 config.topology.num_ranks() > 1;
    comm::QmpGrid grid = custom_topology ? comm::QmpGrid(ctx, config.topology)
                                         : comm::QmpGrid(ctx);
    grid.set_retry_policy(config.retry);
    double& flops = eff_flops[static_cast<std::size_t>(ctx.rank())];

    // modeled SDC: one device-fault draw per matrix application, exactly as
    // in Real execution; a flip voids the segment since the last reliable
    // update, and the detection point decides globally (mirroring the true
    // residual's allreduce) whether to re-run it
    bool segment_corrupt = false;
    int rollbacks = 0;
    auto draw_flip = [&] {
      if (!ctx.faults().enabled()) return;
      if (ctx.faults().next_device_fault()) {
        ++ctx.faults().counters().device_flips;
        segment_corrupt = true;
      }
    };

    auto& tracer = ctx.tracer();
    const double setup_begin_us = ctx.clock().now_us;

    // setup: gauge ghost exchange (program initialization, Section VI-B)
    switch (sloppy) {
      case Precision::Double:
        exchange_gauge_ghost<PrecDouble>(grid, local, nullptr, Execution::Modeled, recon_sloppy);
        break;
      case Precision::Single:
        exchange_gauge_ghost<PrecSingle>(grid, local, nullptr, Execution::Modeled, recon_sloppy);
        break;
      case Precision::Half:
        exchange_gauge_ghost<PrecHalf>(grid, local, nullptr, Execution::Modeled, recon_sloppy);
        break;
    }

    // initial residual: one outer matrix apply + two BLAS sweeps + reduction
    modeled_matrix(grid, local, config.outer, recon_outer, config.policy, config.time_bc);
    flops += perf::effective_matrix_flops(vh);
    modeled_blas(ctx, config.outer, vh, 2, 1, flops);
    modeled_reduction(ctx);
    tracer.span(trace::Cat::Solver, "setup", trace::kTrackSolver, setup_begin_us,
                ctx.clock().now_us);
    const double solve_begin_us = ctx.clock().now_us;

    int executed = 0;
    for (int k = 1; k <= config.iterations; ++k) {
      // BiCGstab iteration at sloppy precision: 2 matrix applies, the fused
      // BLAS schedule of solve_bicgstab, and 3 fused reductions
      modeled_matrix(grid, local, sloppy, recon_sloppy, config.policy, config.time_bc);
      draw_flip();
      modeled_matrix(grid, local, sloppy, recon_sloppy, config.policy, config.time_bc);
      draw_flip();
      flops += 2 * perf::effective_matrix_flops(vh);
      ++executed;

      modeled_blas(ctx, sloppy, vh, 2, 0, flops); // <r0, v>
      modeled_reduction(ctx);
      modeled_blas(ctx, sloppy, vh, 3, 2, flops); // s = r - alpha v
      modeled_blas(ctx, sloppy, vh, 3, 0, flops); // <t, s>, <t, t>
      modeled_reduction(ctx);
      modeled_blas(ctx, sloppy, vh, 3, 1, flops); // x update
      modeled_blas(ctx, sloppy, vh, 3, 1, flops); // r update + norms
      modeled_reduction(ctx);
      modeled_blas(ctx, sloppy, vh, 3, 1, flops); // p update

      tracer.instant(trace::Cat::Solver, "iteration", trace::kTrackSolver, ctx.clock().now_us,
                     0, -1, -1, k);
      // modeled iterations carry no residual (arithmetic suppressed); the
      // ledger still pins the iteration cadence and precision regime
      if (auto* rec = telemetry::current())
        rec->iteration(k, -1.0, to_string(sloppy)[0]);

      if (mixed && config.reliable_interval > 0 && k % config.reliable_interval == 0) {
        // reliable update: fold x_lo, recompute the true residual at outer
        // precision, convert back down (Section V-D)
        const double reliable_begin_us = ctx.clock().now_us;
        modeled_blas(ctx, config.outer, vh, 3, 1, flops); // y += x_lo
        modeled_matrix(grid, local, config.outer, recon_outer, config.policy, config.time_bc);
        flops += perf::effective_matrix_flops(vh);
        modeled_blas(ctx, config.outer, vh, 2, 1, flops); // r = b - Ay + norm
        modeled_reduction(ctx);

        // SDC detection rides the true residual's allreduce: any rank's
        // corrupted segment shows up in the global residual, so the rollback
        // decision is global and every rank stays in lockstep
        double corrupt_flag = segment_corrupt ? 1.0 : 0.0;
        corrupt_flag = ctx.allreduce_sum(corrupt_flag);
        segment_corrupt = false;
        if (corrupt_flag > 0 && rollbacks < config.max_rollbacks) {
          ++rollbacks;
          // rollback: restore the saved iterate, recompute the residual,
          // rebuild the sloppy Krylov space, then re-run the voided segment
          modeled_blas(ctx, config.outer, vh, 1, 1, flops); // x = x_saved
          modeled_matrix(grid, local, config.outer, recon_outer, config.policy, config.time_bc);
          flops += perf::effective_matrix_flops(vh);
          modeled_blas(ctx, config.outer, vh, 2, 1, flops); // r = b - Ax + norm
          modeled_reduction(ctx);
          modeled_blas(ctx, sloppy, vh, 4, 3, flops); // rebuild r0, p, rho
          modeled_reduction(ctx);
          tracer.instant(trace::Cat::Solver, "rollback", trace::kTrackSolver,
                         ctx.clock().now_us, 0, -1, -1, k);
          if (auto* rec = telemetry::current()) rec->flag(telemetry::kRollback);
          tracer.span(trace::Cat::Solver, "reliable_update", trace::kTrackSolver,
                      reliable_begin_us, ctx.clock().now_us, 0, -1, -1, k);
          k -= config.reliable_interval; // the segment is re-run
          continue;
        }
        modeled_blas(ctx, sloppy, vh, 1, 1, flops); // r_lo = convert(r)
        if (auto* rec = telemetry::current()) rec->flag(telemetry::kReliableUpdate);
        tracer.span(trace::Cat::Solver, "reliable_update", trace::kTrackSolver,
                    reliable_begin_us, ctx.clock().now_us, 0, -1, -1, k);
      }
    }
    ctx.barrier();
    tracer.span(trace::Cat::Solver, "solve", trace::kTrackSolver, solve_begin_us,
                ctx.clock().now_us);
    if (ctx.rank() == 0) {
      rollbacks_rank0 = rollbacks;
      iterations_rank0 = executed;
    }
  });

  result.iterations = iterations_rank0;
  result.rollbacks = rollbacks_rank0;
  result.faults = cluster.fault_totals();
  result.time_us = cluster.makespan_us();
  result.traced = cluster.trace().enabled;
  if (result.traced) {
    result.metrics = trace::compute_metrics(cluster.trace());
    result.critpath = trace::analyze_solve(
        cluster.trace(), trace::ModelConfig{cluster.spec().device.dual_copy_engine});
  }
  result.telemetry = cluster.telemetry();
  double total_flops = 0;
  for (double f : eff_flops) total_flops += f;
  // flops/us -> Gflops (time_us is 0 only for degenerate no-op schedules)
  result.effective_gflops = result.time_us > 0 ? total_flops / (result.time_us * 1e3) : 0.0;
  return result;
}

} // namespace quda::parallel
