#pragma once
// Timing-only ("Modeled") execution of the parallel BiCGstab solver at
// paper-scale volumes.
//
// The benchmark harness needs the performance of solves on lattices like
// 32^3 x 256 across up to 32 GPUs -- volumes whose real arithmetic would
// take hours per data point on one host core.  Sustained Gflops is a
// per-iteration quantity, so we execute the solver's *schedule* (matrix
// applications, fused BLAS sweeps, reductions, reliable updates) through
// exactly the same halo-exchange and device-timing code paths the real
// solver uses, with Execution::Modeled suppressing the arithmetic.  The
// iteration count is a fixed input; it cancels out of the Gflops metric up
// to the reliable-update overhead, which is modeled explicitly.

#include "parallel/halo_dslash.h"
#include "perfmodel/footprint.h"
#include "sim/event_sim.h"
#include "trace/attribution.h"
#include "trace/metrics.h"
#include "trace/telemetry.h"

#include <optional>

namespace quda::parallel {

struct ModeledSolverConfig {
  LatticeDims local{};                       // per-rank lattice
  // rank grid; empty dims (all 1) means the paper's 1-D ring over time
  comm::GridTopology topology{};
  Precision outer = Precision::Single;       // high/outer precision
  std::optional<Precision> sloppy{};         // set => mixed precision
  // gauge link storage per level.  Unset keeps the pre-knob behavior: the
  // 12-real anchored kernel traffic and the era-default footprint (18-real
  // double, 12-real otherwise).  Set, it drives the kernel bytes, the gauge
  // ghost wire, and the footprint gate -- the fig4/5/6 curves move with it.
  std::optional<Reconstruct> reconstruct{};
  std::optional<Reconstruct> reconstruct_sloppy{};
  CommPolicy policy = CommPolicy::Overlap;
  int iterations = 200;                      // Krylov iterations to simulate
  int reliable_interval = 40;                // iterations per reliable update (mixed)
  TimeBoundary time_bc = TimeBoundary::Antiperiodic;
  // fault tolerance: comm framing/retry policy, and the rollback budget for
  // modeled SDC recovery (a device flip voids the segment since the last
  // reliable update; the segment is re-run)
  sim::RetryPolicy retry{};
  int max_rollbacks = 10;
};

struct ModeledSolverResult {
  bool fits = true;               // device memory gate (footprint vs capacity)
  std::int64_t footprint_bytes = 0;
  std::int64_t gauge_footprint_bytes = 0; // gauge slice of the footprint (recon-aware)
  double time_us = 0;             // simulated makespan of the solve
  double effective_gflops = 0;    // aggregate sustained effective Gflops
  int iterations = 0;             // iterations executed (incl. re-run segments)
  int rollbacks = 0;              // SDC rollbacks (re-run reliable segments)
  sim::FaultCounters faults{};    // injection/recovery totals over all ranks
  bool traced = false;            // tracing was on; `metrics` is meaningful
  trace::Metrics metrics{};       // aggregated trace metrics of the solve
  trace::CritSummary critpath{};  // critical-path attribution (traced runs)
  telemetry::TelemetryReport telemetry{}; // flight recorder (QUDA_SIM_TELEMETRY)
};

// run the modeled solve on `cluster` (one rank per GPU); returns aggregate
// performance in the paper's effective-Gflops metric
ModeledSolverResult run_modeled_solver(sim::VirtualCluster& cluster,
                                       const ModeledSolverConfig& config);

} // namespace quda::parallel
