#include "parallel/halo_dslash.h"

#include <cstring>
#include <stdexcept>

namespace quda::parallel {

namespace {

template <typename P> using Face = FaceBuffer<P>;

// serialize a face buffer (payload + norms) for the wire; Modeled mode
// ships an empty payload -- the network model charges the modeled bytes
// either way
template <typename P>
std::vector<std::byte> serialize(const Face<P>& buf) {
  std::vector<std::byte> payload;
  const std::size_t data_bytes = buf.data.size() * sizeof(typename P::store_t);
  const std::size_t norm_bytes = buf.norm.size() * sizeof(float);
  payload.resize(data_bytes + norm_bytes);
  if (data_bytes > 0) std::memcpy(payload.data(), buf.data.data(), data_bytes);
  if (norm_bytes > 0) std::memcpy(payload.data() + data_bytes, buf.norm.data(), norm_bytes);
  return payload;
}

template <typename P>
void deserialize(const std::vector<std::byte>& payload, std::int64_t face_sites, Face<P>* buf) {
  if (buf == nullptr || payload.empty()) return;
  buf->resize(face_sites);
  const std::size_t data_bytes = buf->data.size() * sizeof(typename P::store_t);
  const std::size_t norm_bytes = buf->norm.size() * sizeof(float);
  if (payload.size() != data_bytes + norm_bytes)
    throw std::runtime_error("face payload size mismatch");
  std::memcpy(buf->data.data(), payload.data(), data_bytes);
  if (norm_bytes > 0) std::memcpy(buf->norm.data(), payload.data() + data_bytes, norm_bytes);
}

// the per-dimension exchange bookkeeping of one halo application
template <typename P> struct DimExchange {
  int mu = 0;
  std::int64_t face_bytes = 0;
  Face<P> send_back, send_fwd;   // outgoing projected faces
  Face<P> ghost_back, ghost_fwd; // received faces
  sim::RankContext::PendingRecv recv_fwd_ghost{};  // from the forward neighbor
  sim::RankContext::PendingRecv recv_back_ghost{}; // from the backward neighbor
};

} // namespace

std::int64_t interior_sites(const Geometry& local, const PartitionMask& mask) {
  std::int64_t count = 1;
  for (int mu = 0; mu < 4; ++mu) {
    const int len = local.dims()[mu];
    count *= mask[static_cast<std::size_t>(mu)] ? (len - 2) : len;
  }
  return count / 2;
}

template <typename P>
void halo_dslash(comm::QmpGrid& grid, const Geometry& local, const HaloDslashConfig& cfg,
                 HaloFields<P> f) {
  const Precision prec = P::value;
  const bool real = cfg.exec == Execution::Real;
  if (real && (f.out == nullptr || f.gauge == nullptr || f.in == nullptr))
    throw std::invalid_argument("Real execution requires fields");

  auto& ctx = grid.context();
  auto& dev = ctx.device();
  auto& tracer = ctx.tracer();
  double& clk = ctx.clock().now_us;
  const double op_begin_us = clk;

  const std::int64_t vh = local.half_volume();
  using real_t = typename P::real_t;

  DslashOptions opt;
  opt.out_parity = cfg.out_parity;
  const double bc = cfg.time_bc == TimeBoundary::Antiperiodic ? -1.0 : 1.0;
  opt.bc_backward = grid.owns_global_edge(3, -1) ? bc : 1.0;
  opt.bc_forward = grid.owns_global_edge(3, +1) ? bc : 1.0;

  // dimensions cut by the rank grid
  std::vector<DimExchange<P>> cuts;
  PartitionMask mask{};
  for (int mu = 0; mu < 4; ++mu) {
    if (!grid.partitioned(mu)) continue;
    const int len = local.dims()[mu];
    if (len < 2 || len % 2 != 0)
      throw std::invalid_argument("cut dimensions need even local extent >= 2");
    mask[static_cast<std::size_t>(mu)] = true;
    opt.ghost[static_cast<std::size_t>(mu)] = true;
    DimExchange<P> d;
    d.mu = mu;
    d.face_bytes = perf::face_bytes(prec, local.face_sites(mu));
    cuts.push_back(std::move(d));
  }

  // ---- no cut dimensions: plain local kernel with periodic wrap -------------
  if (cuts.empty()) {
    auto cost = perf::dslash_kernel_cost(prec, vh, cfg.reconstruct);
    cost.name = "dslash_local";
    dev.launch_kernel(clk, kInteriorStream, cost, cfg.launch, prec == Precision::Double);
    if (real)
      dslash<P>(*f.out, *f.gauge, *f.in, local, opt, 0, vh, static_cast<real_t>(cfg.scale),
                cfg.accumulate);
    clk = dev.device_synchronize(clk);
    tracer.span(trace::Cat::Op, "halo_dslash", trace::kTrackHost, op_begin_us, clk);
    return;
  }

  const Parity in_parity = other(cfg.out_parity);
  const int d2h_copies = perf::face_copy_blocks(prec);
  const int h2d_copies = perf::ghost_upload_copies(prec);

  // gather the outgoing faces (host-side mirror of the device block copies):
  // the backward-traveling face is our first slice, P-mu projected (it
  // becomes the backward neighbor's Forward ghost); the forward-traveling
  // face is our last slice, P+mu projected
  if (real) {
    for (auto& d : cuts) {
      pack_face(*f.in, local, in_parity, d.mu, 0, -1, d.send_back);
      pack_face(*f.in, local, in_parity, d.mu, local.dims()[d.mu] - 1, +1, d.send_fwd);
      tracer.instant(trace::Cat::Op, "pack_face", trace::kTrackHost, clk, 2 * d.face_bytes, -1,
                     d.mu);
    }
  }

  std::int64_t halo_bytes_total = 0;
  for (const auto& d : cuts) halo_bytes_total += 2 * d.face_bytes;

  // post all receives first (MPI_Irecv before the sends, as QUDA/QMP does)
  for (auto& d : cuts) {
    d.recv_fwd_ghost = grid.post_receive(d.mu, +1, face_tag(d.mu, -1));
    d.recv_back_ghost = grid.post_receive(d.mu, -1, face_tag(d.mu, +1));
  }

  if (cfg.policy == CommPolicy::NoOverlap) {
    // ---- Section VI-D1: all communication up front, then one kernel --------
    const double comm_begin_us = clk;
    for (auto& d : cuts) {
      for (int k = 0; k < d2h_copies; ++k)
        clk = dev.memcpy_sync(clk, d.face_bytes / d2h_copies, gpusim::CopyDir::DeviceToHost);
      grid.send_to(d.mu, -1, face_tag(d.mu, -1),
                   real ? serialize<P>(d.send_back) : std::vector<std::byte>{}, d.face_bytes);
      for (int k = 0; k < d2h_copies; ++k)
        clk = dev.memcpy_sync(clk, d.face_bytes / d2h_copies, gpusim::CopyDir::DeviceToHost);
      grid.send_to(d.mu, +1, face_tag(d.mu, +1),
                   real ? serialize<P>(d.send_fwd) : std::vector<std::byte>{}, d.face_bytes);
    }

    for (auto& d : cuts) {
      std::vector<std::byte> payload = grid.wait_receive(d.recv_back_ghost);
      for (int k = 0; k < h2d_copies; ++k)
        clk = dev.memcpy_sync(clk, d.face_bytes / h2d_copies, gpusim::CopyDir::HostToDevice);
      if (real) {
        deserialize<P>(payload, local.face_sites(d.mu), &d.ghost_back);
        unpack_ghost(*f.in, local, d.mu, GhostFace::Backward, d.ghost_back);
      }

      payload = grid.wait_receive(d.recv_fwd_ghost);
      for (int k = 0; k < h2d_copies; ++k)
        clk = dev.memcpy_sync(clk, d.face_bytes / h2d_copies, gpusim::CopyDir::HostToDevice);
      if (real) {
        deserialize<P>(payload, local.face_sites(d.mu), &d.ghost_fwd);
        unpack_ghost(*f.in, local, d.mu, GhostFace::Forward, d.ghost_fwd);
      }
    }
    tracer.span(trace::Cat::Comm, "halo_comm", trace::kTrackComm, comm_begin_us, clk,
                halo_bytes_total);

    // one kernel over the entire local volume
    auto cost = perf::dslash_kernel_cost(prec, vh, cfg.reconstruct);
    cost.name = "dslash_local";
    clk = dev.launch_kernel(clk, kInteriorStream, cost, cfg.launch, prec == Precision::Double);
    if (real)
      dslash<P>(*f.out, *f.gauge, *f.in, local, opt, 0, vh, static_cast<real_t>(cfg.scale),
                cfg.accumulate);
    clk = dev.device_synchronize(clk);
    tracer.span(trace::Cat::Op, "halo_dslash", trace::kTrackHost, op_begin_us, clk);
    return;
  }

  // ---- Section VI-D2: overlap communication with the interior kernel --------

  const std::int64_t n_interior = interior_sites(local, mask);
  if (n_interior > 0) {
    auto cost = perf::dslash_kernel_cost(prec, n_interior, cfg.reconstruct);
    cost.name = "dslash_interior";
    clk = dev.launch_kernel(clk, kInteriorStream, cost, cfg.launch, prec == Precision::Double);
    if (real)
      dslash<P>(*f.out, *f.gauge, *f.in, local, opt, 0, vh, static_cast<real_t>(cfg.scale),
                cfg.accumulate, KernelRegion::Interior);
  }
  const double comm_begin_us = clk;

  // per cut dimension: async face downloads (stream 1 carries the
  // backward-traveling face, stream 2 the forward one), each followed by its
  // MPI send as soon as its stream has drained -- the backward send overlaps
  // the forward download (the pipeline of Section VI-D2)
  for (auto& d : cuts) {
    for (int k = 0; k < d2h_copies; ++k)
      clk = dev.memcpy_async(clk, kBackwardFaceStream, d.face_bytes / d2h_copies,
                             gpusim::CopyDir::DeviceToHost);
    for (int k = 0; k < d2h_copies; ++k)
      clk = dev.memcpy_async(clk, kForwardFaceStream, d.face_bytes / d2h_copies,
                             gpusim::CopyDir::DeviceToHost);

    clk = dev.stream_synchronize(clk, kBackwardFaceStream);
    grid.send_to(d.mu, -1, face_tag(d.mu, -1),
                 real ? serialize<P>(d.send_back) : std::vector<std::byte>{}, d.face_bytes);
    clk = dev.stream_synchronize(clk, kForwardFaceStream);
    grid.send_to(d.mu, +1, face_tag(d.mu, +1),
                 real ? serialize<P>(d.send_fwd) : std::vector<std::byte>{}, d.face_bytes);
  }

  // receive and upload the ghosts; each face goes up on its stream
  for (auto& d : cuts) {
    std::vector<std::byte> payload = grid.wait_receive(d.recv_fwd_ghost);
    if (real) {
      deserialize<P>(payload, local.face_sites(d.mu), &d.ghost_fwd);
      unpack_ghost(*f.in, local, d.mu, GhostFace::Forward, d.ghost_fwd);
    }
    for (int k = 0; k < h2d_copies; ++k)
      clk = dev.memcpy_async(clk, kBackwardFaceStream, d.face_bytes / h2d_copies,
                             gpusim::CopyDir::HostToDevice);

    payload = grid.wait_receive(d.recv_back_ghost);
    if (real) {
      deserialize<P>(payload, local.face_sites(d.mu), &d.ghost_back);
      unpack_ghost(*f.in, local, d.mu, GhostFace::Backward, d.ghost_back);
    }
    for (int k = 0; k < h2d_copies; ++k)
      clk = dev.memcpy_async(clk, kForwardFaceStream, d.face_bytes / h2d_copies,
                             gpusim::CopyDir::HostToDevice);
  }
  tracer.span(trace::Cat::Comm, "halo_comm", trace::kTrackComm, comm_begin_us, clk,
              halo_bytes_total);

  // boundary kernel: waits (in-stream) for the interior kernel and the
  // ghost uploads, then updates every site on a cut edge
  dev.stream_wait_stream(kInteriorStream, kBackwardFaceStream);
  dev.stream_wait_stream(kInteriorStream, kForwardFaceStream);
  auto boundary_cost = perf::dslash_kernel_cost(prec, vh - n_interior, cfg.reconstruct);
  boundary_cost.name = "dslash_boundary";
  clk = dev.launch_kernel(clk, kInteriorStream, boundary_cost, cfg.launch,
                          prec == Precision::Double);
  if (real)
    dslash<P>(*f.out, *f.gauge, *f.in, local, opt, 0, vh, static_cast<real_t>(cfg.scale),
              cfg.accumulate, KernelRegion::Boundary);
  clk = dev.device_synchronize(clk);
  tracer.span(trace::Cat::Op, "halo_dslash", trace::kTrackHost, op_begin_us, clk);
}

template <typename P>
void exchange_gauge_ghost(comm::QmpGrid& grid, const Geometry& local, GaugeField<P>* gauge,
                          Execution exec, Reconstruct recon) {
  if (!grid.is_parallel()) return;
  const bool real = exec == Execution::Real;
  if (real && gauge == nullptr)
    throw std::invalid_argument("Real execution requires a gauge field");
  // the field itself is authoritative when present; `recon` parameterizes
  // the Modeled byte charge
  if (real) recon = gauge->reconstruct();
  const int wire = gauge_wire_reals(recon);

  auto& ctx = grid.context();
  auto& dev = ctx.device();
  double& clk = ctx.clock().now_us;
  const double op_begin_us = clk;

  for (int mu = 0; mu < 4; ++mu) {
    if (!grid.partitioned(mu)) continue;
    const std::int64_t fs = local.face_sites(mu);
    const std::int64_t bytes = fs * 2 * wire * bytes_per_real(P::value);

    GaugeFaceBuffer<P> out_buf;
    if (real) pack_gauge_face(*gauge, local, mu, local.dims()[mu] - 1, out_buf);

    auto pending = grid.post_receive(mu, -1, gauge_tag(mu));

    // download the face, ship it forward, upload the received ghost into the pad
    clk = dev.memcpy_sync(clk, bytes, gpusim::CopyDir::DeviceToHost);
    std::vector<std::byte> payload;
    if (real) {
      payload.resize(out_buf.data.size() * sizeof(typename P::store_t));
      std::memcpy(payload.data(), out_buf.data.data(), payload.size());
    }
    // route through the grid so the gauge exchange gets the same framing,
    // checksum verification, and bounded retry as the spinor halos
    grid.send_to(mu, +1, gauge_tag(mu), std::move(payload), bytes);

    const std::vector<std::byte> in_payload = grid.wait_receive(pending);
    clk = dev.memcpy_sync(clk, bytes, gpusim::CopyDir::HostToDevice);
    if (real) {
      GaugeFaceBuffer<P> in_buf;
      in_buf.resize(fs, wire);
      if (in_payload.size() != in_buf.data.size() * sizeof(typename P::store_t))
        throw std::runtime_error("gauge ghost payload size mismatch");
      std::memcpy(in_buf.data.data(), in_payload.data(), in_payload.size());
      unpack_gauge_ghost(*gauge, local, mu, in_buf);
    }
  }
  ctx.tracer().span(trace::Cat::Op, "gauge_exchange", trace::kTrackHost, op_begin_us, clk);
}

#define QUDA_INSTANTIATE_HALO(P)                                                                  \
  template void halo_dslash<P>(comm::QmpGrid&, const Geometry&, const HaloDslashConfig&,          \
                               HaloFields<P>);                                                    \
  template void exchange_gauge_ghost<P>(comm::QmpGrid&, const Geometry&, GaugeField<P>*,          \
                                        Execution, Reconstruct);

QUDA_INSTANTIATE_HALO(PrecDouble)
QUDA_INSTANTIATE_HALO(PrecSingle)
QUDA_INSTANTIATE_HALO(PrecHalf)

#undef QUDA_INSTANTIATE_HALO

} // namespace quda::parallel
