#pragma once
// Euclidean gamma matrices, spin projectors, and basis rotations.
//
// Two bases are supported:
//
//  * GammaBasis::DeGrandRossi -- the "conventional chiral basis" used by
//    Chroma/QDP++ at the library interface (gamma_5 diagonal).
//  * GammaBasis::NonRelativistic -- QUDA's internal basis, in which the
//    temporal projectors P(+/-)4 = 1 +/- gamma_4 are *diagonal*
//    (equation (6) of the paper).  This halves the data transferred for
//    temporal gathers -- exactly the property the multi-GPU time-slicing
//    decomposition exploits.
//
// The unitary intertwiner S with  gamma^NR_mu = S gamma^DR_mu S^dag  is
// derived *numerically* from the two representations (Schur averaging over
// the finite Clifford group), rather than hand-coded, so the basis change
// used at the API boundary is correct by construction and checked by tests.
//
// Hot-path kernels never touch dense 4x4 spin matrices: the projector
// structure in the internal basis is encoded as 2x2 spin blocks
// (gamma_k = [[0, b_k], [b_k^dag, 0]], gamma_4 = diag(1,1,-1,-1)) so that
// projection produces 12 numbers and reconstruction is a 2x2 spin rotation.

#include "su3/complex.h"
#include "su3/spinor.h"

#include <array>
#include <cstddef>

namespace quda {

enum class GammaBasis { DeGrandRossi, NonRelativistic };

// dense 4x4 complex spin matrix (reference paths, clover construction, tests)
struct SpinMatrix {
  std::array<std::array<complexd, 4>, 4> e{};

  complexd& operator()(std::size_t r, std::size_t c) { return e[r][c]; }
  const complexd& operator()(std::size_t r, std::size_t c) const { return e[r][c]; }

  static SpinMatrix identity();
  static SpinMatrix zero() { return {}; }

  SpinMatrix& operator+=(const SpinMatrix& o);
  SpinMatrix& operator-=(const SpinMatrix& o);
  SpinMatrix& operator*=(const complexd& a);
  friend SpinMatrix operator+(SpinMatrix a, const SpinMatrix& b) { return a += b; }
  friend SpinMatrix operator-(SpinMatrix a, const SpinMatrix& b) { return a -= b; }
  friend SpinMatrix operator*(const SpinMatrix& a, const SpinMatrix& b);
  friend SpinMatrix operator*(SpinMatrix a, const complexd& s) { return a *= s; }
};

SpinMatrix adjoint(const SpinMatrix& m);
double frobenius_dist2(const SpinMatrix& a, const SpinMatrix& b);

// Apply a dense spin matrix to the spin index of a spinor (color untouched).
template <typename T>
Spinor<T> apply_spin(const SpinMatrix& m, const Spinor<T>& p) {
  Spinor<T> out;
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 4; ++c) {
      const Complex<T> w(static_cast<T>(m.e[r][c].re), static_cast<T>(m.e[r][c].im));
      if (w.re == T(0) && w.im == T(0)) continue;
      for (std::size_t col = 0; col < 3; ++col) cmad(out.s[r][col], w, p.s[c][col]);
    }
  return out;
}

// --- dense tables -----------------------------------------------------------

// gamma_mu in the given basis; mu in [0,4): 0..2 spatial, 3 temporal.
const SpinMatrix& gamma(GammaBasis basis, int mu);
// gamma_5 = gamma_1 gamma_2 gamma_3 gamma_4 in the given basis.
const SpinMatrix& gamma5(GammaBasis basis);
// sigma_{mu,nu} = (i/2)[gamma_mu, gamma_nu] in the given basis.
SpinMatrix sigma_munu(GammaBasis basis, int mu, int nu);
// projector P = 1 + sign*gamma_mu (sign = +1 or -1), dense form.
SpinMatrix projector(GammaBasis basis, int mu, int sign);

// Unitary S with gamma^NR = S gamma^DR S^dag.  Row-major 4x4.
const SpinMatrix& basis_rotation_dr_to_nr();

// Unitary W whose columns are gamma_5 eigenvectors in the internal basis:
// W^dag gamma_5^NR W = diag(+1, +1, -1, -1).  The clover term commutes with
// gamma_5 and is applied as two 6x6 blocks in this eigenbasis; spinors are
// rotated by W^dag / W around the block application.
const SpinMatrix& chiral_transform();

// Rotate a spinor between bases at the API boundary.
template <typename T>
Spinor<T> rotate_basis(GammaBasis from, GammaBasis to, const Spinor<T>& p) {
  if (from == to) return p;
  const SpinMatrix& s = basis_rotation_dr_to_nr();
  if (from == GammaBasis::DeGrandRossi) return apply_spin(s, p);
  return apply_spin(adjoint(s), p);
}

// --- fast projection in the internal (NonRelativistic) basis ---------------

// 2x2 complex spin block, the off-diagonal block b_k of gamma_k.
struct Mat2 {
  std::array<std::array<complexd, 2>, 2> e{};
};

// b_mu for mu in 0..2 (for mu==3 the projector is diagonal and no spin
// rotation is needed).
const Mat2& gamma_spatial_block(int mu);

namespace detail {
// h = b * v acting on the spin index of a half spinor, possibly scaled.
template <typename T>
inline HalfSpinor<T> apply_block(const Mat2& b, const HalfSpinor<T>& v, T scale) {
  HalfSpinor<T> out;
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 2; ++c) {
      const Complex<T> w(static_cast<T>(b.e[r][c].re) * scale,
                         static_cast<T>(b.e[r][c].im) * scale);
      if (w.re == T(0) && w.im == T(0)) continue;
      for (std::size_t col = 0; col < 3; ++col) cmad(out.s[r][col], w, v.s[c][col]);
    }
  return out;
}
template <typename T>
inline HalfSpinor<T> apply_block_dag(const Mat2& b, const HalfSpinor<T>& v, T scale) {
  HalfSpinor<T> out;
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 2; ++c) {
      // (b^dag)_{rc} = conj(b_{cr})
      const Complex<T> w(static_cast<T>(b.e[c][r].re) * scale,
                         static_cast<T>(-b.e[c][r].im) * scale);
      if (w.re == T(0) && w.im == T(0)) continue;
      for (std::size_t col = 0; col < 3; ++col) cmad(out.s[r][col], w, v.s[c][col]);
    }
  return out;
}
} // namespace detail

// Project: h = top two spin components of (1 + sign*gamma_mu) psi, in the
// internal basis.  The output is 12 numbers -- the quantity communicated in
// the face exchange.
//
// For spatial mu: (P psi)_upper = psi_u + sign * b_mu psi_l.
// For temporal mu (gamma_4 diagonal): P+4 psi = (2 psi_0, 2 psi_1, 0, 0) and
// P-4 psi = (0, 0, 2 psi_2, 2 psi_3); we transport the nonzero half.
template <typename T>
inline HalfSpinor<T> project(int mu, int sign, const Spinor<T>& p) {
  HalfSpinor<T> h;
  if (mu == 3) {
    const std::size_t base = (sign > 0) ? 0 : 2;
    h.s[0] = p.s[base] * T(2);
    h.s[1] = p.s[base + 1] * T(2);
    return h;
  }
  HalfSpinor<T> lower;
  lower.s[0] = p.s[2];
  lower.s[1] = p.s[3];
  const HalfSpinor<T> rot = detail::apply_block(gamma_spatial_block(mu), lower,
                                                static_cast<T>(sign));
  h.s[0] = p.s[0] + rot.s[0];
  h.s[1] = p.s[1] + rot.s[1];
  return h;
}

// Reconstruct: out += R(h), the rank-2 completion of the projector.
// For spatial mu: out_u += h; out_l += sign * b_mu^dag h.
// For temporal mu: out_{upper or lower} += h depending on sign.
template <typename T>
inline void reconstruct_add(int mu, int sign, const HalfSpinor<T>& h, Spinor<T>& out) {
  if (mu == 3) {
    const std::size_t base = (sign > 0) ? 0 : 2;
    out.s[base] += h.s[0];
    out.s[base + 1] += h.s[1];
    return;
  }
  out.s[0] += h.s[0];
  out.s[1] += h.s[1];
  const HalfSpinor<T> rot = detail::apply_block_dag(gamma_spatial_block(mu), h,
                                                    static_cast<T>(sign));
  out.s[2] += rot.s[0];
  out.s[3] += rot.s[1];
}

} // namespace quda
