#pragma once
// Color-spinors: the per-site degrees of freedom of a quark field.
//
// A (full) spinor has 4 spin x 3 color complex components = 24 reals.
// A half-spinor -- the result of applying a spin projector P = 1 +/- gamma_mu
// and keeping only the two independent spin components -- has 12 reals.
// The 24 -> 12 compression is what makes the multi-GPU face exchange cheap
// (Section VI-C, footnote 3 of the paper).

#include "su3/complex.h"
#include "su3/su3.h"

#include <array>
#include <cstddef>

namespace quda {

template <typename T> struct Spinor {
  std::array<ColorVector<T>, 4> s{}; // spin index outer, color inner

  constexpr ColorVector<T>& operator[](std::size_t spin) { return s[spin]; }
  constexpr const ColorVector<T>& operator[](std::size_t spin) const { return s[spin]; }

  constexpr Complex<T>& at(std::size_t spin, std::size_t color) { return s[spin][color]; }
  constexpr const Complex<T>& at(std::size_t spin, std::size_t color) const {
    return s[spin][color];
  }

  constexpr Spinor& operator+=(const Spinor& o) {
    for (std::size_t i = 0; i < 4; ++i) s[i] += o.s[i];
    return *this;
  }
  constexpr Spinor& operator-=(const Spinor& o) {
    for (std::size_t i = 0; i < 4; ++i) s[i] -= o.s[i];
    return *this;
  }
  constexpr Spinor& operator*=(T a) {
    for (std::size_t i = 0; i < 4; ++i) s[i] *= a;
    return *this;
  }
  constexpr Spinor& operator*=(const Complex<T>& a) {
    for (std::size_t i = 0; i < 4; ++i) s[i] *= a;
    return *this;
  }
  friend constexpr Spinor operator+(Spinor a, const Spinor& b) { return a += b; }
  friend constexpr Spinor operator-(Spinor a, const Spinor& b) { return a -= b; }
  friend constexpr Spinor operator*(Spinor a, T s) { return a *= s; }
  friend constexpr Spinor operator*(T s, Spinor a) { return a *= s; }
};

template <typename T> struct HalfSpinor {
  std::array<ColorVector<T>, 2> s{};

  constexpr ColorVector<T>& operator[](std::size_t spin) { return s[spin]; }
  constexpr const ColorVector<T>& operator[](std::size_t spin) const { return s[spin]; }
};

template <typename T> inline T norm2(const Spinor<T>& p) {
  T n = 0;
  for (std::size_t i = 0; i < 4; ++i) n += norm2(p.s[i]);
  return n;
}

template <typename T> inline Complex<T> dot(const Spinor<T>& a, const Spinor<T>& b) {
  Complex<T> d{};
  for (std::size_t i = 0; i < 4; ++i) d += dot(a.s[i], b.s[i]);
  return d;
}

// max |real component| over the 24 reals; this is the normalization QUDA
// shares across a spinor's elements in half precision (Section V-C3).
template <typename T> inline T max_abs(const Spinor<T>& p) {
  T m = 0;
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t c = 0; c < 3; ++c) {
      const T r = std::abs(p.s[i][c].re), im = std::abs(p.s[i][c].im);
      if (r > m) m = r;
      if (im > m) m = im;
    }
  return m;
}

// U acting on color index of every spin component.
template <typename T>
constexpr HalfSpinor<T> operator*(const SU3<T>& u, const HalfSpinor<T>& h) {
  HalfSpinor<T> o;
  o.s[0] = u * h.s[0];
  o.s[1] = u * h.s[1];
  return o;
}

template <typename T>
constexpr HalfSpinor<T> adj_mul(const SU3<T>& u, const HalfSpinor<T>& h) {
  HalfSpinor<T> o;
  o.s[0] = adj_mul(u, h.s[0]);
  o.s[1] = adj_mul(u, h.s[1]);
  return o;
}

template <typename T> constexpr Spinor<T> operator*(const SU3<T>& u, const Spinor<T>& p) {
  Spinor<T> o;
  for (std::size_t i = 0; i < 4; ++i) o.s[i] = u * p.s[i];
  return o;
}

// precision conversion
template <typename To, typename From>
constexpr Spinor<To> convert(const Spinor<From>& p) {
  Spinor<To> o;
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t c = 0; c < 3; ++c)
      o.s[i][c] = Complex<To>(static_cast<To>(p.s[i][c].re), static_cast<To>(p.s[i][c].im));
  return o;
}

template <typename To, typename From> constexpr SU3<To> convert(const SU3<From>& m) {
  SU3<To> o;
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c)
      o.e[r][c] = Complex<To>(static_cast<To>(m.e[r][c].re), static_cast<To>(m.e[r][c].im));
  return o;
}

} // namespace quda
