#pragma once
// Lightweight complex arithmetic for LQCD kernels.
//
// We deliberately avoid std::complex in the hot kernels: its operator*
// performs NaN/Inf fix-ups mandated by Annex G unless -ffast-math is in
// effect, and we want identical, predictable code generation in every
// translation unit.  The type is layout-compatible with std::complex<T>
// (two consecutive reals), so fields can be reinterpreted for I/O.

#include <cmath>
#include <iosfwd>
#include <ostream>

namespace quda {

template <typename T> struct Complex {
  T re{};
  T im{};

  constexpr Complex() = default;
  constexpr Complex(T r, T i) : re(r), im(i) {}
  constexpr explicit Complex(T r) : re(r), im(0) {}

  template <typename U>
  constexpr explicit Complex(const Complex<U>& o)
      : re(static_cast<T>(o.re)), im(static_cast<T>(o.im)) {}

  constexpr Complex& operator+=(const Complex& o) {
    re += o.re;
    im += o.im;
    return *this;
  }
  constexpr Complex& operator-=(const Complex& o) {
    re -= o.re;
    im -= o.im;
    return *this;
  }
  constexpr Complex& operator*=(const Complex& o) {
    const T r = re * o.re - im * o.im;
    const T i = re * o.im + im * o.re;
    re = r;
    im = i;
    return *this;
  }
  constexpr Complex& operator*=(T s) {
    re *= s;
    im *= s;
    return *this;
  }

  friend constexpr Complex operator+(Complex a, const Complex& b) { return a += b; }
  friend constexpr Complex operator-(Complex a, const Complex& b) { return a -= b; }
  friend constexpr Complex operator*(Complex a, const Complex& b) { return a *= b; }
  friend constexpr Complex operator*(Complex a, T s) { return a *= s; }
  friend constexpr Complex operator*(T s, Complex a) { return a *= s; }
  friend constexpr Complex operator-(const Complex& a) { return {-a.re, -a.im}; }

  friend constexpr Complex operator/(const Complex& a, const Complex& b) {
    const T d = b.re * b.re + b.im * b.im;
    return {(a.re * b.re + a.im * b.im) / d, (a.im * b.re - a.re * b.im) / d};
  }
  friend constexpr Complex operator/(const Complex& a, T s) { return {a.re / s, a.im / s}; }

  friend constexpr bool operator==(const Complex& a, const Complex& b) {
    return a.re == b.re && a.im == b.im;
  }
};

template <typename T> constexpr Complex<T> conj(const Complex<T>& a) { return {a.re, -a.im}; }
template <typename T> constexpr T norm2(const Complex<T>& a) { return a.re * a.re + a.im * a.im; }
template <typename T> inline T abs(const Complex<T>& a) { return std::sqrt(norm2(a)); }

// a * b with a conjugated: conj(a) * b — common enough in SU(3) kernels to name.
template <typename T>
constexpr Complex<T> conj_mul(const Complex<T>& a, const Complex<T>& b) {
  return {a.re * b.re + a.im * b.im, a.re * b.im - a.im * b.re};
}

// fused multiply-accumulate: acc += a * b
template <typename T>
constexpr void cmad(Complex<T>& acc, const Complex<T>& a, const Complex<T>& b) {
  acc.re += a.re * b.re - a.im * b.im;
  acc.im += a.re * b.im + a.im * b.re;
}

// acc += conj(a) * b
template <typename T>
constexpr void conj_cmad(Complex<T>& acc, const Complex<T>& a, const Complex<T>& b) {
  acc.re += a.re * b.re + a.im * b.im;
  acc.im += a.re * b.im - a.im * b.re;
}

// multiplication by ±i without forming a temporary complex constant
template <typename T> constexpr Complex<T> times_i(const Complex<T>& a) { return {-a.im, a.re}; }
template <typename T> constexpr Complex<T> times_minus_i(const Complex<T>& a) { return {a.im, -a.re}; }

template <typename T>
std::ostream& operator<<(std::ostream& os, const Complex<T>& c) {
  return os << "(" << c.re << (c.im < 0 ? "" : "+") << c.im << "i)";
}

using complexd = Complex<double>;
using complexf = Complex<float>;

} // namespace quda
