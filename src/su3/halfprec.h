#pragma once
// 16-bit fixed point ("half precision") storage, Section V-C3 of the paper.
//
// On the GPU this is realized by reading signed 16-bit integers through the
// texture unit with cudaReadModeNormalizedFloat, which converts to a float
// in [-1, 1] for free.  We model exactly that storage format:
//
//  * gauge links: every element of an SU(3) matrix lies in [-1, 1] by
//    unitarity, so links are stored as raw normalized int16.
//  * spinors: stored as 24 normalized int16 sharing a single float
//    normalization (the max-abs over the spinor's 24 reals).  The shared
//    norm is motivated by the fact that applying the Wilson-clover matrix
//    mixes all color and spin components (footnote 2).
//
// Arithmetic on half-precision fields is performed in float after
// conversion, as on the GPU.

#include "su3/complex.h"
#include "su3/spinor.h"
#include "su3/su3.h"

#include <array>
#include <cstdint>
#include <limits>

namespace quda {

using half_t = std::int16_t;

inline constexpr float kHalfPointScale = 32767.0f;

// quantize a value in [-1, 1]; values outside are clamped (they can only
// arise from rounding at the interval ends).
inline half_t to_half(float x) {
  float v = x * kHalfPointScale;
  if (v > kHalfPointScale) v = kHalfPointScale;
  if (v < -kHalfPointScale) v = -kHalfPointScale;
  return static_cast<half_t>(v >= 0 ? v + 0.5f : v - 0.5f);
}

inline float from_half(half_t h) { return static_cast<float>(h) / kHalfPointScale; }

// --- spinor packing ---------------------------------------------------------

// A packed half-precision spinor: 24 normalized int16 plus one float norm.
// In the field layout the int16 payload is distributed across six short4
// blocks and the norm lives in a separate array (Section V-C3), but the
// per-site logical content is exactly this.
struct PackedSpinorHalf {
  std::array<half_t, 24> v{};
  float norm{0.0f};
};

inline PackedSpinorHalf pack_half(const Spinor<float>& s) {
  PackedSpinorHalf p;
  float m = max_abs(s);
  if (m == 0.0f) m = std::numeric_limits<float>::min(); // avoid 0/0
  p.norm = m;
  const float inv = 1.0f / m;
  std::size_t k = 0;
  for (std::size_t spin = 0; spin < 4; ++spin)
    for (std::size_t c = 0; c < 3; ++c) {
      p.v[k++] = to_half(s.s[spin][c].re * inv);
      p.v[k++] = to_half(s.s[spin][c].im * inv);
    }
  return p;
}

inline Spinor<float> unpack_half(const PackedSpinorHalf& p) {
  Spinor<float> s;
  std::size_t k = 0;
  for (std::size_t spin = 0; spin < 4; ++spin)
    for (std::size_t c = 0; c < 3; ++c) {
      const float re = from_half(p.v[k++]) * p.norm;
      const float im = from_half(p.v[k++]) * p.norm;
      s.s[spin][c] = Complex<float>(re, im);
    }
  return s;
}

// --- gauge packing (2-row compressed, 12 complex = 24 int16) ----------------

struct PackedGaugeHalf {
  std::array<half_t, 24> v{};
};

inline PackedGaugeHalf pack_half(const SU3Compressed<float>& u) {
  PackedGaugeHalf p;
  std::size_t k = 0;
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 3; ++c) {
      p.v[k++] = to_half(u.row[r][c].re);
      p.v[k++] = to_half(u.row[r][c].im);
    }
  return p;
}

inline SU3Compressed<float> unpack_half(const PackedGaugeHalf& p) {
  SU3Compressed<float> u;
  std::size_t k = 0;
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 3; ++c) {
      const float re = from_half(p.v[k++]);
      const float im = from_half(p.v[k++]);
      u.row[r][c] = Complex<float>(re, im);
    }
  return u;
}

// --- gauge packing (8-real compressed) --------------------------------------
//
// Of the eight reals (see SU3Packed8), the six matrix elements are bounded
// by [-1, 1] through unitarity and quantize like the 12-real format, but the
// two leading entries are *phases* in [-pi, pi].  They are stored divided by
// pi, which maps them exactly onto the fixed-point interval -- the
// half-precision rule the angles need that the bounded elements do not.

inline constexpr float kPhaseScale = 3.14159265358979323846f;

inline float phase_to_unit(float theta) { return theta / kPhaseScale; }
inline float unit_to_phase(float u) { return u * kPhaseScale; }

struct PackedGauge8Half {
  std::array<half_t, 8> v{};
};

inline PackedGauge8Half pack_half(const SU3Packed8<float>& p) {
  PackedGauge8Half h;
  h.v[0] = to_half(phase_to_unit(p.v[0]));
  h.v[1] = to_half(phase_to_unit(p.v[1]));
  for (std::size_t k = 2; k < 8; ++k) h.v[k] = to_half(p.v[k]);
  return h;
}

inline SU3Packed8<float> unpack_half(const PackedGauge8Half& h) {
  SU3Packed8<float> p;
  p.v[0] = unit_to_phase(from_half(h.v[0]));
  p.v[1] = unit_to_phase(from_half(h.v[1]));
  for (std::size_t k = 2; k < 8; ++k) p.v[k] = from_half(h.v[k]);
  return p;
}

// --- clover packing ---------------------------------------------------------

// Clover blocks are Hermitian with eigenvalues O(1 + csw * F); QUDA stores
// them in half precision with a shared per-site norm like spinors.  36 reals
// per chiral block.
struct PackedCloverHalf {
  std::array<half_t, 72> v{};
  float norm{0.0f};
};

} // namespace quda
