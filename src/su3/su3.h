#pragma once
// SU(3) color matrices and color vectors.
//
// A link matrix U lives on the edge between lattice sites x and x+mu and is
// a special unitary 3x3 complex matrix.  QUDA stores only the first two rows
// ("12-real" or 2-row compression) and reconstructs the third row in
// registers from the cross product of the conjugates of the first two rows
// (Section V-C1 of the paper).  Both the full and compressed representations
// are provided here.

#include "su3/complex.h"

#include <array>
#include <cmath>
#include <cstddef>
#include <limits>

namespace quda {

template <typename T> struct ColorVector {
  std::array<Complex<T>, 3> c{};

  constexpr Complex<T>& operator[](std::size_t i) { return c[i]; }
  constexpr const Complex<T>& operator[](std::size_t i) const { return c[i]; }

  constexpr ColorVector& operator+=(const ColorVector& o) {
    for (std::size_t i = 0; i < 3; ++i) c[i] += o.c[i];
    return *this;
  }
  constexpr ColorVector& operator-=(const ColorVector& o) {
    for (std::size_t i = 0; i < 3; ++i) c[i] -= o.c[i];
    return *this;
  }
  constexpr ColorVector& operator*=(T s) {
    for (std::size_t i = 0; i < 3; ++i) c[i] *= s;
    return *this;
  }
  constexpr ColorVector& operator*=(const Complex<T>& s) {
    for (std::size_t i = 0; i < 3; ++i) c[i] *= s;
    return *this;
  }
  friend constexpr ColorVector operator+(ColorVector a, const ColorVector& b) { return a += b; }
  friend constexpr ColorVector operator-(ColorVector a, const ColorVector& b) { return a -= b; }
  friend constexpr ColorVector operator*(ColorVector a, T s) { return a *= s; }
  friend constexpr ColorVector operator*(T s, ColorVector a) { return a *= s; }
};

template <typename T> inline T norm2(const ColorVector<T>& v) {
  T s = 0;
  for (std::size_t i = 0; i < 3; ++i) s += norm2(v.c[i]);
  return s;
}

// Hermitian inner product <a, b> = sum_i conj(a_i) b_i.
template <typename T>
inline Complex<T> dot(const ColorVector<T>& a, const ColorVector<T>& b) {
  Complex<T> s{};
  for (std::size_t i = 0; i < 3; ++i) conj_cmad(s, a.c[i], b.c[i]);
  return s;
}

template <typename T> struct SU3 {
  // row-major: e[row][col]
  std::array<std::array<Complex<T>, 3>, 3> e{};

  constexpr Complex<T>& operator()(std::size_t r, std::size_t c) { return e[r][c]; }
  constexpr const Complex<T>& operator()(std::size_t r, std::size_t c) const { return e[r][c]; }

  static constexpr SU3 identity() {
    SU3 m;
    for (std::size_t i = 0; i < 3; ++i) m.e[i][i] = Complex<T>(T(1));
    return m;
  }

  constexpr SU3& operator+=(const SU3& o) {
    for (std::size_t r = 0; r < 3; ++r)
      for (std::size_t c = 0; c < 3; ++c) e[r][c] += o.e[r][c];
    return *this;
  }
  constexpr SU3& operator*=(T s) {
    for (std::size_t r = 0; r < 3; ++r)
      for (std::size_t c = 0; c < 3; ++c) e[r][c] *= s;
    return *this;
  }
  friend constexpr SU3 operator+(SU3 a, const SU3& b) { return a += b; }
  friend constexpr SU3 operator*(SU3 a, T s) { return a *= s; }
};

template <typename T> constexpr SU3<T> adjoint(const SU3<T>& m) {
  SU3<T> a;
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c) a.e[r][c] = conj(m.e[c][r]);
  return a;
}

template <typename T> constexpr SU3<T> operator*(const SU3<T>& a, const SU3<T>& b) {
  SU3<T> m;
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c) {
      Complex<T> s{};
      for (std::size_t k = 0; k < 3; ++k) cmad(s, a.e[r][k], b.e[k][c]);
      m.e[r][c] = s;
    }
  return m;
}

// U * v
template <typename T>
constexpr ColorVector<T> operator*(const SU3<T>& m, const ColorVector<T>& v) {
  ColorVector<T> o;
  for (std::size_t r = 0; r < 3; ++r) {
    Complex<T> s{};
    for (std::size_t k = 0; k < 3; ++k) cmad(s, m.e[r][k], v.c[k]);
    o.c[r] = s;
  }
  return o;
}

// U^dagger * v without forming the adjoint ("matrix conjugation performed at
// no cost through register relabeling", Section V-B).
template <typename T>
constexpr ColorVector<T> adj_mul(const SU3<T>& m, const ColorVector<T>& v) {
  ColorVector<T> o;
  for (std::size_t r = 0; r < 3; ++r) {
    Complex<T> s{};
    for (std::size_t k = 0; k < 3; ++k) conj_cmad(s, m.e[k][r], v.c[k]);
    o.c[r] = s;
  }
  return o;
}

template <typename T> constexpr Complex<T> det(const SU3<T>& m) {
  return m.e[0][0] * (m.e[1][1] * m.e[2][2] - m.e[1][2] * m.e[2][1]) -
         m.e[0][1] * (m.e[1][0] * m.e[2][2] - m.e[1][2] * m.e[2][0]) +
         m.e[0][2] * (m.e[1][0] * m.e[2][1] - m.e[1][1] * m.e[2][0]);
}

// Frobenius distance^2 between two matrices; used by the unitarity tests.
template <typename T> inline T frobenius_dist2(const SU3<T>& a, const SU3<T>& b) {
  T s = 0;
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c) s += norm2(a.e[r][c] - b.e[r][c]);
  return s;
}

// --- 2-row ("12-real") gauge compression -----------------------------------

// Compressed representation: the first two rows only.
template <typename T> struct SU3Compressed {
  std::array<std::array<Complex<T>, 3>, 2> row{};
};

template <typename T> constexpr SU3Compressed<T> compress(const SU3<T>& m) {
  SU3Compressed<T> c;
  c.row[0] = m.e[0];
  c.row[1] = m.e[1];
  return c;
}

// Third row from unitarity: row2 = conj(row0 x row1).
template <typename T>
constexpr std::array<Complex<T>, 3> reconstruct_third_row(
    const std::array<Complex<T>, 3>& r0, const std::array<Complex<T>, 3>& r1) {
  std::array<Complex<T>, 3> r2;
  r2[0] = conj(r0[1] * r1[2] - r0[2] * r1[1]);
  r2[1] = conj(r0[2] * r1[0] - r0[0] * r1[2]);
  r2[2] = conj(r0[0] * r1[1] - r0[1] * r1[0]);
  return r2;
}

template <typename T> constexpr SU3<T> decompress(const SU3Compressed<T>& c) {
  SU3<T> m;
  m.e[0] = c.row[0];
  m.e[1] = c.row[1];
  m.e[2] = reconstruct_third_row(c.row[0], c.row[1]);
  return m;
}

// --- 8-real gauge compression ----------------------------------------------
//
// The minimal practical parameterization (Clark et al., arXiv:0911.3191):
// store the phases of U00 and U20 plus the complex elements U01, U02, U10 --
// eight reals per link.  Unitarity fixes the magnitudes |U00| and |U20| (row
// 0 and column 0 are unit vectors), and the remaining four elements follow
// from orthogonality of the rows plus the cross-product identity
// row2 = conj(row0 x row1).  All eight stored numbers are bounded: the six
// matrix elements lie in [-1, 1] by unitarity and the two phases in
// [-pi, pi], which is what makes a fixed-point half-precision encoding
// possible (see su3/halfprec.h).
//
// Layout of the 8 reals: { arg(U00), arg(U20), Re U01, Im U01, Re U02,
// Im U02, Re U10, Im U10 }.

template <typename T> struct SU3Packed8 {
  std::array<T, 8> v{};

  constexpr T& operator[](std::size_t i) { return v[i]; }
  constexpr const T& operator[](std::size_t i) const { return v[i]; }
};

template <typename T> inline SU3Packed8<T> pack_eight(const SU3<T>& m) {
  SU3Packed8<T> p;
  p.v[0] = std::atan2(m.e[0][0].im, m.e[0][0].re);
  p.v[1] = std::atan2(m.e[2][0].im, m.e[2][0].re);
  p.v[2] = m.e[0][1].re;
  p.v[3] = m.e[0][1].im;
  p.v[4] = m.e[0][2].re;
  p.v[5] = m.e[0][2].im;
  p.v[6] = m.e[1][0].re;
  p.v[7] = m.e[1][0].im;
  return p;
}

// Reconstruct the full link from the 8-real parameterization.  The division
// by n = |U01|^2 + |U02|^2 is singular when row 0 is concentrated in its
// first element (e.g. unit gauge links): the parameterization genuinely
// cannot represent the lower-right 2x2 block then, so a deterministic
// fallback completes the matrix as a1 (+) diag embedding, which is still a
// valid SU(3) element.  sqrt arguments are clamped at zero against rounding.
template <typename T> inline SU3<T> unpack_eight(const SU3Packed8<T>& p) {
  const Complex<T> phase_a1{std::cos(p.v[0]), std::sin(p.v[0])};
  const Complex<T> a2{p.v[2], p.v[3]};
  const Complex<T> a3{p.v[4], p.v[5]};
  const Complex<T> b1{p.v[6], p.v[7]};

  const T n = norm2(a2) + norm2(a3);
  const T abs_a1 = std::sqrt(std::max(T(0), T(1) - n));
  const Complex<T> a1 = phase_a1 * abs_a1;

  SU3<T> m;
  m.e[0][0] = a1;
  m.e[0][1] = a2;
  m.e[0][2] = a3;

  // degenerate row 0: orthogonality forces U10 ~ 0 as well, so complete as
  // the block-diagonal a1 (+) [[1, 0], [0, conj(a1)]] (det = +1)
  if (n <= T(32) * std::numeric_limits<T>::epsilon()) {
    m.e[1][0] = Complex<T>{};
    m.e[1][1] = Complex<T>(T(1));
    m.e[1][2] = Complex<T>{};
    m.e[2][0] = Complex<T>{};
    m.e[2][1] = Complex<T>{};
    m.e[2][2] = conj(a1);
    return m;
  }

  // column 0 is a unit vector: |c1|^2 = 1 - |a1|^2 - |b1|^2
  const T abs_c1 = std::sqrt(std::max(T(0), T(1) - norm2(a1) - norm2(b1)));
  const Complex<T> c1 = Complex<T>{std::cos(p.v[1]), std::sin(p.v[1])} * abs_c1;

  // Cramer's rule on the two linear constraints
  //   conj(a2) b2 + conj(a3) b3 = -conj(a1) b1   (row 1 _|_ row 0)
  //   -a3 b2 + a2 b3 = conj(c1)                  (c1 from the cross product)
  const T inv_n = T(1) / n;
  const Complex<T> b2 = (conj(a3) * conj(c1) + conj(a1) * (a2 * b1)) * -inv_n;
  const Complex<T> b3 = (conj(a2) * conj(c1) - conj(a1) * (a3 * b1)) * inv_n;
  m.e[1][0] = b1;
  m.e[1][1] = b2;
  m.e[1][2] = b3;

  // row2 = conj(row0 x row1), written with the already-known c1
  m.e[2][0] = c1;
  m.e[2][1] = conj(a3 * b1 - a1 * b3);
  m.e[2][2] = conj(a1 * b2 - a2 * b1);
  return m;
}

// Gram-Schmidt re-unitarization onto the SU(3) manifold.  Used when building
// "weak field" configurations (Section VII-A) and after accumulating noise.
template <typename T> inline SU3<T> reunitarize(const SU3<T>& m) {
  SU3<T> u = m;
  // normalize row 0
  T n0 = 0;
  for (std::size_t c = 0; c < 3; ++c) n0 += norm2(u.e[0][c]);
  n0 = T(1) / std::sqrt(n0);
  for (std::size_t c = 0; c < 3; ++c) u.e[0][c] *= n0;
  // orthogonalize row 1 against row 0, then normalize
  Complex<T> proj{};
  for (std::size_t c = 0; c < 3; ++c) conj_cmad(proj, u.e[0][c], u.e[1][c]);
  for (std::size_t c = 0; c < 3; ++c) u.e[1][c] -= proj * u.e[0][c];
  T n1 = 0;
  for (std::size_t c = 0; c < 3; ++c) n1 += norm2(u.e[1][c]);
  n1 = T(1) / std::sqrt(n1);
  for (std::size_t c = 0; c < 3; ++c) u.e[1][c] *= n1;
  // row 2 from unitarity (guarantees det = +1)
  u.e[2] = reconstruct_third_row(u.e[0], u.e[1]);
  return u;
}

using SU3d = SU3<double>;
using SU3f = SU3<float>;

} // namespace quda
