#pragma once
// SU(3) color matrices and color vectors.
//
// A link matrix U lives on the edge between lattice sites x and x+mu and is
// a special unitary 3x3 complex matrix.  QUDA stores only the first two rows
// ("12-real" or 2-row compression) and reconstructs the third row in
// registers from the cross product of the conjugates of the first two rows
// (Section V-C1 of the paper).  Both the full and compressed representations
// are provided here.

#include "su3/complex.h"

#include <array>
#include <cstddef>

namespace quda {

template <typename T> struct ColorVector {
  std::array<Complex<T>, 3> c{};

  constexpr Complex<T>& operator[](std::size_t i) { return c[i]; }
  constexpr const Complex<T>& operator[](std::size_t i) const { return c[i]; }

  constexpr ColorVector& operator+=(const ColorVector& o) {
    for (std::size_t i = 0; i < 3; ++i) c[i] += o.c[i];
    return *this;
  }
  constexpr ColorVector& operator-=(const ColorVector& o) {
    for (std::size_t i = 0; i < 3; ++i) c[i] -= o.c[i];
    return *this;
  }
  constexpr ColorVector& operator*=(T s) {
    for (std::size_t i = 0; i < 3; ++i) c[i] *= s;
    return *this;
  }
  constexpr ColorVector& operator*=(const Complex<T>& s) {
    for (std::size_t i = 0; i < 3; ++i) c[i] *= s;
    return *this;
  }
  friend constexpr ColorVector operator+(ColorVector a, const ColorVector& b) { return a += b; }
  friend constexpr ColorVector operator-(ColorVector a, const ColorVector& b) { return a -= b; }
  friend constexpr ColorVector operator*(ColorVector a, T s) { return a *= s; }
  friend constexpr ColorVector operator*(T s, ColorVector a) { return a *= s; }
};

template <typename T> inline T norm2(const ColorVector<T>& v) {
  T s = 0;
  for (std::size_t i = 0; i < 3; ++i) s += norm2(v.c[i]);
  return s;
}

// Hermitian inner product <a, b> = sum_i conj(a_i) b_i.
template <typename T>
inline Complex<T> dot(const ColorVector<T>& a, const ColorVector<T>& b) {
  Complex<T> s{};
  for (std::size_t i = 0; i < 3; ++i) conj_cmad(s, a.c[i], b.c[i]);
  return s;
}

template <typename T> struct SU3 {
  // row-major: e[row][col]
  std::array<std::array<Complex<T>, 3>, 3> e{};

  constexpr Complex<T>& operator()(std::size_t r, std::size_t c) { return e[r][c]; }
  constexpr const Complex<T>& operator()(std::size_t r, std::size_t c) const { return e[r][c]; }

  static constexpr SU3 identity() {
    SU3 m;
    for (std::size_t i = 0; i < 3; ++i) m.e[i][i] = Complex<T>(T(1));
    return m;
  }

  constexpr SU3& operator+=(const SU3& o) {
    for (std::size_t r = 0; r < 3; ++r)
      for (std::size_t c = 0; c < 3; ++c) e[r][c] += o.e[r][c];
    return *this;
  }
  constexpr SU3& operator*=(T s) {
    for (std::size_t r = 0; r < 3; ++r)
      for (std::size_t c = 0; c < 3; ++c) e[r][c] *= s;
    return *this;
  }
  friend constexpr SU3 operator+(SU3 a, const SU3& b) { return a += b; }
  friend constexpr SU3 operator*(SU3 a, T s) { return a *= s; }
};

template <typename T> constexpr SU3<T> adjoint(const SU3<T>& m) {
  SU3<T> a;
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c) a.e[r][c] = conj(m.e[c][r]);
  return a;
}

template <typename T> constexpr SU3<T> operator*(const SU3<T>& a, const SU3<T>& b) {
  SU3<T> m;
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c) {
      Complex<T> s{};
      for (std::size_t k = 0; k < 3; ++k) cmad(s, a.e[r][k], b.e[k][c]);
      m.e[r][c] = s;
    }
  return m;
}

// U * v
template <typename T>
constexpr ColorVector<T> operator*(const SU3<T>& m, const ColorVector<T>& v) {
  ColorVector<T> o;
  for (std::size_t r = 0; r < 3; ++r) {
    Complex<T> s{};
    for (std::size_t k = 0; k < 3; ++k) cmad(s, m.e[r][k], v.c[k]);
    o.c[r] = s;
  }
  return o;
}

// U^dagger * v without forming the adjoint ("matrix conjugation performed at
// no cost through register relabeling", Section V-B).
template <typename T>
constexpr ColorVector<T> adj_mul(const SU3<T>& m, const ColorVector<T>& v) {
  ColorVector<T> o;
  for (std::size_t r = 0; r < 3; ++r) {
    Complex<T> s{};
    for (std::size_t k = 0; k < 3; ++k) conj_cmad(s, m.e[k][r], v.c[k]);
    o.c[r] = s;
  }
  return o;
}

template <typename T> constexpr Complex<T> det(const SU3<T>& m) {
  return m.e[0][0] * (m.e[1][1] * m.e[2][2] - m.e[1][2] * m.e[2][1]) -
         m.e[0][1] * (m.e[1][0] * m.e[2][2] - m.e[1][2] * m.e[2][0]) +
         m.e[0][2] * (m.e[1][0] * m.e[2][1] - m.e[1][1] * m.e[2][0]);
}

// Frobenius distance^2 between two matrices; used by the unitarity tests.
template <typename T> inline T frobenius_dist2(const SU3<T>& a, const SU3<T>& b) {
  T s = 0;
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c) s += norm2(a.e[r][c] - b.e[r][c]);
  return s;
}

// --- 2-row ("12-real") gauge compression -----------------------------------

// Compressed representation: the first two rows only.
template <typename T> struct SU3Compressed {
  std::array<std::array<Complex<T>, 3>, 2> row{};
};

template <typename T> constexpr SU3Compressed<T> compress(const SU3<T>& m) {
  SU3Compressed<T> c;
  c.row[0] = m.e[0];
  c.row[1] = m.e[1];
  return c;
}

// Third row from unitarity: row2 = conj(row0 x row1).
template <typename T>
constexpr std::array<Complex<T>, 3> reconstruct_third_row(
    const std::array<Complex<T>, 3>& r0, const std::array<Complex<T>, 3>& r1) {
  std::array<Complex<T>, 3> r2;
  r2[0] = conj(r0[1] * r1[2] - r0[2] * r1[1]);
  r2[1] = conj(r0[2] * r1[0] - r0[0] * r1[2]);
  r2[2] = conj(r0[0] * r1[1] - r0[1] * r1[0]);
  return r2;
}

template <typename T> constexpr SU3<T> decompress(const SU3Compressed<T>& c) {
  SU3<T> m;
  m.e[0] = c.row[0];
  m.e[1] = c.row[1];
  m.e[2] = reconstruct_third_row(c.row[0], c.row[1]);
  return m;
}

// Gram-Schmidt re-unitarization onto the SU(3) manifold.  Used when building
// "weak field" configurations (Section VII-A) and after accumulating noise.
template <typename T> inline SU3<T> reunitarize(const SU3<T>& m) {
  SU3<T> u = m;
  // normalize row 0
  T n0 = 0;
  for (std::size_t c = 0; c < 3; ++c) n0 += norm2(u.e[0][c]);
  n0 = T(1) / std::sqrt(n0);
  for (std::size_t c = 0; c < 3; ++c) u.e[0][c] *= n0;
  // orthogonalize row 1 against row 0, then normalize
  Complex<T> proj{};
  for (std::size_t c = 0; c < 3; ++c) conj_cmad(proj, u.e[0][c], u.e[1][c]);
  for (std::size_t c = 0; c < 3; ++c) u.e[1][c] -= proj * u.e[0][c];
  T n1 = 0;
  for (std::size_t c = 0; c < 3; ++c) n1 += norm2(u.e[1][c]);
  n1 = T(1) / std::sqrt(n1);
  for (std::size_t c = 0; c < 3; ++c) u.e[1][c] *= n1;
  // row 2 from unitarity (guarantees det = +1)
  u.e[2] = reconstruct_third_row(u.e[0], u.e[1]);
  return u;
}

using SU3d = SU3<double>;
using SU3f = SU3<float>;

} // namespace quda
