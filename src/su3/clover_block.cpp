#include "su3/clover_block.h"

#include <cmath>
#include <stdexcept>

namespace quda {

Dense6 to_dense(const HermitianBlock<double>& h) {
  Dense6 m{};
  for (std::size_t r = 0; r < 6; ++r)
    for (std::size_t c = 0; c < 6; ++c) m[r][c] = h.at(r, c);
  return m;
}

HermitianBlock<double> from_dense(const Dense6& m, double hermiticity_tol) {
  // verify Hermiticity before discarding the upper triangle
  double dev = 0, scale = 0;
  for (std::size_t r = 0; r < 6; ++r)
    for (std::size_t c = 0; c < 6; ++c) {
      dev += norm2(m[r][c] - conj(m[c][r]));
      scale += norm2(m[r][c]);
    }
  if (scale > 0 && dev > hermiticity_tol * hermiticity_tol * scale)
    throw std::invalid_argument("from_dense: matrix is not Hermitian");

  HermitianBlock<double> h;
  for (std::size_t r = 0; r < 6; ++r) h.diag[r] = m[r][r].re;
  for (std::size_t r = 1; r < 6; ++r)
    for (std::size_t c = 0; c < r; ++c)
      h.lower[HermitianBlock<double>::tri_index(r, c)] =
          (m[r][c] + conj(m[c][r])) * 0.5; // symmetrized
  return h;
}

HermitianBlock<double> invert(const HermitianBlock<double>& h) {
  Dense6 a = to_dense(h);
  // augmented inverse via Gauss-Jordan with partial pivoting
  Dense6 inv{};
  for (std::size_t i = 0; i < 6; ++i) inv[i][i] = complexd(1.0);

  for (std::size_t col = 0; col < 6; ++col) {
    // pivot
    std::size_t piv = col;
    double best = norm2(a[col][col]);
    for (std::size_t r = col + 1; r < 6; ++r) {
      const double v = norm2(a[r][col]);
      if (v > best) {
        best = v;
        piv = r;
      }
    }
    if (best == 0.0) throw std::domain_error("clover block is singular");
    if (piv != col) {
      std::swap(a[piv], a[col]);
      std::swap(inv[piv], inv[col]);
    }
    const complexd d = a[col][col];
    for (std::size_t c = 0; c < 6; ++c) {
      a[col][c] = a[col][c] / d;
      inv[col][c] = inv[col][c] / d;
    }
    for (std::size_t r = 0; r < 6; ++r) {
      if (r == col) continue;
      const complexd f = a[r][col];
      if (f.re == 0.0 && f.im == 0.0) continue;
      for (std::size_t c = 0; c < 6; ++c) {
        a[r][c] -= f * a[col][c];
        inv[r][c] -= f * inv[col][c];
      }
    }
  }
  // the inverse of a Hermitian matrix is Hermitian; repack (symmetrizing away
  // rounding noise)
  return from_dense(inv, 1e-8);
}

} // namespace quda
