#include "su3/gamma.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace quda {

SpinMatrix SpinMatrix::identity() {
  SpinMatrix m;
  for (std::size_t i = 0; i < 4; ++i) m.e[i][i] = complexd(1.0);
  return m;
}

SpinMatrix& SpinMatrix::operator+=(const SpinMatrix& o) {
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 4; ++c) e[r][c] += o.e[r][c];
  return *this;
}

SpinMatrix& SpinMatrix::operator-=(const SpinMatrix& o) {
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 4; ++c) e[r][c] -= o.e[r][c];
  return *this;
}

SpinMatrix& SpinMatrix::operator*=(const complexd& a) {
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 4; ++c) e[r][c] *= a;
  return *this;
}

SpinMatrix operator*(const SpinMatrix& a, const SpinMatrix& b) {
  SpinMatrix m;
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 4; ++c) {
      complexd s{};
      for (std::size_t k = 0; k < 4; ++k) cmad(s, a.e[r][k], b.e[k][c]);
      m.e[r][c] = s;
    }
  return m;
}

SpinMatrix adjoint(const SpinMatrix& m) {
  SpinMatrix a;
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 4; ++c) a.e[r][c] = conj(m.e[c][r]);
  return a;
}

double frobenius_dist2(const SpinMatrix& a, const SpinMatrix& b) {
  double s = 0;
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 4; ++c) s += norm2(a.e[r][c] - b.e[r][c]);
  return s;
}

namespace {

constexpr complexd I{0.0, 1.0};

// Pauli matrices
using Pauli = std::array<std::array<complexd, 2>, 2>;
const Pauli kSigma[3] = {
    {{{complexd(0), complexd(1)}, {complexd(1), complexd(0)}}},
    {{{complexd(0), -I}, {I, complexd(0)}}},
    {{{complexd(1), complexd(0)}, {complexd(0), complexd(-1)}}},
};

// place a 2x2 block at block position (br, bc), scaled
void set_block(SpinMatrix& m, int br, int bc, const Pauli& p, const complexd& scale) {
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 2; ++c) m.e[2 * br + r][2 * bc + c] = scale * p[r][c];
}

const Pauli kIdent2 = {{{complexd(1), complexd(0)}, {complexd(0), complexd(1)}}};

// internal (NonRelativistic / Dirac-Pauli) basis:
//   gamma_k = [[0, -i sigma_k], [i sigma_k, 0]],   gamma_4 = diag(1,1,-1,-1)
SpinMatrix make_gamma_nr(int mu) {
  SpinMatrix g;
  if (mu == 3) {
    g.e[0][0] = g.e[1][1] = complexd(1);
    g.e[2][2] = g.e[3][3] = complexd(-1);
    return g;
  }
  set_block(g, 0, 1, kSigma[mu], -I);
  set_block(g, 1, 0, kSigma[mu], I);
  return g;
}

// DeGrand-Rossi (chiral) basis:
//   gamma_k = [[0, i sigma_k], [-i sigma_k, 0]],   gamma_4 = [[0, 1], [1, 0]]
SpinMatrix make_gamma_dr(int mu) {
  SpinMatrix g;
  if (mu == 3) {
    set_block(g, 0, 1, kIdent2, complexd(1));
    set_block(g, 1, 0, kIdent2, complexd(1));
    return g;
  }
  set_block(g, 0, 1, kSigma[mu], I);
  set_block(g, 1, 0, kSigma[mu], -I);
  return g;
}

struct Tables {
  std::array<SpinMatrix, 4> nr;
  std::array<SpinMatrix, 4> dr;
  SpinMatrix g5_nr, g5_dr;
  SpinMatrix rotation; // S with gamma^NR = S gamma^DR S^dag
  SpinMatrix chiral;   // W with W^dag g5_nr W = diag(1,1,-1,-1)
  std::array<Mat2, 3> blocks;

  Tables() {
    for (int mu = 0; mu < 4; ++mu) {
      nr[mu] = make_gamma_nr(mu);
      dr[mu] = make_gamma_dr(mu);
    }
    g5_nr = nr[0] * nr[1] * nr[2] * nr[3];
    g5_dr = dr[0] * dr[1] * dr[2] * dr[3];
    rotation = derive_rotation();
    chiral = derive_chiral();
    for (int mu = 0; mu < 3; ++mu)
      for (std::size_t r = 0; r < 2; ++r)
        for (std::size_t c = 0; c < 2; ++c)
          blocks[mu].e[r][c] = nr[mu].e[r][2 + c]; // upper-right block of gamma_k
  }

  // Schur averaging over the 16 Clifford basis elements Gamma_A: for any X,
  //   S0 = sum_A Gamma_A^NR X (Gamma_A^DR)^dag
  // intertwines the two irreducible representations; since they are
  // irreducible, S0 is proportional to the (unique up to phase) unitary S.
  SpinMatrix derive_rotation() const {
    for (std::size_t xr = 0; xr < 4; ++xr) {
      for (std::size_t xc = 0; xc < 4; ++xc) {
        SpinMatrix x;
        x.e[xr][xc] = complexd(1);
        SpinMatrix s0;
        for (unsigned mask = 0; mask < 16; ++mask) {
          SpinMatrix a = SpinMatrix::identity();
          SpinMatrix b = SpinMatrix::identity();
          for (int mu = 0; mu < 4; ++mu) {
            if (mask & (1u << mu)) {
              a = a * nr[mu];
              b = b * dr[mu];
            }
          }
          s0 += a * x * adjoint(b);
        }
        // S0 S0^dag = lambda I for an intertwiner of irreps; normalize.
        const SpinMatrix ss = s0 * adjoint(s0);
        double lambda = 0;
        for (std::size_t i = 0; i < 4; ++i) lambda += ss.e[i][i].re;
        lambda /= 4.0;
        if (lambda < 1e-8) continue; // unlucky X annihilated by the average
        s0 *= complexd(1.0 / std::sqrt(lambda), 0.0);
        // verify off-diagonal smallness of S0 S0^dag (i.e. S is unitary)
        const SpinMatrix check = s0 * adjoint(s0);
        if (frobenius_dist2(check, SpinMatrix::identity()) > 1e-20) continue;
        // verify the intertwining property before accepting
        bool ok = true;
        for (int mu = 0; mu < 4 && ok; ++mu)
          ok = frobenius_dist2(s0 * dr[mu] * adjoint(s0), nr[mu]) < 1e-20;
        if (ok) return s0;
      }
    }
    throw std::logic_error("gamma basis rotation derivation failed");
  }

  // Orthonormal eigenbasis of gamma_5^NR with eigenvalue order (+,+,-,-):
  // Gram-Schmidt over the columns of the chiral projectors (1 +/- g5)/2.
  SpinMatrix derive_chiral() const {
    SpinMatrix w;
    std::array<std::array<complexd, 4>, 4> basis{}; // basis[k] = k-th column of W
    std::size_t have = 0;
    for (int sign = +1; sign >= -1; sign -= 2) {
      for (std::size_t col = 0; col < 4 && have < (sign > 0 ? 2u : 4u); ++col) {
        // candidate = column `col` of (1 + sign*g5)/2
        std::array<complexd, 4> v{};
        for (std::size_t r = 0; r < 4; ++r) {
          v[r] = g5_nr.e[r][col] * complexd(0.5 * sign, 0.0);
          if (r == col) v[r] += complexd(0.5);
        }
        // orthogonalize against the accepted columns
        for (std::size_t k = 0; k < have; ++k) {
          complexd proj{};
          for (std::size_t r = 0; r < 4; ++r) conj_cmad(proj, basis[k][r], v[r]);
          for (std::size_t r = 0; r < 4; ++r) v[r] -= proj * basis[k][r];
        }
        double n = 0;
        for (std::size_t r = 0; r < 4; ++r) n += norm2(v[r]);
        if (n < 1e-12) continue; // linearly dependent column
        const double inv = 1.0 / std::sqrt(n);
        for (std::size_t r = 0; r < 4; ++r) v[r] *= complexd(inv, 0.0);
        basis[have++] = v;
      }
    }
    if (have != 4) throw std::logic_error("chiral transform derivation failed");
    for (std::size_t c = 0; c < 4; ++c)
      for (std::size_t r = 0; r < 4; ++r) w.e[r][c] = basis[c][r];
    return w;
  }
};

const Tables& tables() {
  static const Tables t;
  return t;
}

} // namespace

const SpinMatrix& gamma(GammaBasis basis, int mu) {
  assert(mu >= 0 && mu < 4);
  return basis == GammaBasis::NonRelativistic ? tables().nr[mu] : tables().dr[mu];
}

const SpinMatrix& gamma5(GammaBasis basis) {
  return basis == GammaBasis::NonRelativistic ? tables().g5_nr : tables().g5_dr;
}

SpinMatrix sigma_munu(GammaBasis basis, int mu, int nu) {
  const SpinMatrix& gm = gamma(basis, mu);
  const SpinMatrix& gn = gamma(basis, nu);
  SpinMatrix comm = gm * gn - gn * gm;
  comm *= complexd(0.0, 0.5); // (i/2) [gamma_mu, gamma_nu]
  return comm;
}

SpinMatrix projector(GammaBasis basis, int mu, int sign) {
  SpinMatrix p = SpinMatrix::identity();
  SpinMatrix g = gamma(basis, mu);
  g *= complexd(static_cast<double>(sign), 0.0);
  return p + g;
}

const SpinMatrix& basis_rotation_dr_to_nr() { return tables().rotation; }

const SpinMatrix& chiral_transform() { return tables().chiral; }

const Mat2& gamma_spatial_block(int mu) {
  assert(mu >= 0 && mu < 3);
  return tables().blocks[mu];
}

} // namespace quda
