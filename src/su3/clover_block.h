#pragma once
// The clover term A_x as two packed 6x6 Hermitian chiral blocks.
//
// A_x = (c_sw / 2) sum_{mu<nu} sigma_{mu,nu} F_{mu,nu}(x) commutes with
// gamma_5 and therefore decomposes into two 6x6 Hermitian blocks (one per
// chirality), each described by 36 real numbers -- 72 reals per site in
// total, exactly the figure the paper quotes (Section II, footnote 1).
//
// In the internal basis gamma_5 is *not* diagonal (gamma_4 is), so the
// chiral components are formed on the fly as (psi_upper +/- psi_lower)/sqrt2;
// this is a handful of adds per site and no extra memory traffic.

#include "su3/complex.h"
#include "su3/spinor.h"

#include <array>
#include <cstddef>

namespace quda {

// Packed 6x6 Hermitian matrix: 6 real diagonal entries + 15 complex
// strictly-lower-triangle entries (row-major), 36 reals total.
template <typename T> struct HermitianBlock {
  std::array<T, 6> diag{};
  std::array<Complex<T>, 15> lower{};

  static constexpr std::size_t tri_index(std::size_t r, std::size_t c) {
    // r > c required
    return r * (r - 1) / 2 + c;
  }

  Complex<T> at(std::size_t r, std::size_t c) const {
    if (r == c) return Complex<T>(diag[r]);
    if (r > c) return lower[tri_index(r, c)];
    return conj(lower[tri_index(c, r)]);
  }

  void set(std::size_t r, std::size_t c, const Complex<T>& v) {
    if (r == c) {
      diag[r] = v.re;
    } else if (r > c) {
      lower[tri_index(r, c)] = v;
    } else {
      lower[tri_index(c, r)] = conj(v);
    }
  }

  // y = H * x for a 6-component chiral half (2 spin x 3 color, flattened
  // spin-major: index = spin*3 + color).
  std::array<Complex<T>, 6> apply(const std::array<Complex<T>, 6>& x) const {
    std::array<Complex<T>, 6> y{};
    for (std::size_t r = 0; r < 6; ++r) {
      Complex<T> acc = Complex<T>(diag[r]) * x[r];
      for (std::size_t c = 0; c < r; ++c) cmad(acc, lower[tri_index(r, c)], x[c]);
      for (std::size_t c = r + 1; c < 6; ++c) conj_cmad(acc, lower[tri_index(c, r)], x[c]);
      y[r] = acc;
    }
    return y;
  }

  template <typename U> HermitianBlock<U> convert() const {
    HermitianBlock<U> o;
    for (std::size_t i = 0; i < 6; ++i) o.diag[i] = static_cast<U>(diag[i]);
    for (std::size_t i = 0; i < 15; ++i)
      o.lower[i] = Complex<U>(static_cast<U>(lower[i].re), static_cast<U>(lower[i].im));
    return o;
  }
};

// One lattice site's clover term: a block per chirality.
template <typename T> struct CloverSite {
  HermitianBlock<T> block[2]; // [0]: +chirality, [1]: -chirality
};

// Invert a packed Hermitian 6x6 block (Gaussian elimination with partial
// pivoting on the dense form).  Used once at setup to build the A^{-1}
// needed by even-odd preconditioning; not performance critical.
HermitianBlock<double> invert(const HermitianBlock<double>& h);

// Dense <-> packed conversion helpers (shared with the clover construction
// code and the tests).
using Dense6 = std::array<std::array<complexd, 6>, 6>;
Dense6 to_dense(const HermitianBlock<double>& h);
HermitianBlock<double> from_dense(const Dense6& m, double hermiticity_tol = 1e-10);

} // namespace quda
