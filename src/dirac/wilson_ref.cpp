#include "dirac/wilson_ref.h"

namespace quda {

namespace {

// boundary phase for a hop from x in direction (mu, dir)
double hop_phase(const Geometry& g, const Coords& x, int mu, int dir, TimeBoundary bc) {
  if (mu != 3 || bc == TimeBoundary::Periodic) return 1.0;
  return g.crosses_boundary(x, mu, dir) ? -1.0 : 1.0;
}

} // namespace

void apply_hopping_ref(const HostGaugeField& u, const HostSpinorField& in, HostSpinorField& out,
                       const WilsonParams& p) {
  const Geometry& g = in.geom();
  const SpinMatrix ident = SpinMatrix::identity();

  for (std::int64_t i = 0; i < g.volume(); ++i) {
    const Coords x = g.coords(i);
    Spinor<double> acc{};
    for (int mu = 0; mu < 4; ++mu) {
      const SpinMatrix& gmu = gamma(p.basis, mu);
      const SpinMatrix pminus = ident - gmu; // forward hop projector
      const SpinMatrix pplus = ident + gmu;  // backward hop projector

      // forward: (1 - gamma_mu) U_mu(x) psi(x + mu)
      {
        const Coords xf = g.neighbor(x, mu, +1);
        const double phase = hop_phase(g, x, mu, +1, p.time_bc);
        Spinor<double> hop = u.link(mu, x) * in.at(xf);
        hop = apply_spin(pminus, hop);
        acc += hop * phase;
      }
      // backward: (1 + gamma_mu) U_mu(x - mu)^dag psi(x - mu)
      {
        const Coords xb = g.neighbor(x, mu, -1);
        const double phase = hop_phase(g, x, mu, -1, p.time_bc);
        const SU3<double> udag = adjoint(u.link(mu, xb));
        Spinor<double> hop = udag * in.at(xb);
        hop = apply_spin(pplus, hop);
        acc += hop * phase;
      }
    }
    out[i] = acc;
  }
}

void apply_wilson_ref(const HostGaugeField& u, const HostSpinorField& in, HostSpinorField& out,
                      const WilsonParams& p) {
  apply_hopping_ref(u, in, out, p);
  const Geometry& g = in.geom();
  const double diag = 4.0 + p.mass;
  for (std::int64_t i = 0; i < g.volume(); ++i) {
    Spinor<double> r = in[i] * diag;
    r -= out[i] * 0.5;
    out[i] = r;
  }
}

void apply_wilson_clover_ref(const HostGaugeField& u, const DenseCloverField& a,
                             const HostSpinorField& in, HostSpinorField& out,
                             const WilsonParams& p) {
  apply_hopping_ref(u, in, out, p);
  const Geometry& g = in.geom();
  const double diag = 4.0 + p.mass;
  for (std::int64_t i = 0; i < g.volume(); ++i) {
    Spinor<double> r = in[i] * diag;
    r += apply_dense_clover_site(a[i], in[i]);
    r -= out[i] * 0.5;
    out[i] = r;
  }
}

} // namespace quda
