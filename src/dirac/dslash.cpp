#include "dirac/dslash.h"

#include "exec/host_engine.h"

#include <cassert>

namespace quda {

namespace {

template <typename T> void scale_half_spinor(HalfSpinor<T>& h, T s) {
  for (std::size_t sp = 0; sp < 2; ++sp)
    for (std::size_t c = 0; c < 3; ++c) h.s[sp][c] *= s;
}

// does this site touch any partitioned edge?
inline bool on_partitioned_edge(const Coords& c, const LatticeDims& dims,
                                const std::array<bool, 4>& ghost) {
  for (int mu = 0; mu < 4; ++mu)
    if (ghost[static_cast<std::size_t>(mu)] && (c[mu] == 0 || c[mu] == dims[mu] - 1))
      return true;
  return false;
}

} // namespace

template <typename P>
void dslash(SpinorField<P>& out, const GaugeField<P>& gauge, const SpinorField<P>& in,
            const Geometry& g, const DslashOptions& opt, std::int64_t cb_begin,
            std::int64_t cb_end, typename P::real_t scale, Accumulate accumulate,
            KernelRegion region) {
  using real_t = typename P::real_t;
  const Parity out_parity = opt.out_parity;
  const Parity in_parity = other(out_parity);

  exec::parallel_for(cb_begin, cb_end, exec::kSiteGrain, [&](std::int64_t lo, std::int64_t hi) {
  for (std::int64_t cb = lo; cb < hi; ++cb) {
    const Coords x = g.cb_coords(out_parity, cb);
    if (region != KernelRegion::All) {
      const bool boundary = on_partitioned_edge(x, g.dims(), opt.ghost);
      if (region == KernelRegion::Interior && boundary) continue;
      if (region == KernelRegion::Boundary && !boundary) continue;
    }
    Spinor<real_t> acc{};

    for (int mu = 0; mu < 4; ++mu) {
      const int len = g.dims()[mu];
      const bool dim_ghost = opt.ghost[static_cast<std::size_t>(mu)];
      // ---- forward hop: P-mu U_mu(x) psi(x+mu) --------------------------
      {
        const bool at_edge = x[mu] == len - 1;
        const bool ghost = at_edge && dim_ghost;
        const real_t phase =
            (mu == 3 && at_edge) ? static_cast<real_t>(opt.bc_forward) : real_t(1);
        HalfSpinor<real_t> h;
        if (ghost) {
          h = in.load_ghost(mu, GhostFace::Forward, g.face_index(mu, x));
        } else {
          const Coords xf = g.neighbor(x, mu, +1);
          h = project(mu, -1, in.load(g.cb_index(xf)));
        }
        h = gauge.load(mu, out_parity, cb) * h;
        if (phase != real_t(1)) scale_half_spinor(h, phase);
        reconstruct_add(mu, -1, h, acc);
      }
      // ---- backward hop: P+mu U_mu(x-mu)^dag psi(x-mu) ------------------
      {
        const bool at_edge = x[mu] == 0;
        const bool ghost = at_edge && dim_ghost;
        const real_t phase =
            (mu == 3 && at_edge) ? static_cast<real_t>(opt.bc_backward) : real_t(1);
        HalfSpinor<real_t> h;
        SU3<real_t> u;
        if (ghost) {
          const std::int64_t fs = g.face_index(mu, x);
          h = in.load_ghost(mu, GhostFace::Backward, fs);
          u = gauge.load_ghost(mu, in_parity, fs);
        } else {
          const Coords xb = g.neighbor(x, mu, -1);
          const std::int64_t cb_b = g.cb_index(xb);
          h = project(mu, +1, in.load(cb_b));
          u = gauge.load(mu, in_parity, cb_b);
        }
        h = adj_mul(u, h);
        if (phase != real_t(1)) scale_half_spinor(h, phase);
        reconstruct_add(mu, +1, h, acc);
      }
    }

    acc *= scale;
    if (accumulate == Accumulate::Yes) {
      Spinor<real_t> prev = out.load(cb);
      prev += acc;
      out.store(cb, prev);
    } else {
      out.store(cb, acc);
    }
  }
  });
}

template <typename P>
void apply_clover_xpay(SpinorField<P>& out, const CloverField<P>& clover, Parity parity,
                       const SpinorField<P>& x, const Geometry& g, std::int64_t cb_begin,
                       std::int64_t cb_end, typename P::real_t b) {
  using real_t = typename P::real_t;
  (void)g;
  const SpinMatrix& w = chiral_transform();
  const SpinMatrix wd = adjoint(w);

  exec::parallel_for(cb_begin, cb_end, exec::kSiteGrain, [&](std::int64_t lo, std::int64_t hi) {
  for (std::int64_t cb = lo; cb < hi; ++cb) {
    const CloverSite<real_t> site = clover.load(parity, cb);
    const Spinor<real_t> xin = x.load(cb);
    // chi = W^dag x; block apply; eta = W (B chi)
    const Spinor<real_t> chi = apply_spin(wd, xin);
    Spinor<real_t> eta;
    for (int blk = 0; blk < 2; ++blk) {
      std::array<Complex<real_t>, 6> v{};
      for (std::size_t s = 0; s < 2; ++s)
        for (std::size_t c = 0; c < 3; ++c) v[3 * s + c] = chi.s[2 * blk + s][c];
      const std::array<Complex<real_t>, 6> y = site.block[blk].apply(v);
      for (std::size_t s = 0; s < 2; ++s)
        for (std::size_t c = 0; c < 3; ++c) eta.s[2 * blk + s][c] = y[3 * s + c];
    }
    Spinor<real_t> res = apply_spin(w, eta);
    if (b != real_t(0)) {
      Spinor<real_t> prev = out.load(cb);
      prev *= b;
      res += prev;
    }
    out.store(cb, res);
  }
  });
}

// --- face exchange -----------------------------------------------------------

template <typename P>
void pack_face(const SpinorField<P>& field, const Geometry& g, Parity field_parity, int mu,
               int slice, int sign, FaceBuffer<P>& buf) {
  using real_t = typename P::real_t;
  using store_t = typename P::store_t;
  const std::int64_t nf = g.face_sites(mu);
  buf.resize(nf);

  exec::parallel_for(0, nf, exec::kFaceGrain, [&](std::int64_t lo, std::int64_t hi) {
  for (std::int64_t fs = lo; fs < hi; ++fs) {
    const Coords c = g.face_site_coords(mu, field_parity, slice, fs);
    const HalfSpinor<real_t> h = project(mu, sign, field.load(g.cb_index(c)));

    real_t inv = 1;
    if constexpr (P::has_norm) {
      float m = 0;
      for (std::size_t sp = 0; sp < 2; ++sp)
        for (std::size_t col = 0; col < 3; ++col) {
          m = std::max(m, std::abs(static_cast<float>(h.s[sp][col].re)));
          m = std::max(m, std::abs(static_cast<float>(h.s[sp][col].im)));
        }
      if (m == 0.0f) m = 1e-37f;
      buf.norm[static_cast<std::size_t>(fs)] = m;
      inv = real_t(1) / m;
    }
    std::size_t k = static_cast<std::size_t>(fs * 12);
    for (std::size_t sp = 0; sp < 2; ++sp)
      for (std::size_t col = 0; col < 3; ++col) {
        if constexpr (P::value == Precision::Half) {
          buf.data[k++] = to_half(static_cast<float>(h.s[sp][col].re * inv));
          buf.data[k++] = to_half(static_cast<float>(h.s[sp][col].im * inv));
        } else {
          buf.data[k++] = static_cast<store_t>(h.s[sp][col].re);
          buf.data[k++] = static_cast<store_t>(h.s[sp][col].im);
        }
      }
  }
  });
}

template <typename P>
void unpack_ghost(SpinorField<P>& field, const Geometry& g, int mu, GhostFace face,
                  const FaceBuffer<P>& buf) {
  using real_t = typename P::real_t;
  const std::int64_t nf = g.face_sites(mu);
  assert(std::int64_t(buf.data.size()) == nf * 12);

  exec::parallel_for(0, nf, exec::kFaceGrain, [&](std::int64_t lo, std::int64_t hi) {
  for (std::int64_t fs = lo; fs < hi; ++fs) {
    HalfSpinor<real_t> h;
    float norm = 1.0f;
    if constexpr (P::has_norm) norm = buf.norm[static_cast<std::size_t>(fs)];
    std::size_t k = static_cast<std::size_t>(fs * 12);
    for (std::size_t sp = 0; sp < 2; ++sp)
      for (std::size_t col = 0; col < 3; ++col) {
        real_t re, im;
        if constexpr (P::value == Precision::Half) {
          re = from_half(buf.data[k]) * norm;
          im = from_half(buf.data[k + 1]) * norm;
        } else {
          re = static_cast<real_t>(buf.data[k]);
          im = static_cast<real_t>(buf.data[k + 1]);
        }
        h.s[sp][col] = Complex<real_t>(re, im);
        k += 2;
      }
    field.store_ghost(mu, face, fs, h, norm);
  }
  });
}

template <typename P>
void pack_gauge_face(const GaugeField<P>& gauge, const Geometry& g, int mu, int slice,
                     GaugeFaceBuffer<P>& buf) {
  using real_t = typename P::real_t;
  using store_t = typename P::store_t;
  const std::int64_t nf = g.face_sites(mu);
  const int wire = gauge_wire_reals(gauge.reconstruct());
  buf.resize(nf, wire);

  for (int par = 0; par < 2; ++par) {
    const Parity parity = par == 0 ? Parity::Even : Parity::Odd;
    exec::parallel_for(0, nf, exec::kFaceGrain, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t fs = lo; fs < hi; ++fs) {
      const Coords c = g.face_site_coords(mu, parity, slice, fs);
      const SU3<real_t> u = gauge.load(mu, parity, g.cb_index(c));
      std::size_t k = static_cast<std::size_t>((par * nf + fs) * wire);
      if (wire == 8) {
        // ship the stored parameterization itself; the phases use the same
        // fixed-point scaling rule as device storage in half precision
        const SU3Packed8<real_t> p = pack_eight(u);
        for (std::size_t j = 0; j < 8; ++j) {
          if constexpr (P::value == Precision::Half)
            buf.data[k++] = to_half(j < 2 ? phase_to_unit(p.v[j]) : p.v[j]);
          else
            buf.data[k++] = static_cast<store_t>(p.v[j]);
        }
        continue;
      }
      for (std::size_t r = 0; r < 3; ++r)
        for (std::size_t col = 0; col < 3; ++col) {
          if constexpr (P::value == Precision::Half) {
            buf.data[k++] = to_half(static_cast<float>(u.e[r][col].re));
            buf.data[k++] = to_half(static_cast<float>(u.e[r][col].im));
          } else {
            buf.data[k++] = static_cast<store_t>(u.e[r][col].re);
            buf.data[k++] = static_cast<store_t>(u.e[r][col].im);
          }
        }
    }
    });
  }
}

template <typename P>
void unpack_gauge_ghost(GaugeField<P>& gauge, const Geometry& g, int mu,
                        const GaugeFaceBuffer<P>& buf) {
  const std::int64_t nf = g.face_sites(mu);
  const int wire = gauge_wire_reals(gauge.reconstruct());
  assert(buf.nint == wire);
  assert(std::int64_t(buf.data.size()) == nf * 2 * wire);

  for (int par = 0; par < 2; ++par) {
    const Parity parity = par == 0 ? Parity::Even : Parity::Odd;
    exec::parallel_for(0, nf, exec::kFaceGrain, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t fs = lo; fs < hi; ++fs) {
      std::size_t k = static_cast<std::size_t>((par * nf + fs) * wire);
      SU3<double> u;
      if (wire == 8) {
        SU3Packed8<double> p;
        for (std::size_t j = 0; j < 8; ++j) {
          if constexpr (P::value == Precision::Half) {
            const float v = from_half(buf.data[k++]);
            p.v[j] = static_cast<double>(j < 2 ? unit_to_phase(v) : v);
          } else {
            p.v[j] = static_cast<double>(buf.data[k++]);
          }
        }
        u = unpack_eight(p);
      } else {
        for (std::size_t r = 0; r < 3; ++r)
          for (std::size_t col = 0; col < 3; ++col) {
            double re, im;
            if constexpr (P::value == Precision::Half) {
              re = from_half(buf.data[k]);
              im = from_half(buf.data[k + 1]);
            } else {
              re = static_cast<double>(buf.data[k]);
              im = static_cast<double>(buf.data[k + 1]);
            }
            u.e[r][col] = complexd(re, im);
            k += 2;
          }
      }
      gauge.store_ghost(mu, parity, fs, u);
    }
    });
  }
}

// --- explicit instantiations -------------------------------------------------

#define QUDA_INSTANTIATE(P)                                                                       \
  template void dslash<P>(SpinorField<P>&, const GaugeField<P>&, const SpinorField<P>&,           \
                          const Geometry&, const DslashOptions&, std::int64_t, std::int64_t,      \
                          P::real_t, Accumulate, KernelRegion);                                   \
  template void apply_clover_xpay<P>(SpinorField<P>&, const CloverField<P>&, Parity,              \
                                     const SpinorField<P>&, const Geometry&, std::int64_t,        \
                                     std::int64_t, P::real_t);                                    \
  template void pack_face<P>(const SpinorField<P>&, const Geometry&, Parity, int, int, int,       \
                             FaceBuffer<P>&);                                                     \
  template void unpack_ghost<P>(SpinorField<P>&, const Geometry&, int, GhostFace,                 \
                                const FaceBuffer<P>&);                                            \
  template void pack_gauge_face<P>(const GaugeField<P>&, const Geometry&, int, int,               \
                                   GaugeFaceBuffer<P>&);                                          \
  template void unpack_gauge_ghost<P>(GaugeField<P>&, const Geometry&, int,                       \
                                      const GaugeFaceBuffer<P>&);

QUDA_INSTANTIATE(PrecDouble)
QUDA_INSTANTIATE(PrecSingle)
QUDA_INSTANTIATE(PrecHalf)

#undef QUDA_INSTANTIATE

} // namespace quda
