#pragma once
// Single-device Wilson-clover operator in QUDA order: the full two-parity
// matrix and the even-odd (Schur complement) preconditioned operator that
// the Krylov solvers actually invert (Section II).
//
//   M = [ T_e        -1/2 D_eo ]        T_p = (4 + m) + A_p
//       [ -1/2 D_oe   T_o      ]
//
//   Mhat = T_e - 1/4 D_eo T_o^{-1} D_oe          (solved for x_e)
//   source prep:   b' = b_e + 1/2 D_eo T_o^{-1} b_o
//   reconstruct:   x_o = T_o^{-1} (b_o + 1/2 D_oe x_e)
//
// Wilson without clover is the csw = 0 special case (T diagonal), so one
// code path serves both discretizations.

#include "dirac/dslash.h"
#include "exec/host_engine.h"
#include "solvers/linear_operator.h"

namespace quda {

struct OperatorParams {
  double mass = 0.0;
  TimeBoundary time_bc = TimeBoundary::Periodic;
};

template <typename P> class WilsonCloverOp final : public LinearOperator<P> {
public:
  // `clover` holds T = (4+m)+A for both parities; `clover_inv` its inverse
  WilsonCloverOp(const Geometry& geom, const GaugeField<P>& gauge, const CloverField<P>& clover,
                 const CloverField<P>& clover_inv, const OperatorParams& params)
      : geom_(geom),
        gauge_(gauge),
        clover_(clover),
        clover_inv_(clover_inv),
        params_(params),
        tmp_o_(geom),
        tmp2_o_(geom) {}

  std::int64_t sites() const override { return geom_.half_volume(); }
  const Geometry& geom() const { return geom_; }

  SpinorField<P> make_vector() const override { return SpinorField<P>(geom_); }

  // Mhat x_e (even-parity Schur complement)
  void apply(SpinorField<P>& out, const SpinorField<P>& in) override {
    const std::int64_t vh = geom_.half_volume();
    dslash<P>(tmp_o_, gauge_, in, geom_, opts(Parity::Odd), 0, vh, 1, Accumulate::No);
    apply_clover_xpay<P>(tmp2_o_, clover_inv_, Parity::Odd, tmp_o_, geom_, 0, vh, 0);
    dslash<P>(out, gauge_, tmp2_o_, geom_, opts(Parity::Even), 0, vh, 1, Accumulate::No);
    // out = T_e in - 1/4 out
    apply_clover_xpay<P>(out, clover_, Parity::Even, in, geom_, 0, vh,
                         static_cast<typename P::real_t>(-0.25));
  }

  // gamma_5 Mhat gamma_5 = Mhat^dag (gamma_5 Hermiticity)
  void apply_dagger(SpinorField<P>& out, const SpinorField<P>& in) override {
    SpinorField<P> g5in(geom_);
    apply_gamma5<P>(g5in, in);
    apply(out, g5in);
    apply_gamma5<P>(out, out);
  }

  // full (unpreconditioned) operator on parity pairs, for tests and residual
  // checks: out_p = T_p in_p - 1/2 D in_{p'}
  void apply_full(SpinorField<P>& out_e, SpinorField<P>& out_o, const SpinorField<P>& in_e,
                  const SpinorField<P>& in_o) {
    const std::int64_t vh = geom_.half_volume();
    using real_t = typename P::real_t;
    dslash<P>(out_e, gauge_, in_o, geom_, opts(Parity::Even), 0, vh, real_t(-0.5), Accumulate::No);
    apply_clover_xpay<P>(out_e, clover_, Parity::Even, in_e, geom_, 0, vh, real_t(1));
    dslash<P>(out_o, gauge_, in_e, geom_, opts(Parity::Odd), 0, vh, real_t(-0.5), Accumulate::No);
    apply_clover_xpay<P>(out_o, clover_, Parity::Odd, in_o, geom_, 0, vh, real_t(1));
  }

  // b' = b_e + 1/2 D_eo T_o^{-1} b_o
  void prepare_source(SpinorField<P>& bprime, const SpinorField<P>& b_e,
                      const SpinorField<P>& b_o) {
    const std::int64_t vh = geom_.half_volume();
    using real_t = typename P::real_t;
    apply_clover_xpay<P>(tmp_o_, clover_inv_, Parity::Odd, b_o, geom_, 0, vh, 0);
    copy_spinor(bprime, b_e);
    dslash<P>(bprime, gauge_, tmp_o_, geom_, opts(Parity::Even), 0, vh, real_t(0.5),
              Accumulate::Yes);
  }

  // x_o = T_o^{-1} (b_o + 1/2 D_oe x_e)
  void reconstruct_odd(SpinorField<P>& x_o, const SpinorField<P>& x_e,
                       const SpinorField<P>& b_o) {
    const std::int64_t vh = geom_.half_volume();
    using real_t = typename P::real_t;
    copy_spinor(tmp_o_, b_o);
    dslash<P>(tmp_o_, gauge_, x_e, geom_, opts(Parity::Odd), 0, vh, real_t(0.5), Accumulate::Yes);
    apply_clover_xpay<P>(x_o, clover_inv_, Parity::Odd, tmp_o_, geom_, 0, vh, 0);
  }

private:
  DslashOptions opts(Parity out_parity) const {
    DslashOptions o;
    o.out_parity = out_parity;
    const double bc = params_.time_bc == TimeBoundary::Antiperiodic ? -1.0 : 1.0;
    o.bc_backward = bc;
    o.bc_forward = bc;
    return o;
  }

  void copy_spinor(SpinorField<P>& dst, const SpinorField<P>& src) {
    exec::parallel_for(0, geom_.half_volume(), exec::kBlasGrain,
                       [&](std::int64_t b, std::int64_t e) {
                         for (std::int64_t i = b; i < e; ++i) dst.store(i, src.load(i));
                       });
  }

  Geometry geom_;
  const GaugeField<P>& gauge_;
  const CloverField<P>& clover_;
  const CloverField<P>& clover_inv_;
  OperatorParams params_;
  SpinorField<P> tmp_o_, tmp2_o_;
};

} // namespace quda
