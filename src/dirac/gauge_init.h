#pragma once
// Gauge configuration generation and gauge observables.
//
// The paper's performance runs use "weak field" configurations: all links
// start at the identity, a small amount of random noise is mixed in, and
// the links are re-unitarized back onto the SU(3) manifold (Section VII-A).
// We reproduce that construction, plus fully random configurations for
// correctness tests and the average plaquette as a sanity observable.

#include "lattice/host_field.h"

#include <cstdint>

namespace quda {

// all links = identity (free field)
void make_unit_gauge(HostGaugeField& u);

// identity + epsilon * Gaussian noise, re-unitarized (the paper's weak field)
void make_weak_field_gauge(HostGaugeField& u, double epsilon, std::uint64_t seed);

// links drawn by re-unitarizing matrices with Gaussian entries (disordered;
// a stress test for the operator since it exercises generic SU(3) values)
void make_random_gauge(HostGaugeField& u, std::uint64_t seed);

// Gaussian random spinor field
void make_random_spinor(HostSpinorField& s, std::uint64_t seed);

// point source: delta at site/spin/color (what a propagator solve uses)
void make_point_source(HostSpinorField& s, const Coords& site, int spin, int color);

// average plaquette: Re tr P / 3 averaged over sites and the 6 planes;
// equals 1 for the unit gauge and stays near 1 for weak fields
double average_plaquette(const HostGaugeField& u);

} // namespace quda
