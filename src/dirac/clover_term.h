#pragma once
// Construction and application of the Sheikholeslami-Wohlert clover term.
//
// A_x = (c_sw / 2) * sum_{mu<nu} sigma_{mu,nu} (i F_{mu,nu}(x))
//
// where F is the traceless anti-Hermitian "clover leaf" field strength (the
// average of the four plaquettes in the mu-nu plane touching x).  A commutes
// with gamma_5, so it decomposes into two 6x6 Hermitian chiral blocks -- the
// 72-reals-per-site representation the paper describes -- which is what the
// device field stores.  An independent dense 12x12 construction is kept for
// the reference operator and as a cross-check of the block machinery.

#include "lattice/host_field.h"
#include "su3/gamma.h"

#include <array>
#include <vector>

namespace quda {

// dense 12x12 per-site clover matrix, row-major with index = spin*3 + color
struct DenseClover {
  std::array<complexd, 144> e{};

  complexd& at(std::size_t r, std::size_t c) { return e[12 * r + c]; }
  const complexd& at(std::size_t r, std::size_t c) const { return e[12 * r + c]; }
};

class DenseCloverField {
public:
  DenseCloverField() = default;
  explicit DenseCloverField(const Geometry& geom)
      : geom_(geom), sites_(static_cast<std::size_t>(geom.volume())) {}

  const Geometry& geom() const { return geom_; }
  DenseClover& operator[](std::int64_t i) { return sites_[static_cast<std::size_t>(i)]; }
  const DenseClover& operator[](std::int64_t i) const {
    return sites_[static_cast<std::size_t>(i)];
  }

private:
  Geometry geom_;
  std::vector<DenseClover> sites_;
};

// the clover-leaf field strength i*F_{mu,nu}(x): Hermitian traceless 3x3
SU3<double> clover_leaf_ifield(const HostGaugeField& u, const Coords& x, int mu, int nu);

// blocked (chiral 6x6) construction -- the production path
HostCloverField make_clover_term(const HostGaugeField& u, double csw);

// independent dense construction -- the reference / cross-check path
DenseCloverField make_dense_clover_term(const HostGaugeField& u, double csw);

// T = (4 + m) + A: add the Wilson diagonal to the clover blocks in place
void add_diag(HostCloverField& a, double diag);

// per-site inversion of the (already mass-shifted) clover blocks
HostCloverField invert_clover(const HostCloverField& t);

// apply a blocked clover site to a spinor: out = W (B+ (+) B-) W^dag psi
template <typename T>
Spinor<T> apply_clover_site(const CloverSite<T>& site, const Spinor<T>& psi) {
  const SpinMatrix& w = chiral_transform();
  const Spinor<T> chi = apply_spin(adjoint(w), psi);
  Spinor<T> eta;
  for (int b = 0; b < 2; ++b) {
    std::array<Complex<T>, 6> v{};
    for (std::size_t s = 0; s < 2; ++s)
      for (std::size_t c = 0; c < 3; ++c) v[3 * s + c] = chi.s[2 * b + s][c];
    const std::array<Complex<T>, 6> y = site.block[b].apply(v);
    for (std::size_t s = 0; s < 2; ++s)
      for (std::size_t c = 0; c < 3; ++c) eta.s[2 * b + s][c] = y[3 * s + c];
  }
  return apply_spin(w, eta);
}

// apply a dense clover site to a spinor (reference path)
Spinor<double> apply_dense_clover_site(const DenseClover& a, const Spinor<double>& psi);

} // namespace quda
