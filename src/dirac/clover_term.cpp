#include "dirac/clover_term.h"

#include <cassert>
#include <stdexcept>

namespace quda {

namespace {

// signed-direction link: L(x, +mu) = U_mu(x), L(x, -mu) = U_mu^dag(x - mu).
// `dir` is mu for forward, and the motion updates x to the far end.
SU3<double> signed_link(const HostGaugeField& u, Coords& x, int mu, int sign) {
  const Geometry& g = u.geom();
  if (sign > 0) {
    const SU3<double> l = u.link(mu, x);
    x = g.neighbor(x, mu, +1);
    return l;
  }
  x = g.neighbor(x, mu, -1);
  return adjoint(u.link(mu, x));
}

// plaquette starting at x traversing (a, b, -a, -b) with signed directions
SU3<double> signed_plaquette(const HostGaugeField& u, const Coords& x0, int mu_a, int sa,
                             int mu_b, int sb) {
  Coords x = x0;
  SU3<double> p = signed_link(u, x, mu_a, sa);
  p = p * signed_link(u, x, mu_b, sb);
  p = p * signed_link(u, x, mu_a, -sa);
  p = p * signed_link(u, x, mu_b, -sb);
  assert(x == x0);
  return p;
}

} // namespace

SU3<double> clover_leaf_ifield(const HostGaugeField& u, const Coords& x, int mu, int nu) {
  // the four leaves around x in the mu-nu plane
  SU3<double> q = signed_plaquette(u, x, mu, +1, nu, +1);
  q += signed_plaquette(u, x, nu, +1, mu, -1);
  q += signed_plaquette(u, x, mu, -1, nu, -1);
  q += signed_plaquette(u, x, nu, -1, mu, +1);

  // F = (Q - Q^dag) / 8, made traceless;  return i*F (Hermitian)
  const SU3<double> qd = adjoint(q);
  SU3<double> f;
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c) f.e[r][c] = (q.e[r][c] - qd.e[r][c]) * 0.125;
  complexd tr{};
  for (std::size_t d = 0; d < 3; ++d) tr += f.e[d][d];
  tr = tr / 3.0;
  for (std::size_t d = 0; d < 3; ++d) f.e[d][d] -= tr;

  SU3<double> inf;
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c) inf.e[r][c] = times_i(f.e[r][c]);
  return inf;
}

namespace {

// the 2x2 chiral sub-blocks of W^dag sigma_{mu,nu} W, cached per plane
struct SigmaBlocks {
  // [pair][block], pair index over the 6 (mu<nu) planes
  std::array<std::array<std::array<std::array<complexd, 2>, 2>, 2>, 6> b{};
  std::array<std::pair<int, int>, 6> planes{};

  SigmaBlocks() {
    const SpinMatrix& w = chiral_transform();
    const SpinMatrix wd = adjoint(w);
    int p = 0;
    for (int mu = 0; mu < 4; ++mu)
      for (int nu = mu + 1; nu < 4; ++nu, ++p) {
        planes[static_cast<std::size_t>(p)] = {mu, nu};
        const SpinMatrix st = wd * sigma_munu(GammaBasis::NonRelativistic, mu, nu) * w;
        // sigma commutes with gamma_5, so the rotated matrix must be block
        // diagonal in the chiral eigenbasis; verify once.
        double offb = 0;
        for (std::size_t r = 0; r < 2; ++r)
          for (std::size_t c = 0; c < 2; ++c)
            offb += norm2(st.e[r][2 + c]) + norm2(st.e[2 + r][c]);
        if (offb > 1e-20)
          throw std::logic_error("sigma_munu is not chiral-block-diagonal");
        for (int blk = 0; blk < 2; ++blk)
          for (std::size_t r = 0; r < 2; ++r)
            for (std::size_t c = 0; c < 2; ++c)
              b[static_cast<std::size_t>(p)][static_cast<std::size_t>(blk)][r][c] =
                  st.e[2 * static_cast<std::size_t>(blk) + r][2 * static_cast<std::size_t>(blk) + c];
      }
  }
};

const SigmaBlocks& sigma_blocks() {
  static const SigmaBlocks s;
  return s;
}

} // namespace

HostCloverField make_clover_term(const HostGaugeField& u, double csw) {
  const Geometry& g = u.geom();
  HostCloverField a(g);
  const SigmaBlocks& sb = sigma_blocks();
  const double coeff = 0.5 * csw;

  for (std::int64_t i = 0; i < g.volume(); ++i) {
    const Coords x = g.coords(i);
    Dense6 dense[2] = {};
    for (std::size_t p = 0; p < 6; ++p) {
      const auto [mu, nu] = sb.planes[p];
      const SU3<double> inf = clover_leaf_ifield(u, x, mu, nu);
      for (int blk = 0; blk < 2; ++blk)
        for (std::size_t s = 0; s < 2; ++s)
          for (std::size_t sp = 0; sp < 2; ++sp) {
            const complexd spin = sb.b[p][static_cast<std::size_t>(blk)][s][sp] * coeff;
            if (spin.re == 0.0 && spin.im == 0.0) continue;
            for (std::size_t c = 0; c < 3; ++c)
              for (std::size_t cp = 0; cp < 3; ++cp)
                dense[blk][3 * s + c][3 * sp + cp] += spin * inf.e[c][cp];
          }
    }
    for (int blk = 0; blk < 2; ++blk)
      a[i].block[blk] = from_dense(dense[blk], 1e-8);
  }
  return a;
}

DenseCloverField make_dense_clover_term(const HostGaugeField& u, double csw) {
  const Geometry& g = u.geom();
  DenseCloverField a(g);
  const double coeff = 0.5 * csw;

  for (std::int64_t i = 0; i < g.volume(); ++i) {
    const Coords x = g.coords(i);
    for (int mu = 0; mu < 4; ++mu)
      for (int nu = mu + 1; nu < 4; ++nu) {
        const SpinMatrix sig = sigma_munu(GammaBasis::NonRelativistic, mu, nu);
        const SU3<double> inf = clover_leaf_ifield(u, x, mu, nu);
        for (std::size_t s = 0; s < 4; ++s)
          for (std::size_t sp = 0; sp < 4; ++sp) {
            const complexd spin = sig.e[s][sp] * coeff;
            if (spin.re == 0.0 && spin.im == 0.0) continue;
            for (std::size_t c = 0; c < 3; ++c)
              for (std::size_t cp = 0; cp < 3; ++cp)
                a[i].at(3 * s + c, 3 * sp + cp) += spin * inf.e[c][cp];
          }
      }
  }
  return a;
}

void add_diag(HostCloverField& a, double diag) {
  for (std::int64_t i = 0; i < a.geom().volume(); ++i)
    for (int blk = 0; blk < 2; ++blk)
      for (std::size_t d = 0; d < 6; ++d) a[i].block[blk].diag[d] += diag;
}

HostCloverField invert_clover(const HostCloverField& t) {
  HostCloverField inv(t.geom());
  for (std::int64_t i = 0; i < t.geom().volume(); ++i)
    for (int blk = 0; blk < 2; ++blk) inv[i].block[blk] = invert(t[i].block[blk]);
  return inv;
}

Spinor<double> apply_dense_clover_site(const DenseClover& a, const Spinor<double>& psi) {
  Spinor<double> out;
  for (std::size_t r = 0; r < 12; ++r) {
    complexd acc{};
    for (std::size_t c = 0; c < 12; ++c) cmad(acc, a.e[12 * r + c], psi.s[c / 3][c % 3]);
    out.s[r / 3][r % 3] = acc;
  }
  return out;
}

} // namespace quda
