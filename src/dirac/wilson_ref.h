#pragma once
// Reference (naive-order, dense-spin-matrix) Wilson and Wilson-clover
// operators on host fields.  This is the correctness oracle: it shares no
// projector/reconstruction code with the optimized device kernels -- spin
// structure is applied via dense 4x4 gamma matrices and the clover via the
// dense 12x12 per-site matrix.
//
// Operator convention (equation (2) of the paper):
//
//   M psi(x) = (4 + m) psi(x) + A_x psi(x)
//            - 1/2 sum_mu [ (1 - gamma_mu) U_mu(x)        psi(x+mu)
//                         + (1 + gamma_mu) U_mu(x-mu)^dag psi(x-mu) ]
//
// Temporal boundary conditions are periodic or antiperiodic (production
// fermion BCs); spatial are periodic.

#include "dirac/clover_term.h"
#include "lattice/host_field.h"

namespace quda {

struct WilsonParams {
  double mass = 0.0;
  TimeBoundary time_bc = TimeBoundary::Periodic;
  GammaBasis basis = GammaBasis::NonRelativistic;
};

// out = D psi (the hopping part only, *without* the -1/2 factor)
void apply_hopping_ref(const HostGaugeField& u, const HostSpinorField& in, HostSpinorField& out,
                       const WilsonParams& p);

// out = M psi, Wilson (no clover)
void apply_wilson_ref(const HostGaugeField& u, const HostSpinorField& in, HostSpinorField& out,
                      const WilsonParams& p);

// out = M psi, Wilson-clover with the dense clover field A (not including
// the (4+m) diagonal -- that is added here)
void apply_wilson_clover_ref(const HostGaugeField& u, const DenseCloverField& a,
                             const HostSpinorField& in, HostSpinorField& out,
                             const WilsonParams& p);

} // namespace quda
