#pragma once
// Optimized ("device") Wilson dslash kernels on QUDA-ordered parity fields,
// plus the face pack/unpack used by the multi-GPU halo exchange.
//
// These kernels mirror the structure of QUDA's CUDA kernels: one logical
// thread per output site, spin projection to half-spinors before the color
// multiply, 2-row gauge reconstruction in registers, and ghost-zone reads
// for hops that leave the local volume (Section VI).
//
// Any subset of the four dimensions may be partitioned (DslashOptions::
// ghost); the paper's production configuration cuts only time, and its
// "future work" multi-dimensional decomposition is the general case.  Since
// the spin projectors reduce every face to 12 numbers per site regardless
// of direction (footnote 3 of the paper), the same pack/unpack path serves
// all dimensions.
//
// The output site range [cb_begin, cb_end) is a contiguous checkerboard
// index range; since the time coordinate runs slowest, a timeslice range
// [t0, t1] maps to the cb range [t0*Vs/2, (t1+1)*Vs/2).  For
// multi-dimensional overlap the interior/boundary split is not contiguous,
// so a region filter selects sites instead.
//
// Local parity equals global parity only when every rank's coordinate
// offsets are even; the parallel driver enforces all-even local dimensions.

#include "lattice/clover_field.h"
#include "lattice/gauge_field.h"
#include "lattice/geometry.h"
#include "lattice/spinor_field.h"
#include "su3/gamma.h"

#include <array>
#include <cstdint>
#include <vector>

namespace quda {

struct DslashOptions {
  Parity out_parity = Parity::Even;
  // per dimension: hops crossing the local edge read the spinor ghost end
  // zone (and, backward, the gauge ghost pad) instead of wrapping
  std::array<bool, 4> ghost{};
  // phase applied to a hop crossing the local t=0 / t=T-1 edge; encodes the
  // global fermion boundary condition on the ranks that own a global edge
  double bc_backward = 1.0;
  double bc_forward = 1.0;
};

enum class Accumulate { No, Yes };

// site filter for the overlap split: Interior sites touch no partitioned
// edge; Boundary sites touch at least one
enum class KernelRegion { All, Interior, Boundary };

// spatial checkerboard index of a site (the temporal-face index; kept for
// the 1-D call sites)
inline std::int64_t spatial_cb_index(const Geometry& g, const Coords& c) {
  return g.face_index(3, c);
}

// temporal-face coordinates (1-D compatibility wrapper)
inline Coords face_coords(const Geometry& g, Parity field_parity, int t, std::int64_t fs) {
  return g.face_site_coords(3, field_parity, t, fs);
}

// out[region] (+)= scale * sum_mu hops(in)  -- the raw hopping sum D x,
// without the -1/2 normalization (the callers fold that into `scale`)
template <typename P>
void dslash(SpinorField<P>& out, const GaugeField<P>& gauge, const SpinorField<P>& in,
            const Geometry& g, const DslashOptions& opt, std::int64_t cb_begin,
            std::int64_t cb_end, typename P::real_t scale, Accumulate accumulate,
            KernelRegion region = KernelRegion::All);

// out[region] = C * x + b * out  (apply the clover blocks; b=0 overwrites)
template <typename P>
void apply_clover_xpay(SpinorField<P>& out, const CloverField<P>& clover, Parity parity,
                       const SpinorField<P>& x, const Geometry& g, std::int64_t cb_begin,
                       std::int64_t cb_end, typename P::real_t b);

// --- face exchange ----------------------------------------------------------

// A host-side staging buffer for one projected face.  The payload is in
// storage precision (half keeps one float norm per face site), so its byte
// size is exactly what crosses PCI-E and the network.
template <typename P> struct FaceBuffer {
  using store_t = typename P::store_t;
  std::vector<store_t> data;
  std::vector<float> norm;

  void resize(std::int64_t face_sites) {
    data.assign(static_cast<std::size_t>(face_sites * 12), store_t{});
    if constexpr (P::has_norm) norm.assign(static_cast<std::size_t>(face_sites), 0.0f);
  }

  std::int64_t bytes() const {
    return std::int64_t(data.size()) * sizeof(store_t) + std::int64_t(norm.size()) * sizeof(float);
  }
};

// gather the spin-projected face of `field` (parity `field_parity`)
// perpendicular to mu on slice `slice`, projector sign `sign` (+1: P+mu,
// the face sent to the forward neighbor; -1: P-mu, sent backward)
template <typename P>
void pack_face(const SpinorField<P>& field, const Geometry& g, Parity field_parity, int mu,
               int slice, int sign, FaceBuffer<P>& buf);

// scatter a received face buffer into the mu ghost end zone of `field`
template <typename P>
void unpack_ghost(SpinorField<P>& field, const Geometry& g, int mu, GhostFace face,
                  const FaceBuffer<P>& buf);

// 1-D (temporal) compatibility wrappers
template <typename P>
void pack_face(const SpinorField<P>& field, const Geometry& g, Parity field_parity, int t_slice,
               int sign, FaceBuffer<P>& buf) {
  pack_face(field, g, field_parity, 3, t_slice, sign, buf);
}
template <typename P>
void unpack_ghost(SpinorField<P>& field, const Geometry& g, GhostFace face,
                  const FaceBuffer<P>& buf) {
  unpack_ghost(field, g, 3, face, buf);
}

// wire format of the gauge ghost exchange: recon-8 links travel in their
// stored 8-real parameterization; 12- and 18-real fields ship full SU(3)
// rows (the receiver re-compresses into its own storage)
inline constexpr int gauge_wire_reals(Reconstruct r) {
  return r == Reconstruct::Eight ? 8 : 18;
}

// copy the sender-side gauge ghost for a cut in dimension mu: the U_mu
// links on this rank's last slice, packed per link in storage precision
template <typename P> struct GaugeFaceBuffer {
  using store_t = typename P::store_t;
  std::vector<store_t> data; // face_sites * 2 parities * nint reals
  int nint = 18;             // wire reals per link (gauge_wire_reals)

  void resize(std::int64_t face_sites, int wire_reals = 18) {
    nint = wire_reals;
    data.assign(static_cast<std::size_t>(face_sites * 2 * wire_reals), store_t{});
  }
  std::int64_t bytes() const { return std::int64_t(data.size()) * sizeof(store_t); }
};

template <typename P>
void pack_gauge_face(const GaugeField<P>& gauge, const Geometry& g, int mu, int slice,
                     GaugeFaceBuffer<P>& buf);

template <typename P>
void unpack_gauge_ghost(GaugeField<P>& gauge, const Geometry& g, int mu,
                        const GaugeFaceBuffer<P>& buf);

// 1-D compatibility wrappers
template <typename P>
void pack_gauge_face(const GaugeField<P>& gauge, const Geometry& g, int t_slice,
                     GaugeFaceBuffer<P>& buf) {
  pack_gauge_face(gauge, g, 3, t_slice, buf);
}
template <typename P>
void unpack_gauge_ghost(GaugeField<P>& gauge, const Geometry& g, const GaugeFaceBuffer<P>& buf) {
  unpack_gauge_ghost(gauge, g, 3, buf);
}

} // namespace quda
