#pragma once
// Host <-> device field transfers: reorder between the naive CPU ordering
// (equation (3)) and the blocked, padded QUDA device ordering (equations
// (4)-(5)), splitting/merging parities.  The even-odd reordering means the
// preconditioning has no efficiency cost: all components of a given parity
// are contiguous on the device (Section II).

#include "dirac/clover_term.h"
#include "exec/host_engine.h"
#include "lattice/clover_field.h"
#include "lattice/gauge_field.h"
#include "lattice/host_field.h"
#include "lattice/spinor_field.h"

namespace quda {

template <typename P>
SpinorField<P> upload_spinor(const HostSpinorField& host, Parity parity,
                             const PartitionMask& mask = kPartitionTimeOnly) {
  const Geometry& g = host.geom();
  SpinorField<P> dev(g, mask);
  exec::parallel_for(0, g.half_volume(), exec::kBlasGrain, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t cb = b; cb < e; ++cb) {
      const Coords c = g.cb_coords(parity, cb);
      dev.store(cb, convert<typename P::real_t>(host.at(c)));
    }
  });
  return dev;
}

template <typename P>
void download_spinor(const SpinorField<P>& dev, Parity parity, HostSpinorField& host) {
  const Geometry& g = host.geom();
  exec::parallel_for(0, g.half_volume(), exec::kBlasGrain, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t cb = b; cb < e; ++cb) {
      const Coords c = g.cb_coords(parity, cb);
      host.at(c) = convert<double>(dev.load(cb));
    }
  });
}

template <typename P>
GaugeField<P> upload_gauge(const HostGaugeField& host, Reconstruct recon) {
  const Geometry& g = host.geom();
  GaugeField<P> dev(g, recon);
  for (int par = 0; par < 2; ++par) {
    const Parity parity = par == 0 ? Parity::Even : Parity::Odd;
    exec::parallel_for(0, g.half_volume(), exec::kBlasGrain, [&](std::int64_t b, std::int64_t e) {
      for (std::int64_t cb = b; cb < e; ++cb) {
        const Coords c = g.cb_coords(parity, cb);
        for (int mu = 0; mu < 4; ++mu) dev.store(mu, parity, cb, host.link(mu, c));
      }
    });
  }
  return dev;
}

template <typename P> CloverField<P> upload_clover(const HostCloverField& host) {
  const Geometry& g = host.geom();
  CloverField<P> dev(g);
  for (int par = 0; par < 2; ++par) {
    const Parity parity = par == 0 ? Parity::Even : Parity::Odd;
    exec::parallel_for(0, g.half_volume(), exec::kBlasGrain, [&](std::int64_t b, std::int64_t e) {
      for (std::int64_t cb = b; cb < e; ++cb) {
        const Coords c = g.cb_coords(parity, cb);
        dev.store(parity, cb, host[g.linear_index(c)]);
      }
    });
  }
  return dev;
}

} // namespace quda
