#include "dirac/gauge_init.h"

#include <random>

namespace quda {

namespace {

SU3<double> gaussian_matrix(std::mt19937_64& rng, double scale) {
  std::normal_distribution<double> dist(0.0, scale);
  SU3<double> m;
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c) m.e[r][c] = complexd(dist(rng), dist(rng));
  return m;
}

} // namespace

void make_unit_gauge(HostGaugeField& u) { u.set_identity(); }

void make_weak_field_gauge(HostGaugeField& u, double epsilon, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  const std::int64_t v = u.geom().volume();
  for (int mu = 0; mu < 4; ++mu)
    for (std::int64_t i = 0; i < v; ++i) {
      SU3<double> m = SU3<double>::identity() + gaussian_matrix(rng, epsilon);
      u.link(mu, i) = reunitarize(m);
    }
}

void make_random_gauge(HostGaugeField& u, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  const std::int64_t v = u.geom().volume();
  for (int mu = 0; mu < 4; ++mu)
    for (std::int64_t i = 0; i < v; ++i) u.link(mu, i) = reunitarize(gaussian_matrix(rng, 1.0));
}

void make_random_spinor(HostSpinorField& s, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> dist(0.0, 1.0);
  for (std::int64_t i = 0; i < s.geom().volume(); ++i)
    for (std::size_t spin = 0; spin < 4; ++spin)
      for (std::size_t c = 0; c < 3; ++c) s[i].s[spin][c] = complexd(dist(rng), dist(rng));
}

void make_point_source(HostSpinorField& s, const Coords& site, int spin, int color) {
  s.zero();
  s.at(site).s[static_cast<std::size_t>(spin)][static_cast<std::size_t>(color)] = complexd(1.0);
}

double average_plaquette(const HostGaugeField& u) {
  const Geometry& g = u.geom();
  double sum = 0;
  for (std::int64_t i = 0; i < g.volume(); ++i) {
    const Coords x = g.coords(i);
    for (int mu = 0; mu < 4; ++mu)
      for (int nu = mu + 1; nu < 4; ++nu) {
        const Coords xmu = g.neighbor(x, mu, +1);
        const Coords xnu = g.neighbor(x, nu, +1);
        // P = U_mu(x) U_nu(x+mu) U_mu(x+nu)^dag U_nu(x)^dag
        const SU3<double> p =
            u.link(mu, x) * u.link(nu, xmu) * adjoint(u.link(mu, xnu)) * adjoint(u.link(nu, x));
        double retr = 0;
        for (std::size_t d = 0; d < 3; ++d) retr += p.e[d][d].re;
        sum += retr / 3.0;
      }
  }
  return sum / (static_cast<double>(g.volume()) * 6.0);
}

} // namespace quda
