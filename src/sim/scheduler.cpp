#include "sim/scheduler.h"

#include "core/wallclock.h"
#include "sim/event_sim.h"
#include "trace/telemetry.h"
#include "trace/trace.h"

#include <sys/mman.h>
#include <ucontext.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <thread>

namespace quda::sim {

namespace {

// ---------------------------------------------------------------------------
// threads: one OS thread per rank, parked on the cluster condvar

class ThreadsScheduler final : public RankScheduler {
public:
  ThreadsScheduler(core::Mutex& mutex, core::CondVar& cv) : mutex_(mutex), cv_(cv) {}

  void run(const std::vector<RankContext*>& ranks, bool trace_on,
           const std::function<void(RankContext&)>& body) override {
    std::vector<std::thread> threads;
    threads.reserve(ranks.size());
    for (RankContext* ctx : ranks) {
      threads.emplace_back([ctx, trace_on, &body] {
        // bind the thread-local tracer so layers without RankContext access
        // (the device model, the solvers) can emit; null keeps them silent.
        // The recorder binds unconditionally: a disabled recorder's hooks
        // are no-ops, so the cost matches the tracer's null check.
        trace::ScopedTracer bind_tracer(trace_on ? &ctx->tracer() : nullptr);
        telemetry::ScopedRecorder bind_recorder(&ctx->recorder());
        body(*ctx);
      });
    }
    for (auto& t : threads) t.join();
  }

  bool wait_transport(core::MutexLock& lock, double wall_timeout_ms) override {
    if (wall_timeout_ms <= 0) {
      cv_.wait(lock);
      return false;
    }
    // the watchdog is the one place real time enters the simulator, and it
    // routes through the allowlisted (and test-injectable) shim
    const auto deadline =
        core::now_for_watchdog() +
        std::chrono::microseconds(static_cast<std::int64_t>(wall_timeout_ms * 1e3));
    return cv_.wait_until(lock, deadline) == std::cv_status::timeout;
  }

  void wake_all() override { cv_.notify_all(); }

private:
  core::Mutex& mutex_;
  core::CondVar& cv_;
};

// ---------------------------------------------------------------------------
// seq: a single event loop resuming stackful (ucontext) fibers in
// deterministic (clock, rank) order

class SeqScheduler final : public RankScheduler {
public:
  void run(const std::vector<RankContext*>& ranks, bool trace_on,
           const std::function<void(RankContext&)>& body) override;
  bool wait_transport(core::MutexLock& lock, double wall_timeout_ms) override;
  void wake_all() override;

private:
  struct Fiber {
    enum class State { Runnable, Parked, Done };
    enum class Wake { Notified, TimedOut, Deadlock };

    RankContext* ctx = nullptr;
    ucontext_t uc{};
    void* map = nullptr; // guard page + stack, unmapped on teardown
    std::size_t map_bytes = 0;
    State state = State::Runnable;
    Wake wake = Wake::Notified;
    bool watchdog = false; // parked caller armed a wall-timeout fallback
  };

  // 1 MiB of lazily committed stack per fiber (plus one guard page): the
  // rank bodies keep bulk data on the heap, and virtual address space is
  // the only per-rank cost until a page is touched
  static constexpr std::size_t kStackBytes = std::size_t{1} << 20;

  static void trampoline(unsigned hi, unsigned lo);
  void resume(Fiber& f, bool trace_on);
  Fiber* pick_runnable();
  void unpark_deterministically();

  std::vector<std::unique_ptr<Fiber>> fibers_;
  const std::function<void(RankContext&)>* body_ = nullptr;
  ucontext_t loop_uc_{};
  Fiber* current_ = nullptr;
};

void SeqScheduler::trampoline(unsigned hi, unsigned lo) {
  // makecontext only passes ints; the scheduler pointer rides in two halves
  auto* self = reinterpret_cast<SeqScheduler*>(
      (static_cast<std::uintptr_t>(hi) << 32) | static_cast<std::uintptr_t>(lo));
  Fiber& f = *self->current_;
  (*self->body_)(*f.ctx); // the body wrapper catches everything
  f.state = Fiber::State::Done;
  // returning setcontext()s uc_link, i.e. the event loop's saved context
}

void SeqScheduler::resume(Fiber& f, bool trace_on) {
  current_ = &f;
  // rebind the thread-local tracer and recorder per resume: every fiber
  // shares this OS thread, so the binding must follow the fiber
  trace::ScopedTracer bind_tracer(trace_on ? &f.ctx->tracer() : nullptr);
  telemetry::ScopedRecorder bind_recorder(&f.ctx->recorder());
  swapcontext(&loop_uc_, &f.uc);
  current_ = nullptr;
}

SeqScheduler::Fiber* SeqScheduler::pick_runnable() {
  // the runnable fiber with the smallest (simulated clock, rank): execution
  // order is a pure function of simulation state, with rank as the
  // deterministic tie-break (iteration order is ascending rank)
  Fiber* best = nullptr;
  for (auto& f : fibers_) {
    if (f->state != Fiber::State::Runnable) continue;
    if (best == nullptr || f->ctx->clock().now_us < best->ctx->clock().now_us) best = f.get();
  }
  return best;
}

void SeqScheduler::unpark_deterministically() {
  // Every live fiber is parked, so no wakeup can ever arrive.  Fire the
  // lowest-ranked watchdogged fiber as TimedOut (it re-checks its channel
  // and raises the same CommTimeout the threads watchdog would); with no
  // watchdog armed anywhere this is a true deadlock -- unpark the
  // lowest-ranked fiber with Deadlock status, which throws on resume.
  Fiber* victim = nullptr;
  for (auto& f : fibers_) {
    if (f->state != Fiber::State::Parked) continue;
    if (victim == nullptr) victim = f.get();
    if (f->watchdog) {
      victim = f.get();
      break;
    }
  }
  victim->wake = victim->watchdog ? Fiber::Wake::TimedOut : Fiber::Wake::Deadlock;
  victim->state = Fiber::State::Runnable;
}

void SeqScheduler::run(const std::vector<RankContext*>& ranks, bool trace_on,
                       const std::function<void(RankContext&)>& body) {
  body_ = &body;
  const long page = ::sysconf(_SC_PAGESIZE);
  const std::size_t guard = page > 0 ? static_cast<std::size_t>(page) : 4096;

  fibers_.clear();
  fibers_.reserve(ranks.size());
  for (RankContext* ctx : ranks) {
    auto f = std::make_unique<Fiber>();
    f->ctx = ctx;
    f->map_bytes = guard + kStackBytes;
    f->map = ::mmap(nullptr, f->map_bytes, PROT_NONE, MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (f->map == MAP_FAILED)
      throw std::runtime_error("seq scheduler: mmap of a fiber stack failed");
    // stacks grow downward: the guard page sits at the low end of the map
    if (::mprotect(static_cast<char*>(f->map) + guard, kStackBytes,
                   PROT_READ | PROT_WRITE) != 0) {
      ::munmap(f->map, f->map_bytes);
      throw std::runtime_error("seq scheduler: mprotect of a fiber stack failed");
    }
    if (::getcontext(&f->uc) != 0)
      throw std::runtime_error("seq scheduler: getcontext failed");
    f->uc.uc_stack.ss_sp = static_cast<char*>(f->map) + guard;
    f->uc.uc_stack.ss_size = kStackBytes;
    f->uc.uc_link = &loop_uc_;
    const auto self = reinterpret_cast<std::uintptr_t>(this);
    ::makecontext(&f->uc, reinterpret_cast<void (*)()>(&SeqScheduler::trampoline), 2,
                  static_cast<unsigned>(self >> 32), static_cast<unsigned>(self & 0xffffffffu));
    fibers_.push_back(std::move(f));
  }

  for (;;) {
    Fiber* next = pick_runnable();
    if (next == nullptr) {
      bool all_done = true;
      for (auto& f : fibers_)
        if (f->state != Fiber::State::Done) all_done = false;
      if (all_done) break;
      unpark_deterministically();
      continue;
    }
    resume(*next, trace_on);
  }

  for (auto& f : fibers_)
    if (f->map != nullptr) ::munmap(f->map, f->map_bytes);
  fibers_.clear();
  body_ = nullptr;
}

bool SeqScheduler::wait_transport(core::MutexLock& lock, double wall_timeout_ms) {
  Fiber& f = *current_;
  f.state = Fiber::State::Parked;
  f.watchdog = wall_timeout_ms > 0;
  f.wake = Fiber::Wake::Notified;
  // the transport lock is uncontended on this single thread, but the
  // unlock/relock pair keeps the lock discipline identical to threads mode
  lock.unlock();
  swapcontext(&f.uc, &loop_uc_);
  lock.lock();
  f.watchdog = false;
  if (f.wake == Fiber::Wake::Deadlock)
    throw std::runtime_error(
        "simulated deadlock: every rank is parked with no wakeup pending (seq scheduler)");
  return f.wake == Fiber::Wake::TimedOut;
}

void SeqScheduler::wake_all() {
  for (auto& f : fibers_) {
    if (f->state == Fiber::State::Parked) {
      f->state = Fiber::State::Runnable;
      f->wake = Fiber::Wake::Notified;
    }
  }
}

} // namespace

const char* scheduler_name(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::Threads: return "threads";
    case SchedulerKind::Seq: return "seq";
    case SchedulerKind::Auto: break;
  }
  return "auto";
}

SchedulerKind resolve_scheduler(SchedulerKind requested) {
  if (requested != SchedulerKind::Auto) return requested;
  const char* env = std::getenv("QUDA_SIM_SCHED");
  if (env == nullptr || env[0] == '\0') return SchedulerKind::Threads;
  if (std::strcmp(env, "threads") == 0) return SchedulerKind::Threads;
  if (std::strcmp(env, "seq") == 0) return SchedulerKind::Seq;
  throw std::invalid_argument(std::string("QUDA_SIM_SCHED=") + env +
                              " is not a rank scheduler (expected threads|seq)");
}

int threads_scheduler_capacity() {
  // 512 threads is comfortably inside Linux defaults; past that the seq
  // scheduler is both safer and faster.  The override exists mainly so
  // tests can shrink the limit without spawning hundreds of threads.
  if (const char* env = std::getenv("QUDA_SIM_MAX_RANK_THREADS")) {
    const int v = std::atoi(env);
    if (v >= 1) return v;
  }
  return 512;
}

std::unique_ptr<RankScheduler> make_scheduler(SchedulerKind kind, core::Mutex& mutex,
                                              core::CondVar& cv) {
  switch (kind) {
    case SchedulerKind::Seq: return std::make_unique<SeqScheduler>();
    case SchedulerKind::Threads:
    case SchedulerKind::Auto: break;
  }
  return std::make_unique<ThreadsScheduler>(mutex, cv);
}

} // namespace quda::sim
