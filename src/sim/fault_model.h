#pragma once
// Seeded, deterministic fault injection for the simulated cluster.
//
// The paper's production setting (16 nodes, 32 GTX 285s with ECC *off*, a
// shared QDR IB switch) is exactly the regime where transient faults --
// dropped or late messages, PCIe stalls, silent bit-flips in device memory
// -- dominate operational cost.  This module injects those faults on a
// reproducible schedule: every draw is a pure function of
// (seed, rank, per-rank event counter, fault kind), with no wall-clock
// randomness, so a given seed produces the identical fault schedule and
// identical simulated-time totals on every run regardless of OS thread
// scheduling.
//
// Injection happens in the transport (RankContext::isend stamps each
// message attempt) and in the parallel operator (one device-memory draw per
// matrix application).  Recovery lives one layer up: the reliable message
// protocol in src/comm (sequence numbers, checksums, bounded retry) and the
// rollback/restart machinery in src/solvers.

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>

namespace quda::sim {

// typed failure raised when a message cannot be delivered within the retry
// budget -- or when a peer rank hit that condition and poisoned the cluster.
// Replaces blocking forever on a lost message.
struct CommTimeout : std::runtime_error {
  explicit CommTimeout(const std::string& what) : std::runtime_error(what) {}
};

// fault environment of the simulated hardware; lives in ClusterSpec
struct FaultConfig {
  std::uint64_t seed = 12345;
  double drop_rate = 0;        // per message attempt: the attempt never arrives
  double delay_rate = 0;       // per delivered message: degraded-link transfer
  double delay_factor = 8.0;   // path-time multiplier for delayed messages
  double corrupt_rate = 0;     // per delivered message: one payload bit flipped
  double device_flip_rate = 0; // per operator application: device-memory SDC
  double stall_rate = 0;       // per send: transient rank stall (OS jitter, PCIe hiccup)
  double stall_us = 500.0;     // stall duration charged to the rank's clock

  bool enabled() const {
    return drop_rate > 0 || delay_rate > 0 || corrupt_rate > 0 || device_flip_rate > 0 ||
           stall_rate > 0;
  }
};

// recovery policy of the reliable message layer (src/comm); also carried by
// InvertParams so applications can tune it per solve
struct RetryPolicy {
  int max_retries = 3;            // resend attempts per message before giving up
  double ack_timeout_us = 50.0;   // sim time for the sender to notice a lost attempt
  double backoff_us = 25.0;       // exponential backoff base between attempts
  double backoff_factor = 2.0;
  // frame halo messages with sequence numbers + checksums; detection cost is
  // charged at checksum_bw_gbs (hardware CRC32C via SSE4.2 on the Nehalem
  // hosts streams at memory bandwidth)
  bool checksums = false;
  double checksum_bw_gbs = 20.0;
  // wall-clock guard on wait(): a receiver stuck this long with no arrival
  // raises CommTimeout instead of hanging CI forever (0 disables)
  double wall_timeout_ms = 20000;
};

// per-rank fault/recovery accounting; aggregated by VirtualCluster::run
struct FaultCounters {
  // injected events
  long drops = 0;
  long delays = 0;
  long corruptions = 0;
  long device_flips = 0;
  long stalls = 0;
  // detection and recovery at the comm layer
  long checksum_errors = 0;    // corrupt frames caught by the receiver
  long retries = 0;            // resend attempts by the reliable sender
  long recovered_messages = 0; // messages delivered after >= 1 lost/corrupt attempt
  double recovery_us = 0;      // sim time charged to timeouts, backoff, and stalls

  FaultCounters& operator+=(const FaultCounters& o) {
    drops += o.drops;
    delays += o.delays;
    corruptions += o.corruptions;
    device_flips += o.device_flips;
    stalls += o.stalls;
    checksum_errors += o.checksum_errors;
    retries += o.retries;
    recovered_messages += o.recovered_messages;
    recovery_us += o.recovery_us;
    return *this;
  }
};

// what the transport does with one send attempt
struct MessageFault {
  bool drop = false;
  bool corrupt = false;
  double delay_factor = 1.0;
  double stall_us = 0;
  std::uint64_t corrupt_bits = 0; // selector for which payload bit to flip
};

// Immutable, shared across ranks.  Draws are stateless pure functions of
// (seed, rank, counter, kind); the per-rank counters live in FaultStream.
class FaultModel {
public:
  explicit FaultModel(const FaultConfig& config) : config_(config) {}

  const FaultConfig& config() const { return config_; }
  bool enabled() const { return config_.enabled(); }

  MessageFault message_fault(int rank, std::uint64_t event) const;
  // returns a 64-bit flip selector (site and bit) when the draw fires
  std::optional<std::uint64_t> device_fault(int rank, std::uint64_t event) const;

private:
  FaultConfig config_;
};

// Per-rank view: owns the event counters and the fault/recovery accounting.
// One per RankContext; accessed only from that rank's thread.
class FaultStream {
public:
  FaultStream(const FaultModel* model, int rank) : model_(model), rank_(rank) {}

  bool enabled() const { return model_ != nullptr && model_->enabled(); }
  const FaultConfig& config() const { return model_->config(); }

  MessageFault next_message_fault() {
    return model_->message_fault(rank_, message_events_++);
  }
  std::optional<std::uint64_t> next_device_fault() {
    return model_->device_fault(rank_, device_events_++);
  }

  FaultCounters& counters() { return counters_; }
  const FaultCounters& counters() const { return counters_; }

private:
  const FaultModel* model_ = nullptr;
  int rank_ = 0;
  std::uint64_t message_events_ = 0;
  std::uint64_t device_events_ = 0;
  FaultCounters counters_;
};

} // namespace quda::sim
