#pragma once
// Seeded, deterministic fault injection for the simulated cluster.
//
// The paper's production setting (16 nodes, 32 GTX 285s with ECC *off*, a
// shared QDR IB switch) is exactly the regime where transient faults --
// dropped or late messages, PCIe stalls, silent bit-flips in device memory
// -- dominate operational cost.  This module injects those faults on a
// reproducible schedule: every draw is a pure function of
// (seed, rank, per-rank event counter, fault kind), with no wall-clock
// randomness, so a given seed produces the identical fault schedule and
// identical simulated-time totals on every run regardless of OS thread
// scheduling.
//
// Injection happens in the transport (RankContext::isend stamps each
// message attempt) and in the parallel operator (one device-memory draw per
// matrix application).  Recovery lives one layer up: the reliable message
// protocol in src/comm (sequence numbers, checksums, bounded retry) and the
// rollback/restart machinery in src/solvers.

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>

namespace quda::sim {

// typed failure raised when a message cannot be delivered within the retry
// budget -- or when a peer rank hit that condition and poisoned the cluster.
// Replaces blocking forever on a lost message.
struct CommTimeout : std::runtime_error {
  explicit CommTimeout(const std::string& what) : std::runtime_error(what) {}
};

// typed rejection of an ill-formed FaultConfig (negative rate, rate > 1,
// zero-seed ambiguity, ...); raised at FaultModel construction so a bad
// config can never silently skew a fault schedule
struct FaultConfigError : std::invalid_argument {
  explicit FaultConfigError(const std::string& what) : std::invalid_argument(what) {}
};

// how a rank dies: a crash stops servicing sends/recvs/allreduces at the
// drawn time; a hang stalls indefinitely (same transport silence, but the
// failure detector needs the longer hang timeout to declare it dead)
enum class DeathKind : std::uint8_t { Crash, Hang };

inline const char* death_kind_name(DeathKind k) {
  return k == DeathKind::Crash ? "crash" : "hang";
}

// Internal control-flow signal thrown on the dying rank's own thread the
// first time it reaches a transport operation at-or-after its drawn death
// time.  Not derived from std::exception on purpose: only the recovery loop
// in quda_api may catch it, never a generic catch (...) handler upstream.
struct RankDeath {
  int rank = -1;
  DeathKind kind = DeathKind::Crash;
  double time_us = 0; // rank-local sim time of death
};

// Guard for the rare generic handler that must observe arbitrary failures
// (checkpoint probing, batch rendezvous): called first inside a
// `catch (...)`, it lets a RankDeath pass through untouched and returns for
// everything else, so the handler can only swallow ordinary exceptions.
// tools/semantic_check.py (rule sim-death-swallow) accepts a generic catch
// whose body calls this, rethrows, or sits behind an explicit RankDeath arm.
inline void rethrow_if_rank_death() {
  try {
    throw;
  } catch (const RankDeath&) {
    throw;
  } catch (...) {
    // not a death: fall through to the caller's handler body
  }
}

// Typed failure delivered to the *survivors* by the failure detector when a
// peer dies mid-operation.  Replaces the CommTimeout cascade / deadlock a
// silent peer death would otherwise cause.
struct RankFailure : std::runtime_error {
  RankFailure(const std::string& what, int failed_rank_, DeathKind kind_)
      : std::runtime_error(what), failed_rank(failed_rank_), kind(kind_) {}
  int failed_rank = -1;
  DeathKind kind = DeathKind::Crash;
};

// one armed process-death draw: offset is relative to the arming time
struct DeathDraw {
  DeathKind kind = DeathKind::Crash;
  double offset_us = 0;
};

// fault environment of the simulated hardware; lives in ClusterSpec
struct FaultConfig {
  std::uint64_t seed = 12345;
  double drop_rate = 0;        // per message attempt: the attempt never arrives
  double delay_rate = 0;       // per delivered message: degraded-link transfer
  double delay_factor = 8.0;   // path-time multiplier for delayed messages
  double corrupt_rate = 0;     // per delivered message: one payload bit flipped
  double device_flip_rate = 0; // per operator application: device-memory SDC
  double stall_rate = 0;       // per send: transient rank stall (OS jitter, PCIe hiccup)
  double stall_us = 500.0;     // stall duration charged to the rank's clock

  // process-level failures (per solver incarnation, i.e. per arming)
  double crash_rate = 0; // rank dies at a drawn time inside crash_window_us
  double hang_rate = 0;  // rank stalls forever; detected via hang_timeout_us
  double crash_window_us = 100000.0;    // death time is uniform in [0, window) after arming
  double heartbeat_interval_us = 250.0; // detection latency for a crashed peer
  double hang_timeout_us = 2000.0;      // detection latency for a hung peer
  double respawn_us = 4000.0;           // warm-spare bring-up cost for the dead rank
  double rollback_us = 50.0;            // per-survivor solver rollback bookkeeping
  int max_failures = 4;                 // recovery attempts per solve before giving up

  bool process_faults() const { return crash_rate > 0 || hang_rate > 0; }

  bool enabled() const {
    return drop_rate > 0 || delay_rate > 0 || corrupt_rate > 0 || device_flip_rate > 0 ||
           stall_rate > 0 || process_faults();
  }

  // throws FaultConfigError on any out-of-range field (see fault_model.cpp)
  void validate() const;
};

// recovery policy of the reliable message layer (src/comm); also carried by
// InvertParams so applications can tune it per solve
struct RetryPolicy {
  int max_retries = 3;            // resend attempts per message before giving up
  double ack_timeout_us = 50.0;   // sim time for the sender to notice a lost attempt
  double backoff_us = 25.0;       // exponential backoff base between attempts
  double backoff_factor = 2.0;
  // frame halo messages with sequence numbers + checksums; detection cost is
  // charged at checksum_bw_gbs (hardware CRC32C via SSE4.2 on the Nehalem
  // hosts streams at memory bandwidth)
  bool checksums = false;
  double checksum_bw_gbs = 20.0;
  // wall-clock guard on wait(): a receiver stuck this long with no arrival
  // raises CommTimeout instead of hanging CI forever (0 disables)
  double wall_timeout_ms = 20000;
};

// per-rank fault/recovery accounting; aggregated by VirtualCluster::run
struct FaultCounters {
  // injected events
  long drops = 0;
  long delays = 0;
  long corruptions = 0;
  long device_flips = 0;
  long stalls = 0;
  // detection and recovery at the comm layer
  long checksum_errors = 0;    // corrupt frames caught by the receiver
  long retries = 0;            // resend attempts by the reliable sender
  long recovered_messages = 0; // messages delivered after >= 1 lost/corrupt attempt
  double recovery_us = 0;      // sim time charged to timeouts, backoff, and stalls
  // process-level failure and checkpoint/restart accounting
  long crashes = 0;                 // rank-crash injections that fired
  long hangs = 0;                   // rank-hang injections that fired
  long rank_failures_detected = 0;  // RankFailure deliveries on this rank
  long respawns = 0;                // warm-spare respawns of this rank
  long checkpoints_committed = 0;   // two-phase checkpoint commits this rank joined
  long restores = 0;                // checkpoint restores performed by this rank
  double detection_us = 0;          // sim time between death and cluster-wide detection
  double checkpoint_us = 0;         // sim time charged to checkpoint writes/commits
  double restore_us = 0;            // sim time charged to rollback + state restore

  FaultCounters& operator+=(const FaultCounters& o) {
    drops += o.drops;
    delays += o.delays;
    corruptions += o.corruptions;
    device_flips += o.device_flips;
    stalls += o.stalls;
    checksum_errors += o.checksum_errors;
    retries += o.retries;
    recovered_messages += o.recovered_messages;
    recovery_us += o.recovery_us;
    crashes += o.crashes;
    hangs += o.hangs;
    rank_failures_detected += o.rank_failures_detected;
    respawns += o.respawns;
    checkpoints_committed += o.checkpoints_committed;
    restores += o.restores;
    detection_us += o.detection_us;
    checkpoint_us += o.checkpoint_us;
    restore_us += o.restore_us;
    return *this;
  }
};

// what the transport does with one send attempt
struct MessageFault {
  bool drop = false;
  bool corrupt = false;
  double delay_factor = 1.0;
  double stall_us = 0;
  std::uint64_t corrupt_bits = 0; // selector for which payload bit to flip
};

// Immutable, shared across ranks.  Draws are stateless pure functions of
// (seed, rank, counter, kind); the per-rank counters live in FaultStream.
class FaultModel {
public:
  explicit FaultModel(const FaultConfig& config) : config_(config) { config_.validate(); }

  const FaultConfig& config() const { return config_; }
  bool enabled() const { return config_.enabled(); }

  MessageFault message_fault(int rank, std::uint64_t event) const;
  // returns a 64-bit flip selector (site and bit) when the draw fires
  std::optional<std::uint64_t> device_fault(int rank, std::uint64_t event) const;
  // process-death draw for one (rank, incarnation); incarnation 0 is the
  // original spawn, each warm-spare respawn re-arms with the next incarnation
  std::optional<DeathDraw> death_schedule(int rank, std::uint64_t incarnation) const;

private:
  FaultConfig config_;
};

// Per-rank view: owns the event counters and the fault/recovery accounting.
// One per RankContext; accessed only from that rank's thread.
class FaultStream {
public:
  FaultStream(const FaultModel* model, int rank) : model_(model), rank_(rank) {}

  bool enabled() const { return model_ != nullptr && model_->enabled(); }
  const FaultConfig& config() const { return model_->config(); }

  MessageFault next_message_fault() {
    return model_->message_fault(rank_, message_events_++);
  }
  std::optional<std::uint64_t> next_device_fault() {
    return model_->device_fault(rank_, device_events_++);
  }

  // one armed (absolute-time) death draw for the current incarnation
  struct ArmedDeath {
    DeathKind kind = DeathKind::Crash;
    double time_us = 0; // absolute sim time the rank goes silent
  };

  // (Re-)arm the process-death schedule for a new incarnation starting at
  // start_us.  Offsets are drawn relative to the arming time so a respawned
  // rank is not condemned to die again the instant it resumes.
  void arm_deaths(double start_us) {
    death_.reset();
    if (enabled() && config().process_faults()) {
      if (auto d = model_->death_schedule(rank_, incarnation_))
        death_ = ArmedDeath{d->kind, start_us + d->offset_us};
    }
    ++incarnation_;
  }
  void disarm_deaths() { death_.reset(); }
  // armed death whose time has come (checked at transport-op entry)
  const std::optional<ArmedDeath>& armed_death() const { return death_; }
  bool death_due(double now_us) const { return death_ && now_us >= death_->time_us; }
  std::uint64_t incarnation() const { return incarnation_; }

  FaultCounters& counters() { return counters_; }
  const FaultCounters& counters() const { return counters_; }

private:
  const FaultModel* model_ = nullptr;
  int rank_ = 0;
  std::uint64_t message_events_ = 0;
  std::uint64_t device_events_ = 0;
  std::uint64_t incarnation_ = 0;
  std::optional<ArmedDeath> death_;
  FaultCounters counters_;
};

} // namespace quda::sim
