#include "sim/fault_model.h"

namespace quda::sim {

namespace {

// splitmix64: the standard 64-bit finalizer; statistically strong enough for
// fault scheduling and fully deterministic across platforms
std::uint64_t mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

// one draw keyed on (seed, rank, event counter, kind salt)
std::uint64_t draw(std::uint64_t seed, int rank, std::uint64_t event, std::uint64_t salt) {
  std::uint64_t h = mix64(seed ^ salt);
  h = mix64(h ^ (static_cast<std::uint64_t>(static_cast<std::uint32_t>(rank)) << 32));
  return mix64(h ^ event);
}

// uniform in [0, 1)
double u01(std::uint64_t bits) {
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

constexpr std::uint64_t kSaltDrop = 0x64726f70;    // "drop"
constexpr std::uint64_t kSaltDelay = 0x646c6179;   // "dlay"
constexpr std::uint64_t kSaltCorrupt = 0x63727074; // "crpt"
constexpr std::uint64_t kSaltDevice = 0x64657620;  // "dev "
constexpr std::uint64_t kSaltStall = 0x73746c6c;   // "stll"

} // namespace

MessageFault FaultModel::message_fault(int rank, std::uint64_t event) const {
  MessageFault f;
  if (!enabled()) return f;
  if (config_.stall_rate > 0 &&
      u01(draw(config_.seed, rank, event, kSaltStall)) < config_.stall_rate)
    f.stall_us = config_.stall_us;
  if (config_.drop_rate > 0 &&
      u01(draw(config_.seed, rank, event, kSaltDrop)) < config_.drop_rate) {
    f.drop = true;
    return f; // a dropped attempt never materializes its delay or corruption
  }
  if (config_.corrupt_rate > 0) {
    const std::uint64_t bits = draw(config_.seed, rank, event, kSaltCorrupt);
    if (u01(bits) < config_.corrupt_rate) {
      f.corrupt = true;
      f.corrupt_bits = mix64(bits);
    }
  }
  if (config_.delay_rate > 0 &&
      u01(draw(config_.seed, rank, event, kSaltDelay)) < config_.delay_rate)
    f.delay_factor = config_.delay_factor;
  return f;
}

std::optional<std::uint64_t> FaultModel::device_fault(int rank, std::uint64_t event) const {
  if (config_.device_flip_rate <= 0) return std::nullopt;
  const std::uint64_t bits = draw(config_.seed, rank, event, kSaltDevice);
  if (u01(bits) >= config_.device_flip_rate) return std::nullopt;
  return mix64(bits);
}

} // namespace quda::sim
