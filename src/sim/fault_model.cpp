#include "sim/fault_model.h"

namespace quda::sim {

namespace {

// splitmix64: the standard 64-bit finalizer; statistically strong enough for
// fault scheduling and fully deterministic across platforms
std::uint64_t mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

// one draw keyed on (seed, rank, event counter, kind salt)
std::uint64_t draw(std::uint64_t seed, int rank, std::uint64_t event, std::uint64_t salt) {
  std::uint64_t h = mix64(seed ^ salt);
  h = mix64(h ^ (static_cast<std::uint64_t>(static_cast<std::uint32_t>(rank)) << 32));
  return mix64(h ^ event);
}

// uniform in [0, 1)
double u01(std::uint64_t bits) {
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

constexpr std::uint64_t kSaltDrop = 0x64726f70;      // "drop"
constexpr std::uint64_t kSaltDelay = 0x646c6179;     // "dlay"
constexpr std::uint64_t kSaltCorrupt = 0x63727074;   // "crpt"
constexpr std::uint64_t kSaltDevice = 0x64657620;    // "dev "
constexpr std::uint64_t kSaltStall = 0x73746c6c;     // "stll"
constexpr std::uint64_t kSaltCrash = 0x63727368;     // "crsh"
constexpr std::uint64_t kSaltHang = 0x68616e67;      // "hang"
constexpr std::uint64_t kSaltDeathTime = 0x6474696d; // "dtim"

// rate must be a number inside [0, 1]; NaN fails both comparisons
bool rate_ok(double r) { return r >= 0.0 && r <= 1.0; }

[[noreturn]] void reject(const char* field, double value, const char* why) {
  throw FaultConfigError(std::string("FaultConfig.") + field + " = " +
                         std::to_string(value) + ": " + why);
}

} // namespace

void FaultConfig::validate() const {
  struct Rate {
    const char* name;
    double value;
  };
  const Rate rates[] = {{"drop_rate", drop_rate},
                        {"delay_rate", delay_rate},
                        {"corrupt_rate", corrupt_rate},
                        {"device_flip_rate", device_flip_rate},
                        {"stall_rate", stall_rate},
                        {"crash_rate", crash_rate},
                        {"hang_rate", hang_rate}};
  for (const Rate& r : rates)
    if (!rate_ok(r.value)) reject(r.name, r.value, "rates are probabilities in [0, 1]");
  if (!(delay_factor >= 1.0))
    reject("delay_factor", delay_factor, "a delayed path cannot beat the nominal one");
  const Rate durations[] = {{"stall_us", stall_us},
                            {"heartbeat_interval_us", heartbeat_interval_us},
                            {"hang_timeout_us", hang_timeout_us},
                            {"respawn_us", respawn_us},
                            {"rollback_us", rollback_us}};
  for (const Rate& d : durations)
    if (!(d.value >= 0.0)) reject(d.name, d.value, "durations are non-negative");
  if (max_failures < 0)
    reject("max_failures", max_failures, "recovery budget cannot be negative");
  if (process_faults() && !(crash_window_us > 0.0))
    reject("crash_window_us", crash_window_us,
           "death times are drawn uniformly inside a positive window");
  // seed 0 collapses the seed^salt mixing into the bare salts, making the
  // per-kind draws correlated across kinds; reject the ambiguity outright
  if (enabled() && seed == 0)
    reject("seed", 0, "seed 0 is ambiguous (degenerate per-kind mixing); pick any nonzero seed");
}

MessageFault FaultModel::message_fault(int rank, std::uint64_t event) const {
  MessageFault f;
  if (!enabled()) return f;
  if (config_.stall_rate > 0 &&
      u01(draw(config_.seed, rank, event, kSaltStall)) < config_.stall_rate)
    f.stall_us = config_.stall_us;
  if (config_.drop_rate > 0 &&
      u01(draw(config_.seed, rank, event, kSaltDrop)) < config_.drop_rate) {
    f.drop = true;
    return f; // a dropped attempt never materializes its delay or corruption
  }
  if (config_.corrupt_rate > 0) {
    const std::uint64_t bits = draw(config_.seed, rank, event, kSaltCorrupt);
    if (u01(bits) < config_.corrupt_rate) {
      f.corrupt = true;
      f.corrupt_bits = mix64(bits);
    }
  }
  if (config_.delay_rate > 0 &&
      u01(draw(config_.seed, rank, event, kSaltDelay)) < config_.delay_rate)
    f.delay_factor = config_.delay_factor;
  return f;
}

std::optional<std::uint64_t> FaultModel::device_fault(int rank, std::uint64_t event) const {
  if (config_.device_flip_rate <= 0) return std::nullopt;
  const std::uint64_t bits = draw(config_.seed, rank, event, kSaltDevice);
  if (u01(bits) >= config_.device_flip_rate) return std::nullopt;
  return mix64(bits);
}

std::optional<DeathDraw> FaultModel::death_schedule(int rank, std::uint64_t incarnation) const {
  if (!config_.process_faults()) return std::nullopt;
  DeathDraw d;
  if (config_.crash_rate > 0 &&
      u01(draw(config_.seed, rank, incarnation, kSaltCrash)) < config_.crash_rate) {
    d.kind = DeathKind::Crash;
  } else if (config_.hang_rate > 0 &&
             u01(draw(config_.seed, rank, incarnation, kSaltHang)) < config_.hang_rate) {
    d.kind = DeathKind::Hang;
  } else {
    return std::nullopt;
  }
  d.offset_us =
      u01(draw(config_.seed, rank, incarnation, kSaltDeathTime)) * config_.crash_window_us;
  return d;
}

} // namespace quda::sim
