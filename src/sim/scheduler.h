#pragma once
// Pluggable rank schedulers for the discrete-event cluster simulator
// (DESIGN.md §12).  VirtualCluster::run hands every rank body to one of
// these; the RankContext SPMD API is identical under both:
//
//   ThreadsScheduler -- one OS thread per simulated rank, parked on the
//     cluster-wide condition variable (the historical execution mode).
//     Capacity-limited: thread stacks and kernel scheduling make O(1000)
//     ranks impractical, so exceeding threads_scheduler_capacity() raises
//     a typed SchedulerCapacityError naming the escape hatch.
//
//   SeqScheduler -- one cooperative event loop on the calling thread,
//     running each rank as a stackful fiber (ucontext) with a lazily
//     committed guard-paged stack.  The loop always resumes the runnable
//     fiber with the smallest (simulated clock, rank) pair, so execution
//     order is a pure function of the simulation state -- there is no OS
//     interleaving left to be nondeterministic about.  Rank count becomes
//     a parameter: 1024 ranks are 1024 fibers, not 1024 threads.
//
// Because message/collective completion times are pure functions of the
// participants' clocks (conservative DES), the two schedulers produce
// bit-identical simulated timelines; tests/test_scheduler_equivalence.cpp
// pins that equivalence differentially.

#include "core/sync.h"
#include "sim/cluster_spec.h"

#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace quda::sim {

class RankContext;

// Raised by VirtualCluster::run when the requested rank count exceeds what
// the threads scheduler can service, instead of dying inside std::thread
// construction.  The message names the escape hatch.
class SchedulerCapacityError : public std::runtime_error {
public:
  SchedulerCapacityError(int requested, int capacity)
      : std::runtime_error(
            "simulated cluster of " + std::to_string(requested) +
            " ranks exceeds the threads scheduler's capacity of " + std::to_string(capacity) +
            " OS threads; use the cooperative event-loop scheduler instead "
            "(QUDA_SIM_SCHED=seq, or ClusterSpec::scheduler = SchedulerKind::Seq)"),
        requested_(requested), capacity_(capacity) {}

  int requested() const { return requested_; }
  int capacity() const { return capacity_; }

private:
  int requested_;
  int capacity_;
};

// canonical name of a resolved scheduler kind ("threads" | "seq")
const char* scheduler_name(SchedulerKind kind);

// Resolve Auto: the QUDA_SIM_SCHED environment variable (threads|seq; any
// other value is an std::invalid_argument), defaulting to Threads.  An
// explicit ClusterSpec::scheduler setting wins over the environment.
SchedulerKind resolve_scheduler(SchedulerKind requested);

// rank count the threads scheduler accepts before raising a typed
// SchedulerCapacityError (QUDA_SIM_MAX_RANK_THREADS overrides; >= 1)
int threads_scheduler_capacity();

// Execution engine behind VirtualCluster::run.  run() drives every rank
// body to completion; bodies must not throw (VirtualCluster wraps them).
// wait_transport/wake_all implement the condition-variable protocol the
// transport blocks on: the cluster mutex is held on entry and on return of
// wait_transport, and released while parked.
class RankScheduler {
public:
  virtual ~RankScheduler() = default;

  // run body(*ranks[r]) once per rank; returns when every rank finished.
  // trace_on binds each rank's tracer as the thread-local trace::current()
  // for the duration of that rank's execution (per resume under seq).
  virtual void run(const std::vector<RankContext*>& ranks, bool trace_on,
                   const std::function<void(RankContext&)>& body) = 0;

  // Park the calling rank until wake_all().  Returns true when the caller
  // armed a watchdog (wall_timeout_ms > 0) and it fired with no wakeup:
  // under threads that is a real wall-clock cv timeout; under seq it is the
  // deterministic equivalent -- every rank is parked, so no wakeup can ever
  // come.  A seq-mode deadlock with no watchdog armed anywhere throws
  // std::runtime_error from the lowest-ranked parked fiber.
  virtual bool wait_transport(core::MutexLock& lock, double wall_timeout_ms) = 0;

  // wake every parked rank so it re-checks its predicate
  virtual void wake_all() = 0;
};

// construct the scheduler for a resolved (non-Auto) kind; the mutex/condvar
// pair is the cluster's transport lock that wait_transport operates on
std::unique_ptr<RankScheduler> make_scheduler(SchedulerKind kind, core::Mutex& mutex,
                                              core::CondVar& cv);

} // namespace quda::sim
