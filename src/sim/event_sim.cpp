#include "sim/event_sim.h"

#include <cmath>
#include <exception>
#include <stdexcept>
#include <thread>

namespace quda::sim {

RankContext::RankContext(VirtualCluster& cluster, int rank, const ClusterSpec& spec)
    : cluster_(cluster), rank_(rank), spec_(spec),
      device_(spec.device, spec.bus, spec.good_numa_binding) {}

int RankContext::size() const { return spec_.num_ranks(); }

void RankContext::isend(int dst, int tag, std::vector<std::byte> payload,
                        std::int64_t modeled_bytes) {
  Message m;
  m.payload = std::move(payload);
  m.modeled_bytes = modeled_bytes;
  m.send_time_us = clock_.now_us;
  {
    std::lock_guard<std::mutex> lock(cluster_.mutex_);
    cluster_.channels_[{rank_, dst, tag}].queue.push_back(std::move(m));
  }
  cluster_.cv_.notify_all();
  clock_.advance(spec_.net.mpi_overhead_us);
}

RankContext::PendingRecv RankContext::irecv(int src, int tag) {
  PendingRecv p{src, tag, clock_.now_us};
  clock_.advance(spec_.net.mpi_overhead_us);
  return p;
}

RecvHandle RankContext::wait(const PendingRecv& pending) {
  RecvHandle h;
  {
    std::unique_lock<std::mutex> lock(cluster_.mutex_);
    auto& chan = cluster_.channels_[{pending.src, rank_, pending.tag}];
    cluster_.cv_.wait(lock, [&] { return cluster_.aborted_ || !chan.queue.empty(); });
    if (chan.queue.empty()) throw std::runtime_error("peer rank aborted during recv");
    h.msg_ = std::move(chan.queue.front());
    chan.queue.pop_front();
  }
  const double path =
      spec_.net.transfer_time_us(h.msg_.modeled_bytes, spec_.same_node(pending.src, rank_),
                                 spec_.good_numa_binding);
  h.arrival_us_ = std::max(h.msg_.send_time_us, pending.post_time_us) + path;
  clock_.now_us = std::max(clock_.now_us, h.arrival_us_);
  clock_.advance(spec_.net.mpi_overhead_us);
  return h;
}

RecvHandle RankContext::recv(int src, int tag) { return wait(irecv(src, tag)); }

void RankContext::allreduce_sum(double* values, int count) {
  const int n = spec_.num_ranks();
  if (n == 1) return;

  // tree reduction: ceil(log2 N) network steps after the last rank arrives
  const int steps = static_cast<int>(std::ceil(std::log2(static_cast<double>(n))));
  const double step_cost =
      spec_.net.ib_latency_us + spec_.net.mpi_overhead_us; // small payload per step

  std::unique_lock<std::mutex> lock(cluster_.mutex_);
  auto& red = cluster_.red_;
  const std::int64_t my_generation = red.generation;
  if (red.sum.empty()) red.sum.assign(static_cast<std::size_t>(count), 0.0);
  if (std::int64_t(red.sum.size()) != count)
    throw std::logic_error("mismatched allreduce vector lengths across ranks");
  for (int i = 0; i < count; ++i) red.sum[static_cast<std::size_t>(i)] += values[i];
  red.max_time = std::max(red.max_time, clock_.now_us);
  if (++red.arrived == n) {
    red.result = std::move(red.sum);
    red.sum.clear();
    red.done_time = red.max_time + steps * step_cost;
    red.max_time = 0;
    red.arrived = 0;
    ++red.generation;
    cluster_.cv_.notify_all();
  } else {
    cluster_.cv_.wait(lock,
                      [&] { return cluster_.aborted_ || red.generation != my_generation; });
    if (red.generation == my_generation)
      throw std::runtime_error("peer rank aborted during allreduce");
  }
  clock_.now_us = std::max(clock_.now_us, red.done_time);
  for (int i = 0; i < count; ++i) values[i] = red.result[static_cast<std::size_t>(i)];
}

void RankContext::barrier() {
  double v = 0.0;
  allreduce_sum(&v, 1);
}

void VirtualCluster::run(const std::function<void(RankContext&)>& fn) {
  const int n = spec_.num_ranks();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    aborted_ = false;
    channels_.clear();
  }
  std::vector<std::unique_ptr<RankContext>> contexts;
  contexts.reserve(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) contexts.push_back(std::make_unique<RankContext>(*this, r, spec_));

  std::vector<std::thread> threads;
  std::exception_ptr first_error;
  std::mutex error_mutex;

  threads.reserve(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    threads.emplace_back([&, r] {
      try {
        fn(*contexts[static_cast<std::size_t>(r)]);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        {
          std::lock_guard<std::mutex> lock(mutex_);
          aborted_ = true;
        }
        cv_.notify_all(); // unblock peers waiting on us
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);

  makespan_us_ = 0;
  for (auto& c : contexts) makespan_us_ = std::max(makespan_us_, c->clock().now_us);
  channels_.clear();
}

} // namespace quda::sim
