#include "sim/event_sim.h"

#include "core/provenance.h"
#include "perfmodel/costs.h"
#include "trace/telemetry.h"
#include "trace/trace_export.h"

#include <algorithm>
#include <cstdlib>
#include <exception>
#include <stdexcept>

namespace quda::sim {

RankContext::RankContext(VirtualCluster& cluster, int rank, const ClusterSpec& spec)
    : cluster_(cluster), rank_(rank), spec_(spec),
      device_(spec.device, spec.bus, spec.good_numa_binding),
      faults_(&cluster.fault_model_, rank) {
  tracer_.bind(rank, &clock_.now_us);
  // the recorder samples the clock, the tracer's event stream and the
  // retry counter read-only -- it never advances or mutates any of them
  recorder_.bind(rank, &clock_.now_us, &tracer_, &faults_.counters().retries);
}

int RankContext::size() const { return spec_.num_ranks(); }

void RankContext::check_death() {
  if (!faults_.death_due(clock_.now_us)) return;
  const FaultStream::ArmedDeath d = *faults_.armed_death();
  faults_.disarm_deaths();
  auto& counters = faults_.counters();
  const char* name;
  if (d.kind == DeathKind::Crash) {
    ++counters.crashes;
    name = "rank_crash";
  } else {
    ++counters.hangs;
    name = "rank_hang";
  }
  // the death is stamped at the rank's *current* clock -- the first
  // transport op at-or-after the drawn time -- which is deterministic;
  // the clock itself stays untouched
  tracer_.instant(trace::Cat::Fault, name, trace::kTrackHost, clock_.now_us);
  cluster_.register_death(rank_, d.kind, clock_.now_us);
  throw RankDeath{rank_, d.kind, clock_.now_us};
}

void RankContext::enter_recovery() {
  {
    core::MutexLock lock(cluster_.mutex_);
    if (rank_ < static_cast<int>(cluster_.terminal_.size()))
      cluster_.terminal_[static_cast<std::size_t>(rank_)] = 1;
  }
  // cascade: peers blocked on this rank re-check their terminal conditions
  cluster_.sched_->wake_all();
}

RecoveryEpoch RankContext::recovery_rendezvous() {
  check_death();
  const int n = spec_.num_ranks();
  RecoveryEpoch out;
  core::MutexLock lock(cluster_.mutex_);
  auto& rec = cluster_.recovery_;
  const std::int64_t my_generation = rec.generation;
  rec.max_arrival = std::max(rec.max_arrival, clock_.now_us);
  if (++rec.arrived == n) {
    // the epoch's death set is complete here (every death happens-before
    // its rank's rendezvous arrival), so the failure detector's completion
    // time is a deterministic fold over it
    double detect = 0;
    for (const DeathRecord& d : cluster_.deaths_) {
      const double latency = d.kind == DeathKind::Hang ? spec_.faults.hang_timeout_us
                                                       : spec_.faults.heartbeat_interval_us;
      detect = std::max(detect, d.time_us + latency);
    }
    out.epoch = rec.last.epoch + 1;
    out.detect_us = detect;
    out.resume_us = std::max(rec.max_arrival, detect);
    out.deaths = std::move(cluster_.deaths_);
    cluster_.deaths_.clear();
    std::sort(out.deaths.begin(), out.deaths.end(),
              [](const DeathRecord& a, const DeathRecord& b) {
                return a.rank != b.rank ? a.rank < b.rank : a.time_us < b.time_us;
              });
    // cluster-wide epoch reset: in-flight messages and partial reductions
    // from the aborted attempt vanish; every rank restarts from the same
    // committed checkpoint with fresh transport state
    cluster_.channels_.clear();
    auto& red = cluster_.red_;
    red.arrived = 0;
    red.width = -1;
    for (auto& slot : red.contrib) slot.clear();
    red.max_time = 0;
    red.max_rank = -1;
    std::fill(red.arrived_mask.begin(), red.arrived_mask.end(), std::uint8_t{0});
    std::fill(cluster_.terminal_.begin(), cluster_.terminal_.end(), std::uint8_t{0});
    rec.last = out;
    rec.arrived = 0;
    rec.max_arrival = 0;
    ++rec.generation;
    cluster_.sched_->wake_all();
  } else {
    while (!(cluster_.aborted_ || rec.generation != my_generation))
      (void)cluster_.sched_->wait_transport(lock, 0);
    if (rec.generation == my_generation) {
      if (cluster_.abort_kind_ == VirtualCluster::AbortKind::Timeout)
        throw CommTimeout("peer rank raised CommTimeout during recovery");
      throw std::runtime_error("peer rank aborted during recovery");
    }
    out = rec.last;
  }
  clock_.now_us = std::max(clock_.now_us, out.resume_us);
  return out;
}

RankContext::SendStatus RankContext::isend(int dst, int tag, std::vector<std::byte> payload,
                                           std::int64_t modeled_bytes) {
  check_death();
  SendStatus status;
  Message m;
  m.payload = std::move(payload);
  m.modeled_bytes = modeled_bytes;

  if (faults_.enabled()) {
    const MessageFault f = faults_.next_message_fault();
    auto& counters = faults_.counters();
    if (f.stall_us > 0) {
      // transient rank stall (OS jitter, PCIe hiccup): charged before the send
      clock_.advance(f.stall_us);
      ++counters.stalls;
      counters.recovery_us += f.stall_us;
      tracer_.instant(trace::Cat::Fault, "stall", trace::kTrackHost, clock_.now_us, 0, dst, tag);
    }
    if (f.drop) {
      // the attempt never arrives; enqueue a tombstone so the receiver's
      // message matching stays in lockstep with the sender's attempt count
      m.payload.clear();
      m.dropped = true;
      ++counters.drops;
      status.delivered = false;
    } else {
      if (f.corrupt) {
        m.corrupt = true;
        ++counters.corruptions;
        status.corrupted = true;
        if (!m.payload.empty()) {
          // real corruption: flip one bit of the payload in flight
          const std::uint64_t nbits = static_cast<std::uint64_t>(m.payload.size()) * 8;
          const std::uint64_t bit = f.corrupt_bits % nbits;
          m.payload[bit / 8] ^= std::byte{static_cast<unsigned char>(1u << (bit % 8))};
        }
      }
      if (f.delay_factor != 1.0) {
        m.delay_factor = f.delay_factor;
        ++counters.delays;
      }
    }
  }

  m.send_time_us = clock_.now_us;
  tracer_.instant(trace::Cat::Comm, "isend", trace::kTrackHost, m.send_time_us, modeled_bytes,
                  dst, tag);
  if (m.dropped) {
    tracer_.instant(trace::Cat::Fault, "drop", trace::kTrackHost, m.send_time_us, modeled_bytes,
                    dst, tag);
  } else if (m.corrupt) {
    tracer_.instant(trace::Cat::Fault, "corrupt", trace::kTrackHost, m.send_time_us,
                    modeled_bytes, dst, tag);
  }
  {
    core::MutexLock lock(cluster_.mutex_);
    cluster_.channels_[{rank_, dst, tag}].queue.push_back(std::move(m));
  }
  cluster_.sched_->wake_all();
  clock_.advance(spec_.net.mpi_overhead_us);
  return status;
}

void RankContext::post_send_failure(int dst, int tag) {
  Message m;
  m.failed = true;
  m.send_time_us = clock_.now_us;
  {
    core::MutexLock lock(cluster_.mutex_);
    cluster_.channels_[{rank_, dst, tag}].queue.push_back(std::move(m));
  }
  cluster_.sched_->wake_all();
}

void RankContext::raise_timeout(const std::string& what) {
  cluster_.poison(VirtualCluster::AbortKind::Timeout);
  throw CommTimeout(what);
}

RankContext::PendingRecv RankContext::irecv(int src, int tag) {
  check_death();
  PendingRecv p{src, tag, clock_.now_us};
  clock_.advance(spec_.net.mpi_overhead_us);
  tracer_.instant(trace::Cat::Comm, "irecv", trace::kTrackHost, p.post_time_us, 0, src, tag);
  return p;
}

RecvHandle RankContext::wait(PendingRecv& pending, double wall_timeout_ms) {
  check_death();
  if (pending.consumed)
    throw std::logic_error("RankContext::wait() called twice on the same PendingRecv");
  pending.consumed = true;
  const double wait_begin_us = clock_.now_us;

  RecvHandle h;
  {
    core::MutexLock lock(cluster_.mutex_);
    auto& chan = cluster_.channels_[{pending.src, rank_, pending.tag}];
    for (;;) {
      // skip dropped-attempt tombstones silently: the lost attempt's timing
      // effect reaches us through the retransmission's later send time
      while (!chan.queue.empty() && chan.queue.front().dropped && !chan.queue.front().failed)
        chan.queue.pop_front();
      if (!chan.queue.empty()) break;
      // Failure detector: an empty channel from a terminal (dead or
      // recovering) source can never fill -- its sends happen-before its
      // terminal marking in program order -- so the outcome is deterministic
      // even though the *wall* moment we notice is not.  The clock stays
      // untouched; detection latency is charged once, at the rendezvous.
      if (pending.src < static_cast<int>(cluster_.terminal_.size()) &&
          cluster_.terminal_[static_cast<std::size_t>(pending.src)]) {
        DeathKind kind = DeathKind::Crash;
        for (const DeathRecord& d : cluster_.deaths_)
          if (d.rank == pending.src) kind = d.kind;
        throw RankFailure("rank " + std::to_string(pending.src) +
                              " went silent while rank " + std::to_string(rank_) +
                              " was waiting on it",
                          pending.src, kind);
      }
      if (cluster_.aborted_) {
        if (cluster_.abort_kind_ == VirtualCluster::AbortKind::Timeout)
          throw CommTimeout("peer rank raised CommTimeout during recv");
        throw std::runtime_error("peer rank aborted during recv");
      }
      // park on the scheduler: under threads this is the condvar (with the
      // wall-clock watchdog when armed); under seq the fiber yields to the
      // event loop, and "timed out" is its deterministic equivalent --
      // every rank parked with no wakeup pending
      if (cluster_.sched_->wait_transport(lock, wall_timeout_ms) && chan.queue.empty() &&
          !cluster_.aborted_ && cluster_.deaths_.empty()) {
        lock.unlock();
        raise_timeout("wall-clock timeout waiting for message from rank " +
                      std::to_string(pending.src));
      }
    }
    if (chan.queue.front().failed) {
      chan.queue.pop_front();
      lock.unlock();
      raise_timeout("sender rank " + std::to_string(pending.src) +
                    " exhausted its retry budget");
    }
    h.msg_ = std::move(chan.queue.front());
    chan.queue.pop_front();
  }
  // interconnect-aware wire time: same-node shm, one-hop IB, or the
  // cross-switch fat-tree path (flat specs reproduce the historical
  // NetworkModel::transfer_time_us bit-for-bit)
  const double path =
      perf::comm_path_us(spec_, pending.src, rank_, h.msg_.modeled_bytes) * h.msg_.delay_factor;
  h.arrival_us_ = std::max(h.msg_.send_time_us, pending.post_time_us) + path;
  clock_.now_us = std::max(clock_.now_us, h.arrival_us_);
  clock_.advance(spec_.net.mpi_overhead_us);
  if (tracer_.enabled()) {
    // the message's in-flight window on the comm track (tagged with the
    // link class it crossed), and the host-side blocking window of the wait
    // itself; the wait carries the happens-before edge back to the sender
    // (send time + network path)
    tracer_.span(trace::Cat::Comm, "msg_flight", trace::kTrackComm, h.msg_.send_time_us,
                 h.arrival_us_, h.msg_.modeled_bytes, pending.src, pending.tag);
    tracer_.link(static_cast<int>(spec_.link_class(pending.src, rank_)));
    tracer_.span(trace::Cat::Comm, "mpi_wait", trace::kTrackHost, wait_begin_us, clock_.now_us,
                 h.msg_.modeled_bytes, pending.src, pending.tag);
    tracer_.dep(pending.src, h.msg_.send_time_us, path);
  }
  return h;
}

RecvHandle RankContext::recv(int src, int tag) {
  PendingRecv p = irecv(src, tag);
  return wait(p);
}

void RankContext::allreduce_sum(double* values, int count) {
  check_death();
  const int n = spec_.num_ranks();
  if (n == 1) return;
  const double reduce_begin_us = clock_.now_us;

  // tree reduction: ceil(log2 N) network steps after the last rank arrives,
  // plus the switch-tree traversal surcharge on hierarchical interconnects
  // (flat specs reproduce the historical steps * step cost bit-for-bit)
  const double tree_cost = perf::allreduce_tree_cost_us(spec_);

  // raised when a terminal rank can never arrive at this generation; which
  // terminal rank we name is informational only (never fed into timing or
  // traces), so scanning the racy death set here is harmless
  auto raise_rank_failure = [&]() QUDA_REQUIRES(cluster_.mutex_) -> void {
    int failed = -1;
    for (std::size_t r = 0; r < cluster_.terminal_.size() && failed < 0; ++r)
      if (cluster_.terminal_[r] &&
          (r >= cluster_.red_.arrived_mask.size() || !cluster_.red_.arrived_mask[r]))
        failed = static_cast<int>(r);
    DeathKind kind = DeathKind::Crash;
    for (const DeathRecord& d : cluster_.deaths_)
      if (d.rank == failed) kind = d.kind;
    throw RankFailure("rank " + std::to_string(failed) +
                          " went silent during an allreduce joined by rank " +
                          std::to_string(rank_),
                      failed, kind);
  };

  core::MutexLock lock(cluster_.mutex_);
  auto& red = cluster_.red_;
  const std::int64_t my_generation = red.generation;
  if (red.arrived_mask.size() != static_cast<std::size_t>(n))
    red.arrived_mask.assign(static_cast<std::size_t>(n), 0);
  if (cluster_.reduction_blocked_by_failure()) raise_rank_failure();
  if (red.width < 0) red.width = count;
  if (red.width != count)
    throw std::logic_error("mismatched allreduce vector lengths across ranks");
  if (red.contrib.size() != static_cast<std::size_t>(n))
    red.contrib.assign(static_cast<std::size_t>(n), {});
  // park this rank's contribution in its slot; the completing arrival folds
  // the slots in rank order, so the sum never depends on arrival order
  red.contrib[static_cast<std::size_t>(rank_)].assign(values, values + count);
  red.arrived_mask[static_cast<std::size_t>(rank_)] = 1;
  // track the gating rank (argmax arrival, ties to the lowest rank so the
  // record is deterministic under any OS interleaving of equal clocks)
  if (red.arrived == 0 || clock_.now_us > red.max_time ||
      (clock_.now_us == red.max_time && rank_ < red.max_rank)) {
    red.max_time = clock_.now_us;
    red.max_rank = rank_;
  }
  if (++red.arrived == n) {
    // deterministic rank-order fold of the parked contributions
    red.result.assign(static_cast<std::size_t>(count), 0.0);
    for (int r = 0; r < n; ++r) {
      const auto& slot = red.contrib[static_cast<std::size_t>(r)];
      for (int i = 0; i < count; ++i) red.result[static_cast<std::size_t>(i)] += slot[i];
    }
    for (auto& slot : red.contrib) slot.clear();
    red.width = -1;
    red.done_time = red.max_time + tree_cost;
    red.done_gate_time = red.max_time;
    red.done_gate_rank = red.max_rank;
    red.max_time = 0;
    red.max_rank = -1;
    red.arrived = 0;
    std::fill(red.arrived_mask.begin(), red.arrived_mask.end(), std::uint8_t{0});
    ++red.generation;
    cluster_.sched_->wake_all();
  } else {
    while (!(cluster_.aborted_ || red.generation != my_generation ||
             cluster_.reduction_blocked_by_failure()))
      (void)cluster_.sched_->wait_transport(lock, 0);
    if (red.generation == my_generation) {
      // a generation that can never complete aborts with *no* collective
      // span recorded on any participant, keeping the per-rank collective
      // counts the critical-path linker cross-validates symmetric
      if (cluster_.reduction_blocked_by_failure()) raise_rank_failure();
      if (cluster_.abort_kind_ == VirtualCluster::AbortKind::Timeout)
        throw CommTimeout("peer rank raised CommTimeout during allreduce");
      throw std::runtime_error("peer rank aborted during allreduce");
    }
  }
  clock_.now_us = std::max(clock_.now_us, red.done_time);
  for (int i = 0; i < count; ++i) values[i] = red.result[static_cast<std::size_t>(i)];
  tracer_.span(trace::Cat::Collective, "allreduce", trace::kTrackHost, reduce_begin_us,
               clock_.now_us, static_cast<std::int64_t>(count) * 8);
  // rendezvous edge: the rank whose (latest) arrival gated this generation,
  // its arrival time, and the tree-reduction cost on top of it
  tracer_.dep(red.done_gate_rank, red.done_gate_time, tree_cost);
}

void RankContext::barrier() {
  double v = 0.0;
  allreduce_sum(&v, 1);
}

void VirtualCluster::register_death(int rank, DeathKind kind, double time_us) {
  {
    core::MutexLock lock(mutex_);
    deaths_.push_back(DeathRecord{rank, kind, time_us});
    if (rank < static_cast<int>(terminal_.size()))
      terminal_[static_cast<std::size_t>(rank)] = 1;
  }
  sched_->wake_all();
}

bool VirtualCluster::reduction_blocked_by_failure() const {
  for (std::size_t r = 0; r < terminal_.size(); ++r)
    if (terminal_[r] && (r >= red_.arrived_mask.size() || !red_.arrived_mask[r])) return true;
  return false;
}

void VirtualCluster::poison(AbortKind kind) {
  {
    core::MutexLock lock(mutex_);
    if (!aborted_) {
      aborted_ = true;
      abort_kind_ = kind;
    }
  }
  sched_->wake_all();
}

void VirtualCluster::run(const std::function<void(RankContext&)>& fn) {
  const int n = spec_.num_ranks();
  const SchedulerKind kind = resolve_scheduler(spec_.scheduler);
  if (kind == SchedulerKind::Threads && n > threads_scheduler_capacity())
    throw SchedulerCapacityError(n, threads_scheduler_capacity());
  {
    core::MutexLock lock(mutex_);
    aborted_ = false;
    abort_kind_ = AbortKind::None;
    channels_.clear();
    deaths_.clear();
    terminal_.assign(static_cast<std::size_t>(n), 0);
    red_.arrived = 0;
    red_.width = -1;
    for (auto& slot : red_.contrib) slot.clear();
    red_.max_time = 0;
    red_.max_rank = -1;
    red_.arrived_mask.assign(static_cast<std::size_t>(n), 0);
    recovery_ = RecoverySync{};
  }
  sched_ = make_scheduler(kind, mutex_, cv_);
  // tracing turns on via the spec or the QUDA_SIM_TRACE environment variable
  // (whose value doubles as the Chrome JSON export path)
  const char* env_trace = std::getenv("QUDA_SIM_TRACE");
  const bool trace_on = spec_.trace.enabled || (env_trace != nullptr && env_trace[0] != '\0');
  std::string trace_path = spec_.trace.path;
  if (trace_path.empty() && env_trace != nullptr) trace_path = env_trace;
  // telemetry mirrors the trace switch: the spec or QUDA_SIM_TELEMETRY
  // (whose value doubles as the JSONL export path)
  const char* env_telem = std::getenv("QUDA_SIM_TELEMETRY");
  const bool telemetry_on =
      spec_.telemetry.enabled || (env_telem != nullptr && env_telem[0] != '\0');
  std::string telemetry_path = spec_.telemetry.path;
  if (telemetry_path.empty() && env_telem != nullptr) telemetry_path = env_telem;

  std::vector<std::unique_ptr<RankContext>> contexts;
  contexts.reserve(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) contexts.push_back(std::make_unique<RankContext>(*this, r, spec_));
  if (trace_on)
    for (auto& c : contexts) c->tracer().set_enabled(true);
  if (telemetry_on)
    for (auto& c : contexts) c->recorder().set_enabled(true, spec_.telemetry.monitors);

  std::vector<RankContext*> rank_ptrs;
  rank_ptrs.reserve(static_cast<std::size_t>(n));
  for (auto& c : contexts) rank_ptrs.push_back(c.get());

  std::exception_ptr first_error;
  core::Mutex error_mutex;

  // The body every scheduler drives, once per rank: run fn and convert any
  // escape into cluster poison + first-error capture.  Bodies never throw
  // past the scheduler (the fiber/thread boundary).  The scheduler binds
  // each rank's tracer as the thread-local trace::current() while that
  // rank executes (per resume under seq).
  const auto body = [&](RankContext& ctx) {
    try {
      fn(ctx);
    } catch (const CommTimeout&) {
      {
        core::MutexLock lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
      poison(AbortKind::Timeout);
    } catch (const RankDeath& d) {
      // a death that escapes fn means no recovery handler was installed;
      // surface it as a regular error rather than an opaque foreign type
      {
        core::MutexLock lock(error_mutex);
        if (!first_error)
          first_error = std::make_exception_ptr(std::runtime_error(
              "rank " + std::to_string(d.rank) + " died (" + death_kind_name(d.kind) +
              ") with no recovery handler installed"));
      }
      poison(AbortKind::Error);
    } catch (...) {
      {
        core::MutexLock lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
      poison(AbortKind::Error);
    }
  };
  sched_->run(rank_ptrs, trace_on, body);

  // fault/recovery accounting survives even a failed run -- tests assert on
  // counters after catching CommTimeout
  fault_totals_ = FaultCounters{};
  per_rank_counters_.clear();
  per_rank_counters_.reserve(static_cast<std::size_t>(n));
  makespan_us_ = 0;
  for (auto& c : contexts) {
    per_rank_counters_.push_back(c->faults().counters());
    fault_totals_ += c->faults().counters();
    makespan_us_ = std::max(makespan_us_, c->clock().now_us);
  }

  // the trace likewise survives a failed run (partial timelines are exactly
  // what one wants when diagnosing a CommTimeout)
  const std::string provenance =
      core::provenance_json(scheduler_name(kind), core::cluster_summary_json(spec_));
  trace_report_ = trace::TraceReport{};
  trace_report_.enabled = trace_on;
  trace_report_.gpus_per_node = spec_.gpus_per_node;
  trace_report_.nodes_per_switch = spec_.interconnect.nodes_per_switch;
  trace_report_.provenance_json = provenance;
  if (trace_on) {
    trace_report_.per_rank.reserve(static_cast<std::size_t>(n));
    for (auto& c : contexts) trace_report_.per_rank.push_back(c->tracer().take_events());
    if (!trace_path.empty())
      trace::write_chrome_trace(trace::unique_trace_path(trace_path), trace_report_);
  }

  // telemetry analysis is strictly post-run (the ranks are torn down), so
  // it can never perturb simulated time; like the trace it survives a
  // failed run, and the ledger/anomalies of the partial run are exactly
  // what one wants when diagnosing it
  telemetry_report_ = telemetry::TelemetryReport{};
  if (telemetry_on) {
    std::vector<const telemetry::RankRecorder*> recorders;
    recorders.reserve(contexts.size());
    for (auto& c : contexts) recorders.push_back(&c->recorder());
    telemetry::AnalysisConfig acfg;
    acfg.monitors = spec_.telemetry.monitors;
    acfg.shm_peak_gbs = spec_.net.shm_bw_gbs;
    acfg.ib_peak_gbs = spec_.net.ib_bw_gbs;
    telemetry_report_ = telemetry::build_report(recorders, trace_report_, makespan_us_, acfg);
    if (!telemetry_path.empty())
      telemetry::write_jsonl(telemetry::unique_export_path(telemetry_path), telemetry_report_,
                             provenance);
  }

  sched_.reset();
  if (first_error) std::rethrow_exception(first_error);
  channels_.clear();
}

} // namespace quda::sim
