#pragma once
// Description of the simulated GPU cluster: nodes, GPUs per node, device
// and bus models, and the network model.  The default configuration mirrors
// the InfiniBand partition of the Jefferson Lab "9g" cluster used for the
// paper's measurements (Section VII-A): 16 nodes x 2 GeForce GTX 285 on a
// single QDR InfiniBand switch, dual-socket Nehalem hosts.

#include "gpusim/device_spec.h"
#include "sim/fault_model.h"
#include "trace/telemetry.h"
#include "trace/trace.h"

#include <algorithm>
#include <stdexcept>

namespace quda::sim {

// How VirtualCluster::run executes the simulated ranks (DESIGN.md §12):
//   Threads -- one OS thread per rank (the historical scheduler);
//   Seq     -- one cooperative event loop resuming stackful fibers in
//              deterministic (clock, rank) order, so rank count is a
//              parameter instead of a thread budget;
//   Auto    -- consult QUDA_SIM_SCHED (threads|seq), default Threads.
enum class SchedulerKind { Auto, Threads, Seq };

// classification of the wire a delivered message crossed
enum class LinkClass {
  Shm = 0,         // same node: shared-memory transport
  Ib = 1,          // different node, same leaf switch: one IB hop
  CrossSwitch = 2, // different leaf switches: up and over the fat tree
};

// Message-passing path model.  QDR InfiniBand provides less bandwidth than
// x16 PCI-E (Section III); same-node ranks communicate through host memory.
struct NetworkModel {
  double ib_latency_us = 5.0;   // MPI small-message latency over IB
  double ib_bw_gbs = 3.2;       // achievable QDR IB bandwidth
  double shm_latency_us = 1.2;  // same-node (shared-memory) MPI latency
  double shm_bw_gbs = 4.5;      // host memcpy-limited same-node bandwidth
  double mpi_overhead_us = 0.7; // per-call host CPU cost of posting isend/irecv
  // staging buffers cross the QPI link when the process is bound to the
  // wrong socket, degrading the achievable message bandwidth as well
  double numa_bw_penalty = 0.8;

  double transfer_time_us(std::int64_t bytes, bool same_node, bool good_numa = true) const {
    const double lat = same_node ? shm_latency_us : ib_latency_us;
    double bw = (same_node ? shm_bw_gbs : ib_bw_gbs) * 1e3; // bytes/us
    if (!good_numa) bw *= numa_bw_penalty;
    return lat + static_cast<double>(bytes) / bw;
  }
};

// Hierarchical interconnect on top of NetworkModel: nodes are grouped under
// leaf switches of a fat tree.  Messages between nodes on different leaves
// pay two extra switch hops of latency, and their bandwidth is divided by
// the leaf's static downlink/uplink oversubscription ratio -- contention is
// charged deterministically up front (every cross-switch byte pays the
// worst-case share) rather than sampled, preserving the simulator's
// bit-reproducibility.  hop_bw_penalty models the PCIe/NUMA staging domains
// crossed per extra hop.  The default (nodes_per_switch = 0) is the
// historical flat single-switch network, reproduced bit-for-bit.
struct InterconnectModel {
  int nodes_per_switch = 0;   // 0 = flat: every node on one switch
  int uplinks_per_switch = 1; // fat-tree uplinks per leaf switch
  double switch_hop_us = 0.6; // added latency per extra switch hop
  // bandwidth multiplier per extra hop (<= 1.0): staging buffers cross one
  // more PCIe/QPI domain on the way to the spine
  double hop_bw_penalty = 1.0;

  bool hierarchical() const { return nodes_per_switch > 0; }
  // downlinks (nodes) per uplink; >= 1 so a fully-provisioned leaf is free
  double oversubscription() const {
    if (!hierarchical() || uplinks_per_switch < 1) return 1.0;
    return std::max(1.0, static_cast<double>(nodes_per_switch) /
                             static_cast<double>(uplinks_per_switch));
  }
};

// Simulated stable storage (the checkpoint target): a node-local scratch
// disk / parallel-filesystem stripe.  Checkpoint writes are charged
// latency + size/bandwidth on top of the device->host PCIe staging cost.
struct StorageModel {
  double latency_us = 800.0; // per-operation setup (open, commit marker)
  double bw_gbs = 1.0;       // streaming write/read bandwidth

  double transfer_time_us(std::int64_t bytes) const {
    return latency_us + static_cast<double>(bytes) / (bw_gbs * 1e3);
  }
};

struct ClusterSpec {
  int nodes = 1;
  int gpus_per_node = 1;
  gpusim::DeviceSpec device = gpusim::geforce_gtx285();
  gpusim::BusModel bus{};
  NetworkModel net{};
  // false models binding each MPI process to the socket *opposite* its GPU
  // (the deliberately-bad NUMA series in Fig. 5(a))
  bool good_numa_binding = true;
  // 0 = one rank per GPU; a smaller value leaves trailing GPUs idle (e.g. 3
  // ranks on two dual-GPU nodes)
  int ranks = 0;
  // seeded fault environment (all rates default to zero = fault-free);
  // injection is deterministic in (seed, rank, event counter)
  FaultConfig faults{};
  // stable-storage model for coordinated checkpoint/restart
  StorageModel storage{};
  // structured tracing (src/trace); recording also turns on when the
  // QUDA_SIM_TRACE environment variable is set (its value = export path)
  trace::TraceOptions trace{};
  // solver flight recorder (src/trace/telemetry.h); recording also turns
  // on when QUDA_SIM_TELEMETRY is set (its value = JSONL export path)
  telemetry::TelemetryOptions telemetry{};
  // how the DES executes the ranks (Auto = QUDA_SIM_SCHED, default threads)
  SchedulerKind scheduler = SchedulerKind::Auto;
  // leaf-switch grouping of the nodes (default: flat single switch)
  InterconnectModel interconnect{};

  int num_ranks() const { return ranks > 0 ? ranks : nodes * gpus_per_node; }
  int num_nodes() const { return (num_ranks() + gpus_per_node - 1) / gpus_per_node; }
  int node_of(int rank) const { return rank / gpus_per_node; }
  bool same_node(int a, int b) const { return node_of(a) == node_of(b); }

  // --- hierarchical-interconnect topology --------------------------------------
  int num_switches() const {
    if (!interconnect.hierarchical()) return 1;
    return (num_nodes() + interconnect.nodes_per_switch - 1) / interconnect.nodes_per_switch;
  }
  int switch_of(int rank) const {
    return interconnect.hierarchical() ? node_of(rank) / interconnect.nodes_per_switch : 0;
  }
  LinkClass link_class(int a, int b) const {
    if (same_node(a, b)) return LinkClass::Shm;
    return switch_of(a) == switch_of(b) ? LinkClass::Ib : LinkClass::CrossSwitch;
  }

  // Wire time of one modeled message from src to dst.  Flat clusters (the
  // default) route through NetworkModel::transfer_time_us unchanged, so
  // every pre-hierarchy timing is reproduced bit-for-bit; cross-switch
  // paths add the fat-tree legs described on InterconnectModel.
  double path_time_us(int src, int dst, std::int64_t bytes) const {
    switch (link_class(src, dst)) {
      case LinkClass::Shm:
        return net.transfer_time_us(bytes, true, good_numa_binding);
      case LinkClass::Ib:
        return net.transfer_time_us(bytes, false, good_numa_binding);
      case LinkClass::CrossSwitch:
        break;
    }
    const double lat = net.ib_latency_us + 2.0 * interconnect.switch_hop_us;
    double bw = net.ib_bw_gbs * 1e3; // bytes/us
    if (!good_numa_binding) bw *= net.numa_bw_penalty;
    bw *= interconnect.hop_bw_penalty * interconnect.hop_bw_penalty; // two extra hops
    bw /= interconnect.oversubscription();
    return lat + static_cast<double>(bytes) / bw;
  }

  // the paper's test bed, sized to `ranks` GPUs (2 per node, QDR IB)
  static ClusterSpec jlab_9g(int ranks) {
    if (ranks < 1) throw std::invalid_argument("need at least one rank");
    ClusterSpec s;
    s.gpus_per_node = ranks >= 2 ? 2 : 1;
    s.nodes = (ranks + s.gpus_per_node - 1) / s.gpus_per_node;
    s.ranks = ranks;
    return s;
  }

  // the companion "9q" cluster: identical nodes and network, no GPUs
  // (used for the CPU baseline comparison in Section VII-C)
  static ClusterSpec jlab_9q(int ranks) { return jlab_9g(ranks); }

  // A 9g-style cluster scaled past one switch: dual-GPU nodes grouped under
  // 2:1-oversubscribed leaf switches, the shape of the "Scaling Lattice QCD
  // beyond 100 GPUs" installations.  Big sims (256-1024 ranks) pair this
  // with SchedulerKind::Seq so rank count stays a parameter.
  static ClusterSpec fat_tree(int ranks, int gpus_per_node = 2, int nodes_per_switch = 8,
                              int uplinks_per_switch = 4) {
    if (ranks < 1) throw std::invalid_argument("need at least one rank");
    ClusterSpec s;
    s.gpus_per_node = ranks >= gpus_per_node ? gpus_per_node : 1;
    s.nodes = (ranks + s.gpus_per_node - 1) / s.gpus_per_node;
    s.ranks = ranks;
    s.interconnect.nodes_per_switch = nodes_per_switch;
    s.interconnect.uplinks_per_switch = uplinks_per_switch;
    return s;
  }
};

} // namespace quda::sim
