#pragma once
// Description of the simulated GPU cluster: nodes, GPUs per node, device
// and bus models, and the network model.  The default configuration mirrors
// the InfiniBand partition of the Jefferson Lab "9g" cluster used for the
// paper's measurements (Section VII-A): 16 nodes x 2 GeForce GTX 285 on a
// single QDR InfiniBand switch, dual-socket Nehalem hosts.

#include "gpusim/device_spec.h"
#include "sim/fault_model.h"
#include "trace/trace.h"

#include <stdexcept>

namespace quda::sim {

// Message-passing path model.  QDR InfiniBand provides less bandwidth than
// x16 PCI-E (Section III); same-node ranks communicate through host memory.
struct NetworkModel {
  double ib_latency_us = 5.0;   // MPI small-message latency over IB
  double ib_bw_gbs = 3.2;       // achievable QDR IB bandwidth
  double shm_latency_us = 1.2;  // same-node (shared-memory) MPI latency
  double shm_bw_gbs = 4.5;      // host memcpy-limited same-node bandwidth
  double mpi_overhead_us = 0.7; // per-call host CPU cost of posting isend/irecv
  // staging buffers cross the QPI link when the process is bound to the
  // wrong socket, degrading the achievable message bandwidth as well
  double numa_bw_penalty = 0.8;

  double transfer_time_us(std::int64_t bytes, bool same_node, bool good_numa = true) const {
    const double lat = same_node ? shm_latency_us : ib_latency_us;
    double bw = (same_node ? shm_bw_gbs : ib_bw_gbs) * 1e3; // bytes/us
    if (!good_numa) bw *= numa_bw_penalty;
    return lat + static_cast<double>(bytes) / bw;
  }
};

// Simulated stable storage (the checkpoint target): a node-local scratch
// disk / parallel-filesystem stripe.  Checkpoint writes are charged
// latency + size/bandwidth on top of the device->host PCIe staging cost.
struct StorageModel {
  double latency_us = 800.0; // per-operation setup (open, commit marker)
  double bw_gbs = 1.0;       // streaming write/read bandwidth

  double transfer_time_us(std::int64_t bytes) const {
    return latency_us + static_cast<double>(bytes) / (bw_gbs * 1e3);
  }
};

struct ClusterSpec {
  int nodes = 1;
  int gpus_per_node = 1;
  gpusim::DeviceSpec device = gpusim::geforce_gtx285();
  gpusim::BusModel bus{};
  NetworkModel net{};
  // false models binding each MPI process to the socket *opposite* its GPU
  // (the deliberately-bad NUMA series in Fig. 5(a))
  bool good_numa_binding = true;
  // 0 = one rank per GPU; a smaller value leaves trailing GPUs idle (e.g. 3
  // ranks on two dual-GPU nodes)
  int ranks = 0;
  // seeded fault environment (all rates default to zero = fault-free);
  // injection is deterministic in (seed, rank, event counter)
  FaultConfig faults{};
  // stable-storage model for coordinated checkpoint/restart
  StorageModel storage{};
  // structured tracing (src/trace); recording also turns on when the
  // QUDA_SIM_TRACE environment variable is set (its value = export path)
  trace::TraceOptions trace{};

  int num_ranks() const { return ranks > 0 ? ranks : nodes * gpus_per_node; }
  int node_of(int rank) const { return rank / gpus_per_node; }
  bool same_node(int a, int b) const { return node_of(a) == node_of(b); }

  // the paper's test bed, sized to `ranks` GPUs (2 per node, QDR IB)
  static ClusterSpec jlab_9g(int ranks) {
    if (ranks < 1) throw std::invalid_argument("need at least one rank");
    ClusterSpec s;
    s.gpus_per_node = ranks >= 2 ? 2 : 1;
    s.nodes = (ranks + s.gpus_per_node - 1) / s.gpus_per_node;
    s.ranks = ranks;
    return s;
  }

  // the companion "9q" cluster: identical nodes and network, no GPUs
  // (used for the CPU baseline comparison in Section VII-C)
  static ClusterSpec jlab_9q(int ranks) { return jlab_9g(ranks); }
};

} // namespace quda::sim
