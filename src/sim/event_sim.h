#pragma once
// Conservative discrete-event simulation of an SPMD message-passing program.
//
// Each simulated rank executes *real* program logic (including real
// numerics when desired) under a pluggable RankScheduler (sim/scheduler.h):
// one OS thread per rank (`threads`, the default) or one cooperative event
// loop resuming stackful fibers (`seq`, which scales to O(1000) ranks).
// Each rank owns a SimClock; local work advances it by modeled durations.
// Ranks interact only through the message channels and collective
// operations below, whose completion times are pure functions of the
// participants' clocks and the network model -- so simulated timings are
// deterministic regardless of OS scheduling, and bit-identical across the
// two schedulers (tests/test_scheduler_equivalence.cpp).
//
// Semantics mirror the MPI subset that QMP exposes and the paper uses:
// point-to-point non-blocking send/receive with handles, and all-reduce.
//
// Fault injection (ClusterSpec::faults) is applied at the transport:
// isend() stamps each attempt with the rank's deterministic fault draw --
// dropped attempts become tombstones the receiver silently skips (their
// timing effect arrives through the retransmission's later send time),
// corrupted attempts carry a flipped payload bit plus a corruption flag,
// delayed attempts a path-time multiplier.  A sender that exhausts its
// retry budget posts a *failed* tombstone and poisons the cluster so every
// blocked rank raises a typed CommTimeout instead of deadlocking.

#include "core/sync.h"
#include "gpusim/device.h"
#include "sim/cluster_spec.h"
#include "sim/fault_model.h"
#include "sim/scheduler.h"
#include "trace/trace.h"

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

namespace quda::sim {

struct SimClock {
  double now_us = 0;
  void advance(double us) { now_us += us; }
};

class VirtualCluster;

// one registered process death (crash or hang) of the current failure epoch
struct DeathRecord {
  int rank = -1;
  DeathKind kind = DeathKind::Crash;
  double time_us = 0; // the dead rank's clock when it went silent
};

// Result of one coordinated recovery epoch, published to every rank by the
// recovery rendezvous.  resume_us is the cluster-wide clock every rank
// resumes at: the max over all ranks' rendezvous-arrival clocks (which
// already carry rollback/restore/respawn charges) and the failure
// detector's completion time, max over the epoch's deaths of
// (death time + heartbeat_interval_us | hang_timeout_us).
struct RecoveryEpoch {
  int epoch = 0;      // 1-based index of this completed epoch
  double resume_us = 0;
  double detect_us = 0;
  std::vector<DeathRecord> deaths; // sorted by rank (deterministic)
};

// a matched in-flight message
struct Message {
  std::vector<std::byte> payload;  // empty in Modeled mode
  std::int64_t modeled_bytes = 0;  // what the network model charges
  double send_time_us = 0;         // sender clock when isend was posted
  // fault metadata stamped by the transport
  double delay_factor = 1.0; // degraded-link path-time multiplier
  bool corrupt = false;      // a payload bit was flipped in flight
  bool dropped = false;      // tombstone: this attempt never arrived
  bool failed = false;       // sender exhausted retries; receiver must fail too
};

class RecvHandle {
public:
  friend class RankContext;

  std::vector<std::byte> take_payload() {
    if (payload_taken_)
      throw std::logic_error("RecvHandle::take_payload() called twice on the same message");
    payload_taken_ = true;
    return std::move(msg_.payload);
  }

  // fault metadata the reliable layer needs
  bool corrupt() const { return msg_.corrupt; }
  std::int64_t modeled_bytes() const { return msg_.modeled_bytes; }

  // arrival metadata: when the message reached this rank in simulated time,
  // and when the (possibly retransmitted) delivered attempt left the sender
  double arrival_us() const { return arrival_us_; }
  double send_time_us() const { return msg_.send_time_us; }

private:
  Message msg_;
  double arrival_us_ = 0;
  bool payload_taken_ = false;
};

// Per-rank execution context: the clock, the simulated GPU, and messaging.
class RankContext {
public:
  RankContext(VirtualCluster& cluster, int rank, const ClusterSpec& spec);

  int rank() const { return rank_; }
  int size() const;
  const ClusterSpec& spec() const { return spec_; }

  SimClock& clock() { return clock_; }
  gpusim::Device& device() { return device_; }
  FaultStream& faults() { return faults_; }
  trace::RankTracer& tracer() { return tracer_; }
  telemetry::RankRecorder& recorder() { return recorder_; }

  // post a non-blocking send; advances the clock by the MPI call overhead.
  // Under fault injection the attempt may be dropped, corrupted, or delayed;
  // the returned status tells the *sender's* reliable layer what the
  // deterministic schedule did (standing in for ack-timeout / NACK
  // detection, whose latency the reliable layer charges explicitly).
  struct SendStatus {
    bool delivered = true;
    bool corrupted = false;
  };
  SendStatus isend(int dst, int tag, std::vector<std::byte> payload,
                   std::int64_t modeled_bytes);

  // a sender that exhausted its retry budget posts this so the receiver
  // fails with a typed CommTimeout instead of waiting forever
  void post_send_failure(int dst, int tag);

  // poison the whole cluster with a timeout and raise CommTimeout here;
  // peers blocked in wait()/allreduce are woken and raise CommTimeout too
  [[noreturn]] void raise_timeout(const std::string& what);

  // post a non-blocking receive; captures the post time so that a later
  // wait() completes at  max(sender post time, recv post time) + path  --
  // the MPI_Waitall semantics the overlapped implementation relies on
  struct PendingRecv {
    int src = 0;
    int tag = 0;
    double post_time_us = 0;
    bool consumed = false; // set by wait(); re-waiting is a hard error
  };
  PendingRecv irecv(int src, int tag);

  // Blocks (in wall time) until the message arrives.  Dropped-attempt
  // tombstones are skipped silently; a failed tombstone (sender gave up)
  // raises CommTimeout.  wall_timeout_ms > 0 bounds the wall-clock wait as
  // a last-ditch deadlock guard (also CommTimeout).  Waiting twice on the
  // same PendingRecv is a hard error.
  RecvHandle wait(PendingRecv& pending, double wall_timeout_ms = 0);

  // blocking receive: irecv + wait
  RecvHandle recv(int src, int tag);

  // all-reduce an elementwise sum across all ranks (one rendezvous for the
  // whole vector, as a fused MPI_Allreduce); completes at
  //   max_i(t_i) + perf::allreduce_tree_cost_us(spec)
  // (ceil(log2 N) tree steps, plus the switch-tree traversal surcharge on
  // hierarchical interconnects).  Contributions are folded in rank order,
  // so the result is bit-stable under any scheduler/interleaving.
  void allreduce_sum(double* values, int count);
  double allreduce_sum(double value) {
    allreduce_sum(&value, 1);
    return value;
  }
  void barrier();

  // Process-failure machinery (see DESIGN.md §10).  check_death() runs at
  // every transport-op entry: when this rank's armed death draw is due it
  // registers the death (waking every blocked peer) and throws RankDeath
  // with the clock untouched.  Peers discover the silence as a typed
  // RankFailure -- wait() throws when its source is terminal with an empty
  // channel, allreduce when a terminal rank can no longer arrive -- also
  // with their clocks untouched, so recovery timing is charged in exactly
  // one place (the recovery code driving the rendezvous).
  void check_death();
  // mark this rank terminal (recovering) so peers blocked on it unblock
  void enter_recovery();
  // Coordinated epoch barrier all ranks (survivors + respawned) reach after
  // charging their local recovery costs: the last arrival folds the epoch's
  // deaths into a RecoveryEpoch, resets channels/reductions/terminal flags,
  // and every rank resumes with its clock at resume_us.
  RecoveryEpoch recovery_rendezvous();

private:
  VirtualCluster& cluster_;
  int rank_;
  const ClusterSpec& spec_;
  SimClock clock_;
  gpusim::Device device_;
  FaultStream faults_;
  trace::RankTracer tracer_;
  telemetry::RankRecorder recorder_;
};

class VirtualCluster {
public:
  explicit VirtualCluster(ClusterSpec spec)
      : spec_(std::move(spec)), fault_model_(spec_.faults) {}

  const ClusterSpec& spec() const { return spec_; }

  // Run fn on every rank under the spec's scheduler (threads: one OS thread
  // each; seq: one cooperative event loop); rethrows the first exception.
  // Raises SchedulerCapacityError when the resolved scheduler is `threads`
  // and the rank count exceeds threads_scheduler_capacity().
  void run(const std::function<void(RankContext&)>& fn);

  // maximum simulated completion time over all ranks of the last run()
  double makespan_us() const { return makespan_us_; }

  // fault/recovery accounting summed over all ranks of the last run()
  // (populated even when a rank threw)
  const FaultCounters& fault_totals() const { return fault_totals_; }

  // the per-rank counters behind fault_totals(), indexed by rank (tests
  // assert the per-rank values sum to the cluster totals)
  const std::vector<FaultCounters>& per_rank_fault_counters() const {
    return per_rank_counters_;
  }

  // per-rank event streams of the last run() when tracing was enabled via
  // ClusterSpec::trace or QUDA_SIM_TRACE (populated even when a rank threw)
  const trace::TraceReport& trace() const { return trace_report_; }

  // solver flight-recorder report of the last run() when telemetry was
  // enabled via ClusterSpec::telemetry or QUDA_SIM_TELEMETRY
  const telemetry::TelemetryReport& telemetry() const { return telemetry_report_; }

private:
  friend class RankContext;

  // why the cluster was poisoned: peers blocked on a timed-out rank raise
  // CommTimeout; peers blocked on a generically-failed rank raise
  // runtime_error, preserving the original abort semantics
  enum class AbortKind { None, Error, Timeout };

  struct Channel {
    std::deque<Message> queue;
  };
  using ChannelKey = std::tuple<int, int, int>; // src, dst, tag

  // mark the cluster failed and wake every blocked rank
  void poison(AbortKind kind);

  // record a process death for the current failure epoch and wake everyone
  void register_death(int rank, DeathKind kind, double time_us);
  // true when some terminal (dead or recovering) rank has not arrived at
  // the in-flight reduction generation, i.e. it can never complete
  bool reduction_blocked_by_failure() const QUDA_REQUIRES(mutex_);

  ClusterSpec spec_;
  FaultModel fault_model_;
  // one cluster-wide transport lock: channels, the allreduce rendezvous, and
  // the poison flag all rendezvous through it (clang checks the GUARDED_BY
  // fields under QUDA_SIM_ANALYZE; static_check.py checks coverage always)
  core::Mutex mutex_;
  core::CondVar cv_ QUDA_CV_WAITS_WITH(mutex_);
  std::map<ChannelKey, Channel> channels_ QUDA_GUARDED_BY(mutex_);
  bool aborted_ QUDA_GUARDED_BY(mutex_) = false; // a rank threw; peers must not block forever
  AbortKind abort_kind_ QUDA_GUARDED_BY(mutex_) = AbortKind::None;

  // allreduce state (generation-counted).  The gating rank -- the argmax of
  // the arrival times, ties broken toward the lowest rank so the value is
  // deterministic under any OS interleaving -- is latched per generation so
  // every participant can record the rendezvous edge for the critical-path
  // walk (trace/critpath.h).
  // Per-rank contribution slots, folded into the result in ascending rank
  // order by the completing arrival -- the sum is a pure function of the
  // contributions, never of OS arrival order, which is what makes Real-mode
  // results bit-identical across schedulers and thread budgets.
  struct Reduction {
    int arrived = 0;
    int width = -1; // element count of the in-flight generation (-1: none)
    std::vector<std::vector<double>> contrib; // indexed by rank
    double max_time = 0;
    int max_rank = -1;
    std::vector<double> result;
    double done_time = 0;
    double done_gate_time = 0;
    int done_gate_rank = 0;
    std::int64_t generation = 0;
    // which ranks have arrived at the in-flight generation; the failure
    // detector needs it to tell "terminal rank already contributed" (the
    // reduction still completes) from "can never complete" (survivors must
    // raise RankFailure)
    std::vector<std::uint8_t> arrived_mask;
  } red_ QUDA_GUARDED_BY(mutex_);

  // process-failure state of the current epoch: registered deaths, and the
  // terminal flags (dead or recovering) that unblock waiting peers
  std::vector<DeathRecord> deaths_ QUDA_GUARDED_BY(mutex_);
  std::vector<std::uint8_t> terminal_ QUDA_GUARDED_BY(mutex_);

  // generation-counted recovery rendezvous (all n ranks, incl. respawned)
  struct RecoverySync {
    int arrived = 0;
    double max_arrival = 0;
    std::int64_t generation = 0;
    RecoveryEpoch last; // published by the completing arrival
  } recovery_ QUDA_GUARDED_BY(mutex_);

  // Execution engine of the current run() (threads or seq, resolved from
  // ClusterSpec::scheduler / QUDA_SIM_SCHED).  Created at run() entry and
  // torn down at exit; stable for the whole run, so ranks dereference it
  // without holding mutex_ (only wait_transport's internals touch shared
  // scheduler state, under their own discipline).
  std::unique_ptr<RankScheduler> sched_;

  double makespan_us_ = 0;
  FaultCounters fault_totals_;
  std::vector<FaultCounters> per_rank_counters_;
  trace::TraceReport trace_report_;
  telemetry::TelemetryReport telemetry_report_;
};

} // namespace quda::sim
