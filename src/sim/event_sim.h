#pragma once
// Conservative discrete-event simulation of an SPMD message-passing program.
//
// One OS thread runs per simulated rank, executing *real* program logic
// (including real numerics when desired).  Each rank owns a SimClock; local
// work advances it by modeled durations.  Ranks interact only through the
// message channels and collective operations below, whose completion times
// are pure functions of the participants' clocks and the network model --
// so simulated timings are deterministic regardless of OS scheduling.
//
// Semantics mirror the MPI subset that QMP exposes and the paper uses:
// point-to-point non-blocking send/receive with handles, and all-reduce.

#include "gpusim/device.h"
#include "sim/cluster_spec.h"

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

namespace quda::sim {

struct SimClock {
  double now_us = 0;
  void advance(double us) { now_us += us; }
};

class VirtualCluster;

// a matched in-flight message
struct Message {
  std::vector<std::byte> payload;  // empty in Modeled mode
  std::int64_t modeled_bytes = 0;  // what the network model charges
  double send_time_us = 0;         // sender clock when isend was posted
};

class RecvHandle {
public:
  // blocks (in wall time) until the message arrives; returns the receiver's
  // simulated completion time given the time it started waiting
  friend class RankContext;
  std::vector<std::byte> take_payload() { return std::move(msg_.payload); }

private:
  Message msg_;
  double arrival_us_ = 0;
};

// Per-rank execution context: the clock, the simulated GPU, and messaging.
class RankContext {
public:
  RankContext(VirtualCluster& cluster, int rank, const ClusterSpec& spec);

  int rank() const { return rank_; }
  int size() const;
  const ClusterSpec& spec() const { return spec_; }

  SimClock& clock() { return clock_; }
  gpusim::Device& device() { return device_; }

  // post a non-blocking send; advances the clock by the MPI call overhead
  void isend(int dst, int tag, std::vector<std::byte> payload, std::int64_t modeled_bytes);

  // post a non-blocking receive; captures the post time so that a later
  // wait() completes at  max(sender post time, recv post time) + path  --
  // the MPI_Waitall semantics the overlapped implementation relies on
  struct PendingRecv {
    int src = 0;
    int tag = 0;
    double post_time_us = 0;
  };
  PendingRecv irecv(int src, int tag);
  RecvHandle wait(const PendingRecv& pending);

  // blocking receive: irecv + wait
  RecvHandle recv(int src, int tag);

  // all-reduce an elementwise sum across all ranks (one rendezvous for the
  // whole vector, as a fused MPI_Allreduce); completes at
  //   max_i(t_i) + ceil(log2 N) * tree step cost
  void allreduce_sum(double* values, int count);
  double allreduce_sum(double value) {
    allreduce_sum(&value, 1);
    return value;
  }
  void barrier();

private:
  VirtualCluster& cluster_;
  int rank_;
  const ClusterSpec& spec_;
  SimClock clock_;
  gpusim::Device device_;
};

class VirtualCluster {
public:
  explicit VirtualCluster(ClusterSpec spec) : spec_(std::move(spec)) {}

  const ClusterSpec& spec() const { return spec_; }

  // run fn on every rank (one thread each); rethrows the first exception
  void run(const std::function<void(RankContext&)>& fn);

  // maximum simulated completion time over all ranks of the last run()
  double makespan_us() const { return makespan_us_; }

private:
  friend class RankContext;

  struct Channel {
    std::deque<Message> queue;
  };
  using ChannelKey = std::tuple<int, int, int>; // src, dst, tag

  ClusterSpec spec_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::map<ChannelKey, Channel> channels_;
  bool aborted_ = false; // a rank threw; peers must not block forever

  // allreduce state (generation-counted)
  struct Reduction {
    int arrived = 0;
    std::vector<double> sum;
    double max_time = 0;
    std::vector<double> result;
    double done_time = 0;
    std::int64_t generation = 0;
  } red_;

  double makespan_us_ = 0;
};

} // namespace quda::sim
