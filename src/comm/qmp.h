#pragma once
// A QMP-flavored message-passing layer (QCD Message Passing, [22] in the
// paper) on top of the simulated cluster.  QMP is a thin convenience API
// over MPI providing logical lattice topologies and the handful of
// primitives an LQCD code needs.
//
// The paper's production configuration is a 1-D logical topology over the
// time direction; the multi-dimensional decomposition it lists as future
// work uses a full 4-D torus, which QmpGrid supports (rank coordinates run
// x fastest, mirroring QMP_declare_logical_topology).
//
// Reliability: every grid message is framed with a 16-byte header carrying
// a per-(peer, tag) sequence number and (optionally) an FNV-1a checksum of
// the payload.  send_to() retries a lost or (with checksums enabled) a
// corrupted attempt with exponential backoff, charging the ack-timeout and
// backoff intervals to the sim clock; a sender that exhausts its budget
// raises a typed sim::CommTimeout on every rank instead of deadlocking.
// wait_receive() verifies frames, discards bad ones (counting them as
// checksum errors), and re-arms the receive for the retransmission.

#include "lattice/spinor_field.h" // PartitionMask
#include "sim/event_sim.h"

#include <array>
#include <cstring>
#include <map>
#include <numeric>
#include <stdexcept>
#include <utility>
#include <vector>

namespace quda::comm {

enum class Direction : int { Backward = 0, Forward = 1 };

struct GridTopology {
  std::array<int, 4> dims{1, 1, 1, 1}; // ranks per dimension

  static GridTopology time_only(int ranks) { return {{1, 1, 1, ranks}}; }

  int num_ranks() const { return dims[0] * dims[1] * dims[2] * dims[3]; }

  std::array<int, 4> coords(int rank) const {
    std::array<int, 4> c{};
    for (int mu = 0; mu < 4; ++mu) {
      c[static_cast<std::size_t>(mu)] = rank % dims[static_cast<std::size_t>(mu)];
      rank /= dims[static_cast<std::size_t>(mu)];
    }
    return c;
  }

  int rank_of(const std::array<int, 4>& c) const {
    int r = 0;
    for (int mu = 3; mu >= 0; --mu)
      r = r * dims[static_cast<std::size_t>(mu)] + c[static_cast<std::size_t>(mu)];
    return r;
  }

  bool partitioned(int mu) const { return dims[static_cast<std::size_t>(mu)] > 1; }

  PartitionMask partition_mask() const {
    return {partitioned(0), partitioned(1), partitioned(2), partitioned(3)};
  }
};

class QmpGrid {
public:
  // the paper's 1-D ring over time
  explicit QmpGrid(sim::RankContext& ctx)
      : ctx_(ctx), topo_(GridTopology::time_only(ctx.size())) {}

  // general 4-D torus
  QmpGrid(sim::RankContext& ctx, const GridTopology& topo) : ctx_(ctx), topo_(topo) {
    if (topo.num_ranks() != ctx.size())
      throw std::invalid_argument("grid topology does not match the cluster size");
  }

  int rank() const { return ctx_.rank(); }
  int size() const { return ctx_.size(); }
  bool is_parallel() const { return size() > 1; }
  const GridTopology& topology() const { return topo_; }
  bool partitioned(int mu) const { return topo_.partitioned(mu); }

  int neighbor(int mu, int dir) const {
    auto c = topo_.coords(rank());
    const int n = topo_.dims[static_cast<std::size_t>(mu)];
    c[static_cast<std::size_t>(mu)] = (c[static_cast<std::size_t>(mu)] + (dir > 0 ? 1 : n - 1)) % n;
    return topo_.rank_of(c);
  }

  // 1-D temporal wrappers
  int neighbor(Direction d) const { return neighbor(3, d == Direction::Forward ? +1 : -1); }

  // does this rank own a global edge of dimension mu (where the fermion BC
  // phase applies -- the "extra constants" of Section VI-B)?
  bool owns_global_edge(int mu, int dir) const {
    const auto c = topo_.coords(rank());
    return dir > 0 ? c[static_cast<std::size_t>(mu)] == topo_.dims[static_cast<std::size_t>(mu)] - 1
                   : c[static_cast<std::size_t>(mu)] == 0;
  }
  bool owns_global_backward_edge() const { return owns_global_edge(3, -1); }
  bool owns_global_forward_edge() const { return owns_global_edge(3, +1); }

  // --- reliability policy ------------------------------------------------------

  void set_retry_policy(const sim::RetryPolicy& p) { policy_ = p; }
  const sim::RetryPolicy& retry_policy() const { return policy_; }

  // --- face exchange helpers ---------------------------------------------------

  // ship a byte payload to the (mu, dir) neighbor (empty payload in Modeled
  // mode -- the network model charges `modeled_bytes` either way), framed
  // and retried per the retry policy
  void send_to(int mu, int dir, int tag, std::vector<std::byte> payload,
               std::int64_t modeled_bytes) {
    send_reliable(neighbor(mu, dir), tag, std::move(payload), modeled_bytes);
  }
  void send_to(Direction d, int tag, std::vector<std::byte> payload,
               std::int64_t modeled_bytes) {
    send_to(3, d == Direction::Forward ? +1 : -1, tag, std::move(payload), modeled_bytes);
  }

  sim::RankContext::PendingRecv post_receive(int mu, int dir, int tag) {
    return ctx_.irecv(neighbor(mu, dir), tag);
  }
  sim::RankContext::PendingRecv post_receive(Direction from, int tag) {
    return post_receive(3, from == Direction::Forward ? +1 : -1, tag);
  }

  // Completes the receive: unframes, verifies (when checksums are enabled),
  // and waits out retransmissions of frames that arrived damaged.  May raise
  // sim::CommTimeout (local wall-clock guard, or a peer poisoned the run).
  std::vector<std::byte> wait_receive(sim::RankContext::PendingRecv& pending) {
    auto& counters = ctx_.faults().counters();
    auto& tracer = ctx_.tracer();
    const double recv_begin_us = ctx_.clock().now_us;
    for (;;) {
      sim::RecvHandle h = ctx_.wait(pending, policy_.wall_timeout_ms);
      std::vector<std::byte> frame = h.take_payload();
      if (frame.size() < kHeaderBytes)
        throw std::runtime_error("received unframed message on a framed channel");
      if (policy_.checksums) ctx_.clock().advance(checksum_cost_us(h.modeled_bytes()));

      auto& expected_seq = recv_seq_[{pending.src, pending.tag}];
      if (!policy_.checksums || (!h.corrupt() && frame_valid(frame, expected_seq))) {
        // accepted (verification disabled accepts as-is: an in-flight bit
        // flip may have landed in the header, and flagging it would be
        // detection by another name)
        const std::uint32_t seq = expected_seq++;
        frame.erase(frame.begin(), frame.begin() + kHeaderBytes);
        tracer.span(trace::Cat::Comm, "recv_frame", trace::kTrackHost, recv_begin_us,
                    ctx_.clock().now_us, h.modeled_bytes(), pending.src, pending.tag, seq);
        return frame;
      }
      // damaged frame: count it, drop it, and re-arm for the sender's
      // retransmission of the same sequence number
      ++counters.checksum_errors;
      tracer.instant(trace::Cat::Fault, "checksum_error", trace::kTrackHost,
                     ctx_.clock().now_us, h.modeled_bytes(), pending.src, pending.tag,
                     expected_seq);
      pending = ctx_.irecv(pending.src, pending.tag);
    }
  }

  // --- process-failure tolerance ----------------------------------------------

  // Arm the heartbeat/failure detector for a new solver incarnation: the
  // rank's seeded death draw (if any) is scheduled relative to *now*, so
  // field setup is never killed and a warm-spare respawn is not condemned
  // to die again the instant it resumes.
  void arm_failure_detector() { ctx_.faults().arm_deaths(ctx_.clock().now_us); }
  void disarm_failure_detector() { ctx_.faults().disarm_deaths(); }

  // Post-recovery transport resync: the rendezvous cleared every channel,
  // so both ends of every (peer, tag) stream restart their sequence
  // numbering from zero.  Must run on all ranks at the same epoch (the
  // recovery driver calls it right after the rendezvous).
  void recovery_sync() {
    send_seq_.clear();
    recv_seq_.clear();
  }

  // --- collectives -------------------------------------------------------------

  double sum(double local) { return ctx_.allreduce_sum(local); }
  void sum(double* values, int count) { ctx_.allreduce_sum(values, count); }

  void barrier() { ctx_.barrier(); }

  sim::RankContext& context() { return ctx_; }

private:
  // 16-byte frame header: magic, sequence number, FNV-1a payload checksum
  // (zero when checksums are disabled)
  static constexpr std::size_t kHeaderBytes = 16;
  static constexpr std::uint32_t kFrameMagic = 0x51554441u; // "QUDA"

  static std::uint64_t fnv1a(const std::vector<std::byte>& data, std::size_t offset) {
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (std::size_t i = offset; i < data.size(); ++i) {
      h ^= static_cast<std::uint64_t>(data[i]);
      h *= 0x100000001b3ull;
    }
    return h;
  }

  template <class T> static void put(std::vector<std::byte>& buf, std::size_t at, T v) {
    std::memcpy(buf.data() + at, &v, sizeof(T));
  }
  template <class T> static T get(const std::vector<std::byte>& buf, std::size_t at) {
    T v;
    std::memcpy(&v, buf.data() + at, sizeof(T));
    return v;
  }

  // verification cost, charged per message at the streaming checksum rate
  // (hardware CRC32C on the Nehalem hosts runs near memory bandwidth)
  double checksum_cost_us(std::int64_t modeled_bytes) const {
    return static_cast<double>(modeled_bytes) / (policy_.checksum_bw_gbs * 1e3);
  }

  bool frame_valid(const std::vector<std::byte>& frame, std::uint32_t expected_seq) const {
    if (get<std::uint32_t>(frame, 0) != kFrameMagic) return false;
    if (get<std::uint32_t>(frame, 4) != expected_seq) return false;
    return get<std::uint64_t>(frame, 8) == fnv1a(frame, kHeaderBytes);
  }

  void send_reliable(int dst, int tag, std::vector<std::byte> payload,
                     std::int64_t modeled_bytes) {
    auto& counters = ctx_.faults().counters();
    auto& tracer = ctx_.tracer();
    const double send_begin_us = ctx_.clock().now_us;
    const std::uint32_t seq = send_seq_[{dst, tag}]++;

    std::vector<std::byte> frame(kHeaderBytes + payload.size());
    if (!payload.empty())
      std::memcpy(frame.data() + kHeaderBytes, payload.data(), payload.size());
    put(frame, 0, kFrameMagic);
    put(frame, 4, seq);
    put(frame, 8, policy_.checksums ? fnv1a(frame, kHeaderBytes) : std::uint64_t{0});
    const std::int64_t framed_bytes = modeled_bytes + std::int64_t(kHeaderBytes);
    if (policy_.checksums) ctx_.clock().advance(checksum_cost_us(framed_bytes));

    // Bounded retry with exponential backoff.  The transport's SendStatus
    // tells us deterministically what would otherwise surface as an ack
    // timeout or a receiver NACK; the detection latency is what we charge
    // to the sim clock before each resend.
    double backoff = policy_.backoff_us;
    int attempts = 0;
    for (;;) {
      const auto status = ctx_.isend(dst, tag, frame, framed_bytes);
      ++attempts;
      const bool bad = !status.delivered || (policy_.checksums && status.corrupted);
      if (!bad) break;
      if (attempts > policy_.max_retries) {
        ctx_.post_send_failure(dst, tag);
        ctx_.raise_timeout("message to rank " + std::to_string(dst) + " (tag " +
                           std::to_string(tag) + ") undeliverable after " +
                           std::to_string(attempts) + " attempts");
      }
      ++counters.retries;
      const double wait_us = policy_.ack_timeout_us + backoff;
      ctx_.clock().advance(wait_us);
      counters.recovery_us += wait_us;
      backoff *= policy_.backoff_factor;
      tracer.instant(trace::Cat::Fault, "retry", trace::kTrackHost, ctx_.clock().now_us,
                     framed_bytes, dst, tag, seq);
    }
    if (attempts > 1) ++counters.recovered_messages;
    tracer.span(trace::Cat::Comm, "send_frame", trace::kTrackHost, send_begin_us,
                ctx_.clock().now_us, framed_bytes, dst, tag, seq);
  }

  sim::RankContext& ctx_;
  GridTopology topo_;
  sim::RetryPolicy policy_{};
  std::map<std::pair<int, int>, std::uint32_t> send_seq_; // keyed (dst, tag)
  std::map<std::pair<int, int>, std::uint32_t> recv_seq_; // keyed (src, tag)
};

} // namespace quda::comm
