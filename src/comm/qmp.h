#pragma once
// A QMP-flavored message-passing layer (QCD Message Passing, [22] in the
// paper) on top of the simulated cluster.  QMP is a thin convenience API
// over MPI providing logical lattice topologies and the handful of
// primitives an LQCD code needs.
//
// The paper's production configuration is a 1-D logical topology over the
// time direction; the multi-dimensional decomposition it lists as future
// work uses a full 4-D torus, which QmpGrid supports (rank coordinates run
// x fastest, mirroring QMP_declare_logical_topology).

#include "lattice/spinor_field.h" // PartitionMask
#include "sim/event_sim.h"

#include <array>
#include <cstring>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace quda::comm {

enum class Direction : int { Backward = 0, Forward = 1 };

struct GridTopology {
  std::array<int, 4> dims{1, 1, 1, 1}; // ranks per dimension

  static GridTopology time_only(int ranks) { return {{1, 1, 1, ranks}}; }

  int num_ranks() const { return dims[0] * dims[1] * dims[2] * dims[3]; }

  std::array<int, 4> coords(int rank) const {
    std::array<int, 4> c{};
    for (int mu = 0; mu < 4; ++mu) {
      c[static_cast<std::size_t>(mu)] = rank % dims[static_cast<std::size_t>(mu)];
      rank /= dims[static_cast<std::size_t>(mu)];
    }
    return c;
  }

  int rank_of(const std::array<int, 4>& c) const {
    int r = 0;
    for (int mu = 3; mu >= 0; --mu)
      r = r * dims[static_cast<std::size_t>(mu)] + c[static_cast<std::size_t>(mu)];
    return r;
  }

  bool partitioned(int mu) const { return dims[static_cast<std::size_t>(mu)] > 1; }

  PartitionMask partition_mask() const {
    return {partitioned(0), partitioned(1), partitioned(2), partitioned(3)};
  }
};

class QmpGrid {
public:
  // the paper's 1-D ring over time
  explicit QmpGrid(sim::RankContext& ctx)
      : ctx_(ctx), topo_(GridTopology::time_only(ctx.size())) {}

  // general 4-D torus
  QmpGrid(sim::RankContext& ctx, const GridTopology& topo) : ctx_(ctx), topo_(topo) {
    if (topo.num_ranks() != ctx.size())
      throw std::invalid_argument("grid topology does not match the cluster size");
  }

  int rank() const { return ctx_.rank(); }
  int size() const { return ctx_.size(); }
  bool is_parallel() const { return size() > 1; }
  const GridTopology& topology() const { return topo_; }
  bool partitioned(int mu) const { return topo_.partitioned(mu); }

  int neighbor(int mu, int dir) const {
    auto c = topo_.coords(rank());
    const int n = topo_.dims[static_cast<std::size_t>(mu)];
    c[static_cast<std::size_t>(mu)] = (c[static_cast<std::size_t>(mu)] + (dir > 0 ? 1 : n - 1)) % n;
    return topo_.rank_of(c);
  }

  // 1-D temporal wrappers
  int neighbor(Direction d) const { return neighbor(3, d == Direction::Forward ? +1 : -1); }

  // does this rank own a global edge of dimension mu (where the fermion BC
  // phase applies -- the "extra constants" of Section VI-B)?
  bool owns_global_edge(int mu, int dir) const {
    const auto c = topo_.coords(rank());
    return dir > 0 ? c[static_cast<std::size_t>(mu)] == topo_.dims[static_cast<std::size_t>(mu)] - 1
                   : c[static_cast<std::size_t>(mu)] == 0;
  }
  bool owns_global_backward_edge() const { return owns_global_edge(3, -1); }
  bool owns_global_forward_edge() const { return owns_global_edge(3, +1); }

  // --- face exchange helpers ---------------------------------------------------

  // ship a byte payload to the (mu, dir) neighbor (empty payload in Modeled
  // mode -- the network model charges `modeled_bytes` either way)
  void send_to(int mu, int dir, int tag, std::vector<std::byte> payload,
               std::int64_t modeled_bytes) {
    ctx_.isend(neighbor(mu, dir), tag, std::move(payload), modeled_bytes);
  }
  void send_to(Direction d, int tag, std::vector<std::byte> payload,
               std::int64_t modeled_bytes) {
    send_to(3, d == Direction::Forward ? +1 : -1, tag, std::move(payload), modeled_bytes);
  }

  sim::RankContext::PendingRecv post_receive(int mu, int dir, int tag) {
    return ctx_.irecv(neighbor(mu, dir), tag);
  }
  sim::RankContext::PendingRecv post_receive(Direction from, int tag) {
    return post_receive(3, from == Direction::Forward ? +1 : -1, tag);
  }

  std::vector<std::byte> wait_receive(const sim::RankContext::PendingRecv& pending) {
    return ctx_.wait(pending).take_payload();
  }

  // --- collectives -------------------------------------------------------------

  double sum(double local) { return ctx_.allreduce_sum(local); }
  void sum(double* values, int count) { ctx_.allreduce_sum(values, count); }

  void barrier() { ctx_.barrier(); }

  sim::RankContext& context() { return ctx_; }

private:
  sim::RankContext& ctx_;
  GridTopology topo_;
};

} // namespace quda::comm
