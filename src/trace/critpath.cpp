#include "trace/critpath.h"

#include <algorithm>
#include <cstring>
#include <deque>
#include <map>
#include <tuple>

namespace quda::trace {

namespace {

bool named(const Event& e, const char* name) { return std::strcmp(e.name, name) == 0; }

// [begin, end) of a container span used for gap classification
struct Interval {
  double begin = 0;
  double end = 0;
};

// reconstructed device resource (stream or copy engine): its ready value and
// the op that last advanced it.  Invariant: value > 0 implies last_op >= 0.
struct ResState {
  double value = 0;
  int last_op = -1;
};

// copy-engine index for a memcpy event, mirroring Device::pick_engine
int engine_of(const Event& e, int num_engines) {
  const bool h2d = std::strstr(e.name, "h2d") != nullptr;
  return num_engines == 2 ? (h2d ? 0 : 1) : 0;
}

// per-rank extraction pass: turn the recorded event list into a RankProgram
// whose Advance steps tile every host gap between anchors
class RankExtractor {
public:
  RankExtractor(const std::vector<Event>& events, int rank, ProgramModel& model)
      : events_(events), rank_(rank), model_(model), prog_(model.ranks[static_cast<std::size_t>(rank)]) {}

  void run() {
    collect_containers();
    for (std::size_t i = 0; i < events_.size() && model_.ok(); ++i) dispatch(i);
    if (!model_.ok()) return;
    // trailing host time not followed by an anchor (e.g. the tail of the
    // final container span) -- tile out to the latest host-side end so the
    // rank's end anchor equals its final simulated clock
    double final_end = cursor_;
    for (const Event& e : events_)
      if (e.track < 0) final_end = std::max(final_end, e.end_us);
    push_gap(final_end);
    prog_.end_us = cursor_;
    prog_.num_streams = static_cast<int>(streams_.size());
  }

private:
  void fail(const std::string& what) {
    if (model_.error.empty())
      model_.error = "rank " + std::to_string(rank_) + ": " + what;
  }

  // ---- pass 1: container spans classifying host gaps ------------------------

  void collect_containers() {
    for (const Event& e : events_) {
      if (e.instant || e.track != kTrackHost) continue;
      if (e.cat == Cat::Comm && (named(e, "send_frame") || named(e, "recv_frame")))
        comm_ivs_.push_back({e.ts_us, e.end_us});
      else if (e.cat == Cat::Op && (named(e, "halo_dslash") || named(e, "gauge_exchange")))
        dev_ivs_.push_back({e.ts_us, e.end_us});
      else if (e.cat == Cat::Fault &&
               (named(e, "checkpoint") || named(e, "ckpt_commit") || named(e, "rollback") ||
                named(e, "restore") || named(e, "detect") || named(e, "respawn") ||
                named(e, "resume")))
        rec_ivs_.push_back({e.ts_us, e.end_us});
    }
    auto by_begin = [](const Interval& a, const Interval& b) { return a.begin < b.begin; };
    std::sort(comm_ivs_.begin(), comm_ivs_.end(), by_begin);
    std::sort(dev_ivs_.begin(), dev_ivs_.end(), by_begin);
    std::sort(rec_ivs_.begin(), rec_ivs_.end(), by_begin);
  }

  // classify a gap by its midpoint; recovery containers win (nothing nests
  // inside them), then comm containers over device ones because
  // send/recv_frame nest inside halo_dslash.  Midpoints are monotonically
  // increasing, so scan pointers suffice.
  GapKind classify(double mid) {
    while (rec_idx_ < rec_ivs_.size() && rec_ivs_[rec_idx_].end <= mid) ++rec_idx_;
    if (rec_idx_ < rec_ivs_.size() && rec_ivs_[rec_idx_].begin <= mid)
      return GapKind::Recovery;
    while (comm_idx_ < comm_ivs_.size() && comm_ivs_[comm_idx_].end <= mid) ++comm_idx_;
    if (comm_idx_ < comm_ivs_.size() && comm_ivs_[comm_idx_].begin <= mid)
      return GapKind::CommOverhead;
    while (dev_idx_ < dev_ivs_.size() && dev_ivs_[dev_idx_].end <= mid) ++dev_idx_;
    if (dev_idx_ < dev_ivs_.size() && dev_ivs_[dev_idx_].begin <= mid)
      return GapKind::DeviceIssue;
    return GapKind::Solver;
  }

  // ---- pass 2 helpers -------------------------------------------------------

  bool push_gap(double to) {
    if (to < cursor_) {
      fail("host anchor regressed in time");
      return false;
    }
    if (to > cursor_) {
      Step s;
      s.kind = StepKind::Advance;
      s.gap = classify(cursor_ + 0.5 * (to - cursor_));
      s.begin_us = cursor_;
      s.end_us = to;
      prog_.steps.push_back(s);
      cursor_ = to;
    }
    return true;
  }

  ResState& stream_state(int stream) {
    if (stream >= static_cast<int>(streams_.size()))
      streams_.resize(static_cast<std::size_t>(stream) + 1);
    return streams_[static_cast<std::size_t>(stream)];
  }

  ResState& engine_state(int engine) {
    if (engine >= static_cast<int>(engines_.size()))
      engines_.resize(static_cast<std::size_t>(engine) + 1);
    return engines_[static_cast<std::size_t>(engine)];
  }

  // ---- pass 2: event dispatch ----------------------------------------------

  void dispatch(std::size_t i) {
    const Event& e = events_[i];
    if (e.track >= 0) {
      if (e.cat == Cat::Kernel && !e.instant) return on_kernel(e);
      if (e.cat == Cat::Copy && !e.instant) return on_async_copy(e);
      if (e.cat == Cat::Sync && e.instant && named(e, "stream_wait")) return on_stream_wait(e);
      return; // unknown stream activity: observational only, not modeled
    }
    if (e.track != kTrackHost) return; // comm / solver tracks are containers
    switch (e.cat) {
      case Cat::Comm:
        if (e.instant && named(e, "isend")) return on_isend(e, i);
        if (e.instant && named(e, "irecv")) return on_irecv(e);
        if (!e.instant && named(e, "mpi_wait")) return on_wait(e);
        return; // send_frame / recv_frame: containers
      case Cat::Copy:
        if (!e.instant) return on_sync_copy(e);
        return;
      case Cat::Sync:
        if (!e.instant && named(e, "stream_sync")) return on_stream_sync(e);
        if (!e.instant && named(e, "device_sync")) return on_device_sync(e);
        return;
      case Cat::Collective:
        if (!e.instant) return on_collective(e);
        return;
      case Cat::Fault:
        // a recovery epoch cleared the transport channels: receives posted
        // before the reset can never be waited on again
        if (e.instant && named(e, "recovery_reset")) irecv_fifo_.clear();
        return;
      default:
        return; // Solver / Op instants and containers
    }
  }

  void on_isend(const Event& e, std::size_t i) {
    if (!push_gap(e.ts_us)) return;
    Step s;
    s.kind = StepKind::Isend;
    s.begin_us = s.end_us = e.ts_us;
    s.peer = e.peer;
    s.tag = e.tag;
    // a dropped attempt is tagged by the fault tombstone recorded right after
    s.dropped = i + 1 < events_.size() && events_[i + 1].cat == Cat::Fault &&
                events_[i + 1].instant && named(events_[i + 1], "drop");
    prog_.steps.push_back(s);
  }

  void on_irecv(const Event& e) {
    if (!push_gap(e.ts_us)) return;
    Step s;
    s.kind = StepKind::Irecv;
    s.begin_us = s.end_us = e.ts_us;
    s.peer = e.peer;
    s.tag = e.tag;
    irecv_fifo_[{e.peer, e.tag}].push_back(static_cast<int>(prog_.steps.size()));
    prog_.steps.push_back(s);
  }

  void on_wait(const Event& e) {
    if (!push_gap(e.ts_us)) return;
    if (e.dep_rank < 0) return fail("mpi_wait without a sender edge");
    Step s;
    s.kind = StepKind::Wait;
    s.begin_us = e.ts_us;
    s.end_us = e.end_us;
    s.peer = e.peer;
    s.tag = e.tag;
    s.match_rank = e.dep_rank;
    s.send_ts_us = e.dep_ts_us;
    s.path_us = e.edge_us;
    auto& q = irecv_fifo_[{e.peer, e.tag}];
    if (q.empty()) return fail("mpi_wait without a posted irecv");
    s.irecv_step = q.front();
    q.pop_front();
    s.post_ts_us = prog_.steps[static_cast<std::size_t>(s.irecv_step)].begin_us;
    // bitwise recomputation of the recorded arrival gate
    const double arrival = std::max(s.send_ts_us, s.post_ts_us) + s.path_us;
    s.tail_us = e.end_us - std::max(e.ts_us, arrival);
    if (s.tail_us < 0) return fail("mpi_wait ended before its recomputed arrival");
    prog_.steps.push_back(s);
    cursor_ = e.end_us;
  }

  void on_collective(const Event& e) {
    if (!push_gap(e.ts_us)) return;
    if (e.dep_rank < 0 || e.dep_rank >= static_cast<int>(model_.ranks.size()))
      return fail("allreduce without a rendezvous edge");
    Step s;
    s.kind = StepKind::Collective;
    s.begin_us = e.ts_us;
    s.end_us = e.end_us;
    s.gate_rank = e.dep_rank;
    s.gate_ts_us = e.dep_ts_us;
    s.tree_us = e.edge_us;
    s.coll_index = static_cast<int>(model_.collective_steps[static_cast<std::size_t>(rank_)].size());
    model_.collective_steps[static_cast<std::size_t>(rank_)].push_back(
        static_cast<int>(prog_.steps.size()));
    prog_.steps.push_back(s);
    cursor_ = e.end_us;
  }

  void on_sync_copy(const Event& e) {
    const double issue = e.dep_ts_us;
    if (issue < 0) return fail("sync copy without an issue anchor");
    if (!push_gap(issue)) return;
    ResState& eng = engine_state(engine_of(e, model_.num_engines));
    const double gate = std::max(issue, eng.value);
    if (e.ts_us != gate) return fail("sync copy start does not match its engine gate");
    DeviceOp op;
    op.name = e.name;
    op.engine = engine_of(e, model_.num_engines);
    op.issue_us = issue;
    op.gate_us = gate;
    op.start_us = e.ts_us;
    op.end_us = e.end_us;
    op.pred_op = (eng.last_op >= 0 && eng.value == gate) ? eng.last_op : -1;
    if (op.pred_op < 0 && gate != issue) return fail("sync copy gated by an untracked engine");
    op.issue_step = static_cast<int>(prog_.steps.size());
    const int oi = static_cast<int>(prog_.ops.size());
    prog_.ops.push_back(op);
    eng.value = e.end_us;
    eng.last_op = oi;
    Step s;
    s.kind = StepKind::SyncCopy;
    s.begin_us = issue;
    s.end_us = e.end_us;
    s.op = oi;
    prog_.steps.push_back(s);
    cursor_ = e.end_us;
  }

  void on_async_copy(const Event& e) {
    const double issue = e.dep_ts_us;
    if (issue < 0) return fail("async copy without an issue anchor");
    if (!push_gap(issue)) return;
    ResState& st = stream_state(e.track);
    ResState& eng = engine_state(engine_of(e, model_.num_engines));
    const double gate = std::max({issue, st.value, eng.value});
    if (e.ts_us != gate) return fail("async copy start does not match its gate");
    DeviceOp op;
    op.name = e.name;
    op.stream = e.track;
    op.engine = engine_of(e, model_.num_engines);
    op.issue_us = issue;
    op.gate_us = gate;
    op.start_us = e.ts_us;
    op.end_us = e.end_us;
    if (st.last_op >= 0 && st.value == gate)
      op.pred_op = st.last_op;
    else if (eng.last_op >= 0 && eng.value == gate)
      op.pred_op = eng.last_op;
    else
      op.pred_op = -1;
    if (op.pred_op < 0 && gate != issue) return fail("async copy gated by an untracked resource");
    op.issue_step = static_cast<int>(prog_.steps.size());
    const int oi = static_cast<int>(prog_.ops.size());
    prog_.ops.push_back(op);
    st.value = e.end_us;
    st.last_op = oi;
    eng.value = e.end_us;
    eng.last_op = oi;
    Step s;
    s.kind = StepKind::AsyncCopy;
    s.begin_us = s.end_us = issue;
    s.op = oi;
    s.stream = e.track;
    prog_.steps.push_back(s);
  }

  void on_kernel(const Event& e) {
    const double issue = e.dep_ts_us;
    if (issue < 0) return fail("kernel without an issue anchor");
    if (!push_gap(issue)) return;
    ResState& st = stream_state(e.track);
    const double gate = std::max(issue, st.value);
    if (e.ts_us < gate) return fail("kernel started before its stream gate");
    DeviceOp op;
    op.is_kernel = true;
    op.name = e.name;
    op.stream = e.track;
    op.issue_us = issue;
    op.gate_us = gate;
    op.start_us = e.ts_us; // gate + launch overhead
    op.end_us = e.end_us;
    op.pred_op = (st.last_op >= 0 && st.value == gate) ? st.last_op : -1;
    if (op.pred_op < 0 && gate != issue) return fail("kernel gated by an untracked stream");
    op.issue_step = static_cast<int>(prog_.steps.size());
    const int oi = static_cast<int>(prog_.ops.size());
    prog_.ops.push_back(op);
    st.value = e.end_us;
    st.last_op = oi;
    Step s;
    s.kind = StepKind::Kernel;
    s.begin_us = s.end_us = issue;
    s.op = oi;
    s.stream = e.track;
    prog_.steps.push_back(s);
  }

  void on_stream_wait(const Event& e) {
    if (!push_gap(e.ts_us)) return;
    const int waiter = e.track;
    const int waitee = e.tag;
    ResState& src = stream_state(waitee);
    if (src.value != e.dep_ts_us) return fail("stream_wait source value mismatch");
    ResState& dst = stream_state(waiter);
    if (e.dep_ts_us > dst.value) {
      dst.value = e.dep_ts_us;
      dst.last_op = src.last_op;
    }
    Step s;
    s.kind = StepKind::StreamWait;
    s.begin_us = s.end_us = e.ts_us;
    s.stream = waiter;
    s.waitee = waitee;
    prog_.steps.push_back(s);
  }

  void on_stream_sync(const Event& e) {
    if (!push_gap(e.ts_us)) return;
    const int stream = e.tag;
    Step s;
    s.kind = StepKind::StreamSync;
    s.begin_us = e.ts_us;
    s.end_us = e.end_us;
    s.stream = stream;
    if (e.end_us > e.ts_us) {
      const ResState& st = stream_state(stream);
      if (st.value != e.end_us || st.last_op < 0)
        return fail("stream_sync end does not match the stream's last op");
      s.pred_op = st.last_op;
    }
    prog_.steps.push_back(s);
    cursor_ = e.end_us;
  }

  void on_device_sync(const Event& e) {
    if (!push_gap(e.ts_us)) return;
    Step s;
    s.kind = StepKind::DeviceSync;
    s.begin_us = e.ts_us;
    s.end_us = e.end_us;
    if (e.end_us > e.ts_us) {
      for (const ResState& st : streams_)
        if (st.value == e.end_us && st.last_op >= 0) s.pred_op = st.last_op;
      if (s.pred_op < 0)
        for (const ResState& eng : engines_)
          if (eng.value == e.end_us && eng.last_op >= 0) s.pred_op = eng.last_op;
      if (s.pred_op < 0) return fail("device_sync end does not match any device resource");
    }
    prog_.steps.push_back(s);
    cursor_ = e.end_us;
  }

  const std::vector<Event>& events_;
  const int rank_;
  ProgramModel& model_;
  RankProgram& prog_;
  double cursor_ = 0;
  std::vector<Interval> comm_ivs_, dev_ivs_, rec_ivs_;
  std::size_t comm_idx_ = 0, dev_idx_ = 0, rec_idx_ = 0;
  std::vector<ResState> streams_, engines_;
  std::map<std::pair<int, int>, std::deque<int>> irecv_fifo_; // (src, tag)
};

// match every Wait to its sender's Isend: FIFO per (src, dst, tag) channel,
// dropped attempts excluded (the transport skips their tombstones).  Every
// recovery_reset instant marks a cluster-wide channel purge at that sim
// time (identical on all ranks), so a wait only matches sends posted since
// the last reset preceding it -- earlier unconsumed sends died with the
// failure epoch.
void link_channels(ProgramModel& model, const std::vector<double>& resets) {
  std::map<std::tuple<int, int, int>, std::deque<int>> sends;
  for (std::size_t r = 0; r < model.ranks.size(); ++r) {
    const auto& steps = model.ranks[r].steps;
    for (std::size_t i = 0; i < steps.size(); ++i)
      if (steps[i].kind == StepKind::Isend && !steps[i].dropped)
        sends[{static_cast<int>(r), steps[i].peer, steps[i].tag}].push_back(static_cast<int>(i));
  }
  for (std::size_t r = 0; r < model.ranks.size(); ++r) {
    for (Step& s : model.ranks[r].steps) {
      if (s.kind != StepKind::Wait) continue;
      if (s.match_rank != s.peer) {
        model.error = "mpi_wait edge names a rank other than its channel peer";
        return;
      }
      auto& q = sends[{s.peer, static_cast<int>(r), s.tag}];
      // purge sends that predate the last reset at-or-before this wait
      const auto reset = std::upper_bound(resets.begin(), resets.end(), s.begin_us);
      if (reset != resets.begin()) {
        const double purge_before = *(reset - 1);
        while (!q.empty() &&
               model.ranks[static_cast<std::size_t>(s.peer)]
                       .steps[static_cast<std::size_t>(q.front())]
                       .begin_us < purge_before)
          q.pop_front();
      }
      if (q.empty()) {
        model.error = "mpi_wait without a matching isend on its channel";
        return;
      }
      const int si = q.front();
      q.pop_front();
      const Step& snd = model.ranks[static_cast<std::size_t>(s.peer)].steps[static_cast<std::size_t>(si)];
      if (snd.begin_us != s.send_ts_us) {
        model.error = "matched isend time differs from the recorded send edge";
        return;
      }
      s.match_step = si;
    }
  }
}

// cross-validate the rendezvous edges: every rank saw the same number of
// collectives, and generation k's gate rank reached its k-th collective at
// exactly the recorded gate time
void link_collectives(ProgramModel& model) {
  const std::size_t count = model.collective_steps.empty() ? 0 : model.collective_steps[0].size();
  for (const auto& per_rank : model.collective_steps)
    if (per_rank.size() != count) {
      model.error = "ranks disagree on the number of collectives";
      return;
    }
  model.num_collectives = count;
  for (std::size_t k = 0; k < count; ++k) {
    for (std::size_t r = 0; r < model.ranks.size(); ++r) {
      const Step& s =
          model.ranks[r].steps[static_cast<std::size_t>(model.collective_steps[r][k])];
      const auto& gate_steps = model.collective_steps[static_cast<std::size_t>(s.gate_rank)];
      const Step& g = model.ranks[static_cast<std::size_t>(s.gate_rank)]
                          .steps[static_cast<std::size_t>(gate_steps[k])];
      if (g.begin_us != s.gate_ts_us) {
        model.error = "collective gate time differs from the gate rank's arrival";
        return;
      }
    }
  }
}

} // namespace

ProgramModel build_model(const TraceReport& report, const ModelConfig& config) {
  ProgramModel model;
  model.num_engines = config.dual_copy_engine ? 2 : 1;
  if (!report.enabled || report.per_rank.empty()) {
    model.error = "trace is empty or was not enabled";
    return model;
  }
  model.ranks.resize(report.per_rank.size());
  model.collective_steps.resize(report.per_rank.size());
  for (std::size_t r = 0; r < report.per_rank.size(); ++r) {
    RankExtractor(report.per_rank[r], static_cast<int>(r), model).run();
    if (!model.ok()) return model;
  }
  // cluster-wide channel-purge times (one per recovery epoch; every rank
  // records the same set, the union is just belt and braces)
  std::vector<double> resets;
  for (const auto& events : report.per_rank)
    for (const Event& e : events)
      if (e.instant && e.cat == Cat::Fault && named(e, "recovery_reset"))
        resets.push_back(e.ts_us);
  std::sort(resets.begin(), resets.end());
  resets.erase(std::unique(resets.begin(), resets.end()), resets.end());
  link_channels(model, resets);
  if (!model.ok()) return model;
  link_collectives(model);
  return model;
}

CriticalPath critical_path(const ProgramModel& model) {
  CriticalPath cp;
  if (!model.ok()) {
    cp.error = model.error;
    return cp;
  }
  if (model.ranks.empty()) {
    cp.error = "empty model";
    return cp;
  }

  int r = 0;
  long total_steps = 0;
  for (std::size_t i = 0; i < model.ranks.size(); ++i) {
    if (model.ranks[i].end_us > model.ranks[static_cast<std::size_t>(r)].end_us)
      r = static_cast<int>(i);
    total_steps += static_cast<long>(model.ranks[i].steps.size()) +
                   static_cast<long>(model.ranks[i].ops.size());
  }
  cp.critical_rank = r;
  cp.makespan_us = model.ranks[static_cast<std::size_t>(r)].end_us;

  double t = cp.makespan_us;
  int i = static_cast<int>(model.ranks[static_cast<std::size_t>(r)].steps.size()) - 1;
  long safety = 4 * total_steps + 64;

  auto emit = [&](SegKind kind, GapKind gap, const char* label, double begin, double end) {
    if (end > begin) cp.segments.push_back({r, kind, gap, label, begin, end});
  };

  // descend a device chain: t == ops[oi].end_us on entry; exits back to the
  // host walk at the first host-gated op's issue anchor
  auto descend = [&](int oi) -> bool {
    for (;;) {
      const DeviceOp& op = model.ranks[static_cast<std::size_t>(r)].ops[static_cast<std::size_t>(oi)];
      if (t != op.end_us) return false;
      emit(op.is_kernel ? SegKind::KernelExec : SegKind::CopyExec, GapKind::Solver, op.name,
           op.start_us, op.end_us);
      emit(SegKind::LaunchGap, GapKind::Solver, "kernel_launch", op.gate_us, op.start_us);
      t = op.gate_us;
      if (op.pred_op >= 0) {
        oi = op.pred_op;
        continue;
      }
      // host-gated: gate == issue (build_model validated), resume the host
      // walk just before the issuing step
      t = op.issue_us;
      i = op.issue_step - 1;
      return true;
    }
  };

  while (i >= 0) {
    if (--safety < 0) {
      cp.error = "critical-path walk did not terminate";
      cp.walk_end_us = t;
      return cp;
    }
    const Step& s = model.ranks[static_cast<std::size_t>(r)].steps[static_cast<std::size_t>(i)];
    if (t != s.end_us) {
      cp.error = "critical-path walk lost anchor alignment";
      cp.walk_end_us = t;
      return cp;
    }
    switch (s.kind) {
      case StepKind::Advance:
        emit(SegKind::HostGap, s.gap, "host", s.begin_us, s.end_us);
        t = s.begin_us;
        --i;
        break;
      case StepKind::Isend:
      case StepKind::Irecv:
      case StepKind::Kernel:
      case StepKind::AsyncCopy:
      case StepKind::StreamWait:
        --i; // zero-width anchors
        break;
      case StepKind::Wait: {
        const double arrival = std::max(s.send_ts_us, s.post_ts_us) + s.path_us;
        emit(SegKind::CommTail, GapKind::Solver, "mpi_wait", std::max(s.begin_us, arrival),
             s.end_us);
        if (arrival > s.begin_us) {
          emit(SegKind::MsgFlight, GapKind::Solver, "msg_flight",
               std::max(s.send_ts_us, s.post_ts_us), arrival);
          if (s.send_ts_us >= s.post_ts_us) {
            // the sender gated the arrival: hop to its isend anchor
            r = s.match_rank;
            i = s.match_step;
            t = s.send_ts_us;
            ++cp.cross_rank_jumps;
          } else {
            // our late irecv gated it: continue locally at the post anchor
            i = s.irecv_step;
            t = s.post_ts_us;
          }
        } else {
          t = s.begin_us;
          --i;
        }
        break;
      }
      case StepKind::Collective: {
        emit(SegKind::CollectiveTree, GapKind::Solver, "allreduce", s.gate_ts_us, s.end_us);
        if (s.gate_rank == r) {
          t = s.gate_ts_us; // == s.begin_us: this rank arrived last
          --i;
        } else {
          const int gi =
              model.collective_steps[static_cast<std::size_t>(s.gate_rank)]
                                    [static_cast<std::size_t>(s.coll_index)];
          r = s.gate_rank;
          i = gi - 1; // resume just before the gate rank's collective step
          t = s.gate_ts_us;
          ++cp.cross_rank_jumps;
        }
        break;
      }
      case StepKind::SyncCopy:
        if (!descend(s.op)) {
          cp.error = "device chain walk lost alignment";
          cp.walk_end_us = t;
          return cp;
        }
        break;
      case StepKind::StreamSync:
      case StepKind::DeviceSync:
        if (s.end_us == s.begin_us) {
          --i;
        } else if (s.pred_op >= 0) {
          if (!descend(s.pred_op)) {
            cp.error = "device chain walk lost alignment";
            cp.walk_end_us = t;
            return cp;
          }
        } else {
          emit(SegKind::SyncStall, GapKind::Solver, "sync", s.begin_us, s.end_us);
          t = s.begin_us;
          --i;
        }
        break;
    }
  }

  cp.walk_end_us = t;
  cp.path_us = cp.makespan_us - t;
  cp.ok = t == 0.0;
  if (!cp.ok) cp.error = "walk stopped short of time zero";
  return cp;
}

ReplayResult replay(const ProgramModel& model, const WhatIf& w) {
  ReplayResult res;
  if (!model.ok()) {
    res.error = model.error;
    return res;
  }
  const std::size_t n = model.ranks.size();

  struct RankState {
    std::size_t pc = 0;
    double cursor = 0;
    std::vector<double> streams, engines;
    std::vector<double> send_t, post_t; // per-step replayed anchors
    bool registered = false;            // arrival posted at the blocking collective
  };
  std::vector<RankState> st(n);
  for (std::size_t r = 0; r < n; ++r) {
    st[r].streams.assign(static_cast<std::size_t>(std::max(model.ranks[r].num_streams, 1)), 0.0);
    st[r].engines.assign(static_cast<std::size_t>(model.num_engines), 0.0);
    st[r].send_t.assign(model.ranks[r].steps.size(), -1.0);
    st[r].post_t.assign(model.ranks[r].steps.size(), -1.0);
  }

  struct CollState {
    int arrived = 0;
    double maxv = 0;
    bool done = false;
    double done_t = 0;
  };
  std::vector<CollState> colls(model.num_collectives);

  for (;;) {
    bool progress = false;
    bool all_done = true;
    for (std::size_t r = 0; r < n; ++r) {
      RankState& rs = st[r];
      const RankProgram& prog = model.ranks[r];
      while (rs.pc < prog.steps.size()) {
        const Step& s = prog.steps[rs.pc];
        bool blocked = false;
        switch (s.kind) {
          case StepKind::Advance:
            rs.cursor += s.end_us - s.begin_us;
            break;
          case StepKind::Isend:
            rs.send_t[rs.pc] = rs.cursor;
            break;
          case StepKind::Irecv:
            rs.post_t[rs.pc] = rs.cursor;
            break;
          case StepKind::Wait: {
            if (w.infinite_overlap) {
              rs.cursor += s.tail_us; // comm fully hidden: only the local tail
              break;
            }
            const double snd =
                st[static_cast<std::size_t>(s.match_rank)].send_t[static_cast<std::size_t>(s.match_step)];
            if (snd < 0) {
              blocked = true;
              break;
            }
            const double post = rs.post_t[static_cast<std::size_t>(s.irecv_step)];
            const double arrival = std::max(snd, post) + s.path_us * w.net_scale;
            rs.cursor = std::max(rs.cursor, arrival) + s.tail_us;
            break;
          }
          case StepKind::Collective: {
            CollState& c = colls[static_cast<std::size_t>(s.coll_index)];
            if (!rs.registered) {
              rs.registered = true;
              c.maxv = c.arrived == 0 ? rs.cursor : std::max(c.maxv, rs.cursor);
              if (++c.arrived == static_cast<int>(n)) {
                c.done = true;
                c.done_t = c.maxv + s.tree_us * w.net_scale;
              }
              progress = true;
            }
            if (!c.done) {
              blocked = true;
              break;
            }
            rs.cursor = std::max(rs.cursor, c.done_t);
            rs.registered = false;
            break;
          }
          case StepKind::SyncCopy: {
            const DeviceOp& op = prog.ops[static_cast<std::size_t>(s.op)];
            double& eng = rs.engines[static_cast<std::size_t>(op.engine)];
            const double start = std::max(rs.cursor, eng);
            const double end = start + (op.end_us - op.start_us) * w.pcie_scale;
            eng = end;
            if (!w.infinite_overlap) rs.cursor = end;
            break;
          }
          case StepKind::AsyncCopy: {
            const DeviceOp& op = prog.ops[static_cast<std::size_t>(s.op)];
            double& eng = rs.engines[static_cast<std::size_t>(op.engine)];
            double& str = rs.streams[static_cast<std::size_t>(op.stream)];
            const double start = std::max({rs.cursor, eng, str});
            const double end = start + (op.end_us - op.start_us) * w.pcie_scale;
            eng = end;
            str = end;
            break;
          }
          case StepKind::Kernel: {
            const DeviceOp& op = prog.ops[static_cast<std::size_t>(s.op)];
            double& str = rs.streams[static_cast<std::size_t>(op.stream)];
            const double start =
                std::max(rs.cursor, str) + (op.start_us - op.gate_us); // launch overhead
            str = start + (op.end_us - op.start_us) * w.kernel_scale;
            break;
          }
          case StepKind::StreamSync:
            if (!w.infinite_overlap)
              rs.cursor = std::max(rs.cursor, rs.streams[static_cast<std::size_t>(s.stream)]);
            break;
          case StepKind::DeviceSync:
            if (!w.infinite_overlap) {
              for (double v : rs.streams) rs.cursor = std::max(rs.cursor, v);
              for (double v : rs.engines) rs.cursor = std::max(rs.cursor, v);
            }
            break;
          case StepKind::StreamWait: {
            double& waiter = rs.streams[static_cast<std::size_t>(s.stream)];
            waiter = std::max(waiter, rs.streams[static_cast<std::size_t>(s.waitee)]);
            break;
          }
        }
        if (blocked) break;
        ++rs.pc;
        progress = true;
      }
      if (rs.pc < prog.steps.size()) all_done = false;
    }
    if (all_done) break;
    if (!progress) {
      res.error = "replay deadlocked";
      return res;
    }
  }

  res.rank_end_us.resize(n);
  for (std::size_t r = 0; r < n; ++r) {
    double end = st[r].cursor;
    for (double v : st[r].streams) end = std::max(end, v);
    for (double v : st[r].engines) end = std::max(end, v);
    res.rank_end_us[r] = end;
    res.makespan_us = std::max(res.makespan_us, end);
  }
  res.ok = true;
  return res;
}

double compute_bound_us(const ProgramModel& model) {
  double bound = 0;
  for (const RankProgram& prog : model.ranks) {
    std::vector<double> per_stream(static_cast<std::size_t>(std::max(prog.num_streams, 1)), 0.0);
    for (const DeviceOp& op : prog.ops)
      if (op.is_kernel && op.stream >= 0)
        per_stream[static_cast<std::size_t>(op.stream)] += op.end_us - op.start_us;
    for (double v : per_stream) bound = std::max(bound, v);
  }
  return bound;
}

} // namespace quda::trace
