#include "trace/metrics.h"

#include <algorithm>
#include <cstring>
#include <utility>
#include <vector>

namespace quda::trace {

namespace {

using Interval = std::pair<double, double>;

// merge possibly-overlapping intervals into a disjoint sorted union
std::vector<Interval> interval_union(std::vector<Interval> in) {
  std::sort(in.begin(), in.end());
  std::vector<Interval> out;
  for (const Interval& iv : in) {
    if (iv.second <= iv.first) continue;
    if (!out.empty() && iv.first <= out.back().second) {
      out.back().second = std::max(out.back().second, iv.second);
    } else {
      out.push_back(iv);
    }
  }
  return out;
}

double total_length(const std::vector<Interval>& u) {
  double t = 0;
  for (const Interval& iv : u) t += iv.second - iv.first;
  return t;
}

// length of the intersection of two disjoint sorted unions
double intersection_length(const std::vector<Interval>& a, const std::vector<Interval>& b) {
  double t = 0;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    const double lo = std::max(a[i].first, b[j].first);
    const double hi = std::min(a[i].second, b[j].second);
    if (hi > lo) t += hi - lo;
    if (a[i].second < b[j].second) {
      ++i;
    } else {
      ++j;
    }
  }
  return t;
}

} // namespace

Metrics compute_metrics(const TraceReport& report) {
  Metrics m;
  for (const auto& rank_events : report.per_rank) {
    std::vector<Interval> comm_windows;
    std::vector<Interval> kernel_windows;
    for (const Event& e : rank_events) {
      ++m.events;
      if (e.instant) {
        if (std::strcmp(e.name, "isend") == 0) {
          ++m.messages;
          m.halo_bytes += e.bytes;
        } else if (std::strcmp(e.name, "retry") == 0) {
          ++m.retries;
        } else if (std::strcmp(e.name, "checksum_error") == 0) {
          ++m.checksum_errors;
        }
        continue;
      }
      if (e.track == kTrackComm && std::strcmp(e.name, "msg_flight") == 0) {
        // delivered wire bytes by link class (sim::LinkClass numeric values)
        if (e.link == 0) {
          m.shm_bytes += e.bytes;
        } else if (e.link == 1) {
          m.ib_bytes += e.bytes;
        } else if (e.link == 2) {
          m.xswitch_bytes += e.bytes;
        }
      }
      if (e.cat == Cat::Kernel && e.track >= 0) {
        m.kernel_us += e.dur_us;
        m.kernels[e.name].add(e.dur_us);
        kernel_windows.emplace_back(e.ts_us, e.ts_us + e.dur_us);
      } else if (e.track == kTrackComm && std::strcmp(e.name, "halo_comm") == 0) {
        comm_windows.emplace_back(e.ts_us, e.ts_us + e.dur_us);
      }
    }
    const auto comm_union = interval_union(std::move(comm_windows));
    const auto kernel_union = interval_union(std::move(kernel_windows));
    m.comm_us += total_length(comm_union);
    m.overlapped_us += intersection_length(comm_union, kernel_union);
  }
  m.overlap_efficiency = m.comm_us > 0 ? m.overlapped_us / m.comm_us : 0.0;
  return m;
}

} // namespace quda::trace
