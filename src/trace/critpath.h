#pragma once
// Critical-path extraction over the recorded event DAG of one run.
//
// The tracer records, next to every event, the happens-before edge that
// gated it (Event::dep_*): mpi_wait carries the sender and send time,
// allreduce the rendezvous-gating rank, copies and kernels their host
// issue anchor, stream_wait the waitee's ready value.  From those records
// build_model() reconstructs each rank's *program*: an ordered list of
// host steps (sends, receives, waits, collectives, copies, kernel issues,
// syncs, and the local host advances between them) plus the device-op
// timeline per stream/copy-engine, with every op's gating predecessor
// resolved by replaying the device-state max() computations on the exact
// recorded doubles -- so resolution is bitwise, not heuristic.
//
// Two consumers:
//  * critical_path() walks the DAG *backward* from the makespan-defining
//    rank's completion to time zero, hopping ranks at message and
//    rendezvous edges and descending device chains at blocking syncs.  The
//    walk uses only recorded times, so the returned segments tile
//    [0, makespan] exactly: path length == end-to-end simulated time.
//  * replay() re-executes the extracted program *forward* with edited edge
//    weights (WhatIf) -- zero-latency network, free PCIe, infinite overlap
//    -- projecting what the same schedule would have cost on different
//    hardware.  Max-plus monotonicity guarantees a projection with reduced
//    weights never exceeds the measured makespan.
//
// attribution.h maps the walk's segments onto the paper's cost categories
// and bundles the whole analysis into one CritSummary.

#include "trace/trace.h"

#include <cstdint>
#include <string>
#include <vector>

namespace quda::trace {

// analyzer-side description of the device the trace was recorded on
struct ModelConfig {
  bool dual_copy_engine = false; // GT200: one engine; Fermi: one per direction
};

// one device-side operation (kernel execution or PCIe transfer)
// reconstructed from a stream/host copy span
struct DeviceOp {
  bool is_kernel = false;
  const char* name = "";
  int stream = -1;       // -1: sync copy (engine only)
  int engine = -1;       // copies only
  double issue_us = 0;   // host clock at issue (the recorded dep anchor)
  double gate_us = 0;    // max(issue, gating resource): start of launch gap
  double start_us = 0;   // execution begin
  double end_us = 0;     // execution end (exact recorded double)
  int pred_op = -1;      // device op whose end gated this one; -1 = host
  int issue_step = -1;   // index of the issuing Step in the rank program
};

enum class StepKind : std::uint8_t {
  Advance,    // local host time between anchors (classified by container)
  Isend,      // message posted (anchor only; overhead lands in a gap)
  Irecv,      // receive posted (anchor; supplies the wait's post time)
  Wait,       // host blocks for a matched message
  Collective, // allreduce rendezvous
  SyncCopy,   // host-blocking PCIe transfer
  AsyncCopy,  // async transfer issue (DeviceOp runs on stream + engine)
  Kernel,     // kernel issue (DeviceOp runs on the stream)
  StreamSync, // host blocks on one stream
  DeviceSync, // host blocks on all streams + engines
  StreamWait, // cross-stream ordering edge (no host cost)
};

// container classifying a host Advance gap (innermost enclosing span)
enum class GapKind : std::uint8_t {
  Solver,       // solver-serial host work (default)
  CommOverhead, // inside send_frame / recv_frame: framing, checksums, MPI calls
  DeviceIssue,  // inside halo_dslash / gauge_exchange: issue + launch overheads
  Recovery,     // inside checkpoint/rollback/restore/detect/respawn/resume spans
};

struct Step {
  StepKind kind = StepKind::Advance;
  GapKind gap = GapKind::Solver; // Advance only
  double begin_us = 0;           // arrival anchor (host clock reaching the step)
  double end_us = 0;             // post anchor (host clock after the step)
  // Isend / Irecv / Wait
  int peer = -1, tag = -1;
  bool dropped = false;      // Isend: fault tombstone, never delivered
  double send_ts_us = 0;     // Wait: matched send time (recorded edge)
  double path_us = 0;        // Wait: network flight time (recorded edge)
  double post_ts_us = 0;     // Wait: matched irecv post time
  double tail_us = 0;        // Wait: post-arrival local cost (MPI overhead)
  int match_rank = -1;       // Wait: sender rank
  int match_step = -1;       // Wait: sender's Isend step index
  int irecv_step = -1;       // Wait: this rank's matching Irecv step index
  // Collective
  int gate_rank = -1;        // rendezvous-gating rank (recorded edge)
  double gate_ts_us = 0;     // its arrival time
  double tree_us = 0;        // tree-reduction cost on top of the gate
  int coll_index = -1;       // k-th collective of this rank
  // device
  int op = -1;               // SyncCopy/AsyncCopy/Kernel: DeviceOp index
  int stream = -1;           // StreamSync target / StreamWait waiter
  int waitee = -1;           // StreamWait source stream
  int pred_op = -1;          // StreamSync/DeviceSync: gating op (-1 = none)
};

struct RankProgram {
  std::vector<Step> steps;
  std::vector<DeviceOp> ops;
  int num_streams = 0;
  double end_us = 0; // final host anchor == the rank's final simulated clock
};

struct ProgramModel {
  std::vector<RankProgram> ranks;
  std::vector<std::vector<int>> collective_steps; // [rank][k] -> step index
  std::size_t num_collectives = 0;
  int num_engines = 1;
  std::string error; // non-empty: the trace could not be modeled
  bool ok() const { return error.empty(); }
};

ProgramModel build_model(const TraceReport& report, const ModelConfig& config = {});

// typed critical-path segment kinds (attribution.h maps them to categories)
enum class SegKind : std::uint8_t {
  HostGap,        // local host advance (GapKind says inside what)
  MsgFlight,      // network flight of the gating message
  CommTail,       // post-arrival local cost of a blocking wait
  CollectiveTree, // rendezvous wait + tree steps of an allreduce
  KernelExec,     // kernel execution (label = kernel name)
  LaunchGap,      // kernel-launch overhead on the gating device chain
  CopyExec,       // PCIe bus occupancy (label = memcpy name)
  SyncStall,      // blocked sync whose device chain could not be resolved
};

struct PathSegment {
  int rank = -1;
  SegKind kind = SegKind::HostGap;
  GapKind gap = GapKind::Solver; // HostGap only
  const char* label = "";
  double begin_us = 0;
  double end_us = 0;
  double length_us() const { return end_us - begin_us; }
};

struct CriticalPath {
  bool ok = false;
  std::string error;
  int critical_rank = -1;     // rank whose completion defines the makespan
  double makespan_us = 0;     // max over ranks of the final host anchor
  double path_us = 0;         // == makespan_us when the walk closed at t = 0
  double walk_end_us = 0;     // residual time at walk exhaustion (0 = exact)
  long cross_rank_jumps = 0;  // rank hops via message / rendezvous edges
  std::vector<PathSegment> segments; // in walk order (reverse chronological)
};

CriticalPath critical_path(const ProgramModel& model);

// edge-weight edits for what-if projections (all reductions: monotone)
struct WhatIf {
  double net_scale = 1.0;    // message flight + collective tree factor
  double pcie_scale = 1.0;   // PCIe transfer duration factor
  double kernel_scale = 1.0; // kernel execution duration factor
  // host never blocks on comm or device completion (waits cost only their
  // local tail; stream/device syncs are free).  Collectives keep their
  // rendezvous semantics: a reduction is a data dependency, not comm that
  // overlap could hide.
  bool infinite_overlap = false;
};

struct ReplayResult {
  bool ok = false;
  std::string error;
  double makespan_us = 0;
  std::vector<double> rank_end_us;
};

ReplayResult replay(const ProgramModel& model, const WhatIf& whatif = {});

// max over ranks of (max over streams of total kernel execution time): a
// lower bound on any replay that keeps kernel durations (stream ready
// values grow by at least each kernel's duration)
double compute_bound_us(const ProgramModel& model);

} // namespace quda::trace
