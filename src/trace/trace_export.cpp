#include "trace/trace_export.h"

#include <atomic>
#include <cstdio>
#include <fstream>
#include <set>

namespace quda::trace {

namespace {

// stable thread ids within a rank's process: streams keep their index, the
// named host-side tracks sort after them
inline int track_tid(int track) {
  switch (track) {
    case kTrackHost: return 10;
    case kTrackComm: return 11;
    case kTrackSolver: return 12;
    default: return track;
  }
}

inline std::string track_label(int track) {
  switch (track) {
    case kTrackHost: return "host";
    case kTrackComm: return "comm";
    case kTrackSolver: return "solver";
    default: return "stream " + std::to_string(track);
  }
}

inline std::string num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

void append_meta(std::string& out, int pid, int tid, const char* kind,
                 const std::string& label, bool& first) {
  out += first ? "\n" : ",\n";
  first = false;
  out += "{\"ph\": \"M\", \"pid\": " + std::to_string(pid) + ", \"tid\": " +
         std::to_string(tid) + ", \"name\": \"" + kind + "\", \"args\": {\"name\": \"" + label +
         "\"}}";
}

void append_event(std::string& out, int pid, const Event& e, bool& first) {
  out += first ? "\n" : ",\n";
  first = false;
  out += "{\"name\": \"";
  out += e.name;
  out += "\", \"cat\": \"";
  out += cat_name(e.cat);
  out += "\", \"ph\": \"";
  out += e.instant ? "i" : "X";
  out += "\", ";
  if (e.instant) out += "\"s\": \"t\", ";
  out += "\"pid\": " + std::to_string(pid) + ", \"tid\": " +
         std::to_string(track_tid(e.track)) + ", \"ts\": " + num(e.ts_us);
  if (!e.instant) out += ", \"dur\": " + num(e.dur_us);
  out += ", \"args\": {\"bytes\": " + std::to_string(e.bytes) +
         ", \"peer\": " + std::to_string(e.peer) + ", \"tag\": " + std::to_string(e.tag) +
         ", \"seq\": " + std::to_string(e.seq) + ", \"dep_rank\": " + std::to_string(e.dep_rank) +
         ", \"dep_ts\": " + num(e.dep_ts_us) + ", \"edge_us\": " + num(e.edge_us) +
         ", \"link\": " + std::to_string(e.link) + "}}";
}

} // namespace

std::string chrome_trace_json(const TraceReport& report) {
  std::string out = "{\n\"traceEvents\": [";
  bool first = true;
  for (std::size_t rank = 0; rank < report.per_rank.size(); ++rank) {
    const int pid = static_cast<int>(rank);
    append_meta(out, pid, 0, "process_name", "rank " + std::to_string(pid), first);
    std::set<int> tracks;
    for (const Event& e : report.per_rank[rank]) tracks.insert(e.track);
    for (int track : tracks)
      append_meta(out, pid, track_tid(track), "thread_name", track_label(track), first);
    for (const Event& e : report.per_rank[rank]) append_event(out, pid, e, first);
  }
  out += "\n],\n";
  // provenance rides on exactly one line so differential tests (bitwise
  // trace comparison across schedulers/budgets) can strip it by line
  if (!report.provenance_json.empty())
    out += "\"provenance\": " + report.provenance_json + ",\n";
  out += "\"displayTimeUnit\": \"ms\",\n\"otherData\": {\"tool\": \"mgpu-quda sim tracer\", "
         "\"ranks\": " +
         std::to_string(report.per_rank.size()) + ", \"events\": " +
         std::to_string(report.total_events()) +
         ", \"gpus_per_node\": " + std::to_string(report.gpus_per_node) +
         ", \"nodes_per_switch\": " + std::to_string(report.nodes_per_switch) + "}\n}\n";
  return out;
}

bool write_chrome_trace(const std::string& path, const TraceReport& report) {
  std::ofstream os(path);
  if (!os) return false;
  os << chrome_trace_json(report);
  return static_cast<bool>(os);
}

std::string unique_trace_path(const std::string& base) {
  // NOLINT(sim-static-state): process-wide export-file counter; only
  // suffixes repeat-run filenames, never read by any sim-time computation
  static std::atomic<int> counter{0};
  const int n = counter.fetch_add(1);
  return n == 0 ? base : base + "." + std::to_string(n);
}

} // namespace quda::trace
