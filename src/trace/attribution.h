#pragma once
// Bottleneck attribution on top of the critical-path walk (critpath.h).
//
// The walk's typed segments tile [0, makespan] exactly; this layer folds
// them into the paper's cost vocabulary -- interior vs boundary compute,
// exposed communication, PCIe occupancy, stalls, solver-serial host time --
// and bundles the what-if projections (zero-latency network, free PCIe,
// infinite overlap) into one CritSummary that solver results and the
// BENCH_<name>.json files carry.

#include "trace/critpath.h"

#include <string>

namespace quda::trace {

// attribution categories for critical-path time
enum class PathCat : std::uint8_t {
  Interior,     // interior/local compute (dslash interior, BLAS)
  Boundary,     // boundary compute after the halo arrives
  ExposedComm,  // network flight, blocked waits, collectives, framing overhead
  Pcie,         // PCIe bus occupancy on the path
  StallSync,    // launch overheads, issue gaps, unresolved sync stalls
  SolverSerial, // host-serial solver logic between operations
  Recovery,     // checkpoint writes and rank-failure rollback/restore/respawn
};
inline constexpr int kNumPathCats = 7;

const char* path_cat_name(PathCat cat);
PathCat classify_segment(const PathSegment& seg);

struct CritSummary {
  bool valid = false; // model built, walk closed at t == 0, replays succeeded
  std::string error;
  double makespan_us = 0;          // end-to-end simulated time of the run
  double path_us = 0;              // critical-path length (== makespan when valid)
  double cat_us[kNumPathCats] = {};
  int critical_rank = -1;
  long cross_rank_jumps = 0;
  std::size_t segments = 0;
  double compute_bound_us = 0;       // per-stream kernel-time lower bound
  double replay_identity_us = 0;     // forward replay, unedited weights
  double whatif_zero_latency_us = 0; // net_scale = 0
  double whatif_free_pcie_us = 0;    // pcie_scale = 0
  double whatif_infinite_overlap_us = 0;

  double interior_us() const { return cat_us[static_cast<int>(PathCat::Interior)]; }
  double boundary_us() const { return cat_us[static_cast<int>(PathCat::Boundary)]; }
  double exposed_comm_us() const { return cat_us[static_cast<int>(PathCat::ExposedComm)]; }
  double pcie_us() const { return cat_us[static_cast<int>(PathCat::Pcie)]; }
  double stall_us() const { return cat_us[static_cast<int>(PathCat::StallSync)]; }
  double solver_us() const { return cat_us[static_cast<int>(PathCat::SolverSerial)]; }
  double recovery_us() const { return cat_us[static_cast<int>(PathCat::Recovery)]; }
};

// full analysis of one traced run: build the program model, walk the
// critical path, attribute it, and run the standard what-if projections
CritSummary analyze_solve(const TraceReport& report, const ModelConfig& config = {});

// human-readable attribution table (README shows a sample)
std::string attribution_table(const CritSummary& summary);

} // namespace quda::trace
