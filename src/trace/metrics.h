#pragma once
// Aggregated metrics derived from a TraceReport.
//
// compute_metrics folds the per-rank event streams into the headline
// numbers the benches merge into their BENCH_<name>.json: halo traffic,
// retry counts, per-kernel time histograms, and the paper's overlap
// efficiency (overlapped-comm-time / total-comm-time).  Overlap is
// measured geometrically from the recorded timeline: per rank, the union
// of "halo_comm" windows on the comm track intersected with the union of
// kernel spans across the device streams.

#include "trace/trace.h"

#include <map>
#include <string>

namespace quda::trace {

// running stats for one kernel name across all ranks/streams
struct KernelStat {
  long count = 0;
  double total_us = 0;
  double min_us = 0;
  double max_us = 0;

  void add(double dur_us) {
    if (count == 0) {
      min_us = max_us = dur_us;
    } else {
      if (dur_us < min_us) min_us = dur_us;
      if (dur_us > max_us) max_us = dur_us;
    }
    ++count;
    total_us += dur_us;
  }

  // guarded mean: an empty histogram (e.g. a zero-iteration solve) reports 0
  // rather than dividing by a zero count
  double mean_us() const { return count > 0 ? total_us / static_cast<double>(count) : 0.0; }
};

struct Metrics {
  long events = 0;          // total recorded events across ranks
  long messages = 0;        // isend count
  long halo_bytes = 0;      // modeled bytes across all isends
  long retries = 0;         // reliable-layer retransmissions
  long checksum_errors = 0; // corrupt frames detected on receive
  // delivered wire traffic split by link class (msg_flight events tagged by
  // the transport; all zero on pre-hierarchy traces with untagged flights)
  long shm_bytes = 0;     // same-node shared-memory deliveries
  long ib_bytes = 0;      // one-hop InfiniBand deliveries
  long xswitch_bytes = 0; // cross-leaf-switch fat-tree deliveries
  double comm_us = 0;       // sum over ranks of union of halo_comm windows
  double overlapped_us = 0; // portion of comm_us covered by kernel spans
  double overlap_efficiency = 0; // overlapped_us / comm_us (0 when no comm)
  double kernel_us = 0;          // total device kernel time
  std::map<std::string, KernelStat> kernels;
};

Metrics compute_metrics(const TraceReport& report);

} // namespace quda::trace
