#include "trace/trace.h"

#include <cstring>

namespace quda::trace {

namespace {

thread_local RankTracer* t_current = nullptr;

inline std::uint64_t fnv1a_step(std::uint64_t h, std::uint64_t v) {
  // fold 8 bytes, low byte first, through the standard FNV-1a round
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffull;
    h *= 0x100000001b3ull;
  }
  return h;
}

inline std::uint64_t fnv1a_str(std::uint64_t h, const char* s) {
  for (; *s != '\0'; ++s) {
    h ^= static_cast<unsigned char>(*s);
    h *= 0x100000001b3ull;
  }
  return h;
}

} // namespace

const char* cat_name(Cat cat) {
  switch (cat) {
    case Cat::Kernel: return "kernel";
    case Cat::Copy: return "copy";
    case Cat::Sync: return "sync";
    case Cat::Comm: return "comm";
    case Cat::Collective: return "collective";
    case Cat::Solver: return "solver";
    case Cat::Fault: return "fault";
    case Cat::Op: return "op";
  }
  return "unknown";
}

RankTracer* current() { return t_current; }

ScopedTracer::ScopedTracer(RankTracer* tracer) : prev_(t_current) { t_current = tracer; }
ScopedTracer::~ScopedTracer() { t_current = prev_; }

std::uint64_t sequence_digest(const std::vector<Event>& events) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const Event& e : events) {
    // anomaly instants are telemetry-layer observations, not pipeline
    // structure: excluded (like timestamps) so golden digests are
    // bit-identical with telemetry on or off
    if (e.instant && std::strcmp(e.name, "anomaly") == 0) continue;
    h = fnv1a_str(h, e.name);
    h = fnv1a_step(h, static_cast<std::uint64_t>(e.cat));
    h = fnv1a_step(h, e.instant ? 1u : 0u);
    h = fnv1a_step(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(e.track)));
    h = fnv1a_step(h, static_cast<std::uint64_t>(e.bytes));
    h = fnv1a_step(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(e.peer)));
    h = fnv1a_step(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(e.tag)));
    h = fnv1a_step(h, static_cast<std::uint64_t>(e.seq));
  }
  return h;
}

} // namespace quda::trace
