#include "trace/telemetry.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <utility>

namespace quda::telemetry {

namespace {

using Interval = std::pair<double, double>;

// merge possibly-overlapping intervals into a disjoint sorted union
std::vector<Interval> interval_union(std::vector<Interval> in) {
  std::sort(in.begin(), in.end());
  std::vector<Interval> out;
  for (const Interval& iv : in) {
    if (iv.second <= iv.first) continue;
    if (!out.empty() && iv.first <= out.back().second) {
      out.back().second = std::max(out.back().second, iv.second);
    } else {
      out.push_back(iv);
    }
  }
  return out;
}

double total_length(const std::vector<Interval>& u) {
  double t = 0;
  for (const Interval& iv : u) t += iv.second - iv.first;
  return t;
}

// length of the intersection of two disjoint sorted unions
double intersection_length(const std::vector<Interval>& a, const std::vector<Interval>& b) {
  double t = 0;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    const double lo = std::max(a[i].first, b[j].first);
    const double hi = std::min(a[i].second, b[j].second);
    if (hi > lo) t += hi - lo;
    if (a[i].second < b[j].second) {
      ++i;
    } else {
      ++j;
    }
  }
  return t;
}

// a \ b for disjoint sorted unions (the exposed-communication windows)
std::vector<Interval> interval_subtract(const std::vector<Interval>& a,
                                        const std::vector<Interval>& b) {
  std::vector<Interval> out;
  std::size_t j = 0;
  for (const Interval& iv : a) {
    double lo = iv.first;
    while (j < b.size() && b[j].second <= lo) ++j;
    std::size_t k = j;
    while (k < b.size() && b[k].first < iv.second && lo < iv.second) {
      if (b[k].first > lo) out.emplace_back(lo, b[k].first);
      lo = std::max(lo, b[k].second);
      ++k;
    }
    if (lo < iv.second) out.emplace_back(lo, iv.second);
  }
  return out;
}

// spread a disjoint union over fixed-width buckets as coverage fractions
void bucketize(const std::vector<Interval>& u, double bucket_us, std::vector<double>& frac) {
  if (bucket_us <= 0) return;
  const auto nb = static_cast<double>(frac.size());
  for (const Interval& iv : u) {
    double lo = iv.first / bucket_us;
    double hi = iv.second / bucket_us;
    lo = std::max(0.0, std::min(lo, nb));
    hi = std::max(0.0, std::min(hi, nb));
    for (auto b = static_cast<std::size_t>(lo); b < frac.size() && static_cast<double>(b) < hi;
         ++b) {
      const double blo = std::max(lo, static_cast<double>(b));
      const double bhi = std::min(hi, static_cast<double>(b) + 1.0);
      if (bhi > blo) frac[b] += bhi - blo;
    }
  }
}

bool is_recovery_span(const char* name) {
  return std::strcmp(name, "detect") == 0 || std::strcmp(name, "respawn") == 0 ||
         std::strcmp(name, "rollback") == 0 || std::strcmp(name, "restore") == 0 ||
         std::strcmp(name, "resume") == 0;
}

void json_escape_into(std::string& out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) >= 0x20) {
      out += c;
    }
  }
}

std::string jstr(const std::string& s) {
  std::string out = "\"";
  json_escape_into(out, s);
  out += '"';
  return out;
}

// %.17g, with non-finite values (a diverged residual) mapped to null so
// the JSONL stays parseable
std::string jnum(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

void put_flag_names(std::string& out, unsigned flags) {
  out += '[';
  bool first = true;
  const std::pair<unsigned, const char*> names[] = {
      {kReliableUpdate, "reliable_update"}, {kRollback, "rollback"},
      {kBreakdownRestart, "breakdown_restart"}, {kRestart, "restart"},
      {kCheckpoint, "checkpoint"}, {kRecovery, "recovery"},
  };
  for (const auto& [bit, name] : names) {
    if ((flags & bit) == 0) continue;
    if (!first) out += ", ";
    first = false;
    out += '"';
    out += name;
    out += '"';
  }
  out += ']';
}

void put_double_array(std::string& out, const std::vector<double>& v) {
  out += '[';
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i > 0) out += ", ";
    out += jnum(v[i]);
  }
  out += ']';
}

} // namespace

const char* anomaly_kind_name(AnomalyKind kind) {
  switch (kind) {
    case AnomalyKind::ResidualStagnation: return "residual_stagnation";
    case AnomalyKind::RetryStorm: return "retry_storm";
    case AnomalyKind::OverlapCollapse: return "overlap_collapse";
    case AnomalyKind::UtilizationImbalance: return "utilization_imbalance";
  }
  return "unknown";
}

void Registry::merge(const Registry& other) {
  for (const auto& [name, v] : other.counters_) counters_[name] += v;
  // a gauge merged across ranks keeps the maximum (rank order cannot matter)
  for (const auto& [name, v] : other.gauges_) {
    auto it = gauges_.find(name);
    if (it == gauges_.end()) {
      gauges_[name] = v;
    } else {
      it->second = std::max(it->second, v);
    }
  }
  for (const auto& [name, h] : other.histograms_) {
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      histograms_.emplace(name, h);
      continue;
    }
    Histogram& mine = it->second;
    if (mine.edges != h.edges) continue; // incompatible shapes never merge
    for (std::size_t i = 0; i < mine.counts.size() && i < h.counts.size(); ++i)
      mine.counts[i] += h.counts[i];
  }
  for (const auto& [name, s] : other.series_) {
    auto it = series_.find(name);
    if (it == series_.end()) {
      series_.emplace(name, s);
      continue;
    }
    TimeSeries& mine = it->second;
    if (mine.bucket_us != s.bucket_us) continue;
    if (mine.values.size() < s.values.size()) mine.values.resize(s.values.size(), 0.0);
    for (std::size_t i = 0; i < s.values.size(); ++i) mine.values[i] += s.values[i];
  }
}

// --- RankRecorder ------------------------------------------------------------

void RankRecorder::iteration(long iter, double r2, char regime) {
  if (!enabled_) return;
  IterationRecord rec;
  rec.iter = iter;
  rec.epoch = epoch_;
  rec.r2 = r2;
  rec.regime = regime;
  rec.flags = pending_flags_;
  pending_flags_ = 0;
  ledger_.push_back(rec);
  registry_.count("iterations");
  if (r2 > 0)
    registry_.histogram("iter_log10_r2", {-12.0, -9.0, -6.0, -3.0, 0.0, 3.0})
        .add(std::log10(r2));
  registry_.series("iterations_per_ms", 1000.0).add(now_us(), 1.0);
  run_monitors(ledger_.back());
}

void RankRecorder::true_residual(double r2) {
  if (!enabled_ || ledger_.empty()) return;
  ledger_.back().true_r2 = r2;
}

void RankRecorder::flag(unsigned flags) {
  if (!enabled_) return;
  if (ledger_.empty()) {
    pending_flags_ |= flags;
  } else {
    ledger_.back().flags |= flags;
  }
  if (flags & kReliableUpdate) registry_.count("reliable_updates");
  if (flags & kRollback) registry_.count("rollbacks");
  if (flags & kBreakdownRestart) registry_.count("breakdown_restarts");
  if (flags & kRestart) registry_.count("restarts");
  if (flags & kCheckpoint) registry_.count("checkpoints");
}

void RankRecorder::recovery(int epoch) {
  if (!enabled_) return;
  epoch_ = epoch;
  registry_.count("recovery_epochs");
  flag(kRecovery);
}

void RankRecorder::clear() {
  ledger_.clear();
  anomalies_.clear();
  registry_ = Registry{};
  pending_flags_ = 0;
  epoch_ = 0;
  r2_window_.clear();
  last_retries_ = retries_ != nullptr ? *retries_ : 0;
  last_event_idx_ = tracer_ != nullptr ? tracer_->events().size() : 0;
  overlap_baseline_sum_ = 0;
  overlap_baseline_n_ = 0;
}

void RankRecorder::run_monitors(const IterationRecord& rec) {
  // residual stagnation: a full window of boundaries with negligible
  // relative improvement (restarts legitimately raise r2 -- the window is
  // cleared after firing so one plateau reports once)
  if (rec.r2 >= 0) {
    r2_window_.push_back(rec.r2);
    if (static_cast<int>(r2_window_.size()) >= monitors_.stagnation_window) {
      const double first = r2_window_.front();
      const double last = r2_window_.back();
      const double rel = first > 0 ? 1.0 - last / first : 0.0;
      if (rel < monitors_.stagnation_epsilon) {
        emit(AnomalyKind::ResidualStagnation, rec.iter, rel, monitors_.stagnation_epsilon);
        r2_window_.clear();
      } else {
        r2_window_.erase(r2_window_.begin());
      }
    }
  }

  // retry storm: retransmission burst since the previous boundary
  if (retries_ != nullptr) {
    const long delta = *retries_ - last_retries_;
    last_retries_ = *retries_;
    if (delta > monitors_.retry_spike)
      emit(AnomalyKind::RetryStorm, rec.iter, static_cast<double>(delta),
           static_cast<double>(monitors_.retry_spike));
  }

  // overlap collapse: this boundary's comm/kernel overlap efficiency vs.
  // the mean of the run's own opening iterations
  if (tracer_ != nullptr && tracer_->enabled()) {
    const auto& events = tracer_->events();
    std::vector<Interval> comm, kern;
    for (std::size_t i = last_event_idx_; i < events.size(); ++i) {
      const trace::Event& e = events[i];
      if (e.instant) continue;
      if (e.cat == trace::Cat::Kernel && e.track >= 0) {
        kern.emplace_back(e.ts_us, e.end_us);
      } else if (e.track == trace::kTrackComm && std::strcmp(e.name, "halo_comm") == 0) {
        comm.emplace_back(e.ts_us, e.end_us);
      }
    }
    last_event_idx_ = events.size();
    const auto cu = interval_union(std::move(comm));
    const double comm_us = total_length(cu);
    if (comm_us > 0) {
      const double eff = intersection_length(cu, interval_union(std::move(kern))) / comm_us;
      if (overlap_baseline_n_ < monitors_.opening_iters) {
        overlap_baseline_sum_ += eff;
        ++overlap_baseline_n_;
      } else {
        const double baseline = overlap_baseline_sum_ / overlap_baseline_n_;
        if (baseline >= monitors_.min_baseline && eff < monitors_.overlap_collapse * baseline)
          emit(AnomalyKind::OverlapCollapse, rec.iter, eff, baseline);
      }
    }
  }
}

void RankRecorder::emit(AnomalyKind kind, long iter, double value, double reference) {
  Anomaly a;
  a.kind = kind;
  a.rank = rank_;
  a.iter = iter;
  a.epoch = epoch_;
  a.ts_us = now_us();
  a.value = value;
  a.reference = reference;
  anomalies_.push_back(a);
  registry_.count(std::string("anomaly.") + anomaly_kind_name(kind));
  // instants named "anomaly" are excluded from trace::sequence_digest, so
  // golden digests survive telemetry being switched on
  if (tracer_ != nullptr)
    tracer_->instant(trace::Cat::Solver, "anomaly", trace::kTrackSolver, now_us(),
                     static_cast<std::int64_t>(kind), -1, -1, iter);
}

// --- thread-local binding ----------------------------------------------------

namespace {
thread_local RankRecorder* t_current = nullptr; // NOLINT(sim-static-state): per-thread observational binding, never read by sim-time math
} // namespace

RankRecorder* current() { return t_current; }

ScopedRecorder::ScopedRecorder(RankRecorder* recorder) : prev_(t_current) {
  t_current = recorder;
}

ScopedRecorder::~ScopedRecorder() { t_current = prev_; }

// --- post-run analysis -------------------------------------------------------

TelemetryReport build_report(const std::vector<const RankRecorder*>& recorders,
                             const trace::TraceReport& trace, double makespan_us,
                             const AnalysisConfig& cfg) {
  TelemetryReport rep;
  rep.enabled = true;
  rep.ranks = static_cast<int>(recorders.size());
  rep.makespan_us = makespan_us;

  // merge in ascending rank order so the result is scheduler-independent
  for (const RankRecorder* r : recorders) {
    if (r == nullptr) continue;
    rep.registry.merge(r->registry());
    rep.anomalies.insert(rep.anomalies.end(), r->anomalies().begin(), r->anomalies().end());
  }
  if (!recorders.empty() && recorders.front() != nullptr) {
    rep.ledger = recorders.front()->ledger();
    for (const RankRecorder* r : recorders)
      if (r != nullptr && r->ledger().size() != rep.ledger.size()) rep.ledger_symmetric = false;
  }

  // utilization timelines from the recorded event stream (empty untraced)
  const int buckets = std::max(1, cfg.buckets);
  std::vector<double> busy_us(trace.per_rank.size(), 0.0);
  double flight_bytes[3] = {0, 0, 0};
  double flight_us[3] = {0, 0, 0};
  if (makespan_us > 0 && !trace.per_rank.empty()) {
    rep.bucket_us = makespan_us / buckets;
    rep.timelines.resize(trace.per_rank.size());
    for (std::size_t rank = 0; rank < trace.per_rank.size(); ++rank) {
      std::vector<Interval> kern, comm, pcie, stall, recov;
      for (const trace::Event& e : trace.per_rank[rank]) {
        if (e.instant) continue;
        if (e.cat == trace::Cat::Kernel && e.track >= 0) {
          kern.emplace_back(e.ts_us, e.end_us);
        } else if (e.track == trace::kTrackComm && std::strcmp(e.name, "msg_flight") == 0) {
          if (e.link >= 0 && e.link < 3) {
            flight_bytes[e.link] += static_cast<double>(e.bytes);
            flight_us[e.link] += e.end_us - e.ts_us;
          }
        } else if (e.track == trace::kTrackComm && std::strcmp(e.name, "halo_comm") == 0) {
          comm.emplace_back(e.ts_us, e.end_us);
        } else if (e.cat == trace::Cat::Copy) {
          pcie.emplace_back(e.ts_us, e.end_us);
        } else if (e.cat == trace::Cat::Fault) {
          if (is_recovery_span(e.name)) {
            recov.emplace_back(e.ts_us, e.end_us);
          } else {
            stall.emplace_back(e.ts_us, e.end_us); // checkpoint/storage waits
          }
        }
      }
      const auto kern_u = interval_union(std::move(kern));
      const auto comm_u = interval_union(std::move(comm));
      RankTimeline& tl = rep.timelines[rank];
      tl.busy.assign(buckets, 0.0);
      tl.exposed_comm.assign(buckets, 0.0);
      tl.pcie.assign(buckets, 0.0);
      tl.stall.assign(buckets, 0.0);
      tl.recovery.assign(buckets, 0.0);
      bucketize(kern_u, rep.bucket_us, tl.busy);
      bucketize(interval_subtract(comm_u, kern_u), rep.bucket_us, tl.exposed_comm);
      bucketize(interval_union(std::move(pcie)), rep.bucket_us, tl.pcie);
      bucketize(interval_union(std::move(stall)), rep.bucket_us, tl.stall);
      bucketize(interval_union(std::move(recov)), rep.bucket_us, tl.recovery);
      busy_us[rank] = total_length(kern_u);
    }
  }

  // load imbalance: max over ranks of total busy time / mean busy time
  double busy_sum = 0, busy_max = 0;
  std::size_t busy_argmax = 0;
  for (std::size_t rank = 0; rank < busy_us.size(); ++rank) {
    busy_sum += busy_us[rank];
    if (busy_us[rank] > busy_max) {
      busy_max = busy_us[rank];
      busy_argmax = rank;
    }
  }
  const double busy_mean = busy_us.empty() ? 0.0 : busy_sum / static_cast<double>(busy_us.size());
  rep.load_imbalance = busy_mean > 0 ? busy_max / busy_mean : 0.0;
  if (busy_mean > 0) {
    rep.registry.gauge("busy_frac.max", busy_max / makespan_us);
    rep.registry.gauge("busy_frac.mean", busy_mean / makespan_us);
    rep.registry.gauge("load_imbalance", rep.load_imbalance);
  }

  // achieved-vs-model-peak wire bandwidth (GB/s); bytes/us = 1e-3 GB/s
  const char* link_names[3] = {"shm", "ib", "xswitch"};
  const double peaks[3] = {cfg.shm_peak_gbs, cfg.ib_peak_gbs, cfg.ib_peak_gbs};
  for (int c = 0; c < 3; ++c) {
    if (flight_us[c] <= 0) continue;
    rep.registry.gauge(std::string("achieved_") + link_names[c] + "_gbs",
                       flight_bytes[c] / flight_us[c] * 1e-3);
    rep.registry.gauge(std::string("peak_") + link_names[c] + "_gbs", peaks[c]);
  }

  // post-hoc monitor: utilization imbalance beyond threshold
  if (rep.load_imbalance > cfg.monitors.imbalance_threshold) {
    Anomaly a;
    a.kind = AnomalyKind::UtilizationImbalance;
    a.rank = static_cast<int>(busy_argmax);
    a.iter = -1;
    a.ts_us = makespan_us;
    a.value = rep.load_imbalance;
    a.reference = cfg.monitors.imbalance_threshold;
    rep.anomalies.push_back(a);
    rep.registry.count(std::string("anomaly.") +
                       anomaly_kind_name(AnomalyKind::UtilizationImbalance));
  }

  return rep;
}

// --- JSONL export ------------------------------------------------------------

void write_jsonl(const std::string& path, const TelemetryReport& report,
                 const std::string& provenance_json) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return;
  std::string line;
  auto put = [&] {
    line += '\n';
    std::fwrite(line.data(), 1, line.size(), f);
    line.clear();
  };

  if (!provenance_json.empty()) {
    line = "{\"type\": \"provenance\", \"provenance\": " + provenance_json + "}";
    put();
  }
  line = "{\"type\": \"run\", \"ranks\": " + std::to_string(report.ranks) +
         ", \"makespan_us\": " + jnum(report.makespan_us) +
         ", \"bucket_us\": " + jnum(report.bucket_us) +
         ", \"iterations\": " + std::to_string(report.iterations()) +
         ", \"load_imbalance\": " + jnum(report.load_imbalance) +
         ", \"anomaly_count\": " + std::to_string(report.anomaly_count()) +
         ", \"ledger_symmetric\": " + (report.ledger_symmetric ? "true" : "false") + "}";
  put();

  for (const IterationRecord& rec : report.ledger) {
    line = "{\"type\": \"iteration\", \"iter\": " + std::to_string(rec.iter) +
           ", \"epoch\": " + std::to_string(rec.epoch) + ", \"r2\": " + jnum(rec.r2) +
           ", \"true_r2\": " + jnum(rec.true_r2) + ", \"regime\": \"" + rec.regime +
           "\", \"flags\": ";
    put_flag_names(line, rec.flags);
    line += '}';
    put();
  }
  for (const Anomaly& a : report.anomalies) {
    line = std::string("{\"type\": \"anomaly\", \"kind\": \"") + anomaly_kind_name(a.kind) +
           "\", \"rank\": " + std::to_string(a.rank) + ", \"iter\": " + std::to_string(a.iter) +
           ", \"epoch\": " + std::to_string(a.epoch) + ", \"ts_us\": " + jnum(a.ts_us) +
           ", \"value\": " + jnum(a.value) + ", \"reference\": " + jnum(a.reference) + "}";
    put();
  }
  for (const auto& [name, v] : report.registry.counters()) {
    line = "{\"type\": \"counter\", \"name\": " + jstr(name) +
           ", \"value\": " + std::to_string(v) + "}";
    put();
  }
  for (const auto& [name, v] : report.registry.gauges()) {
    line = "{\"type\": \"gauge\", \"name\": " + jstr(name) + ", \"value\": " + jnum(v) + "}";
    put();
  }
  for (const auto& [name, h] : report.registry.histograms()) {
    line = "{\"type\": \"histogram\", \"name\": " + jstr(name) + ", \"edges\": ";
    put_double_array(line, h.edges);
    line += ", \"counts\": [";
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      if (i > 0) line += ", ";
      line += std::to_string(h.counts[i]);
    }
    line += "]}";
    put();
  }
  for (const auto& [name, s] : report.registry.all_series()) {
    line = "{\"type\": \"series\", \"name\": " + jstr(name) +
           ", \"bucket_us\": " + jnum(s.bucket_us) + ", \"values\": ";
    put_double_array(line, s.values);
    line += '}';
    put();
  }
  for (std::size_t rank = 0; rank < report.timelines.size(); ++rank) {
    const RankTimeline& tl = report.timelines[rank];
    line = "{\"type\": \"timeline\", \"rank\": " + std::to_string(rank) + ", \"busy\": ";
    put_double_array(line, tl.busy);
    line += ", \"exposed_comm\": ";
    put_double_array(line, tl.exposed_comm);
    line += ", \"pcie\": ";
    put_double_array(line, tl.pcie);
    line += ", \"stall\": ";
    put_double_array(line, tl.stall);
    line += ", \"recovery\": ";
    put_double_array(line, tl.recovery);
    line += '}';
    put();
  }
  std::fclose(f);
}

std::string unique_export_path(const std::string& base) {
  // NOLINT(sim-static-state): process-wide export-file counter; only
  // suffixes repeat-run filenames, never read by any sim-time computation.
  // Separate from trace::unique_trace_path so telemetry exports never
  // perturb the trace/checkpoint suffix sequence existing tests pin.
  static std::atomic<int> counter{0};
  const int n = counter.fetch_add(1);
  return n == 0 ? base : base + "." + std::to_string(n);
}

} // namespace quda::telemetry
