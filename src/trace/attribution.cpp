#include "trace/attribution.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

namespace quda::trace {

const char* path_cat_name(PathCat cat) {
  switch (cat) {
    case PathCat::Interior: return "interior_compute";
    case PathCat::Boundary: return "boundary_compute";
    case PathCat::ExposedComm: return "exposed_comm";
    case PathCat::Pcie: return "pcie_transfer";
    case PathCat::StallSync: return "stall_sync";
    case PathCat::SolverSerial: return "solver_serial";
    case PathCat::Recovery: return "recovery";
  }
  return "unknown";
}

PathCat classify_segment(const PathSegment& seg) {
  switch (seg.kind) {
    case SegKind::KernelExec:
      return std::strstr(seg.label, "boundary") != nullptr ? PathCat::Boundary
                                                           : PathCat::Interior;
    case SegKind::CopyExec:
      return PathCat::Pcie;
    case SegKind::MsgFlight:
    case SegKind::CommTail:
    case SegKind::CollectiveTree:
      return PathCat::ExposedComm;
    case SegKind::LaunchGap:
    case SegKind::SyncStall:
      return PathCat::StallSync;
    case SegKind::HostGap:
      switch (seg.gap) {
        case GapKind::CommOverhead: return PathCat::ExposedComm;
        case GapKind::DeviceIssue: return PathCat::StallSync;
        case GapKind::Solver: return PathCat::SolverSerial;
        case GapKind::Recovery: return PathCat::Recovery;
      }
  }
  return PathCat::SolverSerial;
}

CritSummary analyze_solve(const TraceReport& report, const ModelConfig& config) {
  CritSummary s;
  const ProgramModel model = build_model(report, config);
  if (!model.ok()) {
    s.error = model.error;
    return s;
  }

  const CriticalPath cp = critical_path(model);
  s.makespan_us = cp.makespan_us;
  s.path_us = cp.path_us;
  s.critical_rank = cp.critical_rank;
  s.cross_rank_jumps = cp.cross_rank_jumps;
  s.segments = cp.segments.size();
  if (!cp.ok) {
    s.error = cp.error;
    return s;
  }
  for (const PathSegment& seg : cp.segments)
    s.cat_us[static_cast<int>(classify_segment(seg))] += seg.length_us();

  s.compute_bound_us = compute_bound_us(model);

  const ReplayResult identity = replay(model);
  const ReplayResult zero_net = replay(model, WhatIf{.net_scale = 0.0});
  const ReplayResult free_pcie = replay(model, WhatIf{.pcie_scale = 0.0});
  WhatIf overlap;
  overlap.infinite_overlap = true;
  const ReplayResult inf_overlap = replay(model, overlap);
  if (!identity.ok || !zero_net.ok || !free_pcie.ok || !inf_overlap.ok) {
    s.error = !identity.ok ? identity.error
              : !zero_net.ok ? zero_net.error
              : !free_pcie.ok ? free_pcie.error
                              : inf_overlap.error;
    return s;
  }
  s.replay_identity_us = identity.makespan_us;
  // a reduced-weight projection is <= the measurement in exact arithmetic;
  // clamp away the forward replay's accumulated rounding so the reported
  // numbers keep that invariant
  s.whatif_zero_latency_us = std::min(zero_net.makespan_us, s.makespan_us);
  s.whatif_free_pcie_us = std::min(free_pcie.makespan_us, s.makespan_us);
  s.whatif_infinite_overlap_us = std::min(inf_overlap.makespan_us, s.makespan_us);
  s.valid = true;
  return s;
}

std::string attribution_table(const CritSummary& s) {
  char line[160];
  std::string out;
  if (!s.valid) {
    out = "critical-path analysis unavailable";
    if (!s.error.empty()) out += ": " + s.error;
    out += "\n";
    return out;
  }
  std::snprintf(line, sizeof line, "critical path: %.1f us over %zu segments (rank %d, %ld rank hops)\n",
                s.path_us, s.segments, s.critical_rank, s.cross_rank_jumps);
  out += line;
  out += "  category            time_us     share\n";
  for (int c = 0; c < kNumPathCats; ++c) {
    const double share = s.path_us > 0 ? 100.0 * s.cat_us[c] / s.path_us : 0.0;
    std::snprintf(line, sizeof line, "  %-18s %10.1f   %6.2f%%\n",
                  path_cat_name(static_cast<PathCat>(c)), s.cat_us[c], share);
    out += line;
  }
  std::snprintf(line, sizeof line,
                "  what-if: zero-latency net %.1f us | free PCIe %.1f us | infinite overlap %.1f us\n",
                s.whatif_zero_latency_us, s.whatif_free_pcie_us, s.whatif_infinite_overlap_us);
  out += line;
  std::snprintf(line, sizeof line, "  compute lower bound %.1f us | replay identity %.1f us\n",
                s.compute_bound_us, s.replay_identity_us);
  out += line;
  return out;
}

} // namespace quda::trace
