#pragma once
// Chrome/Perfetto trace_event exporter for the per-rank event streams.
//
// Output is the JSON Object Format of the Trace Event spec (loadable by
// ui.perfetto.dev and chrome://tracing): each simulated rank becomes one
// process (pid = rank), each device stream one thread within it, plus named
// host / comm / solver tracks.  Spans are "X" complete events with ts/dur
// in microseconds of *simulated* time; instants are "i" events.  Metadata
// ("M") events name every process and track.
//
// The writer emits exactly one event object per line, so structural tests
// and the tools/trace_lint.py gate can cross-check files without a full
// JSON parser.

#include "trace/trace.h"

#include <string>

namespace quda::trace {

// serialize the whole report (pure function of the report: no clocks, no
// environment)
std::string chrome_trace_json(const TraceReport& report);

// write chrome_trace_json(report) to `path`; returns false on I/O failure
bool write_chrome_trace(const std::string& path, const TraceReport& report);

// Per-process unique export path: the first call returns `base` unchanged,
// later calls suffix an increasing counter (base.1, base.2, ...) so the
// multiple cluster runs of one bench binary don't overwrite each other.
std::string unique_trace_path(const std::string& base);

} // namespace quda::trace
