#pragma once
// Solver flight recorder: per-iteration telemetry layered on the tracer.
//
// The telemetry layer has the same contract tracing has (trace.h): it is
// purely observational.  A recorder hook never reads-and-advances a
// SimClock -- it only samples the bound clock pointer -- so a
// telemetry-enabled run is bit-identical in solution, makespan and trace
// digests to a disabled one, at any QUDA_SIM_THREADS / QUDA_SIM_SCHED
// (tests/test_telemetry.cpp pins this).
//
// Four pieces:
//  * a typed metric Registry per rank (counters, gauges, fixed-bucket
//    histograms, simulated-time series in deterministic fixed-width
//    buckets), merged across ranks in rank order;
//  * a per-iteration convergence Ledger the Krylov solvers (cg.h,
//    bicgstab.h, mixed_precision.h) and the modeled solver feed --
//    iteration number, iterated/true residual, precision regime, and
//    event flags (reliable updates, rollbacks, restarts, checkpoints,
//    recovery epochs) -- attached to InvertResult/ModeledSolverResult and
//    exported as JSONL via QUDA_SIM_TELEMETRY=<path>;
//  * per-rank utilization timelines (busy / exposed-comm / PCIe / stall /
//    recovery fraction per time bucket) plus achieved-vs-model-peak
//    bandwidth gauges, derived post-run from the same event stream the
//    critical-path model consumes, and a load-imbalance metric
//    (max/mean busy fraction);
//  * online anomaly monitors evaluated at iteration boundaries (residual
//    stagnation, retry-rate spikes, overlap-efficiency collapse vs. the
//    run's own opening iterations, post-hoc utilization imbalance) that
//    emit typed Anomaly records into the ledger and -- when tracing is on
//    -- into the trace as instants named "anomaly" (excluded from
//    trace::sequence_digest, like timestamps, so goldens survive).
//
// Bucket determinism rule: every time-resolved aggregate uses fixed-width
// buckets whose width is a pure function of the configuration (explicit
// bucket_us for series; makespan/buckets for timelines) -- never of
// wall-clock or arrival order -- so exports are bit-stable across
// schedulers and thread budgets.

#include "trace/trace.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace quda::telemetry {

// --- typed metric registry ---------------------------------------------------

// fixed-bucket histogram: counts[i] is the number of samples with
// v < edges[i] (first match); counts.back() catches everything >= edges
struct Histogram {
  std::vector<double> edges; // ascending upper edges
  std::vector<long> counts;  // size edges.size() + 1

  explicit Histogram(std::vector<double> e = {})
      : edges(std::move(e)), counts(edges.size() + 1, 0) {}

  void add(double v) {
    std::size_t i = 0;
    while (i < edges.size() && v >= edges[i]) ++i;
    ++counts[i];
  }
  long total() const {
    long t = 0;
    for (long c : counts) t += c;
    return t;
  }
};

// simulated-time series: samples summed into deterministic fixed-width
// buckets of the simulated clock (bucket index = floor(ts / bucket_us))
struct TimeSeries {
  double bucket_us = 1000.0;
  std::vector<double> values; // sum of samples per bucket

  void add(double ts_us, double v) {
    if (bucket_us <= 0) return;
    const auto b = static_cast<std::size_t>(ts_us > 0 ? ts_us / bucket_us : 0.0);
    if (values.size() <= b) values.resize(b + 1, 0.0);
    values[b] += v;
  }
};

// Per-rank typed metric store.  std::map keeps iteration (and therefore
// merge and export) order deterministic.
class Registry {
public:
  void count(const std::string& name, long delta = 1) { counters_[name] += delta; }
  void gauge(const std::string& name, double value) { gauges_[name] = value; }
  Histogram& histogram(const std::string& name, std::vector<double> edges) {
    auto it = histograms_.find(name);
    if (it == histograms_.end())
      it = histograms_.emplace(name, Histogram(std::move(edges))).first;
    return it->second;
  }
  TimeSeries& series(const std::string& name, double bucket_us) {
    auto it = series_.find(name);
    if (it == series_.end()) {
      it = series_.emplace(name, TimeSeries{}).first;
      it->second.bucket_us = bucket_us;
    }
    return it->second;
  }

  // fold another rank's registry into this one; callers iterate ranks in
  // ascending rank order so the merged values are scheduler-independent
  void merge(const Registry& other);

  const std::map<std::string, long>& counters() const { return counters_; }
  const std::map<std::string, double>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const { return histograms_; }
  const std::map<std::string, TimeSeries>& all_series() const { return series_; }
  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty() && series_.empty();
  }

private:
  std::map<std::string, long> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Histogram> histograms_;
  std::map<std::string, TimeSeries> series_;
};

// --- convergence ledger ------------------------------------------------------

// event flags on one ledger entry (bitmask)
enum LedgerFlag : unsigned {
  kReliableUpdate = 1u << 0,   // reliable residual replacement accepted
  kRollback = 1u << 1,         // SDC rollback to the shadow iterate
  kBreakdownRestart = 1u << 2, // Krylov breakdown restart
  kRestart = 1u << 3,          // r0 re-seed / defect-correction restart
  kCheckpoint = 1u << 4,       // checkpoint committed at this boundary
  kRecovery = 1u << 5,         // a rank-failure recovery epoch completed
};

struct IterationRecord {
  long iter = 0;
  int epoch = 0;         // recovery epochs survived so far
  double r2 = -1.0;      // iterated residual norm^2 (-1 = unavailable)
  double true_r2 = -1.0; // true residual norm^2 (-1 = unmeasured here)
  char regime = 'd';     // precision regime: 'd' / 's' / 'h'
  unsigned flags = 0;    // LedgerFlag bitmask
};

using Ledger = std::vector<IterationRecord>;

// --- anomaly monitors --------------------------------------------------------

enum class AnomalyKind : int {
  ResidualStagnation = 0,   // window of iterations without relative progress
  RetryStorm = 1,           // retransmission burst between two boundaries
  OverlapCollapse = 2,      // overlap efficiency fell vs. opening iterations
  UtilizationImbalance = 3, // max/mean busy fraction beyond threshold
};

const char* anomaly_kind_name(AnomalyKind kind);

struct Anomaly {
  AnomalyKind kind = AnomalyKind::ResidualStagnation;
  int rank = 0;
  long iter = 0;  // iteration boundary that fired (-1: post-hoc)
  int epoch = 0;
  double ts_us = 0;
  double value = 0;     // the observed statistic
  double reference = 0; // the threshold / baseline it was compared against
};

// Detector thresholds.  All monitors are deterministic functions of the
// recorded stream; defaults are loose enough to stay silent on the clean
// fig5 baseline (an acceptance criterion).
struct MonitorConfig {
  int stagnation_window = 25;       // boundaries per stagnation check
  double stagnation_epsilon = 0.01; // min relative r2 improvement per window
  long retry_spike = 8;             // retries between boundaries that fire
  int opening_iters = 5;            // boundaries forming the overlap baseline
  double overlap_collapse = 0.5;    // fire when eff < collapse * baseline
  double min_baseline = 0.05;       // ignore runs with negligible overlap
  double imbalance_threshold = 1.5; // max/mean busy fraction (post-hoc)
};

// collection/export switches; lives in ClusterSpec and defaults from the
// QUDA_SIM_TELEMETRY environment variable (value = JSONL export path)
struct TelemetryOptions {
  bool enabled = false; // record the ledger/registry and run the monitors
  std::string path;     // non-empty: write JSONL here after each run
  MonitorConfig monitors{};
};

// --- per-rank recorder -------------------------------------------------------

// Ledger/metric sink of one simulated rank, owned by its RankContext and
// written only from that rank's thread.  Like RankTracer it is bound to
// the rank's clock (read-only) and, when available, the rank's tracer and
// retry counter -- the recorder never mutates any of them.
class RankRecorder {
public:
  void bind(int rank, const double* now_us, trace::RankTracer* tracer,
            const long* retries) {
    rank_ = rank;
    clock_ = now_us;
    tracer_ = tracer;
    retries_ = retries;
  }
  void set_enabled(bool on) { enabled_ = on; }
  void set_enabled(bool on, const MonitorConfig& monitors) {
    enabled_ = on;
    monitors_ = monitors;
  }
  bool enabled() const { return enabled_; }
  int rank() const { return rank_; }
  double now_us() const { return clock_ != nullptr ? *clock_ : 0.0; }

  // --- solver hooks (no-ops while disabled) ---
  // Iteration boundary: append a ledger record and run the online
  // monitors.  r2 < 0 means the iterated residual is unavailable (the
  // modeled solver runs no numerics).
  void iteration(long iter, double r2, char regime);
  // attach a measured true residual to the most recent boundary
  void true_residual(double r2);
  // set LedgerFlag bits on the most recent boundary (or stash them for the
  // next one when no iteration has been recorded yet -- e.g. a breakdown
  // restart before the first ++k)
  void flag(unsigned flags);
  // a recovery rendezvous completed; subsequent records carry this epoch
  void recovery(int epoch);

  Registry& registry() { return registry_; }
  const Registry& registry() const { return registry_; }
  const Ledger& ledger() const { return ledger_; }
  const std::vector<Anomaly>& anomalies() const { return anomalies_; }
  void clear();

private:
  void run_monitors(const IterationRecord& rec);
  void emit(AnomalyKind kind, long iter, double value, double reference);

  int rank_ = 0;
  const double* clock_ = nullptr;
  trace::RankTracer* tracer_ = nullptr;
  const long* retries_ = nullptr;
  bool enabled_ = false;
  MonitorConfig monitors_{};

  Ledger ledger_;
  std::vector<Anomaly> anomalies_;
  Registry registry_;
  unsigned pending_flags_ = 0;
  int epoch_ = 0;

  // monitor state
  std::vector<double> r2_window_;    // recent iterated residuals (r2 >= 0)
  long last_retries_ = 0;            // retry counter at the last boundary
  std::size_t last_event_idx_ = 0;   // tracer events consumed so far
  double overlap_baseline_sum_ = 0;  // opening-iteration overlap efficiency
  int overlap_baseline_n_ = 0;
};

// thread-local recorder of the simulated rank running on this OS thread;
// null off a rank thread.  The returned recorder may be disabled -- hooks
// on a disabled recorder are no-ops -- so schedulers bind unconditionally.
RankRecorder* current();

// RAII binding of current() for the lifetime of a rank thread's workload
class ScopedRecorder {
public:
  explicit ScopedRecorder(RankRecorder* recorder);
  ~ScopedRecorder();
  ScopedRecorder(const ScopedRecorder&) = delete;
  ScopedRecorder& operator=(const ScopedRecorder&) = delete;

private:
  RankRecorder* prev_;
};

// --- post-run analysis -------------------------------------------------------

struct AnalysisConfig {
  int buckets = 64;          // utilization buckets over [0, makespan]
  double shm_peak_gbs = 4.5; // model peaks for achieved-vs-peak gauges
  double ib_peak_gbs = 3.2;
  MonitorConfig monitors{};
};

// per-rank utilization timeline: activity fraction of each time bucket
struct RankTimeline {
  std::vector<double> busy;         // device kernel execution
  std::vector<double> exposed_comm; // halo windows not covered by kernels
  std::vector<double> pcie;         // host<->device copies
  std::vector<double> stall;        // blocked on storage (checkpoint I/O)
  std::vector<double> recovery;     // rank-failure detection/rollback/respawn
};

// everything one run recorded, merged across ranks in rank order
struct TelemetryReport {
  bool enabled = false;
  int ranks = 0;
  double makespan_us = 0;
  double bucket_us = 0;            // timeline bucket width (makespan/buckets)
  Ledger ledger;                   // rank 0's ledger (SPMD-symmetric)
  bool ledger_symmetric = true;    // every rank recorded the same #boundaries
  std::vector<Anomaly> anomalies;  // merged in rank order, post-hoc last
  Registry registry;               // merged in rank order
  std::vector<RankTimeline> timelines; // indexed by rank (empty: no tracing)
  double load_imbalance = 0;       // max/mean busy fraction (0: no data)

  long anomaly_count() const { return static_cast<long>(anomalies.size()); }
  long iterations() const { return static_cast<long>(ledger.size()); }
};

// Fold the per-rank recorders + the recorded trace into one report.  Pure
// post-run analysis: runs after the scheduler tore the ranks down, so it
// can never perturb simulated time.
TelemetryReport build_report(const std::vector<const RankRecorder*>& recorders,
                             const trace::TraceReport& trace, double makespan_us,
                             const AnalysisConfig& cfg);

// Write the report as JSON Lines: one provenance object (when
// provenance_json is non-empty), one run header, then iteration / anomaly /
// counter / gauge / histogram / series / timeline records, one per line.
void write_jsonl(const std::string& path, const TelemetryReport& report,
                 const std::string& provenance_json);

// Non-clobbering export path: appends .N when base already exists.  Own
// counter, separate from trace::unique_trace_path, so telemetry exports
// never perturb the trace/checkpoint suffix sequence existing tests pin.
std::string unique_export_path(const std::string& base);

} // namespace quda::telemetry
