#pragma once
// Structured per-rank tracing of the simulated cluster.
//
// Every simulated rank records typed events -- kernel launches per stream,
// sync/async copies, isend/irecv/wait with sequence numbers and modeled
// byte counts, retries, allreduce rendezvous, solver iterations and
// reliable updates -- against *simulated* time.  Recording is purely
// observational: an emit call never reads or advances a SimClock, so a
// traced run is bit-identical in simulated time to an untraced one (the
// invariant tests/test_exec.cpp pins).
//
// Ownership and threading: each RankContext owns one RankTracer, written
// only from that rank's thread, so no synchronization is needed on the hot
// path.  Layers that cannot see the RankContext (the device model, the
// solvers) emit through the thread-local current() pointer, which
// VirtualCluster::run binds for the duration of each rank thread -- and
// only when tracing is enabled, so the disabled cost is one null check.
//
// Two sinks consume the recorded events after a run:
//  * trace_export.h turns them into a Chrome/Perfetto trace_event JSON
//    file (one process per rank, one track per stream plus host/comm/solver
//    tracks), enabled by QUDA_SIM_TRACE=<path>;
//  * metrics.h aggregates them into a MetricsRegistry (halo bytes, retries,
//    overlap efficiency, per-kernel histograms) that the benches merge into
//    their BENCH_<name>.json.

#include <cstdint>
#include <string>
#include <vector>

namespace quda::trace {

// event category, mirroring the subsystem that emitted it
enum class Cat : std::uint8_t {
  Kernel,     // device kernel execution on a stream
  Copy,       // PCI-E transfer (sync or async)
  Sync,       // host blocking on device work
  Comm,       // point-to-point messaging (transport + reliable layer)
  Collective, // allreduce / barrier rendezvous
  Solver,     // Krylov iterations, reliable updates, rollbacks
  Fault,      // injected faults and recovery actions
  Op,         // composite host-side operations (halo_dslash, setup, solve)
};

const char* cat_name(Cat cat);

// Track ids within one rank's timeline.  Non-negative tracks are device
// streams; the named negative tracks carry host-side activity.
inline constexpr int kTrackHost = -1;   // host thread: MPI calls, sync copies
inline constexpr int kTrackComm = -2;   // in-flight messages, halo comm windows
inline constexpr int kTrackSolver = -3; // solver-level phases

struct Event {
  const char* name = "";  // static-lifetime label
  Cat cat = Cat::Op;
  bool instant = false;   // true: point event (dur_us ignored, kept 0)
  int track = kTrackHost;
  double ts_us = 0;       // simulated begin time
  double dur_us = 0;      // simulated duration (spans only, >= 0)
  double end_us = 0;      // exact recorded end time (spans; == ts_us for
                          // instants).  Kept alongside dur_us because
                          // ts + (end - ts) is not bitwise end, and the
                          // critical-path walk (critpath.h) needs the exact
                          // doubles the gating max() computations produced.
  std::int64_t bytes = 0; // modeled payload bytes (0 when not applicable)
  int peer = -1;          // peer rank for comm events
  int tag = -1;           // message tag for comm events
  std::int64_t seq = -1;  // message sequence / iteration number

  // Happens-before edge of this event, when it has one (critpath.h walks
  // these).  dep_rank >= 0 names the rank whose activity gated this event
  // (mpi_wait: the sender; allreduce: the rendezvous-gating rank); -1 with
  // dep_ts_us >= 0 means a local dependency (copy/kernel issue anchor,
  // stream_wait source value).  edge_us is the modeled weight of the edge
  // (network flight, tree cost, transfer or kernel duration).  Excluded
  // from sequence_digest: like timestamps, these are timing-derived.
  int dep_rank = -1;
  double dep_ts_us = -1;
  double edge_us = 0;

  // Link class the payload crossed (msg_flight events): the numeric value
  // of sim::LinkClass (0 = shm, 1 = ib, 2 = cross-switch), -1 when not a
  // wire event.  Excluded from sequence_digest: it is derived from cluster
  // topology, not pipeline structure, so goldens survive topology sweeps.
  int link = -1;
};

// Per-rank event sink.  Bound to the rank's clock so layers without clock
// access (the solvers) can timestamp via now_us(); reading the clock for a
// timestamp never mutates it.
class RankTracer {
public:
  void bind(int rank, const double* now_us) {
    rank_ = rank;
    clock_ = now_us;
  }
  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }
  int rank() const { return rank_; }
  double now_us() const { return clock_ != nullptr ? *clock_ : 0.0; }

  void span(Cat cat, const char* name, int track, double begin_us, double end_us,
            std::int64_t bytes = 0, int peer = -1, int tag = -1, std::int64_t seq = -1) {
    if (!enabled_) return;
    Event e;
    e.name = name;
    e.cat = cat;
    e.instant = false;
    e.track = track;
    e.ts_us = begin_us;
    e.dur_us = end_us > begin_us ? end_us - begin_us : 0.0;
    e.end_us = end_us > begin_us ? end_us : begin_us;
    e.bytes = bytes;
    e.peer = peer;
    e.tag = tag;
    e.seq = seq;
    events_.push_back(e);
  }

  void instant(Cat cat, const char* name, int track, double ts_us, std::int64_t bytes = 0,
               int peer = -1, int tag = -1, std::int64_t seq = -1) {
    if (!enabled_) return;
    Event e;
    e.name = name;
    e.cat = cat;
    e.instant = true;
    e.track = track;
    e.ts_us = ts_us;
    e.end_us = ts_us;
    e.bytes = bytes;
    e.peer = peer;
    e.tag = tag;
    e.seq = seq;
    events_.push_back(e);
  }

  // attach a happens-before edge to the most recently recorded event (the
  // emitting layer knows the gating value right where it records the span)
  void dep(int dep_rank, double dep_ts_us, double edge_us) {
    if (!enabled_ || events_.empty()) return;
    Event& e = events_.back();
    e.dep_rank = dep_rank;
    e.dep_ts_us = dep_ts_us;
    e.edge_us = edge_us;
  }

  // tag the most recently recorded event with the link class its payload
  // crossed (msg_flight spans; the transport knows the class at emit time)
  void link(int link_class) {
    if (!enabled_ || events_.empty()) return;
    events_.back().link = link_class;
  }

  const std::vector<Event>& events() const { return events_; }
  std::vector<Event> take_events() { return std::move(events_); }
  void clear() { events_.clear(); }

private:
  int rank_ = 0;
  const double* clock_ = nullptr;
  bool enabled_ = false;
  std::vector<Event> events_;
};

// thread-local tracer of the simulated rank running on this OS thread;
// null when tracing is disabled (or off a rank thread entirely)
RankTracer* current();

// RAII binding of current() for the lifetime of a rank thread's workload
class ScopedTracer {
public:
  explicit ScopedTracer(RankTracer* tracer);
  ~ScopedTracer();
  ScopedTracer(const ScopedTracer&) = delete;
  ScopedTracer& operator=(const ScopedTracer&) = delete;

private:
  RankTracer* prev_;
};

// collection/export switches; lives in ClusterSpec and defaults from the
// QUDA_SIM_TRACE environment variable (value = export path)
struct TraceOptions {
  bool enabled = false; // record events (metrics become available)
  std::string path;     // non-empty: write Chrome JSON here after each run
};

// everything one VirtualCluster::run recorded, indexed by rank
struct TraceReport {
  std::vector<std::vector<Event>> per_rank;
  bool enabled = false;
  // node/switch topology of the run that produced the trace, so exporters
  // and lint can classify ranks into nodes and leaf switches
  int gpus_per_node = 1;
  int nodes_per_switch = 0; // 0 = flat single-switch network
  // one-line JSON provenance stamp (core/provenance.h), set by the run
  // that recorded the events; empty = omit from exports
  std::string provenance_json;

  std::size_t total_events() const {
    std::size_t n = 0;
    for (const auto& r : per_rank) n += r.size();
    return n;
  }
};

// Normalized digest of one rank's event *sequence*: FNV-1a over the typed
// fields that define pipeline structure (name, category, kind, track,
// bytes, peer, tag, seq) -- deliberately excluding timestamps, so golden
// digests pin the event ordering without pinning the calibrated time model.
std::uint64_t sequence_digest(const std::vector<Event>& events);

} // namespace quda::trace
