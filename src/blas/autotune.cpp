#include "blas/autotune.h"

#include <sstream>

namespace quda::blas {

double AutoTuner::duration_at(const gpusim::KernelCost& cost, int block_size,
                              bool double_precision) const {
  return gpusim::kernel_duration_us(cost, {block_size, 0}, device_, double_precision);
}

const TuneParam& AutoTuner::tune(const std::string& key, const gpusim::KernelCost& cost,
                                 bool double_precision) {
  auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;

  TuneParam best;
  best.time_us = -1;
  for (int block = 64; block <= 512; block += 64) {
    const double t = duration_at(cost, block, double_precision);
    if (best.time_us < 0 || t < best.time_us) {
      best.time_us = t;
      best.launch.block_size = block;
    }
  }
  return cache_.emplace(key, best).first->second;
}

std::string AutoTuner::export_header() const {
  std::ostringstream os;
  os << "// auto-generated kernel launch parameters for " << device_.name << "\n";
  os << "// (regenerate by re-running the tuning sweep)\n";
  for (const auto& [key, param] : cache_) {
    std::string macro = key;
    for (char& c : macro) {
      if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    }
    os << "#define BLOCKDIM_" << macro << " " << param.launch.block_size << "\n";
  }
  return os.str();
}

} // namespace quda::blas
