#pragma once
// Auto-tuning of kernel launch parameters (Section V-E of the paper).
//
// QUDA benchmarks every BLAS kernel (and each of its half/single/double
// variants) over all admissible thread-block/grid configurations and writes
// the optimal values to a header file that is compiled into the production
// library.  We reproduce that workflow against the simulated device: sweep
// the launch space, cache the winner per kernel key, and export the cache
// in a header-like format.

#include "gpusim/kernel_model.h"

#include <map>
#include <string>

namespace quda::blas {

struct TuneParam {
  gpusim::LaunchConfig launch{};
  double time_us = 0; // modeled kernel duration at the optimum
};

class AutoTuner {
public:
  explicit AutoTuner(const gpusim::DeviceSpec& device) : device_(device) {}

  // sweep thread-block sizes (multiples of 64, the hardware constraint of
  // Section III) for this kernel's cost profile; cached per key
  const TuneParam& tune(const std::string& key, const gpusim::KernelCost& cost,
                        bool double_precision = false);

  // duration the kernel would have at a given (possibly untuned) block size
  double duration_at(const gpusim::KernelCost& cost, int block_size,
                     bool double_precision = false) const;

  std::size_t cache_size() const { return cache_.size(); }

  // the "write out to a header file for inclusion in production code" step
  std::string export_header() const;

private:
  gpusim::DeviceSpec device_;
  std::map<std::string, TuneParam> cache_;
};

} // namespace quda::blas
