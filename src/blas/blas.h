#pragma once
// Vector-vector (BLAS1-like) kernels on device spinor fields, mirroring
// QUDA's fused linear-algebra kernels (Section V-E).  Where a solver needs
// several elementary operations on the same vectors they are fused into one
// kernel (one load/store sweep) -- e.g. the BiCGstab search-direction update
// p = r + beta*(p - omega*v) is a single kernel, as is the solution update
// x += alpha*p + omega*s.  The auto-tuner in blas/autotune.h picks launch
// geometry for these kernels in the simulated device model.
//
// Reductions return *local* sums; global sums across ranks are the
// responsibility of the caller (the solvers route them through their
// operator's global_sum hook, which the parallel operator implements with
// QMP/MPI reductions -- the only solver-level change multi-GPU required,
// Section VI-E).

#include "lattice/spinor_field.h"
#include "su3/gamma.h"

#include <cstdint>

namespace quda::blas {

template <typename P> void copy(SpinorField<P>& dst, const SpinorField<P>& src) {
  for (std::int64_t i = 0; i < src.sites(); ++i) dst.store(i, src.load(i));
}

template <typename P> double norm2(const SpinorField<P>& x) {
  double n = 0;
  for (std::int64_t i = 0; i < x.sites(); ++i) {
    const auto s = x.load(i);
    n += static_cast<double>(quda::norm2(s));
  }
  return n;
}

template <typename P> complexd cdot(const SpinorField<P>& a, const SpinorField<P>& b) {
  complexd d{};
  for (std::int64_t i = 0; i < a.sites(); ++i) {
    const auto da = dot(a.load(i), b.load(i));
    d += complexd(static_cast<double>(da.re), static_cast<double>(da.im));
  }
  return d;
}

// y += a * x
template <typename P>
void axpy(double a, const SpinorField<P>& x, SpinorField<P>& y) {
  using real_t = typename P::real_t;
  const real_t ar = static_cast<real_t>(a);
  for (std::int64_t i = 0; i < x.sites(); ++i) {
    auto yi = y.load(i);
    yi += x.load(i) * ar;
    y.store(i, yi);
  }
}

// y = x + a * y
template <typename P>
void xpay(const SpinorField<P>& x, double a, SpinorField<P>& y) {
  using real_t = typename P::real_t;
  const real_t ar = static_cast<real_t>(a);
  for (std::int64_t i = 0; i < x.sites(); ++i) {
    auto yi = y.load(i);
    yi *= ar;
    yi += x.load(i);
    y.store(i, yi);
  }
}

// y = a * x + b * y
template <typename P>
void axpby(double a, const SpinorField<P>& x, double b, SpinorField<P>& y) {
  using real_t = typename P::real_t;
  for (std::int64_t i = 0; i < x.sites(); ++i) {
    auto yi = y.load(i);
    yi *= static_cast<real_t>(b);
    yi += x.load(i) * static_cast<real_t>(a);
    y.store(i, yi);
  }
}

// y += a * x, complex a
template <typename P>
void caxpy(const complexd& a, const SpinorField<P>& x, SpinorField<P>& y) {
  using real_t = typename P::real_t;
  const Complex<real_t> ar(static_cast<real_t>(a.re), static_cast<real_t>(a.im));
  for (std::int64_t i = 0; i < x.sites(); ++i) {
    auto yi = y.load(i);
    auto xi = x.load(i);
    xi *= ar;
    yi += xi;
    y.store(i, yi);
  }
}

// fused: y += a*x, then return ||y||^2 (QUDA's axpyNorm)
template <typename P>
double axpy_norm(double a, const SpinorField<P>& x, SpinorField<P>& y) {
  using real_t = typename P::real_t;
  const real_t ar = static_cast<real_t>(a);
  double n = 0;
  for (std::int64_t i = 0; i < x.sites(); ++i) {
    auto yi = y.load(i);
    yi += x.load(i) * ar;
    y.store(i, yi);
    n += static_cast<double>(quda::norm2(yi));
  }
  return n;
}

// fused: y = x - y, then return ||y||^2 (QUDA's xmyNorm)
template <typename P>
double xmy_norm(const SpinorField<P>& x, SpinorField<P>& y) {
  double n = 0;
  for (std::int64_t i = 0; i < x.sites(); ++i) {
    auto yi = x.load(i);
    yi -= y.load(i);
    y.store(i, yi);
    n += static_cast<double>(quda::norm2(yi));
  }
  return n;
}

// fused BiCGstab search-direction update: p = r + beta * (p - omega * v)
template <typename P>
void bicgstab_p_update(SpinorField<P>& p, const SpinorField<P>& r, const SpinorField<P>& v,
                       const complexd& beta, const complexd& omega) {
  using real_t = typename P::real_t;
  const Complex<real_t> b(static_cast<real_t>(beta.re), static_cast<real_t>(beta.im));
  const Complex<real_t> bw(static_cast<real_t>((beta * omega).re),
                           static_cast<real_t>((beta * omega).im));
  for (std::int64_t i = 0; i < p.sites(); ++i) {
    auto pi = p.load(i);
    auto vi = v.load(i);
    vi *= bw;
    pi *= b;
    pi -= vi;
    pi += r.load(i);
    p.store(i, pi);
  }
}

// fused BiCGstab solution update: x += alpha * p + omega * s
template <typename P>
void bicgstab_x_update(SpinorField<P>& x, const complexd& alpha, const SpinorField<P>& p,
                       const complexd& omega, const SpinorField<P>& s) {
  using real_t = typename P::real_t;
  const Complex<real_t> a(static_cast<real_t>(alpha.re), static_cast<real_t>(alpha.im));
  const Complex<real_t> w(static_cast<real_t>(omega.re), static_cast<real_t>(omega.im));
  for (std::int64_t i = 0; i < x.sites(); ++i) {
    auto xi = x.load(i);
    auto pi = p.load(i);
    auto si = s.load(i);
    pi *= a;
    si *= w;
    xi += pi;
    xi += si;
    x.store(i, xi);
  }
}

// fused: r = s - omega * t, returning <r, r> and <r, r0> for the next
// iteration's convergence check and rho (QUDA fuses these reductions)
template <typename P>
void bicgstab_r_update(SpinorField<P>& r, const SpinorField<P>& s, const SpinorField<P>& t,
                       const complexd& omega, double& r2, complexd& rho_next,
                       const SpinorField<P>& r0) {
  using real_t = typename P::real_t;
  const Complex<real_t> w(static_cast<real_t>(omega.re), static_cast<real_t>(omega.im));
  r2 = 0;
  rho_next = complexd{};
  for (std::int64_t i = 0; i < r.sites(); ++i) {
    auto ti = t.load(i);
    ti *= w;
    auto ri = s.load(i);
    ri -= ti;
    r.store(i, ri);
    r2 += static_cast<double>(quda::norm2(ri));
    const auto d = dot(r0.load(i), ri);
    rho_next += complexd(static_cast<double>(d.re), static_cast<double>(d.im));
  }
}

// out = gamma_5 in (aliasing-safe: pointwise in spin)
template <typename P>
void apply_gamma5(SpinorField<P>& out, const SpinorField<P>& in) {
  const SpinMatrix& g5 = gamma5(GammaBasis::NonRelativistic);
  for (std::int64_t i = 0; i < in.sites(); ++i)
    out.store(i, apply_spin(g5, in.load(i)));
}

} // namespace quda::blas

namespace quda {
using blas::apply_gamma5;
}
