#pragma once
// Vector-vector (BLAS1-like) kernels on device spinor fields, mirroring
// QUDA's fused linear-algebra kernels (Section V-E).  Where a solver needs
// several elementary operations on the same vectors they are fused into one
// kernel (one load/store sweep) -- e.g. the BiCGstab search-direction update
// p = r + beta*(p - omega*v) is a single kernel, as is the solution update
// x += alpha*p + omega*s.  The auto-tuner in blas/autotune.h picks launch
// geometry for these kernels in the simulated device model.
//
// Reductions return *local* sums; global sums across ranks are the
// responsibility of the caller (the solvers route them through their
// operator's global_sum hook, which the parallel operator implements with
// QMP/MPI reductions -- the only solver-level change multi-GPU required,
// Section VI-E).
//
// Execution: every kernel runs through the host execution engine
// (exec/host_engine.h).  Element-wise kernels on the norm-free precisions
// (double/single) take a raw-span fast path: for a site range [b, e) each
// component block of the QUDA layout is one contiguous run of nvec*(e-b)
// reals, so the inner loops are plain stride-1 array sweeps the compiler can
// vectorize.  The per-component arithmetic is written in exactly the seed's
// operation order, so the fast path is bit-identical to the historical
// load/store loop.  Reductions never use raw spans: they accumulate in
// site-major load() order inside fixed-shape chunks (see the determinism
// contract in exec/host_engine.h).

#include "exec/host_engine.h"
#include "lattice/spinor_field.h"
#include "su3/gamma.h"

#include <cstdint>
#include <cstring>

namespace quda::blas {

namespace detail {

// raw spans in x address the same (site, component) elements of y only when
// the body layouts agree exactly
inline bool same_body(const BlockLayout& a, const BlockLayout& b) {
  return a.sites == b.sites && a.pad == b.pad && a.nint == b.nint && a.nvec == b.nvec;
}

// Invoke fn(off, len) once per component block j of the layout, where the
// raw elements [off, off+len) hold components [j*nvec, (j+1)*nvec) of sites
// [b, e) -- contiguous by BlockLayout::index.  Real/imaginary parts
// alternate within a span (nvec is even), starting on an even k.
template <typename Fn>
inline void for_block_spans(const BlockLayout& l, std::int64_t b, std::int64_t e, Fn&& fn) {
  const std::int64_t len = std::int64_t(l.nvec) * (e - b);
  const std::int64_t step = std::int64_t(l.nvec) * l.stride();
  std::int64_t off = std::int64_t(l.nvec) * b;
  for (int j = 0; j < l.blocks(); ++j, off += step) fn(off, len);
}

// partial sums of the fused r-update reduction pair
struct RUpdatePartial {
  double r2 = 0;
  complexd rho{};
  RUpdatePartial& operator+=(const RUpdatePartial& o) {
    r2 += o.r2;
    rho += o.rho;
    return *this;
  }
};

} // namespace detail

template <typename P> void copy(SpinorField<P>& dst, const SpinorField<P>& src) {
  if constexpr (!P::has_norm) {
    if (detail::same_body(dst.layout(), src.layout())) {
      using store_t = typename P::store_t;
      exec::parallel_for(0, src.sites(), exec::kBlasGrain, [&](std::int64_t b, std::int64_t e) {
        const store_t* __restrict s = src.raw_data().data();
        store_t* __restrict d = dst.raw_data().data();
        detail::for_block_spans(src.layout(), b, e, [&](std::int64_t off, std::int64_t len) {
          std::memcpy(d + off, s + off, static_cast<std::size_t>(len) * sizeof(store_t));
        });
      });
      return;
    }
  }
  exec::parallel_for(0, src.sites(), exec::kBlasGrain, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) dst.store(i, src.load(i));
  });
}

template <typename P> double norm2(const SpinorField<P>& x) {
  return exec::parallel_reduce<double>(
      0, x.sites(), exec::kBlasGrain, [&](std::int64_t b, std::int64_t e) {
        double n = 0;
        for (std::int64_t i = b; i < e; ++i) {
          const auto s = x.load(i);
          n += static_cast<double>(quda::norm2(s));
        }
        return n;
      });
}

template <typename P> complexd cdot(const SpinorField<P>& a, const SpinorField<P>& b) {
  return exec::parallel_reduce<complexd>(
      0, a.sites(), exec::kBlasGrain, [&](std::int64_t lo, std::int64_t hi) {
        complexd d{};
        for (std::int64_t i = lo; i < hi; ++i) {
          const auto da = dot(a.load(i), b.load(i));
          d += complexd(static_cast<double>(da.re), static_cast<double>(da.im));
        }
        return d;
      });
}

// y += a * x
template <typename P>
void axpy(double a, const SpinorField<P>& x, SpinorField<P>& y) {
  using real_t = typename P::real_t;
  const real_t ar = static_cast<real_t>(a);
  if constexpr (!P::has_norm) {
    if (detail::same_body(x.layout(), y.layout())) {
      using store_t = typename P::store_t;
      exec::parallel_for(0, x.sites(), exec::kBlasGrain, [&](std::int64_t b, std::int64_t e) {
        const store_t* __restrict xs = x.raw_data().data();
        store_t* __restrict ys = y.raw_data().data();
        detail::for_block_spans(x.layout(), b, e, [&](std::int64_t off, std::int64_t len) {
          for (std::int64_t k = 0; k < len; ++k) ys[off + k] += xs[off + k] * ar;
        });
      });
      return;
    }
  }
  exec::parallel_for(0, x.sites(), exec::kBlasGrain, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) {
      auto yi = y.load(i);
      yi += x.load(i) * ar;
      y.store(i, yi);
    }
  });
}

// y = x + a * y
template <typename P>
void xpay(const SpinorField<P>& x, double a, SpinorField<P>& y) {
  using real_t = typename P::real_t;
  const real_t ar = static_cast<real_t>(a);
  if constexpr (!P::has_norm) {
    if (detail::same_body(x.layout(), y.layout())) {
      using store_t = typename P::store_t;
      exec::parallel_for(0, x.sites(), exec::kBlasGrain, [&](std::int64_t b, std::int64_t e) {
        const store_t* __restrict xs = x.raw_data().data();
        store_t* __restrict ys = y.raw_data().data();
        detail::for_block_spans(x.layout(), b, e, [&](std::int64_t off, std::int64_t len) {
          for (std::int64_t k = 0; k < len; ++k) ys[off + k] = ys[off + k] * ar + xs[off + k];
        });
      });
      return;
    }
  }
  exec::parallel_for(0, x.sites(), exec::kBlasGrain, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) {
      auto yi = y.load(i);
      yi *= ar;
      yi += x.load(i);
      y.store(i, yi);
    }
  });
}

// y = a * x + b * y
template <typename P>
void axpby(double a, const SpinorField<P>& x, double b, SpinorField<P>& y) {
  using real_t = typename P::real_t;
  const real_t ar = static_cast<real_t>(a);
  const real_t br = static_cast<real_t>(b);
  if constexpr (!P::has_norm) {
    if (detail::same_body(x.layout(), y.layout())) {
      using store_t = typename P::store_t;
      exec::parallel_for(0, x.sites(), exec::kBlasGrain, [&](std::int64_t lo, std::int64_t hi) {
        const store_t* __restrict xs = x.raw_data().data();
        store_t* __restrict ys = y.raw_data().data();
        detail::for_block_spans(x.layout(), lo, hi, [&](std::int64_t off, std::int64_t len) {
          for (std::int64_t k = 0; k < len; ++k)
            ys[off + k] = ys[off + k] * br + xs[off + k] * ar;
        });
      });
      return;
    }
  }
  exec::parallel_for(0, x.sites(), exec::kBlasGrain, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      auto yi = y.load(i);
      yi *= br;
      yi += x.load(i) * ar;
      y.store(i, yi);
    }
  });
}

// y += a * x, complex a
template <typename P>
void caxpy(const complexd& a, const SpinorField<P>& x, SpinorField<P>& y) {
  using real_t = typename P::real_t;
  const Complex<real_t> ar(static_cast<real_t>(a.re), static_cast<real_t>(a.im));
  if constexpr (!P::has_norm) {
    if (detail::same_body(x.layout(), y.layout())) {
      using store_t = typename P::store_t;
      exec::parallel_for(0, x.sites(), exec::kBlasGrain, [&](std::int64_t lo, std::int64_t hi) {
        const store_t* __restrict xs = x.raw_data().data();
        store_t* __restrict ys = y.raw_data().data();
        detail::for_block_spans(x.layout(), lo, hi, [&](std::int64_t off, std::int64_t len) {
          for (std::int64_t k = 0; k < len; k += 2) {
            const store_t xr = xs[off + k];
            const store_t xi = xs[off + k + 1];
            ys[off + k] += xr * ar.re - xi * ar.im;
            ys[off + k + 1] += xr * ar.im + xi * ar.re;
          }
        });
      });
      return;
    }
  }
  exec::parallel_for(0, x.sites(), exec::kBlasGrain, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      auto yi = y.load(i);
      auto xi = x.load(i);
      xi *= ar;
      yi += xi;
      y.store(i, yi);
    }
  });
}

// fused: y += a*x, then return ||y||^2 (QUDA's axpyNorm)
template <typename P>
double axpy_norm(double a, const SpinorField<P>& x, SpinorField<P>& y) {
  using real_t = typename P::real_t;
  const real_t ar = static_cast<real_t>(a);
  return exec::parallel_reduce<double>(
      0, x.sites(), exec::kBlasGrain, [&](std::int64_t lo, std::int64_t hi) {
        double n = 0;
        for (std::int64_t i = lo; i < hi; ++i) {
          auto yi = y.load(i);
          yi += x.load(i) * ar;
          y.store(i, yi);
          n += static_cast<double>(quda::norm2(yi));
        }
        return n;
      });
}

// fused: y = x - y, then return ||y||^2 (QUDA's xmyNorm)
template <typename P>
double xmy_norm(const SpinorField<P>& x, SpinorField<P>& y) {
  return exec::parallel_reduce<double>(
      0, x.sites(), exec::kBlasGrain, [&](std::int64_t lo, std::int64_t hi) {
        double n = 0;
        for (std::int64_t i = lo; i < hi; ++i) {
          auto yi = x.load(i);
          yi -= y.load(i);
          y.store(i, yi);
          n += static_cast<double>(quda::norm2(yi));
        }
        return n;
      });
}

// fused BiCGstab search-direction update: p = r + beta * (p - omega * v)
template <typename P>
void bicgstab_p_update(SpinorField<P>& p, const SpinorField<P>& r, const SpinorField<P>& v,
                       const complexd& beta, const complexd& omega) {
  using real_t = typename P::real_t;
  const Complex<real_t> b(static_cast<real_t>(beta.re), static_cast<real_t>(beta.im));
  const Complex<real_t> bw(static_cast<real_t>((beta * omega).re),
                           static_cast<real_t>((beta * omega).im));
  if constexpr (!P::has_norm) {
    if (detail::same_body(p.layout(), r.layout()) && detail::same_body(p.layout(), v.layout())) {
      using store_t = typename P::store_t;
      exec::parallel_for(0, p.sites(), exec::kBlasGrain, [&](std::int64_t lo, std::int64_t hi) {
        store_t* __restrict ps = p.raw_data().data();
        const store_t* __restrict rs = r.raw_data().data();
        const store_t* __restrict vs = v.raw_data().data();
        detail::for_block_spans(p.layout(), lo, hi, [&](std::int64_t off, std::int64_t len) {
          for (std::int64_t k = 0; k < len; k += 2) {
            const store_t pr = ps[off + k];
            const store_t pi = ps[off + k + 1];
            const store_t vr = vs[off + k];
            const store_t vi = vs[off + k + 1];
            const store_t vbr = vr * bw.re - vi * bw.im;
            const store_t vbi = vr * bw.im + vi * bw.re;
            const store_t pbr = pr * b.re - pi * b.im;
            const store_t pbi = pr * b.im + pi * b.re;
            ps[off + k] = pbr - vbr + rs[off + k];
            ps[off + k + 1] = pbi - vbi + rs[off + k + 1];
          }
        });
      });
      return;
    }
  }
  exec::parallel_for(0, p.sites(), exec::kBlasGrain, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      auto pi = p.load(i);
      auto vi = v.load(i);
      vi *= bw;
      pi *= b;
      pi -= vi;
      pi += r.load(i);
      p.store(i, pi);
    }
  });
}

// fused BiCGstab solution update: x += alpha * p + omega * s
template <typename P>
void bicgstab_x_update(SpinorField<P>& x, const complexd& alpha, const SpinorField<P>& p,
                       const complexd& omega, const SpinorField<P>& s) {
  using real_t = typename P::real_t;
  const Complex<real_t> a(static_cast<real_t>(alpha.re), static_cast<real_t>(alpha.im));
  const Complex<real_t> w(static_cast<real_t>(omega.re), static_cast<real_t>(omega.im));
  if constexpr (!P::has_norm) {
    if (detail::same_body(x.layout(), p.layout()) && detail::same_body(x.layout(), s.layout())) {
      using store_t = typename P::store_t;
      exec::parallel_for(0, x.sites(), exec::kBlasGrain, [&](std::int64_t lo, std::int64_t hi) {
        store_t* __restrict xs = x.raw_data().data();
        const store_t* __restrict ps = p.raw_data().data();
        const store_t* __restrict ss = s.raw_data().data();
        detail::for_block_spans(x.layout(), lo, hi, [&](std::int64_t off, std::int64_t len) {
          for (std::int64_t k = 0; k < len; k += 2) {
            const store_t pr = ps[off + k];
            const store_t pi = ps[off + k + 1];
            const store_t sr = ss[off + k];
            const store_t si = ss[off + k + 1];
            xs[off + k] = xs[off + k] + (pr * a.re - pi * a.im) + (sr * w.re - si * w.im);
            xs[off + k + 1] = xs[off + k + 1] + (pr * a.im + pi * a.re) + (sr * w.im + si * w.re);
          }
        });
      });
      return;
    }
  }
  exec::parallel_for(0, x.sites(), exec::kBlasGrain, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      auto xi = x.load(i);
      auto pi = p.load(i);
      auto si = s.load(i);
      pi *= a;
      si *= w;
      xi += pi;
      xi += si;
      x.store(i, xi);
    }
  });
}

// fused: r = s - omega * t, returning <r, r> and <r, r0> for the next
// iteration's convergence check and rho (QUDA fuses these reductions)
template <typename P>
void bicgstab_r_update(SpinorField<P>& r, const SpinorField<P>& s, const SpinorField<P>& t,
                       const complexd& omega, double& r2, complexd& rho_next,
                       const SpinorField<P>& r0) {
  using real_t = typename P::real_t;
  const Complex<real_t> w(static_cast<real_t>(omega.re), static_cast<real_t>(omega.im));
  const auto acc = exec::parallel_reduce<detail::RUpdatePartial>(
      0, r.sites(), exec::kBlasGrain, [&](std::int64_t lo, std::int64_t hi) {
        detail::RUpdatePartial part;
        for (std::int64_t i = lo; i < hi; ++i) {
          auto ti = t.load(i);
          ti *= w;
          auto ri = s.load(i);
          ri -= ti;
          r.store(i, ri);
          part.r2 += static_cast<double>(quda::norm2(ri));
          const auto d = dot(r0.load(i), ri);
          part.rho += complexd(static_cast<double>(d.re), static_cast<double>(d.im));
        }
        return part;
      });
  r2 = acc.r2;
  rho_next = acc.rho;
}

// out = gamma_5 in (aliasing-safe: pointwise in spin)
template <typename P>
void apply_gamma5(SpinorField<P>& out, const SpinorField<P>& in) {
  const SpinMatrix& g5 = gamma5(GammaBasis::NonRelativistic);
  exec::parallel_for(0, in.sites(), exec::kBlasGrain, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) out.store(i, apply_spin(g5, in.load(i)));
  });
}

} // namespace quda::blas

namespace quda {
using blas::apply_gamma5;
}
