#pragma once
// Domain decomposition utilities: slicing full-lattice host fields into
// per-rank local blocks and merging per-rank results back.
//
// The paper's decomposition divides only the time dimension (Section VI-A);
// the 4-D block utilities below also serve the multi-dimensional
// decomposition it lists as future work.  Every local extent must be even
// so local and global checkerboards coincide.

#include "comm/qmp.h"
#include "lattice/host_field.h"

#include <stdexcept>

namespace quda::core {

// --- general 4-D block decomposition ------------------------------------------

inline Geometry local_geometry(const Geometry& global, const comm::GridTopology& topo) {
  LatticeDims d = global.dims();
  int* ext[4] = {&d.x, &d.y, &d.z, &d.t};
  for (int mu = 0; mu < 4; ++mu) {
    const int n = topo.dims[static_cast<std::size_t>(mu)];
    if (global.dims()[mu] % n != 0)
      throw std::invalid_argument("global extent must divide the grid dimension");
    *ext[mu] = global.dims()[mu] / n;
    if (n > 1 && (*ext[mu] < 2 || *ext[mu] % 2 != 0))
      throw std::invalid_argument("cut dimensions need even local extent >= 2");
  }
  return Geometry(d);
}

inline Coords block_to_global(const Coords& local, const comm::GridTopology& topo, int rank,
                              const LatticeDims& local_dims) {
  const auto rc = topo.coords(rank);
  Coords g;
  for (int mu = 0; mu < 4; ++mu)
    g[mu] = local[mu] + rc[static_cast<std::size_t>(mu)] * local_dims[mu];
  return g;
}

inline HostGaugeField slice_gauge(const HostGaugeField& global, const comm::GridTopology& topo,
                                  int rank) {
  const Geometry lg = local_geometry(global.geom(), topo);
  HostGaugeField local(lg);
  for (std::int64_t i = 0; i < lg.volume(); ++i) {
    const Coords lc = lg.coords(i);
    const Coords gc = block_to_global(lc, topo, rank, lg.dims());
    for (int mu = 0; mu < 4; ++mu) local.link(mu, lc) = global.link(mu, gc);
  }
  return local;
}

inline HostSpinorField slice_spinor(const HostSpinorField& global,
                                    const comm::GridTopology& topo, int rank) {
  const Geometry lg = local_geometry(global.geom(), topo);
  HostSpinorField local(lg);
  for (std::int64_t i = 0; i < lg.volume(); ++i)
    local[i] = global.at(block_to_global(lg.coords(i), topo, rank, lg.dims()));
  return local;
}

inline HostCloverField slice_clover(const HostCloverField& global,
                                    const comm::GridTopology& topo, int rank) {
  const Geometry lg = local_geometry(global.geom(), topo);
  HostCloverField local(lg);
  for (std::int64_t i = 0; i < lg.volume(); ++i)
    local[i] = global[global.geom().linear_index(
        block_to_global(lg.coords(i), topo, rank, lg.dims()))];
  return local;
}

inline void merge_spinor(HostSpinorField& global, const HostSpinorField& local,
                         const comm::GridTopology& topo, int rank) {
  const Geometry& lg = local.geom();
  for (std::int64_t i = 0; i < lg.volume(); ++i)
    global.at(block_to_global(lg.coords(i), topo, rank, lg.dims())) = local[i];
}

// --- the paper's 1-D (time) decomposition --------------------------------------

// local lattice of each rank; throws unless T divides into even slabs >= 2
// when n_ranks > 1 (the constraint of the parity-preserving decomposition)
inline Geometry local_geometry(const Geometry& global, int n_ranks) {
  LatticeDims d = global.dims();
  if (d.t % n_ranks != 0)
    throw std::invalid_argument("global T must be divisible by the number of ranks");
  d.t /= n_ranks;
  if (n_ranks > 1 && (d.t < 2 || d.t % 2 != 0))
    throw std::invalid_argument("local T must be even and >= 2");
  return Geometry(d);
}

inline Coords to_global(const Coords& local, int rank, int t_local) {
  Coords g = local;
  g[3] += rank * t_local;
  return g;
}

inline HostGaugeField slice_gauge(const HostGaugeField& global, int rank, int n_ranks) {
  const Geometry lg = local_geometry(global.geom(), n_ranks);
  HostGaugeField local(lg);
  for (std::int64_t i = 0; i < lg.volume(); ++i) {
    const Coords lc = lg.coords(i);
    const Coords gc = to_global(lc, rank, lg.dims().t);
    for (int mu = 0; mu < 4; ++mu) local.link(mu, lc) = global.link(mu, gc);
  }
  return local;
}

inline HostSpinorField slice_spinor(const HostSpinorField& global, int rank, int n_ranks) {
  const Geometry lg = local_geometry(global.geom(), n_ranks);
  HostSpinorField local(lg);
  for (std::int64_t i = 0; i < lg.volume(); ++i)
    local[i] = global.at(to_global(lg.coords(i), rank, lg.dims().t));
  return local;
}

inline HostCloverField slice_clover(const HostCloverField& global, int rank, int n_ranks) {
  const Geometry lg = local_geometry(global.geom(), n_ranks);
  HostCloverField local(lg);
  for (std::int64_t i = 0; i < lg.volume(); ++i)
    local[i] =
        global[global.geom().linear_index(to_global(lg.coords(i), rank, lg.dims().t))];
  return local;
}

inline void merge_spinor(HostSpinorField& global, const HostSpinorField& local, int rank) {
  const Geometry& lg = local.geom();
  for (std::int64_t i = 0; i < lg.volume(); ++i)
    global.at(to_global(lg.coords(i), rank, lg.dims().t)) = local[i];
}

} // namespace quda::core
